package tmi_test

import (
	"testing"

	"repro/tmi"
	"repro/tmi/workloads"
)

// backendsUnderTest is every selectable repair strategy.
var backendsUnderTest = []string{"t2p", "pad", "map", "tmebox"}

// fsSuite is the seeded false-sharing suite (harness fsNames).
var fsSuite = []string{
	"histogram", "histogramfs", "lreg", "stringmatch", "lu-ncb",
	"leveldb", "spinlockpool", "shptr-relaxed", "shptr-lock",
}

// lastRate returns the final detection interval's HITM rate, and the peak
// over the whole timeline.
func lastRate(rep *tmi.Report) (last, peak float64) {
	for _, s := range rep.Timeline {
		if s.HITMPerSec > peak {
			peak = s.HITMPerSec
		}
		last = s.HITMPerSec
	}
	return last, peak
}

// TestBackendParity drives every repair backend over every seeded
// false-sharing workload, with the paper's t2p mechanism as the reference:
// every backend must validate, engage exactly when t2p engages (the
// detector, not the backend, decides what is repairable — spinlockpool's
// lock words classify as true sharing and nobody touches them), and where
// repair engages, drive the post-repair HITM rate down at least as far as
// t2p does (within 2x). On workloads whose contention is dominated by the
// flagged false sharing (everything but leveldb, which keeps heavy true
// sharing no page repair may touch), t2p itself must shed >= 75% of the
// unrepaired baseline rate. t2p's byte-identity on the paper workloads is
// covered separately by the fig9 golden gate.
func TestBackendParity(t *testing.T) {
	trueSharingHeavy := map[string]bool{"leveldb": true}
	for _, name := range fsSuite {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := run(t, name, tmi.Config{System: tmi.TMIDetect})
			if !base.Validated {
				t.Fatalf("detect-only baseline invalid: %s", base.ValidationErr)
			}
			baseLast, _ := lastRate(base)

			ref := run(t, name, tmi.Config{System: tmi.TMIProtect, RepairBackend: "t2p"})
			if !ref.Validated {
				t.Fatalf("t2p reference invalid: %s", ref.ValidationErr)
			}
			refLast, _ := lastRate(ref)
			if ref.Repaired && !trueSharingHeavy[name] && baseLast > 0 && refLast > 0.25*baseLast {
				t.Errorf("t2p: residual HITM %.0f/s did not collapse (baseline %.0f/s)", refLast, baseLast)
			}

			for _, backend := range backendsUnderTest[1:] { // t2p is ref
				rep := run(t, name, tmi.Config{System: tmi.TMIProtect, RepairBackend: backend})
				if !rep.Validated {
					t.Errorf("%s: run invalid: %s", backend, rep.ValidationErr)
					continue
				}
				if rep.RepairBackend != backend {
					t.Errorf("%s: report names backend %q", backend, rep.RepairBackend)
				}
				if rep.Repaired != ref.Repaired {
					t.Errorf("%s: repaired=%v but t2p repaired=%v", backend, rep.Repaired, ref.Repaired)
					continue
				}
				if got := rep.BackendActivity.FailedRepairs; got != 0 {
					t.Errorf("%s: %d failed repairs", backend, got)
				}
				if !ref.Repaired {
					continue
				}
				last, _ := lastRate(rep)
				limit := 2 * refLast
				if limit < 10_000 {
					limit = 10_000
				}
				if last > limit {
					t.Errorf("%s: residual HITM %.0f/s, want <= %.0f/s (t2p %.0f/s, baseline %.0f/s)",
						backend, last, limit, refLast, baseLast)
				}
			}
		})
	}
}

// TestBackendRejectsUnknown pins the config validation error.
func TestBackendRejectsUnknown(t *testing.T) {
	w, err := workloads.ByName("histogramfs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmi.Run(w, tmi.Config{System: tmi.TMIProtect, RepairBackend: "voodoo"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
