package tmi_test

import (
	"testing"

	"repro/tmi"
	"repro/tmi/workloads"
)

// TestSystemWorkloadMatrix sweeps every compatible (system, workload) pair
// over the repair suite and asserts the correctness contract of each
// system: TMI, LASER and Plastic always preserve semantics; the pthreads
// baseline trivially does; Sheriff preserves them exactly when the workload
// uses neither atomics nor assembly (Lemma 3.1 plus its known gaps).
func TestSystemWorkloadMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep is slow")
	}
	systems := []tmi.System{tmi.Pthreads, tmi.TMIProtect, tmi.LASER, tmi.Plastic}
	for _, w := range workloads.FSSuite() {
		name := w.Name()
		for _, sys := range systems {
			sys := sys
			t.Run(name+"/"+sys.String(), func(t *testing.T) {
				wl, err := workloads.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := tmi.Run(wl, tmi.Config{System: sys, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Hung {
					t.Fatalf("hung: %s", rep.HangReason)
				}
				if !rep.Validated {
					t.Fatalf("%s corrupted %s: %s", sys, name, rep.ValidationErr)
				}
			})
		}
	}
}

// TestSheriffMatrixContract: on the suite members Sheriff can run, it is
// correct exactly when the workload avoids atomics and assembly.
func TestSheriffMatrixContract(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep is slow")
	}
	for _, w := range workloads.Suite() {
		name := w.Name()
		info := w.Info()
		t.Run(name, func(t *testing.T) {
			wl, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := tmi.Run(wl, tmi.Config{System: tmi.SheriffProtect, Seed: 7})
			if err != nil {
				return // incompatible: acceptable for any workload
			}
			usesUnsafe := info.UsesAtomics || info.UsesAsm
			if !usesUnsafe && !(rep.Validated || rep.Hung) {
				t.Errorf("Sheriff corrupted a plain-C workload: %s", rep.ValidationErr)
			}
			if usesUnsafe && rep.Validated {
				t.Errorf("Sheriff unexpectedly preserved atomics/asm semantics on %s", name)
			}
		})
	}
}
