// Package workload defines the public programming model for programs that
// run on the simulated machine under TMI: the Workload lifecycle, the Env
// used at setup time (allocation, synchronization objects, instruction-site
// registration) and the Thread API a running thread uses (loads, stores,
// atomics with memory orders, assembly regions, locks, barriers, bulk
// streaming and compute).
//
// Downstream users author a Workload and run it with the tmi package; the
// benchmark catalog in tmi/workloads is written against exactly this API.
package workload

import "math/rand"

// SiteKind classifies a registered instruction site.
type SiteKind int

// Site kinds.
const (
	SiteLoad SiteKind = iota
	SiteStore
	SiteAtomic
)

// Site identifies a static instruction in the workload's synthetic binary.
// The detector disassembles the site's PC to recover the access kind and
// width, exactly as TMI disassembles a real binary. Obtain sites from
// Env.Site during Setup.
//
// The annotation contract: a site's declared kind must match every access
// performed through it — plain loads through SiteLoad, plain stores through
// SiteStore, atomic operations through SiteAtomic. The Thread atomics
// bracket each SiteAtomic access with the region callbacks code-centric
// consistency requires (the analogue of the paper's LLVM pass); routing a
// plain Load/Store through a SiteAtomic site therefore models an atomic the
// pass missed, and tmilint (internal/analysis) flags it as the consistency
// hazard it is.
type Site struct {
	PC    uint64
	Kind  SiteKind
	Width int
}

// MemOrder is a C/C++-style atomic memory order. Relaxed atomics require
// only atomicity and do not force a PTSB flush under code-centric
// consistency; stronger orders do (paper §3.4, case 2).
type MemOrder int

// Memory orders. AcqRel is appended after the original four so existing
// serialized order values stay stable.
const (
	Relaxed MemOrder = iota
	Acquire
	Release
	SeqCst
	AcqRel
)

func (o MemOrder) String() string {
	switch o {
	case Relaxed:
		return "relaxed"
	case Acquire:
		return "acquire"
	case Release:
		return "release"
	case SeqCst:
		return "seq_cst"
	case AcqRel:
		return "acq_rel"
	}
	return "?"
}

// Acquires reports whether the order carries acquire semantics.
func (o MemOrder) Acquires() bool { return o == Acquire || o == AcqRel || o == SeqCst }

// Releases reports whether the order carries release semantics.
func (o MemOrder) Releases() bool { return o == Release || o == AcqRel || o == SeqCst }

// Mutex is an opaque handle to a runtime-managed lock. Under TMI the lock
// word the application sees is replaced by an indirection to a cache-line
// sized process-shared object (paper §3.2).
type Mutex interface{ mutexHandle() }

// Barrier is an opaque handle to a runtime-managed barrier.
type Barrier interface{ barrierHandle() }

// Cond is an opaque handle to a runtime-managed condition variable.
type Cond interface{ condHandle() }

// RWMutex is an opaque handle to a runtime-managed readers-writer lock.
type RWMutex interface{ rwMutexHandle() }

// MutexBase, BarrierBase and CondBase are embedded by runtime
// implementations to satisfy the sealed handle interfaces.
type MutexBase struct{}

func (MutexBase) mutexHandle() {}

// BarrierBase implements Barrier by embedding.
type BarrierBase struct{}

func (BarrierBase) barrierHandle() {}

// CondBase implements Cond by embedding.
type CondBase struct{}

func (CondBase) condHandle() {}

// RWMutexBase implements RWMutex by embedding.
type RWMutexBase struct{}

func (RWMutexBase) rwMutexHandle() {}

// Env is the setup-time environment: it allocates simulated memory, creates
// synchronization objects, and registers instruction sites.
type Env interface {
	// Threads reports how many threads will run Body.
	Threads() int
	// PageSize reports the backing page size (4 KiB, or 2 MiB with huge
	// pages enabled).
	PageSize() int

	// Alloc returns the address of n fresh bytes with the given alignment.
	Alloc(n, align int) uint64
	// AllocDefault allocates with the active allocator's default placement
	// policy; layout-sensitive bugs (lu-ncb) depend on this policy.
	AllocDefault(n int) uint64
	// AllocBulk reserves n bytes of bulk data (streamed, never byte-
	// addressed); it contributes to the memory footprint at zero host cost.
	AllocBulk(n int64) uint64
	// AllocGlobal places n bytes in the globals region (.data/.bss); the
	// detector monitors globals exactly like the heap (§3.1).
	AllocGlobal(n, align int) uint64
	// Free recycles a heap block (size-classed, like the Lockless
	// allocator's fast path).
	Free(addr uint64, n int)

	// Write/Read/Store/Load give setup and validation code direct access to
	// simulated memory, without timing or coherence effects.
	Write(addr uint64, b []byte)
	Read(addr uint64, n int) []byte
	Store(addr uint64, size int, v uint64)
	Load(addr uint64, size int) uint64

	// Site registers an instruction site.
	Site(name string, kind SiteKind, width int) Site

	// NewMutex allocates a lock whose application-visible word is placed by
	// the allocator; NewMutexAt places the word at a caller-chosen address
	// (how spinlockpool packs its locks into one line).
	NewMutex(name string) Mutex
	NewMutexAt(name string, appAddr uint64) Mutex
	NewBarrier(name string, parties int) Barrier
	NewCond(name string) Cond
	// NewRWMutex allocates a readers-writer lock (pthread_rwlock analog).
	NewRWMutex(name string) RWMutex

	// Note records a named metric into the run report.
	Note(key string, v float64)
}

// Thread is the execution API for one running thread.
type Thread interface {
	// ID is the thread index in [0, NumThreads).
	ID() int
	NumThreads() int

	// Load and Store perform plain (non-atomic) accesses of the site's
	// width.
	Load(s Site, addr uint64) uint64
	Store(s Site, addr uint64, v uint64)

	// AtomicAdd adds delta and returns the old value; AtomicCAS compares
	// and swaps. The memory order drives code-centric consistency: SeqCst/
	// Acquire/Release flush and disable the PTSB around the operation,
	// Relaxed only routes the access to shared memory.
	AtomicAdd(s Site, addr uint64, delta uint64, order MemOrder) uint64
	AtomicCAS(s Site, addr uint64, old, new uint64, order MemOrder) bool
	AtomicLoad(s Site, addr uint64, order MemOrder) uint64
	AtomicStore(s Site, addr uint64, v uint64, order MemOrder)

	// Fence issues a standalone memory fence of the given order. Relaxed is
	// a no-op; stronger orders flush the PTSB (code-centric consistency
	// treats a fence like the strong-atomic case of Table 2, minus the
	// instruction). Fences have no Site: they touch no data address.
	Fence(order MemOrder)

	// EnterAsm/ExitAsm bracket an inline-assembly region (the callbacks the
	// paper's LLVM pass inserts).
	EnterAsm()
	ExitAsm()

	// AsmAtomicSwap performs a lock-free atomic pair-swap written in
	// assembly (canneal's pointer swap): the values at addrA and addrB are
	// exchanged indivisibly, inside an implicit assembly region.
	AsmAtomicSwap(sa, sb Site, addrA, addrB uint64)

	// Lock/Unlock and Wait are pthreads-equivalent synchronization; they
	// are PTSB commit points.
	Lock(m Mutex)
	Unlock(m Mutex)
	// RLock/RUnlock take and release a shared (reader) hold; WLock/WUnlock
	// an exclusive one. All four are PTSB commit points.
	RLock(m RWMutex)
	RUnlock(m RWMutex)
	WLock(m RWMutex)
	WUnlock(m RWMutex)
	Wait(b Barrier)
	CondWait(c Cond, m Mutex)
	CondSignal(c Cond)
	CondBroadcast(c Cond)

	// Work advances simulated time by pure computation.
	Work(cycles int64)
	// Stream models a prefetch-friendly sequential sweep over bulk data.
	Stream(s Site, base uint64, n int64, write bool)

	// Rand is the thread's deterministic random source.
	Rand() *rand.Rand

	// Hang reports that the thread is livelocked (e.g. spinning on a flag
	// that a broken runtime never delivers) and abandons the body.
	Hang(reason string)
}

// Info carries static metadata the harness and the baseline systems use:
// compatibility traits and nominal footprints.
type Info struct {
	// Threads is the default thread count.
	Threads int
	// UsesAtomics/UsesAsm/UsesCustomSync flag the language features that
	// interact with memory-consistency handling (Table 2) and with
	// Sheriff's documented incompatibilities.
	UsesAtomics    bool
	UsesAsm        bool
	UsesCustomSync bool
	// FootprintMB is the nominal baseline memory footprint.
	FootprintMB int
	// HasFalseSharing marks ground truth for the harness tables.
	HasFalseSharing bool
	// SyncHeavy marks workloads with very frequent synchronization (drives
	// LASER's decision to keep repair off for TSO reasons).
	SyncHeavy bool
	// Desc is a one-line description.
	Desc string
}

// Outcomer is an optional Workload extension: a canonical fingerprint of
// the run's observable result (final registers and memory the program
// cares about). The model checker uses it to compare outcome sets across
// schedules and configurations, so the string must be deterministic and
// must not embed timing.
type Outcomer interface {
	Outcome(env Env) string
}

// Workload is a program that runs on the simulated machine.
type Workload interface {
	// Name is the benchmark's name as it appears in the paper's figures.
	Name() string
	// Info returns static metadata.
	Info() Info
	// Setup allocates and initializes memory and registers sites.
	Setup(env Env) error
	// Body runs on every thread.
	Body(t Thread)
	// Validate checks the final memory state; a consistency-breaking
	// runtime (PTSB without code-centric consistency) fails here.
	Validate(env Env) error
}
