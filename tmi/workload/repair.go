package workload

import "fmt"

// RepairKind says how a Repair changes the program at one site.
type RepairKind int

// Repair kinds.
const (
	// RepairAtomic routes a plain load/store site through the equivalent
	// atomic operation with Repair.Order; the site is re-registered as
	// SiteAtomic so the annotation contract stays intact.
	RepairAtomic RepairKind = iota
	// RepairOrder strengthens the memory order of an existing atomic site:
	// every operation through it runs under the join of its original order
	// and Repair.Order.
	RepairOrder
	// RepairFenceBefore inserts Fence(Repair.Order) immediately before every
	// access through the site.
	RepairFenceBefore
	// RepairFenceAfter inserts Fence(Repair.Order) immediately after every
	// access through the site.
	RepairFenceAfter
)

func (k RepairKind) String() string {
	switch k {
	case RepairAtomic:
		return "atomic"
	case RepairOrder:
		return "order"
	case RepairFenceBefore:
		return "fence-before"
	case RepairFenceAfter:
		return "fence-after"
	}
	return "?"
}

// Repair is one source-level fix at one instruction site, in the vocabulary
// a programmer would apply to C11 code: annotate an access as atomic,
// strengthen an ordering, or insert a standalone fence.
type Repair struct {
	Site  string
	Kind  RepairKind
	Order MemOrder
}

func (r Repair) String() string {
	return fmt.Sprintf("%s: %s %s", r.Site, r.Kind, r.Order)
}

// ParseRepair builds a Repair from the string form the toolio suggest
// schema carries.
func ParseRepair(site, kind, order string) (Repair, error) {
	r := Repair{Site: site}
	if site == "" {
		return r, fmt.Errorf("workload: repair with empty site")
	}
	switch kind {
	case "atomic":
		r.Kind = RepairAtomic
	case "order":
		r.Kind = RepairOrder
	case "fence-before":
		r.Kind = RepairFenceBefore
	case "fence-after":
		r.Kind = RepairFenceAfter
	default:
		return r, fmt.Errorf("workload: unknown repair kind %q", kind)
	}
	switch order {
	case "relaxed":
		r.Order = Relaxed
	case "acquire":
		r.Order = Acquire
	case "release":
		r.Order = Release
	case "acq_rel":
		r.Order = AcqRel
	case "seq_cst":
		r.Order = SeqCst
	default:
		return r, fmt.Errorf("workload: unknown memory order %q", order)
	}
	return r, nil
}

// JoinOrders is the least upper bound in the C11 strength lattice
// (relaxed < acquire, release < acq_rel < seq_cst).
func JoinOrders(a, b MemOrder) MemOrder {
	if a == b {
		return a
	}
	if a == SeqCst || b == SeqCst {
		return SeqCst
	}
	if a == Relaxed {
		return b
	}
	if b == Relaxed {
		return a
	}
	acq := a.Acquires() || b.Acquires()
	rel := a.Releases() || b.Releases()
	switch {
	case acq && rel:
		return AcqRel
	case acq:
		return Acquire
	default:
		return Release
	}
}

// siteRepair is the per-site plan compiled from a repair set.
type siteRepair struct {
	atomic      bool // route plain accesses through atomics
	order       MemOrder
	hasOrder    bool
	fenceBefore MemOrder
	hasBefore   bool
	fenceAfter  MemOrder
	hasAfter    bool
}

// Repaired wraps a workload so that it runs with the given repairs applied,
// exactly as if the programmer had edited the source: plain sites named by a
// RepairAtomic become atomic sites (and their accesses atomic operations),
// RepairOrder strengthens orders, and the fence kinds splice standalone
// fences around the site's accesses. Sites not named by any repair are
// untouched. The wrapper is pure workload-level, so both the model checker
// and the abstract interpreter can run the repaired program unchanged.
func Repaired(w Workload, repairs []Repair) Workload {
	if len(repairs) == 0 {
		return w
	}
	plan := map[string]*siteRepair{}
	for _, r := range repairs {
		sr := plan[r.Site]
		if sr == nil {
			sr = &siteRepair{}
			plan[r.Site] = sr
		}
		switch r.Kind {
		case RepairAtomic:
			sr.atomic = true
			sr.order = joinInto(sr.hasOrder, sr.order, r.Order)
			sr.hasOrder = true
		case RepairOrder:
			sr.order = joinInto(sr.hasOrder, sr.order, r.Order)
			sr.hasOrder = true
		case RepairFenceBefore:
			sr.fenceBefore = joinInto(sr.hasBefore, sr.fenceBefore, r.Order)
			sr.hasBefore = true
		case RepairFenceAfter:
			sr.fenceAfter = joinInto(sr.hasAfter, sr.fenceAfter, r.Order)
			sr.hasAfter = true
		}
	}
	rw := &repairedWorkload{base: w, plan: plan, byPC: map[uint64]*siteRepair{}}
	if _, ok := w.(Outcomer); ok {
		return &repairedOutcomer{rw}
	}
	return rw
}

func joinInto(has bool, cur, next MemOrder) MemOrder {
	if !has {
		return next
	}
	return JoinOrders(cur, next)
}

type repairedWorkload struct {
	base Workload
	plan map[string]*siteRepair
	// byPC binds registered site PCs to their plan entry; filled during
	// Setup, when the wrapped Env sees the site names.
	byPC map[uint64]*siteRepair
}

func (rw *repairedWorkload) Name() string { return rw.base.Name() }

func (rw *repairedWorkload) Info() Info {
	info := rw.base.Info()
	for _, sr := range rw.plan {
		if sr.atomic || sr.hasOrder {
			info.UsesAtomics = true
		}
	}
	return info
}

func (rw *repairedWorkload) Setup(env Env) error {
	return rw.base.Setup(&repairEnv{Env: env, rw: rw})
}

func (rw *repairedWorkload) Body(t Thread) {
	rw.base.Body(&repairThread{Thread: t, rw: rw})
}

func (rw *repairedWorkload) Validate(env Env) error { return rw.base.Validate(env) }

// repairedOutcomer adds the Outcome passthrough only when the base workload
// has one, so the model checker's Outcomer detection is not fooled.
type repairedOutcomer struct{ *repairedWorkload }

func (ro *repairedOutcomer) Outcome(env Env) string {
	return ro.base.(Outcomer).Outcome(env)
}

type repairEnv struct {
	Env
	rw *repairedWorkload
}

func (re *repairEnv) Site(name string, kind SiteKind, width int) Site {
	sr := re.rw.plan[name]
	if sr != nil && sr.atomic && kind != SiteAtomic {
		kind = SiteAtomic
	}
	s := re.Env.Site(name, kind, width)
	if sr != nil {
		re.rw.byPC[s.PC] = sr
	}
	return s
}

type repairThread struct {
	Thread
	rw *repairedWorkload
}

func (rt *repairThread) enter(s Site) *siteRepair {
	sr := rt.rw.byPC[s.PC]
	if sr != nil && sr.hasBefore {
		rt.Thread.Fence(sr.fenceBefore)
	}
	return sr
}

func (rt *repairThread) exit(sr *siteRepair) {
	if sr != nil && sr.hasAfter {
		rt.Thread.Fence(sr.fenceAfter)
	}
}

func (rt *repairThread) effOrder(sr *siteRepair, o MemOrder) MemOrder {
	if sr != nil && sr.hasOrder {
		return JoinOrders(o, sr.order)
	}
	return o
}

func (rt *repairThread) Load(s Site, addr uint64) uint64 {
	sr := rt.enter(s)
	var v uint64
	if sr != nil && sr.atomic {
		v = rt.Thread.AtomicLoad(s, addr, sr.order)
	} else {
		v = rt.Thread.Load(s, addr)
	}
	rt.exit(sr)
	return v
}

func (rt *repairThread) Store(s Site, addr uint64, v uint64) {
	sr := rt.enter(s)
	if sr != nil && sr.atomic {
		rt.Thread.AtomicStore(s, addr, v, sr.order)
	} else {
		rt.Thread.Store(s, addr, v)
	}
	rt.exit(sr)
}

func (rt *repairThread) AtomicAdd(s Site, addr uint64, delta uint64, order MemOrder) uint64 {
	sr := rt.enter(s)
	v := rt.Thread.AtomicAdd(s, addr, delta, rt.effOrder(sr, order))
	rt.exit(sr)
	return v
}

func (rt *repairThread) AtomicCAS(s Site, addr uint64, old, new uint64, order MemOrder) bool {
	sr := rt.enter(s)
	ok := rt.Thread.AtomicCAS(s, addr, old, new, rt.effOrder(sr, order))
	rt.exit(sr)
	return ok
}

func (rt *repairThread) AtomicLoad(s Site, addr uint64, order MemOrder) uint64 {
	sr := rt.enter(s)
	v := rt.Thread.AtomicLoad(s, addr, rt.effOrder(sr, order))
	rt.exit(sr)
	return v
}

func (rt *repairThread) AtomicStore(s Site, addr uint64, v uint64, order MemOrder) {
	sr := rt.enter(s)
	rt.Thread.AtomicStore(s, addr, v, rt.effOrder(sr, order))
	rt.exit(sr)
}
