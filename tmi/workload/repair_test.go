package workload

import "testing"

// TestJoinOrdersLattice: JoinOrders is the LUB on the C11 strength lattice —
// commutative, idempotent, monotone toward seq_cst, with acquire⊔release =
// acq_rel as the interesting non-chain join.
func TestJoinOrdersLattice(t *testing.T) {
	orders := []MemOrder{Relaxed, Acquire, Release, AcqRel, SeqCst}
	for _, a := range orders {
		if JoinOrders(a, a) != a {
			t.Errorf("join not idempotent at %v", a)
		}
		if JoinOrders(a, Relaxed) != a || JoinOrders(Relaxed, a) != a {
			t.Errorf("relaxed is not the bottom at %v", a)
		}
		if JoinOrders(a, SeqCst) != SeqCst || JoinOrders(SeqCst, a) != SeqCst {
			t.Errorf("seq_cst is not the top at %v", a)
		}
		for _, b := range orders {
			if JoinOrders(a, b) != JoinOrders(b, a) {
				t.Errorf("join not commutative at (%v,%v)", a, b)
			}
			j := JoinOrders(a, b)
			if j.Acquires() != (a.Acquires() || b.Acquires()) || j.Releases() != (a.Releases() || b.Releases()) {
				t.Errorf("join(%v,%v)=%v loses a direction", a, b, j)
			}
		}
	}
	if JoinOrders(Acquire, Release) != AcqRel {
		t.Errorf("acquire ⊔ release = %v, want acq_rel", JoinOrders(Acquire, Release))
	}
}

// TestParseRepairRoundTrip: every (kind, order) pair the suggest schema can
// emit parses back to the same repair.
func TestParseRepairRoundTrip(t *testing.T) {
	kinds := []RepairKind{RepairAtomic, RepairOrder, RepairFenceBefore, RepairFenceAfter}
	orders := []MemOrder{Relaxed, Acquire, Release, AcqRel, SeqCst}
	for _, k := range kinds {
		for _, o := range orders {
			want := Repair{Site: "w.site", Kind: k, Order: o}
			got, err := ParseRepair("w.site", k.String(), o.String())
			if err != nil {
				t.Fatalf("ParseRepair(%q, %q): %v", k, o, err)
			}
			if got != want {
				t.Errorf("ParseRepair(%q, %q) = %v, want %v", k, o, got, want)
			}
		}
	}
}

func TestParseRepairRejects(t *testing.T) {
	if _, err := ParseRepair("s", "jitter", "acquire"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseRepair("s", "atomic", "consume"); err == nil {
		t.Error("unknown order accepted")
	}
	if _, err := ParseRepair("", "atomic", "relaxed"); err == nil {
		t.Error("empty site accepted")
	}
}

type stubWorkload struct{}

func (stubWorkload) Name() string       { return "stub" }
func (stubWorkload) Info() Info         { return Info{Threads: 2} }
func (stubWorkload) Setup(Env) error    { return nil }
func (stubWorkload) Body(Thread)        {}
func (stubWorkload) Validate(Env) error { return nil }

// TestRepairedPreservesIdentity: the wrapper keeps the base workload's name,
// forces UsesAtomics when an atomicity or ordering repair is present (the
// runner keys region instrumentation off it), and vanishes entirely for the
// empty repair set.
func TestRepairedPreservesIdentity(t *testing.T) {
	base := stubWorkload{}
	w := Repaired(base, []Repair{{Site: "stub.x", Kind: RepairAtomic, Order: Relaxed}})
	if w.Name() != base.Name() {
		t.Errorf("name %q, want %q", w.Name(), base.Name())
	}
	if got := w.Info(); !got.UsesAtomics {
		t.Error("atomicity repair must force UsesAtomics in Info")
	}
	if got := w.Info(); got.Threads != 2 {
		t.Errorf("threads %d, want 2", got.Threads)
	}
	if w2 := Repaired(base, nil); w2 != Workload(base) {
		t.Error("empty repair set must return the base workload unchanged")
	}
}
