package patterns_test

import (
	"fmt"
	"testing"

	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workload/patterns"
)

func buildFS(layout patterns.Layout) workload.Workload {
	b := patterns.New("patterns-test", 4)
	stats := b.Counters("stats", 3, layout)
	ref := b.SharedWord("refcount")
	bulk := b.Bulk("input", 8)
	scratch := b.PrivateScratch("scratch", 512)
	b.Body(func(t workload.Thread, r *patterns.Resources) {
		for i := 0; i < 4000; i++ {
			r.Stream(bulk, t, int64(t.ID())*(1<<20), 256)
			r.Inc(stats, t, i%3)
			r.ScratchWrite(scratch, t, (i%64)*8, uint64(i))
			if i%32 == 0 {
				r.Add(ref, t, 1, workload.Relaxed)
			}
			t.Work(30)
		}
	})
	return b.Build()
}

func TestPackedCountersFalselyShareAndRepair(t *testing.T) {
	base, err := tmi.Run(buildFS(patterns.Packed), tmi.Config{System: tmi.Pthreads, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Validated {
		t.Fatal(base.ValidationErr)
	}
	padded, err := tmi.Run(buildFS(patterns.Padded), tmi.Config{System: tmi.Pthreads, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.HITMEvents < 4*padded.HITMEvents {
		t.Errorf("packed layout should contend: %d vs %d HITM", base.HITMEvents, padded.HITMEvents)
	}
	prot, err := tmi.Run(buildFS(patterns.Packed), tmi.Config{System: tmi.TMIProtect, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !prot.Repaired || !prot.Validated {
		t.Fatalf("TMI should repair the built workload: repaired=%v err=%s", prot.Repaired, prot.ValidationErr)
	}
	if sp := tmi.Speedup(base, prot); sp < 1.5 {
		t.Errorf("repair speedup %.2f too small", sp)
	}
}

func TestBuilderValidatesLostUpdates(t *testing.T) {
	// Under Sheriff (no CCC), the relaxed atomic adds go through the PTSB
	// and lose updates; the builder's built-in word invariant must catch it.
	rep, err := tmi.Run(buildFS(patterns.Packed), tmi.Config{System: tmi.SheriffProtect, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Validated {
		t.Error("builder validation should catch Sheriff's lost atomic updates")
	}
}

func TestBuilderInfoAndOverrides(t *testing.T) {
	b := patterns.New("x", 2)
	b.Counters("c", 1, patterns.Packed)
	b.Bulk("in", 64)
	b.Body(func(t workload.Thread, r *patterns.Resources) {})
	w := b.Build()
	info := w.Info()
	if info.Threads != 2 || !info.HasFalseSharing || info.FootprintMB != 64 {
		t.Errorf("derived info wrong: %+v", info)
	}
	b2 := patterns.New("y", 3).Info(workload.Info{UsesAsm: true, Desc: "custom"})
	b2.Body(func(t workload.Thread, r *patterns.Resources) {})
	if got := b2.Build().Info(); got.Threads != 3 || !got.UsesAsm {
		t.Errorf("info override wrong: %+v", got)
	}
}

func TestBuilderMutexAndCustomValidate(t *testing.T) {
	b := patterns.New("locked", 4)
	mu := b.Mutex("global")
	sum := b.SharedWord("sum")
	customRan := false
	b.Body(func(t workload.Thread, r *patterns.Resources) {
		for i := 0; i < 300; i++ {
			r.Lock(mu, t)
			r.Add(sum, t, 2, workload.SeqCst)
			r.Unlock(mu, t)
			t.Work(40)
		}
	})
	b.Validate(func(env workload.Env, r *patterns.Resources) error {
		customRan = true
		return nil
	})
	rep, err := tmi.Run(b.Build(), tmi.Config{System: tmi.TMIProtect, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Validated {
		t.Fatal(rep.ValidationErr)
	}
	if !customRan {
		t.Error("custom validation did not run")
	}
}

func TestBuilderCustomValidateFailurePropagates(t *testing.T) {
	b := patterns.New("failing", 1)
	b.Body(func(t workload.Thread, r *patterns.Resources) { t.Work(10) })
	b.Validate(func(env workload.Env, r *patterns.Resources) error {
		return fmt.Errorf("deliberate")
	})
	rep, err := tmi.Run(b.Build(), tmi.Config{System: tmi.Pthreads, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Validated || rep.ValidationErr != "deliberate" {
		t.Errorf("custom failure lost: %v %q", rep.Validated, rep.ValidationErr)
	}
}

func TestBuildWithoutBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build without Body should panic")
		}
	}()
	patterns.New("empty", 1).Build()
}
