// Package patterns is a small builder library over tmi/workload for
// assembling custom benchmarks from the memory-sharing idioms this
// reproduction (and the false sharing literature) deals in: per-thread
// counter blocks (packed or padded), shared atomic words, lock-protected
// slots, streamed bulk inputs and private scratch arrays.
//
// A Builder collects resources and a per-thread body; Build returns a
// workload.Workload whose Setup allocates every resource, whose Body runs
// the user function against resolved handles, and whose Validate checks the
// invariants each resource carries (per-thread counters hold their final
// value, shared words hold the exact sum of adds).
//
//	b := patterns.New("mybench", 4)
//	stats := b.Counters("stats", 3, patterns.Packed)
//	refs := b.SharedWord("refcount")
//	b.Body(func(t workload.Thread, r *patterns.Resources) {
//	    for i := 0; i < 10_000; i++ {
//	        r.Inc(stats, t, i%3)
//	        if i%16 == 0 {
//	            r.Add(refs, t, 1, workload.Relaxed)
//	        }
//	        t.Work(50)
//	    }
//	})
//	w := b.Build()
package patterns

import (
	"fmt"

	"repro/tmi/workload"
)

// Layout selects counter-block placement.
type Layout int

// Layouts.
const (
	// Packed places per-thread blocks back to back — the false sharing bug.
	Packed Layout = iota
	// Padded gives each thread's block its own cache line — the manual fix.
	Padded
)

// CountersHandle identifies a Counters resource.
type CountersHandle int

// WordHandle identifies a SharedWord resource.
type WordHandle int

// BulkHandle identifies a Bulk resource.
type BulkHandle int

// ScratchHandle identifies a PrivateScratch resource.
type ScratchHandle int

type countersSpec struct {
	name      string
	perThread int
	layout    Layout
}

type bulkSpec struct {
	name string
	mb   int
}

type scratchSpec struct {
	name  string
	bytes int
}

// Builder accumulates a workload definition.
type Builder struct {
	name    string
	threads int
	info    workload.Info

	counters []countersSpec
	words    []string
	bulks    []bulkSpec
	scratch  []scratchSpec
	mutexes  []string

	body     func(t workload.Thread, r *Resources)
	validate func(env workload.Env, r *Resources) error
}

// New starts a workload definition.
func New(name string, threads int) *Builder {
	return &Builder{name: name, threads: threads, info: workload.Info{Threads: threads, Desc: "patterns-built workload"}}
}

// Info overrides the workload metadata (threads from New still apply if the
// override leaves Threads zero).
func (b *Builder) Info(info workload.Info) *Builder {
	if info.Threads == 0 {
		info.Threads = b.threads
	}
	b.info = info
	return b
}

// Counters declares a per-thread block of 8-byte counters.
func (b *Builder) Counters(name string, perThread int, layout Layout) CountersHandle {
	b.counters = append(b.counters, countersSpec{name, perThread, layout})
	if layout == Packed {
		b.info.HasFalseSharing = true
	}
	return CountersHandle(len(b.counters) - 1)
}

// SharedWord declares one atomically-updated 8-byte word on its own line
// (true sharing).
func (b *Builder) SharedWord(name string) WordHandle {
	b.words = append(b.words, name)
	return WordHandle(len(b.words) - 1)
}

// Bulk declares mb megabytes of streamed input data.
func (b *Builder) Bulk(name string, mb int) BulkHandle {
	b.bulks = append(b.bulks, bulkSpec{name, mb})
	if b.info.FootprintMB < mb {
		b.info.FootprintMB = mb
	}
	return BulkHandle(len(b.bulks) - 1)
}

// PrivateScratch declares a padded per-thread array of the given size.
func (b *Builder) PrivateScratch(name string, bytes int) ScratchHandle {
	b.scratch = append(b.scratch, scratchSpec{name, bytes})
	return ScratchHandle(len(b.scratch) - 1)
}

// Mutex declares a named lock available to the body via Resources.Lock.
func (b *Builder) Mutex(name string) int {
	b.mutexes = append(b.mutexes, name)
	return len(b.mutexes) - 1
}

// Body installs the per-thread function.
func (b *Builder) Body(fn func(t workload.Thread, r *Resources)) *Builder {
	b.body = fn
	return b
}

// Validate installs an extra validation function (the built-in resource
// invariants always run).
func (b *Builder) Validate(fn func(env workload.Env, r *Resources) error) *Builder {
	b.validate = fn
	return b
}

// Build finalizes the workload.
func (b *Builder) Build() workload.Workload {
	if b.body == nil {
		panic("patterns: Build without Body")
	}
	return &built{def: b}
}

// Resources resolves handles to simulated addresses at run time.
type Resources struct {
	def *Builder

	counterBase   []uint64
	counterStride []uint64
	wordAddr      []uint64
	bulkBase      []uint64
	scratchBase   []uint64
	mutexes       []workload.Mutex
	bar           workload.Barrier

	sInc, sAdd, sStream, sScratch workload.Site

	// expected tracks per-(handle,tid,idx) final counter values and per-word
	// add totals for validation.
	counterFinal map[[3]int]uint64
	wordTotal    []uint64
}

// Inc stores v+1-style monotonic values: it writes iteration i+1 into the
// counter so validation can check the exact final value.
func (r *Resources) Inc(h CountersHandle, t workload.Thread, idx int) {
	addr := r.CounterAddr(h, t.ID(), idx)
	key := [3]int{int(h), t.ID(), idx}
	r.counterFinal[key]++
	t.Store(r.sInc, addr, r.counterFinal[key])
}

// CounterAddr resolves a counter's address.
func (r *Resources) CounterAddr(h CountersHandle, tid, idx int) uint64 {
	return r.counterBase[h] + uint64(tid)*r.counterStride[h] + uint64(idx)*8
}

// Add atomically adds to a shared word.
func (r *Resources) Add(h WordHandle, t workload.Thread, delta uint64, order workload.MemOrder) {
	r.wordTotal[h] += delta
	t.AtomicAdd(r.sAdd, r.wordAddr[h], delta, order)
}

// Stream sweeps n bytes of the bulk resource starting at offset off.
func (r *Resources) Stream(h BulkHandle, t workload.Thread, off, n int64) {
	t.Stream(r.sStream, r.bulkBase[h]+uint64(off), n, false)
}

// ScratchWrite stores into the thread's private scratch at byte offset off
// (8-byte aligned).
func (r *Resources) ScratchWrite(h ScratchHandle, t workload.Thread, off int, v uint64) {
	base := r.scratchBase[h] + uint64(t.ID())*uint64(r.def.scratch[h].bytes)
	t.Store(r.sScratch, base+uint64(off)&^7, v)
}

// Lock and Unlock operate on a declared mutex.
func (r *Resources) Lock(i int, t workload.Thread)   { t.Lock(r.mutexes[i]) }
func (r *Resources) Unlock(i int, t workload.Thread) { t.Unlock(r.mutexes[i]) }

// Barrier blocks until every thread arrives.
func (r *Resources) Barrier(t workload.Thread) { t.Wait(r.bar) }

// built adapts a Builder to workload.Workload.
type built struct {
	def *Builder
	res *Resources
}

var _ workload.Workload = (*built)(nil)

func (w *built) Name() string        { return w.def.name }
func (w *built) Info() workload.Info { return w.def.info }

func (w *built) Setup(env workload.Env) error {
	d := w.def
	r := &Resources{def: d, counterFinal: make(map[[3]int]uint64)}
	for _, c := range d.counters {
		stride := uint64(c.perThread * 8)
		if c.layout == Padded {
			if stride < 64 {
				stride = 64
			} else {
				stride = (stride + 63) &^ 63
			}
		}
		r.counterBase = append(r.counterBase, env.Alloc(int(stride)*d.threads, 8))
		r.counterStride = append(r.counterStride, stride)
	}
	for range d.words {
		r.wordAddr = append(r.wordAddr, env.Alloc(8, 64))
	}
	r.wordTotal = make([]uint64, len(d.words))
	for _, bs := range d.bulks {
		r.bulkBase = append(r.bulkBase, env.AllocBulk(int64(bs.mb)<<20))
	}
	for _, ss := range d.scratch {
		r.scratchBase = append(r.scratchBase, env.Alloc(ss.bytes*d.threads, 64))
	}
	for _, name := range d.mutexes {
		r.mutexes = append(r.mutexes, env.NewMutex(d.name+"."+name))
	}
	r.bar = env.NewBarrier(d.name+".done", d.threads)
	r.sInc = env.Site(d.name+".counter_inc", workload.SiteStore, 8)
	r.sAdd = env.Site(d.name+".word_add", workload.SiteAtomic, 8)
	r.sStream = env.Site(d.name+".stream", workload.SiteLoad, 8)
	r.sScratch = env.Site(d.name+".scratch", workload.SiteStore, 8)
	w.res = r
	return nil
}

func (w *built) Body(t workload.Thread) {
	w.def.body(t, w.res)
	w.res.Barrier(t)
}

func (w *built) Validate(env workload.Env) error {
	r := w.res
	for key, want := range r.counterFinal {
		h, tid, idx := CountersHandle(key[0]), key[1], key[2]
		if got := env.Load(r.CounterAddr(h, tid, idx), 8); got != want {
			return fmt.Errorf("%s: counters[%d] thread %d idx %d = %d, want %d",
				w.def.name, h, tid, idx, got, want)
		}
	}
	for h, want := range r.wordTotal {
		if got := env.Load(r.wordAddr[h], 8); got != want {
			return fmt.Errorf("%s: shared word %d = %d, want %d (lost updates)",
				w.def.name, h, got, want)
		}
	}
	if w.def.validate != nil {
		return w.def.validate(env, r)
	}
	return nil
}
