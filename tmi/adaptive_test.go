package tmi_test

import (
	"testing"

	"repro/tmi"
)

// The adaptive-period extension automates Figure 4's tradeoff: starting at
// period 1 on a workload with persistent true sharing (so sampling load
// never stops), the detection thread must back the period off within a few
// intervals, recovering most of the assist cost of static period 1.
func TestAdaptivePeriodBacksOffUnderLoad(t *testing.T) {
	rep := run(t, "leveldb-clean", tmi.Config{System: tmi.TMIDetect, HugePages: true, Period: 1, AdaptivePeriod: true})
	if !rep.Validated {
		t.Fatal(rep.ValidationErr)
	}
	p, adapted := rep.Notes["adaptive.period"]
	if !adapted || p <= 1 {
		t.Fatalf("period should have been raised from 1, got %v (adapted=%v)", p, adapted)
	}
	static := run(t, "leveldb-clean", tmi.Config{System: tmi.TMIDetect, HugePages: true, Period: 1})
	if rep.SimSeconds >= static.SimSeconds {
		t.Errorf("adaptive (%.3fms) should beat static period 1 (%.3fms)",
			rep.SimSeconds*1e3, static.SimSeconds*1e3)
	}
}

// On a quiet workload the adaptive detector sharpens (lowers) the period to
// regain sampling resolution, without measurable cost.
func TestAdaptivePeriodSharpensWhenQuiet(t *testing.T) {
	rep := run(t, "leveldb-clean", tmi.Config{System: tmi.TMIDetect, HugePages: true, Period: 1000, AdaptivePeriod: true})
	if !rep.Validated {
		t.Fatal(rep.ValidationErr)
	}
	if p, adapted := rep.Notes["adaptive.period"]; !adapted || p >= 1000 {
		t.Errorf("period should have been lowered from 1000, got %v (adapted=%v)", p, adapted)
	}
}
