package tmi_test

import (
	"fmt"
	"testing"

	"repro/tmi"
	"repro/tmi/workload"
)

// globalCounters puts the classic packed-counter bug in the globals region
// (.bss) instead of the heap: per §3.1 the detector monitors globals exactly
// like the heap, so TMI must find and repair it there too.
type globalCounters struct {
	iters int
	base  uint64
	bar   workload.Barrier
	inc   workload.Site
}

func (g *globalCounters) Name() string { return "global-counters" }

func (g *globalCounters) Info() workload.Info {
	return workload.Info{Threads: 4, HasFalseSharing: true, Desc: "packed counters in .bss"}
}

func (g *globalCounters) Setup(env workload.Env) error {
	g.base = env.AllocGlobal(8*env.Threads(), 64)
	g.bar = env.NewBarrier("done", env.Threads())
	g.inc = env.Site("globals.inc", workload.SiteStore, 8)
	return nil
}

func (g *globalCounters) Body(t workload.Thread) {
	mine := g.base + uint64(t.ID())*8
	for i := 0; i < g.iters; i++ {
		t.Store(g.inc, mine, uint64(i+1))
		t.Work(40)
	}
	t.Wait(g.bar)
}

func (g *globalCounters) Validate(env workload.Env) error {
	for tid := 0; tid < env.Threads(); tid++ {
		if got := env.Load(g.base+uint64(tid)*8, 8); got != uint64(g.iters) {
			return fmt.Errorf("global counter %d = %d, want %d", tid, got, g.iters)
		}
	}
	return nil
}

func TestGlobalsRegionDetectedAndRepaired(t *testing.T) {
	w := &globalCounters{iters: 20_000}
	base, err := tmi.Run(w, tmi.Config{System: tmi.Pthreads, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.HITMEvents == 0 {
		t.Fatal("globals false sharing should contend")
	}
	prot, err := tmi.Run(&globalCounters{iters: 20_000}, tmi.Config{System: tmi.TMIProtect, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !prot.Repaired {
		t.Fatal("false sharing in globals must be detected and repaired (§3.1)")
	}
	if !prot.Validated {
		t.Fatal(prot.ValidationErr)
	}
	if sp := tmi.Speedup(base, prot); sp < 2 {
		t.Errorf("globals repair speedup %.2f too small", sp)
	}
}

func TestGlobalsUnderSheriffCommitExactly(t *testing.T) {
	// Race-free global counters are Lemma 3.1 territory: even Sheriff's
	// protect-everything PTSB must commit them exactly.
	rep, err := tmi.Run(&globalCounters{iters: 5000}, tmi.Config{System: tmi.SheriffProtect, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Validated {
		t.Error(rep.ValidationErr)
	}
}
