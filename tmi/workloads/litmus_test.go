package workloads_test

import (
	"strings"
	"testing"

	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

// TestLitmusRunsCleanUnderDefaultSchedule smoke-tests every litmus kernel
// under the default (min-clock) schedule: the kernels must set up, run and
// validate under the baseline and under TMI with the sanitizer asserting the
// annotation contract. Schedule exploration lives in internal/mc; this test
// only pins that the kernels are well-formed workloads.
func TestLitmusRunsCleanUnderDefaultSchedule(t *testing.T) {
	names := []string{
		"litmus-sb", "litmus-mp", "litmus-lb", "litmus-iriw", "litmus-corr",
		"litmus-brokenfence",
	}
	for _, name := range names {
		for _, sys := range []tmi.System{tmi.Pthreads, tmi.TMIAlloc} {
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatalf("ByName(%q): %v", name, err)
			}
			rep, err := tmi.Run(w, tmi.Config{System: sys, Sanitize: true})
			if err != nil {
				t.Fatalf("%s under %v: %v", name, sys, err)
			}
			if rep.SanitizerViolations != 0 {
				t.Errorf("%s under %v: %d sanitizer violations: %v",
					name, sys, rep.SanitizerViolations, rep.SanitizerDetails)
			}
			if out, ok := w.(workload.Outcomer); ok {
				s := out.Outcome(nil)
				if s == "" || strings.Contains(s, "%!") {
					t.Errorf("%s: bad outcome fingerprint %q", name, s)
				}
			} else {
				t.Errorf("%s: does not implement workload.Outcomer", name)
			}
		}
	}
}
