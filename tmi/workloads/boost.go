package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// spinlockpool reproduces the boost::detail::spinlock_pool bug: a pool of
// spinlocks packed into one cache line, indexed by pointer hash. Every
// lock/unlock by different threads on different locks invalidates the same
// line. TMI repairs it without page protection at all: its process-shared
// lock indirection moves the hot CAS word to a padded object, leaving only
// pointer reads on the packed line.
type spinlockpool struct {
	variant Variant
	iters   int

	pool    []workload.Mutex
	slots   uint64
	bar     workload.Barrier
	sSlot   workload.Site
	sSlotLd workload.Site
}

// Spinlockpool constructs the benchmark.
func Spinlockpool(v Variant) workload.Workload {
	return &spinlockpool{variant: v, iters: 4000}
}

var _ workload.Workload = (*spinlockpool)(nil)

const poolLocks = 8

func (s *spinlockpool) Name() string {
	if s.variant == VariantManual {
		return "spinlockpool-manual"
	}
	return "spinlockpool"
}

func (s *spinlockpool) Info() workload.Info {
	return workload.Info{
		Threads:         4,
		FootprintMB:     10,
		HasFalseSharing: s.variant == VariantFS,
		SyncHeavy:       true, // LASER keeps repair off: TSO + constant sync
		Desc:            "boost spinlock_pool: locks packed into one line",
	}
}

func (s *spinlockpool) Setup(env workload.Env) error {
	n := env.Threads()
	env.AllocBulk(int64(s.Info().FootprintMB) << 20) // the pool's client data
	stride := uint64(8)
	if s.variant == VariantManual {
		stride = 64 // the manual fix pads each lock to its own line
	}
	base := env.Alloc(int(stride)*poolLocks, 64)
	for i := 0; i < poolLocks; i++ {
		s.pool = append(s.pool, env.NewMutexAt(fmt.Sprintf("spinlockpool.lock%d", i), base+uint64(i)*stride))
	}
	s.slots = env.Alloc(poolLocks*64, 64)
	s.bar = env.NewBarrier("spinlockpool.bar", n)
	s.sSlot = env.Site("spinlockpool.slot", workload.SiteStore, 8)
	s.sSlotLd = env.Site("spinlockpool.slot_load", workload.SiteLoad, 8)
	return nil
}

func (s *spinlockpool) Body(t workload.Thread) {
	rng := t.Rand()
	for i := 0; i < s.iters; i++ {
		k := rng.Intn(poolLocks)
		t.Lock(s.pool[k])
		slot := s.slots + uint64(k)*64
		t.Store(s.sSlot, slot, t.Load(s.sSlotLd, slot)+1)
		t.Unlock(s.pool[k])
		t.Work(120)
	}
	t.Wait(s.bar)
}

func (s *spinlockpool) Validate(env workload.Env) error {
	var total uint64
	for k := 0; k < poolLocks; k++ {
		total += env.Load(s.slots+uint64(k)*64, 8)
	}
	want := uint64(env.Threads() * s.iters)
	if total != want {
		return fmt.Errorf("spinlockpool: slot total %d, want %d (lock protection broken)", total, want)
	}
	return nil
}

// shptr reproduces the Boost shared_ptr microbenchmarks: reference-count
// manipulation on one page while unrelated false sharing runs on another
// page. The refcount updates use either relaxed atomics (Boost's default on
// modern platforms) or a mutex.
//
// The pair demonstrates what code-centric consistency buys: relaxed atomics
// need no PTSB flush, so the repair on the false-sharing page keeps its full
// benefit; the mutex variant forces a flush at every acquire and release,
// negating almost all of it (paper §4.3: 4.43x vs 1.04x).
type shptr struct {
	useLock bool
	variant Variant
	iters   int

	refcount uint64
	counters uint64
	stride   uint64
	mu       workload.Mutex
	bar      workload.Barrier

	sRef, sCtr workload.Site
	// The lock variant updates the refcount with plain accesses (the mutex
	// orders them), so it registers load/store sites; only the lock-free
	// variant's accesses are atomic instructions.
	sRefLd, sRefSt workload.Site
}

// ShptrRelaxed uses relaxed atomic refcounts.
func ShptrRelaxed(v Variant) workload.Workload {
	return &shptr{useLock: false, variant: v, iters: 25_000}
}

// ShptrLock protects the refcount with a pthread mutex.
func ShptrLock(v Variant) workload.Workload {
	return &shptr{useLock: true, variant: v, iters: 25_000}
}

var _ workload.Workload = (*shptr)(nil)

func (s *shptr) base() string {
	if s.useLock {
		return "shptr-lock"
	}
	return "shptr-relaxed"
}

func (s *shptr) Name() string {
	if s.variant == VariantManual {
		return s.base() + "-manual"
	}
	return s.base()
}

func (s *shptr) Info() workload.Info {
	return workload.Info{
		Threads:         4,
		FootprintMB:     10,
		UsesAtomics:     !s.useLock,
		HasFalseSharing: s.variant == VariantFS,
		SyncHeavy:       true,
		Desc:            "refcount page + separate false-sharing page",
	}
}

// refcountEvery controls how often the smart pointer is manipulated
// relative to the false-sharing accesses ("occasional" in the paper).
const refcountEvery = 32

func (s *shptr) Setup(env workload.Env) error {
	n := env.Threads()
	env.AllocBulk(int64(s.Info().FootprintMB) << 20) // the shared objects
	// Page one: the reference count.
	s.refcount = env.Alloc(64, int(uint64(env.PageSize())))
	if s.useLock {
		s.mu = env.NewMutex("shptr.refcount_mutex")
	}
	// Page two: per-thread counters, packed (fs) or padded (manual).
	if s.variant == VariantManual {
		s.stride = 64
	} else {
		s.stride = 8
	}
	s.counters = env.Alloc(int(s.stride)*n, int(uint64(env.PageSize())))
	s.bar = env.NewBarrier("shptr.bar", n)
	if s.useLock {
		s.sRefLd = env.Site("shptr.refcount_load", workload.SiteLoad, 8)
		s.sRefSt = env.Site("shptr.refcount_store", workload.SiteStore, 8)
	} else {
		s.sRef = env.Site("shptr.refcount", workload.SiteAtomic, 8)
	}
	s.sCtr = env.Site("shptr.counter", workload.SiteStore, 8)
	return nil
}

func (s *shptr) Body(t workload.Thread) {
	my := s.counters + uint64(t.ID())*s.stride
	for i := 0; i < s.iters; i++ {
		t.Store(s.sCtr, my, uint64(i+1))
		t.Work(25)
		if i%refcountEvery == 0 {
			if s.useLock {
				t.Lock(s.mu)
				t.Store(s.sRefSt, s.refcount, t.Load(s.sRefLd, s.refcount)+1)
				t.Unlock(s.mu)
			} else {
				t.AtomicAdd(s.sRef, s.refcount, 1, workload.Relaxed)
			}
		}
	}
	t.Wait(s.bar)
}

func (s *shptr) Validate(env workload.Env) error {
	n := env.Threads()
	for tid := 0; tid < n; tid++ {
		if got := env.Load(s.counters+uint64(tid)*s.stride, 8); got != uint64(s.iters) {
			return fmt.Errorf("%s: thread %d counter %d, want %d", s.base(), tid, got, s.iters)
		}
	}
	want := uint64(n) * uint64((s.iters+refcountEvery-1)/refcountEvery)
	if got := env.Load(s.refcount, 8); got != want {
		return fmt.Errorf("%s: refcount %d, want %d (atomicity broken)", s.base(), got, want)
	}
	return nil
}
