package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// stringmatch reproduces Phoenix's string-match bug: two per-thread
// structures, cur_word and cur_word_final, are allocated back to back and
// can partially overlap on the same cache line across threads. Each key
// processed updates cur_word; matches update cur_word_final.
type stringmatch struct {
	variant Variant
	iters   int

	keys   uint64
	cur    uint64
	final  uint64
	stride uint64
	bar    workload.Barrier

	sKey, sCur, sFinal workload.Site
}

// Stringmatch constructs the benchmark.
func Stringmatch(v Variant) workload.Workload {
	return &stringmatch{variant: v, iters: 25_000}
}

var _ workload.Workload = (*stringmatch)(nil)

func (s *stringmatch) Name() string {
	if s.variant == VariantManual {
		return "stringmatch-manual"
	}
	return "stringmatch"
}

func (s *stringmatch) Info() workload.Info {
	return workload.Info{
		Threads:         4,
		FootprintMB:     12,
		HasFalseSharing: s.variant == VariantFS,
		Desc:            "per-thread cur_word/cur_word_final structs overlapping lines",
	}
}

func (s *stringmatch) Setup(env workload.Env) error {
	n := env.Threads()
	s.keys = env.AllocBulk(int64(s.Info().FootprintMB) << 20)
	if s.variant == VariantManual {
		s.stride = 64
	} else {
		s.stride = 24 // packed 24-byte structs: threads interleave on lines
	}
	s.cur = env.Alloc(int(s.stride)*n, 8)
	s.final = env.Alloc(int(s.stride)*n, 8)
	s.bar = env.NewBarrier("stringmatch.bar", n)
	s.sKey = env.Site("stringmatch.load_keys", workload.SiteLoad, 8)
	s.sCur = env.Site("stringmatch.set_cur_word", workload.SiteStore, 8)
	s.sFinal = env.Site("stringmatch.set_cur_word_final", workload.SiteStore, 8)
	return nil
}

func (s *stringmatch) Body(t workload.Thread) {
	n := t.NumThreads()
	const chunk = int64(256)
	partSize := (int64(s.Info().FootprintMB) << 20) / int64(n)
	part := s.keys + uint64(t.ID())*uint64(partSize)
	cur := s.cur + uint64(t.ID())*s.stride
	final := s.final + uint64(t.ID())*s.stride
	matches := 0
	for i := 0; i < s.iters; i++ {
		t.Stream(s.sKey, part+uint64((int64(i)*chunk)%(partSize-chunk)), chunk, false)
		t.Work(15) // hash the key
		t.Store(s.sCur, cur, uint64(i+1))
		if i%16 == 0 { // a match
			matches++
			t.Store(s.sFinal, final, uint64(matches))
		}
	}
	t.Wait(s.bar)
}

func (s *stringmatch) Validate(env workload.Env) error {
	for tid := 0; tid < env.Threads(); tid++ {
		if got := env.Load(s.cur+uint64(tid)*s.stride, 8); got != uint64(s.iters) {
			return fmt.Errorf("stringmatch: thread %d cur_word %d, want %d", tid, got, s.iters)
		}
		wantMatches := uint64((s.iters + 15) / 16)
		if got := env.Load(s.final+uint64(tid)*s.stride, 8); got != wantMatches {
			return fmt.Errorf("stringmatch: thread %d cur_word_final %d, want %d", tid, got, wantMatches)
		}
	}
	return nil
}
