package workloads

import "repro/tmi/workload"

// The generic suite: each definition instantiates the parameterized kernel
// with the benchmark's published traits — footprint (Figure 8 baselines),
// synchronization style, use of atomics and inline assembly (§4.5 inventories
// canneal, dedup and leveldb), custom flag-based synchronization in several
// Splash2 codes, lock-heavy benchmarks (fluidanimate, water-spatial), and
// kmeans' heavy true sharing (the 17% detection-overhead outlier of
// Figure 7).

func generic(s *spec) workload.Workload { return s }

// Blackscholes: embarrassingly parallel option pricing over a large input.
func Blackscholes() workload.Workload {
	return generic(&spec{
		name:  "blackscholes",
		info:  workload.Info{Threads: 8, FootprintMB: 600, Desc: "option pricing, streaming, no sharing"},
		iters: 2500, workPerIter: 2200, streamPerIter: 32 << 10, privateStores: 1,
	})
}

// Bodytrack: pipelined vision workload with a global work queue.
func Bodytrack() workload.Workload {
	return generic(&spec{
		name:  "bodytrack",
		info:  workload.Info{Threads: 8, FootprintMB: 430, Desc: "vision pipeline, queue lock"},
		iters: 2200, workPerIter: 1500, streamPerIter: 16 << 10, globalLockEvery: 12, sharedROLoads: 2,
	})
}

// Canneal: simulated annealing with lock-free atomic pointer swaps in
// inline assembly (6 asm fragments per §4.5).
func Canneal() workload.Workload {
	return generic(&spec{
		name: "canneal",
		info: workload.Info{Threads: 8, FootprintMB: 940, UsesAtomics: true, UsesAsm: true,
			Desc: "annealing, atomic swaps via inline asm"},
		iters: 2000, workPerIter: 900, streamPerIter: 64 << 10, atomicsPerIter: 1, asmEvery: 4, swapEvery: 3,
	})
}

// Dedup: deduplication with SSL hashing (7 asm fragments from openssl).
func Dedup() workload.Workload {
	return generic(&spec{
		name: "dedup",
		info: workload.Info{Threads: 8, FootprintMB: 1600, UsesAsm: true,
			Desc: "dedup pipeline, openssl asm, true sharing on hash buckets"},
		iters: 2000, workPerIter: 1100, streamPerIter: 96 << 10, asmEvery: 2, globalLockEvery: 6, atomicsPerIter: 1,
	})
}

// Facesim: physics simulation, barrier-phased.
func Facesim() workload.Workload {
	return generic(&spec{
		name:  "facesim",
		info:  workload.Info{Threads: 8, FootprintMB: 780, Desc: "physics phases with barriers"},
		iters: 2000, workPerIter: 2000, streamPerIter: 32 << 10, barrierEvery: 100, privateStores: 1,
	})
}

// Ferret: similarity search pipeline with shared read-mostly index.
func Ferret() workload.Workload {
	return generic(&spec{
		name:  "ferret",
		info:  workload.Info{Threads: 8, FootprintMB: 560, Desc: "similarity search, read-shared index"},
		iters: 2200, workPerIter: 1300, streamPerIter: 8 << 10, sharedROLoads: 2,
		rwReadEvery: 1, rwWriteEvery: 64, globalLockEvery: 16,
	})
}

// Fluidanimate: fine-grained per-cell locks (the lock-indirection memory
// outlier of Figure 8).
func Fluidanimate() workload.Workload {
	return generic(&spec{
		name:  "fluidanimate",
		info:  workload.Info{Threads: 8, FootprintMB: 700, Desc: "fluid cells under fine-grained locks"},
		iters: 2400, workPerIter: 500, streamPerIter: 8 << 10, fineLocks: 96, barrierEvery: 300,
	})
}

// Streamcluster: barrier-heavy clustering.
func Streamcluster() workload.Workload {
	return generic(&spec{
		name:  "streamcluster",
		info:  workload.Info{Threads: 8, FootprintMB: 110, Desc: "clustering, frequent barriers"},
		iters: 1800, workPerIter: 900, streamPerIter: 16 << 10, barrierEvery: 30, sharedROLoads: 2,
	})
}

// Swaptions: pure Monte-Carlo compute.
func Swaptions() workload.Workload {
	return generic(&spec{
		name:  "swaptions",
		info:  workload.Info{Threads: 8, FootprintMB: 10, Desc: "Monte-Carlo pricing, no sharing"},
		iters: 2500, workPerIter: 2600, privateStores: 1,
	})
}

// Kmeans: clustering with heavily contended shared centroids — the paper's
// true-sharing outlier (17% detection overhead from the HITM record rate).
func Kmeans() workload.Workload {
	return generic(&spec{
		name:  "kmeans",
		info:  workload.Info{Threads: 8, FootprintMB: 10, Desc: "clustering, true sharing on centroids"},
		iters: 3000, workPerIter: 100, streamPerIter: 4 << 10, atomicsPerIter: 2, hotLoads: 8, barrierEvery: 500,
	})
}

// Matrix: blocked matrix multiply.
func Matrix() workload.Workload {
	return generic(&spec{
		name:  "matrix",
		info:  workload.Info{Threads: 8, FootprintMB: 8, Desc: "matrix multiply, private blocks"},
		iters: 2200, workPerIter: 1800, streamPerIter: 8 << 10, privateStores: 1,
	})
}

// PCA: covariance over a streamed matrix.
func PCA() workload.Workload {
	return generic(&spec{
		name:  "pca",
		info:  workload.Info{Threads: 8, FootprintMB: 10, Desc: "covariance, streaming + private sums"},
		iters: 2200, workPerIter: 1400, streamPerIter: 16 << 10, privateStores: 2,
	})
}

// ReverseIndex: HTML link extraction into shared hash buckets.
func ReverseIndex() workload.Workload {
	return generic(&spec{
		name:  "reverse",
		info:  workload.Info{Threads: 8, FootprintMB: 1100, Desc: "reverse index, bucket locks"},
		iters: 2000, workPerIter: 800, streamPerIter: 64 << 10, fineLocks: 32,
	})
}

// Wordcount: map-reduce word counting.
func Wordcount() workload.Workload {
	return generic(&spec{
		name:  "wordcount",
		info:  workload.Info{Threads: 8, FootprintMB: 10, Desc: "word count, mostly private maps"},
		iters: 2400, workPerIter: 1000, streamPerIter: 16 << 10, privateStores: 2, globalLockEvery: 200,
	})
}

// Splash2x half of the suite. Several use custom flag-based synchronization
// (§4.5), which Sheriff's design cannot run.

// Barnes: N-body with flag-synchronized tree building.
func Barnes() workload.Workload {
	return generic(&spec{
		name:  "barnes",
		info:  workload.Info{Threads: 8, FootprintMB: 180, UsesCustomSync: true, Desc: "N-body tree, flag sync"},
		iters: 2200, workPerIter: 1500, streamPerIter: 8 << 10, sharedROLoads: 3, barrierEvery: 250,
	})
}

// FFT: all-to-all transpose phases.
func FFT() workload.Workload {
	return generic(&spec{
		name:  "fft",
		info:  workload.Info{Threads: 8, FootprintMB: 820, Desc: "FFT transpose, streaming-heavy"},
		iters: 1800, workPerIter: 700, streamPerIter: 128 << 10, barrierEvery: 150,
	})
}

// FMM: fast multipole with custom inter-phase flags.
func FMM() workload.Workload {
	return generic(&spec{
		name:  "fmm",
		info:  workload.Info{Threads: 8, FootprintMB: 130, UsesCustomSync: true, Desc: "multipole, flag sync"},
		iters: 2200, workPerIter: 1400, streamPerIter: 4 << 10, sharedROLoads: 2, barrierEvery: 200,
	})
}

// LuCB: contiguous-block LU (no false sharing by construction).
func LuCB() workload.Workload {
	return generic(&spec{
		name:  "lu-cb",
		info:  workload.Info{Threads: 8, FootprintMB: 70, Desc: "LU contiguous blocks"},
		iters: 2200, workPerIter: 1600, streamPerIter: 8 << 10, barrierEvery: 120, privateStores: 1,
	})
}

// OceanCP/OceanNCP: grid solvers; the non-contiguous variant's native input
// needs 27 GB (the Figure 8 giant).
func OceanCP() workload.Workload {
	return generic(&spec{
		name:  "ocean-cp",
		info:  workload.Info{Threads: 8, FootprintMB: 890, UsesCustomSync: true, Desc: "ocean grid, contiguous"},
		iters: 1800, workPerIter: 900, streamPerIter: 96 << 10, barrierEvery: 90,
	})
}

// OceanNCP is the non-contiguous 27 GB variant.
func OceanNCP() workload.Workload {
	return generic(&spec{
		name:  "ocean-ncp",
		info:  workload.Info{Threads: 8, FootprintMB: 27_000, UsesCustomSync: true, Desc: "ocean grid, 27GB"},
		iters: 1500, workPerIter: 900, streamPerIter: 1 << 20, barrierEvery: 80,
	})
}

// Radiosity: work stealing with custom task-queue flags.
func Radiosity() workload.Workload {
	return generic(&spec{
		name:  "radiosity",
		info:  workload.Info{Threads: 8, FootprintMB: 150, UsesCustomSync: true, Desc: "radiosity, task queues"},
		iters: 2200, workPerIter: 1100, globalLockEvery: 10, sharedROLoads: 2,
	})
}

// Radix: radix sort with all-to-all permutation writes.
func Radix() workload.Workload {
	return generic(&spec{
		name:  "radix",
		info:  workload.Info{Threads: 8, FootprintMB: 1200, Desc: "radix sort, streaming writes"},
		iters: 1800, workPerIter: 500, streamPerIter: 128 << 10, barrierEvery: 120,
	})
}

// Raytrace: read-shared scene, private framebuffer tiles.
func Raytrace() workload.Workload {
	return generic(&spec{
		name:  "raytrace",
		info:  workload.Info{Threads: 8, FootprintMB: 140, UsesCustomSync: true, Desc: "raytracing, shared scene"},
		iters: 2400, workPerIter: 1700, sharedROLoads: 4, privateStores: 1,
	})
}

// Volrend: volume rendering with custom task flags.
func Volrend() workload.Workload {
	return generic(&spec{
		name:  "volrend",
		info:  workload.Info{Threads: 8, FootprintMB: 30, UsesCustomSync: true, Desc: "volume rendering"},
		iters: 2400, workPerIter: 1200, sharedROLoads: 3, privateStores: 1,
	})
}

// WaterNSquare / WaterSpatial: molecular dynamics; the spatial variant uses
// many fine-grained cell locks (Figure 8's other indirection outlier).
func WaterNSquare() workload.Workload {
	return generic(&spec{
		name:  "water-nsquare",
		info:  workload.Info{Threads: 8, FootprintMB: 30, Desc: "MD n-squared, pairwise forces"},
		iters: 2400, workPerIter: 1500, globalLockEvery: 40, privateStores: 1,
	})
}

// WaterSpatial is the cell-decomposed variant.
func WaterSpatial() workload.Workload {
	return generic(&spec{
		name:  "water-spatial",
		info:  workload.Info{Threads: 8, FootprintMB: 40, Desc: "MD spatial cells, fine locks"},
		iters: 2400, workPerIter: 800, fineLocks: 128, barrierEvery: 400,
	})
}
