// Package workloads is the benchmark catalog of the reproduction: the 35
// workloads of the paper's detection suite (Phoenix, PARSEC, Splash2x,
// leveldb and the Boost microbenchmarks), the false-sharing repair suite of
// Figure 9, and the consistency kernels behind Figures 3, 11 and 12.
//
// The PARSEC/Splash-class workloads are instances of a parameterized kernel
// (spec) whose knobs — streamed footprint, compute per iteration, shared
// read-only tables, lock granularity, atomics, assembly regions, barriers —
// reproduce each benchmark's published sharing pattern. The benchmarks the
// paper discusses individually (histogram, linear-regression, stringmatch,
// lu-ncb, leveldb, the Boost microbenchmarks, canneal's swaps, cholesky's
// flags) are bespoke implementations in their own files.
package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// Variant selects a workload's memory layout.
type Variant int

// Variants.
const (
	// VariantFS is the published (buggy, false-sharing) layout.
	VariantFS Variant = iota
	// VariantManual applies the manual source fix (padding/alignment).
	VariantManual
	// VariantClean has no injected bug (leveldb as shipped).
	VariantClean
)

func (v Variant) String() string {
	switch v {
	case VariantFS:
		return "fs"
	case VariantManual:
		return "manual"
	case VariantClean:
		return "clean"
	}
	return "?"
}

// spec is the parameterized synthetic kernel behind the generic suite
// workloads.
type spec struct {
	name string
	info workload.Info

	iters         int   // iterations per thread
	workPerIter   int64 // compute cycles per iteration
	streamPerIter int64 // bytes of bulk streaming per iteration

	sharedROLoads   int  // loads/iter from a shared read-only table
	atomicsPerIter  int  // relaxed atomic increments on one shared counter
	hotLoads        int  // loads/iter from the shared counter line (true sharing)
	strongAtomics   bool // use seq_cst instead of relaxed
	asmEvery        int  // every N iters, one atomic increment inside asm
	swapEvery       int  // every N iters, one lock-free asm pair-swap (canneal)
	globalLockEvery int  // every N iters, one critical section on one lock
	rwReadEvery     int  // every N iters, read the shared index under an rwlock
	rwWriteEvery    int  // every N iters, update the shared index exclusively
	fineLocks       int  // >0: per-iter critical section on 1-of-N locks
	barrierEvery    int  // every N iters, a barrier
	privateStores   int  // stores/iter to a thread-private (padded) array

	// Populated by Setup.
	bulkBase   uint64
	roBase     uint64
	counter    uint64
	asmCounter uint64
	swapElems  uint64
	privBase   uint64
	lockSlots  uint64
	global     workload.Mutex
	fine       []workload.Mutex
	rw         workload.RWMutex
	bar        workload.Barrier

	sStream, sRO, sCtr, sHot, sAsm, sPriv, sSlot, sSwapA, sSwapB workload.Site
}

var _ workload.Workload = (*spec)(nil)

func (s *spec) Name() string { return s.name }

// Info derives the consistency-relevant traits from the kernel parameters,
// so a spec can never use atomics or assembly without declaring it.
func (s *spec) Info() workload.Info {
	info := s.info
	if s.atomicsPerIter > 0 {
		info.UsesAtomics = true
	}
	if s.asmEvery > 0 || s.swapEvery > 0 {
		info.UsesAsm = true
	}
	return info
}

const roTableBytes = 1 << 16

func (s *spec) Setup(env workload.Env) error {
	n := env.Threads()
	if s.info.FootprintMB > 0 {
		s.bulkBase = env.AllocBulk(int64(s.info.FootprintMB) << 20)
	}
	s.roBase = env.Alloc(roTableBytes, 64)
	s.counter = env.Alloc(8, 64)
	s.asmCounter = env.Alloc(8, 64)
	if s.swapEvery > 0 {
		s.swapElems = env.Alloc(specSwapElems*8, 64)
		for i := 0; i < specSwapElems; i++ {
			env.Store(s.swapElems+uint64(i)*8, 8, uint64(i+1))
		}
	}
	if s.privateStores > 0 {
		s.privBase = env.Alloc(n*256, 64) // 256B per thread: 4 lines, no FS
	}
	s.global = env.NewMutex(s.name + ".global")
	if s.rwReadEvery > 0 || s.rwWriteEvery > 0 {
		s.rw = env.NewRWMutex(s.name + ".index")
	}
	if s.fineLocks > 0 {
		s.lockSlots = env.Alloc(s.fineLocks*64, 64)
		for i := 0; i < s.fineLocks; i++ {
			s.fine = append(s.fine, env.NewMutex(fmt.Sprintf("%s.fine%d", s.name, i)))
		}
	}
	s.bar = env.NewBarrier(s.name+".bar", n)

	s.sStream = env.Site(s.name+".stream", workload.SiteLoad, 8)
	s.sRO = env.Site(s.name+".ro_load", workload.SiteLoad, 8)
	s.sCtr = env.Site(s.name+".counter", workload.SiteAtomic, 8)
	s.sHot = env.Site(s.name+".hot_load", workload.SiteLoad, 8)
	s.sAsm = env.Site(s.name+".asm_counter", workload.SiteAtomic, 8)
	s.sSwapA = env.Site(s.name+".swap_a", workload.SiteAtomic, 8)
	s.sSwapB = env.Site(s.name+".swap_b", workload.SiteAtomic, 8)
	s.sPriv = env.Site(s.name+".private", workload.SiteStore, 8)
	s.sSlot = env.Site(s.name+".lock_slot", workload.SiteStore, 8)
	return nil
}

func (s *spec) Body(t workload.Thread) {
	n := t.NumThreads()
	rng := t.Rand()
	var part uint64
	var partSize int64
	if s.bulkBase != 0 {
		total := int64(s.info.FootprintMB) << 20
		partSize = total / int64(n)
		part = s.bulkBase + uint64(int64(t.ID())*partSize)
	}
	order := workload.Relaxed
	if s.strongAtomics {
		order = workload.SeqCst
	}
	var off int64
	for i := 0; i < s.iters; i++ {
		if s.streamPerIter > 0 && partSize > 0 {
			chunk := s.streamPerIter
			if off+chunk > partSize {
				off = 0
			}
			t.Stream(s.sStream, part+uint64(off), chunk, false)
			off += chunk
		}
		if s.workPerIter > 0 {
			t.Work(s.workPerIter)
		}
		for j := 0; j < s.sharedROLoads; j++ {
			addr := s.roBase + uint64(rng.Intn(roTableBytes/8))*8
			t.Load(s.sRO, addr)
		}
		for j := 0; j < s.atomicsPerIter; j++ {
			t.AtomicAdd(s.sCtr, s.counter, 1, order)
		}
		for j := 0; j < s.hotLoads; j++ {
			t.Load(s.sHot, s.counter+uint64(1+j%7)*8)
		}
		if s.asmEvery > 0 && i%s.asmEvery == 0 {
			t.EnterAsm()
			t.AtomicAdd(s.sAsm, s.asmCounter, 1, workload.SeqCst)
			t.ExitAsm()
		}
		if s.swapEvery > 0 && i%s.swapEvery == 0 {
			a := rng.Intn(specSwapElems)
			b := rng.Intn(specSwapElems)
			if a != b {
				t.AsmAtomicSwap(s.sSwapA, s.sSwapB, s.swapElems+uint64(a)*8, s.swapElems+uint64(b)*8)
			}
		}
		if s.rwReadEvery > 0 && i%s.rwReadEvery == 0 {
			t.RLock(s.rw)
			t.Load(s.sRO, s.roBase+uint64(rng.Intn(roTableBytes/8))*8)
			t.RUnlock(s.rw)
		}
		if s.rwWriteEvery > 0 && i%s.rwWriteEvery == 0 {
			t.WLock(s.rw)
			t.Store(s.sSlot, s.roBase, uint64(i))
			t.WUnlock(s.rw)
		}
		if s.fineLocks > 0 {
			k := rng.Intn(s.fineLocks)
			t.Lock(s.fine[k])
			slot := s.lockSlots + uint64(k)*64
			t.Store(s.sSlot, slot, t.Load(s.sRO, slot)+1)
			t.Unlock(s.fine[k])
		}
		if s.globalLockEvery > 0 && i%s.globalLockEvery == 0 {
			t.Lock(s.global)
			slot := s.lockSlots
			if slot == 0 {
				slot = s.roBase // reuse a line; value unchecked
				t.Load(s.sRO, slot)
			} else {
				t.Store(s.sSlot, slot, t.Load(s.sRO, slot)+1)
			}
			t.Unlock(s.global)
		}
		if s.privateStores > 0 {
			base := s.privBase + uint64(t.ID())*256
			for j := 0; j < s.privateStores; j++ {
				t.Store(s.sPriv, base+uint64((i+j)%32)*8, uint64(i))
			}
		}
		if s.barrierEvery > 0 && (i+1)%s.barrierEvery == 0 {
			t.Wait(s.bar)
		}
	}
	t.Wait(s.bar)
}

func (s *spec) Validate(env workload.Env) error {
	n := env.Threads()
	if s.atomicsPerIter > 0 {
		want := uint64(n * s.iters * s.atomicsPerIter)
		got := env.Load(s.counter, 8)
		if got != want {
			return fmt.Errorf("%s: shared atomic counter %d, want %d (lost updates)", s.name, got, want)
		}
	}
	if s.asmEvery > 0 {
		want := uint64(n) * uint64((s.iters+s.asmEvery-1)/s.asmEvery)
		got := env.Load(s.asmCounter, 8)
		if got != want {
			return fmt.Errorf("%s: asm atomic counter %d, want %d (lost updates)", s.name, got, want)
		}
	}
	if s.swapEvery > 0 {
		seen := make(map[uint64]bool, specSwapElems)
		for i := 0; i < specSwapElems; i++ {
			v := env.Load(s.swapElems+uint64(i)*8, 8)
			if v < 1 || v > specSwapElems || seen[v] {
				return fmt.Errorf("%s: swap elements no longer a permutation (slot %d = %d)", s.name, i, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// specSwapElems sizes the lock-free swap array (canneal's netlist slice).
const specSwapElems = 128
