package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// linearRegression reproduces Phoenix's linear-regression bug: the per-
// thread args structs (running sums SX, SY, SXX, SYY, SXY) are 40 bytes and
// the args array is not 64-byte aligned by default, so neighbouring threads'
// sums share cache lines and every accumulation ping-pongs the line. The
// manual fix pads each struct to a cache line.
type linearRegression struct {
	variant Variant
	iters   int

	input  uint64
	args   uint64
	stride uint64
	bar    workload.Barrier

	sPoint, sSum workload.Site
}

// LinearRegression constructs the benchmark ("lreg" in the figures).
func LinearRegression(v Variant) workload.Workload {
	return &linearRegression{variant: v, iters: 22_000}
}

var _ workload.Workload = (*linearRegression)(nil)

const lregFields = 5 // SX, SY, SXX, SYY, SXY

func (l *linearRegression) Name() string {
	if l.variant == VariantManual {
		return "lreg-manual"
	}
	return "lreg"
}

func (l *linearRegression) Info() workload.Info {
	return workload.Info{
		Threads:         4,
		FootprintMB:     10,
		HasFalseSharing: l.variant == VariantFS,
		Desc:            "per-thread regression sums in one unaligned args array",
	}
}

func (l *linearRegression) Setup(env workload.Env) error {
	n := env.Threads()
	l.input = env.AllocBulk(int64(l.Info().FootprintMB) << 20)
	if l.variant == VariantManual {
		l.stride = 64
		l.args = env.Alloc(64*n, 64)
	} else {
		l.stride = lregFields * 8 // 40B packed, unaligned array start
		env.Alloc(8, 8)           // leave the array off line alignment
		l.args = env.Alloc(int(l.stride)*n, 8)
	}
	l.bar = env.NewBarrier("lreg.bar", n)
	l.sPoint = env.Site("lreg.load_points", workload.SiteLoad, 8)
	l.sSum = env.Site("lreg.update_sum", workload.SiteStore, 8)
	return nil
}

func (l *linearRegression) Body(t workload.Thread) {
	n := t.NumThreads()
	const chunk = int64(128)
	partSize := (int64(l.Info().FootprintMB) << 20) / int64(n)
	part := l.input + uint64(t.ID())*uint64(partSize)
	base := l.args + uint64(t.ID())*l.stride
	for i := 0; i < l.iters; i++ {
		if i%8 == 0 {
			t.Stream(l.sPoint, part+uint64((int64(i)*chunk)%(partSize-chunk)), chunk*8, false)
		}
		// The real loop updates each running sum as it computes it, with a
		// few cycles of arithmetic between updates.
		for _, off := range [4]uint64{0, 8, 16, 32} {
			t.Work(8)
			t.Store(l.sSum, base+off, uint64(i+1))
		}
	}
	t.Wait(l.bar)
}

func (l *linearRegression) Validate(env workload.Env) error {
	for tid := 0; tid < env.Threads(); tid++ {
		base := l.args + uint64(tid)*l.stride
		for _, off := range []uint64{0, 8, 16, 32} {
			if got := env.Load(base+off, 8); got != uint64(l.iters) {
				return fmt.Errorf("lreg: thread %d sum@%d = %d, want %d", tid, off, got, l.iters)
			}
		}
	}
	return nil
}
