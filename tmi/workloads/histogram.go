package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// histogram reproduces the Phoenix histogram benchmark and its well-known
// false sharing bug: each thread keeps private red/green/blue counters, and
// the counter blocks of different threads are packed into the same cache
// lines. Which counters are hot depends on the input image — the paper
// evaluates the standard input (histogram, mild contention mixed with real
// work) and a contention-accentuating image (histogramfs).
//
// The manual fix pads each thread's counter block to a full cache line.
type histogram struct {
	name    string
	variant Variant
	// workPerPixel scales the non-shared work per pixel batch; the fs input
	// makes increments dominate.
	workPerPixel int64
	chunk        int64
	iters        int

	image    uint64
	counters uint64
	stride   uint64
	scratch  uint64
	bar      workload.Barrier

	sPixel, sInc, sScratch workload.Site
}

// Phoenix's map phase writes intermediate results across many pages; the
// scratch region models it: histScratchPages small pages per thread, with
// a phase barrier every histBarrierEvery iterations. This is what makes the
// paper's PTSB-everywhere ablation expensive — at every synchronization,
// every dirty page is diffed, not just the falsely-shared one.
const (
	histScratchPage  = 4096
	histScratchPages = 64
	histBarrierEvery = 500
)

// Histogram is the standard-input benchmark; HistogramFS uses the
// false-sharing-accentuating image.
func Histogram(v Variant) workload.Workload {
	return &histogram{name: "histogram", variant: v, workPerPixel: 1100, chunk: 512, iters: 9000}
}

// HistogramFS accentuates the contention (the paper's alternative image).
func HistogramFS(v Variant) workload.Workload {
	return &histogram{name: "histogramfs", variant: v, workPerPixel: 24, chunk: 256, iters: 30_000}
}

var _ workload.Workload = (*histogram)(nil)

func (h *histogram) Name() string {
	if h.variant == VariantManual {
		return h.name + "-manual"
	}
	return h.name
}

func (h *histogram) Info() workload.Info {
	return workload.Info{
		Threads:         4,
		FootprintMB:     12,
		HasFalseSharing: h.variant == VariantFS,
		Desc:            "per-thread RGB counters packed into shared lines",
	}
}

const histCountersPerThread = 3

func (h *histogram) Setup(env workload.Env) error {
	n := env.Threads()
	h.image = env.AllocBulk(int64(h.Info().FootprintMB) << 20)
	if h.variant == VariantManual {
		h.stride = 64
	} else {
		h.stride = histCountersPerThread * 8 // 24B: ~2.6 threads per line
	}
	h.counters = env.Alloc(int(h.stride)*n, 8)
	// Per-thread scratch (decode buffers): page-sized so the paper's
	// PTSB-everywhere ablation has innocent written pages to tax.
	h.scratch = env.Alloc(histScratchPage*histScratchPages*n, histScratchPage)
	h.bar = env.NewBarrier("histogram.bar", n)
	h.sPixel = env.Site("histogram.load_pixels", workload.SiteLoad, 8)
	h.sInc = env.Site("histogram.inc_counter", workload.SiteStore, 8)
	h.sScratch = env.Site("histogram.scratch", workload.SiteStore, 8)
	return nil
}

func (h *histogram) Body(t workload.Thread) {
	// Each run simulates a time-slice of the full pass over the image: a
	// fixed pixel batch per iteration within the thread's partition.
	n := t.NumThreads()
	chunk := h.chunk
	partSize := (int64(h.Info().FootprintMB) << 20) / int64(n)
	part := h.image + uint64(t.ID())*uint64(partSize)
	base := h.counters + uint64(t.ID())*h.stride
	for i := 0; i < h.iters; i++ {
		t.Stream(h.sPixel, part+uint64((int64(i)*chunk)%(partSize-chunk)), chunk, false)
		// Pixel decode work interleaves with the counter updates, as the
		// real per-pixel loop does.
		for c := 0; c < histCountersPerThread; c++ {
			t.Work(h.workPerPixel / histCountersPerThread)
			t.Store(h.sInc, base+uint64(c)*8, uint64(i+1))
		}
		// Intermediate output lands on a rotating scratch page.
		page := uint64(i % histScratchPages)
		off := uint64((i / histScratchPages) % (histScratchPage / 8))
		t.Store(h.sScratch, h.scratch+uint64(t.ID())*histScratchPage*histScratchPages+page*histScratchPage+off*8, uint64(i))
		if (i+1)%histBarrierEvery == 0 {
			t.Wait(h.bar)
		}
	}
	t.Wait(h.bar)
}

func (h *histogram) Validate(env workload.Env) error {
	n := env.Threads()
	for tid := 0; tid < n; tid++ {
		base := h.counters + uint64(tid)*h.stride
		for c := 0; c < histCountersPerThread; c++ {
			got := env.Load(base+uint64(c)*8, 8)
			if got != uint64(h.iters) {
				return fmt.Errorf("%s: thread %d counter %d = %d, want %d", h.name, tid, c, got, h.iters)
			}
		}
	}
	return nil
}
