package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// luNCB reproduces Splash2x lu-ncb's false sharing: the matrix handed to the
// daxpy kernel is a single large allocation whose per-thread row partitions
// are not line-aligned under the baseline allocator's 16-byte placement, so
// the boundary elements each thread updates share lines with its neighbour.
//
// This is the benchmark the paper's §4.3 singles out as repaired purely by
// the allocator: TMI's allocator cache-line-aligns large allocations, which
// moves the partition boundaries onto line boundaries — no page protection
// needed. The manual fix requests 64-byte alignment explicitly.
type luNCB struct {
	variant Variant
	iters   int

	matrix   uint64
	rowBytes uint64
	bar      workload.Barrier

	sHead, sTail, sInner workload.Site
}

// LuNCB constructs the benchmark.
func LuNCB(v Variant) workload.Workload {
	return &luNCB{variant: v, iters: 12_000}
}

var _ workload.Workload = (*luNCB)(nil)

func (l *luNCB) Name() string {
	if l.variant == VariantManual {
		return "lu-ncb-manual"
	}
	return "lu-ncb"
}

func (l *luNCB) Info() workload.Info {
	return workload.Info{
		Threads: 4,
		// Sheriff does not run lu-ncb (its interposed allocator cannot
		// reproduce the layout the benchmark depends on).
		UsesCustomSync:  true,
		FootprintMB:     70,
		HasFalseSharing: l.variant == VariantFS,
		Desc:            "daxpy rows misaligned by the default allocator",
	}
}

func (l *luNCB) Setup(env workload.Env) error {
	n := env.Threads()
	env.AllocBulk(int64(l.Info().FootprintMB) << 20) // the full matrix
	l.rowBytes = 2048                                // per-thread partition, a multiple of the line size
	size := int(l.rowBytes) * n
	if l.variant == VariantManual {
		l.matrix = env.Alloc(size, 64)
	} else {
		// The benchmark takes whatever placement the allocator's policy
		// gives a large allocation: the Lockless baseline hands out 16-byte
		// alignment (partition boundaries straddle lines); TMI's allocator
		// line-aligns it (bug gone before any repair machinery runs).
		env.Alloc(24, 8) // shift the heap off line alignment first
		l.matrix = env.AllocDefault(size)
	}
	l.bar = env.NewBarrier("lu-ncb.bar", n)
	l.sHead = env.Site("lu-ncb.daxpy_head", workload.SiteStore, 8)
	l.sTail = env.Site("lu-ncb.daxpy_tail", workload.SiteStore, 8)
	l.sInner = env.Site("lu-ncb.daxpy_inner", workload.SiteStore, 8)
	return nil
}

func (l *luNCB) Body(t workload.Thread) {
	row := l.matrix + uint64(t.ID())*l.rowBytes
	head := row
	tail := row + l.rowBytes - 8
	for i := 0; i < l.iters; i++ {
		// daxpy touches the partition edges every pass and an interior
		// element for good measure.
		t.Store(l.sHead, head, uint64(i+1))
		t.Store(l.sTail, tail, uint64(i+1))
		t.Store(l.sInner, row+64+uint64(i%8)*64, uint64(i))
		t.Work(150)
	}
	t.Wait(l.bar)
}

func (l *luNCB) Validate(env workload.Env) error {
	for tid := 0; tid < env.Threads(); tid++ {
		row := l.matrix + uint64(tid)*l.rowBytes
		if got := env.Load(row, 8); got != uint64(l.iters) {
			return fmt.Errorf("lu-ncb: thread %d head %d, want %d", tid, got, l.iters)
		}
		if got := env.Load(row+l.rowBytes-8, 8); got != uint64(l.iters) {
			return fmt.Errorf("lu-ncb: thread %d tail %d, want %d", tid, got, l.iters)
		}
	}
	return nil
}
