package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// misannotated is a deliberately broken fixture for tmilint and the runtime
// sanitizer: it models a program built with one translation unit skipped by
// the CCC annotation pass (§3.4). The shared generation word is an atomic
// instruction (the site registers as SiteAtomic), but the code reaches it
// with plain loads and stores — no region callbacks fire, so under the PTSB
// its cross-thread races silently demote from Table 2 case 2 ("atomic") to
// case 1 ("undefined"). The static verifier must flag the site
// (unannotated-atomic) and a sanitizer run must report violations; it is
// resolvable by name but deliberately kept out of Names() so catalog-wide
// gates stay clean.
type misannotated struct {
	iters int

	gen      uint64 // shared generation word, one line
	counters uint64 // per-thread padded counters, one line each
	bar      workload.Barrier

	sGen    workload.Site // SiteAtomic reached by plain accesses (the bug)
	sGenSet workload.Site // SiteAtomic reached by plain stores (the bug)
	sCtr    workload.Site
	sCtrLd  workload.Site
}

// Misannotated constructs the fixture.
func Misannotated() workload.Workload { return &misannotated{iters: 4000} }

var _ workload.Workload = (*misannotated)(nil)

func (m *misannotated) Name() string { return "misannotated" }

func (m *misannotated) Info() workload.Info {
	return workload.Info{
		Threads:     4,
		FootprintMB: 1,
		UsesAtomics: true, // the sites are atomic instructions; the annotations are what is missing
		Desc:        "fixture: atomic generation word accessed without region callbacks",
	}
}

func (m *misannotated) Setup(env workload.Env) error {
	n := env.Threads()
	m.gen = env.Alloc(64, 64)
	m.counters = env.Alloc(n*64, 64)
	m.bar = env.NewBarrier("misannotated.bar", n)
	m.sGen = env.Site("misannotated.gen_read", workload.SiteAtomic, 8)
	m.sGenSet = env.Site("misannotated.gen_bump", workload.SiteAtomic, 8)
	m.sCtr = env.Site("misannotated.counter", workload.SiteStore, 8)
	m.sCtrLd = env.Site("misannotated.counter_load", workload.SiteLoad, 8)
	return nil
}

func (m *misannotated) Body(t workload.Thread) {
	my := m.counters + uint64(t.ID())*64
	for i := 0; i < m.iters; i++ {
		// The missed annotation: both accesses reach SiteAtomic sites as
		// plain operations, so no consistency region brackets them.
		g := t.Load(m.sGen, m.gen)
		t.Store(m.sGenSet, m.gen, g|1)
		// Honest per-thread work so Validate stays deterministic.
		t.Store(m.sCtr, my, t.Load(m.sCtrLd, my)+1)
	}
	t.Wait(m.bar)
}

func (m *misannotated) Validate(env workload.Env) error {
	n := env.Threads()
	for tid := 0; tid < n; tid++ {
		if got := env.Load(m.counters+uint64(tid)*64, 8); got != uint64(m.iters) {
			return fmt.Errorf("misannotated: thread %d counter %d, want %d", tid, got, m.iters)
		}
	}
	if env.Load(m.gen, 8)&1 != 1 {
		return fmt.Errorf("misannotated: generation bit never set")
	}
	return nil
}
