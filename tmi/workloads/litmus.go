package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// This file holds the litmus kernels the model checker (internal/mc,
// cmd/tmimc) explores exhaustively: the classic shapes from the memory-model
// literature (SB, MP, LB, IRIW, CoRR), written against the CCC annotation
// contract so that under sequential consistency — and, if Table 2 holds,
// under the PTSB with code-centric consistency — the forbidden outcome never
// appears. Each kernel implements workload.Outcomer so the checker can
// compare outcome sets across schedules and configurations.
//
// The sixth kernel, brokenfence, deliberately breaks the contract: it
// synchronizes through a *plain* flag, which no CCC region ever flushes.
// tmilint cannot object — every access matches its site's declared kind —
// yet under the PTSB the consumer can observe the flag set while still
// reading a stale private copy of the data page. This is precisely the gap
// between annotation consistency (PR 1) and SC-equivalence (this PR): only
// schedule exploration exposes it.
//
// Conventions shared by the kernels: each variable lives at offset 0 of its
// own page so page twinning is exercised per variable; "warm" plain stores
// at offset 512 create dirty private copies without overlapping any other
// thread's bytes (no data races in the clean kernels); every thread ends at
// a barrier, which is a PTSB commit point; loads happen once, never in spin
// loops, so the schedule space stays finite and small.

// litmusRegs holds per-thread result registers, written by the owning
// simulated thread only (the machine runs one thread at a time, and the
// final read happens after Run returns).
type litmusRegs [4]uint64

const litmusUnread = ^uint64(0)

func reg(v uint64) string {
	if v == litmusUnread {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// --- SB: store buffering -------------------------------------------------

// litmusSB is Dekker's core: each thread publishes its own flag with a
// SeqCst store, then reads the other's. SC forbids both threads reading 0.
// Each thread also warm-dirties the page it will later *read* from, so the
// atomic loads must be routed to the shared view past a dirty private copy.
type litmusSB struct {
	x, y         uint64 // separate pages
	warm0, warm1 uint64 // warm0 on y's page (t0 writes), warm1 on x's page
	r            litmusRegs
	bar          workload.Barrier

	sWarm, sStX, sStY, sLdX, sLdY workload.Site
}

// LitmusSB constructs the store-buffering litmus test.
func LitmusSB() workload.Workload { return &litmusSB{} }

var _ workload.Outcomer = (*litmusSB)(nil)

func (w *litmusSB) Name() string { return "litmus-sb" }

func (w *litmusSB) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAtomics: true,
		Desc: "litmus SB: SC forbids r0=0,r1=0"}
}

func (w *litmusSB) Setup(env workload.Env) error {
	page := env.PageSize()
	pageX := env.Alloc(page, page)
	pageY := env.Alloc(page, page)
	w.x, w.warm1 = pageX, pageX+512
	w.y, w.warm0 = pageY, pageY+512
	w.r = litmusRegs{litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("sb.bar", env.Threads())
	w.sWarm = env.Site("sb.warm", workload.SiteStore, 8)
	w.sStX = env.Site("sb.store_x", workload.SiteAtomic, 8)
	w.sStY = env.Site("sb.store_y", workload.SiteAtomic, 8)
	w.sLdX = env.Site("sb.load_x", workload.SiteAtomic, 8)
	w.sLdY = env.Site("sb.load_y", workload.SiteAtomic, 8)
	return nil
}

func (w *litmusSB) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.Store(w.sWarm, w.warm0, 1)
		t.AtomicStore(w.sStX, w.x, 1, workload.SeqCst)
		w.r[0] = t.AtomicLoad(w.sLdY, w.y, workload.SeqCst)
	} else {
		t.Store(w.sWarm, w.warm1, 2)
		t.AtomicStore(w.sStY, w.y, 1, workload.SeqCst)
		w.r[1] = t.AtomicLoad(w.sLdX, w.x, workload.SeqCst)
	}
	t.Wait(w.bar)
}

func (w *litmusSB) Validate(env workload.Env) error {
	if w.r[0] == 0 && w.r[1] == 0 {
		return fmt.Errorf("litmus-sb: r0=0 r1=0 is forbidden under SC")
	}
	return nil
}

func (w *litmusSB) Outcome(env workload.Env) string {
	return fmt.Sprintf("r0=%s r1=%s", reg(w.r[0]), reg(w.r[1]))
}

// --- MP: message passing -------------------------------------------------

// litmusMP publishes data through a release/acquire flag. The producer
// dirties the data page (a PTSB twin), so its release-side flush must
// commit the data before the flag becomes visible. The consumer reads the
// data only after observing flag==1, which keeps the kernel race-free; SC
// (and release/acquire) forbid flag==1 with stale data.
type litmusMP struct {
	data, flag uint64
	r          litmusRegs // r[0]=flag seen, r[1]=data seen (litmusUnread if not read)
	bar        workload.Barrier

	sData, sDataLd, sFlagSt, sFlagLd workload.Site
}

// LitmusMP constructs the message-passing litmus test.
func LitmusMP() workload.Workload { return &litmusMP{} }

var _ workload.Outcomer = (*litmusMP)(nil)

func (w *litmusMP) Name() string { return "litmus-mp" }

func (w *litmusMP) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAtomics: true,
		Desc: "litmus MP: flag=1 implies data=42"}
}

func (w *litmusMP) Setup(env workload.Env) error {
	page := env.PageSize()
	w.data = env.Alloc(page, page)
	w.flag = env.Alloc(page, page)
	w.r = litmusRegs{litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("mp.bar", env.Threads())
	w.sData = env.Site("mp.store_data", workload.SiteStore, 8)
	w.sDataLd = env.Site("mp.load_data", workload.SiteLoad, 8)
	w.sFlagSt = env.Site("mp.store_flag", workload.SiteAtomic, 8)
	w.sFlagLd = env.Site("mp.load_flag", workload.SiteAtomic, 8)
	return nil
}

func (w *litmusMP) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.Store(w.sData, w.data, 42)
		t.AtomicStore(w.sFlagSt, w.flag, 1, workload.Release)
	} else {
		w.r[0] = t.AtomicLoad(w.sFlagLd, w.flag, workload.Acquire)
		if w.r[0] == 1 {
			w.r[1] = t.Load(w.sDataLd, w.data)
		}
	}
	t.Wait(w.bar)
}

func (w *litmusMP) Validate(env workload.Env) error {
	if w.r[0] == 1 && w.r[1] != 42 {
		return fmt.Errorf("litmus-mp: flag=1 but data=%s, want 42", reg(w.r[1]))
	}
	return nil
}

func (w *litmusMP) Outcome(env workload.Env) string {
	return fmt.Sprintf("flag=%s data=%s", reg(w.r[0]), reg(w.r[1]))
}

// --- LB: load buffering --------------------------------------------------

// litmusLB reads the other thread's variable before publishing its own:
// SC forbids both loads returning 1 (values out of thin air otherwise).
type litmusLB struct {
	x, y uint64
	r    litmusRegs
	bar  workload.Barrier

	sStX, sStY, sLdX, sLdY workload.Site
}

// LitmusLB constructs the load-buffering litmus test.
func LitmusLB() workload.Workload { return &litmusLB{} }

var _ workload.Outcomer = (*litmusLB)(nil)

func (w *litmusLB) Name() string { return "litmus-lb" }

func (w *litmusLB) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAtomics: true,
		Desc: "litmus LB: SC forbids r0=1,r1=1"}
}

func (w *litmusLB) Setup(env workload.Env) error {
	page := env.PageSize()
	w.x = env.Alloc(page, page)
	w.y = env.Alloc(page, page)
	w.r = litmusRegs{litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("lb.bar", env.Threads())
	w.sStX = env.Site("lb.store_x", workload.SiteAtomic, 8)
	w.sStY = env.Site("lb.store_y", workload.SiteAtomic, 8)
	w.sLdX = env.Site("lb.load_x", workload.SiteAtomic, 8)
	w.sLdY = env.Site("lb.load_y", workload.SiteAtomic, 8)
	return nil
}

func (w *litmusLB) Body(t workload.Thread) {
	if t.ID() == 0 {
		w.r[0] = t.AtomicLoad(w.sLdY, w.y, workload.SeqCst)
		t.AtomicStore(w.sStX, w.x, 1, workload.SeqCst)
	} else {
		w.r[1] = t.AtomicLoad(w.sLdX, w.x, workload.SeqCst)
		t.AtomicStore(w.sStY, w.y, 1, workload.SeqCst)
	}
	t.Wait(w.bar)
}

func (w *litmusLB) Validate(env workload.Env) error {
	if w.r[0] == 1 && w.r[1] == 1 {
		return fmt.Errorf("litmus-lb: r0=1 r1=1 is forbidden under SC")
	}
	return nil
}

func (w *litmusLB) Outcome(env workload.Env) string {
	return fmt.Sprintf("r0=%s r1=%s", reg(w.r[0]), reg(w.r[1]))
}

// --- IRIW: independent reads of independent writes -----------------------

// litmusIRIW: two writers publish x and y; two readers read them in
// opposite orders. SC forbids the readers disagreeing on the write order.
type litmusIRIW struct {
	x, y uint64
	r    litmusRegs // t2: r[0]=x,r[1]=y ; t3: r[2]=y,r[3]=x
	bar  workload.Barrier

	sStX, sStY, sLdX, sLdY workload.Site
}

// LitmusIRIW constructs the IRIW litmus test.
func LitmusIRIW() workload.Workload { return &litmusIRIW{} }

var _ workload.Outcomer = (*litmusIRIW)(nil)

func (w *litmusIRIW) Name() string { return "litmus-iriw" }

func (w *litmusIRIW) Info() workload.Info {
	return workload.Info{Threads: 4, FootprintMB: 1, UsesAtomics: true,
		Desc: "litmus IRIW: readers must agree on the write order"}
}

func (w *litmusIRIW) Setup(env workload.Env) error {
	page := env.PageSize()
	w.x = env.Alloc(page, page)
	w.y = env.Alloc(page, page)
	w.r = litmusRegs{litmusUnread, litmusUnread, litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("iriw.bar", env.Threads())
	w.sStX = env.Site("iriw.store_x", workload.SiteAtomic, 8)
	w.sStY = env.Site("iriw.store_y", workload.SiteAtomic, 8)
	w.sLdX = env.Site("iriw.load_x", workload.SiteAtomic, 8)
	w.sLdY = env.Site("iriw.load_y", workload.SiteAtomic, 8)
	return nil
}

func (w *litmusIRIW) Body(t workload.Thread) {
	switch t.ID() {
	case 0:
		t.AtomicStore(w.sStX, w.x, 1, workload.SeqCst)
	case 1:
		t.AtomicStore(w.sStY, w.y, 1, workload.SeqCst)
	case 2:
		w.r[0] = t.AtomicLoad(w.sLdX, w.x, workload.SeqCst)
		w.r[1] = t.AtomicLoad(w.sLdY, w.y, workload.SeqCst)
	case 3:
		w.r[2] = t.AtomicLoad(w.sLdY, w.y, workload.SeqCst)
		w.r[3] = t.AtomicLoad(w.sLdX, w.x, workload.SeqCst)
	}
	t.Wait(w.bar)
}

func (w *litmusIRIW) Validate(env workload.Env) error {
	if w.r[0] == 1 && w.r[1] == 0 && w.r[2] == 1 && w.r[3] == 0 {
		return fmt.Errorf("litmus-iriw: readers saw x-then-y and y-then-x (forbidden under SC)")
	}
	return nil
}

func (w *litmusIRIW) Outcome(env workload.Env) string {
	return fmt.Sprintf("r0=%s r1=%s r2=%s r3=%s", reg(w.r[0]), reg(w.r[1]), reg(w.r[2]), reg(w.r[3]))
}

// --- CoRR: coherent read-read --------------------------------------------

// litmusCoRR: one writer, one reader reading the same variable twice with
// relaxed atomics. Coherence forbids the second read going backwards. The
// reader warm-dirties the variable's page first: relaxed atomics must still
// route to the shared view past the dirty private copy (Table 2 case 2),
// even though they never flush.
type litmusCoRR struct {
	x    uint64
	warm uint64 // on x's page, reader-written
	r    litmusRegs
	bar  workload.Barrier

	sWarm, sSt, sLd workload.Site
}

// LitmusCoRR constructs the coherence read-read litmus test.
func LitmusCoRR() workload.Workload { return &litmusCoRR{} }

var _ workload.Outcomer = (*litmusCoRR)(nil)

func (w *litmusCoRR) Name() string { return "litmus-corr" }

func (w *litmusCoRR) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAtomics: true,
		Desc: "litmus CoRR: relaxed reads of one variable never go backwards"}
}

func (w *litmusCoRR) Setup(env workload.Env) error {
	page := env.PageSize()
	w.x = env.Alloc(page, page)
	w.warm = w.x + 512
	w.r = litmusRegs{litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("corr.bar", env.Threads())
	w.sWarm = env.Site("corr.warm", workload.SiteStore, 8)
	w.sSt = env.Site("corr.store_x", workload.SiteAtomic, 8)
	w.sLd = env.Site("corr.load_x", workload.SiteAtomic, 8)
	return nil
}

func (w *litmusCoRR) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.AtomicStore(w.sSt, w.x, 1, workload.Relaxed)
	} else {
		t.Store(w.sWarm, w.warm, 9)
		w.r[0] = t.AtomicLoad(w.sLd, w.x, workload.Relaxed)
		w.r[1] = t.AtomicLoad(w.sLd, w.x, workload.Relaxed)
	}
	t.Wait(w.bar)
}

func (w *litmusCoRR) Validate(env workload.Env) error {
	if w.r[0] == 1 && w.r[1] == 0 {
		return fmt.Errorf("litmus-corr: reads went backwards (1 then 0), coherence violated")
	}
	return nil
}

func (w *litmusCoRR) Outcome(env workload.Env) string {
	return fmt.Sprintf("r0=%s r1=%s", reg(w.r[0]), reg(w.r[1]))
}

// --- brokenfence: the under-annotated fixture ----------------------------

// litmusBrokenFence is MP with the synchronization annotation missing: the
// flag is a *plain* variable, so no CCC region ever flushes the PTSB around
// it, and the consumer scratch-dirties the data page before looking at the
// flag. Statically everything is consistent (tmilint finds nothing: plain
// sites perform plain accesses). Dynamically, under the PTSB, the consumer
// can read flag==1 from shared memory while its private copy of the data
// page still holds 0 — an outcome SC forbids. tmimc must catch this with a
// minimal counterexample schedule; it is also the seeded data race for the
// race-detector tests (plain flag and data accesses race by construction).
type litmusBrokenFence struct {
	data, scratch uint64 // same page: scratch is the consumer's dirtying store
	flag          uint64 // its own page, plain
	r             litmusRegs
	bar           workload.Barrier

	sData, sDataLd, sScratch, sFlagSt, sFlagLd workload.Site
}

// LitmusBrokenFence constructs the deliberately under-annotated MP fixture.
func LitmusBrokenFence() workload.Workload { return &litmusBrokenFence{} }

var _ workload.Outcomer = (*litmusBrokenFence)(nil)

func (w *litmusBrokenFence) Name() string { return "litmus-brokenfence" }

func (w *litmusBrokenFence) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesCustomSync: true,
		Desc: "under-annotated MP: plain flag never flushes the PTSB"}
}

func (w *litmusBrokenFence) Setup(env workload.Env) error {
	page := env.PageSize()
	base := env.Alloc(page, page)
	w.data, w.scratch = base, base+512
	w.flag = env.Alloc(page, page)
	w.r = litmusRegs{litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("brokenfence.bar", env.Threads())
	w.sData = env.Site("brokenfence.store_data", workload.SiteStore, 8)
	w.sDataLd = env.Site("brokenfence.load_data", workload.SiteLoad, 8)
	w.sScratch = env.Site("brokenfence.scratch", workload.SiteStore, 8)
	w.sFlagSt = env.Site("brokenfence.store_flag", workload.SiteStore, 8)
	w.sFlagLd = env.Site("brokenfence.load_flag", workload.SiteLoad, 8)
	return nil
}

func (w *litmusBrokenFence) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.Store(w.sData, w.data, 42)
		t.Store(w.sFlagSt, w.flag, 1) // plain publish: the missing fence
	} else {
		// The consumer dirties the data page first (its private copy now
		// snapshots data as of this instant), then polls the flag once.
		t.Store(w.sScratch, w.scratch, 7)
		w.r[0] = t.Load(w.sFlagLd, w.flag)
		if w.r[0] == 1 {
			w.r[1] = t.Load(w.sDataLd, w.data)
		}
	}
	t.Wait(w.bar)
}

func (w *litmusBrokenFence) Validate(env workload.Env) error {
	if w.r[0] == 1 && w.r[1] != 42 {
		return fmt.Errorf("litmus-brokenfence: flag=1 but data=%s, want 42", reg(w.r[1]))
	}
	return nil
}

func (w *litmusBrokenFence) Outcome(env workload.Env) string {
	return fmt.Sprintf("flag=%s data=%s", reg(w.r[0]), reg(w.r[1]))
}

// LitmusSuite returns the clean litmus kernels (SC-equivalence must hold).
func LitmusSuite() []workload.Workload {
	return []workload.Workload{
		LitmusSB(), LitmusMP(), LitmusLB(), LitmusIRIW(), LitmusCoRR(),
	}
}

// LitmusByName resolves a litmus kernel (including the broken fixture) by
// name, or nil.
func LitmusByName(name string) workload.Workload {
	for _, w := range append(LitmusSuite(), LitmusBrokenFence()) {
		if w.Name() == name {
			return w
		}
	}
	return nil
}
