package workloads

import (
	"fmt"
	"sort"

	"repro/tmi/workload"
)

// Suite returns the 35-workload detection suite of Figures 7 and 8, in the
// paper's figure order. False-sharing benchmarks come in their buggy
// (published) layout.
func Suite() []workload.Workload {
	return []workload.Workload{
		Blackscholes(), Bodytrack(), Canneal(), Dedup(), Facesim(), Ferret(),
		Fluidanimate(), Streamcluster(), Swaptions(),
		Histogram(VariantFS), HistogramFS(VariantFS), Kmeans(),
		LinearRegression(VariantFS), Matrix(), PCA(), ReverseIndex(),
		Stringmatch(VariantFS), Wordcount(),
		Barnes(), FFT(), FMM(), LuCB(), LuNCB(VariantFS), OceanCP(),
		OceanNCP(), Radiosity(), Radix(), Raytrace(), Volrend(),
		WaterNSquare(), WaterSpatial(),
		Leveldb(VariantFS), Spinlockpool(VariantFS), ShptrRelaxed(VariantFS),
		ShptrLock(VariantFS),
	}
}

// FSSuite returns the repair suite of Figure 9 / Table 3: every benchmark
// with known false sharing, in its buggy layout.
func FSSuite() []workload.Workload {
	return []workload.Workload{
		Histogram(VariantFS), HistogramFS(VariantFS),
		LinearRegression(VariantFS), Stringmatch(VariantFS), LuNCB(VariantFS),
		Leveldb(VariantFS), Spinlockpool(VariantFS), ShptrRelaxed(VariantFS),
		ShptrLock(VariantFS),
	}
}

// Manual returns the manually fixed variant of an FS-suite workload, by its
// buggy-variant name.
func Manual(name string) (workload.Workload, error) {
	switch name {
	case "histogram":
		return Histogram(VariantManual), nil
	case "histogramfs":
		return HistogramFS(VariantManual), nil
	case "lreg":
		return LinearRegression(VariantManual), nil
	case "stringmatch":
		return Stringmatch(VariantManual), nil
	case "lu-ncb":
		return LuNCB(VariantManual), nil
	case "leveldb":
		return Leveldb(VariantManual), nil
	case "spinlockpool":
		return Spinlockpool(VariantManual), nil
	case "shptr-relaxed":
		return ShptrRelaxed(VariantManual), nil
	case "shptr-lock":
		return ShptrLock(VariantManual), nil
	}
	return nil, fmt.Errorf("workloads: no manual fix for %q", name)
}

// ByName resolves any catalog workload (suite members, manual variants, and
// the consistency kernels).
func ByName(name string) (workload.Workload, error) {
	extras := []workload.Workload{
		Leveldb(VariantClean), WordTearing(false), WordTearing(true),
		CannealSwap(), CholeskyFlag(), Misannotated(),
		LitmusSB(), LitmusMP(), LitmusLB(), LitmusIRIW(), LitmusCoRR(),
		LitmusBrokenFence(),
		LitmusMPRelAcq(), LitmusFenceSB(), LitmusFenceMP(),
		LitmusIRIWRelaxed(),
	}
	for _, w := range Suite() {
		if w.Name() == name {
			return w, nil
		}
	}
	for _, w := range extras {
		if w.Name() == name {
			return w, nil
		}
	}
	if w, err := Manual(trimManual(name)); err == nil && w.Name() == name {
		return w, nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (see Names())", name)
}

func trimManual(name string) string {
	const suffix = "-manual"
	if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
		return name[:len(name)-len(suffix)]
	}
	return name
}

// Names lists every resolvable workload name, sorted.
func Names() []string {
	seen := map[string]bool{}
	for _, w := range Suite() {
		seen[w.Name()] = true
	}
	for _, n := range []string{
		"leveldb-clean", "wordtear", "wordtear-asm", "canneal-swap",
		"cholesky-flag",
		"litmus-sb", "litmus-mp", "litmus-lb", "litmus-iriw", "litmus-corr",
		"litmus-brokenfence",
		"litmus-mp-relacq", "litmus-fencesb", "litmus-fencemp",
		"litmus-iriw-relaxed",
	} {
		seen[n] = true
	}
	for _, w := range FSSuite() {
		seen[w.Name()+"-manual"] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
