package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// This file holds the C11-ordering litmus kernels added with the
// ordering-aware model: message passing over a release/acquire flag,
// fence-mediated SB and MP, and a deliberately under-annotated relaxed IRIW
// whose plain second loads miss their atomic annotation. They follow the
// conventions of litmus.go: one variable per page, warm/scratch plain
// stores at offset 512 of a page the thread later reads (creating a dirty
// private twin without byte overlap), a terminal barrier, and single loads
// so the schedule space stays finite.

// --- MP with release/acquire orderings -----------------------------------

// litmusMPRelAcq is message passing where the flag uses exactly the
// orderings C11 requires — a release store and an acquire load — rather
// than seq_cst. The consumer scratch-dirties the data page first, so its
// acquire-side PTSB flush (Table 2 treats acquire like the strong case)
// must discard the stale private twin before the data read.
type litmusMPRelAcq struct {
	data, scratch uint64 // same page: scratch is the consumer's dirtying store
	flag          uint64
	r             litmusRegs
	bar           workload.Barrier

	sData, sDataLd, sScratch, sFlagSt, sFlagLd workload.Site
}

// LitmusMPRelAcq constructs the release/acquire message-passing kernel.
func LitmusMPRelAcq() workload.Workload { return &litmusMPRelAcq{} }

var _ workload.Outcomer = (*litmusMPRelAcq)(nil)

func (w *litmusMPRelAcq) Name() string { return "litmus-mp-relacq" }

func (w *litmusMPRelAcq) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAtomics: true,
		Desc: "litmus MP with release store / acquire load: flag=1 implies data=42"}
}

func (w *litmusMPRelAcq) Setup(env workload.Env) error {
	page := env.PageSize()
	base := env.Alloc(page, page)
	w.data, w.scratch = base, base+512
	w.flag = env.Alloc(page, page)
	w.r = litmusRegs{litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("mprelacq.bar", env.Threads())
	w.sData = env.Site("mprelacq.store_data", workload.SiteStore, 8)
	w.sDataLd = env.Site("mprelacq.load_data", workload.SiteLoad, 8)
	w.sScratch = env.Site("mprelacq.scratch", workload.SiteStore, 8)
	w.sFlagSt = env.Site("mprelacq.store_flag", workload.SiteAtomic, 8)
	w.sFlagLd = env.Site("mprelacq.load_flag", workload.SiteAtomic, 8)
	return nil
}

func (w *litmusMPRelAcq) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.Store(w.sData, w.data, 42)
		t.AtomicStore(w.sFlagSt, w.flag, 1, workload.Release)
	} else {
		t.Store(w.sScratch, w.scratch, 7)
		w.r[0] = t.AtomicLoad(w.sFlagLd, w.flag, workload.Acquire)
		if w.r[0] == 1 {
			w.r[1] = t.Load(w.sDataLd, w.data)
		}
	}
	t.Wait(w.bar)
}

func (w *litmusMPRelAcq) Validate(env workload.Env) error {
	if w.r[0] == 1 && w.r[1] != 42 {
		return fmt.Errorf("litmus-mp-relacq: flag=1 but data=%s, want 42", reg(w.r[1]))
	}
	return nil
}

func (w *litmusMPRelAcq) Outcome(env workload.Env) string {
	return fmt.Sprintf("flag=%s data=%s", reg(w.r[0]), reg(w.r[1]))
}

// --- SB with relaxed atomics and seq_cst fences --------------------------

// litmusFenceSB is Dekker's core with the ordering carried entirely by
// standalone fences: the flag accesses themselves are relaxed, and a
// seq_cst fence sits between each thread's store and load. Each thread
// warm-dirties the page it later reads, so the fence's PTSB flush is what
// discards the stale twin.
type litmusFenceSB struct {
	x, y         uint64
	warm0, warm1 uint64 // warm0 on y's page (t0 writes), warm1 on x's page
	r            litmusRegs
	bar          workload.Barrier

	sWarm, sStX, sStY, sLdX, sLdY workload.Site
}

// LitmusFenceSB constructs the fence-mediated store-buffering kernel.
func LitmusFenceSB() workload.Workload { return &litmusFenceSB{} }

var _ workload.Outcomer = (*litmusFenceSB)(nil)

func (w *litmusFenceSB) Name() string { return "litmus-fencesb" }

func (w *litmusFenceSB) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAtomics: true,
		Desc: "litmus SB over relaxed atomics and seq_cst fences: SC forbids r0=0,r1=0"}
}

func (w *litmusFenceSB) Setup(env workload.Env) error {
	page := env.PageSize()
	pageX := env.Alloc(page, page)
	pageY := env.Alloc(page, page)
	w.x, w.warm1 = pageX, pageX+512
	w.y, w.warm0 = pageY, pageY+512
	w.r = litmusRegs{litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("fencesb.bar", env.Threads())
	w.sWarm = env.Site("fencesb.warm", workload.SiteStore, 8)
	w.sStX = env.Site("fencesb.store_x", workload.SiteAtomic, 8)
	w.sStY = env.Site("fencesb.store_y", workload.SiteAtomic, 8)
	w.sLdX = env.Site("fencesb.load_x", workload.SiteAtomic, 8)
	w.sLdY = env.Site("fencesb.load_y", workload.SiteAtomic, 8)
	return nil
}

func (w *litmusFenceSB) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.Store(w.sWarm, w.warm0, 1)
		t.AtomicStore(w.sStX, w.x, 1, workload.Relaxed)
		t.Fence(workload.SeqCst)
		w.r[0] = t.AtomicLoad(w.sLdY, w.y, workload.Relaxed)
	} else {
		t.Store(w.sWarm, w.warm1, 2)
		t.AtomicStore(w.sStY, w.y, 1, workload.Relaxed)
		t.Fence(workload.SeqCst)
		w.r[1] = t.AtomicLoad(w.sLdX, w.x, workload.Relaxed)
	}
	t.Wait(w.bar)
}

func (w *litmusFenceSB) Validate(env workload.Env) error {
	if w.r[0] == 0 && w.r[1] == 0 {
		return fmt.Errorf("litmus-fencesb: r0=0 r1=0 is forbidden with seq_cst fences")
	}
	return nil
}

func (w *litmusFenceSB) Outcome(env workload.Env) string {
	return fmt.Sprintf("r0=%s r1=%s", reg(w.r[0]), reg(w.r[1]))
}

// --- MP with relaxed flag and release/acquire fences ---------------------

// litmusFenceMP is message passing where the data is plain, the flag is a
// *relaxed* atomic, and the ordering comes entirely from fences: a release
// fence before the flag store, an acquire fence after the flag load
// (Alglave et al.'s canonical fence placement). The producer's release
// fence must commit the dirty data page before the flag becomes visible;
// the consumer's acquire fence must discard its scratch-dirtied twin before
// the data read. Remove either fence and the PTSB makes flag=1 with stale
// data reachable.
type litmusFenceMP struct {
	data, scratch uint64 // same page
	flag          uint64
	r             litmusRegs
	bar           workload.Barrier

	sData, sDataLd, sScratch, sFlagSt, sFlagLd workload.Site
}

// LitmusFenceMP constructs the fence-mediated message-passing kernel.
func LitmusFenceMP() workload.Workload { return &litmusFenceMP{} }

var _ workload.Outcomer = (*litmusFenceMP)(nil)

func (w *litmusFenceMP) Name() string { return "litmus-fencemp" }

func (w *litmusFenceMP) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAtomics: true,
		Desc: "litmus MP over a relaxed flag and release/acquire fences: flag=1 implies data=42"}
}

func (w *litmusFenceMP) Setup(env workload.Env) error {
	page := env.PageSize()
	base := env.Alloc(page, page)
	w.data, w.scratch = base, base+512
	w.flag = env.Alloc(page, page)
	w.r = litmusRegs{litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("fencemp.bar", env.Threads())
	w.sData = env.Site("fencemp.store_data", workload.SiteStore, 8)
	w.sDataLd = env.Site("fencemp.load_data", workload.SiteLoad, 8)
	w.sScratch = env.Site("fencemp.scratch", workload.SiteStore, 8)
	w.sFlagSt = env.Site("fencemp.store_flag", workload.SiteAtomic, 8)
	w.sFlagLd = env.Site("fencemp.load_flag", workload.SiteAtomic, 8)
	return nil
}

func (w *litmusFenceMP) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.Store(w.sData, w.data, 42)
		t.Fence(workload.Release)
		t.AtomicStore(w.sFlagSt, w.flag, 1, workload.Relaxed)
	} else {
		t.Store(w.sScratch, w.scratch, 7)
		w.r[0] = t.AtomicLoad(w.sFlagLd, w.flag, workload.Relaxed)
		t.Fence(workload.Acquire)
		if w.r[0] == 1 {
			w.r[1] = t.Load(w.sDataLd, w.data)
		}
	}
	t.Wait(w.bar)
}

func (w *litmusFenceMP) Validate(env workload.Env) error {
	if w.r[0] == 1 && w.r[1] != 42 {
		return fmt.Errorf("litmus-fencemp: flag=1 but data=%s, want 42", reg(w.r[1]))
	}
	return nil
}

func (w *litmusFenceMP) Outcome(env workload.Env) string {
	return fmt.Sprintf("flag=%s data=%s", reg(w.r[0]), reg(w.r[1]))
}

// --- relaxed IRIW with plain second loads (broken) -----------------------

// litmusIRIWRelaxed is the under-annotated relaxed-IRIW fixture: two
// writers publish x and y through relaxed atomics, and each reader reads
// one variable atomically and then the *other through a plain load* — the
// annotation the pass missed. Each reader first scratch-dirties the page of
// its plain-loaded variable. Statically every access matches its site's
// declared kind, so the verifier finds nothing; dynamically the plain loads
// race with the relaxed stores, and under the PTSB each reader's plain load
// can return its stale private snapshot while the atomic load sees the
// fresh shared value — so the readers disagree on the write order, which SC
// forbids. The repair tmilint -suggest must find: upgrade both plain-load
// sites to relaxed atomics (each one individually necessary).
type litmusIRIWRelaxed struct {
	x, y               uint64
	scratch2, scratch3 uint64 // scratch2 on y's page (r2 plain-loads y), scratch3 on x's page
	r                  litmusRegs
	bar                workload.Barrier

	sScratch, sStX, sStY, sLdX, sLdY, sLdYPlain, sLdXPlain workload.Site
}

// LitmusIRIWRelaxed constructs the broken relaxed-IRIW fixture.
func LitmusIRIWRelaxed() workload.Workload { return &litmusIRIWRelaxed{} }

var _ workload.Outcomer = (*litmusIRIWRelaxed)(nil)

func (w *litmusIRIWRelaxed) Name() string { return "litmus-iriw-relaxed" }

func (w *litmusIRIWRelaxed) Info() workload.Info {
	return workload.Info{Threads: 4, FootprintMB: 1, UsesAtomics: true, UsesCustomSync: true,
		Desc: "under-annotated relaxed IRIW: plain second loads read stale twins"}
}

func (w *litmusIRIWRelaxed) Setup(env workload.Env) error {
	page := env.PageSize()
	pageX := env.Alloc(page, page)
	pageY := env.Alloc(page, page)
	w.x, w.scratch3 = pageX, pageX+512
	w.y, w.scratch2 = pageY, pageY+512
	w.r = litmusRegs{litmusUnread, litmusUnread, litmusUnread, litmusUnread}
	w.bar = env.NewBarrier("iriwrelaxed.bar", env.Threads())
	w.sScratch = env.Site("iriwrelaxed.scratch", workload.SiteStore, 8)
	w.sStX = env.Site("iriwrelaxed.store_x", workload.SiteAtomic, 8)
	w.sStY = env.Site("iriwrelaxed.store_y", workload.SiteAtomic, 8)
	w.sLdX = env.Site("iriwrelaxed.load_x", workload.SiteAtomic, 8)
	w.sLdY = env.Site("iriwrelaxed.load_y", workload.SiteAtomic, 8)
	w.sLdYPlain = env.Site("iriwrelaxed.load_y_plain", workload.SiteLoad, 8)
	w.sLdXPlain = env.Site("iriwrelaxed.load_x_plain", workload.SiteLoad, 8)
	return nil
}

func (w *litmusIRIWRelaxed) Body(t workload.Thread) {
	switch t.ID() {
	case 0:
		t.AtomicStore(w.sStX, w.x, 1, workload.Relaxed)
	case 1:
		t.AtomicStore(w.sStY, w.y, 1, workload.Relaxed)
	case 2:
		t.Store(w.sScratch, w.scratch2, 7) // snapshots y's page
		w.r[0] = t.AtomicLoad(w.sLdX, w.x, workload.Relaxed)
		w.r[1] = t.Load(w.sLdYPlain, w.y) // the missing annotation
	case 3:
		t.Store(w.sScratch, w.scratch3, 7) // snapshots x's page
		w.r[2] = t.AtomicLoad(w.sLdY, w.y, workload.Relaxed)
		w.r[3] = t.Load(w.sLdXPlain, w.x) // the missing annotation
	}
	t.Wait(w.bar)
}

func (w *litmusIRIWRelaxed) Validate(env workload.Env) error {
	if w.r[0] == 1 && w.r[1] == 0 && w.r[2] == 1 && w.r[3] == 0 {
		return fmt.Errorf("litmus-iriw-relaxed: readers saw x-then-y and y-then-x (forbidden under SC)")
	}
	return nil
}

func (w *litmusIRIWRelaxed) Outcome(env workload.Env) string {
	return fmt.Sprintf("r0=%s r1=%s r2=%s r3=%s", reg(w.r[0]), reg(w.r[1]), reg(w.r[2]), reg(w.r[3]))
}

// LitmusC11Suite returns the clean ordering-aware litmus kernels
// (SC-equivalence must hold for every one of them).
func LitmusC11Suite() []workload.Workload {
	return []workload.Workload{
		LitmusMPRelAcq(), LitmusFenceSB(), LitmusFenceMP(),
	}
}
