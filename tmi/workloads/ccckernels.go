package workloads

import (
	"fmt"

	"repro/tmi/workload"
)

// This file holds the consistency kernels behind the paper's Figures 3, 11
// and 12: programs whose *correctness* (not performance) depends on
// code-centric consistency once a page twinning store buffer is active.

// wordTearing is Figure 3: two threads store aligned 2-byte values with
// overlapping byte patterns into the same word. Every memory model the
// paper surveys guarantees aligned multi-byte store atomicity, so the final
// value must be one of the two stored values — but a byte-diffing PTSB can
// merge them into 0xABCD, a value no thread wrote.
type wordTearing struct {
	inAsm bool // stores wrapped in asm regions (CCC protects them)

	x     uint64
	pad0  uint64
	bar   workload.Barrier
	sHi   workload.Site
	sLo   workload.Site
	sWarm workload.Site
}

// WordTearing constructs the Figure 3 kernel. With inAsm the stores are
// inline assembly (so a correct runtime must preserve AMBSA); without, they
// are plain racy C stores (undefined semantics — tearing is permitted).
func WordTearing(inAsm bool) workload.Workload {
	return &wordTearing{inAsm: inAsm}
}

var _ workload.Workload = (*wordTearing)(nil)

func (w *wordTearing) Name() string {
	if w.inAsm {
		return "wordtear-asm"
	}
	return "wordtear"
}

func (w *wordTearing) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAsm: w.inAsm,
		HasFalseSharing: true, Desc: "Figure 3 AMBSA kernel"}
}

func (w *wordTearing) Setup(env workload.Env) error {
	w.x = env.Alloc(2, 2)
	w.pad0 = env.Alloc(8, 8)
	w.bar = env.NewBarrier("wordtear.bar", env.Threads())
	w.sHi = env.Site("wordtear.store_hi", workload.SiteStore, 2)
	w.sLo = env.Site("wordtear.store_lo", workload.SiteStore, 2)
	w.sWarm = env.Site("wordtear.warm", workload.SiteStore, 8)
	return nil
}

func (w *wordTearing) Body(t workload.Thread) {
	// Both threads dirty the page first so each holds a private PTSB copy
	// whose twin has x == 0.
	t.Store(w.sWarm, w.pad0, uint64(t.ID())+1)
	if w.inAsm {
		t.EnterAsm()
	}
	if t.ID() == 0 {
		t.Store(w.sHi, w.x, 0xAB00)
	} else {
		t.Store(w.sLo, w.x, 0x00CD)
	}
	if w.inAsm {
		t.ExitAsm()
	}
	t.Wait(w.bar)
}

func (w *wordTearing) Validate(env workload.Env) error {
	got := env.Load(w.x, 2)
	if got == 0xAB00 || got == 0x00CD {
		return nil
	}
	return fmt.Errorf("wordtear: x = 0x%04X, not a value any thread stored (AMBSA violated)", got)
}

// Torn reports whether the final value is the Figure 3 merge artifact.
// Exposed for the experiments that *demonstrate* tearing.
func (w *wordTearing) Torn(env workload.Env) bool {
	return env.Load(w.x, 2) == 0xABCD
}

// cannealSwap is Figure 11: concurrent atomic pair-swaps over a shared
// element array (canneal's netlist moves, implemented with lock-free inline
// assembly). A PTSB without code-centric consistency performs the swaps on
// stale private copies; the diff-and-merge then replicates some elements
// and loses others. Validation checks the multiset of elements is the
// original permutation.
type cannealSwap struct {
	iters int

	elems uint64
	n     int
	bar   workload.Barrier
	sA    workload.Site
	sB    workload.Site
}

// CannealSwap constructs the Figure 11 kernel (a small-footprint cut of
// canneal that Sheriff can run — and corrupt).
func CannealSwap() workload.Workload {
	return &cannealSwap{iters: 2500, n: 256}
}

var _ workload.Workload = (*cannealSwap)(nil)

func (c *cannealSwap) Name() string { return "canneal-swap" }

func (c *cannealSwap) Info() workload.Info {
	return workload.Info{Threads: 4, FootprintMB: 8, UsesAtomics: true, UsesAsm: true,
		Desc: "Figure 11: concurrent atomic element swaps"}
}

func (c *cannealSwap) Setup(env workload.Env) error {
	c.elems = env.Alloc(c.n*8, 64)
	for i := 0; i < c.n; i++ {
		env.Store(c.elems+uint64(i)*8, 8, uint64(i+1))
	}
	c.bar = env.NewBarrier("cannealswap.bar", env.Threads())
	c.sA = env.Site("cannealswap.swap_a", workload.SiteAtomic, 8)
	c.sB = env.Site("cannealswap.swap_b", workload.SiteAtomic, 8)
	return nil
}

func (c *cannealSwap) Body(t workload.Thread) {
	rng := t.Rand()
	for i := 0; i < c.iters; i++ {
		a := rng.Intn(c.n)
		b := rng.Intn(c.n)
		if a == b {
			continue
		}
		t.AsmAtomicSwap(c.sA, c.sB, c.elems+uint64(a)*8, c.elems+uint64(b)*8)
		t.Work(180) // evaluate the move
	}
	t.Wait(c.bar)
}

func (c *cannealSwap) Validate(env workload.Env) error {
	seen := make(map[uint64]int, c.n)
	for i := 0; i < c.n; i++ {
		seen[env.Load(c.elems+uint64(i)*8, 8)]++
	}
	for v := 1; v <= c.n; v++ {
		switch n := seen[uint64(v)]; {
		case n == 0:
			return fmt.Errorf("canneal-swap: element %d lost", v)
		case n > 1:
			return fmt.Errorf("canneal-swap: element %d replicated %d times", v, n)
		}
	}
	return nil
}

// choleskyFlag is Figure 12: T1 clears a volatile flag that T0 spins on;
// both then meet at a barrier. Under a PTSB without code-centric
// consistency, T0 holds a stale private copy of the flag's page (it wrote
// other data there) and spins forever. Code-centric consistency honors the
// volatile access as an atomic and reads shared memory.
type choleskyFlag struct {
	flag  uint64
	datum uint64
	done  uint64
	bar   workload.Barrier

	sFlagLd workload.Site
	sFlagSt workload.Site
	sDatum  workload.Site
	sDone   workload.Site
}

// CholeskyFlag constructs the Figure 12 kernel.
func CholeskyFlag() workload.Workload { return &choleskyFlag{} }

var _ workload.Workload = (*choleskyFlag)(nil)

func (c *choleskyFlag) Name() string { return "cholesky-flag" }

func (c *choleskyFlag) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, UsesAtomics: true, UsesCustomSync: false,
		Desc: "Figure 12: volatile-flag spin that hangs without CCC"}
}

func (c *choleskyFlag) Setup(env workload.Env) error {
	page := env.PageSize()
	base := env.Alloc(page, page) // one page holding flag and T0's datum
	c.flag = base
	c.datum = base + 512
	c.done = env.Alloc(8, 64)
	env.Store(c.flag, 8, 1) // flag starts true
	c.bar = env.NewBarrier("choleskyflag.bar", env.Threads())
	c.sFlagLd = env.Site("choleskyflag.load_flag", workload.SiteAtomic, 8)
	c.sFlagSt = env.Site("choleskyflag.store_flag", workload.SiteAtomic, 8)
	c.sDatum = env.Site("choleskyflag.datum", workload.SiteStore, 8)
	c.sDone = env.Site("choleskyflag.done", workload.SiteStore, 8)
	return nil
}

const flagSpinLimit = 50_000

func (c *choleskyFlag) Body(t workload.Thread) {
	if t.ID() == 0 {
		// T0 dirties the flag's page first (matrix setup), then spins.
		t.Store(c.sDatum, c.datum, 7)
		for spins := 0; ; spins++ {
			// The volatile read: code-centric consistency treats it as an
			// atomic (SC) access.
			if t.AtomicLoad(c.sFlagLd, c.flag, workload.SeqCst) == 0 {
				break
			}
			t.Work(40)
			if spins == flagSpinLimit {
				t.Hang("flag never observed false: stale private copy")
			}
		}
		t.Store(c.sDone, c.done, 1)
	} else {
		t.Work(20_000)
		t.AtomicStore(c.sFlagSt, c.flag, 0, workload.SeqCst)
	}
	t.Wait(c.bar)
}

func (c *choleskyFlag) Validate(env workload.Env) error {
	if env.Load(c.done, 8) != 1 {
		return fmt.Errorf("cholesky-flag: T0 never exited the spin loop")
	}
	return nil
}
