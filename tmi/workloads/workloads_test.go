package workloads_test

import (
	"strings"
	"testing"

	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

func TestSuiteHas35Workloads(t *testing.T) {
	suite := workloads.Suite()
	if len(suite) != 35 {
		t.Fatalf("suite has %d workloads, the paper evaluates 35", len(suite))
	}
	seen := map[string]bool{}
	for _, w := range suite {
		if seen[w.Name()] {
			t.Errorf("duplicate workload %q", w.Name())
		}
		seen[w.Name()] = true
		info := w.Info()
		if info.Threads < 1 {
			t.Errorf("%s: no threads", w.Name())
		}
		if info.Desc == "" {
			t.Errorf("%s: missing description", w.Name())
		}
	}
	// The paper's individually-discussed benchmarks must be present.
	for _, name := range []string{
		"histogram", "histogramfs", "lreg", "stringmatch", "lu-ncb",
		"leveldb", "spinlockpool", "shptr-relaxed", "shptr-lock",
		"canneal", "dedup", "kmeans", "fluidanimate", "ocean-ncp",
	} {
		if !seen[name] {
			t.Errorf("suite missing %q", name)
		}
	}
}

func TestFSSuiteAllDeclareFalseSharing(t *testing.T) {
	for _, w := range workloads.FSSuite() {
		if !w.Info().HasFalseSharing {
			t.Errorf("%s is in the FS suite but does not declare false sharing", w.Name())
		}
	}
}

func TestManualVariantsExistForFSSuite(t *testing.T) {
	for _, w := range workloads.FSSuite() {
		m, err := workloads.Manual(w.Name())
		if err != nil {
			t.Errorf("no manual fix for %s: %v", w.Name(), err)
			continue
		}
		if !strings.HasSuffix(m.Name(), "-manual") {
			t.Errorf("manual variant of %s named %q", w.Name(), m.Name())
		}
		if m.Info().HasFalseSharing {
			t.Errorf("%s: the manual fix must not declare false sharing", m.Name())
		}
	}
	if _, err := workloads.Manual("swaptions"); err == nil {
		t.Error("non-FS workloads have no manual fix")
	}
}

func TestByNameResolvesEveryName(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if w.Name() != name {
			t.Errorf("ByName(%q) returned %q", name, w.Name())
		}
	}
	if _, err := workloads.ByName("nonexistent"); err == nil {
		t.Error("unknown names must error")
	}
}

func TestFalseSharingVariantsActuallyShare(t *testing.T) {
	// Ground truth check at the cache level: the buggy variant produces far
	// more HITM traffic than the manual fix, for every FS benchmark.
	for _, w := range workloads.FSSuite() {
		name := w.Name()
		t.Run(name, func(t *testing.T) {
			buggy, err := tmi.Run(mustByName(t, name), tmi.Config{System: tmi.Pthreads})
			if err != nil {
				t.Fatal(err)
			}
			man, err := workloads.Manual(name)
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := tmi.Run(man, tmi.Config{System: tmi.Pthreads})
			if err != nil {
				t.Fatal(err)
			}
			// Workloads with inherent true sharing (leveldb's refcounts,
			// spinlockpool's lock contention) keep a HITM floor even when
			// fixed; the injected false sharing must still dominate it.
			if float64(buggy.HITMEvents) < 1.4*float64(fixed.HITMEvents) {
				t.Errorf("buggy HITM %d vs fixed %d: injection too weak", buggy.HITMEvents, fixed.HITMEvents)
			}
		})
	}
}

func TestCleanSuiteMembersHaveLowContention(t *testing.T) {
	// Workloads without declared sharing should spend almost nothing on
	// HITM traffic relative to their runtime.
	for _, name := range []string{"blackscholes", "swaptions", "matrix", "lu-cb"} {
		rep, err := tmi.Run(mustByName(t, name), tmi.Config{System: tmi.Pthreads})
		if err != nil {
			t.Fatal(err)
		}
		hitmebudget := rep.SimSeconds * 3.4e9 * 0.02 / 150 // <=2% of cycles in HITM
		if float64(rep.HITMEvents) > hitmebudget {
			t.Errorf("%s: %d HITM events exceed the 2%% budget (%0.f)", name, rep.HITMEvents, hitmebudget)
		}
	}
}

func TestWordTearingVariants(t *testing.T) {
	plain := workloads.WordTearing(false)
	asm := workloads.WordTearing(true)
	if plain.Name() == asm.Name() {
		t.Error("variants need distinct names")
	}
	if !asm.Info().UsesAsm || plain.Info().UsesAsm {
		t.Error("UsesAsm flags wrong")
	}
}

func TestInfoTraitsMatchPaperInventory(t *testing.T) {
	// §4.5: canneal and leveldb use inline assembly for atomics; dedup has
	// openssl assembly; several splash2 codes use custom flag sync.
	traits := map[string]func(workload.Info) bool{
		"canneal":   func(i workload.Info) bool { return i.UsesAsm && i.UsesAtomics },
		"dedup":     func(i workload.Info) bool { return i.UsesAsm },
		"leveldb":   func(i workload.Info) bool { return i.UsesAsm && i.UsesAtomics },
		"barnes":    func(i workload.Info) bool { return i.UsesCustomSync },
		"fmm":       func(i workload.Info) bool { return i.UsesCustomSync },
		"radiosity": func(i workload.Info) bool { return i.UsesCustomSync },
		"ocean-ncp": func(i workload.Info) bool { return i.FootprintMB > 20_000 },
	}
	for name, check := range traits {
		w := mustByName(t, name)
		if !check(w.Info()) {
			t.Errorf("%s: traits %+v do not match the paper's inventory", name, w.Info())
		}
	}
}

func mustByName(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
