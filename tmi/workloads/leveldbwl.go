package workloads

import (
	"fmt"

	"repro/internal/leveldb"
	"repro/tmi/workload"
)

// leveldbWL is the paper's real-world workload: the leveldb key-value store
// driven by concurrent client threads. The data plane is the real mini-LSM
// store (internal/leveldb: memtable, WAL, SSTables, compaction), charged as
// compute; the hot shared state lives in simulated memory:
//
//   - per-thread operation counters — the paper's injected bug packs them
//     into a single cache line (VariantFS); leveldb as shipped pads them
//     (VariantClean);
//   - the global sequence number, bumped with inline-assembly atomics
//     (leveldb has 8 asm fragments per §4.5) — true sharing;
//   - the write-queue mutex — more true sharing, which is why unmodified
//     leveldb shows ~10x more true-sharing than false-sharing HITM events.
type leveldbWL struct {
	variant Variant
	iters   int

	db *leveldb.DB

	counters  uint64
	stride    uint64
	seqAddr   uint64
	stateAddr uint64
	queueMu   workload.Mutex
	bar       workload.Barrier

	sCtr, sSeqA, sSeqB, sStateUpd workload.Site
}

// Leveldb constructs the workload; VariantFS injects the packed-counter
// false sharing bug, VariantClean is leveldb as shipped, VariantManual
// fixes the injected bug at the source.
func Leveldb(v Variant) workload.Workload {
	return &leveldbWL{variant: v, iters: 6000}
}

var _ workload.Workload = (*leveldbWL)(nil)

func (l *leveldbWL) Name() string {
	switch l.variant {
	case VariantManual:
		return "leveldb-manual"
	case VariantClean:
		return "leveldb-clean"
	}
	return "leveldb"
}

func (l *leveldbWL) Info() workload.Info {
	return workload.Info{
		Threads:         4,
		FootprintMB:     200,
		UsesAtomics:     true,
		UsesAsm:         true,
		HasFalseSharing: l.variant == VariantFS,
		Desc:            "key-value store; injected packed per-thread op counters",
	}
}

// KVOpCycles is the modeled compute cost of one Put/Get against the store.
const KVOpCycles = 150

func (l *leveldbWL) Setup(env workload.Env) error {
	n := env.Threads()
	l.db = leveldb.Open(leveldb.Options{MemtableBytes: 6 << 10, MaxTables: 2, Seed: 42})
	env.AllocBulk(int64(l.Info().FootprintMB) << 20) // block cache + tables

	if l.variant == VariantFS {
		l.stride = 48 // injected bug: six stat counters per thread, packed
	} else {
		l.stride = 64
	}
	l.counters = env.Alloc(int(l.stride)*n, 64)
	l.seqAddr = env.Alloc(8, 64)
	// The block cache's reference count word: bumped with a relaxed atomic
	// by every operation (leveldb's lock-free read path) — genuine true
	// sharing, the dominant HITM source in unmodified leveldb (§4.2).
	l.stateAddr = env.Alloc(8, 64)
	l.queueMu = env.NewMutex("leveldb.write_queue")
	l.bar = env.NewBarrier("leveldb.bar", n)
	l.sCtr = env.Site("leveldb.op_counter", workload.SiteStore, 8)
	l.sSeqA = env.Site("leveldb.seq_xadd", workload.SiteAtomic, 8)
	l.sSeqB = env.Site("leveldb.seq_xadd2", workload.SiteAtomic, 8)
	l.sStateUpd = env.Site("leveldb.blockcache_refcount", workload.SiteAtomic, 8)
	return nil
}

func (l *leveldbWL) Body(t workload.Thread) {
	my := l.counters + uint64(t.ID())*l.stride
	rng := t.Rand()
	var snap *leveldb.Snapshot
	for i := 0; i < l.iters; i++ {
		if i%64 == 0 {
			snap = l.db.GetSnapshot() // periodic consistent read view
		}
		key := fmt.Sprintf("user%04d", rng.Intn(4000))
		if i%24 == 0 {
			// Writes go through the write queue and bump the sequence
			// number with the store's inline-asm atomic.
			t.Lock(l.queueMu)
			l.db.Put([]byte(key), []byte(fmt.Sprintf("value-%d-%d", t.ID(), i)))
			t.Unlock(l.queueMu)
			t.EnterAsm()
			t.AtomicAdd(l.sSeqA, l.seqAddr, 1, workload.SeqCst)
			t.ExitAsm()
		} else if i%8 == 0 {
			snap.Get([]byte(key)) // snapshot read (leveldb's read path)
		} else {
			l.db.Get([]byte(key))
		}
		// Every operation pins a block-cache handle: a relaxed atomic
		// reference-count bump on a shared line (true sharing, no PTSB
		// flush needed thanks to code-centric consistency).
		t.AtomicAdd(l.sStateUpd, l.stateAddr, 1, workload.Relaxed)
		t.Work(KVOpCycles)
		// The injected bug: every operation updates the packed per-thread
		// statistics block (ops, bytes/keys read and written, cache and
		// filter hits), interleaved with the op's own work.
		for c := uint64(0); c < 6; c++ {
			t.Work(10)
			t.Store(l.sCtr, my+c*8, uint64(i+1))
		}
	}
	t.Wait(l.bar)
}

func (l *leveldbWL) Validate(env workload.Env) error {
	n := env.Threads()
	for tid := 0; tid < n; tid++ {
		for c := uint64(0); c < 6; c++ {
			if got := env.Load(l.counters+uint64(tid)*l.stride+c*8, 8); got != uint64(l.iters) {
				return fmt.Errorf("leveldb: thread %d stat %d = %d, want %d", tid, c, got, l.iters)
			}
		}
	}
	wantSeq := uint64(n) * uint64((l.iters+23)/24)
	if got := env.Load(l.seqAddr, 8); got != wantSeq {
		return fmt.Errorf("leveldb: sequence number %d, want %d (asm atomicity broken)", got, wantSeq)
	}
	if l.db.Puts == 0 || l.db.Flushes == 0 {
		return fmt.Errorf("leveldb: store saw no traffic (puts=%d flushes=%d)", l.db.Puts, l.db.Flushes)
	}
	return nil
}
