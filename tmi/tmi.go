// Package tmi is the public API of the TMI reproduction: it runs workloads
// (package tmi/workload) on the simulated multicore under a chosen system —
// the pthreads baseline, TMI in its alloc/detect/protect modes, or the
// Sheriff and LASER comparison systems — and reports runtime, detection and
// repair results.
//
// Quick start:
//
//	w := workloads.Histogram(workloads.VariantFS)
//	rep, err := tmi.Run(w, tmi.Config{System: tmi.TMIProtect})
//	fmt.Printf("runtime %.3fs, repaired=%v\n", rep.SimSeconds, rep.Repaired)
//
// Every run is deterministic for a fixed Config.Seed.
package tmi

import (
	"repro/internal/core"
	"repro/tmi/workload"
)

// System selects which runtime supervises the workload.
type System int

// Systems.
const (
	// Pthreads is the unmonitored baseline (Lockless-style allocator).
	Pthreads System = iota
	// TMIAlloc redirects allocations into TMI's process-shared memory and
	// replaces synchronization with process-shared objects.
	TMIAlloc
	// TMIDetect adds HITM sampling and the false-sharing detection thread.
	TMIDetect
	// TMIProtect is full TMI: detection plus online repair.
	TMIProtect
	// SheriffDetect and SheriffProtect model Sheriff's threads-as-processes
	// design (no code-centric consistency).
	SheriffDetect
	SheriffProtect
	// LASER detects like TMI and repairs with a TSO-preserving software
	// store buffer.
	LASER
	// Plastic models the EuroSys'13 system: whole-program dynamic binary
	// instrumentation plus byte-granularity remapping of contended lines.
	Plastic
)

// String names the system as in the paper's figures.
func (s System) String() string { return s.core().String() }

func (s System) core() core.Setup {
	switch s {
	case Pthreads:
		return core.Pthreads
	case TMIAlloc:
		return core.TMIAlloc
	case TMIDetect:
		return core.TMIDetect
	case TMIProtect:
		return core.TMIProtect
	case SheriffDetect:
		return core.SheriffDetect
	case SheriffProtect:
		return core.SheriffProtect
	case LASER:
		return core.LASER
	case Plastic:
		return core.Plastic
	}
	panic("tmi: unknown system")
}

// Config controls a run. The zero value runs the pthreads baseline with the
// paper's defaults (period 100, 4 KiB pages, CCC on, 100k events/s repair
// threshold).
type Config struct {
	System System
	// Threads overrides the workload's default thread count when > 0.
	Threads int
	// Period is the perf sampling period (default 100).
	Period int
	// HugePages backs shared memory with 2 MiB pages (§4.4).
	HugePages bool
	// DisableCCC turns code-centric consistency off; with the PTSB active
	// this is unsound by design and exists for the consistency experiments.
	DisableCCC bool
	// PTSBEverywhere arms the whole heap at first repair (§4.3 ablation).
	PTSBEverywhere bool
	// RepairBackend selects the repair strategy for TMIProtect runs: ""
	// or "t2p" (the paper's thread-to-process conversion + PTSB), "pad"
	// (allocator re-segregation onto private lines), "map" (thread-and-
	// data mapping toward the hot page's home node), or "tmebox"
	// (fork-free keyed in-process isolation).
	RepairBackend string
	// Sockets splits the simulated cores across that many sockets with a
	// home-node directory and remote-socket latency penalties. 0 or 1
	// keeps the flat single-socket machine (byte-identical defaults).
	Sockets int
	// ThresholdPerSec overrides the detector's repair threshold.
	ThresholdPerSec float64
	// DetectIntervalSec overrides the detection analysis period. The
	// default (DefaultDetectInterval) is the paper's once-per-second
	// analysis scaled to this reproduction's compressed timescale.
	DetectIntervalSec float64
	// Seed fixes determinism (default 1).
	Seed int64
	// CacheLines bounds each core's private cache in lines (FIFO eviction);
	// 0 models unbounded private caches (the default — contention does not
	// depend on capacity).
	CacheLines int
	// AdaptivePeriod lets the detection thread retune the sampling period
	// each interval (extension; see Figure 4 for the static tradeoff).
	AdaptivePeriod bool
	// TeardownIdleIntervals un-repairs pages whose commits merge nothing
	// for that many consecutive detection intervals (extension; 0 = off).
	TeardownIdleIntervals int
	// Trace records structured runtime events into Report.Tracer.
	Trace bool
	// CaptureSamples records the detector's accepted sample stream and
	// window boundaries into Report.SampleLog — a replayable HITM trace
	// (the input format of cmd/tmiload and tmidetect -advice).
	CaptureSamples bool
	// Sanitize enables the runtime annotation sanitizer: region balance,
	// access-kind/site-kind agreement, and atomics-inside-regions are
	// asserted while the simulation runs (see core.Config.Sanitize).
	Sanitize bool
}

// DefaultDetectInterval is the detection-thread analysis period in simulated
// seconds. The paper analyzes once per second over minute-long runs; this
// reproduction compresses workloads ~500x (tens of milliseconds), so the
// interval compresses identically and all events-per-second rates and
// thresholds carry over unchanged.
const DefaultDetectInterval = 0.0001

// Report is the outcome of one run. See the field documentation in
// internal/core; the aliases here are the public stable surface.
type Report = core.Report

// ErrIncompatible reports a system that cannot run a workload (Sheriff on
// most of the suite).
type ErrIncompatible = core.ErrIncompatible

// Run executes w under cfg.
func Run(w workload.Workload, cfg Config) (*Report, error) {
	c := core.Config{
		Setup:                 cfg.System.core(),
		Threads:               cfg.Threads,
		Period:                cfg.Period,
		HugePages:             cfg.HugePages,
		DisableCCC:            cfg.DisableCCC,
		PTSBEverywhere:        cfg.PTSBEverywhere,
		RepairBackend:         cfg.RepairBackend,
		Sockets:               cfg.Sockets,
		ThresholdPerSec:       cfg.ThresholdPerSec,
		DetectIntervalSec:     cfg.DetectIntervalSec,
		Seed:                  cfg.Seed,
		CacheLines:            cfg.CacheLines,
		AdaptivePeriod:        cfg.AdaptivePeriod,
		TeardownIdleIntervals: cfg.TeardownIdleIntervals,
		Trace:                 cfg.Trace,
		CaptureSamples:        cfg.CaptureSamples,
		Sanitize:              cfg.Sanitize,
	}
	if c.DetectIntervalSec <= 0 {
		c.DetectIntervalSec = DefaultDetectInterval
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return core.Run(w, c)
}

// Speedup returns base.SimSeconds / other.SimSeconds: how much faster other
// ran than base.
func Speedup(base, other *Report) float64 {
	if other.SimSeconds <= 0 {
		return 0
	}
	return base.SimSeconds / other.SimSeconds
}
