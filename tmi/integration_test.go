package tmi_test

import (
	"strings"
	"testing"

	"repro/tmi"
	"repro/tmi/workloads"
)

func run(t *testing.T, name string, cfg tmi.Config) *tmi.Report {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tmi.Run(w, cfg)
	if err != nil {
		t.Fatalf("%s under %v: %v", name, cfg.System, err)
	}
	return rep
}

func TestBaselineRunsAndValidates(t *testing.T) {
	rep := run(t, "histogramfs", tmi.Config{System: tmi.Pthreads})
	if !rep.Validated {
		t.Fatalf("baseline invalid: %s", rep.ValidationErr)
	}
	if rep.SimSeconds <= 0 {
		t.Error("no simulated time elapsed")
	}
	if rep.HITMEvents == 0 {
		t.Error("a false-sharing workload must generate HITM traffic")
	}
	if rep.RecordsSeen != 0 {
		t.Error("the baseline must not sample")
	}
	if rep.Repaired {
		t.Error("the baseline must not repair")
	}
}

func TestTMIProtectRepairsFalseSharing(t *testing.T) {
	base := run(t, "histogramfs", tmi.Config{System: tmi.Pthreads})
	prot := run(t, "histogramfs", tmi.Config{System: tmi.TMIProtect})
	if !prot.Validated {
		t.Fatalf("invalid: %s", prot.ValidationErr)
	}
	if !prot.Repaired || prot.PagesProtected == 0 {
		t.Fatal("TMI should have repaired histogramfs")
	}
	if sp := tmi.Speedup(base, prot); sp < 3 {
		t.Errorf("speedup %.2fx, want >= 3x", sp)
	}
	if len(prot.T2PMicros) == 0 || prot.MeanT2PMicros() < 70 || prot.MeanT2PMicros() > 190 {
		t.Errorf("T2P %f us outside the paper's envelope", prot.MeanT2PMicros())
	}
	if prot.RepairAtSec <= 0 || prot.RepairAtSec >= prot.SimSeconds {
		t.Errorf("repair time %f outside the run", prot.RepairAtSec)
	}
}

func TestTMIApproachesManualFix(t *testing.T) {
	base := run(t, "histogramfs", tmi.Config{System: tmi.Pthreads})
	man := run(t, "histogramfs-manual", tmi.Config{System: tmi.Pthreads})
	prot := run(t, "histogramfs", tmi.Config{System: tmi.TMIProtect})
	manX := tmi.Speedup(base, man)
	tmiX := tmi.Speedup(base, prot)
	if ratio := tmiX / manX; ratio < 0.5 || ratio > 1.1 {
		t.Errorf("TMI achieves %.0f%% of manual; expect a large fraction (paper: 88%%)", ratio*100)
	}
}

func TestDetectOnlyClassifiesWithoutRepair(t *testing.T) {
	rep := run(t, "histogramfs", tmi.Config{System: tmi.TMIDetect})
	if rep.Repaired {
		t.Error("detect mode must not repair")
	}
	if rep.FalseLines == 0 {
		t.Error("detector should classify the counter lines as false sharing")
	}
	if rep.RecordsSeen == 0 {
		t.Error("detector consumed no records")
	}
}

func TestAllocModeDoesNotSample(t *testing.T) {
	rep := run(t, "histogramfs", tmi.Config{System: tmi.TMIAlloc})
	if rep.RecordsSeen != 0 || rep.FalseLines != 0 {
		t.Error("alloc mode has no detector")
	}
	if !rep.Validated {
		t.Error(rep.ValidationErr)
	}
}

func TestNoFalseSharingNoIntervention(t *testing.T) {
	rep := run(t, "swaptions", tmi.Config{System: tmi.TMIProtect, HugePages: true})
	if rep.Repaired || rep.PagesProtected != 0 {
		t.Error("a clean workload must never trigger repair")
	}
	if !rep.Validated {
		t.Error(rep.ValidationErr)
	}
}

func TestLuNcbRepairedByAllocatorAlone(t *testing.T) {
	base := run(t, "lu-ncb", tmi.Config{System: tmi.Pthreads})
	prot := run(t, "lu-ncb", tmi.Config{System: tmi.TMIProtect})
	if prot.Repaired {
		t.Error("lu-ncb should be fixed by the allocator, not page protection")
	}
	if sp := tmi.Speedup(base, prot); sp < 1.5 {
		t.Errorf("allocator change should fix lu-ncb: speedup %.2f", sp)
	}
}

func TestManualVariantNeedsNoRepair(t *testing.T) {
	rep := run(t, "histogramfs-manual", tmi.Config{System: tmi.TMIProtect})
	if rep.Repaired {
		t.Error("the manually fixed variant has nothing to repair")
	}
}

func TestSheriffBreaksWordTearing(t *testing.T) {
	rep := run(t, "wordtear-asm", tmi.Config{System: tmi.SheriffProtect})
	if rep.Validated {
		t.Fatal("Sheriff's PTSB must tear the aligned 2-byte stores")
	}
	if !strings.Contains(rep.ValidationErr, "0xABCD") {
		t.Errorf("expected the Figure 3 merge artifact, got: %s", rep.ValidationErr)
	}
	ok := run(t, "wordtear-asm", tmi.Config{System: tmi.TMIProtect})
	if !ok.Validated {
		t.Errorf("TMI with CCC must preserve AMBSA: %s", ok.ValidationErr)
	}
}

func TestFig11CannealSwaps(t *testing.T) {
	bad := run(t, "canneal-swap", tmi.Config{System: tmi.SheriffProtect})
	if bad.Validated {
		t.Error("concurrent atomic swaps must corrupt under a PTSB without CCC")
	}
	for _, sys := range []tmi.System{tmi.Pthreads, tmi.TMIProtect} {
		if rep := run(t, "canneal-swap", tmi.Config{System: sys}); !rep.Validated {
			t.Errorf("%v: %s", sys, rep.ValidationErr)
		}
	}
}

func TestFig12CholeskyFlag(t *testing.T) {
	bad := run(t, "cholesky-flag", tmi.Config{System: tmi.SheriffProtect})
	if !bad.Hung {
		t.Error("the volatile-flag spin must hang under a PTSB without CCC")
	}
	for _, sys := range []tmi.System{tmi.Pthreads, tmi.TMIProtect} {
		rep := run(t, "cholesky-flag", tmi.Config{System: sys})
		if rep.Hung || !rep.Validated {
			t.Errorf("%v: hung=%v err=%s", sys, rep.Hung, rep.ValidationErr)
		}
	}
}

func TestSheriffLosesRelaxedAtomicUpdates(t *testing.T) {
	rep := run(t, "shptr-relaxed", tmi.Config{System: tmi.SheriffProtect})
	if rep.Validated {
		t.Error("refcount increments must be lost under Sheriff")
	}
	if !strings.Contains(rep.ValidationErr, "refcount") {
		t.Errorf("unexpected failure: %s", rep.ValidationErr)
	}
}

func TestSheriffIncompatibleWithLargeFootprints(t *testing.T) {
	w, err := workloads.ByName("ocean-ncp")
	if err != nil {
		t.Fatal(err)
	}
	_, err = tmi.Run(w, tmi.Config{System: tmi.SheriffProtect, Seed: 1})
	var inc *tmi.ErrIncompatible
	if err == nil {
		t.Fatal("ocean-ncp (27GB) must be incompatible with Sheriff")
	}
	if e, ok := err.(*tmi.ErrIncompatible); ok {
		inc = e
	} else {
		t.Fatalf("want ErrIncompatible, got %v", err)
	}
	if inc.Workload != "ocean-ncp" {
		t.Errorf("incompatibility names %q", inc.Workload)
	}
}

func TestCCCRelaxedBeatsLockFlushes(t *testing.T) {
	base := run(t, "shptr-relaxed", tmi.Config{System: tmi.Pthreads})
	relaxed := run(t, "shptr-relaxed", tmi.Config{System: tmi.TMIProtect})
	baseL := run(t, "shptr-lock", tmi.Config{System: tmi.Pthreads})
	locked := run(t, "shptr-lock", tmi.Config{System: tmi.TMIProtect})
	rx := tmi.Speedup(base, relaxed)
	lx := tmi.Speedup(baseL, locked)
	if rx < 1.5*lx {
		t.Errorf("relaxed atomics (%.2fx) should far outperform lock-flushed (%.2fx)", rx, lx)
	}
	if relaxed.CCCFlushes > locked.CCCFlushes {
		t.Error("relaxed atomics should not flush the PTSB")
	}
}

func TestPTSBEverywhereAblation(t *testing.T) {
	targeted := run(t, "histogramfs", tmi.Config{System: tmi.TMIProtect})
	everywhere := run(t, "histogramfs", tmi.Config{System: tmi.TMIProtect, PTSBEverywhere: true})
	if everywhere.PagesProtected <= targeted.PagesProtected {
		t.Error("the ablation should protect far more pages")
	}
	if everywhere.SimSeconds < targeted.SimSeconds {
		t.Error("indiscriminate protection should not be faster than targeted")
	}
}

func TestLASERRepairsWithoutConversion(t *testing.T) {
	rep := run(t, "histogramfs", tmi.Config{System: tmi.LASER})
	if !rep.Repaired {
		t.Fatal("LASER should engage its store buffer")
	}
	if len(rep.T2PMicros) != 0 {
		t.Error("LASER never converts threads to processes")
	}
	base := run(t, "histogramfs", tmi.Config{System: tmi.Pthreads})
	prot := run(t, "histogramfs", tmi.Config{System: tmi.TMIProtect})
	lx := tmi.Speedup(base, rep)
	tx := tmi.Speedup(base, prot)
	if lx >= tx {
		t.Errorf("LASER (%.2fx) should capture less benefit than TMI (%.2fx)", lx, tx)
	}
}

func TestLASERKeepsRepairOffForSyncHeavy(t *testing.T) {
	rep := run(t, "spinlockpool", tmi.Config{System: tmi.LASER})
	if rep.Repaired {
		t.Error("TSO preservation keeps LASER's repair off for sync-heavy code")
	}
}

func TestPeriodSweepShape(t *testing.T) {
	var prevRecords uint64
	var runtimeAt1, runtimeAt1000 float64
	for i, period := range []int{1, 100, 1000} {
		rep := run(t, "leveldb-clean", tmi.Config{System: tmi.TMIDetect, HugePages: true, Period: period})
		if i == 0 {
			runtimeAt1 = rep.SimSeconds
		} else {
			if rep.RecordsSeen >= prevRecords {
				t.Errorf("records must fall as the period grows: %d -> %d", prevRecords, rep.RecordsSeen)
			}
		}
		runtimeAt1000 = rep.SimSeconds
		prevRecords = rep.RecordsSeen
	}
	if runtimeAt1 <= runtimeAt1000 {
		t.Error("period 1 should be measurably slower than period 1000 (Figure 4)")
	}
}

func TestLeveldbTrueSharingDominates(t *testing.T) {
	rep := run(t, "leveldb-clean", tmi.Config{System: tmi.TMIDetect, HugePages: true})
	if rep.TrueRecords == 0 {
		t.Fatal("unmodified leveldb should show true sharing (queue, sequence number)")
	}
	if rep.TrueRecords < 3*rep.FalseRecords {
		t.Errorf("true sharing should dominate: true=%d false=%d", rep.TrueRecords, rep.FalseRecords)
	}
	if rep.Repaired {
		t.Error("nothing worth repairing in unmodified leveldb")
	}
}

func TestMemoryAccounting(t *testing.T) {
	base := run(t, "swaptions", tmi.Config{System: tmi.Pthreads})
	full := run(t, "swaptions", tmi.Config{System: tmi.TMIDetect, HugePages: true})
	if full.MemBytes <= base.MemBytes {
		t.Error("TMI-full must cost memory (perf buffers, detector state)")
	}
	// Small-footprint workloads gain a roughly fixed overhead (paper: ~90MB).
	overheadMB := full.MemMB() - base.MemMB()
	if overheadMB < 30 || overheadMB > 200 {
		t.Errorf("fixed overhead %.0f MB out of expected band", overheadMB)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, "leveldb", tmi.Config{System: tmi.TMIProtect, Seed: 42})
	b := run(t, "leveldb", tmi.Config{System: tmi.TMIProtect, Seed: 42})
	if a.SimSeconds != b.SimSeconds || a.HITMEvents != b.HITMEvents || a.Commits != b.Commits {
		t.Errorf("same seed must reproduce: (%v,%d,%d) vs (%v,%d,%d)",
			a.SimSeconds, a.HITMEvents, a.Commits, b.SimSeconds, b.HITMEvents, b.Commits)
	}
	c := run(t, "leveldb", tmi.Config{System: tmi.TMIProtect, Seed: 43})
	if c.SimSeconds == a.SimSeconds && c.HITMEvents == a.HITMEvents {
		t.Log("different seeds produced identical results (possible but suspicious)")
	}
}

func TestThreadOverride(t *testing.T) {
	rep := run(t, "histogramfs", tmi.Config{System: tmi.Pthreads, Threads: 2})
	if !rep.Validated {
		t.Error(rep.ValidationErr)
	}
}

func TestAllSuiteWorkloadsValidateUnderBaselineAndTMI(t *testing.T) {
	for _, w := range workloads.Suite() {
		name := w.Name()
		t.Run(name, func(t *testing.T) {
			base := run(t, name, tmi.Config{System: tmi.Pthreads})
			if !base.Validated {
				t.Fatalf("baseline: %s", base.ValidationErr)
			}
			det := run(t, name, tmi.Config{System: tmi.TMIDetect, HugePages: true})
			if !det.Validated {
				t.Fatalf("tmi-detect: %s", det.ValidationErr)
			}
			// Detection is compatible-by-default: bounded perturbation.
			if ratio := det.SimSeconds / base.SimSeconds; ratio > 1.30 {
				t.Errorf("detection overhead %.0f%% too high", (ratio-1)*100)
			}
		})
	}
}

func TestFSSuiteRepairsValidateUnderTMI(t *testing.T) {
	for _, w := range workloads.FSSuite() {
		name := w.Name()
		t.Run(name, func(t *testing.T) {
			rep := run(t, name, tmi.Config{System: tmi.TMIProtect})
			if !rep.Validated {
				t.Fatalf("tmi-protect corrupted %s: %s", name, rep.ValidationErr)
			}
		})
	}
}
