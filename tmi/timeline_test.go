package tmi_test

import (
	"testing"

	"repro/tmi"
)

// The timeline must make the repair visible: the HITM rate after the page
// is armed collapses relative to the peak before it.
func TestTimelineShowsRepairCliff(t *testing.T) {
	rep := run(t, "histogramfs", tmi.Config{System: tmi.TMIProtect})
	if len(rep.Timeline) < 4 {
		t.Fatalf("timeline too short: %d points", len(rep.Timeline))
	}
	var peakBefore, lastAfter float64
	repairSeen := false
	for _, p := range rep.Timeline {
		if p.PagesProtected == 0 {
			if p.HITMPerSec > peakBefore {
				peakBefore = p.HITMPerSec
			}
		} else {
			repairSeen = true
			lastAfter = p.HITMPerSec
		}
	}
	if !repairSeen {
		t.Fatal("timeline never shows a protected page")
	}
	if peakBefore == 0 || lastAfter > peakBefore/10 {
		t.Errorf("no repair cliff: peak %.0f HITM/s before, %.0f after", peakBefore, lastAfter)
	}
	// Times are ordered and within the run.
	for i := 1; i < len(rep.Timeline); i++ {
		if rep.Timeline[i].AtSec <= rep.Timeline[i-1].AtSec {
			t.Fatal("timeline not monotonically ordered")
		}
	}
	if last := rep.Timeline[len(rep.Timeline)-1].AtSec; last > rep.SimSeconds {
		t.Errorf("timeline point at %f past the run end %f", last, rep.SimSeconds)
	}
}

// Unmonitored runs carry no timeline.
func TestTimelineOnlyWhenMonitoring(t *testing.T) {
	rep := run(t, "histogramfs", tmi.Config{System: tmi.Pthreads})
	if len(rep.Timeline) != 0 {
		t.Error("the baseline has no detection thread and no timeline")
	}
}

// Tracing is opt-in and captures the repair lifecycle.
func TestTracerCapturesLifecycle(t *testing.T) {
	rep := run(t, "histogramfs", tmi.Config{System: tmi.TMIProtect, Trace: true})
	if rep.Tracer == nil {
		t.Fatal("trace requested but absent")
	}
	if rep.Tracer.Count(0) == 0 { // KindSync
		t.Error("no sync events traced")
	}
	off := run(t, "histogramfs", tmi.Config{System: tmi.TMIProtect})
	if off.Tracer != nil {
		t.Error("tracing must be opt-in")
	}
}
