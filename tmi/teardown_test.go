package tmi_test

import (
	"fmt"
	"testing"

	"repro/tmi"
	"repro/tmi/workload"
)

// phased is a two-phase workload: a heavy false-sharing phase followed by a
// long private-compute phase. With the teardown extension, TMI should
// repair during phase one and withdraw the repair once the page goes quiet.
type phased struct {
	fsIters, quietIters int

	counters uint64
	bar      workload.Barrier
	inc      workload.Site
}

func (p *phased) Name() string { return "phased" }

func (p *phased) Info() workload.Info {
	return workload.Info{Threads: 4, HasFalseSharing: true, Desc: "FS phase then quiet phase"}
}

func (p *phased) Setup(env workload.Env) error {
	p.counters = env.Alloc(8*env.Threads(), 64)
	p.bar = env.NewBarrier("phased.bar", env.Threads())
	p.inc = env.Site("phased.inc", workload.SiteStore, 8)
	return nil
}

func (p *phased) Body(t workload.Thread) {
	mine := p.counters + uint64(t.ID())*8
	for i := 0; i < p.fsIters; i++ {
		t.Store(p.inc, mine, uint64(i+1))
		t.Work(30)
	}
	t.Wait(p.bar) // phase boundary: commits everyone's counters
	for i := 0; i < p.quietIters; i++ {
		t.Work(400)
		if i%500 == 499 {
			t.Wait(p.bar) // periodic sync keeps commits (empty) flowing
		}
	}
	t.Wait(p.bar)
}

func (p *phased) Validate(env workload.Env) error {
	for tid := 0; tid < env.Threads(); tid++ {
		if got := env.Load(p.counters+uint64(tid)*8, 8); got != uint64(p.fsIters) {
			return fmt.Errorf("phased: thread %d counter %d, want %d", tid, got, p.fsIters)
		}
	}
	return nil
}

func TestTeardownUnrepairsQuietPage(t *testing.T) {
	w := &phased{fsIters: 8000, quietIters: 12_000}
	rep, err := tmi.Run(w, tmi.Config{System: tmi.TMIProtect, TeardownIdleIntervals: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Validated {
		t.Fatalf("teardown corrupted the counters: %s", rep.ValidationErr)
	}
	if !rep.Repaired {
		t.Fatal("phase one should have triggered repair")
	}
	if rep.Notes["teardown.pages"] < 1 {
		t.Error("the quiet page should have been un-repaired")
	}
	if rep.PagesProtected == 0 {
		t.Error("PagesProtected counts lifetime arming")
	}
}

func TestNoTeardownWhileContended(t *testing.T) {
	// Without a quiet phase the page keeps merging bytes: no teardown.
	w := &phased{fsIters: 20_000, quietIters: 0}
	rep, err := tmi.Run(w, tmi.Config{System: tmi.TMIProtect, TeardownIdleIntervals: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Validated {
		t.Fatal(rep.ValidationErr)
	}
	if rep.Notes["teardown.pages"] != 0 {
		t.Error("an actively repaired page must not be torn down")
	}
}

func TestTeardownOffByDefault(t *testing.T) {
	w := &phased{fsIters: 8000, quietIters: 12_000}
	rep, err := tmi.Run(w, tmi.Config{System: tmi.TMIProtect, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Notes["teardown.pages"] != 0 {
		t.Error("teardown must be opt-in (the paper's behavior)")
	}
}
