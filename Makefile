# Build, test and lint entry points. `make ci` is the gate a PR must pass:
# tier-1 build+test, the race detector over the fast suite, and lint
# (gofmt, go vet, and tmilint's static annotation verification of the
# whole workload catalog).

GO ?= go

.PHONY: all build test race lint tmilint fmt ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails if any file needs reformatting (and prints which).
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# tmilint verifies the CCC annotation contract for every catalog workload
# and scores the static false-sharing predictor against a dynamic run.
tmilint:
	$(GO) run ./cmd/tmilint

lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/tmilint

ci: build test lint
