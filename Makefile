# Build, test and lint entry points. `make check` is the gate a PR must
# pass: tier-1 build+test, lint (gofmt, go vet, and tmilint's static
# annotation verification of the whole workload catalog), race-harness
# (the sweep executor and the tmid service are where real host-level
# concurrency lives, so their tests run under the race detector), mc
# (tmimc's exhaustive model-checking of the litmus kernels, plus the
# negative fixture that must diverge), suggest (tmilint's static repair
# solver run on the broken fixtures, its repair sets applied by tmimc and
# certified SC-equivalent and race-free), benchgate (fig9's table must stay
# byte-identical to the committed golden), backends (cross-backend repair
# parity plus the two-socket policy-table sweep), serve-smoke (a race-built
# tmid server replayed at by concurrent tmiload clients, advice streams
# asserted byte-identical to the offline detector) and cluster-smoke (a
# race-built in-process cluster — tmirouter over migratable tmid nodes —
# with one node killed and one added mid-run under a 16-client fleet:
# zero lost sessions, advice byte-identical to the offline replay).
# `make bench` persists one BENCH_<date>[.N].json
# perf point per invocation so the trajectory across PRs stays
# comparable; `make microbench` folds access-path microbenchmark stats
# into the same point.

GO ?= go

.PHONY: all build test race race-harness bench microbench benchgate backends serve-smoke cluster-smoke allocgate vet vet-src lint tmilint mc suggest fmt ci check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sweep executor fans simulation cells across GOMAXPROCS workers and
# the tmid service runs sharded detector goroutines under concurrent HTTP
# streams; these are the subsystems with host-level concurrency, so they
# get a dedicated race-detector lane in the check gate.
race-harness:
	$(GO) test -race ./internal/harness/... ./internal/service/... ./internal/cluster/...

# bench regenerates the full evaluation with the parallel sweep executor
# and appends a benchmark-trajectory point (wall-clock, cell counts,
# speedup, simulated metrics per experiment) to BENCH_<date>.json.
bench:
	$(GO) run ./cmd/tmibench -experiment all -runs 3 -bench-json auto

# microbench runs the access-path microbenchmarks (single-access latency,
# HITM transfer, step throughput, PTSB commit scan) and folds micro.* ns/op
# and allocs/op stats into the day's newest BENCH_<date>[.N].json point.
microbench:
	$(GO) test -run '^$$' -bench 'AccessLatencyL1|AccessHITMPath|StepThroughput|Commit.*Page' -benchmem \
		./internal/sim/machine ./internal/ptsb | $(GO) run ./cmd/tmimicro

# benchgate is the determinism gate: fig9's rendered table must be
# byte-identical to the committed golden. Any change to scheduling,
# coherence, sampling or repair ordering shows up here before it can
# silently shift the paper's numbers.
benchgate:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/tmibench -experiment fig9 -runs 1 > $$tmp || exit 1; \
	if ! diff -u testdata/fig9_golden.txt $$tmp; then \
		echo "benchgate: fig9 output diverged from testdata/fig9_golden.txt"; rm -f $$tmp; exit 1; \
	fi; \
	rm -f $$tmp; echo "benchgate: fig9 output matches golden"

# backends is the repair-strategy gate: the cross-backend parity test (every
# backend must engage exactly when t2p engages and collapse flagged-line
# HITM at least as far, within 2x) plus one reduced-grid run of the
# repair-backends sweep on the two-socket NUMA model, so the workload x
# {t2p, pad, map, tmebox} policy table keeps rendering end to end.
backends:
	$(GO) test -run 'TestBackend' -count 1 ./tmi
	$(GO) run ./cmd/tmibench -experiment repair-backends -runs 1 > /dev/null
	@echo "backends: parity test and sweep passed"

# serve-smoke boots a race-built tmid on an ephemeral port and replays a
# simulator-generated HITM trace at it from 8 concurrent clients (tmiload)
# over BOTH wire encodings (-wire both: NDJSON lines, then binary columnar
# frames), asserting every advice stream is byte-identical to the offline
# detector and no session was dropped. Each mode also writes its verified
# offline advice bytes, which are then diffed against each other so the two
# encodings are provably comparing against the same truth. tmiload's exit
# code is the verdict; the tmid log is printed on failure.
serve-smoke:
	@dir=$$(mktemp -d); \
	$(GO) build -race -o $$dir/tmid ./cmd/tmid || { rm -rf $$dir; exit 1; }; \
	$(GO) build -race -o $$dir/tmiload ./cmd/tmiload || { rm -rf $$dir; exit 1; }; \
	$$dir/tmid -addr 127.0.0.1:0 -addr-file $$dir/addr > $$dir/tmid.log 2>&1 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	if [ ! -s $$dir/addr ]; then echo "serve-smoke: tmid never bound"; cat $$dir/tmid.log; kill $$pid 2>/dev/null; rm -rf $$dir; exit 1; fi; \
	$$dir/tmiload -addr "$$(cat $$dir/addr)" -clients 8 -wire both -advice-out $$dir/advice.both; rc=$$?; \
	if [ $$rc -eq 0 ]; then \
		$$dir/tmiload -addr "$$(cat $$dir/addr)" -clients 2 -wire binary -advice-out $$dir/advice.bin; rc=$$?; \
		if [ $$rc -eq 0 ] && ! cmp -s $$dir/advice.both $$dir/advice.bin; then \
			echo "serve-smoke: offline advice bytes diverged between runs"; rc=1; \
		fi; \
	fi; \
	kill -TERM $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then echo "serve-smoke: FAILED (tmid log follows)"; cat $$dir/tmid.log; fi; \
	rm -rf $$dir; exit $$rc

# cluster-smoke is the chaos gate for the routing tier: a race-built
# tmiload boots an in-process cluster (tmirouter + 2 migratable tmid nodes,
# every hop a real HTTP connection), streams from 16 concurrent clients,
# and mid-run a fresh node is added through the router admin API and node 0
# is hard-killed (its sessions lost). The run must end with zero lost
# sessions and every client's advice byte-identical to the offline
# service.Replay truth — rebalancing and node death may cost retries,
# never correctness.
cluster-smoke:
	@dir=$$(mktemp -d); \
	$(GO) build -race -o $$dir/tmiload ./cmd/tmiload || { rm -rf $$dir; exit 1; }; \
	$$dir/tmiload -cluster 2 -clients 16 -repeat 4 -add-after 60ms -kill-after 120ms; rc=$$?; \
	rm -rf $$dir; exit $$rc

# allocgate runs the steady-state allocation guards without the race
# detector (AllocsPerRun is meaningless under -race, so the race-harness
# lane skips them): the binary wire codec's reader/writer and the service's
# whole decode-convert-recycle ingest path must stay at 0 allocs/op.
allocgate:
	$(GO) test -run 'SteadyStateDoesNotAllocate' -count 1 ./internal/toolio ./internal/service

vet:
	$(GO) vet ./...

# vet-src runs tmivet — the source-level false-sharing analyzer — over the
# repo itself plus the seeded fixture corpus. Repo packages must come back
# clean (real findings get padded, like internal/service.ReplayResult);
# the fixtures' intentional bugs are waived by ID in tmivet.waivers so the
# waiver plumbing stays exercised. Confirmation is on: any new finding is
# graded against the simulator's dynamic detector before it fails the gate.
vet-src:
	$(GO) run ./cmd/tmivet -waive tmivet.waivers ./... testdata/srcvet/...

# fmt fails if any file needs reformatting (and prints which).
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# tmilint verifies the CCC annotation contract for every catalog workload
# and scores the static false-sharing predictor against a dynamic run.
tmilint:
	$(GO) run ./cmd/tmilint

# mc machine-checks CCC soundness: the clean litmus kernels must be
# SC-equivalent and race-free under exhaustive DPOR, and the deliberately
# under-annotated fixture must produce an SC divergence.
mc:
	$(GO) run ./cmd/tmimc
	$(GO) run ./cmd/tmimc -workload litmus-brokenfence -expect-divergence

# suggest closes the repair loop on the broken fixtures: tmilint solves for
# a minimal static repair set, tmimc applies it and certifies the repaired
# kernel SC-equivalent and race-free. brokenfence explores to completion;
# the 4-thread relaxed-IRIW baseline completes under 9000 runs while its
# PTSB side is capped, which -allow-incomplete waives via the subset
# argument (a capped PTSB run checked against a complete SC set cannot
# certify a non-SC behavior).
suggest:
	@dir=$$(mktemp -d); rc=1; \
	$(GO) build -o $$dir/tmilint ./cmd/tmilint && \
	$(GO) build -o $$dir/tmimc ./cmd/tmimc && \
	$$dir/tmilint -suggest -predict none -json -workloads litmus-brokenfence > $$dir/bf.json && \
	$$dir/tmimc -apply $$dir/bf.json && \
	$$dir/tmilint -suggest -predict none -json -workloads litmus-iriw-relaxed > $$dir/iriw.json && \
	$$dir/tmimc -apply $$dir/iriw.json -max-runs 9000 -allow-incomplete && \
	rc=0 && echo "suggest: repaired fixtures verified SC-equivalent and race-free"; \
	rm -rf $$dir; exit $$rc

lint: fmt vet
	$(GO) run ./cmd/tmilint

ci: build test vet vet-src lint

check: ci race-harness allocgate mc suggest benchgate backends serve-smoke cluster-smoke
