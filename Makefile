# Build, test and lint entry points. `make check` is the gate a PR must
# pass: tier-1 build+test, lint (gofmt, go vet, and tmilint's static
# annotation verification of the whole workload catalog), race-harness
# (the sweep executor is the one place real host-level concurrency lives,
# so its tests run under the race detector) and mc (tmimc's exhaustive
# model-checking of the litmus kernels, plus the negative fixture that
# must diverge). `make bench` persists one BENCH_<date>.json perf point
# per invocation so the trajectory across PRs stays comparable.

GO ?= go

.PHONY: all build test race race-harness bench vet lint tmilint mc fmt ci check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sweep executor fans simulation cells across GOMAXPROCS workers; this
# is the only subsystem with host-level concurrency, so it gets a dedicated
# race-detector lane in the check gate.
race-harness:
	$(GO) test -race ./internal/harness/...

# bench regenerates the full evaluation with the parallel sweep executor
# and appends a benchmark-trajectory point (wall-clock, cell counts,
# speedup, simulated metrics per experiment) to BENCH_<date>.json.
bench:
	$(GO) run ./cmd/tmibench -experiment all -runs 3 -bench-json auto

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (and prints which).
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# tmilint verifies the CCC annotation contract for every catalog workload
# and scores the static false-sharing predictor against a dynamic run.
tmilint:
	$(GO) run ./cmd/tmilint

# mc machine-checks CCC soundness: the clean litmus kernels must be
# SC-equivalent and race-free under exhaustive DPOR, and the deliberately
# under-annotated fixture must produce an SC divergence.
mc:
	$(GO) run ./cmd/tmimc
	$(GO) run ./cmd/tmimc -workload litmus-brokenfence -expect-divergence

lint: fmt vet
	$(GO) run ./cmd/tmilint

ci: build test lint

check: ci race-harness mc
