# Build, test and lint entry points. `make check` is the gate a PR must
# pass: tier-1 build+test, lint (gofmt, go vet, and tmilint's static
# annotation verification of the whole workload catalog) and mc (tmimc's
# exhaustive model-checking of the litmus kernels, plus the negative
# fixture that must diverge).

GO ?= go

.PHONY: all build test race lint tmilint mc fmt ci check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails if any file needs reformatting (and prints which).
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# tmilint verifies the CCC annotation contract for every catalog workload
# and scores the static false-sharing predictor against a dynamic run.
tmilint:
	$(GO) run ./cmd/tmilint

# mc machine-checks CCC soundness: the clean litmus kernels must be
# SC-equivalent and race-free under exhaustive DPOR, and the deliberately
# under-annotated fixture must produce an SC divergence.
mc:
	$(GO) run ./cmd/tmimc
	$(GO) run ./cmd/tmimc -workload litmus-brokenfence -expect-divergence

lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/tmilint

ci: build test lint

check: ci mc
