// Benchmarks regenerating one representative configuration of every table
// and figure in the paper's evaluation. Each benchmark's custom metrics are
// the figures' y-axes (speedups, overhead percentages, event counts), so
// `go test -bench . -benchmem` prints a compact version of the evaluation;
// cmd/tmibench prints the full tables.
package repro_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ccc"
	"repro/internal/toolio"
	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

func mustRun(b *testing.B, w workload.Workload, cfg tmi.Config) *tmi.Report {
	b.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rep, err := tmi.Run(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func byName(b *testing.B, name string) workload.Workload {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkTable1Requirements measures the two quantitative rows of Table 1
// for TMI: overhead without contention and percent-of-manual speedup.
func BenchmarkTable1Requirements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := mustRun(b, byName(b, "swaptions"), tmi.Config{System: tmi.Pthreads})
		det := mustRun(b, byName(b, "swaptions"), tmi.Config{System: tmi.TMIDetect, HugePages: true})
		fsBase := mustRun(b, byName(b, "histogramfs"), tmi.Config{System: tmi.Pthreads})
		man := mustRun(b, byName(b, "histogramfs-manual"), tmi.Config{System: tmi.Pthreads})
		prot := mustRun(b, byName(b, "histogramfs"), tmi.Config{System: tmi.TMIProtect})
		b.ReportMetric((det.SimSeconds/base.SimSeconds-1)*100, "overhead-%")
		b.ReportMetric(100*tmi.Speedup(fsBase, prot)/tmi.Speedup(fsBase, man), "%-of-manual")
	}
}

// BenchmarkTable2Matrix exercises the code-centric consistency decision
// matrix (pure computation; confirms it costs nothing at runtime).
func BenchmarkTable2Matrix(b *testing.B) {
	permitted := 0
	for i := 0; i < b.N; i++ {
		for _, x := range ccc.Classes() {
			for _, y := range ccc.Classes() {
				if ccc.Table2(x, y).PTSBPermitted {
					permitted++
				}
			}
		}
	}
	_ = permitted
}

// BenchmarkFig3WordTearing runs the AMBSA kernel under Sheriff (tears) and
// TMI (sound).
func BenchmarkFig3WordTearing(b *testing.B) {
	torn := 0
	for i := 0; i < b.N; i++ {
		rep := mustRun(b, workloads.WordTearing(true), tmi.Config{System: tmi.SheriffProtect})
		if !rep.Validated {
			torn++
		}
		ok := mustRun(b, workloads.WordTearing(true), tmi.Config{System: tmi.TMIProtect})
		if !ok.Validated {
			b.Fatal("TMI must preserve AMBSA")
		}
	}
	b.ReportMetric(float64(torn)/float64(b.N), "tear-rate")
}

// BenchmarkFig4PeriodSweep measures the sampling-period tradeoff on leveldb.
func BenchmarkFig4PeriodSweep(b *testing.B) {
	for _, period := range []int{1, 100, 1000} {
		b.Run(fmt.Sprintf("period=%d", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := mustRun(b, byName(b, "leveldb-clean"),
					tmi.Config{System: tmi.TMIDetect, HugePages: true, Period: period})
				b.ReportMetric(rep.SimSeconds*1e3, "sim-ms")
				b.ReportMetric(float64(rep.RecordsSeen), "records")
			}
		})
	}
}

// BenchmarkFig7DetectionOverhead measures tmi-detect's overhead on a
// representative slice of the suite (full 35 rows: cmd/tmibench).
func BenchmarkFig7DetectionOverhead(b *testing.B) {
	for _, name := range []string{"swaptions", "kmeans", "canneal", "fluidanimate"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := mustRun(b, byName(b, name), tmi.Config{System: tmi.Pthreads})
				det := mustRun(b, byName(b, name), tmi.Config{System: tmi.TMIDetect, HugePages: true})
				b.ReportMetric((det.SimSeconds/base.SimSeconds-1)*100, "overhead-%")
			}
		})
	}
}

// BenchmarkFig8Memory measures the TMI-full memory footprint ratio.
func BenchmarkFig8Memory(b *testing.B) {
	for _, name := range []string{"swaptions", "fluidanimate", "ocean-ncp"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := mustRun(b, byName(b, name), tmi.Config{System: tmi.Pthreads})
				full := mustRun(b, byName(b, name), tmi.Config{System: tmi.TMIDetect, HugePages: true})
				b.ReportMetric(base.MemMB(), "base-MB")
				b.ReportMetric(full.MemMB(), "tmi-MB")
			}
		})
	}
}

// BenchmarkFig9RepairSpeedup measures TMI's repair speedup per FS benchmark.
func BenchmarkFig9RepairSpeedup(b *testing.B) {
	for _, w := range workloads.FSSuite() {
		name := w.Name()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := mustRun(b, byName(b, name), tmi.Config{System: tmi.Pthreads})
				prot := mustRun(b, byName(b, name), tmi.Config{System: tmi.TMIProtect})
				if !prot.Validated {
					b.Fatalf("%s corrupted: %s", name, prot.ValidationErr)
				}
				b.ReportMetric(tmi.Speedup(base, prot), "speedup-x")
			}
		})
	}
}

// BenchmarkTable3Repair measures the repair characterization on leveldb.
func BenchmarkTable3Repair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := mustRun(b, byName(b, "leveldb"), tmi.Config{System: tmi.TMIProtect})
		b.ReportMetric(rep.MeanT2PMicros(), "t2p-us")
		b.ReportMetric(rep.CommitsPerSec, "commits/s")
	}
}

// BenchmarkFig10HugePages measures the 4 KiB-vs-huge-page tradeoff on a
// large-footprint workload.
func BenchmarkFig10HugePages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := mustRun(b, byName(b, "fft"), tmi.Config{System: tmi.TMIDetect})
		huge := mustRun(b, byName(b, "fft"), tmi.Config{System: tmi.TMIDetect, HugePages: true})
		b.ReportMetric((small.SimSeconds/huge.SimSeconds-1)*100, "4K-overhead-%")
	}
}

// BenchmarkFig11CannealSwaps runs the swap kernel under TMI (the corruption
// side is covered by tests; this measures the sound path's cost).
func BenchmarkFig11CannealSwaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := mustRun(b, workloads.CannealSwap(), tmi.Config{System: tmi.TMIProtect})
		if !rep.Validated {
			b.Fatal(rep.ValidationErr)
		}
	}
}

// BenchmarkFig12CholeskyFlag measures the flag kernel under TMI.
func BenchmarkFig12CholeskyFlag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := mustRun(b, workloads.CholeskyFlag(), tmi.Config{System: tmi.TMIProtect})
		if rep.Hung || !rep.Validated {
			b.Fatal("cholesky-flag must complete under TMI")
		}
	}
}

// BenchmarkAblationPTSBEverywhere contrasts targeted protection with the
// §4.3 protect-everything ablation.
func BenchmarkAblationPTSBEverywhere(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := mustRun(b, byName(b, "histogramfs"), tmi.Config{System: tmi.Pthreads})
		targeted := mustRun(b, byName(b, "histogramfs"), tmi.Config{System: tmi.TMIProtect})
		everywhere := mustRun(b, byName(b, "histogramfs"), tmi.Config{System: tmi.TMIProtect, PTSBEverywhere: true})
		b.ReportMetric(tmi.Speedup(base, targeted), "targeted-x")
		b.ReportMetric(tmi.Speedup(base, everywhere), "everywhere-x")
	}
}

// BenchmarkSimulatorThroughput reports the simulator's own speed: simulated
// cycles per host-second on a representative run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRun(b, byName(b, "histogramfs"), tmi.Config{System: tmi.Pthreads})
	}
}

// wireBatch builds one batch of representative sample quads for the wire
// decode benchmarks.
func wireBatch(n int) [][4]uint64 {
	quads := make([][4]uint64, n)
	for i := range quads {
		quads[i] = [4]uint64{uint64(i % 8), 0x10000 + uint64(i%512)*8, 8, uint64(i % 2)}
	}
	return quads
}

// BenchmarkWireDecodeNDJSON measures tmid's NDJSON sample-line decode path
// (parse + validation), the per-record cost the binary frames exist to
// beat.
func BenchmarkWireDecodeNDJSON(b *testing.B) {
	const batch = 1024
	line := toolio.EncodeWire(toolio.WireSamples{K: toolio.WireSamplesKind, S: wireBatch(batch)})
	line = bytes.TrimRight(line, "\n")
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := toolio.DecodeWireMsg(line)
		if err != nil {
			b.Fatal(err)
		}
		if len(msg.S) != batch {
			b.Fatal("short batch")
		}
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkWireDecodeBinary measures the binary columnar frame decode path
// (header + column reads + branch-free validation) at the same batch size.
func BenchmarkWireDecodeBinary(b *testing.B) {
	const batch = 1024
	var enc bytes.Buffer
	bw := toolio.NewBinWriter(&enc)
	var cols toolio.SampleColumns
	for _, q := range wireBatch(batch) {
		cols.Append(uint32(q[0]), q[1], uint16(q[2]), q[3] == 1)
	}
	if err := bw.WriteSamples(&cols); err != nil {
		b.Fatal(err)
	}
	frame := enc.Bytes()
	b.SetBytes(int64(len(frame)))
	r := bytes.NewReader(frame)
	rd := toolio.NewBinReader(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		rd.Reset(r)
		fr, err := rd.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if fr.Samples.Len() != batch {
			b.Fatal("short batch")
		}
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "records/s")
}
