// Command tmitrace runs a workload with structured event tracing enabled
// and prints a per-kind/per-thread summary plus (optionally) the raw event
// listing: every synchronization boundary, consistency-region transition,
// PTSB twin fault and commit, detector tick and repair action.
//
// Usage:
//
//	tmitrace -workload histogramfs -system tmi-protect
//	tmitrace -workload shptr-lock -system tmi-protect -dump 40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim/cache"
	"repro/tmi"
	"repro/tmi/workloads"
)

var systems = map[string]tmi.System{
	"pthreads":        tmi.Pthreads,
	"tmi-alloc":       tmi.TMIAlloc,
	"tmi-detect":      tmi.TMIDetect,
	"tmi-protect":     tmi.TMIProtect,
	"sheriff-detect":  tmi.SheriffDetect,
	"sheriff-protect": tmi.SheriffProtect,
	"laser":           tmi.LASER,
	"plastic":         tmi.Plastic,
}

func main() {
	var (
		name   = flag.String("workload", "histogramfs", "workload name (see tmirun -list)")
		system = flag.String("system", "tmi-protect", "system to run under")
		dump   = flag.Int("dump", 0, "also print the first N raw events")
		seed   = flag.Int64("seed", 1, "determinism seed")
	)
	flag.Parse()

	sys, ok := systems[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "tmitrace: unknown system %q\n", *system)
		os.Exit(2)
	}
	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmitrace:", err)
		os.Exit(2)
	}
	rep, err := tmi.Run(w, tmi.Config{System: sys, Seed: *seed, Trace: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmitrace:", err)
		os.Exit(1)
	}
	fmt.Printf("%s under %s: %.3f ms simulated\n\n", rep.Workload, rep.System, rep.SimSeconds*1e3)
	if rep.Tracer == nil {
		fmt.Println("no trace recorded")
		return
	}
	fmt.Print(rep.Tracer.Summary(cache.ClockHz))
	if *dump > 0 {
		events := rep.Tracer.Events()
		if *dump < len(events) {
			events = events[:*dump]
		}
		fmt.Println("\nfirst events:")
		for _, e := range events {
			fmt.Println(" ", e.Format(cache.ClockHz))
		}
	}
}
