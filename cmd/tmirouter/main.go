// Command tmirouter is the cluster routing tier for tmid: an HTTP proxy
// that consistent-hashes tenant IDs onto N tmid nodes (bounded-load ring
// with virtual nodes), probes each node's /healthz for membership, and
// live-migrates tenant sessions between nodes when the ring changes — a
// drained or rebalanced tenant's session is shipped through the source
// node's /v1/migrate and replayed on the destination before ingest cuts
// over, so its advice stream stays byte-identical (see internal/cluster
// and DESIGN §17). Nodes must run with tmid -migratable.
//
// Usage:
//
//	tmirouter -nodes http://h1:7412,http://h2:7412,http://h3:7412
//	tmirouter -nodes-file nodes.txt        # one URL per line; SIGHUP reloads
//	tmirouter -addr 127.0.0.1:0 -addr-file a
//
// Endpoints: POST /v1/stream (relayed), GET /healthz, GET /metrics
// (router counters + whitelisted per-node aggregation), GET /admin/ring,
// POST /admin/{add,remove,drain}?node=URL, POST /admin/reload (JSON node
// list). SIGINT/SIGTERM exit after closing the listener.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

// readNodesFile parses one node URL per line, '#' comments and blanks
// skipped.
func readNodesFile(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var nodes []string
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		nodes = append(nodes, line)
	}
	return nodes, nil
}

func main() {
	var (
		addr      = flag.String("addr", ":7410", "listen address (port 0 picks an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening (for scripted startup)")
		nodesCSV  = flag.String("nodes", "", "comma-separated tmid node base URLs")
		nodesFile = flag.String("nodes-file", "", "file with one node URL per line; SIGHUP re-reads it and applies the new membership live")
		vnodes    = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the hash ring")
		bound     = flag.Float64("bound", cluster.DefaultBoundFactor, "bounded-load factor (max node share = ceil(factor*mean))")
		probe     = flag.Duration("probe", 500*time.Millisecond, "node /healthz probe interval")
		failAfter = flag.Int("fail-after", 3, "consecutive probe failures before a node leaves the ring")
	)
	flag.Parse()

	var nodes []string
	if *nodesCSV != "" {
		for _, n := range strings.Split(*nodesCSV, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
	}
	if *nodesFile != "" {
		fromFile, err := readNodesFile(*nodesFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmirouter:", err)
			os.Exit(2)
		}
		nodes = append(nodes, fromFile...)
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "tmirouter: need -nodes or -nodes-file")
		os.Exit(2)
	}

	rt := cluster.New(cluster.Config{
		Nodes: nodes, VNodes: *vnodes, BoundFactor: *bound,
		ProbeInterval: *probe, FailAfter: *failAfter,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmirouter:", err)
		os.Exit(1)
	}
	boundAddr := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(boundAddr+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tmirouter:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("tmirouter: listening on %s, %d nodes (vnodes %d, bound %.2f, probe %s)\n",
		boundAddr, len(nodes), *vnodes, *bound, *probe)

	hs := &http.Server{Handler: rt.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case got := <-sig:
			if got == syscall.SIGHUP {
				if *nodesFile == "" {
					fmt.Println("tmirouter: SIGHUP ignored (no -nodes-file)")
					continue
				}
				fresh, err := readNodesFile(*nodesFile)
				if err != nil {
					fmt.Fprintln(os.Stderr, "tmirouter: reload:", err)
					continue
				}
				rt.SetNodes(fresh)
				fmt.Printf("tmirouter: reloaded %d nodes (gen %d)\n", len(fresh), rt.Generation())
				continue
			}
			fmt.Printf("tmirouter: %s, shutting down\n", got)
			hs.Close()
			rt.Close()
			return
		case err := <-done:
			fmt.Fprintln(os.Stderr, "tmirouter: serve:", err)
			rt.Close()
			os.Exit(1)
		}
	}
}
