// Command tmid runs the false sharing detection-and-repair-advice service:
// a long-running HTTP server that ingests NDJSON streams of resolved HITM
// samples from many tenants, shards each tenant onto a detector worker, and
// streams back per-tick repair advice plus adaptive sampling-period
// feedback (see internal/service and DESIGN §12).
//
// Usage:
//
//	tmid                                  # listen on :7412
//	tmid -addr 127.0.0.1:0 -addr-file a  # ephemeral port, written to file a
//	tmid -shards 8 -queue 512 -ttl 30s   # scale and lifecycle knobs
//
// Endpoints: POST /v1/stream, GET /healthz, GET /metrics (Prometheus text).
// SIGINT/SIGTERM drain gracefully: no new streams, queued work finishes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/detect"
	"repro/internal/service"
	"repro/internal/toolio"
)

func main() {
	var (
		addr       = flag.String("addr", ":7412", "listen address (port 0 picks an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripted startup)")
		shards     = flag.Int("shards", 4, "detector shard workers (tenants are hash-routed)")
		queue      = flag.Int("queue", 256, "per-shard bounded ingest queue depth")
		ttl        = flag.Duration("ttl", 60*time.Second, "idle tenant session eviction TTL")
		wait       = flag.Duration("enqueue-wait", 5*time.Second, "backpressure wait before a saturated shard drops a batch")
		threshold  = flag.Float64("threshold", detect.DefaultConfig().ThresholdPerSec, "est. HITM events/s per line above which repair is advised")
		minRecords = flag.Int("min-records", detect.DefaultConfig().MinRecords, "min raw records on a line before judging it")
		drainWait  = flag.Duration("drain-wait", 10*time.Second, "graceful shutdown budget on SIGTERM")
		maxFrame   = flag.Int("max-frame", toolio.MaxWireLine, "max accepted wire frame/line payload bytes")
		recommend  = flag.String("recommend", "", "repair-backend recommendation policy stamped into advice: none, auto, or a fixed backend (t2p, pad, map, tmebox)")
		nodeID     = flag.String("node-id", "", "node name reported in /healthz JSON (cluster membership metadata; default tmid)")
		migratable = flag.Bool("migratable", false, "capture per-session sample logs so sessions can be exported and live-migrated (/v1/export, /v1/migrate)")
	)
	flag.Parse()

	if !detect.ValidRecommendPolicy(*recommend) {
		fmt.Fprintf(os.Stderr, "tmid: unknown -recommend policy %q (want none, auto, t2p, pad, map, or tmebox)\n", *recommend)
		os.Exit(2)
	}

	srv := service.New(service.Config{
		Shards:           *shards,
		QueueDepth:       *queue,
		EnqueueWait:      *wait,
		SessionTTL:       *ttl,
		MaxFrameBytes:    *maxFrame,
		Detect:           detect.Config{ThresholdPerSec: *threshold, MinRecords: *minRecords},
		RecommendBackend: *recommend,
		NodeID:           *nodeID,
		Migratable:       *migratable,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmid:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tmid:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("tmid: listening on %s (%d shards, queue %d, ttl %s)\n", bound, *shards, *queue, *ttl)

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Printf("tmid: %s, draining\n", got)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "tmid: serve:", err)
		srv.Drain()
		os.Exit(1)
	}

	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "tmid: shutdown:", err)
	}
	srv.Drain()
	fmt.Println("tmid: drained, bye")
}
