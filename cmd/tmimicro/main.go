// Command tmimicro folds `go test -bench` output into the benchmark
// trajectory. It reads benchmark result lines from stdin, extracts ns/op
// (and allocs/op when -benchmem is on), and merges them as micro.* stats
// into the day's BENCH_<date>[.N].json document so macro sweeps and
// microbenchmarks land in one comparable point per PR.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/... | tmimicro
//	... | tmimicro -append BENCH_2026-08-05.2.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"

	"repro/internal/toolio"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkAccessLatencyL1-8  1000000  123.4 ns/op  0 B/op  0 allocs/op
//
// Capture groups: name (minus the Benchmark prefix and -procs suffix),
// ns/op, and optionally allocs/op.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+([0-9.]+) allocs/op)?`)

func main() {
	var (
		appendTo = flag.String("append", "auto", "trajectory file to merge into ('auto' = newest BENCH_<date>[.N].json, created if absent)")
		date     = flag.String("date", time.Now().Format("2006-01-02"), "trajectory date (YYYY-MM-DD)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tmimicro:", err)
		os.Exit(1)
	}

	stats := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw go test output through
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		stats["micro."+m[1]+"_ns_op"] = ns
		if m[3] != "" {
			allocs, err := strconv.ParseFloat(m[3], 64)
			if err == nil {
				stats["micro."+m[1]+"_allocs_op"] = allocs
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(stats) == 0 {
		fail(fmt.Errorf("no benchmark result lines on stdin"))
	}

	path := *appendTo
	if path == "auto" {
		path = toolio.LatestBenchFileName(*date, func(p string) bool {
			_, err := os.Stat(p)
			return err == nil
		})
	}

	rep, err := loadOrCreate(path, *date)
	if err != nil {
		fail(err)
	}
	if rep.Stats == nil {
		rep.Stats = map[string]float64{}
	}
	for k, v := range stats {
		rep.Stats[k] = v
	}

	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := rep.Write(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "tmimicro: merged %d micro stats into %s\n", len(stats), path)
}

// loadOrCreate reads an existing trajectory document, or starts a fresh
// micro-only one when the day has no point yet.
func loadOrCreate(path, date string) (*toolio.BenchReport, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return toolio.NewBenchReport(date, runtime.GOMAXPROCS(0), 0, 0), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return toolio.ReadBenchReport(f)
}
