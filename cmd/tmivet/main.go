// Command tmivet is the source-level false-sharing analyzer: it points
// TMI's detect→repair loop at real Go packages. It type-checks source with
// go/types, maps struct layouts onto 64-byte cache lines, infers
// per-goroutine writers from `go` statements, worker-spawn loops, and
// sync.Mutex critical sections, and flags lines where two or more inferred
// writers touch disjoint bytes — then (by default) lowers each finding to
// a synthetic workload and confirms it through the simulator's dynamic
// detector. Repairs are `_ [N]byte` padding insertions; -fix previews
// them as a unified diff.
//
// Usage:
//
//	tmivet ./internal/...              # scan recursively
//	tmivet testdata/srcvet/packed     # scan one package directory
//	tmivet -json ./...                # machine-readable report (internal/toolio)
//	tmivet -fix testdata/srcvet/packed # print the padding diff
//	tmivet -confirm=false ./...       # static-only (skip the simulator bridge)
//	tmivet -waive tmivet.waivers ./... # suppress accepted findings by ID
//
// Exit status: 0 when no unwaived finding was reported, 1 when any was,
// 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/srcvet"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit a machine-readable toolio report on stdout (suppresses human output)")
		fix     = flag.Bool("fix", false, "print a unified diff of the computed padding repairs")
		confirm = flag.Bool("confirm", true, "run each finding through the simulator confirmation bridge")
		seed    = flag.Int64("seed", 1, "determinism seed for confirmation runs")
		spawn   = flag.Int("spawn", 0, "assumed goroutine count for spawn loops with non-constant trip counts (default 4)")
		waive   = flag.String("waive", "", "waiver file: one finding ID per line, '#' comments")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tmivet [flags] dir|dir/... [...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opt := srcvet.Options{Confirm: *confirm, Seed: *seed, SpawnCount: *spawn}
	if *waive != "" {
		w, err := srcvet.ParseWaiverFile(*waive)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmivet:", err)
			os.Exit(2)
		}
		opt.Waivers = w
	}

	dirs, err := srcvet.ScanDirs(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmivet:", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "tmivet: no package directories matched")
		os.Exit(2)
	}

	start := time.Now()
	loader, err := srcvet.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmivet:", err)
		os.Exit(2)
	}
	var pkgs []*srcvet.Package
	var loadErrs []error
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, filepath.ToSlash(filepath.Clean(dir)))
		if err != nil {
			loadErrs = append(loadErrs, err)
			continue
		}
		pkgs = append(pkgs, pkg)
	}

	res := srcvet.Analyze(pkgs, opt)
	res.Errors = append(res.Errors, loadErrs...)

	if *jsonOut {
		rep := res.Report()
		rep.AddStat("wall_ms", float64(time.Since(start).Milliseconds()))
		if err := rep.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tmivet:", err)
			os.Exit(2)
		}
	} else {
		srcvet.Render(os.Stdout, res)
		fmt.Printf("%s in %.1fs\n", srcvet.Summary(res), time.Since(start).Seconds())
		for _, err := range res.Errors {
			fmt.Fprintln(os.Stderr, "tmivet:", err)
		}
	}

	if *fix {
		fixes, err := srcvet.ApplyFixes(pkgs, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmivet:", err)
			os.Exit(2)
		}
		for _, fx := range fixes {
			fmt.Print(srcvet.UnifiedDiff(fx.Path, fx.Orig, fx.New))
		}
	}

	switch {
	case len(res.Errors) > 0:
		os.Exit(2)
	case !res.OK():
		os.Exit(1)
	}
}
