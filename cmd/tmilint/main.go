// Command tmilint is the static CCC-annotation verifier and false-sharing
// layout predictor: the compile-time companion to tmirun. It abstractly
// interprets workloads (internal/analysis), verifies the code-centric
// consistency annotation contract against the Table 2 policy, and predicts
// falsely-shared cache lines from allocation layouts, scoring the
// predictions against a dynamic detector run.
//
// Usage:
//
//	tmilint                               # lint the whole catalog + default predictions
//	tmilint -workloads misannotated       # lint one workload
//	tmilint -predict histogramfs,lreg     # predict + compare for a list
//	tmilint -predict none                 # lint only
//	tmilint -sites -workloads leveldb     # dump the per-PC site model
//	tmilint -table2                       # print the Table 2 policy matrix
//	tmilint -json                         # machine-readable report (internal/toolio)
//	tmilint -suggest -workloads litmus-brokenfence -predict none
//	                                      # static fence/annotation repair: solve
//	                                      # for a minimal ordering-repair set
//	tmilint -suggest -workloads litmus-brokenfence -predict none -json
//	                                      # suggest schema for tmimc -apply
//
// Exit status: 0 when every linted workload is clean, 1 when any finding
// was reported, 2 on usage errors. In -suggest mode, suggestions are advice,
// not findings: the exit status is 0 as long as the repaired program
// analyzes clean, 1 when residual defects could not be repaired.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ccc"
	"repro/internal/toolio"
	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

// defaultPredict is the default static-vs-dynamic comparison set: three
// catalog workloads with known false sharing and cheap dynamic runs.
const defaultPredict = "histogramfs,lreg,stringmatch"

func main() {
	var (
		names   = flag.String("workloads", "", "comma-separated workloads to lint (default: the whole catalog)")
		predict = flag.String("predict", defaultPredict, "comma-separated workloads to run the layout predictor on, with a dynamic tmi-detect run for comparison; \"none\" disables")
		env     = flag.String("env", "tmi", "modeled environment: tmi|pthreads")
		threads = flag.Int("threads", 0, "override thread count")
		seed    = flag.Int64("seed", 1, "determinism seed")
		sites   = flag.Bool("sites", false, "dump the per-PC site classification for each linted workload")
		lines   = flag.Bool("lines", false, "dump every predicted shared line, not just the comparison summary")
		table2  = flag.Bool("table2", false, "print the Table 2 region-interaction policy matrix and exit")
		jsonOut = flag.Bool("json", false, "emit a machine-readable toolio report on stdout (suppresses human output)")
		suggest = flag.Bool("suggest", false, "solve for a minimal static repair set (ordering upgrades and fence insertions) per linted workload instead of linting")
	)
	flag.Parse()

	if *table2 {
		fmt.Print(ccc.RenderTable2())
		return
	}

	opt := analysis.Options{Threads: *threads, Seed: *seed}
	switch *env {
	case "tmi":
		opt.Env = analysis.EnvTMI
	case "pthreads":
		opt.Env = analysis.EnvPthreads
	default:
		fmt.Fprintf(os.Stderr, "tmilint: unknown -env %q (tmi|pthreads)\n", *env)
		os.Exit(2)
	}

	lintSet := workloads.Names()
	if *names != "" {
		lintSet = splitList(*names)
	}

	if *suggest {
		os.Exit(runSuggest(lintSet, opt, *jsonOut))
	}

	rep := toolio.NewReport("tmilint")
	if !*jsonOut {
		fmt.Printf("tmilint: verifying %d workload(s) (env=%s, seed=%d)\n", len(lintSet), *env, *seed)
	}
	for _, name := range lintSet {
		w, err := workloads.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmilint:", err)
			os.Exit(2)
		}
		m, err := analysis.BuildModel(w, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmilint: %s: %v\n", name, err)
			rep.Add(toolio.Finding{Workload: name, Rule: "error", Detail: err.Error()})
			continue
		}
		findings := analysis.Verify(m)
		for _, f := range findings {
			rep.Add(toolio.Finding{Workload: f.Workload, Rule: f.Rule, Site: f.Site, PC: f.PC, Detail: f.Detail})
		}
		rep.AddStat(name+".sites", float64(len(m.Sites)))
		rep.AddStat(name+".lines", float64(len(m.Lines)))
		rep.AddStat(name+".ops", float64(m.Ops))
		if !*jsonOut {
			status := "ok"
			if len(findings) > 0 {
				status = fmt.Sprintf("%d finding(s)", len(findings))
			}
			fmt.Printf("  %-22s %-12s %5d sites, %5d lines, %8d ops\n",
				name, status, len(m.Sites), len(m.Lines), m.Ops)
			for _, f := range findings {
				fmt.Printf("    %s\n", f)
			}
			if *sites {
				dumpSites(m)
			}
		}
	}

	if *predict != "none" && *predict != "" {
		if !*jsonOut {
			fmt.Printf("\nstatic false-sharing prediction vs dynamic detection (tmi-detect):\n")
		}
		for _, name := range splitList(*predict) {
			acc, err := comparePrediction(name, opt, *lines && !*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tmilint: %s: %v\n", name, err)
				rep.Add(toolio.Finding{Workload: name, Rule: "error", Detail: err.Error()})
				continue
			}
			rep.AddStat(name+".predict_static_false", float64(acc.StaticFalse))
			rep.AddStat(name+".predict_dynamic_false", float64(acc.DynamicFalse))
			rep.AddStat(name+".predict_common", float64(acc.Common))
			rep.AddStat(name+".predict_precision", acc.Precision)
			rep.AddStat(name+".predict_recall", acc.Recall)
			if !*jsonOut {
				fmt.Printf("  %s\n", acc)
			}
		}
	}
	if *jsonOut {
		if err := rep.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tmilint:", err)
			os.Exit(2)
		}
	}
	if !rep.OK {
		os.Exit(1)
	}
}

// runSuggest is the -suggest mode: for each workload, iterate the static
// analysis (race detection over the abstract trace, then Shasha–Snir delay
// sets over the atomic skeleton) against trial repairs until the model is
// clean, then minimize the surviving repair set. With -json exactly one
// workload must be named, and the minimized set is emitted as a
// toolio.SuggestReport for `tmimc -apply` to verify dynamically.
func runSuggest(lintSet []string, opt analysis.Options, jsonOut bool) int {
	if jsonOut && len(lintSet) != 1 {
		fmt.Fprintf(os.Stderr, "tmilint: -suggest -json needs exactly one -workloads entry, got %d\n", len(lintSet))
		return 2
	}
	exit := 0
	for _, name := range lintSet {
		name := name
		f := func() (workload.Workload, error) { return workloads.ByName(name) }
		res, err := analysis.Suggest(f, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmilint: %s: %v\n", name, err)
			return 2
		}
		if !res.Clean {
			exit = 1
		}
		if jsonOut {
			rep := toolio.NewSuggestReport("tmilint", name)
			rep.Clean = res.Clean
			rep.Residual = res.Residual
			for _, s := range res.Suggestions {
				rep.Repairs = append(rep.Repairs, toolio.SuggestRepair{
					Site:   s.Repair.Site,
					Kind:   s.Repair.Kind.String(),
					Order:  s.Repair.Order.String(),
					Reason: s.Reason,
				})
			}
			if err := rep.Write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tmilint:", err)
				return 2
			}
			continue
		}
		if len(res.Suggestions) == 0 && res.Clean {
			fmt.Printf("%s: clean, no repairs needed (%d analysis round(s))\n", name, res.Rounds)
			continue
		}
		fmt.Printf("%s: %d repair(s) after %d analysis round(s)\n", name, len(res.Suggestions), res.Rounds)
		for _, s := range res.Suggestions {
			fmt.Printf("  %-40s %s\n", s.Repair, s.Reason)
		}
		if !res.Clean {
			fmt.Printf("  UNRESOLVED: analysis still reports defects after the round budget:\n")
			for _, r := range res.Residual {
				fmt.Printf("    %s\n", r)
			}
		}
	}
	return exit
}

func comparePrediction(name string, opt analysis.Options, dumpLines bool) (analysis.Accuracy, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return analysis.Accuracy{}, err
	}
	m, err := analysis.BuildModel(w, opt)
	if err != nil {
		return analysis.Accuracy{}, err
	}
	// A fresh instance for the dynamic run: workloads carry state.
	dyn, err := workloads.ByName(name)
	if err != nil {
		return analysis.Accuracy{}, err
	}
	rep, err := tmi.Run(dyn, tmi.Config{System: tmi.TMIDetect, Seed: opt.Seed, Threads: opt.Threads})
	if err != nil {
		return analysis.Accuracy{}, err
	}
	acc := analysis.CompareFalseSharing(m, rep.Lines, analysis.DefaultMinAccesses)
	if dumpLines {
		for _, p := range m.PredictLines() {
			fmt.Printf("    line 0x%x: %s sharing, %d threads (%d writers), %d accesses\n",
				p.Line, p.Class, p.Threads, p.Writers, p.Accesses)
		}
	}
	return acc, nil
}

func dumpSites(m *analysis.Model) {
	pcs := make([]uint64, 0, len(m.Sites))
	for pc := range m.Sites {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		sm := m.Sites[pc]
		tag := ""
		if sm.Info.Runtime {
			tag = " [runtime]"
		}
		orders := orderString(sm)
		fmt.Printf("    0x%06x %-28s %-6s w=%d%s plain %d/%d atomic %d%s stream %d\n",
			pc, sm.Info.Name, sm.Info.Kind, sm.Info.Width, tag,
			sm.PlainLoads, sm.PlainStores, sm.AtomicOps, orders, sm.StreamOps)
	}
}

func orderString(sm *analysis.SiteModel) string {
	if len(sm.Orders) == 0 {
		return ""
	}
	var parts []string
	for _, o := range []workload.MemOrder{workload.Relaxed, workload.Acquire, workload.Release, workload.AcqRel, workload.SeqCst} {
		if n := sm.Orders[o]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", o, n))
		}
	}
	return " (" + strings.Join(parts, ",") + ")"
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
