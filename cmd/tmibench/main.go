// Command tmibench regenerates the paper's tables and figures.
//
// Usage:
//
//	tmibench                         # run everything
//	tmibench -experiment fig9        # one experiment
//	tmibench -runs 5 -csv out/       # more repetitions, CSV for plotting
//	tmibench -list                   # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		exp  = flag.String("experiment", "all", "experiment id or 'all' (see -list)")
		runs = flag.Int("runs", 3, "seeded repetitions averaged per configuration")
		seed = flag.Int64("seed", 1, "base seed")
		csv  = flag.String("csv", "", "directory for CSV output (optional)")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	o := &harness.Options{Runs: *runs, Seed: *seed, Out: os.Stdout, CSVDir: *csv}
	run := func(e harness.Experiment) {
		if err := e.Run(o); err != nil {
			fmt.Fprintf(os.Stderr, "tmibench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		for _, e := range harness.All() {
			run(e)
		}
		return
	}
	e, err := harness.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmibench:", err)
		os.Exit(2)
	}
	run(e)
}
