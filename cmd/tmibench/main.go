// Command tmibench regenerates the paper's tables and figures.
//
// Usage:
//
//	tmibench                         # run everything
//	tmibench -experiment fig9        # one experiment
//	tmibench -runs 5 -csv out/       # more repetitions, CSV for plotting
//	tmibench -parallel 8             # sweep executor worker count
//	tmibench -bench-json auto        # persist BENCH_<date>.json trajectory
//	tmibench -list                   # list experiments
//
// Every simulation cell is deterministic, so tables and CSVs are
// byte-identical at any -parallel setting; only wall-clock changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/toolio"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id or 'all' (see -list)")
		runs     = flag.Int("runs", 3, "seeded repetitions averaged per configuration")
		seed     = flag.Int64("seed", 1, "base seed")
		csv      = flag.String("csv", "", "directory for CSV output (optional)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep executor workers (1 = sequential; output is identical either way)")
		bench    = flag.String("bench-json", "", "write a benchmark-trajectory report to this file ('auto' = first unused BENCH_<date>[.N].json)")
		list     = flag.Bool("list", false, "list experiments and exit")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmibench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tmibench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	// Ctrl-C cancels the sweep: queued cells fail fast with the context
	// error while in-flight simulations finish, so partial output stays
	// coherent. A second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := &harness.Options{Runs: *runs, Seed: *seed, Out: os.Stdout, CSVDir: *csv, Parallel: *parallel, Ctx: ctx}
	defer o.Close()

	var traj *toolio.BenchReport
	if *bench != "" {
		traj = toolio.NewBenchReport(time.Now().Format("2006-01-02"), o.Workers(), *runs, *seed)
	}

	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "tmibench: %s: %v\n", id, err)
		o.Close()
		os.Exit(1)
	}
	run := func(e harness.Experiment) {
		if traj == nil {
			if err := e.Execute(o); err != nil {
				fail(e.ID, err)
			}
			return
		}
		row, err := o.RunTimed(e)
		if err != nil {
			fail(e.ID, err)
		}
		traj.Add(row)
		// Experiment-reported metrics (e.g. the ingest experiment's wire
		// throughputs) ride along in the trajectory's Stats bag.
		for k, v := range o.DrainStats() {
			traj.Stats[k] = v
		}
	}

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.All()
	} else {
		e, err := harness.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmibench:", err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}
	for _, e := range exps {
		run(e)
	}

	if traj != nil {
		path := *bench
		if path == "auto" {
			path = toolio.AutoBenchFileName(traj.Date, func(p string) bool {
				_, err := os.Stat(p)
				return err == nil
			})
		}
		f, err := os.Create(path)
		if err != nil {
			fail("bench-json", err)
		}
		if err := traj.Write(f); err != nil {
			fail("bench-json", err)
		}
		if err := f.Close(); err != nil {
			fail("bench-json", err)
		}
		fmt.Fprintf(os.Stderr, "tmibench: wrote %s (%d experiments, %.1fs wall, %.2fx sweep speedup on %d workers)\n",
			path, len(traj.Experiments), traj.WallSeconds, traj.Stats["speedup"], traj.Workers)
	}
}
