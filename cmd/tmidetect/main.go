// Command tmidetect runs a workload under TMI's detection-only mode and
// prints the false sharing report: every classified cache line with its
// sharing class and estimated HITM event rate, plus the address-space layout
// the detector worked against.
//
// Usage:
//
//	tmidetect -workload histogramfs
//	tmidetect -workload leveldb-clean -period 10
//	tmidetect -workload histogramfs -advice   # canonical NDJSON advice stream
//
// With -advice the run captures the detector's sample trace and prints the
// offline replay's advice stream (one NDJSON line per analysis window) —
// the exact bytes a tmid server streams for the same trace, which is what
// tmiload's parity check compares against.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/detect"
	"repro/internal/service"
	"repro/tmi"
	"repro/tmi/workloads"
)

func main() {
	var (
		name   = flag.String("workload", "histogramfs", "workload name (see tmirun -list)")
		period = flag.Int("period", 100, "perf sampling period")
		huge   = flag.Bool("hugepages", true, "back shared memory with 2 MiB pages")
		seed   = flag.Int64("seed", 1, "determinism seed")
		advice = flag.Bool("advice", false, "print the canonical per-window NDJSON advice stream instead of the report")
		policy = flag.String("recommend", "", "with -advice: stamp a repair-backend recommendation into the stream (none, auto, or a fixed backend name) — the offline truth for a tmid launched with the same -recommend")
	)
	flag.Parse()

	if !detect.ValidRecommendPolicy(*policy) {
		fmt.Fprintf(os.Stderr, "tmidetect: unknown -recommend policy %q (want none, auto, t2p, pad, map, or tmebox)\n", *policy)
		os.Exit(2)
	}

	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmidetect:", err)
		os.Exit(2)
	}
	rep, err := tmi.Run(w, tmi.Config{System: tmi.TMIDetect, Period: *period, HugePages: *huge, Seed: *seed, CaptureSamples: *advice})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmidetect:", err)
		os.Exit(1)
	}

	if *advice {
		log := rep.SampleLog
		if log == nil || len(log.Windows) == 0 {
			fmt.Fprintln(os.Stderr, "tmidetect: run captured no analysis windows")
			os.Exit(1)
		}
		dcfg := detect.Config{
			ThresholdPerSec: detect.DefaultConfig().ThresholdPerSec,
			MinRecords:      detect.DefaultConfig().MinRecords,
		}
		out, err := service.ReplayWithPolicy(log, log.PageSize, dcfg, detect.DefaultPeriodController(), 1, *policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmidetect:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return
	}

	fmt.Printf("workload %s: %.3f ms, %d HITM events, %d PEBS records (period %d)\n\n",
		rep.Workload, rep.SimSeconds*1e3, rep.HITMEvents, rep.RecordsSeen, *period)

	if len(rep.Lines) == 0 {
		fmt.Println("no shared cache lines classified (no significant contention)")
	} else {
		fmt.Printf("%-14s %-8s %10s %16s\n", "line", "class", "records", "est events/s")
		for _, l := range rep.Lines {
			class := l.Class.String()
			if l.Class == detect.SharingFalse && l.EstEventsPerSec >= 100_000 {
				class += " (repairable)"
			}
			drops := ""
			if l.DroppedSpans > 0 {
				drops = fmt.Sprintf("   (%d spans dropped)", l.DroppedSpans)
			}
			fmt.Printf("0x%012x %-20s %4d %16.0f%s\n", l.Line, class, l.Records, l.EstEventsPerSec, drops)
		}
	}
	if rep.SpanDrops > 0 {
		fmt.Printf("\nwarning: %d records overflowed the span tracker; classifications above ran on merged span data\n", rep.SpanDrops)
	}

	if rep.FalseRecords > 0 {
		fmt.Printf("\nCheetah-style prediction: a manual fix would speed this run up ~%.2fx\n",
			rep.PredictedManualSpeedup)
	}
	if len(rep.LineSizePredictions) > 0 {
		fmt.Println("\nPredator-style line-size sweep (predicted sharing on other hardware):")
		fmt.Printf("  %-10s %12s %12s\n", "line size", "false lines", "true lines")
		for _, p := range rep.LineSizePredictions {
			fmt.Printf("  %-10d %12d %12d\n", p.LineSize, p.FalseLines, p.TrueLines)
		}
	}

	fmt.Println("\naddress-space layout:")
	for _, line := range rep.Layout {
		fmt.Println(" ", line)
	}
}
