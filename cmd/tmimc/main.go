// Command tmimc is the model checker for CCC soundness: the dynamic
// companion to tmilint. Where tmilint verifies the annotation *contract*
// statically, tmimc machine-checks the *consequence* the paper proves from
// it (Lemma 3.1): with page twinning armed everywhere, a correctly annotated
// kernel's outcome set equals the sequentially-consistent baseline's. It
// explores every relevant interleaving with sleep-set DPOR, runs a
// vector-clock race detector on the same event stream, and minimizes any
// divergence to the shortest schedule prefix that reproduces it.
//
// Usage:
//
//	tmimc                                  # check the clean litmus kernels exhaustively
//	tmimc -workload litmus-sb              # check one workload
//	tmimc -workload litmus-brokenfence -expect-divergence
//	                                       # negative gate: the fixture MUST diverge
//	tmimc -exhaustive=false -schedules 512 # bounded random sampling for big workloads
//	tmimc -workload litmus-mp -replay 1,0,0,1
//	                                       # re-execute a reported schedule under the PTSB
//	tmimc -apply repairs.json              # apply a `tmilint -suggest -json` repair
//	                                       # set to its workload, then run the gate
//	tmimc -json                            # machine-readable report (internal/toolio)
//
// Exit status: 0 when the gate passes (SC-equivalent and race-free, or — with
// -expect-divergence — every workload diverges), 1 otherwise, 2 on usage
// errors.
//
// -apply closes the repair loop: tmilint's static suggest engine proposes a
// minimal set of atomicity upgrades, ordering strengthenings and fence
// insertions; tmimc re-executes the repaired program under both the SC
// baseline and the PTSB and certifies the repair dynamically. For large
// kernels whose PTSB exploration exceeds -max-runs, -allow-incomplete keeps
// the gate sound via a subset argument: when the *baseline* completed, every
// PTSB outcome seen was checked against the full SC set, so a capped but
// divergence-free PTSB run cannot have certified a non-SC behavior.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/mc"
	"repro/internal/toolio"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

func main() {
	var (
		names      = flag.String("workload", "", "comma-separated workloads to check (default: the clean litmus kernels)")
		exhaustive = flag.Bool("exhaustive", true, "explore all relevant interleavings with DPOR; false switches to random sampling")
		schedules  = flag.Int("schedules", 256, "random schedules per configuration when -exhaustive=false")
		race       = flag.Bool("race", true, "run the vector-clock race detector on every explored schedule")
		jsonOut    = flag.Bool("json", false, "emit a machine-readable toolio report on stdout")
		expectDiv  = flag.Bool("expect-divergence", false, "invert the gate: pass only if every workload diverges (for negative fixtures)")
		replay     = flag.String("replay", "", "comma-separated decision sequence to re-execute under the PTSB (single -workload)")
		applyFile  = flag.String("apply", "", "path to a `tmilint -suggest -json` repair set; applies it to its workload before checking")
		allowInc   = flag.Bool("allow-incomplete", false, "tolerate a capped PTSB exploration when the baseline completed (subset argument)")
		threads    = flag.Int("threads", 0, "override thread count")
		seed       = flag.Int64("seed", 1, "determinism seed")
		maxRuns    = flag.Int("max-runs", 0, "cap on executions per exploration (0 = default)")
		maxEvents  = flag.Int("max-events", 0, "cap on scheduler decisions per run (0 = default)")
	)
	flag.Parse()

	set := litmusNames()
	if *names != "" {
		set = splitList(*names)
	}

	var repairs []workload.Repair
	if *applyFile != "" {
		var err error
		set, repairs, err = loadRepairs(*applyFile, *names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmimc:", err)
			os.Exit(2)
		}
	}

	if *replay != "" {
		if len(set) != 1 {
			fmt.Fprintln(os.Stderr, "tmimc: -replay needs exactly one -workload")
			os.Exit(2)
		}
		os.Exit(runReplay(set[0], *replay, *threads, *seed))
	}

	opts := mc.SCOptions{
		Threads: *threads, Seed: *seed,
		MaxRuns: *maxRuns, MaxEvents: *maxEvents,
		Race: *race,
	}
	if !*exhaustive {
		opts.Schedules = *schedules
	}

	rep := toolio.NewReport("tmimc")
	mode := "exhaustive"
	if !*exhaustive {
		mode = fmt.Sprintf("sample:%d", *schedules)
	}
	if !*jsonOut {
		fmt.Printf("tmimc: checking %d workload(s) (mode=%s, race=%v, seed=%d)\n",
			len(set), mode, *race, *seed)
	}
	for _, name := range set {
		f := factoryFor(name)
		if repairs != nil {
			f = repairedFactory(name, repairs)
			if !*jsonOut {
				fmt.Printf("  applying %d repair(s) from %s:\n", len(repairs), *applyFile)
				for _, r := range repairs {
					fmt.Printf("    %s\n", r)
				}
			}
		}
		res, err := mc.CheckSC(f, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmimc: %s: %v\n", name, err)
			os.Exit(2)
		}
		gather(rep, name, res, *expectDiv, *exhaustive, *allowInc)
		if !*jsonOut {
			printResult(name, res, *expectDiv)
			if *allowInc && *exhaustive && res.Baseline.Complete && !res.PTSB.Complete {
				fmt.Printf("    note: ptsb exploration capped at %d runs; baseline complete, so the SC verdict is subset-sound\n",
					res.PTSB.Runs)
			}
		}
	}
	if *jsonOut {
		if err := rep.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tmimc:", err)
			os.Exit(2)
		}
	}
	if !rep.OK {
		os.Exit(1)
	}
}

// gather folds one SC check into the report. In the normal gate a
// divergence, a race, a baseline validation failure or an incomplete
// exhaustive exploration is a finding; with expectDiv the gate inverts and
// only the *absence* of a divergence is. allowInc waives the incomplete
// finding for a capped PTSB exploration, but only when the baseline
// completed — that is the precondition of the subset argument.
func gather(rep *toolio.Report, name string, res *mc.SCResult, expectDiv, exhaustive, allowInc bool) {
	rep.AddStat(name+".baseline_runs", float64(res.Baseline.Runs))
	rep.AddStat(name+".baseline_outcomes", float64(len(res.Baseline.Outcomes)))
	rep.AddStat(name+".ptsb_runs", float64(res.PTSB.Runs))
	rep.AddStat(name+".ptsb_outcomes", float64(len(res.PTSB.Outcomes)))
	rep.AddStat(name+".ptsb_sleep_blocked", float64(res.PTSB.SleepBlocked))
	rep.AddStat(name+".max_depth", float64(res.PTSB.MaxDepth))
	rep.AddStat(name+".divergences", float64(len(res.Divergences)))
	rep.AddStat(name+".races", float64(len(res.Races)))

	if expectDiv {
		if res.SCEquivalent() {
			rep.Add(toolio.Finding{
				Workload: name, Rule: "missed-divergence",
				Detail: fmt.Sprintf("expected an SC divergence but the PTSB outcome set %v is contained in the baseline's %v",
					res.PTSB.OutcomeSet(), res.Baseline.OutcomeSet()),
			})
		}
		return
	}
	for _, d := range res.Divergences {
		rep.Add(toolio.Finding{
			Workload: name, Rule: "sc-divergence",
			Detail: fmt.Sprintf("PTSB outcome %q is outside the SC set; minimal prefix %v completes to %q",
				d.Outcome, d.MinPrefix, d.MinOutcome),
		})
	}
	for _, r := range res.Races {
		rep.Add(toolio.Finding{
			Workload: name, Rule: "data-race", Site: r.Site1, PC: r.PC1,
			Detail: r.String(),
		})
	}
	if !res.Baseline.AllValidated() {
		rep.Add(toolio.Finding{
			Workload: name, Rule: "validation",
			Detail: "a baseline (SC) schedule failed the workload's Validate — the kernel itself is broken",
		})
	}
	if exhaustive && (!res.Baseline.Complete || !res.PTSB.Complete) {
		if allowInc && res.Baseline.Complete {
			return // capped PTSB vs a complete SC set: subset-sound, waived
		}
		rep.Add(toolio.Finding{
			Workload: name, Rule: "incomplete",
			Detail: fmt.Sprintf("exploration hit the run budget (baseline %d, ptsb %d runs) — raise -max-runs or use -exhaustive=false",
				res.Baseline.Runs, res.PTSB.Runs),
		})
	}
}

func printResult(name string, res *mc.SCResult, expectDiv bool) {
	verdict := "SC-equivalent"
	if !res.SCEquivalent() {
		verdict = "DIVERGENT"
		if expectDiv {
			verdict = "DIVERGENT (expected)"
		}
	} else if expectDiv {
		verdict = "SC-equivalent (divergence expected!)"
	}
	fmt.Printf("  %-22s %-22s baseline %d runs/%d outcomes, ptsb %d runs/%d outcomes, %d race(s)\n",
		name, verdict,
		res.Baseline.Runs, len(res.Baseline.Outcomes),
		res.PTSB.Runs, len(res.PTSB.Outcomes), len(res.Races))
	for _, d := range res.Divergences {
		fmt.Printf("    divergent outcome %q (witness schedule length %d)\n", d.Outcome, len(d.Schedule))
		if d.MinPrefix != nil {
			fmt.Printf("      minimal prefix %v completes to %q (replay: -workload %s -replay %s)\n",
				d.MinPrefix, d.MinOutcome, name, joinInts(d.MinPrefix))
		}
	}
	for _, r := range res.Races {
		fmt.Printf("    %s\n", r)
	}
}

func runReplay(name, schedule string, threads int, seed int64) int {
	var forced []int
	for _, p := range splitList(schedule) {
		n, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmimc: bad -replay element %q\n", p)
			return 2
		}
		forced = append(forced, n)
	}
	opts := mc.PTSBOptions()
	opts.Threads, opts.Seed = threads, seed
	outcome, err := mc.ReplaySchedule(factoryFor(name), opts, forced)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmimc:", err)
		return 2
	}
	fmt.Printf("%s under PTSB, schedule %v: %s\n", name, forced, outcome)
	return 0
}

// loadRepairs reads a `tmilint -suggest -json` document, parses its repairs
// into the workload package's representation, and resolves the workload set:
// the report's own workload by default, or an explicit -workload override
// (used by tests to aim one repair set at a fixture variant).
func loadRepairs(path, namesFlag string) (set []string, repairs []workload.Repair, err error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fd.Close()
	rep, err := toolio.ReadSuggestReport(fd)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	if !rep.Clean {
		return nil, nil, fmt.Errorf("%s: repair set is not clean (residual: %s) — refusing to apply", path, strings.Join(rep.Residual, "; "))
	}
	for _, r := range rep.Repairs {
		pr, err := workload.ParseRepair(r.Site, r.Kind, r.Order)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", path, err)
		}
		repairs = append(repairs, pr)
	}
	if repairs == nil {
		repairs = []workload.Repair{} // non-nil: "apply the empty set", not "no -apply"
	}
	set = []string{rep.Workload}
	if namesFlag != "" {
		set = splitList(namesFlag)
	}
	return set, repairs, nil
}

func factoryFor(name string) mc.Factory {
	return func() (workload.Workload, error) {
		return workloads.ByName(name)
	}
}

// repairedFactory wraps factoryFor with a workload.Repaired layer so the
// model checker explores the repaired program.
func repairedFactory(name string, repairs []workload.Repair) mc.Factory {
	return func() (workload.Workload, error) {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		return workload.Repaired(w, repairs), nil
	}
}

func litmusNames() []string {
	var out []string
	for _, w := range workloads.LitmusSuite() {
		out = append(out, w.Name())
	}
	for _, w := range workloads.LitmusC11Suite() {
		out = append(out, w.Name())
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
