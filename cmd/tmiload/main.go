// Command tmiload is the load generator and parity checker for tmid. It
// runs a workload once under TMI's detection-only simulator with sample
// capture on, which yields a replayable HITM trace; then K concurrent
// clients stream that trace to a tmid server (each as its own tenant) and
// every advice stream coming back is compared byte-for-byte against the
// offline detector's advice over the same trace (service.Replay — the same
// stream tmidetect -advice prints).
//
// Usage:
//
//	tmiload -addr 127.0.0.1:7412                    # 8 clients, histogramfs
//	tmiload -addr $A -clients 64 -min-records 100000
//	tmiload -addr $A -wire both                     # NDJSON vs binary A/B
//
// Cluster chaos mode spins up an in-process cluster (router + N
// migratable tmid nodes, every hop a real HTTP connection) and streams
// through the router while membership churns under the fleet:
//
//	tmiload -cluster 3                              # 3 nodes behind a router
//	tmiload -cluster 2 -kill-after 150ms -add-after 100ms
//
// -kill-after hard-kills node 0 mid-run (its sessions are lost; affected
// clients must retry and still converge on byte-identical advice);
// -add-after admits a fresh node through the router admin API, forcing
// live session migrations at clean stream boundaries. The parity bar is
// unchanged: every client's advice must match the offline replay
// byte-for-byte, and no session may be lost.
//
// Exit status: 0 when every client finished with byte-identical advice,
// 1 on any mismatch or lost session, 2 on usage errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/detect"
	"repro/internal/service"
	"repro/internal/toolio"
	"repro/tmi"
	"repro/tmi/workloads"
)

// assertAdditive checks that rec (a recommending advice stream) differs
// from plain only by "backend" keys: deleting them line-by-line must
// reproduce plain exactly.
func assertAdditive(rec, plain []byte) error {
	recLines := bytes.Split(bytes.TrimSuffix(rec, []byte("\n")), []byte("\n"))
	plainLines := bytes.Split(bytes.TrimSuffix(plain, []byte("\n")), []byte("\n"))
	if len(recLines) != len(plainLines) {
		return fmt.Errorf("line counts differ: %d vs %d", len(recLines), len(plainLines))
	}
	for i, line := range recLines {
		m, err := toolio.DecodeWireMsg(line)
		if err != nil {
			return fmt.Errorf("advice %d: %w", i, err)
		}
		stripped := line
		if m.Backend != "" {
			stripped = bytes.Replace(line, []byte(fmt.Sprintf(",%q:%q", "backend", m.Backend)), nil, 1)
		}
		if !bytes.Equal(stripped, plainLines[i]) {
			return fmt.Errorf("advice %d differs beyond the backend field:\n  with policy: %s\n  without:     %s", i, line, plainLines[i])
		}
	}
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7412", "tmid server address (host:port)")
		clients    = flag.Int("clients", 8, "concurrent replay clients (one tenant each)")
		name       = flag.String("workload", "histogramfs", "workload generating the HITM trace (see tmirun -list)")
		period     = flag.Int("period", 100, "perf sampling period for the trace-generating run")
		seed       = flag.Int64("seed", 1, "determinism seed for the trace-generating run")
		huge       = flag.Bool("hugepages", true, "back the trace-generating run with 2 MiB pages")
		repeat     = flag.Int("repeat", 1, "times each client replays the trace (detector state carries across)")
		minRecords = flag.Int("min-records", 0, "raise repeat until each client streams at least this many records")
		batch      = flag.Int("batch", service.DefaultBatchRecords, "samples per wire line")
		retries    = flag.Int("retries", 20, "attempts per client when the server answers busy (fresh tenant each time)")
		wire       = flag.String("wire", "ndjson", "sample encoding: ndjson, binary, or both (A/B the same trace through each and report the speedup)")
		adviceOut  = flag.String("advice-out", "", "write the parity-verified offline advice stream to this file (for external diffing)")
		recommend  = flag.String("recommend", "", "repair-backend recommendation policy the target tmid was launched with (its -recommend flag); the offline truth carries the recommendation and its additivity over the policy-free advice is asserted")
		clusterN   = flag.Int("cluster", 0, "run against an in-process cluster of N migratable tmid nodes behind a tmirouter instead of -addr")
		killAfter  = flag.Duration("kill-after", 0, "cluster chaos: hard-kill node 0 this long after the fleet starts")
		addAfter   = flag.Duration("add-after", 0, "cluster chaos: add a fresh node via the router admin API this long after the fleet starts")
	)
	flag.Parse()

	if *clusterN <= 0 && (*killAfter > 0 || *addAfter > 0) {
		fmt.Fprintln(os.Stderr, "tmiload: -kill-after/-add-after need -cluster")
		os.Exit(2)
	}
	if *clusterN > 0 && *wire == "both" {
		// Chaos events fire once; an A/B double run would aim them at only
		// the first fleet. Pick one encoding per chaos run.
		fmt.Fprintln(os.Stderr, "tmiload: -wire both and -cluster are mutually exclusive (chaos events fire once)")
		os.Exit(2)
	}

	if !detect.ValidRecommendPolicy(*recommend) {
		fmt.Fprintf(os.Stderr, "tmiload: unknown -recommend policy %q (want none, auto, t2p, pad, map, or tmebox)\n", *recommend)
		os.Exit(2)
	}

	var modes []string
	switch *wire {
	case "ndjson", "binary":
		modes = []string{*wire}
	case "both":
		modes = []string{"ndjson", "binary"}
	default:
		fmt.Fprintf(os.Stderr, "tmiload: unknown -wire %q (want ndjson, binary, or both)\n", *wire)
		os.Exit(2)
	}

	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmiload:", err)
		os.Exit(2)
	}
	rep, err := tmi.Run(w, tmi.Config{
		System: tmi.TMIDetect, Period: *period, HugePages: *huge,
		Seed: *seed, CaptureSamples: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmiload:", err)
		os.Exit(2)
	}
	log := rep.SampleLog
	if log == nil || log.Len() == 0 || len(log.Windows) == 0 {
		fmt.Fprintf(os.Stderr, "tmiload: workload %s produced no captured samples (try a lower -period)\n", *name)
		os.Exit(2)
	}
	if *minRecords > 0 {
		for *repeat*log.Len() < *minRecords {
			*repeat++
		}
	}

	// Offline truth: same trace, same traversal, same detector config the
	// server defaults to. Clients must match this byte-for-byte.
	dcfg := detect.Config{
		ThresholdPerSec: detect.DefaultConfig().ThresholdPerSec,
		MinRecords:      detect.DefaultConfig().MinRecords,
	}
	periods := detect.DefaultPeriodController()
	want, err := service.ReplayWithPolicy(log, log.PageSize, dcfg, periods, *repeat, *recommend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmiload:", err)
		os.Exit(2)
	}
	if *recommend != "" && *recommend != "none" {
		// The recommendation must be strictly additive: stripping the backend
		// key from every advice line reproduces the policy-free stream
		// byte-for-byte. A perturbation here means the recommending server
		// would change verdicts, not just annotate them.
		plain, err := service.Replay(log, log.PageSize, dcfg, periods, *repeat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmiload:", err)
			os.Exit(2)
		}
		if err := assertAdditive(want, plain); err != nil {
			fmt.Fprintf(os.Stderr, "tmiload: -recommend %s perturbs advice: %v\n", *recommend, err)
			os.Exit(1)
		}
		fmt.Printf("tmiload: -recommend %s advice is additive over the policy-free stream\n", *recommend)
	}
	if *adviceOut != "" {
		if err := os.WriteFile(*adviceOut, want, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tmiload:", err)
			os.Exit(2)
		}
	}

	base := "http://" + *addr
	if strings.Contains(*addr, "://") {
		base = *addr
	}
	var lc *cluster.Local
	if *clusterN > 0 {
		var err error
		// Fast probes and a low failure threshold: chaos runs are short, and
		// a killed node must leave the ring well inside the retry budget.
		lc, err = cluster.NewLocal(*clusterN, service.Config{}, cluster.Config{
			ProbeInterval: 100 * time.Millisecond, FailAfter: 2,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmiload:", err)
			os.Exit(2)
		}
		defer lc.Close()
		base = lc.RouterURL
	}
	perClient := *repeat * log.Len()
	fmt.Printf("tmiload: %s trace: %d records over %d windows (x%d replay = %d records/client), %d clients -> %s\n",
		*name, log.Len(), len(log.Windows), *repeat, perClient, *clients, base)
	if lc != nil {
		fmt.Printf("tmiload: cluster: %d nodes behind router (kill-after %s, add-after %s)\n", *clusterN, *killAfter, *addAfter)
	}

	// runMode drives the full client fleet once over one wire encoding and
	// returns the aggregate. Every client's advice is still compared
	// byte-for-byte against the offline replay, so in -wire both the two
	// encodings are transitively byte-identical to each other.
	runMode := func(mode string) (okN, mismatched, lost, records int, elapsed time.Duration) {
		wireField := ""
		if mode == "binary" {
			wireField = toolio.WireFormatBinary
		}
		type outcome struct {
			tenant   string
			attempts int
			records  int
			ticks    int
			match    bool
			err      error
		}
		results := make([]outcome, *clients)
		start := time.Now()
		if lc != nil {
			if *killAfter > 0 {
				time.AfterFunc(*killAfter, func() {
					fmt.Printf("tmiload: chaos: killed node %s\n", lc.Kill(0))
				})
			}
			if *addAfter > 0 {
				time.AfterFunc(*addAfter, func() {
					url, err := lc.AddNode()
					if err != nil {
						fmt.Fprintf(os.Stderr, "tmiload: chaos: add node: %v\n", err)
						return
					}
					fmt.Printf("tmiload: chaos: added node %s\n", url)
				})
			}
		}
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				out := outcome{}
				for attempt := 0; attempt < *retries; attempt++ {
					out.attempts = attempt + 1
					// A fresh tenant per attempt: a busy-aborted stream may have
					// fed the server a partial window, and resuming that session
					// would (correctly!) change its advice. The abandoned tenant
					// ages out via the session TTL.
					out.tenant = fmt.Sprintf("load-%s-%d-a%d", mode, c, attempt)
					out.err = nil
					cl := &service.Client{
						BaseURL:      base,
						Tenant:       out.tenant,
						PageSize:     log.PageSize,
						BatchRecords: *batch,
						Wire:         wireField,
					}
					res, err := cl.Replay(log, *repeat)
					if busy, ok := err.(*service.ErrBusy); ok {
						time.Sleep(busy.RetryAfter)
						continue
					}
					if err != nil {
						out.err = err
						if lc == nil {
							break
						}
						// Cluster chaos: every failure is retryable. A killed
						// node severs streams with transport errors, a router
						// mid-rebalance with retryable wire errors; a fresh
						// tenant replays from scratch either way, so parity
						// survives any interleaving of failures.
						time.Sleep(150 * time.Millisecond)
						continue
					}
					out.records, out.ticks = res.Records, res.Ticks
					out.match = bytes.Equal(res.Advice, want)
					if !out.match {
						out.err = fmt.Errorf("advice diverged from offline replay (%d vs %d bytes)", len(res.Advice), len(want))
					}
					break
				}
				if out.err == nil && out.ticks == 0 {
					out.err = fmt.Errorf("gave up after %d busy attempts", out.attempts)
				}
				results[c] = out
			}(c)
		}
		wg.Wait()
		elapsed = time.Since(start)

		for _, out := range results {
			switch {
			case out.match:
				okN++
				records += out.records
			case out.ticks == 0:
				lost++
			default:
				mismatched++
			}
			if out.err != nil {
				fmt.Fprintf(os.Stderr, "tmiload: %s: %v\n", out.tenant, out.err)
			}
		}
		return okN, mismatched, lost, records, elapsed
	}

	failed := false
	rates := map[string]float64{}
	for _, mode := range modes {
		ok, mismatched, lost, records, elapsed := runMode(mode)
		rate := float64(records) / elapsed.Seconds()
		rates[mode] = rate
		fmt.Printf("tmiload: [%s] %d/%d clients parity-ok, %d mismatched, %d lost; %d records in %s (%.0f records/s)\n",
			mode, ok, *clients, mismatched, lost, records, elapsed.Round(time.Millisecond), rate)
		if mismatched > 0 || lost > 0 {
			failed = true
		}
	}
	if len(modes) == 2 && rates["ndjson"] > 0 {
		fmt.Printf("tmiload: binary/ndjson ingest speedup: %.1fx\n", rates["binary"]/rates["ndjson"])
	}
	if lc != nil {
		ms := lc.Router.MigrationStats()
		fmt.Printf("tmiload: cluster: ring gen %d; migrations ok=%d noop=%d failed=%d (%d records, p50 %.1fms p99 %.1fms)\n",
			lc.Router.Generation(), ms.OK, ms.Noop, ms.Failed, ms.Records, ms.P50ms, ms.P99ms)
	}
	if failed {
		fmt.Println("tmiload: FAIL")
		os.Exit(1)
	}
	fmt.Println("tmiload: PASS (all advice byte-identical to offline detector)")
}
