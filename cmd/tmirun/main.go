// Command tmirun runs one workload under one system and prints the report:
// runtime, detection results, repair characterization, memory footprint and
// validation outcome.
//
// Usage:
//
//	tmirun -workload histogramfs -system tmi-protect
//	tmirun -workload leveldb -system pthreads -threads 4
//	tmirun -workload canneal-swap -system sheriff-protect
//	tmirun -workload histogram -list        # list workloads
//	tmirun -workload histogramfs -layout    # dump the memory layout
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/tmi"
	"repro/tmi/workloads"
)

var systems = map[string]tmi.System{
	"pthreads":        tmi.Pthreads,
	"tmi-alloc":       tmi.TMIAlloc,
	"tmi-detect":      tmi.TMIDetect,
	"tmi-protect":     tmi.TMIProtect,
	"sheriff-detect":  tmi.SheriffDetect,
	"sheriff-protect": tmi.SheriffProtect,
	"laser":           tmi.LASER,
	"plastic":         tmi.Plastic,
}

func main() {
	var (
		name       = flag.String("workload", "histogramfs", "workload name (see -list)")
		system     = flag.String("system", "tmi-protect", "pthreads|tmi-alloc|tmi-detect|tmi-protect|sheriff-detect|sheriff-protect|laser")
		threads    = flag.Int("threads", 0, "override thread count")
		period     = flag.Int("period", 100, "perf sampling period")
		huge       = flag.Bool("hugepages", false, "back shared memory with 2 MiB pages")
		noCCC      = flag.Bool("no-ccc", false, "disable code-centric consistency (unsound; for experiments)")
		everywhere = flag.Bool("ptsb-everywhere", false, "arm the PTSB on the whole heap at first repair")
		seed       = flag.Int64("seed", 1, "determinism seed")
		list       = flag.Bool("list", false, "list workloads and exit")
		trace      = flag.Bool("trace", false, "print the repair lifecycle events")
		layout     = flag.Bool("layout", false, "dump the Figure 6-style memory layout")
		adaptive   = flag.Bool("adaptive", false, "adaptive sampling period (extension)")
		teardown   = flag.Int("teardown", 0, "un-repair pages idle for N detection intervals (extension; 0=off)")
		timeline   = flag.Bool("timeline", false, "print the per-interval HITM-rate timeline")
		sanitize   = flag.Bool("sanitize", false, "assert the CCC annotation contract at runtime (tmilint's dynamic half)")
		backend    = flag.String("backend", "", "repair backend for tmi-protect: t2p (default), pad, map, or tmebox")
		sockets    = flag.Int("sockets", 0, "split cores across N sockets with home-node directory and remote-access penalties (0/1 = flat)")
	)
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}

	sys, ok := systems[*system]
	if !ok {
		var names []string
		for n := range systems {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "tmirun: unknown system %q (one of %s)\n", *system, strings.Join(names, ", "))
		os.Exit(2)
	}
	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmirun:", err)
		os.Exit(2)
	}

	rep, err := tmi.Run(w, tmi.Config{
		System: sys, Threads: *threads, Period: *period, HugePages: *huge,
		DisableCCC: *noCCC, PTSBEverywhere: *everywhere, Seed: *seed,
		AdaptivePeriod: *adaptive, TeardownIdleIntervals: *teardown,
		Sanitize: *sanitize, RepairBackend: *backend, Sockets: *sockets,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmirun:", err)
		os.Exit(1)
	}

	fmt.Printf("workload        %s\n", rep.Workload)
	fmt.Printf("system          %s\n", rep.System)
	fmt.Printf("runtime         %.3f ms (simulated)\n", rep.SimSeconds*1e3)
	fmt.Printf("HITM events     %d\n", rep.HITMEvents)
	fmt.Printf("PEBS records    %d (dropped %d)\n", rep.RecordsSeen, rep.Dropped)
	fmt.Printf("sharing lines   %d false, %d true (records: %d false, %d true)\n",
		rep.FalseLines, rep.TrueLines, rep.FalseRecords, rep.TrueRecords)
	fmt.Printf("memory          %.1f MB\n", rep.MemMB())
	fmt.Printf("energy          %.1f uJ (%.1f MB coherence traffic)\n",
		rep.Cache.EnergyMicroJ(), float64(rep.Cache.TrafficBytes())/(1<<20))
	if rep.Repaired {
		fmt.Printf("repaired        yes (backend %s, at %.3f ms, %d pages)\n",
			rep.RepairBackend, rep.RepairAtSec*1e3, rep.PagesProtected)
		if len(rep.T2PMicros) > 0 {
			fmt.Printf("T2P             %.0f us mean over %d threads\n", rep.MeanT2PMicros(), len(rep.T2PMicros))
		}
		fmt.Printf("commits         %d (%.1f/s), twin faults %d, bytes merged %d\n",
			rep.Commits, rep.CommitsPerSec, rep.TwinFaults, rep.BytesMerged)
		fmt.Printf("ccc flushes     %d\n", rep.CCCFlushes)
	} else {
		fmt.Printf("repaired        no\n")
	}
	if *sanitize {
		if rep.SanitizerViolations == 0 {
			fmt.Printf("sanitizer       clean\n")
		} else {
			fmt.Printf("sanitizer       %d violation(s)\n", rep.SanitizerViolations)
			for _, d := range rep.SanitizerDetails {
				fmt.Println("  ", d)
			}
		}
	}
	if rep.Hung {
		fmt.Printf("HUNG            %s\n", rep.HangReason)
	}
	if rep.Validated {
		fmt.Printf("validated       ok\n")
	} else {
		fmt.Printf("validated       FAILED: %s\n", rep.ValidationErr)
	}
	if *trace {
		if len(rep.Events) > 0 {
			fmt.Println("lifecycle trace:")
			for _, e := range rep.Events {
				fmt.Println(" ", e)
			}
		}
		for k, v := range rep.Notes {
			fmt.Printf("  note %-24s %g\n", k, v)
		}
	}
	if *layout {
		fmt.Println("memory layout:")
		for _, line := range rep.Layout {
			fmt.Println(" ", line)
		}
	}
	if *timeline {
		fmt.Println("timeline (per detection interval):")
		fmt.Printf("  %10s %14s %9s %7s\n", "t(ms)", "HITM/s", "records", "pages")
		for _, p := range rep.Timeline {
			fmt.Printf("  %10.3f %14.0f %9d %7d\n", p.AtSec*1e3, p.HITMPerSec, p.RecordsInTick, p.PagesProtected)
		}
	}
	if !rep.Validated && !rep.Hung {
		os.Exit(1)
	}
	if *sanitize && rep.SanitizerViolations > 0 {
		os.Exit(1)
	}
}
