// Package psync implements process-shared synchronization: the mutexes,
// barriers and condition variables that keep working when TMI converts
// threads into processes.
//
// TMI allocates every synchronization object in an always-process-shared
// memory region and replaces the application's lock word with a pointer to
// the padded (cache-line sized) shared object (paper §3.2, Figure 6). The
// indirection has two effects this package reproduces faithfully:
//
//   - lock operations keep working across fork, because the object lives in
//     memory that is never made private; and
//   - packed application lock words (boost::spinlock_pool) stop falsely
//     sharing, because the hot CAS target moves to its own line — the word
//     the application owns is only ever read (to follow the pointer).
//
// Lock words are real simulated memory: contention, lock-word false sharing
// and HITM traffic all emerge from the cache model rather than being
// scripted. All Lock/Unlock/Wait operations are PTSB commit points via the
// installed hooks.
package psync

import (
	"fmt"

	"repro/internal/disasm"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// Tuning constants (cycles).
const (
	// SpinPause is the cost of one spin-wait iteration.
	SpinPause = 20
	// MaxSpins before a contended locker blocks in the kernel (sized so
	// short critical sections are always acquired by spinning).
	MaxSpins = 150
	// WakeCost models a futex wakeup.
	WakeCost = 1500
	// ObjectBytes is the size of one padded process-shared object.
	ObjectBytes = mem.LineSize
)

// Hooks let the runtime run code at synchronization boundaries; TMI commits
// the calling thread's PTSB at both acquire and release (Lemma 3.1 requires
// the buffer to be empty on both sides of a critical section).
type Hooks struct {
	// OnSync runs for the thread at every acquire and release boundary.
	OnSync func(t *machine.Thread)
}

// Manager creates and tracks process-shared synchronization objects.
type Manager struct {
	prog  *disasm.Program
	hooks Hooks
	// Indirect selects TMI's pointer-indirection layout; when false
	// (pthreads baseline) lock words are used in place.
	Indirect bool

	regionBase uint64
	regionNext uint64
	regionEnd  uint64
	// setup writes go through this space (every space maps the region
	// shared, so any one view works).
	space *mem.AddrSpace

	objects int

	sitePtr    disasm.Site
	siteCAS    disasm.Site
	siteSpin   disasm.Site
	siteRel    disasm.Site
	siteBarArr disasm.Site
}

// NewManager creates a manager whose objects live in the always-shared
// region [base, base+size) of the given space.
func NewManager(prog *disasm.Program, space *mem.AddrSpace, base, size uint64, indirect bool, hooks Hooks) *Manager {
	m := &Manager{
		prog: prog, hooks: hooks, Indirect: indirect,
		regionBase: base, regionNext: base, regionEnd: base + size,
		space: space,
	}
	// Runtime sites: these instructions live in the synchronization library,
	// below the compiler pass that inserts region annotations, so annotation
	// checkers must not demand region enclosure for them.
	m.sitePtr = prog.RuntimeSite("psync.lockword.deref", disasm.KindLoad, 8)
	m.siteCAS = prog.RuntimeSite("psync.mutex.cas", disasm.KindAtomic, 8)
	m.siteSpin = prog.RuntimeSite("psync.mutex.spinload", disasm.KindLoad, 8)
	m.siteRel = prog.RuntimeSite("psync.mutex.release", disasm.KindAtomic, 8)
	m.siteBarArr = prog.RuntimeSite("psync.barrier.arrive", disasm.KindAtomic, 8)
	return m
}

// Objects reports how many shared objects have been allocated (memory
// accounting: the indirection overhead of lock-heavy programs).
func (m *Manager) Objects() int { return m.objects }

// FootprintBytes reports the shared-object region consumption.
func (m *Manager) FootprintBytes() uint64 { return m.regionNext - m.regionBase }

func (m *Manager) allocObject() uint64 {
	if m.regionNext+ObjectBytes > m.regionEnd {
		panic("psync: shared region exhausted")
	}
	a := m.regionNext
	m.regionNext += ObjectBytes
	m.objects++
	return a
}

func (m *Manager) sync(t *machine.Thread) {
	if m.hooks.OnSync != nil {
		m.hooks.OnSync(t)
	}
}

// writePointer installs an indirection pointer into an application lock
// word (setup-time, zero simulated cost).
func writePointer(tr mem.Translation, obj uint64) {
	mem.StoreUint(tr, 8, obj)
}

// Mutex is a process-shared lock.
type Mutex struct {
	mgr *Manager
	// appAddr is the application-visible lock word. With indirection it
	// holds a pointer to objAddr; without, it is the lock word itself.
	appAddr uint64
	objAddr uint64
	name    string

	owner   *machine.Thread
	waiters []*machine.Thread

	// Acquires counts lock operations (sync-frequency characterization).
	Acquires uint64
}

// NewMutex creates a mutex whose application lock word lives at appAddr
// (allocated by the caller, typically on the application heap).
func (m *Manager) NewMutex(name string, appAddr uint64) *Mutex {
	mu := &Mutex{mgr: m, appAddr: appAddr, name: name}
	if m.Indirect {
		mu.objAddr = m.allocObject()
		// Install the pointer in the application word (done by TMI's
		// pthread_mutex_init wrapper, at zero simulated cost).
		tr, fault := m.space.Translate(appAddr, true)
		if fault != nil {
			panic(fmt.Sprintf("psync: mutex word unmapped: %v", fault))
		}
		mem.StoreUint(tr, 8, mu.objAddr)
	}
	return mu
}

// target resolves the address lock operations contend on, charging the
// indirection load when TMI's redirection is active.
func (mu *Mutex) target(t *machine.Thread) uint64 {
	if mu.mgr.Indirect {
		return t.Load(mu.mgr.sitePtr.PC(), mu.appAddr, 8)
	}
	return mu.appAddr
}

// Lock acquires the mutex: spin briefly (a barging lock — spinning threads
// may overtake blocked waiters, as glibc's adaptive mutexes allow), then
// block; every unlock wakes one blocked waiter to re-compete.
func (mu *Mutex) Lock(t *machine.Thread) {
	mu.mgr.sync(t)
	addr := mu.target(t)
	for spins := 0; ; spins++ {
		if mu.owner == nil && t.AtomicCAS(mu.mgr.siteCAS.PC(), addr, 8, 0, uint64(t.ID)+1) {
			mu.owner = t
			break
		}
		if spins < MaxSpins {
			t.Load(mu.mgr.siteSpin.PC(), addr, 8)
			t.Work(SpinPause)
			continue
		}
		mu.waiters = append(mu.waiters, t)
		t.Block()
		spins = 0
	}
	mu.Acquires++
	mu.mgr.sync(t)
}

// Unlock releases the mutex and wakes one blocked waiter, if any.
func (mu *Mutex) Unlock(t *machine.Thread) {
	if mu.owner != t {
		panic(fmt.Sprintf("psync: unlock of %q by non-owner thread %d", mu.name, t.ID))
	}
	mu.mgr.sync(t)
	addr := mu.target(t)
	mu.owner = nil
	t.AtomicRMW(mu.mgr.siteRel.PC(), addr, 8, func(uint64) uint64 { return 0 })
	if len(mu.waiters) > 0 {
		w := mu.waiters[0]
		mu.waiters = mu.waiters[1:]
		t.Unblock(w, WakeCost)
	}
}

// Barrier is a process-shared barrier.
type Barrier struct {
	mgr     *Manager
	objAddr uint64
	parties int
	arrived int
	waiting []*machine.Thread
	// Generations counts completed barrier episodes.
	Generations uint64
}

// NewBarrier creates a barrier for the given number of parties.
func (m *Manager) NewBarrier(name string, parties int) *Barrier {
	if parties < 1 {
		panic("psync: barrier needs at least one party")
	}
	return &Barrier{mgr: m, objAddr: m.allocObject(), parties: parties}
}

// Wait arrives at the barrier and blocks until all parties have arrived.
func (b *Barrier) Wait(t *machine.Thread) {
	b.mgr.sync(t)
	// Register before arriving: the last arriver scans b.waiting, and an
	// Unblock delivered before this thread reaches Block is kept as a wake
	// permit, so register-then-arrive never loses a wakeup.
	b.waiting = append(b.waiting, t)
	last := false
	t.AtomicRMW(b.mgr.siteBarArr.PC(), b.objAddr, 8, func(old uint64) uint64 {
		// The "am I last" decision must be atomic with the arrival RMW:
		// only then is the last arriver's RMW the one that synchronizes
		// with every earlier arrival, so the chain on the barrier word
		// (plus the wake edges below) orders all pre-barrier effects
		// before every departure. Counting outside the RMW let another
		// thread's count overtake this thread's RMW, and a waiter could
		// depart with no happens-before edge from a straggler's arrival.
		b.arrived++
		if b.arrived == b.parties {
			b.arrived = 0
			last = true
		}
		return old + 1
	})
	if last {
		b.Generations++
		for _, w := range b.waiting {
			if w != t {
				t.Unblock(w, WakeCost)
			}
		}
		b.waiting = b.waiting[:0]
	} else {
		t.Block()
	}
	b.mgr.sync(t)
}

// Cond is a process-shared condition variable.
type Cond struct {
	mgr     *Manager
	objAddr uint64
	waiting []*machine.Thread
	waitMu  []*Mutex
}

// NewCond creates a condition variable.
func (m *Manager) NewCond(name string) *Cond {
	return &Cond{mgr: m, objAddr: m.allocObject()}
}

// Wait atomically releases mu and blocks; on wakeup it reacquires mu.
func (c *Cond) Wait(t *machine.Thread, mu *Mutex) {
	c.waiting = append(c.waiting, t)
	c.waitMu = append(c.waitMu, mu)
	mu.Unlock(t)
	t.Block()
	mu.Lock(t)
}

// Signal wakes one waiter.
func (c *Cond) Signal(t *machine.Thread) {
	if len(c.waiting) == 0 {
		return
	}
	w := c.waiting[0]
	c.waiting = c.waiting[1:]
	c.waitMu = c.waitMu[1:]
	t.Unblock(w, WakeCost)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(t *machine.Thread) {
	for _, w := range c.waiting {
		t.Unblock(w, WakeCost)
	}
	c.waiting = c.waiting[:0]
	c.waitMu = c.waitMu[:0]
}
