package psync

import (
	"testing"

	"repro/internal/disasm"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

func TestRWMutexReadersOverlapWritersExclude(t *testing.T) {
	f := newFixture(t, 4, true, Hooks{})
	rw := f.mgr.NewRWMutex("rw", heapBase)
	var (
		readersIn, maxReaders int
		writersIn, maxBoth    int
	)
	reader := func(th *machine.Thread) {
		for i := 0; i < 150; i++ {
			rw.RLock(th)
			readersIn++
			if readersIn > maxReaders {
				maxReaders = readersIn
			}
			if writersIn > 0 {
				t.Error("reader inside while writer holds")
			}
			th.Work(60)
			readersIn--
			rw.RUnlock(th)
			th.Work(20)
		}
	}
	writer := func(th *machine.Thread) {
		for i := 0; i < 100; i++ {
			rw.Lock(th)
			writersIn++
			if both := writersIn + readersIn; both > maxBoth {
				maxBoth = both
			}
			th.Work(80)
			writersIn--
			rw.Unlock(th)
			th.Work(40)
		}
	}
	if err := f.mc.Run([]func(*machine.Thread){reader, reader, reader, writer}); err != nil {
		t.Fatal(err)
	}
	if maxReaders < 2 {
		t.Errorf("readers should overlap, max concurrency %d", maxReaders)
	}
	if maxBoth > 1 {
		t.Errorf("writer overlapped with %d other holders", maxBoth-1)
	}
	if rw.ReadAcquires != 450 || rw.WriteAcquires != 100 {
		t.Errorf("acquires %d/%d, want 450/100", rw.ReadAcquires, rw.WriteAcquires)
	}
}

func TestRWMutexWriterProtectsData(t *testing.T) {
	f := newFixture(t, 4, true, Hooks{})
	rw := f.mgr.NewRWMutex("rw", heapBase)
	prog := f.mgr.prog
	st := prog.Site("rw.data", disasm.KindStore, 8)
	const per = 200
	body := func(th *machine.Thread) {
		for i := 0; i < per; i++ {
			rw.Lock(th)
			v := th.Load(st.PC(), heapBase+256, 8)
			th.Store(st.PC(), heapBase+256, 8, v+1)
			rw.Unlock(th)
		}
	}
	if err := f.mc.Run([]func(*machine.Thread){body, body, body, body}); err != nil {
		t.Fatal(err)
	}
	tr, _ := f.space.Translate(heapBase+256, false)
	if got := mem.LoadUint(tr, 8); got != 4*per {
		t.Errorf("counter %d, want %d", got, 4*per)
	}
}

func TestRWMutexMisusePanics(t *testing.T) {
	f := newFixture(t, 1, false, Hooks{})
	rw := f.mgr.NewRWMutex("rw", heapBase)
	err := f.mc.Run([]func(*machine.Thread){func(th *machine.Thread) {
		rw.RUnlock(th)
	}})
	if err == nil {
		t.Error("RUnlock without RLock must fail")
	}
}
