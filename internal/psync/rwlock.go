package psync

import (
	"fmt"

	"repro/internal/disasm"
	"repro/internal/sim/machine"
)

// RWMutex is a process-shared readers-writer lock (pthread_rwlock analog):
// any number of readers or one writer. Like Mutex it lives behind TMI's
// indirection in the always-shared region, and every acquire/release is a
// PTSB commit point.
//
// The implementation keeps a reader count in the shared word (writers CAS
// it to a sentinel), so reader traffic itself exhibits the true sharing a
// real rwlock's cache line does.
type RWMutex struct {
	mgr     *Manager
	appAddr uint64
	objAddr uint64
	name    string

	readers     int
	writer      *machine.Thread
	waitWriters []*machine.Thread
	waitReaders []*machine.Thread

	// ReadAcquires/WriteAcquires count lock operations.
	ReadAcquires  uint64
	WriteAcquires uint64

	siteRd, siteWr disasm.Site
}

// writerSentinel marks the lock word as writer-held.
const writerSentinel = ^uint64(0)

// NewRWMutex creates a readers-writer lock whose application word lives at
// appAddr.
func (m *Manager) NewRWMutex(name string, appAddr uint64) *RWMutex {
	rw := &RWMutex{mgr: m, appAddr: appAddr, name: name}
	rw.siteRd = m.prog.RuntimeSite("psync.rwlock.rdlock", disasm.KindAtomic, 8)
	rw.siteWr = m.prog.RuntimeSite("psync.rwlock.wrlock", disasm.KindAtomic, 8)
	if m.Indirect {
		rw.objAddr = m.allocObject()
		tr, fault := m.space.Translate(appAddr, true)
		if fault != nil {
			panic(fmt.Sprintf("psync: rwlock word unmapped: %v", fault))
		}
		writePointer(tr, rw.objAddr)
	}
	return rw
}

func (rw *RWMutex) target(t *machine.Thread) uint64 {
	if rw.mgr.Indirect {
		return t.Load(rw.mgr.sitePtr.PC(), rw.appAddr, 8)
	}
	return rw.appAddr
}

// RLock acquires the lock for reading; readers may overlap.
func (rw *RWMutex) RLock(t *machine.Thread) {
	rw.mgr.sync(t)
	addr := rw.target(t)
	for spins := 0; ; spins++ {
		if rw.writer == nil && len(rw.waitWriters) == 0 {
			// Reader path: bump the shared count unless a writer holds the
			// word. The word is the authority — the conditional RMW is what
			// makes check-and-claim atomic across scheduler yields.
			old := t.AtomicRMW(rw.siteRd.PC(), addr, 8, func(old uint64) uint64 {
				if old == writerSentinel {
					return old
				}
				return old + 1
			})
			if old != writerSentinel {
				rw.readers++
				break
			}
		}
		if spins < MaxSpins {
			t.Load(rw.mgr.siteSpin.PC(), addr, 8)
			t.Work(SpinPause)
			continue
		}
		rw.waitReaders = append(rw.waitReaders, t)
		t.Block()
		spins = 0
	}
	rw.ReadAcquires++
	rw.mgr.sync(t)
}

// RUnlock releases a read hold.
func (rw *RWMutex) RUnlock(t *machine.Thread) {
	if rw.readers <= 0 {
		panic(fmt.Sprintf("psync: RUnlock of %q without readers", rw.name))
	}
	rw.mgr.sync(t)
	addr := rw.target(t)
	t.AtomicRMW(rw.siteRd.PC(), addr, 8, func(old uint64) uint64 { return old - 1 })
	rw.readers--
	if rw.readers == 0 {
		rw.wakeOne(t, &rw.waitWriters)
	}
}

// Lock acquires the lock exclusively.
func (rw *RWMutex) Lock(t *machine.Thread) {
	rw.mgr.sync(t)
	addr := rw.target(t)
	for spins := 0; ; spins++ {
		if t.AtomicCAS(rw.siteWr.PC(), addr, 8, 0, writerSentinel) {
			// CAS from 0 proves no reader and no writer held the word.
			rw.writer = t
			break
		}
		if spins < MaxSpins {
			t.Load(rw.mgr.siteSpin.PC(), addr, 8)
			t.Work(SpinPause)
			continue
		}
		rw.waitWriters = append(rw.waitWriters, t)
		t.Block()
		spins = 0
	}
	rw.WriteAcquires++
	rw.mgr.sync(t)
}

// Unlock releases the exclusive hold; waiting writers take priority, then
// all waiting readers wake together.
func (rw *RWMutex) Unlock(t *machine.Thread) {
	if rw.writer != t {
		panic(fmt.Sprintf("psync: Unlock of %q by non-writer thread %d", rw.name, t.ID))
	}
	rw.mgr.sync(t)
	addr := rw.target(t)
	rw.writer = nil
	t.AtomicRMW(rw.siteWr.PC(), addr, 8, func(uint64) uint64 { return 0 })
	if !rw.wakeOne(t, &rw.waitWriters) {
		for _, r := range rw.waitReaders {
			t.Unblock(r, WakeCost)
		}
		rw.waitReaders = rw.waitReaders[:0]
	}
}

func (rw *RWMutex) wakeOne(t *machine.Thread, q *[]*machine.Thread) bool {
	if len(*q) == 0 {
		return false
	}
	w := (*q)[0]
	*q = (*q)[1:]
	t.Unblock(w, WakeCost)
	return true
}
