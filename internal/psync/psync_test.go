package psync

import (
	"fmt"
	"testing"

	"repro/internal/disasm"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

const (
	heapBase  = 0x1000_0000
	stateBase = 0x7000_0000
	stateSize = 1 << 20
)

type fixture struct {
	mc    *machine.Machine
	mgr   *Manager
	space *mem.AddrSpace
}

func newFixture(t *testing.T, threads int, indirect bool, hooks Hooks) *fixture {
	t.Helper()
	m := mem.NewMemory(mem.PageSize4K)
	heap := m.NewFile("heap")
	state := m.NewFile("state")
	as := mem.NewAddrSpace(m)
	as.Map(heapBase, 16, heap, 0, false, mem.ProtRW)
	as.Map(stateBase, stateSize/mem.PageSize4K, state, 0, false, mem.ProtRW)
	mc := machine.New(machine.Config{Cores: threads, Seed: 11, Mem: m})
	for _, th := range mc.Threads() {
		th.SetSpace(as)
	}
	prog := disasm.NewProgram()
	mgr := NewManager(prog, as, stateBase, stateSize, indirect, hooks)
	return &fixture{mc: mc, mgr: mgr, space: as}
}

func TestMutexMutualExclusion(t *testing.T) {
	for _, indirect := range []bool{false, true} {
		t.Run(fmt.Sprintf("indirect=%v", indirect), func(t *testing.T) {
			f := newFixture(t, 4, indirect, Hooks{})
			mu := f.mgr.NewMutex("m", heapBase)
			inCS := 0
			maxCS := 0
			body := func(th *machine.Thread) {
				for i := 0; i < 200; i++ {
					mu.Lock(th)
					inCS++
					if inCS > maxCS {
						maxCS = inCS
					}
					th.Work(50)
					inCS--
					mu.Unlock(th)
					th.Work(20)
				}
			}
			if err := f.mc.Run([]func(*machine.Thread){body, body, body, body}); err != nil {
				t.Fatal(err)
			}
			if maxCS != 1 {
				t.Errorf("mutual exclusion violated: %d threads in CS", maxCS)
			}
			if mu.Acquires != 800 {
				t.Errorf("acquires %d, want 800", mu.Acquires)
			}
		})
	}
}

func TestMutexProtectsSharedCounter(t *testing.T) {
	f := newFixture(t, 4, true, Hooks{})
	mu := f.mgr.NewMutex("m", heapBase)
	site := disasm.NewProgram().Site("ctr", disasm.KindStore, 8)
	const per = 300
	body := func(th *machine.Thread) {
		for i := 0; i < per; i++ {
			mu.Lock(th)
			v := th.Load(site.PC(), heapBase+256, 8)
			th.Store(site.PC(), heapBase+256, 8, v+1)
			mu.Unlock(th)
		}
	}
	if err := f.mc.Run([]func(*machine.Thread){body, body, body, body}); err != nil {
		t.Fatal(err)
	}
	tr, _ := f.space.Translate(heapBase+256, false)
	if got := mem.LoadUint(tr, 8); got != 4*per {
		t.Errorf("counter %d, want %d", got, 4*per)
	}
}

func TestMutexIndirectionInstallsPointer(t *testing.T) {
	f := newFixture(t, 1, true, Hooks{})
	f.mgr.NewMutex("m", heapBase+64)
	tr, _ := f.space.Translate(heapBase+64, false)
	ptr := mem.LoadUint(tr, 8)
	if ptr < stateBase || ptr >= stateBase+stateSize {
		t.Errorf("lock word should point into the shared region, got 0x%x", ptr)
	}
	if f.mgr.Objects() != 1 {
		t.Errorf("objects %d, want 1", f.mgr.Objects())
	}
}

func TestMutexDirectModeUsesAppWord(t *testing.T) {
	f := newFixture(t, 1, false, Hooks{})
	mu := f.mgr.NewMutex("m", heapBase+64)
	body := func(th *machine.Thread) {
		mu.Lock(th)
		mu.Unlock(th)
	}
	if err := f.mc.Run([]func(*machine.Thread){body}); err != nil {
		t.Fatal(err)
	}
	// Without indirection the app word itself was CAS'd (nonzero during
	// hold, zero after release) and no shared object was allocated.
	if f.mgr.Objects() != 0 {
		t.Errorf("direct mode must not allocate shared objects, got %d", f.mgr.Objects())
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	f := newFixture(t, 2, true, Hooks{})
	mu := f.mgr.NewMutex("m", heapBase)
	err := f.mc.Run([]func(*machine.Thread){
		func(th *machine.Thread) { mu.Lock(th); th.Work(10_000) },
		func(th *machine.Thread) {
			th.Work(100)
			mu.Unlock(th) // not the owner
		},
	})
	if err == nil {
		t.Fatal("unlock by non-owner should fail the run")
	}
}

func TestSyncHookFiresAtBoundaries(t *testing.T) {
	calls := 0
	f := newFixture(t, 1, true, Hooks{OnSync: func(*machine.Thread) { calls++ }})
	mu := f.mgr.NewMutex("m", heapBase)
	body := func(th *machine.Thread) {
		mu.Lock(th)
		mu.Unlock(th)
	}
	if err := f.mc.Run([]func(*machine.Thread){body}); err != nil {
		t.Fatal(err)
	}
	// Two boundaries in Lock (before and after acquisition) and one in
	// Unlock.
	if calls != 3 {
		t.Errorf("sync hook fired %d times, want 3", calls)
	}
}

func TestBarrierRendezvous(t *testing.T) {
	f := newFixture(t, 4, true, Hooks{})
	bar := f.mgr.NewBarrier("b", 4)
	var phase [4]int
	body := func(th *machine.Thread) {
		for round := 0; round < 5; round++ {
			th.Work(int64(100 * (th.ID + 1))) // skewed arrival
			phase[th.ID] = round
			bar.Wait(th)
			// After the barrier, everyone must have finished this round.
			for i, p := range phase {
				if p < round {
					t.Errorf("thread %d passed barrier before thread %d arrived", th.ID, i)
				}
			}
		}
	}
	if err := f.mc.Run([]func(*machine.Thread){body, body, body, body}); err != nil {
		t.Fatal(err)
	}
	if bar.Generations != 5 {
		t.Errorf("generations %d, want 5", bar.Generations)
	}
}

func TestBarrierAdvancesClocks(t *testing.T) {
	f := newFixture(t, 2, true, Hooks{})
	bar := f.mgr.NewBarrier("b", 2)
	err := f.mc.Run([]func(*machine.Thread){
		func(th *machine.Thread) { bar.Wait(th) },
		func(th *machine.Thread) { th.Work(50_000); bar.Wait(th) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := f.mc.Thread(0).Clock(); c < 50_000 {
		t.Errorf("early arriver's clock %d should reach the late arriver's", c)
	}
}

func TestCondSignalWakesWaiter(t *testing.T) {
	f := newFixture(t, 2, true, Hooks{})
	mu := f.mgr.NewMutex("m", heapBase)
	cv := f.mgr.NewCond("c")
	ready := false
	err := f.mc.Run([]func(*machine.Thread){
		func(th *machine.Thread) {
			mu.Lock(th)
			for !ready {
				cv.Wait(th, mu)
			}
			mu.Unlock(th)
		},
		func(th *machine.Thread) {
			th.Work(10_000)
			mu.Lock(th)
			ready = true
			cv.Signal(th)
			mu.Unlock(th)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	f := newFixture(t, 4, true, Hooks{})
	mu := f.mgr.NewMutex("m", heapBase)
	cv := f.mgr.NewCond("c")
	released := false
	woken := 0
	waiter := func(th *machine.Thread) {
		mu.Lock(th)
		for !released {
			cv.Wait(th, mu)
		}
		woken++
		mu.Unlock(th)
	}
	err := f.mc.Run([]func(*machine.Thread){
		waiter, waiter, waiter,
		func(th *machine.Thread) {
			th.Work(20_000)
			mu.Lock(th)
			released = true
			cv.Broadcast(th)
			mu.Unlock(th)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Errorf("woken %d, want 3", woken)
	}
}

func TestPackedLockWordsFalselyShare(t *testing.T) {
	// spinlockpool's essence: two locks on one line (direct mode) ping-pong
	// the line; padded shared objects (indirect mode) do not.
	contention := func(indirect bool) uint64 {
		f := newFixture(t, 2, indirect, Hooks{})
		mu0 := f.mgr.NewMutex("l0", heapBase)
		mu1 := f.mgr.NewMutex("l1", heapBase+8) // same line
		body := func(mu *Mutex) func(*machine.Thread) {
			return func(th *machine.Thread) {
				for i := 0; i < 300; i++ {
					mu.Lock(th)
					th.Work(30)
					mu.Unlock(th)
				}
			}
		}
		if err := f.mc.Run([]func(*machine.Thread){body(mu0), body(mu1)}); err != nil {
			t.Fatal(err)
		}
		return f.mc.Cache().Stats().HITM
	}
	direct := contention(false)
	indirect := contention(true)
	if direct < 4*indirect {
		t.Errorf("packed lock words should contend far more: direct=%d indirect=%d", direct, indirect)
	}
}
