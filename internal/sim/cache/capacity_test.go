package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCapacityEvictsOldest(t *testing.T) {
	s := New(1)
	s.SetCapacity(4)
	for i := 0; i < 4; i++ {
		s.Access(0, uint64(i)*LineSize, 8, false, false)
	}
	// All four resident.
	for i := 0; i < 4; i++ {
		if r := s.Access(0, uint64(i)*LineSize, 8, false, false); r.Latency != LatL1Hit {
			t.Fatalf("line %d should be resident", i)
		}
	}
	// A fifth line evicts line 0 (the oldest fill).
	s.Access(0, 4*LineSize, 8, false, false)
	if r := s.Access(0, 0, 8, false, false); r.Latency == LatL1Hit {
		t.Error("line 0 should have been evicted")
	}
	if s.Stats().Evictions == 0 {
		t.Error("evictions should be counted")
	}
}

func TestCapacityEvictionWritesBackDirty(t *testing.T) {
	s := New(1)
	s.SetCapacity(2)
	s.Access(0, 0, 8, true, false) // dirty line 0
	wbBefore := s.Stats().Writebacks
	s.Access(0, LineSize, 8, false, false)
	s.Access(0, 2*LineSize, 8, false, false) // evicts dirty line 0
	if s.Stats().Writebacks != wbBefore+1 {
		t.Errorf("dirty eviction should write back: %d -> %d", wbBefore, s.Stats().Writebacks)
	}
	if s.StateOf(0, 0) != Invalid {
		t.Error("evicted line should be Invalid for the core")
	}
}

func TestEvictedDirtyLineNoLongerHITMs(t *testing.T) {
	s := New(2)
	s.SetCapacity(2)
	s.Access(0, 0, 8, true, false)           // core 0 dirties line 0
	s.Access(0, LineSize, 8, false, false)   // fill
	s.Access(0, 2*LineSize, 8, false, false) // evicts line 0 (written back)
	r := s.Access(1, 0, 8, false, false)
	if r.HITM {
		t.Error("line was written back at eviction; no HITM possible")
	}
}

func TestInvalidationClearsResidence(t *testing.T) {
	s := New(2)
	s.SetCapacity(2)
	s.Access(0, 0, 8, false, false) // core 0 shares line 0
	s.Access(1, 0, 8, true, false)  // core 1 takes ownership, invalidating core 0
	// Core 0's capacity slot is free again: two new fills must not evict
	// anything that matters.
	s.Access(0, LineSize, 8, false, false)
	s.Access(0, 2*LineSize, 8, false, false)
	if r := s.Access(0, LineSize, 8, false, false); r.Latency != LatL1Hit {
		t.Error("line 1 should still be resident")
	}
}

func TestUnlimitedCapacityNeverEvicts(t *testing.T) {
	s := New(1)
	for i := 0; i < 10_000; i++ {
		s.Access(0, uint64(i)*LineSize, 8, false, false)
	}
	if s.Stats().Evictions != 0 {
		t.Error("default capacity is unlimited")
	}
	if r := s.Access(0, 0, 8, false, false); r.Latency != LatL1Hit {
		t.Error("everything stays resident without a capacity bound")
	}
}

func TestEnergyAndTrafficAccounting(t *testing.T) {
	s := New(2)
	s.Access(0, 0, 8, true, false) // DRAM fill
	s.Access(1, 4, 8, false, false)
	st := s.Stats()
	if st.TrafficBytes() == 0 {
		t.Error("fills and HITM transfers move bytes")
	}
	if st.EnergyMicroJ() <= 0 {
		t.Error("energy estimate should be positive")
	}
	// A HITM-heavy run costs more energy than a hit-heavy one of the same
	// access count.
	quiet := New(2)
	for i := 0; i < 100; i++ {
		quiet.Access(0, 0, 8, false, false)
	}
	noisy := New(2)
	for i := 0; i < 50; i++ {
		noisy.Access(0, 0, 8, true, false)
		noisy.Access(1, 8, 8, true, false)
	}
	if noisy.Stats().EnergyMicroJ() <= quiet.Stats().EnergyMicroJ() {
		t.Error("false sharing must cost more energy than private hits")
	}
}

// Property: SWMR holds with capacity-bounded caches too, under random
// traffic with evictions interleaving.
func TestQuickSWMRWithCapacity(t *testing.T) {
	check := func(seed int64) bool {
		s := New(4)
		s.SetCapacity(3)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			s.Access(rng.Intn(4), uint64(rng.Intn(12))*LineSize, 8, rng.Intn(2) == 0, false)
		}
		return s.CheckSWMR() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: residence tracking and directory agree — whenever a core hits
// at L1 latency, the directory lists it as a sharer.
func TestQuickResidenceConsistency(t *testing.T) {
	check := func(seed int64) bool {
		s := New(2)
		s.SetCapacity(4)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1500; i++ {
			core := rng.Intn(2)
			la := uint64(rng.Intn(8)) * LineSize
			r := s.Access(core, la, 8, rng.Intn(3) == 0, false)
			if r.Latency == LatL1Hit && s.StateOf(core, la) == Invalid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
