package cache

import "fmt"

// This file adds the two-level socket topology (ROADMAP item 2) and the
// per-line isolation hook used by the `pad` repair backend. Both are
// strictly config-gated: a System with no SetTopology call and no
// IsolateLine call behaves bit-for-bit like the single-socket model —
// identical latencies, identical stats — which is what keeps the fig9
// golden byte-identical under the default configuration.
//
// Topology model:
//
//   - Cores are block-partitioned across sockets: with C cores and S
//     sockets, core c lives on socket c*S/C (cores 0..C/S-1 on socket 0,
//     and so on). This mirrors how the harness pins worker threads to
//     consecutive cores.
//   - Each line has a home node: physical frames interleave across sockets
//     at page granularity (frame >> homeShift mod S), the default BIOS
//     interleave policy. The home node hosts the line's directory slice.
//   - A HITM whose Modified owner sits on a different socket than the
//     requester pays RemoteHITMPenalty on top of LatHITM: the dirty line
//     crosses the interconnect instead of the intra-socket ring.
//   - A fill (LLC or DRAM) whose home node is remote pays RemoteFillPenalty:
//     the directory lookup and the data both cross sockets.
//
// Upgrades stay flat: invalidation messages are small and latency-hidden
// relative to data transfers, and keeping them flat keeps the gated diff
// minimal.

// homeShift interleaves line homes at 4 KiB frame granularity.
const homeShift = 12

// Topology configures the socket layout. Zero penalty fields are filled
// with the LatRemoteHITM / LatRemoteFill defaults from params.go.
type Topology struct {
	// Sockets is the socket count; 0 or 1 means the flat single-socket
	// machine (no penalties anywhere).
	Sockets int
	// RemoteHITMPenalty is added to LatHITM when the Modified owner is on
	// a different socket than the requester.
	RemoteHITMPenalty int64
	// RemoteFillPenalty is added to LatLLC/LatDRAM when the line's home
	// node is a different socket than the requester's.
	RemoteFillPenalty int64
}

// SetTopology installs a socket topology. Call before any Access. Sockets
// must not exceed the core count; 0 or 1 restores the flat default.
func (s *System) SetTopology(t Topology) error {
	if t.Sockets <= 1 {
		s.sockets = 0
		return nil
	}
	if t.Sockets > s.numCores {
		return fmt.Errorf("cache: %d sockets over %d cores", t.Sockets, s.numCores)
	}
	if t.RemoteHITMPenalty == 0 {
		t.RemoteHITMPenalty = LatRemoteHITM
	}
	if t.RemoteFillPenalty == 0 {
		t.RemoteFillPenalty = LatRemoteFill
	}
	s.sockets = t.Sockets
	s.topo = t
	return nil
}

// Sockets reports the configured socket count (1 for the flat default).
func (s *System) Sockets() int {
	if s.sockets == 0 {
		return 1
	}
	return s.sockets
}

// SocketOf reports the socket hosting core (block partition).
func (s *System) SocketOf(core int) int {
	if s.sockets == 0 {
		return 0
	}
	return core * s.sockets / s.numCores
}

// FirstCoreOf reports the lowest-numbered core on socket sk.
func (s *System) FirstCoreOf(sk int) int {
	if s.sockets == 0 {
		return 0
	}
	for c := 0; c < s.numCores; c++ {
		if s.SocketOf(c) == sk {
			return c
		}
	}
	return 0
}

// HomeSocket reports the socket whose node hosts the directory for the
// line containing phys (page-interleaved; 0 on the flat default).
func (s *System) HomeSocket(phys uint64) int {
	if s.sockets == 0 {
		return 0
	}
	return int((phys >> homeShift) % uint64(s.sockets))
}

// hitmPenalty charges the cross-socket transfer cost for a HITM served by
// core src, and counts it. Zero on the flat default or intra-socket.
func (s *System) hitmPenalty(core, src int) int64 {
	if s.sockets == 0 || s.SocketOf(core) == s.SocketOf(src) {
		return 0
	}
	s.stats.RemoteHITM++
	return s.topo.RemoteHITMPenalty
}

// fillPenalty charges the remote-home cost for a fill of la by core, and
// counts it. Zero on the flat default or when the home node is local.
func (s *System) fillPenalty(core int, la uint64) int64 {
	if s.sockets == 0 || s.SocketOf(core) == s.HomeSocket(la) {
		return 0
	}
	s.stats.RemoteFills++
	return s.topo.RemoteFillPenalty
}

// IsolateLine re-segregates the line containing phys onto per-core private
// shadow directory entries: from this point on, each core coheres against
// its own copy and the line can never ping-pong again. This is the cache
// model of the `pad` repair backend — the allocator moves each offending
// object onto its own line, so the formerly-shared physical line stops
// existing as a contention point. Idempotent.
func (s *System) IsolateLine(phys uint64) {
	la := phys &^ (LineSize - 1)
	if s.isolated == nil {
		s.isolated = make(map[uint64][]line)
	}
	if _, ok := s.isolated[la]; ok {
		return
	}
	sh := make([]line, s.numCores)
	for i := range sh {
		sh[i].owner = -1
	}
	s.isolated[la] = sh
}

// IsolatedLines reports how many lines have been re-segregated.
func (s *System) IsolatedLines() int { return len(s.isolated) }
