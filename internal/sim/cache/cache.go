// Package cache simulates an invalidation-based MESI cache coherence
// protocol across N cores, at cache-line granularity, keyed by *physical*
// line address. It is the substrate that makes false sharing exist at all in
// this reproduction: two threads whose virtual pages resolve to the same
// physical line contend here, and stop contending the moment TMI remaps one
// of them to a private physical page.
//
// The simulator enforces the single-writer/multiple-reader (SWMR) invariant
// and reports HITM ("hit modified") events — a request hitting a line that a
// remote core holds in Modified state — which are exactly the events Intel
// PEBS exposes and TMI's detector consumes.
//
// Physical page IDs are allocated densely from 1 (mem.Memory.nextPhys), so
// physical line addresses are dense too: the line directory is a block-paged
// slice indexed by line number, not a map. Every access is two array indexes
// and zero allocations in steady state; a block of 64 directory entries is
// allocated once, the first time any line in it is touched.
package cache

import "fmt"

// State is a MESI line state as seen by one core.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// blockLines is the number of directory entries per allocated block: 64
// lines = one 4 KiB page's worth, the natural unit of physical-address
// density here.
const blockLines = 64

// line is the directory entry for one physical cache line.
type line struct {
	sharers uint64 // bitmask of cores holding a valid copy
	hitm    uint32 // HITM events observed on this line (detector ground truth)
	owner   int8   // core holding the line E or M, -1 if none
	dirty   bool   // owner holds the line Modified
}

// lineBlock holds the directory entries for blockLines consecutive lines.
type lineBlock [blockLines]line

func newLineBlock() *lineBlock {
	b := new(lineBlock)
	for i := range b {
		b[i].owner = -1
	}
	return b
}

// coreCache tracks one core's resident lines for capacity modeling: a FIFO
// of fills (the eviction policy real simulators commonly approximate LRU
// with) plus the resident set, as block-paged fill-sequence slices (seq 0 =
// not resident).
type coreCache struct {
	fifo     []fifoEntry
	head     int
	resident []*[blockLines]uint64 // line-block -> fill sequences
	count    int                   // resident lines
	seq      uint64
}

type fifoEntry struct {
	la  uint64
	seq uint64
}

func (c *coreCache) slot(la uint64) *uint64 {
	li := la / LineSize
	bi := li / blockLines
	for uint64(len(c.resident)) <= bi {
		c.resident = append(c.resident, nil)
	}
	b := c.resident[bi]
	if b == nil {
		b = new([blockLines]uint64)
		c.resident[bi] = b
	}
	return &b[li%blockLines]
}

func (c *coreCache) noteFill(la uint64, capacity int) (evict uint64, ok bool) {
	slot := c.slot(la)
	if *slot != 0 {
		return 0, false
	}
	c.seq++
	*slot = c.seq
	c.count++
	c.fifo = append(c.fifo, fifoEntry{la, c.seq})
	for c.count > capacity && c.head < len(c.fifo) {
		victim := c.fifo[c.head]
		c.head++
		// Skip entries invalidated or refilled since this fill.
		vs := c.slot(victim.la)
		if *vs == victim.seq {
			*vs = 0
			c.count--
			return victim.la, true
		}
	}
	return 0, false
}

func (c *coreCache) drop(la uint64) {
	s := c.slot(la)
	if *s != 0 {
		*s = 0
		c.count--
	}
}

// HITMEvent is emitted when an access by Core hits a line held Modified by
// Source. It is the raw hardware event behind PEBS sampling.
type HITMEvent struct {
	Core   int    // requesting core
	Source int    // core that held the line Modified
	Phys   uint64 // physical byte address of the access
	Write  bool   // the request was a store
}

// Result describes the outcome of one line access.
type Result struct {
	Latency int64
	HITM    bool
	Source  int // valid when HITM
}

// Stats aggregates coherence activity.
type Stats struct {
	Accesses      uint64
	L1Hits        uint64
	LLCHits       uint64
	DRAMFills     uint64
	HITM          uint64
	Upgrades      uint64
	Invalidations uint64
	Writebacks    uint64
	Evictions     uint64
	// Cross-socket events; always zero on the flat single-socket default.
	RemoteHITM  uint64 // HITMs served across the socket interconnect
	RemoteFills uint64 // LLC/DRAM fills whose home node was remote
}

// TrafficBytes estimates interconnect traffic: every cross-cache transfer,
// fill and writeback moves one line.
func (s Stats) TrafficBytes() uint64 {
	return (s.LLCHits + s.DRAMFills + s.HITM + s.Writebacks) * LineSize
}

// EnergyMicroJ estimates the energy cost of the observed memory activity —
// the "significant energy penalty for generating and processing cache
// coherence traffic" the paper's introduction cites. Per-event costs are
// EnergyL1/LLC/HITM/DRAM picojoules (params.go).
func (s Stats) EnergyMicroJ() float64 {
	pj := float64(s.L1Hits)*EnergyL1 +
		float64(s.LLCHits+s.Upgrades)*EnergyLLC +
		float64(s.HITM)*EnergyHITM +
		float64(s.DRAMFills+s.Writebacks)*EnergyDRAM
	return pj / 1e6
}

// System is the coherence fabric for a fixed set of cores.
type System struct {
	numCores int
	blocks   []*lineBlock // line directory, block-paged by line number
	stats    Stats
	onHITM   func(HITMEvent)
	// capacity is the per-core private cache size in lines; 0 = unlimited
	// (the default: contention modeling does not depend on it).
	capacity int
	cores    []*coreCache
	// sockets > 1 activates the two-level topology (topology.go); 0 is the
	// flat single-socket default with no penalties anywhere.
	sockets int
	topo    Topology
	// isolated maps a line address to per-core private shadow entries (the
	// `pad` repair backend's re-segregation model); nil until the first
	// IsolateLine call.
	isolated map[uint64][]line
}

// New returns a coherence system for numCores cores (max 64) with unlimited
// per-core capacity.
func New(numCores int) *System {
	if numCores < 1 || numCores > 64 {
		panic(fmt.Sprintf("cache: unsupported core count %d", numCores))
	}
	return &System{numCores: numCores}
}

// SetCapacity bounds each core's private cache to n lines (FIFO eviction);
// n <= 0 restores the unlimited default. Call before any Access.
func (s *System) SetCapacity(n int) {
	if n <= 0 {
		s.capacity = 0
		s.cores = nil
		return
	}
	s.capacity = n
	s.cores = make([]*coreCache, s.numCores)
	for i := range s.cores {
		s.cores[i] = &coreCache{}
	}
}

// getLine returns the directory entry for the line at physical line address
// la, allocating its block on first touch.
func (s *System) getLine(la uint64) *line {
	li := la / LineSize
	bi := li / blockLines
	for uint64(len(s.blocks)) <= bi {
		s.blocks = append(s.blocks, nil)
	}
	b := s.blocks[bi]
	if b == nil {
		b = newLineBlock()
		s.blocks[bi] = b
	}
	return &b[li%blockLines]
}

// peekLine returns the directory entry for la without allocating, or nil if
// its block was never touched.
func (s *System) peekLine(la uint64) *line {
	li := la / LineSize
	bi := li / blockLines
	if bi >= uint64(len(s.blocks)) || s.blocks[bi] == nil {
		return nil
	}
	return &s.blocks[bi][li%blockLines]
}

// noteFill records that core now holds la and performs a capacity eviction
// if needed: the victim leaves the core's sharer set, with a writeback if
// the core held it Modified.
func (s *System) noteFill(core int, la uint64) {
	if s.capacity == 0 {
		return
	}
	victim, ok := s.cores[core].noteFill(la, s.capacity)
	if !ok || victim == la {
		return
	}
	ln := s.peekLine(victim)
	if ln == nil || ln.sharers&(1<<uint(core)) == 0 {
		return
	}
	if ln.dirty && int(ln.owner) == core {
		s.stats.Writebacks++
		ln.dirty = false
	}
	ln.sharers &^= 1 << uint(core)
	if int(ln.owner) == core {
		ln.owner = -1
	}
	s.stats.Evictions++
}

// noteInvalidate drops la from core's residence tracking.
func (s *System) noteInvalidate(core int, la uint64) {
	if s.capacity != 0 {
		s.cores[core].drop(la)
	}
}

// OnHITM installs the HITM event callback (the PEBS sampler). The callback
// runs synchronously inside Access; it must not re-enter the System.
func (s *System) OnHITM(fn func(HITMEvent)) { s.onHITM = fn }

// NumCores reports the configured core count.
func (s *System) NumCores() int { return s.numCores }

// Stats returns a copy of the aggregate statistics.
func (s *System) Stats() Stats { return s.stats }

// HITMForLine reports the HITM count observed on the line containing phys.
func (s *System) HITMForLine(phys uint64) uint64 {
	if ln := s.peekLine(phys &^ (LineSize - 1)); ln != nil {
		return uint64(ln.hitm)
	}
	return 0
}

// StateOf reports core's MESI state for the line containing phys
// (test/debug use).
func (s *System) StateOf(core int, phys uint64) State {
	ln := s.peekLine(phys &^ (LineSize - 1))
	if ln == nil || ln.sharers&(1<<uint(core)) == 0 {
		return Invalid
	}
	if int(ln.owner) == core {
		if ln.dirty {
			return Modified
		}
		return Exclusive
	}
	return Shared
}

// Access performs a memory access of size bytes at physical address phys by
// core. Accesses that span a line boundary are split and their latencies
// accumulated (the HITM result reflects the first line that hit Modified
// remotely). atomic adds the locked-RMW cost.
func (s *System) Access(core int, phys uint64, size int, write, atomic bool) Result {
	if size <= 0 {
		size = 1
	}
	var res Result
	first := phys &^ (LineSize - 1)
	last := (phys + uint64(size) - 1) &^ (LineSize - 1)
	for la := first; ; la += LineSize {
		r := s.accessLine(core, la, write)
		res.Latency += r.Latency
		if r.HITM && !res.HITM {
			res.HITM = true
			res.Source = r.Source
			if s.onHITM != nil {
				s.onHITM(HITMEvent{Core: core, Source: r.Source, Phys: phys, Write: write})
			}
		}
		if la == last {
			break
		}
	}
	if atomic {
		res.Latency += LatAtomicExtra
	}
	return res
}

func (s *System) accessLine(core int, la uint64, write bool) Result {
	s.stats.Accesses++
	bit := uint64(1) << uint(core)
	var ln *line
	if s.isolated != nil {
		if sh, ok := s.isolated[la]; ok {
			// Re-segregated line: each core coheres against its private
			// shadow entry, so contention is impossible by construction.
			ln = &sh[core]
		}
	}
	if ln == nil {
		ln = s.getLine(la)
	}
	holds := ln.sharers&bit != 0
	remoteDirty := ln.dirty && int(ln.owner) != core

	if !write {
		switch {
		case holds:
			s.stats.L1Hits++
			return Result{Latency: LatL1Hit}
		case remoteDirty:
			// Remote core has the line Modified: HITM. The owner writes the
			// line back and both end up Shared.
			s.stats.HITM++
			s.stats.Writebacks++
			ln.hitm++
			src := int(ln.owner)
			ln.dirty = false
			ln.owner = -1
			ln.sharers |= bit
			s.noteFill(core, la)
			return Result{Latency: LatHITM + s.hitmPenalty(core, src), HITM: true, Source: src}
		case ln.sharers != 0:
			// Clean copy in another cache / LLC.
			s.stats.LLCHits++
			ln.sharers |= bit
			if ln.owner >= 0 {
				// Demote a remote Exclusive holder to Shared.
				ln.owner = -1
			}
			s.noteFill(core, la)
			return Result{Latency: LatLLC + s.fillPenalty(core, la)}
		default:
			s.stats.DRAMFills++
			ln.sharers = bit
			ln.owner = int8(core)
			ln.dirty = false // Exclusive
			s.noteFill(core, la)
			return Result{Latency: LatDRAM + s.fillPenalty(core, la)}
		}
	}

	// Store path.
	switch {
	case holds && int(ln.owner) == core:
		// Already E or M locally.
		ln.dirty = true
		s.stats.L1Hits++
		return Result{Latency: LatL1Hit}
	case remoteDirty:
		// RFO hitting a remote Modified line: HITM for stores too.
		s.stats.HITM++
		s.stats.Writebacks++
		s.stats.Invalidations++
		ln.hitm++
		src := int(ln.owner)
		s.noteInvalidate(src, la)
		ln.sharers = bit
		ln.owner = int8(core)
		ln.dirty = true
		s.noteFill(core, la)
		return Result{Latency: LatHITM + s.hitmPenalty(core, src), HITM: true, Source: src}
	case holds:
		// Shared locally: upgrade, invalidating other sharers.
		s.stats.Upgrades++
		s.invalidateOthers(ln, core, la)
		ln.sharers = bit
		ln.owner = int8(core)
		ln.dirty = true
		return Result{Latency: LatUpgrade}
	case ln.sharers != 0:
		// Clean copies elsewhere: invalidate and take ownership.
		s.stats.LLCHits++
		s.invalidateOthers(ln, core, la)
		ln.sharers = bit
		ln.owner = int8(core)
		ln.dirty = true
		s.noteFill(core, la)
		return Result{Latency: LatLLC + s.fillPenalty(core, la)}
	default:
		s.stats.DRAMFills++
		ln.sharers = bit
		ln.owner = int8(core)
		ln.dirty = true
		s.noteFill(core, la)
		return Result{Latency: LatDRAM + s.fillPenalty(core, la)}
	}
}

// CheckSWMR verifies the single-writer/multiple-reader invariant over every
// line and returns an error describing the first violation. Used by property
// tests.
func (s *System) CheckSWMR() error {
	for bi, b := range s.blocks {
		if b == nil {
			continue
		}
		for i := range b {
			ln := &b[i]
			la := (uint64(bi)*blockLines + uint64(i)) * LineSize
			if ln.dirty {
				if ln.owner < 0 {
					return fmt.Errorf("cache: line 0x%x dirty without owner", la)
				}
				if ln.sharers != 1<<uint(ln.owner) {
					return fmt.Errorf("cache: line 0x%x modified by core %d but sharer mask %b", la, ln.owner, ln.sharers)
				}
			}
			if ln.owner >= 0 && ln.sharers&(1<<uint(ln.owner)) == 0 {
				return fmt.Errorf("cache: line 0x%x owner %d not a sharer", la, ln.owner)
			}
		}
	}
	return nil
}

// invalidateOthers removes every core but `core` from the line's sharer
// set, counting the invalidations and updating residence tracking.
func (s *System) invalidateOthers(ln *line, core int, la uint64) {
	others := ln.sharers &^ (1 << uint(core))
	s.stats.Invalidations += uint64(popcount(others))
	if s.capacity != 0 {
		for c := 0; others != 0 && c < s.numCores; c++ {
			if others&(1<<uint(c)) != 0 {
				s.noteInvalidate(c, la)
				others &^= 1 << uint(c)
			}
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
