package cache

// Latency model, in CPU cycles at the simulated clock (3.4 GHz, matching the
// paper's 4-core Haswell repair machine). These constants are the calibration
// surface of the whole reproduction: every experiment's absolute numbers are
// downstream of this file, while the qualitative shapes (who wins, crossover
// points) are robust to reasonable changes here.
const (
	// LatL1Hit is a load/store hit in the local private cache.
	LatL1Hit = 4
	// LatLLC is a miss served by the shared LLC or a clean remote copy.
	LatLLC = 40
	// LatHITM is a miss served by a remote private cache holding the line
	// Modified: the serialized writeback + transfer that makes false sharing
	// an order-of-magnitude slowdown (paper §1).
	LatHITM = 150
	// LatDRAM is a miss served by memory.
	LatDRAM = 220
	// LatUpgrade is a store to a Shared line: ownership upgrade and remote
	// invalidations.
	LatUpgrade = 40
	// LatAtomicExtra is the added cost of a locked RMW operation.
	LatAtomicExtra = 24
	// LatStream is the amortized per-line cost of prefetched sequential
	// streaming over bulk data.
	LatStream = 6
)

// Cross-socket penalties, applied only when SetTopology configures more
// than one socket (topology.go). Magnitudes follow published QPI/UPI
// numbers: a remote HITM roughly 1.6x a local one, a remote-node fill
// roughly 60 cycles over the local path.
const (
	// LatRemoteHITM is added to LatHITM when the Modified owner sits on a
	// different socket than the requester.
	LatRemoteHITM = 90
	// LatRemoteFill is added to LatLLC/LatDRAM when the line's home node
	// is a different socket than the requester's.
	LatRemoteFill = 60
)

// ClockHz is the simulated core frequency.
const ClockHz = 3_400_000_000

// LineSize is the coherence granularity in bytes.
const LineSize = 64

// Energy model, picojoules per event, for the Stats.EnergyMicroJ estimate
// (magnitudes from published CACTI-class numbers; only ratios matter here).
const (
	EnergyL1   = 10
	EnergyLLC  = 250
	EnergyHITM = 1200
	EnergyDRAM = 4000
)
