package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	s := New(4)
	r := s.Access(0, 0x1000, 8, false, false)
	if r.Latency != LatDRAM || r.HITM {
		t.Fatalf("cold miss: %+v", r)
	}
	r = s.Access(0, 0x1000, 8, false, false)
	if r.Latency != LatL1Hit {
		t.Fatalf("warm hit: %+v", r)
	}
	if s.StateOf(0, 0x1000) != Exclusive {
		t.Errorf("state after clean fill: %v, want E", s.StateOf(0, 0x1000))
	}
}

func TestWriteMakesModified(t *testing.T) {
	s := New(2)
	s.Access(0, 0x40, 8, true, false)
	if st := s.StateOf(0, 0x40); st != Modified {
		t.Fatalf("state after write: %v, want M", st)
	}
}

func TestHITMOnRemoteModifiedLoad(t *testing.T) {
	s := New(2)
	var events []HITMEvent
	s.OnHITM(func(e HITMEvent) { events = append(events, e) })
	s.Access(0, 0x40, 8, true, false) // core 0 dirties the line
	r := s.Access(1, 0x44, 4, false, false)
	if !r.HITM || r.Source != 0 || r.Latency != LatHITM {
		t.Fatalf("expected HITM from core 0: %+v", r)
	}
	if len(events) != 1 || events[0].Core != 1 || events[0].Source != 0 || events[0].Write {
		t.Fatalf("HITM event: %+v", events)
	}
	// After the writeback both cores share the clean line.
	if s.StateOf(0, 0x40) != Shared || s.StateOf(1, 0x40) != Shared {
		t.Errorf("post-HITM states: %v/%v, want S/S", s.StateOf(0, 0x40), s.StateOf(1, 0x40))
	}
}

func TestHITMOnRemoteModifiedStore(t *testing.T) {
	s := New(2)
	var events []HITMEvent
	s.OnHITM(func(e HITMEvent) { events = append(events, e) })
	s.Access(0, 0x80, 8, true, false)
	r := s.Access(1, 0x88, 8, true, false)
	if !r.HITM {
		t.Fatalf("store to remote-M line should HITM: %+v", r)
	}
	if len(events) != 1 || !events[0].Write {
		t.Fatalf("store HITM event: %+v", events)
	}
	if s.StateOf(1, 0x80) != Modified || s.StateOf(0, 0x80) != Invalid {
		t.Error("ownership should transfer to core 1")
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	// Two cores writing disjoint bytes of one line: every access after the
	// first is a HITM — the pathology TMI exists to repair.
	s := New(2)
	for i := 0; i < 100; i++ {
		s.Access(0, 0x100, 8, true, false)
		s.Access(1, 0x108, 8, true, false)
	}
	st := s.Stats()
	if st.HITM < 198 {
		t.Errorf("ping-pong should HITM every round trip: got %d", st.HITM)
	}
	if got := s.HITMForLine(0x100); got != st.HITM {
		t.Errorf("per-line HITM %d != total %d", got, st.HITM)
	}
}

func TestDistinctLinesDoNotContend(t *testing.T) {
	s := New(2)
	for i := 0; i < 100; i++ {
		s.Access(0, 0x100, 8, true, false)
		s.Access(1, 0x140, 8, true, false) // next line
	}
	if st := s.Stats(); st.HITM != 0 {
		t.Errorf("disjoint lines must not HITM: got %d", st.HITM)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	s := New(3)
	s.Access(0, 0x200, 8, false, false)
	s.Access(1, 0x200, 8, false, false)
	s.Access(2, 0x200, 8, false, false)
	r := s.Access(0, 0x200, 8, true, false)
	if r.Latency != LatUpgrade {
		t.Fatalf("upgrade latency %d, want %d", r.Latency, LatUpgrade)
	}
	if s.StateOf(1, 0x200) != Invalid || s.StateOf(2, 0x200) != Invalid {
		t.Error("upgrade must invalidate other sharers")
	}
	if s.Stats().Invalidations != 2 {
		t.Errorf("invalidations %d, want 2", s.Stats().Invalidations)
	}
}

func TestCrossLineAccessSplits(t *testing.T) {
	s := New(1)
	r := s.Access(0, LineSize-4, 8, false, false)
	if r.Latency != 2*LatDRAM {
		t.Errorf("straddling access latency %d, want %d", r.Latency, 2*LatDRAM)
	}
}

func TestAtomicExtraCost(t *testing.T) {
	s := New(1)
	r := s.Access(0, 0x40, 8, true, true)
	if r.Latency != LatDRAM+LatAtomicExtra {
		t.Errorf("atomic cold store %d, want %d", r.Latency, LatDRAM+LatAtomicExtra)
	}
}

func TestExclusiveSilentUpgrade(t *testing.T) {
	s := New(2)
	s.Access(0, 0x40, 8, false, false) // E
	r := s.Access(0, 0x40, 8, true, false)
	if r.Latency != LatL1Hit {
		t.Errorf("E->M should be silent: latency %d", r.Latency)
	}
	if s.StateOf(0, 0x40) != Modified {
		t.Error("state should be M")
	}
}

// Property: the SWMR invariant holds after any random access sequence.
func TestQuickSWMR(t *testing.T) {
	check := func(seed int64) bool {
		s := New(8)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			core := rng.Intn(8)
			addr := uint64(rng.Intn(16)) * 8 // 2 lines, heavy contention
			s.Access(core, addr, 8, rng.Intn(2) == 0, rng.Intn(8) == 0)
		}
		return s.CheckSWMR() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: HITM is symmetric with dirty-remote state — an access reports
// HITM iff some other core held the line Modified at that instant. We track
// a model of "who last wrote" to validate.
func TestQuickHITMMatchesModel(t *testing.T) {
	check := func(seed int64) bool {
		s := New(4)
		rng := rand.New(rand.NewSource(seed))
		lastWriter := map[uint64]int{} // line -> core holding it dirty, -1 clean
		for i := 0; i < 1000; i++ {
			core := rng.Intn(4)
			line := uint64(rng.Intn(4)) * LineSize
			write := rng.Intn(2) == 0
			wantHITM := false
			if w, ok := lastWriter[line]; ok && w >= 0 && w != core {
				wantHITM = true
			}
			r := s.Access(core, line, 8, write, false)
			if r.HITM != wantHITM {
				return false
			}
			if write {
				lastWriter[line] = core
			} else if r.HITM {
				lastWriter[line] = -1 // writeback cleaned it
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
