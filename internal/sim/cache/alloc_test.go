package cache

import (
	"testing"

	"repro/internal/raceflag"
)

// Steady-state coherence traffic must not allocate: the directory blocks
// are paid for on first touch, after which hits, HITMs, upgrades and fills
// on warm lines are pure array work. This is the guard that keeps the
// refactor from silently regressing back to map-per-access.
func TestAccessSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race")
	}
	s := New(4)
	// Warm every line the loop touches (allocates directory blocks).
	for c := 0; c < 4; c++ {
		for i := uint64(0); i < 64; i++ {
			s.Access(c, 0x1000+i*LineSize, 8, true, false)
		}
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		c := int(i % 4)
		s.Access(c, 0x1000+(i%64)*LineSize, 8, i%2 == 0, false) // ping-pong: HITM path
		s.Access(c, 0x1000+(i%64)*LineSize, 8, false, false)    // local hit path
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Access allocates %.1f/op, want 0", allocs)
	}
}

// The capacity-bounded configuration reaches an allocation-free steady
// state too once the FIFO ring has grown to its working size.
func TestAccessCapacityAllocsAmortized(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race")
	}
	s := New(2)
	s.SetCapacity(8)
	for i := uint64(0); i < 4096; i++ {
		s.Access(int(i%2), 0x1000+(i%32)*LineSize, 8, true, false)
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Access(int(i%2), 0x1000+(i%8)*LineSize, 8, false, false)
		i++
	})
	if allocs != 0 {
		t.Errorf("warm capacity-mode Access allocates %.1f/op, want 0", allocs)
	}
}
