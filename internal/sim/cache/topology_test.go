package cache

import "testing"

// pingPong drives one store each from two cores at the same line and
// returns the second access's result (the contended one).
func pingPong(s *System, phys uint64) Result {
	s.Access(0, phys, 8, true, false)
	return s.Access(1, phys, 8, true, false)
}

func TestFlatDefaultUnchangedByZeroTopology(t *testing.T) {
	a := New(4)
	b := New(4)
	if err := b.SetTopology(Topology{Sockets: 1}); err != nil {
		t.Fatalf("SetTopology(1): %v", err)
	}
	for i := 0; i < 100; i++ {
		phys := uint64(0x1000 + (i%7)*8)
		core := i % 4
		write := i%3 == 0
		ra := a.Access(core, phys, 8, write, false)
		rb := b.Access(core, phys, 8, write, false)
		if ra != rb {
			t.Fatalf("access %d: flat %+v != sockets=1 %+v", i, ra, rb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if st := a.Stats(); st.RemoteHITM != 0 || st.RemoteFills != 0 {
		t.Fatalf("flat system counted remote events: %+v", st)
	}
}

func TestSocketPartitionAndHomeInterleave(t *testing.T) {
	s := New(4)
	if err := s.SetTopology(Topology{Sockets: 2}); err != nil {
		t.Fatalf("SetTopology: %v", err)
	}
	wantSock := []int{0, 0, 1, 1}
	for c, want := range wantSock {
		if got := s.SocketOf(c); got != want {
			t.Errorf("SocketOf(%d) = %d, want %d", c, got, want)
		}
	}
	if got := s.FirstCoreOf(1); got != 2 {
		t.Errorf("FirstCoreOf(1) = %d, want 2", got)
	}
	if h0, h1 := s.HomeSocket(0x1000), s.HomeSocket(0x2000); h0 == h1 {
		t.Errorf("adjacent frames share a home socket (%d)", h0)
	}
	if err := s.SetTopology(Topology{Sockets: 5}); err == nil {
		t.Error("SetTopology(5 sockets, 4 cores) accepted")
	}
}

func TestRemoteHITMPaysInterconnectPenalty(t *testing.T) {
	local := New(4)
	remote := New(4)
	if err := remote.SetTopology(Topology{Sockets: 2}); err != nil {
		t.Fatalf("SetTopology: %v", err)
	}
	// Core 0 dirties the line, core 1 (same socket) then core 3 (other
	// socket) request it.
	const phys = 0x1000
	for _, s := range []*System{local, remote} {
		s.Access(0, phys, 8, true, false)
	}
	sameSock := remote.Access(1, phys, 8, false, false)
	if sameSock.Latency != LatHITM {
		t.Fatalf("intra-socket HITM latency %d, want %d", sameSock.Latency, LatHITM)
	}
	local.Access(1, phys, 8, false, false)

	// Re-dirty from core 0, then request from the far socket.
	local.Access(0, phys, 8, true, false)
	remote.Access(0, phys, 8, true, false)
	far := remote.Access(3, phys, 8, false, false)
	near := local.Access(3, phys, 8, false, false)
	if !far.HITM || !near.HITM {
		t.Fatalf("expected HITM on both systems (far %+v, near %+v)", far, near)
	}
	if want := near.Latency + LatRemoteHITM; far.Latency != want {
		t.Errorf("cross-socket HITM latency %d, want %d", far.Latency, want)
	}
	if st := remote.Stats(); st.RemoteHITM != 1 {
		t.Errorf("RemoteHITM = %d, want 1", st.RemoteHITM)
	}
}

func TestRemoteHomeFillPenalty(t *testing.T) {
	// Adjacent frames home on alternating sockets; core 0 (socket 0)
	// cold-fills one of each.
	s2 := New(4)
	if err := s2.SetTopology(Topology{Sockets: 2}); err != nil {
		t.Fatal(err)
	}
	var localLat, remoteLat int64
	for _, phys := range []uint64{0x1000, 0x2000} {
		r := s2.Access(0, phys, 8, false, false)
		if s2.HomeSocket(phys) == s2.SocketOf(0) {
			localLat = r.Latency
		} else {
			remoteLat = r.Latency
		}
	}
	if localLat != LatDRAM {
		t.Errorf("local-home DRAM fill latency %d, want %d", localLat, LatDRAM)
	}
	if want := int64(LatDRAM + LatRemoteFill); remoteLat != want {
		t.Errorf("remote-home DRAM fill latency %d, want %d", remoteLat, want)
	}
	if st := s2.Stats(); st.RemoteFills != 1 {
		t.Errorf("RemoteFills = %d, want 1", st.RemoteFills)
	}
}

func TestIsolateLineStopsPingPong(t *testing.T) {
	s := New(2)
	const phys = 0x3000
	// Establish ping-pong: the second store HITMs.
	if r := pingPong(s, phys); !r.HITM {
		t.Fatalf("expected HITM before isolation, got %+v", r)
	}
	before := s.Stats().HITM
	s.IsolateLine(phys + 8) // any address within the line
	s.IsolateLine(phys)     // idempotent
	if got := s.IsolatedLines(); got != 1 {
		t.Fatalf("IsolatedLines = %d, want 1", got)
	}
	// Post-isolation: each core takes one private fill, then pure L1 hits;
	// no HITM ever again on this line.
	for i := 0; i < 20; i++ {
		for core := 0; core < 2; core++ {
			if r := s.Access(core, phys, 8, true, false); r.HITM {
				t.Fatalf("HITM on isolated line (iter %d core %d)", i, core)
			}
		}
	}
	if got := s.Stats().HITM; got != before {
		t.Errorf("HITM count grew %d -> %d after isolation", before, got)
	}
	if err := s.CheckSWMR(); err != nil {
		t.Errorf("SWMR violated: %v", err)
	}
}
