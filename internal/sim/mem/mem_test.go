package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newSpace(t *testing.T, pages int) (*Memory, *File, *AddrSpace) {
	t.Helper()
	m := NewMemory(PageSize4K)
	f := m.NewFile("shm")
	as := NewAddrSpace(m)
	as.Map(0x1000_0000, pages, f, 0, false, ProtRW)
	return m, f, as
}

func TestSharedMappingReadWrite(t *testing.T) {
	_, _, as := newSpace(t, 4)
	tr, fault := as.Translate(0x1000_0042, true)
	if fault != nil {
		t.Fatalf("unexpected fault: %v", fault)
	}
	if !tr.FirstTouch {
		t.Error("first access should be a first touch")
	}
	StoreUint(tr, 4, 0xdeadbeef)
	tr2, _ := as.Translate(0x1000_0042, false)
	if tr2.FirstTouch {
		t.Error("second access should not be a first touch")
	}
	if got := LoadUint(tr2, 4); got != 0xdeadbeef {
		t.Errorf("read back 0x%x, want 0xdeadbeef", got)
	}
}

func TestTwoSpacesShareFilePages(t *testing.T) {
	m, f, as1 := newSpace(t, 2)
	as2 := NewAddrSpace(m)
	as2.Map(0x1000_0000, 2, f, 0, false, ProtRW)

	tr1, _ := as1.Translate(0x1000_0100, true)
	StoreUint(tr1, 8, 42)
	tr2, _ := as2.Translate(0x1000_0100, false)
	if got := LoadUint(tr2, 8); got != 42 {
		t.Errorf("shared mapping: space2 read %d, want 42", got)
	}
	if tr1.Phys != tr2.Phys {
		t.Errorf("shared mappings should alias: 0x%x vs 0x%x", tr1.Phys, tr2.Phys)
	}
}

func TestPrivateCOWIsolatesWrites(t *testing.T) {
	m, f, shared := newSpace(t, 2)
	// Write initial data via the shared view.
	tr, _ := shared.Translate(0x1000_0000, true)
	StoreUint(tr, 8, 7)

	priv := NewAddrSpace(m)
	priv.Map(0x1000_0000, 2, f, 0, true, ProtRW)

	// Private read sees file contents before any write.
	rp, _ := priv.Translate(0x1000_0000, false)
	if got := LoadUint(rp, 8); got != 7 {
		t.Fatalf("private read before COW: %d, want 7", got)
	}
	// Private write copies.
	wp, fault := priv.Translate(0x1000_0000, true)
	if fault != nil {
		t.Fatalf("fault: %v", fault)
	}
	if !wp.CowCopied {
		t.Error("first private write should COW")
	}
	StoreUint(wp, 8, 99)
	// Shared view unchanged.
	rs, _ := shared.Translate(0x1000_0000, false)
	if got := LoadUint(rs, 8); got != 7 {
		t.Errorf("shared view sees %d after private write, want 7", got)
	}
	// Physical addresses now differ: no false sharing possible.
	if rs.Phys == wp.Phys {
		t.Error("COW pages should have distinct physical addresses")
	}
}

func TestProtWriteFault(t *testing.T) {
	m, f, _ := newSpace(t, 1)
	ro := NewAddrSpace(m)
	ro.Map(0x1000_0000, 1, f, 0, true, ProtRead)
	_, fault := ro.Translate(0x1000_0008, true)
	if fault == nil || fault.Kind != FaultProtWrite {
		t.Fatalf("want prot-write fault, got %v", fault)
	}
	// Reads still fine.
	if _, fault := ro.Translate(0x1000_0008, false); fault != nil {
		t.Fatalf("read should not fault: %v", fault)
	}
}

func TestUnmappedFault(t *testing.T) {
	_, _, as := newSpace(t, 1)
	_, fault := as.Translate(0x9000_0000, false)
	if fault == nil || fault.Kind != FaultUnmapped {
		t.Fatalf("want unmapped fault, got %v", fault)
	}
}

func TestProtectTransitions(t *testing.T) {
	m, f, _ := newSpace(t, 1)
	as := NewAddrSpace(m)
	as.Map(0x1000_0000, 1, f, 0, false, ProtRW)
	// Flip to private read-only (PTSB arming).
	if err := as.Protect(0x1000_0000, 1, true, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, fault := as.Translate(0x1000_0000, true); fault == nil {
		t.Fatal("write after arming should fault")
	}
	// Grant write: next write COWs.
	if err := as.Protect(0x1000_0000, 1, true, ProtRW); err != nil {
		t.Fatal(err)
	}
	tr, fault := as.Translate(0x1000_0000, true)
	if fault != nil || !tr.CowCopied {
		t.Fatalf("expected COW write, got tr=%+v fault=%v", tr, fault)
	}
	StoreUint(tr, 1, 0xAA)
	// Back to shared: copy discarded, shared bytes visible.
	if err := as.Protect(0x1000_0000, 1, false, ProtRW); err != nil {
		t.Fatal(err)
	}
	tr2, _ := as.Translate(0x1000_0000, false)
	if got := LoadUint(tr2, 1); got == 0xAA {
		t.Error("shared view must not see discarded private write")
	}
}

func TestDropCopyReprotects(t *testing.T) {
	m, f, _ := newSpace(t, 1)
	as := NewAddrSpace(m)
	as.Map(0x1000_0000, 1, f, 0, true, ProtRW)
	tr, _ := as.Translate(0x1000_0000, true)
	StoreUint(tr, 8, 5)
	as.DropCopy(0x1000_0000)
	mp := as.MappingAt(0x1000_0000)
	if mp.Copied != nil {
		t.Error("DropCopy should discard the private copy")
	}
	if mp.Prot&ProtWrite != 0 {
		t.Error("DropCopy should re-protect a private page read-only")
	}
}

func TestCloneIsForkLike(t *testing.T) {
	m, f, as := newSpace(t, 2)
	tr, _ := as.Translate(0x1000_0000, true)
	StoreUint(tr, 8, 1234)
	child := as.Clone()
	ct, _ := child.Translate(0x1000_0000, false)
	if got := LoadUint(ct, 8); got != 1234 {
		t.Errorf("child read %d, want 1234", got)
	}
	// Both map the same file pages (shared mapping clones stay shared).
	at, _ := as.Translate(0x1000_0000, false)
	if at.Phys != ct.Phys {
		t.Error("cloned shared mappings should alias the parent")
	}
	_ = m
	_ = f
}

func TestClonePrivateCopiesAreIndependent(t *testing.T) {
	m, f, _ := newSpace(t, 1)
	as := NewAddrSpace(m)
	as.Map(0x1000_0000, 1, f, 0, true, ProtRW)
	tr, _ := as.Translate(0x1000_0000, true)
	StoreUint(tr, 8, 11)
	child := as.Clone()
	ctr, _ := child.Translate(0x1000_0000, true)
	StoreUint(ctr, 8, 22)
	ptr, _ := as.Translate(0x1000_0000, false)
	if got := LoadUint(ptr, 8); got != 11 {
		t.Errorf("parent sees %d after child write, want 11", got)
	}
}

func TestBulkRegionAccounting(t *testing.T) {
	m := NewMemory(PageSize4K)
	as := NewAddrSpace(m)
	const gb = 1 << 30
	r := as.MapBulk(0x4000_0000, gb)
	as.Memory().Reserve(gb)
	if m.AccountedBytes() != gb {
		t.Errorf("accounted %d, want %d", m.AccountedBytes(), gb)
	}
	if m.MaterializedPages() != 0 {
		t.Error("bulk regions must not materialize pages")
	}
	if got := as.BulkAt(0x4000_0000 + 12345); got != r {
		t.Error("BulkAt should find the region")
	}
	if as.BulkAt(0x3fff_ffff) != nil {
		t.Error("BulkAt out of range should be nil")
	}
}

func TestReadWriteBytesCrossPage(t *testing.T) {
	_, _, as := newSpace(t, 2)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	addr := uint64(0x1000_0000 + PageSize4K - 50)
	if err := as.WriteBytes(addr, data); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadBytes(addr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page read-back mismatch")
	}
}

func TestHugePageSize(t *testing.T) {
	m := NewMemory(PageSize2M)
	f := m.NewFile("huge")
	as := NewAddrSpace(m)
	as.Map(0, 1, f, 0, false, ProtRW)
	tr, fault := as.Translate(PageSize2M-8, true)
	if fault != nil {
		t.Fatal(fault)
	}
	StoreUint(tr, 8, 9)
	if got := m.AccountedBytes(); got != PageSize2M {
		t.Errorf("accounted %d, want one huge page", got)
	}
}

// Property: read-after-write is exact within one address space, for random
// (addr, size, value) sequences over a small region, including across
// private COW transitions.
func TestQuickReadAfterWrite(t *testing.T) {
	const pages = 4
	check := func(seed int64) bool {
		m := NewMemory(PageSize4K)
		f := m.NewFile("shm")
		as := NewAddrSpace(m)
		as.Map(0, pages, f, 0, false, ProtRW)
		rng := rand.New(rand.NewSource(seed))
		model := make(map[uint64]byte)
		for i := 0; i < 500; i++ {
			sizes := []int{1, 2, 4, 8}
			size := sizes[rng.Intn(len(sizes))]
			addr := uint64(rng.Intn(pages*PageSize4K - size))
			addr &^= uint64(size - 1) // aligned
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				tr, fault := as.Translate(addr, true)
				if fault != nil {
					return false
				}
				StoreUint(tr, size, v)
				for b := 0; b < size; b++ {
					model[addr+uint64(b)] = byte(v >> (8 * b))
				}
			} else {
				tr, fault := as.Translate(addr, false)
				if fault != nil {
					return false
				}
				v := LoadUint(tr, size)
				for b := 0; b < size; b++ {
					if byte(v>>(8*b)) != model[addr+uint64(b)] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: fork preserves bytes — a clone reads exactly what the parent
// wrote, for random writes.
func TestQuickClonePreservesBytes(t *testing.T) {
	check := func(seed int64) bool {
		m := NewMemory(PageSize4K)
		f := m.NewFile("shm")
		as := NewAddrSpace(m)
		as.Map(0, 2, f, 0, true, ProtRW)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			addr := uint64(rng.Intn(2*PageSize4K-8)) &^ 7
			tr, fault := as.Translate(addr, true)
			if fault != nil {
				return false
			}
			StoreUint(tr, 8, rng.Uint64())
		}
		child := as.Clone()
		for a := uint64(0); a < 2*PageSize4K; a += 8 {
			pt, _ := as.Translate(a, false)
			ct, _ := child.Translate(a, false)
			if LoadUint(pt, 8) != LoadUint(ct, 8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
