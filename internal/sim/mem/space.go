package mem

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/sim/intern"
)

// Prot is a page protection: a combination of read and write permission.
type Prot uint8

// Protection bits.
const (
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtRW         = ProtRead | ProtWrite
)

func (p Prot) String() string {
	s := [2]byte{'-', '-'}
	if p&ProtRead != 0 {
		s[0] = 'r'
	}
	if p&ProtWrite != 0 {
		s[1] = 'w'
	}
	return string(s[:])
}

// FaultKind distinguishes the ways a memory access can trap.
type FaultKind uint8

// Fault kinds.
const (
	FaultUnmapped  FaultKind = iota // no mapping covers the address
	FaultProtWrite                  // write to a page without write permission
	FaultProtRead                   // read from a page without read permission
)

// Fault describes a trapping access. It is delivered to the runtime's fault
// handler, which may repair the mapping (e.g. PTSB copy-on-write) and retry.
type Fault struct {
	Addr  uint64
	Write bool
	Kind  FaultKind
}

func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("mem: fault (%v) on %s of 0x%x", f.Kind, op, f.Addr)
}

func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultProtWrite:
		return "prot-write"
	case FaultProtRead:
		return "prot-read"
	}
	return "unknown"
}

// Mapping is one virtual page's mapping within an address space. A zero
// Mapping (File == nil) marks an unmapped slot.
type Mapping struct {
	File     *File
	FilePage int
	Private  bool // private (copy-on-write) vs shared
	Prot     Prot
	// Copied is the private COW copy, nil until the first private write.
	Copied *Page
	// Touched records whether this space has faulted the page in at all
	// (used to charge first-touch fault costs).
	Touched bool
	// backing caches the resolved File.Page(FilePage) so the access fast
	// path never re-enters the file's page map (and its lock). Resolved on
	// first translation; a remap writes a fresh Mapping, clearing it.
	backing *Page
}

// filePage returns the mapping's backing file page, resolving and caching it
// on first use.
func (mp *Mapping) filePage() *Page {
	p := mp.backing
	if p == nil {
		p = mp.File.Page(mp.FilePage)
		mp.backing = p
	}
	return p
}

// BulkRegion models a large data range (e.g. a multi-GB input array) at
// region granularity: it supports streaming-access accounting (page faults,
// footprint) but not byte-level data. Byte-level loads and stores inside a
// bulk region are a programming error in a workload.
type BulkRegion struct {
	Start, End uint64 // virtual byte range [Start, End)

	// faulted tracks which pages have been touched, one bit per page
	// (lazily sized at first use, when the page size becomes known).
	faulted  []uint64
	pageSize uint64
}

// TouchRange marks the pages covering [addr, addr+n) as faulted and returns
// how many of them were new — the page faults this access incurs.
func (r *BulkRegion) TouchRange(addr, n, pageSize uint64) (newPages int64) {
	if n == 0 {
		return 0
	}
	if r.faulted == nil || r.pageSize != pageSize {
		r.pageSize = pageSize
		pages := (r.End - r.Start + pageSize - 1) / pageSize
		r.faulted = make([]uint64, (pages+63)/64)
	}
	first := (addr - r.Start) / pageSize
	last := (addr + n - 1 - r.Start) / pageSize
	for p := first; p <= last; p++ {
		w, b := p/64, p%64
		if int(w) >= len(r.faulted) {
			break
		}
		if r.faulted[w]&(1<<b) == 0 {
			r.faulted[w] |= 1 << b
			newPages++
		}
	}
	return newPages
}

// AddrSpace is a per-process virtual address space. Mappings live in a flat
// slice indexed by the run-wide interned PageID (see intern.Table): page
// lookup on the access path is two array indexes, and every address space of
// a run shares one addr→PageID assignment, so PTSB and detector state keyed
// by PageID is meaningful across spaces.
type AddrSpace struct {
	mem      *Memory
	pageSize int
	tab      *intern.Table
	slots    []Mapping     // PageID -> mapping (File == nil: unmapped here)
	bulk     []*BulkRegion // sorted by Start
}

// NewAddrSpace returns an empty address space over m.
func NewAddrSpace(m *Memory) *AddrSpace {
	return &AddrSpace{mem: m, pageSize: m.pageSize, tab: m.pageTable}
}

// PageSize reports the page size of the space.
func (as *AddrSpace) PageSize() int { return as.pageSize }

// Memory returns the backing physical memory manager.
func (as *AddrSpace) Memory() *Memory { return as.mem }

// Table returns the run-wide page interning table the space resolves
// through.
func (as *AddrSpace) Table() *intern.Table { return as.tab }

// slot returns the mapping slot for addr, or nil when no mapping covers it.
// The pointer stays valid until the next Map call (which may grow the slot
// slice); callers must not retain it across mapping changes.
func (as *AddrSpace) slot(addr uint64) *Mapping {
	id := as.tab.Lookup(addr)
	if id < 0 || int(id) >= len(as.slots) {
		return nil
	}
	mp := &as.slots[id]
	if mp.File == nil {
		return nil
	}
	return mp
}

// Map maps npages virtual pages starting at vaddr (which must be page
// aligned) to consecutive pages of f starting at fpage. Interning the pages
// here — at map time — is what keeps the translation fast path free of any
// hashing: Map is the cold path that pays for it.
func (as *AddrSpace) Map(vaddr uint64, npages int, f *File, fpage int, private bool, prot Prot) {
	if vaddr%uint64(as.pageSize) != 0 {
		panic(fmt.Sprintf("mem: Map of unaligned address 0x%x", vaddr))
	}
	for i := 0; i < npages; i++ {
		id := as.tab.Intern(vaddr + uint64(i)*uint64(as.pageSize))
		as.slots = intern.Grow(as.slots, id)
		as.slots[id] = Mapping{File: f, FilePage: fpage + i, Private: private, Prot: prot}
	}
}

// Unmap removes npages mappings starting at vaddr from this space and bumps
// each page's generation in the shared intern table. The generation bump is
// the remap-safety contract: any state cached under the page's PageID
// elsewhere (PTSB protection bits and twins, detector line spans) becomes
// stale atomically, so a later Map of the same range starts clean instead of
// inheriting another mapping's repair state. Pages in the range that were
// never mapped are skipped.
func (as *AddrSpace) Unmap(vaddr uint64, npages int) {
	if vaddr%uint64(as.pageSize) != 0 {
		panic(fmt.Sprintf("mem: Unmap of unaligned address 0x%x", vaddr))
	}
	for i := 0; i < npages; i++ {
		id := as.tab.Lookup(vaddr + uint64(i)*uint64(as.pageSize))
		if id < 0 || int(id) >= len(as.slots) || as.slots[id].File == nil {
			continue
		}
		as.slots[id] = Mapping{}
		as.tab.Invalidate(id)
	}
}

// MapBulk registers a bulk region of nbytes at vaddr. The bytes are never
// materialized; the caller accounts them (once, not per space) via
// Memory.Reserve.
func (as *AddrSpace) MapBulk(vaddr, nbytes uint64) *BulkRegion {
	r := &BulkRegion{Start: vaddr, End: vaddr + nbytes}
	as.bulk = append(as.bulk, r)
	sort.Slice(as.bulk, func(i, j int) bool { return as.bulk[i].Start < as.bulk[j].Start })
	return r
}

// BulkAt returns the bulk region containing addr, if any.
func (as *AddrSpace) BulkAt(addr uint64) *BulkRegion {
	i := sort.Search(len(as.bulk), func(i int) bool { return as.bulk[i].End > addr })
	if i < len(as.bulk) && as.bulk[i].Start <= addr {
		return as.bulk[i]
	}
	return nil
}

// Protect changes the protection and privacy of npages pages at vaddr.
// Changing a page from private back to shared discards any COW copy.
func (as *AddrSpace) Protect(vaddr uint64, npages int, private bool, prot Prot) error {
	for i := 0; i < npages; i++ {
		mp := as.slot(vaddr + uint64(i)*uint64(as.pageSize))
		if mp == nil {
			return &Fault{Addr: vaddr + uint64(i*as.pageSize), Kind: FaultUnmapped}
		}
		mp.Private = private
		mp.Prot = prot
		if !private {
			mp.Copied = nil
		}
	}
	return nil
}

// MappingAt returns the mapping covering addr, or nil. The pointer is
// invalidated by the next Map call; do not retain it.
func (as *AddrSpace) MappingAt(addr uint64) *Mapping {
	return as.slot(addr)
}

// DropCopy discards the private COW copy of the page containing addr, so
// subsequent reads see the shared file page and the next private write
// faults again. This is the "mark read-only again" step of a PTSB commit.
func (as *AddrSpace) DropCopy(addr uint64) {
	if mp := as.slot(addr); mp != nil {
		mp.Copied = nil
		if mp.Private {
			mp.Prot &^= ProtWrite
		}
	}
}

// Translation is the result of a successful address translation.
type Translation struct {
	Page       *Page  // the physical page the access hits
	Phys       uint64 // physical byte address (PhysID*pageSize + offset)
	Offset     int    // offset within the page
	FirstTouch bool   // true if this access faulted the page in
	CowCopied  bool   // true if this access performed an implicit COW copy
	Private    bool   // true if the access resolved to a private copy
}

// Translate resolves a virtual address for a read or write. It enforces
// protections, performs implicit copy-on-write for writable private pages,
// and reports first-touch faults for cost accounting. A protection violation
// returns a *Fault for the runtime to handle.
//
// This is the hottest function in the simulator: the steady-state path is
// one radix lookup, one slot index and the protection checks — no map
// access, no file lock, no allocation.
func (as *AddrSpace) Translate(addr uint64, write bool) (Translation, *Fault) {
	mp := as.slot(addr)
	if mp == nil {
		return Translation{}, &Fault{Addr: addr, Write: write, Kind: FaultUnmapped}
	}
	if write && mp.Prot&ProtWrite == 0 {
		return Translation{}, &Fault{Addr: addr, Write: true, Kind: FaultProtWrite}
	}
	if !write && mp.Prot&ProtRead == 0 {
		return Translation{}, &Fault{Addr: addr, Kind: FaultProtRead}
	}
	var t Translation
	if !mp.Touched {
		mp.Touched = true
		t.FirstTouch = true
	}
	page := mp.filePage()
	if mp.Private {
		if mp.Copied == nil && write {
			// Implicit COW: writable private page, first write.
			cp := as.mem.NewAnonPage()
			copy(cp.Data, page.Data)
			mp.Copied = cp
			t.CowCopied = true
		}
		if mp.Copied != nil {
			page = mp.Copied
			t.Private = true
		}
	}
	off := int(addr % uint64(as.pageSize))
	t.Page = page
	t.Offset = off
	t.Phys = page.PhysID*uint64(as.pageSize) + uint64(off)
	return t, nil
}

// Clone returns a copy of the address space, as fork(2) would create: all
// mappings are duplicated; private COW copies are duplicated eagerly (the
// caller accounts the cost). Bulk regions are shared by reference since they
// carry no data.
func (as *AddrSpace) Clone() *AddrSpace {
	n := NewAddrSpace(as.mem)
	n.slots = append([]Mapping(nil), as.slots...)
	for i := range n.slots {
		if cp := n.slots[i].Copied; cp != nil {
			dup := as.mem.NewAnonPage()
			copy(dup.Data, cp.Data)
			n.slots[i].Copied = dup
		}
	}
	n.bulk = append(n.bulk, as.bulk...)
	return n
}

// ReadBytes copies n bytes at addr into a new slice, crossing pages as
// needed. It bypasses protection (runtime/debug use; simulated instructions
// go through Translate).
func (as *AddrSpace) ReadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; {
		mp := as.slot(addr + uint64(i))
		if mp == nil {
			return nil, &Fault{Addr: addr + uint64(i), Kind: FaultUnmapped}
		}
		page := mp.filePage()
		if mp.Private && mp.Copied != nil {
			page = mp.Copied
		}
		off := int((addr + uint64(i)) % uint64(as.pageSize))
		c := copy(out[i:], page.Data[off:])
		i += c
	}
	return out, nil
}

// WriteBytes writes b at addr, crossing pages as needed, bypassing
// protection (used by setup code, not by simulated instructions).
func (as *AddrSpace) WriteBytes(addr uint64, b []byte) error {
	for i := 0; i < len(b); {
		mp := as.slot(addr + uint64(i))
		if mp == nil {
			return &Fault{Addr: addr + uint64(i), Write: true, Kind: FaultUnmapped}
		}
		page := mp.filePage()
		if mp.Private && mp.Copied != nil {
			page = mp.Copied
		}
		off := int((addr + uint64(i)) % uint64(as.pageSize))
		c := copy(page.Data[off:], b[i:])
		i += c
	}
	return nil
}

// LoadUint reads a little-endian unsigned integer of the given width (1, 2,
// 4 or 8 bytes) from the translated page. The access must not cross a page
// boundary.
func LoadUint(t Translation, size int) uint64 {
	d := t.Page.Data[t.Offset : t.Offset+size]
	switch size {
	case 1:
		return uint64(d[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(d))
	case 4:
		return uint64(binary.LittleEndian.Uint32(d))
	case 8:
		return binary.LittleEndian.Uint64(d)
	}
	panic(fmt.Sprintf("mem: unsupported access size %d", size))
}

// StoreUint writes a little-endian unsigned integer of the given width into
// the translated page.
func StoreUint(t Translation, size int, v uint64) {
	d := t.Page.Data[t.Offset : t.Offset+size]
	switch size {
	case 1:
		d[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(d, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(d, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(d, v)
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", size))
	}
}
