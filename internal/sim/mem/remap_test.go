package mem

import (
	"testing"

	"repro/internal/sim/intern"
)

// Remapping a page must hand out a fresh Mapping: no stale COW copy, no
// stale touched bit, no stale cached file page.
func TestRemapResetsMappingState(t *testing.T) {
	m := NewMemory(PageSize4K)
	f1 := m.NewFile("one")
	f2 := m.NewFile("two")
	as := NewAddrSpace(m)

	as.Map(0x1000, 1, f1, 0, true, ProtRW)
	if _, fault := as.Translate(0x1000, true); fault != nil {
		t.Fatalf("write fault: %v", fault)
	}
	mp := as.MappingAt(0x1000)
	if mp.Copied == nil || !mp.Touched {
		t.Fatal("private write should have created a COW copy and touched the page")
	}

	as.Map(0x1000, 1, f2, 0, false, ProtRead)
	mp = as.MappingAt(0x1000)
	if mp.Copied != nil || mp.Touched || mp.File != f2 {
		t.Fatalf("remap leaked state: %+v", mp)
	}
	tr, fault := as.Translate(0x1000, false)
	if fault != nil {
		t.Fatalf("read fault after remap: %v", fault)
	}
	if !tr.FirstTouch {
		t.Error("remapped page should fault in fresh (FirstTouch)")
	}
	if tr.Page != f2.Page(0) {
		t.Error("remapped page should resolve to the new file's page")
	}
}

// Map must NOT bump the page generation: the allocator re-Maps the whole
// heap range on growth, and existing pages' cached downstream state (twins,
// detector spans) must survive that.
func TestMapPreservesGeneration(t *testing.T) {
	m := NewMemory(PageSize4K)
	f := m.NewFile("heap")
	as := NewAddrSpace(m)

	as.Map(0x1000, 2, f, 0, false, ProtRW)
	id := m.PageTable().Lookup(0x1000)
	if id == intern.None {
		t.Fatal("mapped page not interned")
	}
	g := m.PageTable().Gen(id)
	// Heap growth: re-map a superset of the same range onto the same file.
	as.Map(0x1000, 4, f, 0, false, ProtRW)
	if m.PageTable().Gen(id) != g {
		t.Errorf("Map bumped generation %d -> %d; heap growth would wipe live state", g, m.PageTable().Gen(id))
	}
}

func TestUnmapInvalidatesAndFaults(t *testing.T) {
	m := NewMemory(PageSize4K)
	f := m.NewFile("f")
	as := NewAddrSpace(m)

	as.Map(0x2000, 3, f, 0, false, ProtRW)
	id1 := m.PageTable().Lookup(0x3000)
	g1 := m.PageTable().Gen(id1)

	as.Unmap(0x3000, 1) // middle page only
	if _, fault := as.Translate(0x3000, false); fault == nil || fault.Kind != FaultUnmapped {
		t.Fatalf("unmapped page should fault, got %v", fault)
	}
	// Generation bumps exactly for the unmapped page, invalidating any
	// PageID-keyed state cached elsewhere (ptsb twins, detector spans).
	if m.PageTable().Gen(id1) != g1+1 {
		t.Errorf("Unmap gen = %d, want %d", m.PageTable().Gen(id1), g1+1)
	}
	id0 := m.PageTable().Lookup(0x2000)
	if m.PageTable().Gen(id0) != 0 {
		t.Error("Unmap bumped a neighbouring page's generation")
	}
	// Neighbours still translate.
	if _, fault := as.Translate(0x2000, true); fault != nil {
		t.Errorf("neighbour faulted after partial unmap: %v", fault)
	}
	if _, fault := as.Translate(0x4000, true); fault != nil {
		t.Errorf("neighbour faulted after partial unmap: %v", fault)
	}
}

// Unmap of never-mapped pages is a no-op, and PageIDs survive unmap (the
// identity is permanent; only the generation moves).
func TestUnmapEdgeCases(t *testing.T) {
	m := NewMemory(PageSize4K)
	f := m.NewFile("f")
	as := NewAddrSpace(m)

	as.Unmap(0x9000, 4) // nothing mapped: must not panic

	as.Map(0x9000, 1, f, 0, false, ProtRW)
	id := m.PageTable().Lookup(0x9000)
	as.Unmap(0x9000, 1)
	as.Unmap(0x9000, 1) // double unmap: slot already empty, no extra bump
	if got := m.PageTable().Gen(id); got != 1 {
		t.Errorf("double Unmap generation = %d, want 1", got)
	}
	if m.PageTable().Lookup(0x9000) != id {
		t.Error("PageID must survive unmap")
	}

	// Remap after unmap reuses the same PageID at the new generation.
	as.Map(0x9000, 1, f, 5, false, ProtRead)
	if m.PageTable().Lookup(0x9000) != id {
		t.Error("remap after unmap must reuse the interned PageID")
	}
	tr, fault := as.Translate(0x9000, false)
	if fault != nil {
		t.Fatalf("fault after remap: %v", fault)
	}
	if tr.Page != f.Page(5) {
		t.Error("remap resolves to stale file page")
	}
}

// Unmap in one address space must not disturb another space's mapping of
// the same virtual page — slots are per-space even though the intern table
// is shared. (The generation bump is global by design: remap invalidation
// is conservative.)
func TestUnmapIsPerSpace(t *testing.T) {
	m := NewMemory(PageSize4K)
	f := m.NewFile("f")
	a := NewAddrSpace(m)
	b := NewAddrSpace(m)

	a.Map(0x5000, 1, f, 0, false, ProtRW)
	b.Map(0x5000, 1, f, 0, false, ProtRW)
	a.Unmap(0x5000, 1)

	if _, fault := a.Translate(0x5000, false); fault == nil {
		t.Error("space a should fault after its unmap")
	}
	if _, fault := b.Translate(0x5000, false); fault != nil {
		t.Errorf("space b lost its mapping: %v", fault)
	}
}

// The cached backing page must never go stale: a remap onto a different
// file page replaces the Mapping (and with it the cache).
func TestCachedBackingFollowsRemap(t *testing.T) {
	m := NewMemory(PageSize4K)
	f := m.NewFile("f")
	as := NewAddrSpace(m)

	as.Map(0, 1, f, 0, false, ProtRW)
	tr, _ := as.Translate(0, true)
	StoreUint(tr, 8, 0xdead)

	as.Map(0, 1, f, 1, false, ProtRW)
	tr2, _ := as.Translate(0, false)
	if tr2.Page == tr.Page {
		t.Fatal("translation still resolves to the pre-remap backing page")
	}
	if got := LoadUint(tr2, 8); got != 0 {
		t.Errorf("fresh file page reads %#x, want 0", got)
	}
}
