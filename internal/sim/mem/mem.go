// Package mem implements the simulated physical and virtual memory substrate
// that the rest of the system runs on: physical pages, shared-memory files
// (the analog of shm_open + mmap regions), per-process address spaces with
// shared and private (copy-on-write) mappings, page protections, and page
// faults.
//
// TMI's repair mechanism is entirely a story about memory mappings — the same
// virtual page backed by different physical pages in different processes —
// so this package models mappings at byte fidelity: every simulated load and
// store reads or writes real bytes in a real backing page, which is what lets
// the consistency-model experiments (word tearing, lost atomic updates, stuck
// flags) reproduce for real rather than by assertion.
package mem

import (
	"fmt"
	"sync"

	"repro/internal/sim/intern"
)

// Page sizes supported by the simulated MMU.
const (
	PageSize4K = 4 << 10
	PageSize2M = 2 << 20
	// LineSize is the cache line size used throughout the simulator.
	LineSize = 64
)

// Page is one physical page. PhysID is globally unique and is what the cache
// coherence simulator keys on: two virtual mappings alias (and can falsely
// share) exactly when they resolve to the same PhysID.
type Page struct {
	PhysID uint64
	Data   []byte
}

// Memory is the physical memory manager. It allocates pages for files,
// anonymous regions and COW copies, and keeps the global accounting used by
// the memory-overhead experiments (Figure 8).
type Memory struct {
	mu        sync.Mutex
	pageSize  int
	nextPhys  uint64
	pageCount int    // materialized pages
	reserved  uint64 // nominal bytes reserved (incl. never-touched bulk data)
	files     []*File
	// pageTable interns virtual page addresses for the whole run. All
	// address spaces over this Memory share it, so PageIDs are comparable
	// across processes (the PTSB and detector rely on that).
	pageTable *intern.Table
}

// NewMemory returns a Memory whose files use the given page size
// (PageSize4K or PageSize2M).
func NewMemory(pageSize int) *Memory {
	if pageSize != PageSize4K && pageSize != PageSize2M {
		panic(fmt.Sprintf("mem: unsupported page size %d", pageSize))
	}
	return &Memory{pageSize: pageSize, nextPhys: 1, pageTable: intern.NewTable(pageSize)}
}

// PageSize reports the page size this memory was configured with.
func (m *Memory) PageSize() int { return m.pageSize }

// PageTable returns the run-wide virtual-page interning table.
func (m *Memory) PageTable() *intern.Table { return m.pageTable }

// NewFile creates a shared-memory file (the analog of shm_open). Pages are
// materialized lazily on first touch.
func (m *Memory) NewFile(name string) *File {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &File{mem: m, Name: name, pages: make(map[int]*Page)}
	m.files = append(m.files, f)
	return f
}

// NewAnonPage allocates a standalone physical page (used for COW copies and
// PTSB twins).
func (m *Memory) NewAnonPage() *Page {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.newPageLocked()
}

func (m *Memory) newPageLocked() *Page {
	p := &Page{PhysID: m.nextPhys, Data: make([]byte, m.pageSize)}
	m.nextPhys++
	m.pageCount++
	return p
}

// Reserve records nominal bytes for accounting without materializing pages.
// Bulk workload datasets (tens of GB in the paper) are reserved, streamed
// over with modeled latency, and never materialized on the host.
func (m *Memory) Reserve(bytes uint64) {
	m.mu.Lock()
	m.reserved += bytes
	m.mu.Unlock()
}

// MaterializedPages reports how many physical pages exist on the host.
func (m *Memory) MaterializedPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pageCount
}

// AccountedBytes reports the simulated memory footprint: reserved bulk bytes
// plus all materialized pages.
func (m *Memory) AccountedBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reserved + uint64(m.pageCount)*uint64(m.pageSize)
}

// File is a shared-memory object: a lazily materialized array of physical
// pages that any number of address spaces can map, shared or private.
type File struct {
	mem   *Memory
	Name  string
	mu    sync.Mutex
	pages map[int]*Page
	size  int // highest mapped page index + 1 (nominal length in pages)
}

// Page returns the physical page at index i, materializing it (zeroed) on
// first use.
func (f *File) Page(i int) *Page {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.pages[i]; ok {
		return p
	}
	f.mem.mu.Lock()
	p := f.mem.newPageLocked()
	f.mem.mu.Unlock()
	f.pages[i] = p
	if i >= f.size {
		f.size = i + 1
	}
	return p
}

// Materialized reports whether page i has been touched.
func (f *File) Materialized(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.pages[i]
	return ok
}

// PageSize reports the page size of the file's backing memory.
func (f *File) PageSize() int { return f.mem.pageSize }

// Memory returns the physical memory manager backing the file.
func (f *File) Memory() *Memory { return f.mem }
