// Package intern assigns dense integer identities to the sparse 64-bit
// virtual page addresses the simulator is keyed on everywhere else.
//
// The per-access pipeline (machine → mem translation → cache coherence →
// ptsb protection → detect aggregation) used to walk a map[uint64] at every
// layer for every simulated access. Interning moves all of that hashing to
// the cold path: a page is assigned a small dense PageID exactly once, when
// it is mapped, and every hot structure downstream becomes a PageID-indexed
// slice. Lookup on the access path is two array indexes through a two-level
// radix table — no hashing, no allocation.
//
// Pages also carry a generation counter. Consumers that cache per-page state
// under a PageID (the PTSB's twins and protection bits, the detector's line
// stats) snapshot the generation when they store and compare when they read:
// remapping or unmapping a page bumps the generation, which invalidates all
// downstream state for that PageID in O(1) without enumerating the
// consumers. This is the epoch-reset mechanism that lets hot state live in
// flat slices while keeping remap semantics exact.
package intern

import "fmt"

// PageID is a dense identity for one virtual page base address. IDs are
// assigned contiguously from 0 in interning order and never reused, so they
// index slices directly.
type PageID int32

// None marks "not interned" (the page has never been mapped).
const None PageID = -1

// leafBits sizes a radix leaf: one leaf covers 1<<leafBits consecutive
// virtual pages. 2^14 pages per leaf keeps a leaf at 64 KiB (4-byte entries)
// while the handful of simulated regions (globals, heap, TMI state, libc,
// stacks) touch only a few leaves each.
const leafBits = 14

// Table interns virtual page base addresses. It is owned by one simulated
// run (one mem.Memory) and shared by every address space of that run: all
// spaces agree on the virtual layout, so a single addr→PageID mapping serves
// them all. Table is not safe for concurrent use; like the rest of the
// simulator it relies on the machine's one-token execution discipline.
type Table struct {
	shift uint // log2(page size)
	root  [][]PageID
	addrs []uint64 // PageID -> page base address
	gens  []uint32 // PageID -> generation (bumped on remap/unmap)
}

// NewTable returns an empty table for the given page size (a power of two).
func NewTable(pageSize int) *Table {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("intern: page size %d is not a power of two", pageSize))
	}
	shift := uint(0)
	for 1<<shift != pageSize {
		shift++
	}
	return &Table{shift: shift}
}

// PageSize reports the page size the table was built for.
func (t *Table) PageSize() int { return 1 << t.shift }

// Len reports how many pages have been interned. Valid PageIDs are
// [0, Len()).
func (t *Table) Len() int { return len(t.addrs) }

// Intern returns addr's PageID, assigning the next dense ID on first sight.
// addr may be any byte address within the page. Intern is the cold path:
// it runs at map/allocation time, never per access.
func (t *Table) Intern(addr uint64) PageID {
	vpn := addr >> t.shift
	ri := vpn >> leafBits
	for uint64(len(t.root)) <= ri {
		t.root = append(t.root, nil)
	}
	leaf := t.root[ri]
	if leaf == nil {
		leaf = make([]PageID, 1<<leafBits)
		for i := range leaf {
			leaf[i] = None
		}
		t.root[ri] = leaf
	}
	li := vpn & (1<<leafBits - 1)
	if id := leaf[li]; id != None {
		return id
	}
	id := PageID(len(t.addrs))
	leaf[li] = id
	t.addrs = append(t.addrs, vpn<<t.shift)
	t.gens = append(t.gens, 0)
	return id
}

// Lookup returns addr's PageID, or None if the page was never interned.
// This is the hot path: two array indexes, no allocation.
func (t *Table) Lookup(addr uint64) PageID {
	vpn := addr >> t.shift
	ri := vpn >> leafBits
	if ri >= uint64(len(t.root)) {
		return None
	}
	leaf := t.root[ri]
	if leaf == nil {
		return None
	}
	return leaf[vpn&(1<<leafBits-1)]
}

// Addr returns the page base address of id.
func (t *Table) Addr(id PageID) uint64 { return t.addrs[id] }

// Gen returns id's current generation. State cached under (id, gen) is
// valid only while Gen(id) still equals gen.
func (t *Table) Gen(id PageID) uint32 { return t.gens[id] }

// Invalidate bumps id's generation, logically clearing every consumer's
// cached per-page state for id (twins, protection bits, detector spans) in
// O(1). Called on unmap/remap.
func (t *Table) Invalidate(id PageID) { t.gens[id]++ }

// LineIndex returns the dense index of the cache line containing addr
// within the whole table: PageID * linesPerPage + line-in-page. It is only
// meaningful for line sizes dividing the page size.
func (t *Table) LineIndex(id PageID, addr uint64, lineSize int) int {
	off := int(addr & (uint64(1)<<t.shift - 1))
	return int(id)*(1<<t.shift/lineSize) + off/lineSize
}

// Grow extends a PageID-indexed slice so id is addressable, filling new
// entries with the zero value. The doubling keeps amortized growth cost on
// the cold (interning) path.
func Grow[T any](s []T, id PageID) []T {
	if int(id) < len(s) {
		return s
	}
	n := len(s)*2 + 1
	if n <= int(id) {
		n = int(id) + 1
	}
	ns := make([]T, n)
	copy(ns, s)
	return ns
}
