package intern

import "testing"

func TestInternAssignsDenseIDs(t *testing.T) {
	tab := NewTable(4096)
	a := tab.Intern(0x1000_0000)
	b := tab.Intern(0x1000_1000)
	c := tab.Intern(0x7ff0_0000_0000) // far region: separate radix leaf
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("ids not dense: %d %d %d", a, b, c)
	}
	if got := tab.Intern(0x1000_0abc); got != a {
		t.Errorf("re-intern within page = %d, want %d", got, a)
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d, want 3", tab.Len())
	}
	if tab.Addr(b) != 0x1000_1000 {
		t.Errorf("Addr(b) = %#x", tab.Addr(b))
	}
}

func TestLookupMissesReturnNone(t *testing.T) {
	tab := NewTable(4096)
	tab.Intern(0x1000_0000)
	if got := tab.Lookup(0x1000_1000); got != None {
		t.Errorf("unmapped neighbour = %d, want None", got)
	}
	if got := tab.Lookup(0x7fff_ffff_f000); got != None {
		t.Errorf("address beyond every leaf = %d, want None", got)
	}
	if got := tab.Lookup(0x1000_0fff); got != 0 {
		t.Errorf("byte within interned page = %d, want 0", got)
	}
}

func TestInvalidateBumpsGeneration(t *testing.T) {
	tab := NewTable(4096)
	id := tab.Intern(0x2000_0000)
	g := tab.Gen(id)
	tab.Invalidate(id)
	if tab.Gen(id) != g+1 {
		t.Errorf("Gen after Invalidate = %d, want %d", tab.Gen(id), g+1)
	}
	// The identity survives invalidation; only cached state dies.
	if tab.Lookup(0x2000_0000) != id {
		t.Error("Invalidate must not remove the interning")
	}
}

func TestLineIndex(t *testing.T) {
	tab := NewTable(4096)
	id0 := tab.Intern(0x1000_0000)
	id1 := tab.Intern(0x1000_1000)
	if got := tab.LineIndex(id0, 0x1000_0000, 64); got != 0 {
		t.Errorf("first line of first page = %d", got)
	}
	if got := tab.LineIndex(id0, 0x1000_0fc0, 64); got != 63 {
		t.Errorf("last line of first page = %d", got)
	}
	if got := tab.LineIndex(id1, 0x1000_1040, 64); got != 65 {
		t.Errorf("second line of second page = %d", got)
	}
}

func TestGrow(t *testing.T) {
	var s []int
	s = Grow(s, 0)
	if len(s) < 1 {
		t.Fatal("Grow(0) too short")
	}
	s[0] = 7
	s = Grow(s, PageID(100))
	if len(s) < 101 || s[0] != 7 {
		t.Fatalf("Grow lost data: len=%d s0=%d", len(s), s[0])
	}
}

func BenchmarkLookup(b *testing.B) {
	tab := NewTable(4096)
	for i := 0; i < 64; i++ {
		tab.Intern(0x1000_0000 + uint64(i)*4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab.Lookup(0x1000_0000+uint64(i&63)*4096) == None {
			b.Fatal("miss")
		}
	}
}
