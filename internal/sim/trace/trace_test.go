package trace

import (
	"strings"
	"testing"
)

func TestRecorderCountsAndStores(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(int64(i*100), i%2, KindSync, 0)
	}
	r.Record(700, -1, KindRepair, 0x1000)
	if got := r.Count(KindSync); got != 6 {
		t.Errorf("sync count %d, want 6", got)
	}
	if got := r.Count(KindRepair); got != 1 {
		t.Errorf("repair count %d, want 1", got)
	}
	if len(r.Events()) != 4 {
		t.Errorf("stored %d events, want capacity 4", len(r.Events()))
	}
	if r.Dropped != 3 {
		t.Errorf("dropped %d, want 3", r.Dropped)
	}
}

func TestSummaryContents(t *testing.T) {
	r := NewRecorder(100)
	r.Record(3400, 0, KindSync, 0)
	r.Record(6800, 0, KindCommit, 900)
	r.Record(10200, -1, KindDetectTick, 42)
	s := r.Summary(3.4e9)
	for _, want := range []string{"sync", "commit", "detect-tick", "thread 0", "runtime", "window:"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestEventFormat(t *testing.T) {
	e := Event{At: 3_400_000, TID: 2, Kind: KindTwinFault, Arg: 0x10002000}
	s := e.Format(3.4e9)
	for _, want := range []string{"1.0000ms", "t2", "twin-fault", "0x10002000"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q: %s", want, s)
		}
	}
	rt := Event{At: 0, TID: -1, Kind: KindDetectTick, Arg: 7}
	if !strings.Contains(rt.Format(3.4e9), "rt") {
		t.Error("runtime events format as rt")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d lacks a name", k)
		}
	}
}
