package trace

import (
	"testing"

	"repro/internal/detect"
)

func TestSampleLogWindows(t *testing.T) {
	l := &SampleLog{PageSize: 4096}
	l.TapSample(detect.Sample{TID: 0, Addr: 0x1000, Width: 8})
	l.TapSample(detect.Sample{TID: 1, Addr: 0x1008, Width: 8, Write: true})
	l.TapWindow(0.0001, 100)
	l.TapSample(detect.Sample{TID: 0, Addr: 0x2000, Width: 4})
	l.TapWindow(0.0001, 400)
	l.TapWindow(0.0001, 400) // empty window: a quiet interval

	if l.Len() != 3 || len(l.Windows) != 3 {
		t.Fatalf("Len = %d, windows = %d; want 3 and 3", l.Len(), len(l.Windows))
	}
	if w0 := l.WindowSamples(0); len(w0) != 2 || w0[1].Addr != 0x1008 || !w0[1].Write {
		t.Errorf("window 0 samples: %+v", w0)
	}
	if w1 := l.WindowSamples(1); len(w1) != 1 || w1[0].Addr != 0x2000 {
		t.Errorf("window 1 samples: %+v", w1)
	}
	if w2 := l.WindowSamples(2); len(w2) != 0 {
		t.Errorf("window 2 should be empty: %+v", w2)
	}
	if l.Windows[1].Period != 400 || l.Windows[0].IntervalSec != 0.0001 {
		t.Errorf("window metadata: %+v", l.Windows)
	}
}
