// Package trace records structured runtime events — synchronization
// operations, consistency-region boundaries, PTSB faults and commits,
// detector ticks and repair actions — into a bounded in-memory buffer, and
// summarizes them per thread and per kind.
//
// It is the observability layer behind cmd/tmitrace: where Report.Events
// keeps a short human-readable lifecycle log, the tracer captures every
// instance with timestamps, cheap enough to leave on for whole runs.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a traced event.
type Kind uint8

// Event kinds.
const (
	KindSync Kind = iota // lock/unlock/barrier boundary (PTSB commit point)
	KindRegionEnter
	KindRegionExit
	KindTwinFault
	KindCommit
	KindDetectTick
	KindRepair
	KindTeardown
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindSync:
		return "sync"
	case KindRegionEnter:
		return "region-enter"
	case KindRegionExit:
		return "region-exit"
	case KindTwinFault:
		return "twin-fault"
	case KindCommit:
		return "commit"
	case KindDetectTick:
		return "detect-tick"
	case KindRepair:
		return "repair"
	case KindTeardown:
		return "teardown"
	}
	return "?"
}

// Event is one traced occurrence. Arg's meaning depends on the kind (page
// address for faults/repairs, region kind for regions, cycle cost for
// commits).
type Event struct {
	At   int64 // simulated cycles
	TID  int   // -1 for runtime-level events
	Kind Kind
	Arg  uint64
}

// Recorder buffers events up to a capacity; beyond it, events are counted
// but not stored.
type Recorder struct {
	cap     int
	events  []Event
	Dropped uint64
	counts  [numKinds]uint64
	byTID   map[int]*[numKinds]uint64
}

// NewRecorder creates a recorder holding at most capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Recorder{cap: capacity, byTID: make(map[int]*[numKinds]uint64)}
}

// Record appends an event.
func (r *Recorder) Record(at int64, tid int, kind Kind, arg uint64) {
	r.counts[kind]++
	per := r.byTID[tid]
	if per == nil {
		per = &[numKinds]uint64{}
		r.byTID[tid] = per
	}
	per[kind]++
	if len(r.events) >= r.cap {
		r.Dropped++
		return
	}
	r.events = append(r.events, Event{At: at, TID: tid, Kind: kind, Arg: arg})
}

// Events returns the stored events in record order.
func (r *Recorder) Events() []Event { return r.events }

// Count reports how many events of kind were recorded (including dropped).
func (r *Recorder) Count(kind Kind) uint64 { return r.counts[kind] }

// Summary renders per-kind totals and a per-thread breakdown.
func (r *Recorder) Summary(clockHz float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s\n", "event", "count")
	for k := Kind(0); k < numKinds; k++ {
		if r.counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-14s %10d\n", k, r.counts[k])
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "(%d events beyond the %d-event buffer were counted but not stored)\n", r.Dropped, r.cap)
	}
	tids := make([]int, 0, len(r.byTID))
	for tid := range r.byTID {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		per := r.byTID[tid]
		var parts []string
		for k := Kind(0); k < numKinds; k++ {
			if per[k] > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", k, per[k]))
			}
		}
		who := fmt.Sprintf("thread %d", tid)
		if tid < 0 {
			who = "runtime"
		}
		fmt.Fprintf(&b, "  %-10s %s\n", who, strings.Join(parts, " "))
	}
	if len(r.events) > 0 && clockHz > 0 {
		first, last := r.events[0].At, r.events[len(r.events)-1].At
		fmt.Fprintf(&b, "window: %.3f ms .. %.3f ms\n", float64(first)/clockHz*1e3, float64(last)/clockHz*1e3)
	}
	return b.String()
}

// Format renders one event for the dump listing.
func (e Event) Format(clockHz float64) string {
	who := fmt.Sprintf("t%d", e.TID)
	if e.TID < 0 {
		who = "rt"
	}
	detail := ""
	switch e.Kind {
	case KindTwinFault, KindRepair, KindTeardown:
		detail = fmt.Sprintf(" page=0x%x", e.Arg)
	case KindCommit:
		detail = fmt.Sprintf(" cost=%d", e.Arg)
	case KindRegionEnter, KindRegionExit:
		detail = fmt.Sprintf(" kind=%d", e.Arg)
	case KindDetectTick:
		detail = fmt.Sprintf(" records=%d", e.Arg)
	}
	return fmt.Sprintf("%10.4fms %-3s %-13s%s", float64(e.At)/clockHz*1e3, who, e.Kind, detail)
}
