package trace

import "repro/internal/detect"

// SampleLog captures the detector's accepted (post-filter, post-disasm)
// sample stream together with the window boundaries that closed over it: a
// replayable HITM trace. Feeding the log's samples into a fresh detector
// and calling Analyze at each window marker reproduces the original run's
// advice exactly, which is what cmd/tmiload replays against a tmid server
// and what the offline side of the parity check recomputes.
//
// SampleLog implements detect.Tap.
type SampleLog struct {
	// PageSize is the page geometry the samples were collected under; a
	// replaying detector must use the same value for its advice to match.
	PageSize int
	Samples  []detect.Sample
	Windows  []SampleWindow
}

// SampleWindow marks one detector analysis boundary: all samples with index
// < End (and ≥ the previous window's End) belong to it, sampled at Period
// over IntervalSec simulated seconds.
type SampleWindow struct {
	End         int
	IntervalSec float64
	Period      int
}

// TapSample records one accepted sample (detect.Tap).
func (l *SampleLog) TapSample(s detect.Sample) { l.Samples = append(l.Samples, s) }

// TapWindow records one window boundary (detect.Tap).
func (l *SampleLog) TapWindow(intervalSec float64, period int) {
	l.Windows = append(l.Windows, SampleWindow{End: len(l.Samples), IntervalSec: intervalSec, Period: period})
}

// WindowSamples returns window i's sample slice (a view into Samples).
func (l *SampleLog) WindowSamples(i int) []detect.Sample {
	lo := 0
	if i > 0 {
		lo = l.Windows[i-1].End
	}
	return l.Samples[lo:l.Windows[i].End]
}

// Len reports the total captured sample count.
func (l *SampleLog) Len() int { return len(l.Samples) }
