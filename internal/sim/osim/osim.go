// Package osim models the slice of a Linux system that TMI depends on:
// processes and threads, fork with copy-on-write address-space cloning,
// shared-memory objects, a ptrace facade (attach, stop, context save,
// call injection, resume) and /proc/<pid>/maps-style address maps.
//
// The central operation is ConvertThreadToProcess: the paper's mechanism of
// stopping a running thread with ptrace, injecting a trampoline that calls
// fork(), and resuming the clone with the original register state — giving
// the former thread its own page tables so individual pages can be remapped
// privately (§3.2). Here the conversion clones the simulated address space
// and charges the measured sub-200µs cost to the thread's simulated clock.
package osim

import (
	"fmt"
	"sort"

	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// Process is a simulated OS process.
type Process struct {
	ID      int
	Space   *mem.AddrSpace
	Parent  int
	Threads []*machine.Thread
}

// OS is the process table and system-call surface.
type OS struct {
	Mem    *mem.Memory
	nextID int
	procs  map[int]*Process
}

// New returns an OS over the given physical memory.
func New(m *mem.Memory) *OS {
	return &OS{Mem: m, nextID: 1, procs: make(map[int]*Process)}
}

// NewProcess creates a fresh process with an empty address space.
func (o *OS) NewProcess() *Process {
	p := &Process{ID: o.nextID, Space: mem.NewAddrSpace(o.Mem)}
	o.nextID++
	o.procs[p.ID] = p
	return p
}

// Fork clones p, fork(2)-style: the child gets a copy of the address space
// (shared mappings stay shared; private COW copies are duplicated).
func (o *OS) Fork(p *Process) *Process {
	c := &Process{ID: o.nextID, Space: p.Space.Clone(), Parent: p.ID}
	o.nextID++
	o.procs[c.ID] = c
	return c
}

// Process looks up a process by ID.
func (o *OS) Process(id int) *Process { return o.procs[id] }

// Processes returns all live processes in ID order.
func (o *OS) Processes() []*Process {
	out := make([]*Process, 0, len(o.procs))
	for _, p := range o.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ShmOpen creates a named shared-memory object (shm_open analog).
func (o *OS) ShmOpen(name string) *mem.File { return o.Mem.NewFile(name) }

// Ptrace cost model, in cycles at 3.4 GHz.
const (
	// CostPtraceStop is charged to each thread when PM attaches and stops it.
	CostPtraceStop = 70_000 // ~20µs
	// CostT2PBase/CostT2PSpan bound the thread-to-process conversion time:
	// the paper measures 73–179µs per application (Table 3).
	CostT2PBase = 255_000 // 75µs
	CostT2PSpan = 357_000 // up to +105µs

	// OneTimeCompression scales one-time costs (ptrace stop, T2P) down to
	// the reproduction's compressed timescale: runs are ~500x shorter than
	// the paper's, so a cost paid once per execution is charged at 1/64 to
	// keep its share of the runtime proportionate. Reported T2P times
	// (Table 3) remain the uncompressed values.
	OneTimeCompression = 64
)

// ThreadContext is the register state ptrace saves around call injection.
type ThreadContext struct {
	PC   uint64
	Regs [16]uint64
}

// Tracer is the monitoring process PM's handle on the application process
// PA (Figure 5). It can stop all application threads at a safe point,
// convert each into its own process, and resume them.
type Tracer struct {
	OS  *OS
	App *Process
	// T2PCycles records the conversion cost charged per converted thread,
	// for the Table 3 characterization.
	T2PCycles []int64
	stopped   bool
}

// Attach creates a tracer for app.
func Attach(o *OS, app *Process) *Tracer { return &Tracer{OS: o, App: app} }

// StopAll brings every application thread to a stop, charging the ptrace
// attach/stop cost to each. In the simulator threads are always at an
// instruction boundary when runtime code runs, so the stop is immediate.
func (tr *Tracer) StopAll() {
	for _, th := range tr.App.Threads {
		th.AddCost(CostPtraceStop / OneTimeCompression)
	}
	tr.stopped = true
}

// Stopped reports whether StopAll has been called without a ResumeAll.
func (tr *Tracer) Stopped() bool { return tr.stopped }

// SaveContext captures a thread's context (modeled; the simulator does not
// carry real registers, but the protocol and its costs are preserved).
func (tr *Tracer) SaveContext(th *machine.Thread) ThreadContext {
	return ThreadContext{PC: 0, Regs: [16]uint64{uint64(th.ID)}}
}

// ConvertThreadToProcess performs the TMI trampoline: with the thread
// stopped, inject fork(), move the thread into the new child process with
// its context restored, and charge the measured conversion cost. The new
// process initially shares every mapping with the parent, so execution
// resumes with identical memory contents.
func (tr *Tracer) ConvertThreadToProcess(th *machine.Thread) (*Process, error) {
	if !tr.stopped {
		return nil, fmt.Errorf("osim: convert requires stopped threads")
	}
	ctx := tr.SaveContext(th)
	child := tr.OS.Fork(tr.App)
	child.Threads = []*machine.Thread{th}
	// Remove the thread from the application process.
	for i, t := range tr.App.Threads {
		if t == th {
			tr.App.Threads = append(tr.App.Threads[:i], tr.App.Threads[i+1:]...)
			break
		}
	}
	th.SetSpace(child.Space)
	cost := CostT2PBase + th.Rand().Int63n(CostT2PSpan)
	th.AddCost(cost / OneTimeCompression)
	tr.T2PCycles = append(tr.T2PCycles, cost)
	_ = ctx // context restore: execution continues at the same point
	return child, nil
}

// ResumeAll detaches and lets the application run again.
func (tr *Tracer) ResumeAll() { tr.stopped = false }

// RegionKind classifies address-map regions for detector filtering.
type RegionKind uint8

// Address-map region kinds.
const (
	RegionHeap RegionKind = iota
	RegionGlobals
	RegionStack
	RegionLib
	RegionCode
)

func (k RegionKind) String() string {
	switch k {
	case RegionHeap:
		return "heap"
	case RegionGlobals:
		return "globals"
	case RegionStack:
		return "stack"
	case RegionLib:
		return "lib"
	case RegionCode:
		return "code"
	}
	return "?"
}

// MapEntry is one /proc/<pid>/maps line.
type MapEntry struct {
	Start, End uint64
	Kind       RegionKind
	Label      string
}

// AddressMap is the process memory map the detector consults to restrict
// detection to the heap and globals (paper §3.1).
type AddressMap struct {
	entries []MapEntry
}

// AddRegion appends a region; regions must not overlap.
func (am *AddressMap) AddRegion(start, end uint64, kind RegionKind, label string) {
	am.entries = append(am.entries, MapEntry{start, end, kind, label})
	sort.Slice(am.entries, func(i, j int) bool { return am.entries[i].Start < am.entries[j].Start })
}

// Lookup returns the region containing addr.
func (am *AddressMap) Lookup(addr uint64) (MapEntry, bool) {
	i := sort.Search(len(am.entries), func(i int) bool { return am.entries[i].End > addr })
	if i < len(am.entries) && am.entries[i].Start <= addr {
		return am.entries[i], true
	}
	return MapEntry{}, false
}

// Monitorable reports whether the detector should consider addr: heap and
// globals are monitored; stacks and system libraries are filtered out.
func (am *AddressMap) Monitorable(addr uint64) bool {
	e, ok := am.Lookup(addr)
	if !ok {
		return false
	}
	return e.Kind == RegionHeap || e.Kind == RegionGlobals
}

// Entries returns the map in address order.
func (am *AddressMap) Entries() []MapEntry { return am.entries }
