package osim

import (
	"testing"

	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

func TestForkSharesAndIsolates(t *testing.T) {
	m := mem.NewMemory(mem.PageSize4K)
	o := New(m)
	p := o.NewProcess()
	f := o.ShmOpen("app")
	p.Space.Map(0x1000_0000, 2, f, 0, false, mem.ProtRW)
	tr, _ := p.Space.Translate(0x1000_0000, true)
	mem.StoreUint(tr, 8, 41)

	c := o.Fork(p)
	if c.Parent != p.ID {
		t.Errorf("child parent %d, want %d", c.Parent, p.ID)
	}
	ct, _ := c.Space.Translate(0x1000_0000, false)
	if mem.LoadUint(ct, 8) != 41 {
		t.Error("child must see parent's shared data")
	}
	// Shared mapping: writes remain visible both ways.
	ct2, _ := c.Space.Translate(0x1000_0000, true)
	mem.StoreUint(ct2, 8, 42)
	pt, _ := p.Space.Translate(0x1000_0000, false)
	if mem.LoadUint(pt, 8) != 42 {
		t.Error("shared mapping should stay shared across fork")
	}
}

func TestConvertThreadToProcess(t *testing.T) {
	m := mem.NewMemory(mem.PageSize4K)
	o := New(m)
	app := o.NewProcess()
	f := o.ShmOpen("app")
	app.Space.Map(0x1000_0000, 4, f, 0, false, mem.ProtRW)

	mc := machine.New(machine.Config{Cores: 2, Seed: 3, Mem: m})
	for _, th := range mc.Threads() {
		th.SetSpace(app.Space)
		app.Threads = append(app.Threads, th)
	}
	tr := Attach(o, app)
	if _, err := tr.ConvertThreadToProcess(mc.Thread(0)); err == nil {
		t.Fatal("convert without stop should fail")
	}
	tr.StopAll()
	before := mc.Thread(1).Clock()
	if before < CostPtraceStop/OneTimeCompression {
		t.Error("stop cost not charged")
	}
	p1, err := tr.ConvertThreadToProcess(mc.Thread(1))
	if err != nil {
		t.Fatal(err)
	}
	if mc.Thread(1).Space() != p1.Space {
		t.Error("converted thread should run in the child's space")
	}
	if len(app.Threads) != 1 {
		t.Errorf("app should keep 1 thread, has %d", len(app.Threads))
	}
	charged := mc.Thread(1).Clock() - before
	if charged < CostT2PBase/OneTimeCompression || charged > (CostT2PBase+CostT2PSpan)/OneTimeCompression {
		t.Errorf("charged T2P cost %d outside compressed range", charged)
	}
	if len(tr.T2PCycles) != 1 {
		t.Fatal("T2P cost not recorded")
	}
	if rec := tr.T2PCycles[0]; rec < CostT2PBase || rec > CostT2PBase+CostT2PSpan {
		t.Errorf("recorded T2P cost %d outside [%d,%d]", rec, CostT2PBase, CostT2PBase+CostT2PSpan)
	}
	tr.ResumeAll()
	if tr.Stopped() {
		t.Error("resume should clear stopped")
	}
	// Per-page protection in the child must not affect the parent space.
	if err := p1.Space.Protect(0x1000_0000, 1, true, mem.ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, fault := app.Space.Translate(0x1000_0000, true); fault != nil {
		t.Error("parent space must stay writable")
	}
}

func TestAddressMapFiltering(t *testing.T) {
	var am AddressMap
	am.AddRegion(0x0040_0000, 0x0050_0000, RegionCode, "text")
	am.AddRegion(0x1000_0000, 0x2000_0000, RegionHeap, "heap")
	am.AddRegion(0x2000_0000, 0x2100_0000, RegionGlobals, "bss")
	am.AddRegion(0x7f00_0000, 0x7f10_0000, RegionLib, "libc")
	am.AddRegion(0x7fff_0000, 0x8000_0000, RegionStack, "stack0")

	cases := []struct {
		addr uint64
		want bool
	}{
		{0x1000_0040, true},  // heap
		{0x2000_0010, true},  // globals
		{0x7f00_0abc, false}, // libc filtered
		{0x7fff_1234, false}, // stack filtered
		{0x6000_0000, false}, // unmapped
		{0x0040_0004, false}, // code
		{0x1fff_ffff, true},  // heap upper edge
		{0x2100_0000, false}, // just past globals
	}
	for _, c := range cases {
		if got := am.Monitorable(c.addr); got != c.want {
			t.Errorf("Monitorable(0x%x) = %v, want %v", c.addr, got, c.want)
		}
	}
	if e, ok := am.Lookup(0x7f00_0abc); !ok || e.Kind != RegionLib {
		t.Error("Lookup should find libc region")
	}
}
