package pebs

import (
	"testing"

	"repro/internal/raceflag"
)

func TestPeriodControlsRecordRate(t *testing.T) {
	recordsAt := func(period int) uint64 {
		s := NewSampler(1, period, 1)
		for i := 0; i < 10_000; i++ {
			s.OnHITM(0, 0, 0x400000, 0x1000, 8, false, int64(i))
			s.Buffer(0).Drain() // keep the buffer from overflowing
		}
		return s.RecordsEmitted
	}
	r1 := recordsAt(1)
	r100 := recordsAt(100)
	if r1 != 10_000 {
		t.Errorf("period 1: %d records, want 10000", r1)
	}
	if r100 != 100 {
		t.Errorf("period 100: %d records, want 100", r100)
	}
}

func TestStoresUnderReport(t *testing.T) {
	s := NewSampler(1, 1, 42)
	for i := 0; i < 10_000; i++ {
		s.OnHITM(0, 0, 0x400000, 0x1000, 8, true, int64(i))
		s.Buffer(0).Drain()
	}
	got := float64(s.RecordsEmitted) / 10_000
	if got < StoreCaptureRate-0.05 || got > StoreCaptureRate+0.05 {
		t.Errorf("store capture rate %.3f, want ~%.2f", got, StoreCaptureRate)
	}
}

func TestAssistCostCharged(t *testing.T) {
	s := NewSampler(1, 10, 1)
	var total int64
	for i := 0; i < 100; i++ {
		total += s.OnHITM(0, 0, 0x400000, 0x1000, 8, false, int64(i))
	}
	if total != 10*CostAssist {
		t.Errorf("cost %d, want %d", total, 10*CostAssist)
	}
}

func TestBufferOverflowDropsAndInterrupts(t *testing.T) {
	s := NewSampler(1, 1, 1)
	var cost int64
	for i := 0; i < BufferRecords+50; i++ {
		cost += s.OnHITM(0, 0, 0x400000, 0x1000, 8, false, int64(i))
	}
	b := s.Buffer(0)
	if b.Len() != BufferRecords {
		t.Errorf("buffer holds %d, want %d", b.Len(), BufferRecords)
	}
	if b.Dropped != 50 {
		t.Errorf("dropped %d, want 50", b.Dropped)
	}
	if s.InterruptsTaken != 1 {
		t.Errorf("interrupts %d, want 1", s.InterruptsTaken)
	}
	if cost != int64(BufferRecords+50)*CostAssist+CostInterrupt {
		t.Errorf("unexpected total cost %d", cost)
	}
	recs := b.Drain()
	if len(recs) != BufferRecords || b.Len() != 0 {
		t.Error("drain should empty the buffer")
	}
	if recs[0].PC != 0x400000 || recs[0].TID != 0 {
		t.Errorf("record contents: %+v", recs[0])
	}
}

func TestDisabledSamplerIsFree(t *testing.T) {
	s := NewSampler(1, 1, 1)
	s.SetEnabled(false)
	if c := s.OnHITM(0, 0, 0x400000, 0x1000, 8, false, 0); c != 0 {
		t.Errorf("disabled sampler charged %d", c)
	}
	if s.EventsSeen != 0 || s.RecordsEmitted != 0 {
		t.Error("disabled sampler should record nothing")
	}
}

func TestAddressSkidStaysNearAccess(t *testing.T) {
	s := NewSampler(1, 1, 7)
	const addr, size = 0x2000, 8
	skids := 0
	for i := 0; i < 5000; i++ {
		s.OnHITM(0, 0, 0x400000, addr, size, false, int64(i))
	}
	for _, r := range s.Buffer(0).Drain() {
		switch r.Addr {
		case addr:
		case addr - size, addr + size:
			skids++
		default:
			t.Fatalf("skid outside one access step: 0x%x", r.Addr)
		}
	}
	if skids == 0 {
		t.Error("expected some address skid")
	}
}

func TestDrainIntoReusesDst(t *testing.T) {
	s := NewSampler(1, 1, 1)
	for i := 0; i < 10; i++ {
		s.OnHITM(0, 0, 0x400000, 0x1000, 8, false, int64(i))
	}
	b := s.Buffer(0)
	got := b.DrainInto(nil)
	if len(got) != 10 || b.Len() != 0 {
		t.Fatalf("DrainInto(nil) returned %d records, buffer holds %d; want 10 and 0", len(got), b.Len())
	}
	if got[0].PC != 0x400000 || got[9].Time != 9 {
		t.Errorf("record contents: first %+v last %+v", got[0], got[9])
	}

	// Appending into a recycled slice must not reallocate once capacity is
	// established, and must preserve the prefix handed in.
	for i := 0; i < 5; i++ {
		s.OnHITM(0, 0, 0x400100, 0x2000, 8, false, int64(100+i))
	}
	before := got[:0]
	again := b.DrainInto(before)
	if len(again) != 5 || &again[0] != &got[0] {
		t.Errorf("DrainInto did not reuse dst backing (len %d)", len(again))
	}
	if again[0].PC != 0x400100 {
		t.Errorf("recycled drain contents: %+v", again[0])
	}
}

func TestDrainIntoSteadyStateDoesNotAllocate(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := NewSampler(1, 1, 1)
	scratch := make([]Record, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			s.OnHITM(0, 0, 0x400000, 0x1000, 8, false, int64(i))
		}
		scratch = s.Buffer(0).DrainInto(scratch[:0])
	})
	if allocs != 0 {
		t.Errorf("steady-state DrainInto allocates %.1f times per drain, want 0", allocs)
	}
}
