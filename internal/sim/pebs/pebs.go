// Package pebs simulates Intel's Precise Event-Based Sampling of HITM
// coherence events (MEM_LOAD_UOPS_LLC_HIT_RETIRED.XSNP_HITM in the paper).
//
// A Sampler counts HITM events per hardware thread and, every `period`
// events, deposits a PEBS record — instruction address, data address,
// register snapshot — into that thread's in-memory buffer, charging the
// microarchitectural assist cost to the thread that triggered it.
//
// The model includes the two imprecision effects the paper (and LASER)
// document: HITM events caused by stores produce records at a lower rate
// than loads, and the recorded data address occasionally skids while the PC
// stays accurate.
package pebs

import (
	"math/rand"
	"sync"
)

// Record is one PEBS sample.
type Record struct {
	TID   int
	Core  int
	PC    uint64
	Addr  uint64 // virtual data address (may have skidded)
	Write bool
	Time  int64 // simulated cycles at capture
}

// Costs and imprecision parameters.
const (
	// CostAssist is the per-record microarchitectural assist cost charged to
	// the triggering thread.
	CostAssist = 1200
	// CostInterrupt is charged when a buffer fills and the OS driver is
	// notified.
	CostInterrupt = 30_000
	// StoreCaptureRate is the probability a store-triggered HITM advances
	// the sampling counter (stores under-report relative to loads).
	StoreCaptureRate = 0.4
	// AddrSkidProb is the probability the recorded data address is off by
	// one access-size step (the PC remains accurate).
	AddrSkidProb = 0.02
	// BufferRecords is the per-thread buffer capacity before an interrupt
	// is raised and the buffer handed to userspace.
	BufferRecords = 1024
	// BufferFootprintBytes is the per-thread buffer's memory cost as
	// accounted in Figure 8 (the perf mmap area is far larger than the
	// record payload).
	BufferFootprintBytes = 4 << 20
)

// Buffer is a per-thread PEBS record buffer with drop accounting.
type Buffer struct {
	mu      sync.Mutex
	records []Record
	Dropped uint64
}

// Drain returns and clears the buffered records, handing ownership of the
// backing array to the caller (the buffer reallocates on its next record).
func (b *Buffer) Drain() []Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.records
	b.records = nil
	return out
}

// DrainInto appends the buffered records to dst and returns the extended
// slice, clearing the buffer while keeping its backing array. Unlike Drain
// it allocates nothing once dst and the buffer reach steady-state capacity,
// which is what keeps the detector's once-per-tick drain off the heap.
func (b *Buffer) DrainInto(dst []Record) []Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	dst = append(dst, b.records...)
	b.records = b.records[:0]
	return dst
}

// Len reports the number of buffered records.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.records)
}

// Sampler is the per-machine PEBS engine.
type Sampler struct {
	period   int
	counters []int
	buffers  []*Buffer
	rngs     []*rand.Rand
	enabled  bool

	// Totals for the Figure 4 sweep.
	EventsSeen      uint64 // raw HITM events observed while enabled
	RecordsEmitted  uint64
	InterruptsTaken uint64
}

// NewSampler creates a sampler for nThreads hardware threads with the given
// sampling period (records one event in `period`).
func NewSampler(nThreads, period int, seed int64) *Sampler {
	if period < 1 {
		period = 1
	}
	s := &Sampler{period: period, enabled: true}
	for i := 0; i < nThreads; i++ {
		s.counters = append(s.counters, 0)
		s.buffers = append(s.buffers, &Buffer{})
		s.rngs = append(s.rngs, rand.New(rand.NewSource(seed*104729+int64(i))))
	}
	return s
}

// Period returns the sampling period.
func (s *Sampler) Period() int { return s.period }

// SetPeriod reprograms the sampling period (the perf API allows this at
// runtime; TMI's adaptive-period extension uses it).
func (s *Sampler) SetPeriod(p int) {
	if p < 1 {
		p = 1
	}
	s.period = p
	for i := range s.counters {
		s.counters[i] = 0
	}
}

// SetEnabled turns sampling on or off (detection can be disabled entirely).
func (s *Sampler) SetEnabled(on bool) { s.enabled = on }

// Buffer returns thread tid's record buffer.
func (s *Sampler) Buffer(tid int) *Buffer { return s.buffers[tid] }

// OnHITM processes one HITM event observed by thread tid on core at
// simulated time now, for an access at (pc, addr, size, write). It returns
// the cycles of overhead to charge to the thread (assist and interrupt
// costs), which is the mechanism behind the period-versus-runtime tradeoff
// of Figure 4.
func (s *Sampler) OnHITM(tid, core int, pc, addr uint64, size int, write bool, now int64) int64 {
	if !s.enabled {
		return 0
	}
	s.EventsSeen++
	rng := s.rngs[tid]
	if write && rng.Float64() > StoreCaptureRate {
		return 0 // store HITMs under-report
	}
	s.counters[tid]++
	if s.counters[tid] < s.period {
		return 0
	}
	s.counters[tid] = 0
	rec := Record{TID: tid, Core: core, PC: pc, Addr: addr, Write: write, Time: now}
	if rng.Float64() < AddrSkidProb {
		if rng.Intn(2) == 0 && rec.Addr >= uint64(size) {
			rec.Addr -= uint64(size)
		} else {
			rec.Addr += uint64(size)
		}
	}
	var cost int64 = CostAssist
	b := s.buffers[tid]
	b.mu.Lock()
	if len(b.records) >= BufferRecords {
		b.Dropped++
	} else {
		b.records = append(b.records, rec)
		if len(b.records) == BufferRecords {
			cost += CostInterrupt
			s.InterruptsTaken++
		}
	}
	b.mu.Unlock()
	s.RecordsEmitted++
	return cost
}

// FootprintBytes reports the buffers' memory cost for Figure 8.
func (s *Sampler) FootprintBytes() uint64 {
	return uint64(len(s.buffers)) * BufferFootprintBytes
}
