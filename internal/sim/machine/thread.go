package machine

import (
	"fmt"
	"math/rand"

	"repro/internal/sim/cache"
	"repro/internal/sim/mem"
)

// SetSpace installs the thread's address space. Called at startup and again
// at thread-to-process conversion.
func (t *Thread) SetSpace(s *mem.AddrSpace) { t.space = s }

// Space returns the thread's current address space.
func (t *Thread) Space() *mem.AddrSpace { return t.space }

// SetCore re-pins the thread to a different core mid-run (the `map`
// repair backend's thread-and-data mapping). The coherence fabric sees
// subsequent accesses under the new identity; MESI state left under the
// old core ages out through the normal protocol (at most one extra
// transfer per still-owned line).
func (t *Thread) SetCore(core int) {
	if core < 0 || core >= t.m.cacheS.NumCores() {
		panic(fmt.Sprintf("machine: SetCore(%d) out of range", core))
	}
	t.Core = core
}

// Clock returns the thread's local simulated time in cycles.
func (t *Thread) Clock() int64 { return t.clock }

// AddCost charges cycles to the thread without executing an instruction
// (used by the runtime to model interruptions such as ptrace stops).
func (t *Thread) AddCost(cycles int64) { t.clock += cycles }

// Rand returns the thread's deterministic random source.
func (t *Thread) Rand() *rand.Rand { return t.rng }

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// endStep charges an instruction's latency and hands over the token if the
// thread is no longer minimal. The instruction methods below inline their
// work and finish through here instead of wrapping it in a closure: the old
// step(func() int64) pattern cost one closure allocation per instruction,
// which dominated the steady-state profile.
func (t *Thread) endStep(lat int64) {
	t.clock += lat
	t.Stats.Instructions++
	t.m.yield(t)
	t.m.checkAbort()
}

// Work advances the thread's clock by cycles of pure computation (no memory
// traffic). Large quanta are how workloads represent their non-shared work.
func (t *Thread) Work(cycles int64) {
	if cycles < 0 {
		panic("machine: negative work")
	}
	t.endStep(cycles)
}

// Fence models a memory fence.
func (t *Thread) Fence() {
	t.endStep(20)
}

// Load performs a load of size bytes at addr and returns the value
// (little-endian, size in {1,2,4,8}).
func (t *Thread) Load(pc, addr uint64, size int) uint64 {
	acc := &t.scratch
	*acc = Access{PC: pc, Addr: addr, Size: size}
	lat, tr := t.access(acc)
	v := mem.LoadUint(tr, size)
	t.onValue(acc, v)
	t.endStep(lat)
	return v
}

// Store performs a store of size bytes at addr.
func (t *Thread) Store(pc, addr uint64, size int, val uint64) {
	acc := &t.scratch
	*acc = Access{PC: pc, Addr: addr, Size: size, Write: true}
	lat, tr := t.access(acc)
	mem.StoreUint(tr, size, val)
	t.onValue(acc, val)
	t.endStep(lat)
}

// AtomicRMW performs an atomic read-modify-write at addr: fn maps the old
// value to the new value; the old value is returned. The access carries the
// Atomic flag so the runtime can route it per code-centric consistency.
func (t *Thread) AtomicRMW(pc, addr uint64, size int, fn func(old uint64) uint64) uint64 {
	acc := &t.scratch
	*acc = Access{PC: pc, Addr: addr, Size: size, Write: true, Atomic: true}
	lat, tr := t.access(acc)
	old := mem.LoadUint(tr, size)
	mem.StoreUint(tr, size, fn(old))
	t.onValue(acc, old)
	t.endStep(lat)
	return old
}

// AtomicLoad performs an atomic load (coherence-wise a plain load, but
// carrying the Atomic flag so the runtime routes it to shared memory).
func (t *Thread) AtomicLoad(pc, addr uint64, size int) uint64 {
	acc := &t.scratch
	*acc = Access{PC: pc, Addr: addr, Size: size, Atomic: true}
	lat, tr := t.access(acc)
	v := mem.LoadUint(tr, size)
	t.onValue(acc, v)
	t.endStep(lat)
	return v
}

// AtomicStore performs an atomic store.
func (t *Thread) AtomicStore(pc, addr uint64, size int, val uint64) {
	acc := &t.scratch
	*acc = Access{PC: pc, Addr: addr, Size: size, Write: true, Atomic: true}
	lat, tr := t.access(acc)
	mem.StoreUint(tr, size, val)
	t.onValue(acc, val)
	t.endStep(lat)
}

// AtomicCAS performs a compare-and-swap, returning whether it succeeded.
func (t *Thread) AtomicCAS(pc, addr uint64, size int, old, new uint64) bool {
	acc := &t.scratch
	*acc = Access{PC: pc, Addr: addr, Size: size, Write: true, Atomic: true}
	lat, tr := t.access(acc)
	cur := mem.LoadUint(tr, size)
	ok := false
	if cur == old {
		mem.StoreUint(tr, size, new)
		ok = true
	}
	t.onValue(acc, cur)
	t.endStep(lat)
	return ok
}

// AtomicPairSwap atomically exchanges the size-byte values at addrA and
// addrB in one indivisible step — the model of a lock-free assembly
// pair-swap (canneal's atomic pointer swap). Both accesses carry the Atomic
// flag; under a runtime that fails to route them to shared memory the swap
// operates on stale private copies, which is exactly the corruption of the
// paper's Figure 11.
func (t *Thread) AtomicPairSwap(pcA, pcB, addrA, addrB uint64, size int) {
	accA := &t.scratch
	accB := &t.scratchB
	*accA = Access{PC: pcA, Addr: addrA, Size: size, Write: true, Atomic: true}
	*accB = Access{PC: pcB, Addr: addrB, Size: size, Write: true, Atomic: true}
	latA, trA := t.access(accA)
	latB, trB := t.access(accB)
	va := mem.LoadUint(trA, size)
	vb := mem.LoadUint(trB, size)
	mem.StoreUint(trA, size, vb)
	mem.StoreUint(trB, size, va)
	t.onValue(accA, va)
	t.onValue(accB, vb)
	t.endStep(latA + latB)
}

// onValue reports a completed access's datum to the OnValue hook.
func (t *Thread) onValue(acc *Access, val uint64) {
	if h := t.m.hooks.OnValue; h != nil {
		h(t, acc, val)
	}
}

// access resolves and executes one memory access: address-space selection,
// fault handling with one retry, coherence simulation, first-touch cost and
// post-access sampling. It returns the total latency and the translation the
// data operation should use.
func (t *Thread) access(acc *Access) (int64, mem.Translation) {
	t.Stats.MemOps++
	space := t.space
	if h := t.m.hooks.SpaceFor; h != nil {
		if s := h(t, acc); s != nil {
			space = s
		}
	}
	var total int64
	tr, fault := space.Translate(acc.Addr, acc.Write)
	if fault != nil {
		t.Stats.Faults++
		if h := t.m.hooks.OnFault; h != nil {
			handled, cost := h(t, acc, fault)
			total += cost
			if handled {
				tr, fault = space.Translate(acc.Addr, acc.Write)
			}
		}
		if fault != nil {
			panic(fmt.Sprintf("machine: unhandled %v by thread %d (pc=0x%x)", fault, t.ID, acc.PC))
		}
	}
	if tr.FirstTouch || tr.CowCopied {
		t.Stats.FirstTouches++
		if h := t.m.hooks.OnFirstTouch; h != nil {
			total += h(t, tr)
		} else {
			total += DefaultFaultCost
		}
	}
	res := t.m.cacheS.Access(t.Core, tr.Phys, acc.Size, acc.Write, acc.Atomic)
	if res.HITM {
		t.Stats.HITM++
	}
	total += res.Latency
	if h := t.m.hooks.PostAccess; h != nil {
		total += h(t, acc, res)
	}
	return total, tr
}

// Stream models a sequential sweep over nbytes at base (a bulk region or a
// regular mapping) with prefetch-friendly cost and page-fault accounting,
// without materializing data or coherence state. Used for the large private
// datasets of the PARSEC/Splash-class workloads.
func (t *Thread) Stream(pc, base uint64, nbytes int64, write bool) {
	if nbytes <= 0 {
		return
	}
	lines := (nbytes + cache.LineSize - 1) / cache.LineSize
	lat := lines * cache.LatStream
	if r := t.space.BulkAt(base); r != nil {
		if faults := r.TouchRange(base, uint64(nbytes), uint64(t.space.PageSize())); faults > 0 {
			var per int64 = DefaultFaultCost
			if h := t.m.hooks.OnFirstTouch; h != nil {
				per = h(t, mem.Translation{FirstTouch: true})
			}
			lat += faults * per
			t.Stats.FirstTouches += uint64(faults)
		}
	}
	t.Stats.MemOps += uint64(lines)
	t.endStep(lat)
}

// EnterRegion and ExitRegion mark code-centric consistency boundaries
// (compiler-inserted callbacks in the paper; emitted by the workload
// framework here).
func (t *Thread) EnterRegion(k RegionKind) {
	if h := t.m.hooks.RegionEnter; h != nil {
		h(t, k)
	}
}

// ExitRegion closes a region opened by EnterRegion.
func (t *Thread) ExitRegion(k RegionKind) {
	if h := t.m.hooks.RegionExit; h != nil {
		h(t, k)
	}
}

// Block parks the thread (scheduler-level, e.g. waiting on a contended
// mutex). It returns when another thread calls Unblock and the scheduler
// grants the token back. A wake permit deposited before Block (an Unblock
// that raced ahead of the Block) is consumed immediately without parking.
func (t *Thread) Block() {
	if t.permits > 0 {
		t.permits--
		if t.pendingWake > t.clock {
			t.clock = t.pendingWake
		}
		t.m.yield(t)
		t.m.checkAbort()
		return
	}
	t.state = Blocked
	t.m.yield(t)
	t.m.checkAbort()
}

// Unblock makes other runnable again, advancing its clock to at least the
// waker's time plus wakeCost (a blocked thread cannot observe the past).
// If other has not blocked yet, a wake permit is deposited for its next
// Block, so wakeups are never lost.
func (t *Thread) Unblock(other *Thread, wakeCost int64) {
	if h := t.m.hooks.OnWake; h != nil {
		h(t, other)
	}
	w := t.clock + wakeCost
	if other.state != Blocked {
		other.permits++
		if w > other.pendingWake {
			other.pendingWake = w
		}
		return
	}
	if w > other.clock {
		other.clock = w
	}
	other.state = Ready
}

// State reports the thread's scheduler state.
func (t *Thread) State() ThreadState { return t.state }
