package machine

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim/mem"
)

// scriptSched replays a fixed list of thread IDs; when the script runs out
// it falls back to the lowest-ID runnable thread. A negative ID abandons.
type scriptSched struct {
	script []int
	picks  int
}

func (s *scriptSched) Pick(ready []*Thread) *Thread {
	s.picks++
	if len(s.script) > 0 {
		id := s.script[0]
		s.script = s.script[1:]
		if id < 0 {
			return nil
		}
		for _, t := range ready {
			if t.ID == id {
				return t
			}
		}
	}
	return ready[0]
}

func schedFixture(t *testing.T, nthreads int) (*Machine, uint64) {
	t.Helper()
	memory := mem.NewMemory(mem.PageSize4K)
	space := mem.NewAddrSpace(memory)
	file := memory.NewFile("m")
	space.Map(0x1000, 1, file, 0, false, mem.ProtRW)
	m := New(Config{Cores: nthreads, Seed: 1, Mem: memory})
	for _, th := range m.Threads() {
		th.SetSpace(space)
	}
	return m, 0x1000
}

// TestControlledScheduleOrdersStores proves the Pick sequence fully decides
// the interleaving: two threads each store their ID, and the scripted order
// decides who wins the final value.
func TestControlledScheduleOrdersStores(t *testing.T) {
	for _, tc := range []struct {
		script []int
		want   uint64
	}{
		{[]int{0, 1}, 1}, // thread 1 stores last
		{[]int{1, 0}, 0}, // thread 0 stores last
	} {
		m, base := schedFixture(t, 2)
		m.SetScheduler(&scriptSched{script: tc.script})
		var got uint64
		err := m.Run([]func(*Thread){
			func(th *Thread) { th.Store(0x100, base, 8, 0) },
			func(th *Thread) { th.Store(0x104, base, 8, 1) },
		})
		if err != nil {
			t.Fatalf("script %v: %v", tc.script, err)
		}
		got = uint64(0)
		if b, err := m.Thread(0).Space().ReadBytes(base, 1); err == nil {
			got = uint64(b[0])
		}
		if got != tc.want {
			t.Errorf("script %v: final value %d, want %d", tc.script, got, tc.want)
		}
	}
}

// TestOnValueObservesData checks the OnValue hook sees loaded and stored
// values in token order.
func TestOnValueObservesData(t *testing.T) {
	m, base := schedFixture(t, 1)
	var log []string
	m.SetHooks(Hooks{OnValue: func(th *Thread, acc *Access, v uint64) {
		op := "ld"
		if acc.Write {
			op = "st"
		}
		log = append(log, fmt.Sprintf("%s=%d", op, v))
	}})
	err := m.Run([]func(*Thread){func(th *Thread) {
		th.Store(0x100, base, 8, 7)
		_ = th.Load(0x104, base, 8)
		old := th.AtomicRMW(0x108, base, 8, func(o uint64) uint64 { return o + 1 })
		if old != 7 {
			t.Errorf("rmw old = %d, want 7", old)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"st=7", "ld=7", "st=7"}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %s, want %s", i, log[i], want[i])
		}
	}
}

// TestSchedulerAbandonAborts checks a nil Pick fails the run with
// ErrScheduleAbandoned, both at the first pick and mid-run.
func TestSchedulerAbandonAborts(t *testing.T) {
	for _, script := range [][]int{{-1}, {0, 0, -1}} {
		m, base := schedFixture(t, 2)
		m.SetScheduler(&scriptSched{script: append([]int(nil), script...)})
		err := m.Run([]func(*Thread){
			func(th *Thread) {
				for i := 0; i < 8; i++ {
					th.Store(0x100, base, 8, uint64(i))
				}
			},
			func(th *Thread) {
				for i := 0; i < 8; i++ {
					th.Store(0x104, base+8, 8, uint64(i))
				}
			},
		})
		if !errors.Is(err, ErrScheduleAbandoned) {
			t.Errorf("script %v: err = %v, want ErrScheduleAbandoned", script, err)
		}
	}
}

// TestOnWakeReportsUnblock checks the waker→wakee edge reaches OnWake for
// both a direct unblock and a deposited permit.
func TestOnWakeReportsUnblock(t *testing.T) {
	m, base := schedFixture(t, 2)
	var wakes [][2]int
	m.SetHooks(Hooks{OnWake: func(waker, wakee *Thread) {
		wakes = append(wakes, [2]int{waker.ID, wakee.ID})
	}})
	err := m.Run([]func(*Thread){
		func(th *Thread) {
			th.Block() // parked until thread 1 unblocks it
			th.Store(0x100, base, 8, 1)
		},
		func(th *Thread) {
			th.Work(500) // let thread 0 reach Block first
			th.Unblock(th.m.Thread(0), 10)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wakes) != 1 || wakes[0] != [2]int{1, 0} {
		t.Errorf("wakes = %v, want [[1 0]]", wakes)
	}
}
