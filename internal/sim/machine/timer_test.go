package machine

import (
	"sort"
	"testing"
)

// A periodic timer plus a pile of one-shots — several sharing deadlines with
// each other and with the periodic firings — must fire in strict
// (timestamp, id) order. The old sort-on-insert list ordered equal
// timestamps arbitrarily (sort.Slice is unstable); the heap's id tiebreak
// pins ties to registration order.
func TestTimerHeapFiresInTimestampThenIDOrder(t *testing.T) {
	mc, _ := newMachine(t, 1)

	type firing struct {
		at int64
		id int
	}
	var fired []firing
	var expect []firing

	// Periodic detect-tick analog: fires at 500, 1500, 2500, 3500.
	pid := new(int)
	*pid = mc.AddTimer(500, 1000, func(now int64) { fired = append(fired, firing{now, *pid}) })
	for _, at := range []int64{500, 1500, 2500, 3500} {
		expect = append(expect, firing{at, *pid})
	}
	// One-shots registered in scrambled deadline order, with ties at 1500
	// (also colliding with the periodic firing) and at 2200.
	for _, at := range []int64{2200, 1500, 3100, 1500, 700, 2200, 1500, 100} {
		id := new(int)
		*id = mc.AddTimer(at, 0, func(now int64) { fired = append(fired, firing{now, *id}) })
		expect = append(expect, firing{at, *id})
	}
	sort.Slice(expect, func(i, j int) bool {
		if expect[i].at != expect[j].at {
			return expect[i].at < expect[j].at
		}
		return expect[i].id < expect[j].id
	})

	err := mc.Run([]func(*Thread){func(th *Thread) {
		for th.Clock() < 4000 {
			th.Work(50)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}

	if len(fired) != len(expect) {
		t.Fatalf("fired %d timers, want %d: %v", len(fired), len(expect), fired)
	}
	for i := range expect {
		if fired[i] != expect[i] {
			t.Fatalf("firing %d = %+v, want %+v\nfull order: %v", i, fired[i], expect[i], fired)
		}
	}
}

// RemoveTimer must delete from the middle of the heap without disturbing
// the order of the remaining timers.
func TestRemoveTimerKeepsHeapOrder(t *testing.T) {
	mc, _ := newMachine(t, 1)
	var fired []int
	rec := func(tag int) func(int64) { return func(int64) { fired = append(fired, tag) } }
	mc.AddTimer(300, 0, rec(3))
	victim := mc.AddTimer(100, 0, rec(1))
	mc.AddTimer(200, 0, rec(2))
	mc.AddTimer(400, 0, rec(4))
	mc.RemoveTimer(victim)
	err := mc.Run([]func(*Thread){func(th *Thread) {
		for th.Clock() < 1000 {
			th.Work(50)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}
