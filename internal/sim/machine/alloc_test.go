package machine

import (
	"testing"

	"repro/internal/raceflag"
)

// A steady-state instruction on a warm page must not allocate: translation
// is slot-indexed, the coherence directory is block-paged, the Access buffer
// is per-thread scratch, and endStep carries no closure. Single-threaded so
// every op stays inside one thread's fast path.
func TestInstructionSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race")
	}
	mc, _ := benchMachine(1)
	var allocs float64
	err := mc.Run([]func(*Thread){func(th *Thread) {
		// Warm: touch the lines and fault the pages first.
		for i := uint64(0); i < 8; i++ {
			th.Store(1, heapBase+i*64, 8, i)
		}
		i := uint64(0)
		allocs = testing.AllocsPerRun(2000, func() {
			th.Store(1, heapBase+(i%8)*64, 8, i)
			th.Load(2, heapBase+(i%8)*64, 8)
			th.AtomicRMW(3, heapBase, 8, func(old uint64) uint64 { return old + 1 })
			th.Work(10)
			i++
		})
	}})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state instructions allocate %.1f/op, want 0", allocs)
	}
}
