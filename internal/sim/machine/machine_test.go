package machine

import (
	"strings"
	"testing"

	"repro/internal/sim/cache"
	"repro/internal/sim/mem"
)

const heapBase = 0x1000_0000

func newMachine(t *testing.T, cores int) (*Machine, *mem.AddrSpace) {
	t.Helper()
	m := mem.NewMemory(mem.PageSize4K)
	f := m.NewFile("shm")
	as := mem.NewAddrSpace(m)
	as.Map(heapBase, 16, f, 0, false, mem.ProtRW)
	mc := New(Config{Cores: cores, Seed: 1, Mem: m})
	for _, th := range mc.Threads() {
		th.SetSpace(as)
	}
	return mc, as
}

func TestSingleThreadLoadStore(t *testing.T) {
	mc, _ := newMachine(t, 1)
	var got uint64
	err := mc.Run([]func(*Thread){func(th *Thread) {
		th.Store(1, heapBase+8, 8, 77)
		got = th.Load(2, heapBase+8, 8)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("load got %d, want 77", got)
	}
	if mc.Elapsed() <= 0 {
		t.Error("elapsed time should advance")
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() (uint64, int64) {
		mc, _ := newMachine(t, 4)
		body := func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.AtomicRMW(1, heapBase, 8, func(old uint64) uint64 { return old + 1 })
				th.Work(int64(th.ID+1) * 37)
			}
		}
		if err := mc.Run([]func(*Thread){body, body, body, body}); err != nil {
			t.Fatal(err)
		}
		tr, _ := mc.Thread(0).Space().Translate(heapBase, false)
		return mem.LoadUint(tr, 8), mc.Elapsed()
	}
	v1, e1 := run()
	v2, e2 := run()
	if v1 != 400 {
		t.Errorf("atomic counter %d, want 400", v1)
	}
	if v1 != v2 || e1 != e2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", v1, e1, v2, e2)
	}
}

func TestFalseSharingCostsMoreThanPadded(t *testing.T) {
	elapsed := func(stride uint64) int64 {
		mc, _ := newMachine(t, 2)
		body := func(th *Thread) {
			addr := heapBase + uint64(th.ID)*stride
			for i := 0; i < 500; i++ {
				th.Store(1, addr, 8, uint64(i))
				th.Work(50) // pacing keeps the threads in lockstep
			}
		}
		if err := mc.Run([]func(*Thread){body, body}); err != nil {
			t.Fatal(err)
		}
		return mc.Elapsed()
	}
	shared := elapsed(8)   // same line
	padded := elapsed(128) // separate lines
	if shared < 3*padded {
		t.Errorf("false sharing should be >=3x slower: shared=%d padded=%d", shared, padded)
	}
}

func TestWorkAdvancesOnlyClock(t *testing.T) {
	mc, _ := newMachine(t, 1)
	err := mc.Run([]func(*Thread){func(th *Thread) {
		th.Work(1_000_000)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Elapsed() != 1_000_000 {
		t.Errorf("elapsed %d, want 1000000", mc.Elapsed())
	}
	if st := mc.Cache().Stats(); st.Accesses != 0 {
		t.Error("Work must not touch the cache")
	}
}

func TestTimersFireInOrder(t *testing.T) {
	mc, _ := newMachine(t, 1)
	var fired []int64
	mc.AddTimer(500, 0, func(now int64) { fired = append(fired, now) })
	mc.AddTimer(1500, 1000, func(now int64) { fired = append(fired, now) })
	err := mc.Run([]func(*Thread){func(th *Thread) {
		for i := 0; i < 4; i++ {
			th.Work(1000)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{500, 1500, 2500, 3500}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	mc, as := newMachine(t, 2)
	// Thread 1 blocks; thread 0 computes then wakes it.
	err := mc.Run([]func(*Thread){
		func(th *Thread) {
			th.Work(10_000)
			peer := th.Machine().Thread(1)
			th.Unblock(peer, 100)
			th.endStep(10)
		},
		func(th *Thread) {
			th.Block()
			th.Store(1, heapBase, 8, 5)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t1 := mc.Thread(1)
	if t1.Clock() < 10_000 {
		t.Errorf("woken thread clock %d should be past waker's 10000", t1.Clock())
	}
	tr, _ := as.Translate(heapBase, false)
	if mem.LoadUint(tr, 8) != 5 {
		t.Error("woken thread body did not run")
	}
}

func TestDeadlockDetected(t *testing.T) {
	mc, _ := newMachine(t, 2)
	err := mc.Run([]func(*Thread){
		func(th *Thread) { th.Block() },
		func(th *Thread) { th.Block() },
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestBodyPanicReported(t *testing.T) {
	mc, _ := newMachine(t, 2)
	err := mc.Run([]func(*Thread){
		func(th *Thread) { panic("boom") },
		func(th *Thread) {
			for i := 0; i < 1000; i++ {
				th.Work(10)
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

func TestFaultHookRetries(t *testing.T) {
	m := mem.NewMemory(mem.PageSize4K)
	f := m.NewFile("shm")
	as := mem.NewAddrSpace(m)
	as.Map(heapBase, 1, f, 0, true, mem.ProtRead) // write-protected
	mc := New(Config{Cores: 1, Seed: 1, Mem: m})
	mc.Thread(0).SetSpace(as)
	faults := 0
	mc.SetHooks(Hooks{
		OnFault: func(th *Thread, acc *Access, flt *mem.Fault) (bool, int64) {
			faults++
			if flt.Kind != mem.FaultProtWrite {
				t.Errorf("fault kind %v", flt.Kind)
			}
			if err := as.Protect(heapBase, 1, true, mem.ProtRW); err != nil {
				t.Error(err)
			}
			return true, 8000
		},
	})
	err := mc.Run([]func(*Thread){func(th *Thread) {
		th.Store(1, heapBase+16, 8, 3)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Errorf("faults %d, want 1", faults)
	}
	if mc.Elapsed() < 8000 {
		t.Error("fault cost not charged")
	}
}

func TestSpaceForHookRedirects(t *testing.T) {
	m := mem.NewMemory(mem.PageSize4K)
	f := m.NewFile("shm")
	shared := mem.NewAddrSpace(m)
	shared.Map(heapBase, 1, f, 0, false, mem.ProtRW)
	private := shared.Clone()
	if err := private.Protect(heapBase, 1, true, mem.ProtRW); err != nil {
		t.Fatal(err)
	}
	mc := New(Config{Cores: 1, Seed: 1, Mem: m})
	mc.Thread(0).SetSpace(private)
	mc.SetHooks(Hooks{
		SpaceFor: func(th *Thread, acc *Access) *mem.AddrSpace {
			if acc.Atomic {
				return shared
			}
			return nil
		},
	})
	err := mc.Run([]func(*Thread){func(th *Thread) {
		th.Store(1, heapBase, 8, 10)                                         // private COW write
		th.AtomicRMW(2, heapBase+8, 8, func(old uint64) uint64 { return 1 }) // shared
	}})
	if err != nil {
		t.Fatal(err)
	}
	str, _ := shared.Translate(heapBase, false)
	if mem.LoadUint(str, 8) != 0 {
		t.Error("plain store should have gone to the private copy")
	}
	str2, _ := shared.Translate(heapBase+8, false)
	if mem.LoadUint(str2, 8) != 1 {
		t.Error("atomic should have gone to the shared view")
	}
}

func TestPostAccessSamplingSeesHITM(t *testing.T) {
	mc, _ := newMachine(t, 2)
	hitm := 0
	mc.SetHooks(Hooks{
		PostAccess: func(th *Thread, acc *Access, res cache.Result) int64 {
			if res.HITM {
				hitm++
				return 2000
			}
			return 0
		},
	})
	body := func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.Store(1, heapBase+uint64(th.ID)*8, 8, 1)
		}
	}
	if err := mc.Run([]func(*Thread){body, body}); err != nil {
		t.Fatal(err)
	}
	if hitm == 0 {
		t.Error("sampler saw no HITM on a false-sharing workload")
	}
	if mc.Thread(0).Stats.HITM == 0 && mc.Thread(1).Stats.HITM == 0 {
		t.Error("thread stats should count HITM")
	}
}

func TestStreamChargesFaultsOnce(t *testing.T) {
	m := mem.NewMemory(mem.PageSize4K)
	as := mem.NewAddrSpace(m)
	as.MapBulk(0x4000_0000, 1<<20)
	mc := New(Config{Cores: 1, Seed: 1, Mem: m})
	mc.Thread(0).SetSpace(as)
	err := mc.Run([]func(*Thread){func(th *Thread) {
		th.Stream(1, 0x4000_0000, 1<<20, false)
		before := th.Clock()
		th.Stream(1, 0x4000_0000, 1<<20, false)
		delta := th.Clock() - before
		lines := int64((1 << 20) / cache.LineSize)
		if delta != lines*cache.LatStream {
			t.Errorf("second sweep should not re-fault: delta=%d", delta)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ft := mc.Thread(0).Stats.FirstTouches; ft != (1<<20)/mem.PageSize4K {
		t.Errorf("first touches %d, want %d", ft, (1<<20)/mem.PageSize4K)
	}
}

func TestRegionCallbacksDelivered(t *testing.T) {
	mc, _ := newMachine(t, 1)
	var events []string
	mc.SetHooks(Hooks{
		RegionEnter: func(th *Thread, k RegionKind) { events = append(events, "enter:"+k.String()) },
		RegionExit:  func(th *Thread, k RegionKind) { events = append(events, "exit:"+k.String()) },
	})
	err := mc.Run([]func(*Thread){func(th *Thread) {
		th.EnterRegion(RegionAsm)
		th.Work(10)
		th.ExitRegion(RegionAsm)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "enter:asm" || events[1] != "exit:asm" {
		t.Errorf("events %v", events)
	}
}
