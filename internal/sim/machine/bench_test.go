package machine

import (
	"testing"

	"repro/internal/sim/mem"
)

func benchMachine(n int) (*Machine, *mem.AddrSpace) {
	m := mem.NewMemory(mem.PageSize4K)
	f := m.NewFile("shm")
	as := mem.NewAddrSpace(m)
	as.Map(heapBase, 16, f, 0, false, mem.ProtRW)
	mc := New(Config{Cores: n, Seed: 1, Mem: m})
	for _, th := range mc.Threads() {
		th.SetSpace(as)
	}
	return mc, as
}

// BenchmarkStepThroughputContended measures simulator throughput with 4
// threads ping-ponging one cache line (worst-case token handoff).
func BenchmarkStepThroughputContended(b *testing.B) {
	mc, _ := benchMachine(4)
	per := b.N/4 + 1
	body := func(th *Thread) {
		for i := 0; i < per; i++ {
			th.Store(1, heapBase+uint64(th.ID)*8, 8, uint64(i))
		}
	}
	b.ResetTimer()
	if err := mc.Run([]func(*Thread){body, body, body, body}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStepThroughputPrivate measures throughput when threads run on
// private lines with pacing work (common case).
func BenchmarkStepThroughputPrivate(b *testing.B) {
	mc, _ := benchMachine(4)
	per := b.N/4 + 1
	body := func(th *Thread) {
		addr := heapBase + uint64(th.ID)*512
		for i := 0; i < per; i++ {
			th.Store(1, addr, 8, uint64(i))
		}
	}
	b.ResetTimer()
	if err := mc.Run([]func(*Thread){body, body, body, body}); err != nil {
		b.Fatal(err)
	}
}
