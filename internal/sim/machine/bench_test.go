package machine

import (
	"testing"

	"repro/internal/sim/mem"
)

func benchMachine(n int) (*Machine, *mem.AddrSpace) {
	m := mem.NewMemory(mem.PageSize4K)
	f := m.NewFile("shm")
	as := mem.NewAddrSpace(m)
	as.Map(heapBase, 16, f, 0, false, mem.ProtRW)
	mc := New(Config{Cores: n, Seed: 1, Mem: m})
	for _, th := range mc.Threads() {
		th.SetSpace(as)
	}
	return mc, as
}

// BenchmarkAccessLatencyL1 measures the single-access fast path: one
// thread re-reading a warm line, so every access after the first is an L1
// hit that never leaves the yield fast path (translate, coherence lookup,
// latency accounting, hook dispatch).
func BenchmarkAccessLatencyL1(b *testing.B) {
	mc, _ := benchMachine(1)
	body := func(th *Thread) {
		th.Store(1, heapBase, 8, 1) // warm the line to M
		for i := 0; i < b.N; i++ {
			th.Load(1, heapBase, 8)
		}
	}
	b.ResetTimer()
	if err := mc.Run([]func(*Thread){body}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAccessHITMPath measures the modified-remote-hit path: two
// threads alternately storing to the same word, so nearly every access
// snoops a dirty line out of the other core (HITM) and crosses a
// coroutine token handoff.
func BenchmarkAccessHITMPath(b *testing.B) {
	mc, _ := benchMachine(2)
	per := b.N/2 + 1
	body := func(th *Thread) {
		for i := 0; i < per; i++ {
			th.Store(1, heapBase, 8, uint64(i))
		}
	}
	b.ResetTimer()
	if err := mc.Run([]func(*Thread){body, body}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStepThroughputContended measures simulator throughput with 4
// threads ping-ponging one cache line (worst-case token handoff).
func BenchmarkStepThroughputContended(b *testing.B) {
	mc, _ := benchMachine(4)
	per := b.N/4 + 1
	body := func(th *Thread) {
		for i := 0; i < per; i++ {
			th.Store(1, heapBase+uint64(th.ID)*8, 8, uint64(i))
		}
	}
	b.ResetTimer()
	if err := mc.Run([]func(*Thread){body, body, body, body}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStepThroughputPrivate measures throughput when threads run on
// private lines with pacing work (common case).
func BenchmarkStepThroughputPrivate(b *testing.B) {
	mc, _ := benchMachine(4)
	per := b.N/4 + 1
	body := func(th *Thread) {
		addr := heapBase + uint64(th.ID)*512
		for i := 0; i < per; i++ {
			th.Store(1, addr, 8, uint64(i))
		}
	}
	b.ResetTimer()
	if err := mc.Run([]func(*Thread){body, body, body, body}); err != nil {
		b.Fatal(err)
	}
}
