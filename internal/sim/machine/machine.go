// Package machine implements the simulated multicore: threads pinned to
// cores, a deterministic min-clock discrete-event scheduler, the instruction
// API that workload programs execute (loads, stores, atomics, streaming,
// compute), simulated-time timers, and the hook points the TMI runtime
// attaches to (fault handling, address-space selection, access sampling,
// consistency-region callbacks).
//
// Each simulated thread runs as a goroutine, but only one thread executes at
// a time, always the runnable thread with the smallest local clock, so every
// run is deterministic for a fixed seed: memory operations are globally
// ordered by simulated time, which is what makes the coherence simulation
// and the consistency experiments reproducible.
package machine

import (
	"container/heap"
	"errors"
	"fmt"
	"iter"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/sim/cache"
	"repro/internal/sim/mem"
)

// Config configures a Machine.
type Config struct {
	Cores int
	Seed  int64
	Mem   *mem.Memory
	Cache *cache.System
}

// Access describes one memory instruction as it flows through the hooks.
type Access struct {
	PC     uint64
	Addr   uint64 // virtual address
	Size   int
	Write  bool
	Atomic bool
}

// RegionKind tags code-region boundaries for code-centric consistency.
type RegionKind uint8

// Region kinds (paper §3.4). RegionAtomicStrong is the seq_cst atomic
// region; the remaining C11 orderings and standalone fences follow. The
// numeric values of the original three kinds are frozen: traces serialize
// the kind as a raw integer.
const (
	RegionAtomicRelaxed RegionKind = iota
	RegionAtomicStrong
	RegionAsm
	RegionAtomicAcquire
	RegionAtomicRelease
	RegionAtomicAcqRel
	RegionFenceAcquire
	RegionFenceRelease
	RegionFenceAcqRel
	RegionFenceSeqCst
)

func (k RegionKind) String() string {
	switch k {
	case RegionAtomicRelaxed:
		return "atomic-relaxed"
	case RegionAtomicStrong:
		return "atomic-seqcst"
	case RegionAsm:
		return "asm"
	case RegionAtomicAcquire:
		return "atomic-acquire"
	case RegionAtomicRelease:
		return "atomic-release"
	case RegionAtomicAcqRel:
		return "atomic-acqrel"
	case RegionFenceAcquire:
		return "fence-acquire"
	case RegionFenceRelease:
		return "fence-release"
	case RegionFenceAcqRel:
		return "fence-acqrel"
	case RegionFenceSeqCst:
		return "fence-seqcst"
	}
	return "?"
}

// IsAtomic reports whether k brackets an atomic instruction (as opposed to
// an assembly region or a standalone fence).
func (k RegionKind) IsAtomic() bool {
	switch k {
	case RegionAtomicRelaxed, RegionAtomicStrong, RegionAtomicAcquire,
		RegionAtomicRelease, RegionAtomicAcqRel:
		return true
	}
	return false
}

// IsFence reports whether k is a standalone fence region.
func (k RegionKind) IsFence() bool {
	switch k {
	case RegionFenceAcquire, RegionFenceRelease, RegionFenceAcqRel,
		RegionFenceSeqCst:
		return true
	}
	return false
}

// Acquires reports whether k carries acquire semantics (joins published
// state). Asm regions conservatively acquire and release, matching the
// paper's Table 2 treatment of opaque assembly.
func (k RegionKind) Acquires() bool {
	switch k {
	case RegionAtomicStrong, RegionAsm, RegionAtomicAcquire,
		RegionAtomicAcqRel, RegionFenceAcquire, RegionFenceAcqRel,
		RegionFenceSeqCst:
		return true
	}
	return false
}

// Releases reports whether k carries release semantics (publishes prior
// state).
func (k RegionKind) Releases() bool {
	switch k {
	case RegionAtomicStrong, RegionAsm, RegionAtomicRelease,
		RegionAtomicAcqRel, RegionFenceRelease, RegionFenceAcqRel,
		RegionFenceSeqCst:
		return true
	}
	return false
}

// Hooks are the runtime attachment points. All hooks run in the context of
// the executing thread with the machine quiescent (no other thread running),
// so they may inspect and mutate runtime state freely but must not block.
type Hooks struct {
	// SpaceFor selects the address space an access resolves through.
	// Nil or returning nil means the thread's current space. TMI uses this
	// to route atomics and assembly regions to the always-shared view.
	SpaceFor func(t *Thread, acc *Access) *mem.AddrSpace
	// OnFault handles a protection fault. Returning handled=true retries the
	// access once; cost is charged to the thread either way.
	OnFault func(t *Thread, acc *Access, f *mem.Fault) (handled bool, cost int64)
	// PostAccess observes every completed access (PEBS sampling) and may
	// charge extra cycles.
	PostAccess func(t *Thread, acc *Access, res cache.Result) (extra int64)
	// RegionEnter/RegionExit observe code-centric consistency boundaries.
	RegionEnter func(t *Thread, k RegionKind)
	RegionExit  func(t *Thread, k RegionKind)
	// OnFirstTouch charges the page-fault cost for a first touch of a page
	// (or a COW copy). If nil, DefaultFaultCost is used.
	OnFirstTouch func(t *Thread, tr mem.Translation) (cost int64)
	// OnValue observes the data value of every completed access, after the
	// data operation: the value loaded (for loads and the old value of
	// RMW/CAS) or the value stored. Unlike PostAccess it sees the datum, so
	// a model checker can log per-thread observed values.
	OnValue func(t *Thread, acc *Access, val uint64)
	// OnWake observes t unblocking (or depositing a wake permit for) other —
	// the scheduler-level happens-before edge a race detector needs.
	OnWake func(t, other *Thread)
}

// Scheduler is an external scheduling strategy. When installed via
// SetScheduler it replaces the default min-clock policy entirely: at every
// scheduling point the machine calls Pick with the runnable threads (sorted
// by ID, never empty) and runs the returned thread next. Clock-slack
// batching is disabled so every instruction is a scheduling point — the
// interleaving is exactly the sequence of Pick results, which is what lets
// a model checker enumerate schedules. Returning nil abandons the run: the
// machine aborts with ErrScheduleAbandoned (how DPOR prunes sleep-blocked
// interleavings).
type Scheduler interface {
	Pick(ready []*Thread) *Thread
}

// ErrScheduleAbandoned reports that the installed Scheduler gave up on the
// run by returning nil from Pick.
var ErrScheduleAbandoned = errors.New("machine: schedule abandoned by scheduler")

// DefaultFaultCost is the minor page-fault cost when no OnFirstTouch hook is
// installed.
const DefaultFaultCost = 3000

// schedSlack is the scheduler's clock tolerance: a thread keeps executing
// while no runnable thread is more than this many cycles behind it. It is
// chosen below the cheapest cross-core latency (LatUpgrade/LatLLC = 40), so
// batched execution can only reorder same-core L1 hits.
const schedSlack = 4

// ThreadState is a thread's scheduler state.
type ThreadState uint8

// Thread states.
const (
	Ready ThreadState = iota
	Blocked
	Done
)

// ThreadStats counts per-thread activity.
type ThreadStats struct {
	Instructions uint64
	MemOps       uint64
	HITM         uint64
	Faults       uint64
	FirstTouches uint64
}

// Thread is one simulated hardware thread, pinned 1:1 to a core.
type Thread struct {
	ID   int
	Core int

	m     *Machine
	space *mem.AddrSpace
	clock int64
	state ThreadState
	rng   *rand.Rand

	// resume/stop/yieldTok are the coroutine handles (iter.Pull) the driver
	// loop switches threads with. Coroutine switches transfer control
	// directly between goroutines without a scheduler round trip, which is
	// an order of magnitude cheaper than the channel park/unpark pair the
	// token handoff used to cost.
	resume   func() (struct{}, bool)
	stop     func()
	yieldTok func(struct{}) bool

	// User carries runtime-private per-thread state (CCC region nesting,
	// PTSB dirty sets). The machine never inspects it.
	User any

	Stats ThreadStats

	// permits/pendingWake implement race-free wakeups: an Unblock that
	// arrives before the target's Block deposits a permit instead.
	permits     int
	pendingWake int64

	// scratch/scratchB are the per-thread Access buffers the instruction
	// methods reuse, so steady-state ops allocate nothing. Hooks receive a
	// pointer into them and must not retain it past the hook call.
	scratch  Access
	scratchB Access

	body func(*Thread)
}

// Machine is the simulated multicore.
type Machine struct {
	cfg     Config
	cacheS  *cache.System
	threads []*Thread
	hooks   Hooks
	sched   Scheduler

	mu      sync.Mutex
	timers  timerHeap
	started bool
	failure error
	aborted atomic.Bool

	nextTimerID int
}

type timer struct {
	id     int
	at     int64
	period int64 // 0 = one-shot
	fn     func(now int64)
}

// timerHeap is a min-heap of timers ordered by (at, id): earliest deadline
// first, insertion order among ties. The id tiebreak is what makes
// same-deadline firing order deterministic — the old sort-on-insert list
// ordered ties arbitrarily.
type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// New constructs a machine with cfg.Cores threads ready to run.
func New(cfg Config) *Machine {
	if cfg.Cores < 1 {
		panic("machine: need at least one core")
	}
	if cfg.Cache == nil {
		cfg.Cache = cache.New(cfg.Cores)
	}
	m := &Machine{cfg: cfg, cacheS: cfg.Cache}
	for i := 0; i < cfg.Cores; i++ {
		m.threads = append(m.threads, &Thread{
			ID:   i,
			Core: i,
			m:    m,
			rng:  rand.New(rand.NewSource(cfg.Seed*7919 + int64(i) + 1)),
		})
	}
	return m
}

// SetHooks installs the runtime hooks. Must be called before Run.
func (m *Machine) SetHooks(h Hooks) { m.hooks = h }

// SetScheduler installs an external scheduling strategy (nil restores the
// default min-clock policy). Must be called before Run.
func (m *Machine) SetScheduler(s Scheduler) { m.sched = s }

// Cache returns the coherence system.
func (m *Machine) Cache() *cache.System { return m.cacheS }

// Threads returns the machine's threads.
func (m *Machine) Threads() []*Thread { return m.threads }

// Thread returns thread i.
func (m *Machine) Thread(i int) *Thread { return m.threads[i] }

// AddTimer schedules fn at simulated time at; if period > 0 it repeats.
// Timers fire at scheduling boundaries, with all threads quiescent.
func (m *Machine) AddTimer(at, period int64, fn func(now int64)) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTimerID++
	t := &timer{id: m.nextTimerID, at: at, period: period, fn: fn}
	heap.Push(&m.timers, t)
	return t.id
}

// RemoveTimer cancels a timer by id.
func (m *Machine) RemoveTimer(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, t := range m.timers {
		if t.id == id {
			heap.Remove(&m.timers, i)
			return
		}
	}
}

// Run executes bodies, one per thread (len(bodies) must not exceed the core
// count; extra cores stay idle). It blocks until all threads finish and
// returns the first failure (panic in a body, deadlock) if any.
//
// Run is the scheduler's driver loop: every thread body runs as a coroutine
// (iter.Pull), and the driver — the Run caller's goroutine — repeatedly
// picks the next runnable thread, fires due timers, and switches to it.
// Exactly one goroutine executes at any moment (the driver or the resumed
// thread), so the whole simulation is sequential; coroutine switches
// transfer control directly, never through the Go scheduler.
func (m *Machine) Run(bodies []func(*Thread)) error {
	if len(bodies) > len(m.threads) {
		return fmt.Errorf("machine: %d bodies for %d cores", len(bodies), len(m.threads))
	}
	if m.started {
		return fmt.Errorf("machine: Run called twice")
	}
	m.started = true
	var live []*Thread
	for i, t := range m.threads {
		if i < len(bodies) {
			t.body = bodies[i]
			t.state = Ready
			live = append(live, t)
		} else {
			t.state = Done
		}
	}
	for _, t := range live {
		t := t
		t.resume, t.stop = iter.Pull(func(yieldTok func(struct{}) bool) {
			t.yieldTok = yieldTok
			// A coroutine started only so it can unwind (the machine
			// aborted before this thread ever ran) must not execute its
			// body.
			if !m.aborted.Load() {
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(abortSentinel); ok {
								return // controlled unwind after machine abort
							}
							if m.failure == nil {
								m.failure = fmt.Errorf("machine: thread %d panic: %v", t.ID, r)
							}
							m.aborted.Store(true)
						}
					}()
					t.body(t)
				}()
			}
			t.state = Done
		})
	}
	// Guarantee coroutine cleanup on every exit path: stop() unwinds a
	// thread parked at a yield (its yieldTok returns false and it panics out
	// via abortSentinel) and is a no-op on finished threads.
	defer func() {
		for _, t := range live {
			t.stop()
		}
	}()

	// The driver loop. A panic here can only come from a timer callback
	// (body and hook panics are recovered inside the coroutine); record it
	// as the run's failure like any other crash.
	func() {
		defer func() {
			if r := recover(); r != nil {
				if m.failure == nil {
					m.failure = fmt.Errorf("machine: panic: %v", r)
				}
				m.aborted.Store(true)
			}
		}()
		var prev *Thread
		for !m.aborted.Load() {
			next := m.scheduleNext(prev)
			if next == nil {
				break
			}
			prev = next
			next.resume()
		}
	}()
	return m.failure
}

// scheduleNext is the driver's scheduling point: it fires timers due before
// the next thread would run, detects deadlock, and picks the thread to
// resume — the min-clock thread, except that the previous holder keeps the
// token while within schedSlack cycles of the true minimum (or whatever the
// external Scheduler picks, with no slack batching). Returning nil ends the
// run.
func (m *Machine) scheduleNext(prev *Thread) *Thread {
	for {
		next := m.minReady()
		// Fire timers due before the next thread would run. Timers advance
		// only with thread progress: once no thread is runnable, remaining
		// timers never fire.
		if len(m.timers) > 0 && next != nil && m.timers[0].at <= next.clock {
			due := heap.Pop(&m.timers).(*timer)
			due.fn(due.at)
			if due.period > 0 {
				due.at += due.period
				heap.Push(&m.timers, due)
			}
			continue // re-evaluate: the timer may have changed thread states
		}
		if next == nil {
			// Nothing runnable: either everyone is done, or deadlock.
			for _, th := range m.threads {
				if th.state == Blocked {
					if m.failure == nil {
						at := int64(0)
						if prev != nil {
							at = prev.clock
						}
						m.failure = fmt.Errorf("machine: deadlock — all live threads blocked at t=%d", at)
					}
					m.aborted.Store(true)
					break
				}
			}
			return nil
		}
		if m.sched != nil {
			picked := m.sched.Pick(m.readyThreads())
			if picked == nil {
				if m.failure == nil {
					m.failure = ErrScheduleAbandoned
				}
				m.aborted.Store(true)
				return nil
			}
			return picked
		}
		// Slack: the previous holder keeps the token while within schedSlack
		// cycles of the true minimum. schedSlack is below every coherence
		// latency, so only local L1 hits batch — cross-core event ordering
		// is unaffected — while switches drop by an order of magnitude.
		if prev != nil && prev != next && prev.state == Ready && prev.clock <= next.clock+schedSlack {
			return prev
		}
		return next
	}
}

// yield is a thread-side scheduling point: hand the token back to the
// driver unless the thread may keep running.
//
// The fast path: under the one-token discipline only the token holder
// executes here, and every prior mutation of thread states, clocks and the
// timer heap happened either on this goroutine or before a coroutine switch
// (which is a happens-before edge). The thread keeps the token while it is
// still minimal (within schedSlack) and no timer is due — no driver round
// trip at all. With an external Scheduler there is no fast path: every
// yield is a scheduling point.
func (m *Machine) yield(t *Thread) {
	if m.sched == nil && !m.aborted.Load() && t.state == Ready {
		next := m.minReady()
		if next != nil &&
			(len(m.timers) == 0 || m.timers[0].at > next.clock) &&
			(next == t || t.clock <= next.clock+schedSlack) {
			return // keep the token: still minimal (within slack), no timer due
		}
	}
	if !t.yieldTok(struct{}{}) {
		// The driver stopped this coroutine: unwind to the Run wrapper.
		panic(abortSentinel{})
	}
	m.checkAbort()
}

// Elapsed reports the simulated run time: the maximum thread clock.
func (m *Machine) Elapsed() int64 {
	var max int64
	for _, t := range m.threads {
		if t.clock > max {
			max = t.clock
		}
	}
	return max
}

// ElapsedSeconds converts Elapsed to seconds at the simulated clock rate.
func (m *Machine) ElapsedSeconds() float64 {
	return float64(m.Elapsed()) / float64(cache.ClockHz)
}

func (m *Machine) minReady() *Thread {
	var best *Thread
	for _, t := range m.threads {
		if t.state != Ready {
			continue
		}
		if best == nil || t.clock < best.clock || (t.clock == best.clock && t.ID < best.ID) {
			best = t
		}
	}
	return best
}

// readyThreads returns the runnable threads in ID order.
func (m *Machine) readyThreads() []*Thread {
	var out []*Thread
	for _, th := range m.threads {
		if th.state == Ready {
			out = append(out, th)
		}
	}
	return out
}

// checkAbort panics out of a thread body when the machine has been aborted
// (deadlock or external failure); the Run wrapper recovers it. Lock-free:
// it runs after every instruction.
func (m *Machine) checkAbort() {
	if m.aborted.Load() {
		panic(abortSentinel{})
	}
}

type abortSentinel struct{}

// Fail aborts the run with err the next time the failing thread yields.
func (m *Machine) Fail(err error) {
	m.mu.Lock()
	if m.failure == nil {
		m.failure = err
	}
	m.mu.Unlock()
}
