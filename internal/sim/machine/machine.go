// Package machine implements the simulated multicore: threads pinned to
// cores, a deterministic min-clock discrete-event scheduler, the instruction
// API that workload programs execute (loads, stores, atomics, streaming,
// compute), simulated-time timers, and the hook points the TMI runtime
// attaches to (fault handling, address-space selection, access sampling,
// consistency-region callbacks).
//
// Each simulated thread runs as a goroutine, but only one thread executes at
// a time, always the runnable thread with the smallest local clock, so every
// run is deterministic for a fixed seed: memory operations are globally
// ordered by simulated time, which is what makes the coherence simulation
// and the consistency experiments reproducible.
package machine

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/sim/cache"
	"repro/internal/sim/mem"
)

// Config configures a Machine.
type Config struct {
	Cores int
	Seed  int64
	Mem   *mem.Memory
	Cache *cache.System
}

// Access describes one memory instruction as it flows through the hooks.
type Access struct {
	PC     uint64
	Addr   uint64 // virtual address
	Size   int
	Write  bool
	Atomic bool
}

// RegionKind tags code-region boundaries for code-centric consistency.
type RegionKind uint8

// Region kinds (paper §3.4).
const (
	RegionAtomicRelaxed RegionKind = iota
	RegionAtomicStrong
	RegionAsm
)

func (k RegionKind) String() string {
	switch k {
	case RegionAtomicRelaxed:
		return "atomic-relaxed"
	case RegionAtomicStrong:
		return "atomic-strong"
	case RegionAsm:
		return "asm"
	}
	return "?"
}

// Hooks are the runtime attachment points. All hooks run in the context of
// the executing thread with the machine quiescent (no other thread running),
// so they may inspect and mutate runtime state freely but must not block.
type Hooks struct {
	// SpaceFor selects the address space an access resolves through.
	// Nil or returning nil means the thread's current space. TMI uses this
	// to route atomics and assembly regions to the always-shared view.
	SpaceFor func(t *Thread, acc *Access) *mem.AddrSpace
	// OnFault handles a protection fault. Returning handled=true retries the
	// access once; cost is charged to the thread either way.
	OnFault func(t *Thread, acc *Access, f *mem.Fault) (handled bool, cost int64)
	// PostAccess observes every completed access (PEBS sampling) and may
	// charge extra cycles.
	PostAccess func(t *Thread, acc *Access, res cache.Result) (extra int64)
	// RegionEnter/RegionExit observe code-centric consistency boundaries.
	RegionEnter func(t *Thread, k RegionKind)
	RegionExit  func(t *Thread, k RegionKind)
	// OnFirstTouch charges the page-fault cost for a first touch of a page
	// (or a COW copy). If nil, DefaultFaultCost is used.
	OnFirstTouch func(t *Thread, tr mem.Translation) (cost int64)
	// OnValue observes the data value of every completed access, after the
	// data operation: the value loaded (for loads and the old value of
	// RMW/CAS) or the value stored. Unlike PostAccess it sees the datum, so
	// a model checker can log per-thread observed values.
	OnValue func(t *Thread, acc *Access, val uint64)
	// OnWake observes t unblocking (or depositing a wake permit for) other —
	// the scheduler-level happens-before edge a race detector needs.
	OnWake func(t, other *Thread)
}

// Scheduler is an external scheduling strategy. When installed via
// SetScheduler it replaces the default min-clock policy entirely: at every
// scheduling point the machine calls Pick with the runnable threads (sorted
// by ID, never empty) and runs the returned thread next. Clock-slack
// batching is disabled so every instruction is a scheduling point — the
// interleaving is exactly the sequence of Pick results, which is what lets
// a model checker enumerate schedules. Returning nil abandons the run: the
// machine aborts with ErrScheduleAbandoned (how DPOR prunes sleep-blocked
// interleavings).
type Scheduler interface {
	Pick(ready []*Thread) *Thread
}

// ErrScheduleAbandoned reports that the installed Scheduler gave up on the
// run by returning nil from Pick.
var ErrScheduleAbandoned = errors.New("machine: schedule abandoned by scheduler")

// DefaultFaultCost is the minor page-fault cost when no OnFirstTouch hook is
// installed.
const DefaultFaultCost = 3000

// schedSlack is the scheduler's clock tolerance: a thread keeps executing
// while no runnable thread is more than this many cycles behind it. It is
// chosen below the cheapest cross-core latency (LatUpgrade/LatLLC = 40), so
// batched execution can only reorder same-core L1 hits.
const schedSlack = 4

// ThreadState is a thread's scheduler state.
type ThreadState uint8

// Thread states.
const (
	Ready ThreadState = iota
	Blocked
	Done
)

// ThreadStats counts per-thread activity.
type ThreadStats struct {
	Instructions uint64
	MemOps       uint64
	HITM         uint64
	Faults       uint64
	FirstTouches uint64
}

// Thread is one simulated hardware thread, pinned 1:1 to a core.
type Thread struct {
	ID   int
	Core int

	m     *Machine
	space *mem.AddrSpace
	clock int64
	state ThreadState
	runCh chan struct{}
	rng   *rand.Rand

	// User carries runtime-private per-thread state (CCC region nesting,
	// PTSB dirty sets). The machine never inspects it.
	User any

	Stats ThreadStats

	// permits/pendingWake implement race-free wakeups: an Unblock that
	// arrives before the target's Block deposits a permit instead.
	permits     int
	pendingWake int64

	body func(*Thread)
}

// Machine is the simulated multicore.
type Machine struct {
	cfg     Config
	cacheS  *cache.System
	threads []*Thread
	hooks   Hooks
	sched   Scheduler

	mu      sync.Mutex
	timers  []*timer
	started bool
	doneCh  chan struct{}
	failure error
	aborted bool

	nextTimerID int
}

type timer struct {
	id     int
	at     int64
	period int64 // 0 = one-shot
	fn     func(now int64)
}

// New constructs a machine with cfg.Cores threads ready to run.
func New(cfg Config) *Machine {
	if cfg.Cores < 1 {
		panic("machine: need at least one core")
	}
	if cfg.Cache == nil {
		cfg.Cache = cache.New(cfg.Cores)
	}
	m := &Machine{cfg: cfg, cacheS: cfg.Cache, doneCh: make(chan struct{})}
	for i := 0; i < cfg.Cores; i++ {
		m.threads = append(m.threads, &Thread{
			ID:    i,
			Core:  i,
			m:     m,
			runCh: make(chan struct{}, 1),
			rng:   rand.New(rand.NewSource(cfg.Seed*7919 + int64(i) + 1)),
		})
	}
	return m
}

// SetHooks installs the runtime hooks. Must be called before Run.
func (m *Machine) SetHooks(h Hooks) { m.hooks = h }

// SetScheduler installs an external scheduling strategy (nil restores the
// default min-clock policy). Must be called before Run.
func (m *Machine) SetScheduler(s Scheduler) { m.sched = s }

// Cache returns the coherence system.
func (m *Machine) Cache() *cache.System { return m.cacheS }

// Threads returns the machine's threads.
func (m *Machine) Threads() []*Thread { return m.threads }

// Thread returns thread i.
func (m *Machine) Thread(i int) *Thread { return m.threads[i] }

// AddTimer schedules fn at simulated time at; if period > 0 it repeats.
// Timers fire at scheduling boundaries, with all threads quiescent.
func (m *Machine) AddTimer(at, period int64, fn func(now int64)) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTimerID++
	t := &timer{id: m.nextTimerID, at: at, period: period, fn: fn}
	m.timers = append(m.timers, t)
	sortTimers(m.timers)
	return t.id
}

// RemoveTimer cancels a timer by id.
func (m *Machine) RemoveTimer(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, t := range m.timers {
		if t.id == id {
			m.timers = append(m.timers[:i], m.timers[i+1:]...)
			return
		}
	}
}

func sortTimers(ts []*timer) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].at < ts[j].at })
}

// Run executes bodies, one per thread (len(bodies) must not exceed the core
// count; extra cores stay idle). It blocks until all threads finish and
// returns the first failure (panic in a body, deadlock) if any.
func (m *Machine) Run(bodies []func(*Thread)) error {
	if len(bodies) > len(m.threads) {
		return fmt.Errorf("machine: %d bodies for %d cores", len(bodies), len(m.threads))
	}
	if m.started {
		return fmt.Errorf("machine: Run called twice")
	}
	m.started = true
	for i, t := range m.threads {
		if i < len(bodies) {
			t.body = bodies[i]
			t.state = Ready
		} else {
			t.state = Done
		}
	}
	// Choose the first thread up front: with an external scheduler an
	// immediate abandon must fail the run before any goroutine starts.
	var first *Thread
	if m.sched != nil {
		if ready := m.readyThreads(); len(ready) > 0 {
			if first = m.sched.Pick(ready); first == nil {
				m.failure = ErrScheduleAbandoned
				return m.failure
			}
		}
	} else {
		first = m.minReady()
	}
	var wg sync.WaitGroup
	for _, t := range m.threads {
		if t.body == nil {
			continue
		}
		wg.Add(1)
		go func(t *Thread) {
			defer wg.Done()
			<-t.runCh
			// A thread woken only so it can unwind (the machine aborted
			// before it ever ran) must not execute its body.
			m.mu.Lock()
			aborted := m.aborted
			m.mu.Unlock()
			if !aborted {
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(abortSentinel); ok {
								return // controlled unwind after machine abort
							}
							m.mu.Lock()
							if m.failure == nil {
								m.failure = fmt.Errorf("machine: thread %d panic: %v", t.ID, r)
							}
							m.aborted = true
							m.mu.Unlock()
						}
					}()
					t.body(t)
				}()
			}
			m.finish(t)
		}(t)
	}
	if first != nil {
		first.runCh <- struct{}{}
	} else {
		close(m.doneCh)
	}
	<-m.doneCh
	wg.Wait()
	return m.failure
}

// Elapsed reports the simulated run time: the maximum thread clock.
func (m *Machine) Elapsed() int64 {
	var max int64
	for _, t := range m.threads {
		if t.clock > max {
			max = t.clock
		}
	}
	return max
}

// ElapsedSeconds converts Elapsed to seconds at the simulated clock rate.
func (m *Machine) ElapsedSeconds() float64 {
	return float64(m.Elapsed()) / float64(cache.ClockHz)
}

func (m *Machine) minReady() *Thread {
	var best *Thread
	for _, t := range m.threads {
		if t.state != Ready {
			continue
		}
		if best == nil || t.clock < best.clock || (t.clock == best.clock && t.ID < best.ID) {
			best = t
		}
	}
	return best
}

// readyThreads returns the runnable threads in ID order.
func (m *Machine) readyThreads() []*Thread {
	var out []*Thread
	for _, th := range m.threads {
		if th.state == Ready {
			out = append(out, th)
		}
	}
	return out
}

// yield hands the token to the next runnable thread (running due timers
// first) and, unless t is done, waits until the token comes back.
func (m *Machine) yield(t *Thread) {
	if m.sched != nil {
		m.yieldControlled(t)
		return
	}
	for {
		m.mu.Lock()
		next := m.minReady()
		// Fire timers due before the next thread would run. Timers advance
		// only with thread progress: once no thread is runnable, remaining
		// timers never fire.
		var due *timer
		if len(m.timers) > 0 && next != nil && m.timers[0].at <= next.clock {
			due = m.timers[0]
			m.timers = m.timers[1:]
		}
		if due != nil {
			m.mu.Unlock()
			due.fn(due.at)
			if due.period > 0 {
				m.mu.Lock()
				due.at += due.period
				m.timers = append(m.timers, due)
				sortTimers(m.timers)
				m.mu.Unlock()
			}
			continue // re-evaluate: the timer may have changed thread states
		}
		if next == nil {
			// Nothing runnable: either everyone is done, or deadlock.
			var blocked []*Thread
			for _, th := range m.threads {
				if th.state == Blocked {
					blocked = append(blocked, th)
				}
			}
			if len(blocked) > 0 {
				if m.failure == nil {
					m.failure = fmt.Errorf("machine: deadlock — all live threads blocked at t=%d", t.clock)
				}
				m.aborted = true
			}
			m.mu.Unlock()
			// Wake every parked goroutine so it can unwind via abort panic.
			for _, th := range blocked {
				select {
				case th.runCh <- struct{}{}:
				default:
				}
			}
			select {
			case <-m.doneCh:
			default:
				close(m.doneCh)
			}
			return
		}
		m.mu.Unlock()
		if next == t {
			return // keep the token
		}
		// Slack: keep the token while within schedSlack cycles of the true
		// minimum. schedSlack is below every coherence latency, so only
		// local L1 hits batch — cross-core event ordering is unaffected —
		// while token handoffs drop by an order of magnitude.
		if t.state == Ready && t.clock <= next.clock+schedSlack {
			return
		}
		// Read own state before handing over: the moment the token is sent,
		// the new holder may Unblock this thread concurrently.
		wasDone := t.state == Done
		next.runCh <- struct{}{}
		if wasDone {
			return
		}
		<-t.runCh
		m.checkAbort()
		return
	}
}

// yieldControlled is the scheduling point under an external Scheduler: no
// clock-slack batching, every yield consults Pick, and a nil Pick abandons
// the run. Timers and deadlock detection behave as in the default path.
func (m *Machine) yieldControlled(t *Thread) {
	for {
		m.mu.Lock()
		if m.aborted {
			m.mu.Unlock()
			m.shutdown(t)
			return
		}
		min := m.minReady()
		var due *timer
		if len(m.timers) > 0 && min != nil && m.timers[0].at <= min.clock {
			due = m.timers[0]
			m.timers = m.timers[1:]
		}
		if due != nil {
			m.mu.Unlock()
			due.fn(due.at)
			if due.period > 0 {
				m.mu.Lock()
				due.at += due.period
				m.timers = append(m.timers, due)
				sortTimers(m.timers)
				m.mu.Unlock()
			}
			continue
		}
		if min == nil {
			// Nothing runnable: either everyone is done, or deadlock.
			blocked := false
			for _, th := range m.threads {
				if th.state == Blocked {
					blocked = true
				}
			}
			if blocked {
				if m.failure == nil {
					m.failure = fmt.Errorf("machine: deadlock — all live threads blocked at t=%d", t.clock)
				}
				m.aborted = true
			}
			m.mu.Unlock()
			m.shutdown(t)
			return
		}
		ready := m.readyThreads()
		m.mu.Unlock()
		next := m.sched.Pick(ready)
		if next == nil {
			m.mu.Lock()
			if m.failure == nil {
				m.failure = ErrScheduleAbandoned
			}
			m.aborted = true
			m.mu.Unlock()
			m.shutdown(t)
			// The caller (step, Block, finish) runs checkAbort next and
			// unwinds; finish simply returns, ending the goroutine.
			return
		}
		if next == t {
			return // keep the token
		}
		wasDone := t.state == Done
		next.runCh <- struct{}{}
		if wasDone {
			return
		}
		<-t.runCh
		m.checkAbort()
		return
	}
}

// shutdown wakes every parked goroutine so it can unwind (each one runs
// checkAbort as soon as it holds the token, or skips its body if it never
// started) and marks the run finished. Safe to call more than once.
// Shutdown breaks the one-token discipline — every woken goroutine unwinds
// concurrently — so the state reads and the doneCh close must be serialized
// under m.mu against other unwinding goroutines.
func (m *Machine) shutdown(t *Thread) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, th := range m.threads {
		if th == t || th.body == nil || th.state == Done {
			continue
		}
		select {
		case th.runCh <- struct{}{}:
		default:
		}
	}
	select {
	case <-m.doneCh:
	default:
		close(m.doneCh)
	}
}

// checkAbort panics out of a thread body when the machine has been aborted
// (deadlock or external failure); the Run wrapper recovers it.
func (m *Machine) checkAbort() {
	m.mu.Lock()
	a := m.aborted
	m.mu.Unlock()
	if a {
		panic(abortSentinel{})
	}
}

type abortSentinel struct{}

func (m *Machine) finish(t *Thread) {
	// Under the token discipline this write is single-threaded, but after an
	// abort the unwinding goroutines run concurrently and shutdown reads
	// thread states — take the lock so the transition is always visible.
	m.mu.Lock()
	t.state = Done
	m.mu.Unlock()
	m.yield(t)
}

// Fail aborts the run with err the next time the failing thread yields.
func (m *Machine) Fail(err error) {
	m.mu.Lock()
	if m.failure == nil {
		m.failure = err
	}
	m.mu.Unlock()
}
