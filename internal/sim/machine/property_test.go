package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim/mem"
)

// Property: only one thread executes machine operations at a time (the
// token discipline), and per-thread clocks never go backwards.
func TestQuickTokenExclusivityAndMonotonicClocks(t *testing.T) {
	check := func(seed int64) bool {
		m := mem.NewMemory(mem.PageSize4K)
		f := m.NewFile("shm")
		as := mem.NewAddrSpace(m)
		as.Map(heapBase, 4, f, 0, false, mem.ProtRW)
		mc := New(Config{Cores: 4, Seed: seed, Mem: m})
		for _, th := range mc.Threads() {
			th.SetSpace(as)
		}
		violated := false
		var lastClock [4]int64
		body := func(th *Thread) {
			rng := rand.New(rand.NewSource(seed + int64(th.ID)))
			for i := 0; i < 300; i++ {
				before := th.Clock()
				switch rng.Intn(4) {
				case 0:
					th.Load(1, heapBase+uint64(rng.Intn(64))*8, 8)
				case 1:
					th.Store(1, heapBase+uint64(rng.Intn(64))*8, 8, uint64(i))
				case 2:
					th.AtomicRMW(1, heapBase, 8, func(o uint64) uint64 { return o + 1 })
				case 3:
					th.Work(int64(rng.Intn(200)))
				}
				if th.Clock() < before || th.Clock() < lastClock[th.ID] {
					violated = true
				}
				lastClock[th.ID] = th.Clock()
			}
		}
		if err := mc.Run([]func(*Thread){body, body, body, body}); err != nil {
			return false
		}
		return !violated && mc.Cache().CheckSWMR() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: determinism — identical seeds produce identical final memory,
// clocks and cache statistics, for random mixed workloads.
func TestQuickDeterminism(t *testing.T) {
	type outcome struct {
		elapsed int64
		hitm    uint64
		value   uint64
	}
	runOnce := func(seed int64) (outcome, bool) {
		m := mem.NewMemory(mem.PageSize4K)
		f := m.NewFile("shm")
		as := mem.NewAddrSpace(m)
		as.Map(heapBase, 4, f, 0, false, mem.ProtRW)
		mc := New(Config{Cores: 3, Seed: seed, Mem: m})
		for _, th := range mc.Threads() {
			th.SetSpace(as)
		}
		body := func(th *Thread) {
			rng := th.Rand()
			for i := 0; i < 400; i++ {
				addr := heapBase + uint64(rng.Intn(32))*8
				if rng.Intn(2) == 0 {
					th.Store(1, addr, 8, rng.Uint64())
				} else {
					th.Load(1, addr, 8)
				}
				th.Work(int64(rng.Intn(60)))
			}
		}
		if err := mc.Run([]func(*Thread){body, body, body}); err != nil {
			return outcome{}, false
		}
		tr, _ := as.Translate(heapBase, false)
		return outcome{mc.Elapsed(), mc.Cache().Stats().HITM, mem.LoadUint(tr, 8)}, true
	}
	check := func(seed int64) bool {
		a, ok := runOnce(seed)
		if !ok {
			return false
		}
		b, ok := runOnce(seed)
		return ok && a == b
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: Work-only threads accumulate exactly the requested cycles, and
// Elapsed equals the max across threads.
func TestQuickWorkAccounting(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := mem.NewMemory(mem.PageSize4K)
		mc := New(Config{Cores: 3, Seed: seed, Mem: m})
		var want [3]int64
		bodies := make([]func(*Thread), 3)
		for i := range bodies {
			n := rng.Intn(40) + 1
			var total int64
			chunks := make([]int64, n)
			for j := range chunks {
				chunks[j] = int64(rng.Intn(5000))
				total += chunks[j]
			}
			want[i] = total
			bodies[i] = func(th *Thread) {
				for _, c := range chunks {
					th.Work(c)
				}
			}
		}
		if err := mc.Run(bodies); err != nil {
			return false
		}
		var max int64
		for i, th := range mc.Threads() {
			if th.Clock() != want[i] {
				return false
			}
			if th.Clock() > max {
				max = th.Clock()
			}
		}
		return mc.Elapsed() == max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
