package perfev

import "testing"

func TestMonitorPerThreadEvents(t *testing.T) {
	m := NewMonitor(4, 10, 1)
	if m.Period() != 10 {
		t.Errorf("period %d", m.Period())
	}
	for tid := 0; tid < 4; tid++ {
		ev, err := m.Event(tid)
		if err != nil || ev.TID != tid {
			t.Fatalf("Event(%d): %v", tid, err)
		}
	}
	if _, err := m.Event(4); err == nil {
		t.Error("out-of-range tid must error")
	}
	if _, err := m.Event(-1); err == nil {
		t.Error("negative tid must error")
	}
}

func TestDrainAllCollectsEveryBuffer(t *testing.T) {
	m := NewMonitor(2, 1, 1)
	s := m.Sampler()
	for i := 0; i < 30; i++ {
		s.OnHITM(0, 0, 0x400000, 0x1000, 8, false, int64(i))
	}
	for i := 0; i < 20; i++ {
		s.OnHITM(1, 1, 0x400004, 0x2000, 8, false, int64(i))
	}
	recs := m.DrainAll()
	if len(recs) != 50 {
		t.Fatalf("drained %d, want 50", len(recs))
	}
	if again := m.DrainAll(); len(again) != 0 {
		t.Error("second drain should be empty")
	}
}

func TestPerThreadRead(t *testing.T) {
	m := NewMonitor(2, 1, 1)
	m.Sampler().OnHITM(1, 1, 0x400000, 0x1000, 8, false, 0)
	ev, _ := m.Event(0)
	if len(ev.Read()) != 0 {
		t.Error("thread 0 has no records")
	}
	ev1, _ := m.Event(1)
	if len(ev1.Read()) != 1 {
		t.Error("thread 1 should have one record")
	}
}

func TestEnableDisable(t *testing.T) {
	m := NewMonitor(1, 1, 1)
	m.Enable(false)
	m.Sampler().OnHITM(0, 0, 0x400000, 0x1000, 8, false, 0)
	if len(m.DrainAll()) != 0 {
		t.Error("disabled monitor must not record")
	}
	m.Enable(true)
	m.Sampler().OnHITM(0, 0, 0x400000, 0x1000, 8, false, 0)
	if len(m.DrainAll()) != 1 {
		t.Error("re-enabled monitor should record")
	}
}

func TestFootprintScalesWithThreads(t *testing.T) {
	small := NewMonitor(2, 1, 1).FootprintBytes()
	large := NewMonitor(8, 1, 1).FootprintBytes()
	if large != 4*small {
		t.Errorf("footprint should scale with thread count: %d vs %d", small, large)
	}
}
