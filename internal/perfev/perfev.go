// Package perfev is the userspace perf-API analog: the interface TMI's
// detection thread uses to consume HITM samples. It mirrors the structure of
// perf_event_open + mmap ring buffers — one event per monitored thread, a
// period parameter, and a drain operation — over the pebs hardware model.
//
// TMI deliberately uses only this standard interface (no custom driver, in
// contrast to LASER), which is what makes it portable; this package is the
// boundary that the detector is written against.
package perfev

import (
	"fmt"

	"repro/internal/sim/pebs"
)

// Event is one opened perf event (one monitored thread).
type Event struct {
	TID     int
	sampler *pebs.Sampler
}

// Monitor owns the perf events for all threads of an application.
type Monitor struct {
	sampler *pebs.Sampler
	events  []*Event
}

// NewMonitor opens a HITM sampling event for each of nThreads threads with
// the given period. This is the work TMI's pthread_create interposition
// does per thread.
func NewMonitor(nThreads, period int, seed int64) *Monitor {
	s := pebs.NewSampler(nThreads, period, seed)
	m := &Monitor{sampler: s}
	for i := 0; i < nThreads; i++ {
		m.events = append(m.events, &Event{TID: i, sampler: s})
	}
	return m
}

// Sampler exposes the underlying PEBS engine (the machine hooks feed it).
func (m *Monitor) Sampler() *pebs.Sampler { return m.sampler }

// Event returns the perf event for thread tid.
func (m *Monitor) Event(tid int) (*Event, error) {
	if tid < 0 || tid >= len(m.events) {
		return nil, fmt.Errorf("perfev: no event for tid %d", tid)
	}
	return m.events[tid], nil
}

// Read drains the thread's sample buffer.
func (e *Event) Read() []pebs.Record { return e.sampler.Buffer(e.TID).Drain() }

// DrainAll reads every thread's buffer and returns all pending records.
func (m *Monitor) DrainAll() []pebs.Record {
	return m.DrainInto(nil)
}

// DrainInto appends every thread's pending records to dst and returns the
// extended slice. With a reused dst this path is allocation-free at steady
// state (detect.Ingestor's drain contract).
func (m *Monitor) DrainInto(dst []pebs.Record) []pebs.Record {
	for _, e := range m.events {
		dst = m.sampler.Buffer(e.TID).DrainInto(dst)
	}
	return dst
}

// Period reports the configured sampling period.
func (m *Monitor) Period() int { return m.sampler.Period() }

// SetPeriod reprograms the period on every event.
func (m *Monitor) SetPeriod(p int) { m.sampler.SetPeriod(p) }

// Enable or disable sampling machine-wide.
func (m *Monitor) Enable(on bool) { m.sampler.SetEnabled(on) }

// Dropped reports records lost to full buffers, across all threads.
func (m *Monitor) Dropped() uint64 {
	var n uint64
	for _, e := range m.events {
		n += m.sampler.Buffer(e.TID).Dropped
	}
	return n
}

// FootprintBytes reports the perf-side memory cost (mmap buffers).
func (m *Monitor) FootprintBytes() uint64 { return m.sampler.FootprintBytes() }
