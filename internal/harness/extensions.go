package harness

import (
	"fmt"

	"repro/tmi"
)

// This file holds experiments beyond the paper's numbered tables and
// figures: quantities the paper claims in prose (the introduction's energy
// penalty, §4.4's commit-cost observations) and reproduction-specific
// ablations.

func init() {
	extra = []Experiment{
		{"energy", "Intro claim: false sharing's energy penalty, and repair's recovery", energyExp},
		{"commit-cost", "§4.4: PTSB commit cost under 4 KiB vs 2 MiB pages", commitCost},
		{"prediction", "Extension: Cheetah-style speedup prediction vs measured manual fix", predictionExp},
		{"static-layout", "Extension: tmilint static layout predictor vs dynamic detector", staticLayout},
		{"ingest", "Extension: tmid ingest throughput, NDJSON vs binary wire frames", ingestExp},
		{"repair-backends", "Extension: repair-backend sweep (t2p/pad/map/tmebox) on the two-socket NUMA model", backendsExp},
		{"cluster", "Extension: tmid cluster — live session migration latency and rebalance throughput", clusterExp},
	}
}

var extra []Experiment

// energyExp quantifies the introduction's claim that false sharing "exacts
// a significant energy penalty for generating and processing cache
// coherence traffic".
func energyExp(o *Options) error {
	header(o, "Energy: coherence traffic and energy estimate, before and after repair")
	csv, err := csvFile(o, "energy.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "workload", "baseline_uj", "tmi_uj", "manual_uj", "traffic_mb_baseline", "traffic_mb_tmi")
	fmt.Fprintf(o.Out, "%-14s %12s %12s %12s %10s\n", "workload", "pthreads uJ", "tmi uJ", "manual uJ", "saving")
	type row struct{ base, prot, man *cell }
	rows := make([]row, len(fsNames))
	for i, name := range fsNames {
		rows[i] = row{
			base: o.submit(fsWorkload(name), tmi.Config{System: tmi.Pthreads}),
			prot: o.submit(fsWorkload(name), tmi.Config{System: tmi.TMIProtect}),
			man:  o.submit(manualWorkload(name), tmi.Config{System: tmi.Pthreads}),
		}
	}
	for i, name := range fsNames {
		base, err := rows[i].base.mean()
		if err != nil {
			return err
		}
		prot, err := rows[i].prot.mean()
		if err != nil {
			return err
		}
		man, err := rows[i].man.mean()
		if err != nil {
			return err
		}
		be := base.Cache.EnergyMicroJ()
		te := prot.Cache.EnergyMicroJ()
		me := man.Cache.EnergyMicroJ()
		fmt.Fprintf(o.Out, "%-14s %12.1f %12.1f %12.1f %9.1fx\n", name, be, te, me, be/te)
		csvLine(csv, name, be, te, me,
			float64(base.Cache.TrafficBytes())/(1<<20), float64(prot.Cache.TrafficBytes())/(1<<20))
	}
	fmt.Fprintf(o.Out, "\nrepair removes the coherence round trips, not just their latency: the energy\n")
	fmt.Fprintf(o.Out, "and interconnect-traffic savings track the HITM elimination\n")
	return nil
}

// commitCost contrasts PTSB commit behavior across page sizes on the
// commit-heaviest benchmark (shptr-lock flushes at every lock operation):
// §4.4 observes that 4 KiB pages make commits ~5x cheaper while huge pages
// win overall via fault savings — so repair-bound, sync-heavy code prefers
// small pages.
func commitCost(o *Options) error {
	header(o, "§4.4: PTSB commit cost, 4 KiB vs 2 MiB pages (shptr-lock, commit-heaviest)")
	baseCell := o.submit(fsWorkload("shptr-lock"), tmi.Config{System: tmi.Pthreads})
	smallCell := o.submit(fsWorkload("shptr-lock"), tmi.Config{System: tmi.TMIProtect})
	hugeCell := o.submit(fsWorkload("shptr-lock"), tmi.Config{System: tmi.TMIProtect, HugePages: true})
	base, err := baseCell.mean()
	if err != nil {
		return err
	}
	small, err := smallCell.mean()
	if err != nil {
		return err
	}
	huge, err := hugeCell.mean()
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "%-22s %12s %10s %14s\n", "config", "runtime(ms)", "speedup", "commits")
	fmt.Fprintf(o.Out, "%-22s %12.3f %10s %14s\n", "pthreads", base.SimSeconds*1e3, "1.00x", "-")
	fmt.Fprintf(o.Out, "%-22s %12.3f %9.2fx %14d\n", "tmi-protect 4K", small.SimSeconds*1e3,
		tmi.Speedup(base, small), small.Commits)
	fmt.Fprintf(o.Out, "%-22s %12.3f %9.2fx %14d\n", "tmi-protect 2M", huge.SimSeconds*1e3,
		tmi.Speedup(base, huge), huge.Commits)
	fmt.Fprintf(o.Out, "\nwith a commit at every lock acquire and release, each commit diffs the whole\n")
	fmt.Fprintf(o.Out, "protected page: 4 KiB keeps that cheap; a 2 MiB page pays 512 slab compares per\n")
	fmt.Fprintf(o.Out, "commit (paper: 4 KiB commits ~5x cheaper; huge pages still win overall on fault-\n")
	fmt.Fprintf(o.Out, "bound workloads — Figure 10)\n")
	return nil
}

// predictionExp validates the Cheetah-style estimator (an analysis from the
// related work, §5, implemented over TMI's own sample stream): the detector
// predicts the manual-fix speedup from sampled false-sharing rates; the
// harness measures the real manual fix and compares.
func predictionExp(o *Options) error {
	header(o, "Extension: predicted (Cheetah-style) vs measured manual-fix speedup")
	fmt.Fprintf(o.Out, "%-14s %12s %10s %8s\n", "workload", "predicted", "measured", "ratio")
	type row struct{ det, base, man *cell }
	rows := make([]row, len(fsNames))
	for i, name := range fsNames {
		rows[i] = row{
			det:  o.submit(fsWorkload(name), tmi.Config{System: tmi.TMIDetect, HugePages: true}),
			base: o.submit(fsWorkload(name), tmi.Config{System: tmi.Pthreads}),
			man:  o.submit(manualWorkload(name), tmi.Config{System: tmi.Pthreads}),
		}
	}
	for i, name := range fsNames {
		det, err := rows[i].det.mean()
		if err != nil {
			return err
		}
		base, err := rows[i].base.mean()
		if err != nil {
			return err
		}
		man, err := rows[i].man.mean()
		if err != nil {
			return err
		}
		measured := tmi.Speedup(base, man)
		ratio := 0.0
		if measured > 0 {
			ratio = det.PredictedManualSpeedup / measured
		}
		fmt.Fprintf(o.Out, "%-14s %11.2fx %9.2fx %8.2f\n",
			name, det.PredictedManualSpeedup, measured, ratio)
	}
	fmt.Fprintf(o.Out, "\nthe estimate counts only sampled HITM savings, so it under-predicts where the\n")
	fmt.Fprintf(o.Out, "fix also removes secondary traffic (as Cheetah's conservative estimates do)\n")
	return nil
}
