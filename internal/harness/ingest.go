package harness

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/service"
	"repro/internal/toolio"
	"repro/tmi"
	"repro/tmi/workloads"
)

// ingestExp measures tmid's wire-encoding ingest throughput: one captured
// HITM trace streamed by a fleet of concurrent clients over the NDJSON
// encoding and again over the binary columnar frames, against an in-process
// server. Every client's advice is still checked byte-for-byte against the
// offline detector, so the A/B only counts runs that preserved parity. The
// per-encoding records/s and the speedup land in the benchmark trajectory
// via Options.Stat.
func ingestExp(o *Options) error {
	header(o, "Extension: tmid ingest throughput, NDJSON vs binary frames")
	csv, err := csvFile(o, "ingest.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "encoding", "clients", "records", "seconds", "records_per_sec")

	w, err := workloads.ByName("histogramfs")
	if err != nil {
		return err
	}
	// Period 1 captures the densest trace the simulator can produce
	// (~500 records per window): the run is then decode-bound rather than
	// tick-round-trip-bound, which is the regime the binary frames target.
	rep, err := tmi.Run(w, tmi.Config{
		System: tmi.TMIDetect, Period: 1, HugePages: true,
		Seed: o.Seed, CaptureSamples: true,
	})
	if err != nil {
		return err
	}
	log := rep.SampleLog
	if log == nil || log.Len() == 0 {
		return fmt.Errorf("harness: histogramfs produced no captured samples")
	}
	// Enough volume per client that connection setup and the first-window
	// warmup are noise.
	const clients, minRecords = 16, 100_000
	repeat := 1
	for repeat*log.Len() < minRecords {
		repeat++
	}

	dcfg := detect.Config{
		ThresholdPerSec: detect.DefaultConfig().ThresholdPerSec,
		MinRecords:      detect.DefaultConfig().MinRecords,
	}
	want, err := service.Replay(log, log.PageSize, dcfg, detect.DefaultPeriodController(), repeat)
	if err != nil {
		return err
	}

	srv := service.New(service.Config{Shards: 4, QueueDepth: 1024})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		srv.Drain()
	}()
	base := "http://" + ln.Addr().String()

	fmt.Fprintf(o.Out, "trace: %d records x%d replay, %d clients\n\n", log.Len(), repeat, clients)
	fmt.Fprintf(o.Out, "%-10s %12s %10s %16s\n", "encoding", "records", "seconds", "records/s")

	rates := map[string]float64{}
	for _, mode := range []string{"ndjson", "binary"} {
		wire := ""
		if mode == "binary" {
			wire = toolio.WireFormatBinary
		}
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			records int
			runErr  error
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl := &service.Client{
					BaseURL:  base,
					Tenant:   fmt.Sprintf("ingest-%s-%d", mode, c),
					PageSize: log.PageSize,
					Wire:     wire,
				}
				res, err := cl.Replay(log, repeat)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err != nil && runErr == nil:
					runErr = err
				case err == nil && !bytes.Equal(res.Advice, want) && runErr == nil:
					runErr = fmt.Errorf("%s client %d: advice diverged from offline replay", mode, c)
				case err == nil:
					records += res.Records
				}
			}(c)
		}
		wg.Wait()
		if runErr != nil {
			return runErr
		}
		elapsed := time.Since(start).Seconds()
		rate := float64(records) / elapsed
		rates[mode] = rate
		fmt.Fprintf(o.Out, "%-10s %12d %10.3f %16.0f\n", mode, records, elapsed, rate)
		csvLine(csv, mode, clients, records, elapsed, rate)
		o.Stat("ingest_records_per_sec_"+mode, rate)
	}
	speedup := rates["binary"] / rates["ndjson"]
	o.Stat("ingest_binary_speedup", speedup)
	fmt.Fprintf(o.Out, "\nbinary/ndjson ingest speedup: %.1fx (all advice parity-checked)\n", speedup)
	return nil
}
