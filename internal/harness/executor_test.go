package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/tmi"
	"repro/tmi/workloads"
)

// renderExperiment runs one experiment with the given worker count and
// returns its stdout plus every CSV file it wrote, keyed by name.
func renderExperiment(t *testing.T, id string, parallel, runs int) (string, map[string]string) {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	o := &Options{Runs: runs, Seed: 1, Out: &buf, CSVDir: dir, Parallel: parallel}
	defer o.Close()
	if err := e.Execute(o); err != nil {
		t.Fatal(err)
	}
	csvs := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		csvs[ent.Name()] = string(data)
	}
	return buf.String(), csvs
}

// TestParallelByteIdentical is the executor determinism contract: any
// -parallel value must produce byte-identical tables and CSVs. fig9 covers
// a multi-workload multi-system sweep with spread statistics; fig4 covers a
// config sweep over one workload.
func TestParallelByteIdentical(t *testing.T) {
	for _, id := range []string{"fig9", "fig4"} {
		t.Run(id, func(t *testing.T) {
			seqOut, seqCSV := renderExperiment(t, id, 1, 2)
			parOut, parCSV := renderExperiment(t, id, 8, 2)
			if seqOut != parOut {
				t.Errorf("stdout differs between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
			}
			if len(seqCSV) == 0 {
				t.Fatalf("%s wrote no CSV", id)
			}
			for name, want := range seqCSV {
				if got := parCSV[name]; got != want {
					t.Errorf("%s differs between -parallel 1 and -parallel 8", name)
				}
			}
		})
	}
}

// TestRunsValidation is the regression test for the NaN-mean bug: a
// non-positive repetition count must be rejected with an error, never
// silently averaged into a 0/0 NaN.
func TestRunsValidation(t *testing.T) {
	o := &Options{Runs: -1}
	if err := o.defaults(); err == nil {
		t.Error("defaults() accepted Runs = -1")
	}
	o2 := &Options{Runs: 0}
	if err := o2.defaults(); err != nil || o2.Runs != 3 {
		t.Errorf("defaults() on Runs = 0: err %v, Runs %d (want nil, 3)", err, o2.Runs)
	}
	// Bypassing defaults must still fail loudly inside runStats.
	o3 := &Options{Out: &bytes.Buffer{}, Seed: 1}
	defer o3.Close()
	_, _, err := runStats(o3, fsWorkload("histogram"), tmi.Config{})
	if err == nil {
		t.Fatal("runStats with Runs = 0 returned no error")
	}
	// And Experiment.Execute must reject before any cell runs.
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	bad := &Options{Runs: -5, Out: &bytes.Buffer{}}
	if err := e.Execute(bad); err == nil {
		t.Error("Execute accepted Runs = -5")
	}
}

// TestSpeedupGuardNoInf is the regression test for the raw SimSeconds
// divisions: a zero-time baseline must render as 0.00x, not +Inf or NaN.
func TestSpeedupGuardNoInf(t *testing.T) {
	zero := &tmi.Report{}
	base := &tmi.Report{SimSeconds: 1}
	if got := tmi.Speedup(base, zero); got != 0 {
		t.Errorf("Speedup(base, zero) = %v, want 0", got)
	}
	cellStr := fmt.Sprintf("%7.2fx", tmi.Speedup(base, zero))
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(cellStr, bad) {
			t.Errorf("formatted speedup %q contains %s", cellStr, bad)
		}
	}
}

// TestExecutorRunsAllCells checks the pool completes a grid far larger than
// the worker count, with per-cell results matching a direct tmi.Run.
func TestExecutorRunsAllCells(t *testing.T) {
	o := &Options{Runs: 1, Seed: 1, Out: &bytes.Buffer{}, Parallel: 4}
	defer o.Close()
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}
	const n = 32
	cells := make([]*cell, n)
	for i := range cells {
		cells[i] = o.submit(fsWorkload("histogram"), tmi.Config{System: tmi.Pthreads})
	}
	w, err := workloads.ByName("histogram")
	if err != nil {
		t.Fatal(err)
	}
	want, err := tmi.Run(w, tmi.Config{System: tmi.Pthreads, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		rep, err := c.mean()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if rep.SimSeconds != want.SimSeconds {
			t.Fatalf("cell %d: SimSeconds %v, want %v (nondeterministic parallel run?)", i, rep.SimSeconds, want.SimSeconds)
		}
	}
}

// TestRunTimedBench checks the benchmark-trajectory plumbing end to end:
// telemetry populated, rows aggregated, document round-trips through JSON.
func TestRunTimedBench(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := &Options{Runs: 1, Seed: 1, Out: &bytes.Buffer{}, Parallel: 4}
	defer o.Close()
	row, err := o.RunTimed(e)
	if err != nil {
		t.Fatal(err)
	}
	if row.ID != "fig4" {
		t.Errorf("row.ID = %q", row.ID)
	}
	// fig4 runs 1 baseline + 6 period configs at Runs=1.
	if row.Cells != 7 {
		t.Errorf("row.Cells = %d, want 7", row.Cells)
	}
	if row.WallSeconds <= 0 || row.BusySeconds <= 0 || row.Speedup <= 0 {
		t.Errorf("timings not populated: %+v", row)
	}
	if row.SimSeconds <= 0 || row.RecordsSeen == 0 {
		t.Errorf("simulated metrics not populated: %+v", row)
	}
}

// TestCancelMidGrid cancels the sweep context partway through a grid:
// queued cells must fail with the context error (not hang, not run), cells
// that already completed must keep their reports, and submits after
// cancellation must fail immediately.
func TestCancelMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := &Options{Runs: 1, Seed: 1, Out: &bytes.Buffer{}, Parallel: 1, Ctx: ctx}
	defer o.Close()
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}

	// One worker: the first cell runs, the rest queue behind it.
	const n = 16
	cells := make([]*cell, n)
	for i := range cells {
		cells[i] = o.submit(fsWorkload("histogram"), tmi.Config{System: tmi.Pthreads})
	}
	first, err := cells[0].mean()
	if err != nil {
		t.Fatalf("cell 0 (ran before cancellation): %v", err)
	}
	if first.SimSeconds <= 0 {
		t.Fatalf("cell 0 report incomplete: %+v", first)
	}

	cancel()

	// Every remaining cell resolves — some may have run before the
	// cancellation landed, but none may hang and every failure must carry
	// the context error.
	canceled := 0
	for i := 1; i < n; i++ {
		rep, err := cells[i].mean()
		switch {
		case err == nil:
			if rep.SimSeconds != first.SimSeconds {
				t.Fatalf("cell %d: completed run diverged: %v vs %v", i, rep.SimSeconds, first.SimSeconds)
			}
		case errors.Is(err, context.Canceled):
			canceled++
		default:
			t.Fatalf("cell %d: error %v, want context.Canceled", i, err)
		}
	}
	if canceled == 0 {
		t.Error("no queued cell observed the cancellation (grid too fast for the test premise?)")
	}

	// Post-cancellation submits fail fast with the same error.
	late := o.submit(fsWorkload("histogram"), tmi.Config{System: tmi.Pthreads})
	if _, err := late.mean(); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel submit: error %v, want context.Canceled", err)
	}
}

// TestNilCtxSweepRunsToCompletion pins the compatibility contract: Options
// without a context behave exactly as before.
func TestNilCtxSweepRunsToCompletion(t *testing.T) {
	o := &Options{Runs: 2, Seed: 1, Out: &bytes.Buffer{}, Parallel: 2}
	defer o.Close()
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}
	rep, err := o.submit(fsWorkload("histogram"), tmi.Config{System: tmi.Pthreads}).mean()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimSeconds <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
}
