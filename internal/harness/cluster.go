package harness

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/detect"
	"repro/internal/service"
	"repro/tmi"
	"repro/tmi/workloads"
)

// clusterExp measures the cluster tier's live-rebalancing cost: a client
// fleet streams one captured HITM trace through a tmirouter front end over
// three in-process tmid nodes, and mid-run a fourth node is added and the
// first drained — so every tenant resident on the drained node live-
// migrates at its next clean stream boundary. Every client's advice is
// still checked byte-for-byte against the offline replay (a migration that
// perturbed a verdict would fail the run, not just skew a number). The
// migration latency quantiles and the rebalance throughput land in the
// benchmark trajectory via Options.Stat as migration_ms_p50/p99 and
// rebalance_records_per_sec.
func clusterExp(o *Options) error {
	header(o, "Extension: tmid cluster — live session migration under a streaming fleet")
	csv, err := csvFile(o, "cluster.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "clients", "parity_ok", "migrations_ok", "migrations_failed",
		"migrated_records", "migration_ms_p50", "migration_ms_p99", "rebalance_records_per_sec")

	w, err := workloads.ByName("histogramfs")
	if err != nil {
		return err
	}
	rep, err := tmi.Run(w, tmi.Config{
		System: tmi.TMIDetect, Period: 1, HugePages: true,
		Seed: o.Seed, CaptureSamples: true,
	})
	if err != nil {
		return err
	}
	log := rep.SampleLog
	if log == nil || log.Len() == 0 || len(log.Windows) == 0 {
		return fmt.Errorf("harness: histogramfs produced no captured samples")
	}
	// Enough windows per client that the mid-run ring change lands well
	// inside every stream, with clean boundaries on both sides of it.
	const clients, minRecords = 16, 50_000
	repeat := 1
	for repeat*log.Len() < minRecords {
		repeat++
	}

	dcfg := detect.Config{
		ThresholdPerSec: detect.DefaultConfig().ThresholdPerSec,
		MinRecords:      detect.DefaultConfig().MinRecords,
	}
	want, err := service.Replay(log, log.PageSize, dcfg, detect.DefaultPeriodController(), repeat)
	if err != nil {
		return err
	}

	lc, err := cluster.NewLocal(3, service.Config{Shards: 2, QueueDepth: 1024}, cluster.Config{
		ProbeInterval: 100 * time.Millisecond, FailAfter: 2,
	})
	if err != nil {
		return err
	}
	defer lc.Close()

	fmt.Fprintf(o.Out, "trace: %d records x%d replay, %d clients over 3 nodes (+1 added, 1 drained mid-run)\n\n",
		log.Len(), repeat, clients)

	// Mid-run ring change: a fresh node joins and the first node drains, so
	// its resident tenants must live-migrate while their streams run.
	time.AfterFunc(150*time.Millisecond, func() {
		if _, err := lc.AddNode(); err != nil {
			fmt.Fprintf(o.Out, "cluster: add node: %v\n", err)
			return
		}
		lc.Drain(0)
	})

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		parityOK int
		runErr   error
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lastErr error
			for attempt := 0; attempt < 10; attempt++ {
				cl := &service.Client{
					BaseURL:  lc.RouterURL,
					Tenant:   fmt.Sprintf("cluster-%d-a%d", c, attempt),
					PageSize: log.PageSize,
				}
				res, err := cl.Replay(log, repeat)
				if err != nil {
					lastErr = err
					time.Sleep(100 * time.Millisecond)
					continue
				}
				mu.Lock()
				if bytes.Equal(res.Advice, want) {
					parityOK++
				} else if runErr == nil {
					runErr = fmt.Errorf("client %d: advice diverged across migration", c)
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			if runErr == nil {
				runErr = fmt.Errorf("client %d: %v", c, lastErr)
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if runErr != nil {
		return runErr
	}

	ms := lc.Router.MigrationStats()
	rps := 0.0
	if ms.TotalMS > 0 {
		rps = float64(ms.Records) / (ms.TotalMS / 1000)
	}
	fmt.Fprintf(o.Out, "%-28s %d/%d\n", "clients parity-ok", parityOK, clients)
	fmt.Fprintf(o.Out, "%-28s ok=%d noop=%d failed=%d\n", "live migrations", ms.OK, ms.Noop, ms.Failed)
	fmt.Fprintf(o.Out, "%-28s %d\n", "records rebalanced", ms.Records)
	fmt.Fprintf(o.Out, "%-28s p50 %.1f ms, p99 %.1f ms\n", "migration latency", ms.P50ms, ms.P99ms)
	fmt.Fprintf(o.Out, "%-28s %.0f records/s\n", "rebalance throughput", rps)
	csvLine(csv, clients, parityOK, ms.OK, ms.Failed, ms.Records, ms.P50ms, ms.P99ms, rps)

	if parityOK != clients {
		return fmt.Errorf("harness: only %d/%d clients kept parity across the rebalance", parityOK, clients)
	}
	if ms.Failed > 0 {
		return fmt.Errorf("harness: %d migrations failed", ms.Failed)
	}
	o.Stat("migration_ms_p50", ms.P50ms)
	o.Stat("migration_ms_p99", ms.P99ms)
	o.Stat("rebalance_records_per_sec", rps)
	o.Stat("cluster_migrations_ok", float64(ms.OK))

	fmt.Fprintf(o.Out, "\na live migration ships the session's captured trace and replays it through the\n")
	fmt.Fprintf(o.Out, "destination's own advise path — parity above proves the rebalance was invisible\n")
	return nil
}
