package harness

import (
	"fmt"

	"repro/internal/analysis"
	"repro/tmi"
)

// staticLayout scores the tmilint layout predictor against the dynamic
// PEBS/HITM detector across the repair suite: the static model abstractly
// interprets each workload to exact per-thread line footprints, while the
// dynamic run samples real accesses. Recall of the dynamically detected
// false-sharing lines should be 1.0 (the model sees every access the
// sampler can only sample); precision can drop below 1.0 on lines too cold
// for the sampler to accumulate MinRecords.
func staticLayout(o *Options) error {
	header(o, "Extension: static layout predictor vs dynamic detector (tmilint)")
	csv, err := csvFile(o, "staticlayout.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "workload", "static_false", "dynamic_false", "common", "precision", "recall")
	fmt.Fprintf(o.Out, "%-14s %8s %8s %8s %10s %8s\n",
		"workload", "static", "dynamic", "common", "precision", "recall")
	cells := make([]*cell, len(fsNames))
	for i, name := range fsNames {
		cells[i] = o.submit(fsWorkload(name), tmi.Config{System: tmi.TMIDetect})
	}
	var sumP, sumR float64
	var n int
	for i, name := range fsNames {
		m, err := analysis.BuildModel(fsWorkload(name)(), analysis.Options{Seed: o.Seed})
		if err != nil {
			return err
		}
		rep, err := cells[i].mean()
		if err != nil {
			return err
		}
		acc := analysis.CompareFalseSharing(m, rep.Lines, analysis.DefaultMinAccesses)
		fmt.Fprintf(o.Out, "%-14s %8d %8d %8d %10.2f %8.2f\n",
			name, acc.StaticFalse, acc.DynamicFalse, acc.Common, acc.Precision, acc.Recall)
		csvLine(csv, name, acc.StaticFalse, acc.DynamicFalse, acc.Common, acc.Precision, acc.Recall)
		sumP += acc.Precision
		sumR += acc.Recall
		n++
	}
	fmt.Fprintf(o.Out, "%-14s %8s %8s %8s %10.2f %8.2f\n", "mean", "", "", "",
		sumP/float64(n), sumR/float64(n))
	fmt.Fprintf(o.Out, "\nthe static model folds exact byte footprints, so it never misses a line the\n")
	fmt.Fprintf(o.Out, "sampler confirms (recall 1.0); it over-predicts lines the sampler leaves below\n")
	fmt.Fprintf(o.Out, "its record threshold, which costs precision, not soundness\n")
	return nil
}
