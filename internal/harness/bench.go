package harness

import (
	"sync"
	"time"

	"repro/internal/toolio"
)

// benchMeter accumulates executor telemetry for the benchmark-trajectory
// report: how many cells ran, how much host wall-clock they consumed in
// aggregate (busy time), and the headline simulated metrics. Workers report
// into it concurrently; RunTimed resets it per experiment.
type benchMeter struct {
	mu      sync.Mutex
	cells   int
	busy    time.Duration
	simSec  float64
	records uint64
	repairs int
}

func (m *benchMeter) record(j *runJob) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells++
	m.busy += j.wall
	if j.rep != nil {
		m.simSec += j.rep.SimSeconds
		m.records += j.rep.RecordsSeen
		if j.rep.Repaired {
			m.repairs++
		}
	}
}

func (m *benchMeter) reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells, m.busy, m.simSec, m.records, m.repairs = 0, 0, 0, 0, 0
}

func (m *benchMeter) snapshot() benchMeter {
	m.mu.Lock()
	defer m.mu.Unlock()
	return benchMeter{cells: m.cells, busy: m.busy, simSec: m.simSec, records: m.records, repairs: m.repairs}
}

// RunTimed executes e with wall-clock and executor telemetry and returns
// the experiment's row for the persisted benchmark trajectory
// (toolio.BenchReport). The aggregate busy time is what the same cells
// would have cost run back to back, so busy/wall is the sweep executor's
// parallel speedup over a sequential run without paying for a second,
// actually-sequential pass.
func (o *Options) RunTimed(e Experiment) (toolio.BenchExperiment, error) {
	if err := o.defaults(); err != nil {
		return toolio.BenchExperiment{}, err
	}
	o.executor() // force pool + meter creation before the clock starts
	o.meter.reset()
	start := time.Now()
	err := e.Run(o)
	wall := time.Since(start).Seconds()
	s := o.meter.snapshot()
	be := toolio.BenchExperiment{
		ID:          e.ID,
		WallSeconds: wall,
		Cells:       s.cells,
		BusySeconds: s.busy.Seconds(),
		SimSeconds:  s.simSec,
		RecordsSeen: s.records,
		Repairs:     s.repairs,
	}
	if wall > 0 {
		be.Speedup = be.BusySeconds / wall
	}
	return be, err
}
