// Package harness regenerates every table and figure of the paper's
// evaluation: each experiment runs the relevant workloads under the relevant
// systems, aggregates over repeated seeded runs, and prints the same rows or
// series the paper reports (and optionally CSV for plotting).
package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/tmi"
	"repro/tmi/workload"
)

// Options configures a harness invocation.
type Options struct {
	// Runs is the number of seeded repetitions averaged per configuration
	// (the paper averages 25; the default here is 3). Negative values are
	// rejected by defaults(): a non-positive repetition count would make
	// every mean a 0/0 NaN that silently poisons downstream tables.
	Runs int
	// Seed is the base seed; run i uses Seed+i.
	Seed int64
	// Out receives the rendered tables.
	Out io.Writer
	// CSVDir, when set, receives one CSV file per experiment.
	CSVDir string
	// Parallel is the number of host worker goroutines the sweep executor
	// fans simulation cells across (default runtime.GOMAXPROCS(0); 1 runs
	// the sweep sequentially). Output is byte-identical for any value.
	Parallel int
	// Ctx, when set, cancels the sweep: on Ctx.Done, queued cells fail with
	// Ctx.Err() (in-flight simulations finish — they have no preemption
	// points) and the running experiment returns that error. nil means the
	// sweep runs to completion.
	Ctx context.Context

	exec  *executor
	meter *benchMeter

	statsMu sync.Mutex
	stats   map[string]float64
}

// Stat records an invocation-wide named metric (Report.Stats naming
// convention). Experiments use it for numbers the executor telemetry cannot
// see — e.g. the ingest experiment's wire-encoding throughputs — and
// tmibench folds whatever accumulated into the persisted trajectory's Stats
// bag via DrainStats.
func (o *Options) Stat(name string, value float64) {
	o.statsMu.Lock()
	defer o.statsMu.Unlock()
	if o.stats == nil {
		o.stats = map[string]float64{}
	}
	o.stats[name] = value
}

// DrainStats returns the metrics recorded via Stat since the last drain and
// clears them.
func (o *Options) DrainStats() map[string]float64 {
	o.statsMu.Lock()
	defer o.statsMu.Unlock()
	s := o.stats
	o.stats = nil
	return s
}

func (o *Options) defaults() error {
	if o.Runs < 0 {
		return fmt.Errorf("harness: Options.Runs must be positive, got %d", o.Runs)
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	return nil
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o *Options) error
}

// Execute validates o (applying defaults) and runs the experiment. Prefer
// this over calling Run directly: it is the path that rejects invalid
// repetition counts instead of letting them surface as NaN means.
func (e Experiment) Execute(o *Options) error {
	if err := o.defaults(); err != nil {
		return err
	}
	return e.Run(o)
}

// All returns the experiments in paper order, followed by the extension
// experiments (prose claims and reproduction ablations).
func All() []Experiment {
	return append(core(), extra...)
}

func core() []Experiment {
	return []Experiment{
		{"table1", "Table 1: requirements for effective false sharing repair", table1},
		{"table2", "Table 2: cross-region consistency semantics", table2},
		{"fig3", "Figure 3: aligned multi-byte store atomicity (word tearing)", fig3},
		{"fig4", "Figure 4: perf sample period vs runtime and HITM events (leveldb)", fig4},
		{"fig5", "Figure 5: process/thread organization — the repair lifecycle trace", fig5},
		{"fig7", "Figure 7: detection runtime overhead across the suite", fig7},
		{"fig8", "Figure 8: memory overhead across the suite", fig8},
		{"fig9", "Figure 9: repair speedups on the false-sharing suite", fig9},
		{"table3", "Table 3: characterization of TMI's false sharing repair", table3},
		{"fig10", "Figure 10: 4 KiB vs 2 MiB huge pages", fig10},
		{"fig11", "Figure 11: canneal atomic swaps vs PTSB without CCC", fig11},
		{"fig12", "Figure 12: cholesky flag synchronization vs PTSB without CCC", fig12},
		{"ablation-everywhere", "§4.3: targeted repair vs PTSB-everywhere", ablationEverywhere},
		{"leveldb-detect", "§4.2: true vs false sharing in unmodified leveldb", leveldbDetect},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (one of %s)", id, strings.Join(ids, ", "))
}

// runStats executes w under cfg Options.Runs times with consecutive seeds
// and returns the first run's report with SimSeconds replaced by the mean,
// plus the relative standard deviation of the runtimes. It schedules the
// repetitions on the sweep executor and blocks for the aggregate, so
// callers that want cross-cell parallelism should submit their whole grid
// with Options.submit first and consume the cells afterwards.
func runStats(o *Options, w func() workload.Workload, cfg tmi.Config) (*tmi.Report, float64, error) {
	if o.Runs <= 0 {
		return nil, 0, fmt.Errorf("harness: Options.Runs must be positive, got %d (did defaults run?)", o.Runs)
	}
	return o.submit(w, cfg).stats()
}

// runMean is runStats without the spread.
func runMean(o *Options, w func() workload.Workload, cfg tmi.Config) (*tmi.Report, error) {
	rep, _, err := runStats(o, w, cfg)
	return rep, err
}

// csvFile opens a CSV file for an experiment, or returns nil if CSV output
// is disabled.
func csvFile(o *Options, name string) (*os.File, error) {
	if o.CSVDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(o.CSVDir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(o.CSVDir, name))
}

func csvLine(f *os.File, fields ...any) {
	if f == nil {
		return
	}
	parts := make([]string, len(fields))
	for i, v := range fields {
		parts[i] = fmt.Sprint(v)
	}
	fmt.Fprintln(f, strings.Join(parts, ","))
}

func header(o *Options, title string) {
	fmt.Fprintf(o.Out, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
