package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%q): %v", e.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ids must error")
	}
}

func TestExperimentIDsCoverEveryTableAndFigure(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig3", "fig4", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "ablation-everywhere", "leveldb-detect"}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

// TestLightExperimentsRun executes the cheap experiments end to end and
// checks their rendered output carries the expected headline facts. The
// heavyweight sweeps (fig7/fig8/fig10 over all 35 workloads) are covered by
// cmd/tmibench and the root benchmarks.
func TestLightExperimentsRun(t *testing.T) {
	for _, tc := range []struct {
		id   string
		want []string
	}{
		{"table2", []string{"undefined", "atomic", "TSO"}},
		{"fig3", []string{"0xABCD", "AMBSA preserved"}},
		{"fig11", []string{"INCORRECT", "correct"}},
		{"fig12", []string{"HUNG", "correct"}},
		{"table3", []string{"lu-ncb", "commits/s"}},
		{"leveldb-detect", []string{"true", "repaired: false"}},
		{"ablation-everywhere", []string{"histogramfs", "targeted"}},
	} {
		t.Run(tc.id, func(t *testing.T) {
			e, err := ByID(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			o := &Options{Runs: 1, Seed: 1, Out: &buf}
			defer o.Close()
			if err := e.Execute(o); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

func TestFig9WritesCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	o := &Options{Runs: 1, Seed: 1, Out: &buf, CSVDir: dir}
	defer o.Close()
	e, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Execute(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 10 { // header + 9 FS benchmarks
		t.Errorf("fig9.csv has %d lines, want 10", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,") {
		t.Errorf("csv header: %q", lines[0])
	}
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("fig9 output missing the geomean summary")
	}
}
