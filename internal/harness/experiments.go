package harness

import (
	"fmt"
	"math"

	"repro/internal/ccc"
	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

// Every experiment below is written in two phases: a submission phase that
// hands the whole (workload × configuration) grid to the sweep executor,
// and a render phase that consumes the cells in canonical order. The render
// phase is the pre-executor sequential code unchanged, so tables and CSVs
// are byte-identical at any -parallel setting.

// fsNames is the Figure 9 / Table 3 repair suite.
var fsNames = []string{
	"histogram", "histogramfs", "lreg", "stringmatch", "lu-ncb",
	"leveldb", "spinlockpool", "shptr-relaxed", "shptr-lock",
}

func fsWorkload(name string) func() workload.Workload {
	return func() workload.Workload {
		w, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		return w
	}
}

func manualWorkload(name string) func() workload.Workload {
	return func() workload.Workload {
		w, err := workloads.Manual(name)
		if err != nil {
			panic(err)
		}
		return w
	}
}

// suiteConstructors returns fresh-instance constructors for the 35-workload
// suite, keyed and ordered by name.
func suiteConstructors() ([]string, map[string]func() workload.Workload) {
	var names []string
	ctors := map[string]func() workload.Workload{}
	for _, w := range workloads.Suite() {
		name := w.Name()
		names = append(names, name)
		ctors[name] = fsWorkload(name)
	}
	return names, ctors
}

// ---------------------------------------------------------------- Figure 7

func fig7(o *Options) error {
	header(o, "Figure 7: runtime overhead of allocation and detection (normalized to pthreads; lower is better)")
	csv, err := csvFile(o, "fig7.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "workload", "sheriff-detect", "tmi-alloc", "tmi-detect")
	fmt.Fprintf(o.Out, "%-14s %14s %10s %11s\n", "workload", "sheriff-detect", "tmi-alloc", "tmi-detect")

	names, ctors := suiteConstructors()
	type row struct{ base, sheriff, alloc, det *cell }
	rows := make([]row, len(names))
	for i, name := range names {
		ctor := ctors[name]
		rows[i] = row{
			base:    o.submit(ctor, tmi.Config{System: tmi.Pthreads}),
			sheriff: o.submit(ctor, tmi.Config{System: tmi.SheriffDetect}),
			alloc:   o.submit(ctor, tmi.Config{System: tmi.TMIAlloc, HugePages: true}),
			det:     o.submit(ctor, tmi.Config{System: tmi.TMIDetect, HugePages: true}),
		}
	}

	var allocSum, detectSum float64
	var count int
	maxDetect, maxName := 0.0, ""
	sheriffWorks := 0
	for i, name := range names {
		base, err := rows[i].base.mean()
		if err != nil {
			return err
		}
		sheriffCol := "     x"
		if rep, err := rows[i].sheriff.mean(); err == nil {
			if rep.Validated {
				sheriffWorks++
				sheriffCol = fmt.Sprintf("%6.2f", tmi.Speedup(rep, base))
			} else {
				sheriffCol = "incorr"
			}
		}
		al, err := rows[i].alloc.mean()
		if err != nil {
			return err
		}
		det, err := rows[i].det.mean()
		if err != nil {
			return err
		}
		allocX := tmi.Speedup(al, base)
		detX := tmi.Speedup(det, base)
		allocSum += allocX
		detectSum += detX
		count++
		if detX > maxDetect {
			maxDetect, maxName = detX, name
		}
		fmt.Fprintf(o.Out, "%-14s %14s %9.2fx %10.2fx\n", name, sheriffCol, allocX, detX)
		csvLine(csv, name, sheriffCol, allocX, detX)
	}
	fmt.Fprintf(o.Out, "\nmean: tmi-alloc %.2fx, tmi-detect %.2fx (max %.2fx on %s)\n",
		allocSum/float64(count), detectSum/float64(count), maxDetect, maxName)
	fmt.Fprintf(o.Out, "sheriff-detect runs correctly on %d of %d workloads\n", sheriffWorks, count)
	fmt.Fprintf(o.Out, "paper: tmi-detect 1.02x mean (max 1.17x on kmeans); Sheriff works on 11 of 35\n")
	return nil
}

// ---------------------------------------------------------------- Figure 8

func fig8(o *Options) error {
	header(o, "Figure 8: memory usage in MB (pthreads baseline vs TMI-full; log-scale in the paper)")
	csv, err := csvFile(o, "fig8.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "workload", "pthreads_mb", "tmi_mb")
	fmt.Fprintf(o.Out, "%-14s %12s %12s %8s\n", "workload", "pthreads MB", "TMI-full MB", "ratio")

	names, ctors := suiteConstructors()
	type row struct{ base, full *cell }
	rows := make([]row, len(names))
	for i, name := range names {
		ctor := ctors[name]
		rows[i] = row{
			base: o.submit(ctor, tmi.Config{System: tmi.Pthreads}),
			full: o.submit(ctor, tmi.Config{System: tmi.TMIDetect, HugePages: true}),
		}
	}

	var ratioBig float64
	var nBig int
	for i, name := range names {
		base, err := rows[i].base.mean()
		if err != nil {
			return err
		}
		full, err := rows[i].full.mean()
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-14s %12.1f %12.1f %7.2fx\n", name, base.MemMB(), full.MemMB(), full.MemMB()/base.MemMB())
		csvLine(csv, name, base.MemMB(), full.MemMB())
		if base.MemMB() > 100 {
			ratioBig += full.MemMB() / base.MemMB()
			nBig++
		}
	}
	if nBig > 0 {
		fmt.Fprintf(o.Out, "\nmean overhead on >100MB workloads: %.0f%% (paper: ~19%% outside the tiny-footprint Phoenix codes)\n",
			(ratioBig/float64(nBig)-1)*100)
	}
	return nil
}

// ---------------------------------------------------------------- Figure 9

func fig9(o *Options) error {
	header(o, "Figure 9: speedup over pthreads where TMI repairs false sharing (higher is better)")
	csv, err := csvFile(o, "fig9.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "workload", "manual", "sheriff-protect", "laser", "tmi-protect")
	fmt.Fprintf(o.Out, "%-14s %8s %16s %8s %12s\n", "workload", "manual", "sheriff-protect", "laser", "tmi-protect")

	type row struct{ base, man, sheriff, las, prot *cell }
	rows := make([]row, len(fsNames))
	for i, name := range fsNames {
		rows[i] = row{
			base:    o.submit(fsWorkload(name), tmi.Config{System: tmi.Pthreads}),
			man:     o.submit(manualWorkload(name), tmi.Config{System: tmi.Pthreads}),
			sheriff: o.submit(fsWorkload(name), tmi.Config{System: tmi.SheriffProtect}),
			las:     o.submit(fsWorkload(name), tmi.Config{System: tmi.LASER}),
			prot:    o.submit(fsWorkload(name), tmi.Config{System: tmi.TMIProtect}),
		}
	}

	var tmiProd, manProd float64 = 1, 1
	var n int
	for i, name := range fsNames {
		base, err := rows[i].base.mean()
		if err != nil {
			return err
		}
		man, err := rows[i].man.mean()
		if err != nil {
			return err
		}
		sheriffCol := "       x"
		if rep, err := rows[i].sheriff.mean(); err == nil {
			if rep.Validated {
				sheriffCol = fmt.Sprintf("%7.2fx", tmi.Speedup(base, rep))
			} else {
				sheriffCol = "  incorr"
			}
		}
		las, err := rows[i].las.mean()
		if err != nil {
			return err
		}
		prot, sd, err := rows[i].prot.stats()
		if err != nil {
			return err
		}
		manX := tmi.Speedup(base, man)
		lasX := tmi.Speedup(base, las)
		tmiX := tmi.Speedup(base, prot)
		spread := ""
		if sd > 0 {
			spread = fmt.Sprintf(" (±%.0f%%)", sd*100)
		}
		fmt.Fprintf(o.Out, "%-14s %7.2fx %16s %7.2fx %11.2fx%s\n", name, manX, sheriffCol, lasX, tmiX, spread)
		csvLine(csv, name, manX, sheriffCol, lasX, tmiX)
		tmiProd *= tmiX
		manProd *= manX
		n++
	}
	tmiGeo := math.Pow(tmiProd, 1/float64(n))
	manGeo := math.Pow(manProd, 1/float64(n))
	fmt.Fprintf(o.Out, "\ngeomean: tmi-protect %.2fx, manual %.2fx -> TMI achieves %.0f%% of the manual speedup\n",
		tmiGeo, manGeo, 100*tmiGeo/manGeo)
	fmt.Fprintf(o.Out, "paper: TMI averages 5.2x and 88%% of manual; LASER attains 24%% of manual; Sheriff\n")
	fmt.Fprintf(o.Out, "fails on lu-ncb, leveldb and shptr-relaxed\n")
	return nil
}

// ---------------------------------------------------------------- Table 3

func table3(o *Options) error {
	header(o, "Table 3: characterization of TMI's false sharing repair")
	csv, err := csvFile(o, "table3.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "workload", "unrepaired_ms", "t2p_us", "commits_per_s")
	fmt.Fprintf(o.Out, "%-14s %15s %9s %12s\n", "workload", "unrepaired (ms)", "T2P (us)", "commits/s")
	cells := make([]*cell, len(fsNames))
	for i, name := range fsNames {
		cells[i] = o.submit(fsWorkload(name), tmi.Config{System: tmi.TMIProtect})
	}
	for i, name := range fsNames {
		rep, err := cells[i].mean()
		if err != nil {
			return err
		}
		unrepaired := "     (none)"
		if rep.Repaired && len(rep.T2PMicros) > 0 {
			unrepaired = fmt.Sprintf("%11.3f", rep.RepairAtSec*1e3)
		}
		fmt.Fprintf(o.Out, "%-14s %15s %9.0f %12.1f\n", name, unrepaired, rep.MeanT2PMicros(), rep.CommitsPerSec)
		csvLine(csv, name, rep.RepairAtSec*1e3, rep.MeanT2PMicros(), rep.CommitsPerSec)
	}
	fmt.Fprintf(o.Out, "\nnotes: lu-ncb repairs through the allocator alone (no conversion). Times are on the\n")
	fmt.Fprintf(o.Out, "reproduction's ~500x compressed timescale; T2P is reported uncompressed (paper: 73-179us).\n")
	return nil
}

// ---------------------------------------------------------------- Figure 4

func fig4(o *Options) error {
	header(o, "Figure 4: performance and precision of HITM sampling vs perf period (leveldb)")
	csv, err := csvFile(o, "fig4.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "period", "runtime_ms", "records", "est_events")
	periods := []int{1, 5, 10, 50, 100, 1000}
	baseCell := o.submit(fsWorkload("leveldb-clean"), tmi.Config{System: tmi.Pthreads})
	cells := make([]*cell, len(periods))
	for i, period := range periods {
		cells[i] = o.submit(fsWorkload("leveldb-clean"), tmi.Config{System: tmi.TMIDetect, HugePages: true, Period: period})
	}
	base, err := baseCell.mean()
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "%-8s %12s %10s %14s\n", "period", "runtime(ms)", "records", "est. events")
	fmt.Fprintf(o.Out, "%-8s %12.3f %10s %14s   (pthreads baseline)\n", "-", base.SimSeconds*1e3, "-", "-")
	for i, period := range periods {
		rep, err := cells[i].mean()
		if err != nil {
			return err
		}
		est := rep.RecordsSeen * uint64(period)
		fmt.Fprintf(o.Out, "%-8d %12.3f %10d %14d\n", period, rep.SimSeconds*1e3, rep.RecordsSeen, est)
		csvLine(csv, period, rep.SimSeconds*1e3, rep.RecordsSeen, est)
	}
	fmt.Fprintf(o.Out, "\npaper: small periods slow the run; large periods under-record events (counts scale by n/r)\n")
	return nil
}

// ---------------------------------------------------------------- Figure 5

func fig5(o *Options) error {
	header(o, "Figure 5: the repair lifecycle (monitoring process PM over application PA)")
	rep, err := runMean(o, fsWorkload("histogramfs"), tmi.Config{System: tmi.TMIProtect})
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, "histogramfs under tmi-protect:")
	for _, e := range rep.Events {
		fmt.Fprintln(o.Out, " ", e)
	}
	fmt.Fprintf(o.Out, "\nPM launches PA; the perf/detection thread samples HITM events; on detection PM\n")
	fmt.Fprintf(o.Out, "stops all threads with ptrace, converts each into a process via an injected fork\n")
	fmt.Fprintf(o.Out, "trampoline, resumes them, and arms the PTSB on the guilty pages\n")
	return nil
}

// ---------------------------------------------------------------- Figure 10

func fig10(o *Options) error {
	header(o, "Figure 10: runtime overhead of 4 KiB pages vs 2 MiB huge pages for TMI's shared memory")
	csv, err := csvFile(o, "fig10.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "workload", "overhead_pct")
	fmt.Fprintf(o.Out, "%-14s %16s\n", "workload", "4K vs 2M (+%)")
	names, ctors := suiteConstructors()
	type row struct{ small, huge *cell }
	rows := make([]row, len(names))
	for i, name := range names {
		ctor := ctors[name]
		rows[i] = row{
			small: o.submit(ctor, tmi.Config{System: tmi.TMIDetect}),
			huge:  o.submit(ctor, tmi.Config{System: tmi.TMIDetect, HugePages: true}),
		}
	}
	var sum float64
	for i, name := range names {
		small, err := rows[i].small.mean()
		if err != nil {
			return err
		}
		huge, err := rows[i].huge.mean()
		if err != nil {
			return err
		}
		pct := (tmi.Speedup(small, huge) - 1) * 100
		sum += pct
		fmt.Fprintf(o.Out, "%-14s %15.1f%%\n", name, pct)
		csvLine(csv, name, pct)
	}
	fmt.Fprintf(o.Out, "\nmean 4K overhead: %.1f%% (paper: huge pages a 6%% overall win, driven by the multi-GB workloads)\n",
		sum/float64(len(names)))
	return nil
}

// ---------------------------------------------------------------- Table 1

func table1(o *Options) error {
	header(o, "Table 1: requirements for effective false sharing repair")

	// Submission phase. Overhead without contention: tmi-detect and plastic
	// across the non-FS suite.
	names, ctors := suiteConstructors()
	type ovRow struct{ base, det, pls *cell }
	var ovRows []ovRow
	for _, name := range names {
		ctor := ctors[name]
		if ctor().Info().HasFalseSharing {
			continue
		}
		ovRows = append(ovRows, ovRow{
			base: o.submit(ctor, tmi.Config{System: tmi.Pthreads}),
			det:  o.submit(ctor, tmi.Config{System: tmi.TMIDetect, HugePages: true}),
			pls:  o.submit(ctor, tmi.Config{System: tmi.Plastic}),
		})
	}
	// Percent-of-manual speedup: each comparison system over the FS suite.
	type pmRow struct{ base, man, rep *cell }
	systems := []tmi.System{tmi.TMIProtect, tmi.LASER, tmi.SheriffProtect, tmi.Plastic}
	pm := make(map[tmi.System][]pmRow)
	for _, system := range systems {
		rows := make([]pmRow, len(fsNames))
		for i, name := range fsNames {
			rows[i] = pmRow{
				base: o.submit(fsWorkload(name), tmi.Config{System: tmi.Pthreads}),
				man:  o.submit(manualWorkload(name), tmi.Config{System: tmi.Pthreads}),
				rep:  o.submit(fsWorkload(name), tmi.Config{System: system}),
			}
		}
		pm[system] = rows
	}

	// Render phase.
	var tmiSum, plasticSum float64
	var n int
	for _, r := range ovRows {
		base, err := r.base.mean()
		if err != nil {
			return err
		}
		det, err := r.det.mean()
		if err != nil {
			return err
		}
		pls, err := r.pls.mean()
		if err != nil {
			return err
		}
		tmiSum += tmi.Speedup(det, base) - 1
		plasticSum += tmi.Speedup(pls, base) - 1
		n++
	}
	tmiOverhead := tmiSum / float64(n) * 100
	plasticOverhead := plasticSum / float64(n) * 100

	pctOfManual := func(system tmi.System) (float64, error) {
		var prodSys, prodMan float64 = 1, 1
		var k int
		for _, r := range pm[system] {
			base, err := r.base.mean()
			if err != nil {
				return 0, err
			}
			man, err := r.man.mean()
			if err != nil {
				return 0, err
			}
			rep, err := r.rep.mean()
			if err != nil || !rep.Validated {
				continue // incompatible or incorrect: no credit
			}
			prodSys *= tmi.Speedup(base, rep)
			prodMan *= tmi.Speedup(base, man)
			k++
		}
		if k == 0 {
			return 0, nil
		}
		return 100 * math.Pow(prodSys, 1/float64(k)) / math.Pow(prodMan, 1/float64(k)), nil
	}
	tmiPct, err := pctOfManual(tmi.TMIProtect)
	if err != nil {
		return err
	}
	laserPct, err := pctOfManual(tmi.LASER)
	if err != nil {
		return err
	}
	sheriffPct, err := pctOfManual(tmi.SheriffProtect)
	if err != nil {
		return err
	}
	plasticPct, err := pctOfManual(tmi.Plastic)
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "%-22s %-10s %-10s %-10s %-10s\n", "requirement", "Sheriff", "Plastic*", "LASER", "TMI")
	fmt.Fprintf(o.Out, "%-22s %-10s %-10s %-10s %-10s\n", "compatible", "no", "no", "yes", "yes")
	fmt.Fprintf(o.Out, "%-22s %-10s %-10s %-10s %-10s\n", "memory consistency", "no", "yes", "yes", "yes")
	fmt.Fprintf(o.Out, "%-22s %-10s %-10s %-10s %-10s\n", "overhead w/o FS", "27%",
		fmt.Sprintf("%+.0f%%", plasticOverhead), "2%", fmt.Sprintf("%+.0f%%", tmiOverhead))
	fmt.Fprintf(o.Out, "%-22s %-10s %-10s %-10s %-10s\n", "% of manual speedup",
		fmt.Sprintf("%.0f%%", sheriffPct), fmt.Sprintf("%.0f%%", plasticPct),
		fmt.Sprintf("%.0f%%", laserPct), fmt.Sprintf("%.0f%%", tmiPct))
	fmt.Fprintf(o.Out, "\n*Plastic runs under a cost model (DBI tax + byte-granularity remap of detected\n")
	fmt.Fprintf(o.Out, " lines); its hypervisor is not reimplemented. Paper row: 6%% overhead, ~30%% of manual.\n")
	fmt.Fprintf(o.Out, "Sheriff's %% is over the benchmarks it runs correctly; the paper reports 92%%.\n")
	fmt.Fprintf(o.Out, "Paper row: TMI 2%% overhead, 88%% of manual.\n")
	return nil
}

// ---------------------------------------------------------------- Table 2

func table2(o *Options) error {
	header(o, "Table 2: semantics of concurrent conflicting accesses between code regions")
	classes := ccc.Classes()
	fmt.Fprintf(o.Out, "%-10s", "")
	for _, c := range classes {
		fmt.Fprintf(o.Out, " %-22s", c)
	}
	fmt.Fprintln(o.Out)
	for _, a := range classes {
		fmt.Fprintf(o.Out, "%-10s", a)
		for _, b := range classes {
			tc := ccc.Table2(a, b)
			mark := " "
			if tc.PTSBPermitted {
				mark = "+" // shaded in the paper: PTSB permitted
			}
			fmt.Fprintf(o.Out, " %-22s", fmt.Sprintf("%d: %s %s", tc.Case, tc.Semantics, mark))
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintf(o.Out, "\n'+' marks interactions where TMI may leave the PTSB enabled.\n")
	return nil
}

// -------------------------------------------------- consistency experiments

func fig3(o *Options) error {
	header(o, "Figure 3: a PTSB without code-centric consistency breaks AMBSA (word tearing)")
	configs := []struct {
		label string
		w     func() workload.Workload
		sys   tmi.System
	}{
		{"pthreads (conventional)", func() workload.Workload { return workloads.WordTearing(true) }, tmi.Pthreads},
		{"sheriff-protect (PTSB, no CCC)", func() workload.Workload { return workloads.WordTearing(true) }, tmi.SheriffProtect},
		{"tmi-protect (PTSB + CCC)", func() workload.Workload { return workloads.WordTearing(true) }, tmi.TMIProtect},
	}
	cells := make([]*cell, len(configs))
	for i, c := range configs {
		cells[i] = o.submitOne(c.w, tmi.Config{System: c.sys})
	}
	for i, c := range configs {
		rep, err := cells[i].one()
		if err != nil {
			return err
		}
		verdict := "AMBSA preserved"
		if !rep.Validated {
			verdict = rep.ValidationErr
		}
		fmt.Fprintf(o.Out, "%-32s %s\n", c.label, verdict)
	}
	fmt.Fprintf(o.Out, "\npaper: the assert x != 0xABCD can never fail on real hardware, but fails with PTSBs\n")
	return nil
}

func fig11(o *Options) error {
	header(o, "Figure 11: canneal's atomic swaps corrupt under a PTSB without CCC")
	return consistencyKernel(o, func() workload.Workload { return workloads.CannealSwap() })
}

func fig12(o *Options) error {
	header(o, "Figure 12: cholesky's volatile-flag spin hangs under a PTSB without CCC")
	return consistencyKernel(o, func() workload.Workload { return workloads.CholeskyFlag() })
}

func consistencyKernel(o *Options, ctor func() workload.Workload) error {
	configs := []struct {
		label string
		sys   tmi.System
	}{
		{"pthreads (conventional)", tmi.Pthreads},
		{"sheriff-protect (PTSB, no CCC)", tmi.SheriffProtect},
		{"tmi-protect (PTSB + CCC)", tmi.TMIProtect},
	}
	cells := make([]*cell, len(configs))
	for i, c := range configs {
		cells[i] = o.submitOne(ctor, tmi.Config{System: c.sys})
	}
	for i, c := range configs {
		rep, err := cells[i].one()
		if err != nil {
			return err
		}
		verdict := "correct"
		if rep.Hung {
			verdict = "HUNG: " + rep.HangReason
		} else if !rep.Validated {
			verdict = "INCORRECT: " + rep.ValidationErr
		}
		fmt.Fprintf(o.Out, "%-32s %s\n", c.label, verdict)
	}
	return nil
}

// ------------------------------------------------------------- §4.3 ablation

func ablationEverywhere(o *Options) error {
	header(o, "§4.3 ablation: targeted page protection vs PTSB-everywhere")
	fmt.Fprintf(o.Out, "%-14s %12s %16s %14s\n", "workload", "targeted", "ptsb-everywhere", "paper shape")
	abNames := []string{"histogram", "histogramfs"}
	type row struct{ base, targeted, everywhere *cell }
	rows := make([]row, len(abNames))
	for i, name := range abNames {
		rows[i] = row{
			base:       o.submit(fsWorkload(name), tmi.Config{System: tmi.Pthreads}),
			targeted:   o.submit(fsWorkload(name), tmi.Config{System: tmi.TMIProtect}),
			everywhere: o.submit(fsWorkload(name), tmi.Config{System: tmi.TMIProtect, PTSBEverywhere: true}),
		}
	}
	for i, name := range abNames {
		base, err := rows[i].base.mean()
		if err != nil {
			return err
		}
		targeted, err := rows[i].targeted.mean()
		if err != nil {
			return err
		}
		everywhere, err := rows[i].everywhere.mean()
		if err != nil {
			return err
		}
		shape := "+29% vs -36% (histogram)"
		if name == "histogramfs" {
			shape = "6.27x vs 3.26x"
		}
		fmt.Fprintf(o.Out, "%-14s %11.2fx %15.2fx %20s\n", name,
			tmi.Speedup(base, targeted), tmi.Speedup(base, everywhere), shape)
	}
	fmt.Fprintf(o.Out, "\nindiscriminate protection pays twin faults and commits on every written page\n")
	return nil
}

// ------------------------------------------------------------ §4.2 leveldb

func leveldbDetect(o *Options) error {
	header(o, "§4.2: detection on unmodified leveldb (true sharing dominates)")
	rep, err := runMean(o, fsWorkload("leveldb-clean"), tmi.Config{System: tmi.TMIDetect, HugePages: true})
	if err != nil {
		return err
	}
	ratio := math.Inf(1)
	if rep.FalseRecords > 0 {
		ratio = float64(rep.TrueRecords) / float64(rep.FalseRecords)
	}
	fmt.Fprintf(o.Out, "lines: %d true sharing, %d false sharing\n", rep.TrueLines, rep.FalseLines)
	fmt.Fprintf(o.Out, "records: %d true, %d false (ratio %.1fx)\n", rep.TrueRecords, rep.FalseRecords, ratio)
	fmt.Fprintf(o.Out, "repaired: %v\n", rep.Repaired)
	fmt.Fprintf(o.Out, "\npaper: leveldb shows ~10x more HITM events from true sharing (the heavily synchronized\n")
	fmt.Fprintf(o.Out, "write queue) than from false sharing, so repair is not worth triggering\n")
	return nil
}
