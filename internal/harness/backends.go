package harness

import (
	"fmt"

	"repro/tmi"
)

// backendList is the sweep order of the pluggable repair strategies (the
// repair package's registry; t2p is the paper's mechanism and the sweep's
// reference).
var backendList = []string{"t2p", "pad", "map", "tmebox"}

// residualRate is the final detection interval's HITM rate — the
// contention the backend failed to remove.
func residualRate(rep *tmi.Report) float64 {
	if len(rep.Timeline) == 0 {
		return 0
	}
	return rep.Timeline[len(rep.Timeline)-1].HITMPerSec
}

// backendActivity compacts a backend's stats into one table cell.
func backendActivity(rep *tmi.Report) string {
	a := rep.BackendActivity
	switch rep.RepairBackend {
	case "pad":
		return fmt.Sprintf("%d lines", a.LinesIsolated)
	case "map":
		return fmt.Sprintf("%d moved", a.ThreadsMigrated)
	default:
		return fmt.Sprintf("%d pages", a.PagesProtected)
	}
}

// backendsExp sweeps workload x repair backend on the two-socket NUMA
// machine (remote-socket HITM and fill penalties active) and renders the
// per-workload policy table: which strategy repairs each workload best,
// what it costs, and how much contention it leaves behind.
func backendsExp(o *Options) error {
	header(o, "Extension: repair-backend sweep, workload x {t2p, pad, map, tmebox} (two-socket NUMA)")
	csv, err := csvFile(o, "repair_backends.csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	csvLine(csv, "workload", "backend", "runtime_ms", "speedup", "residual_hitm_per_sec",
		"pages_protected", "lines_isolated", "threads_migrated", "failed_repairs")

	const sockets = 2
	type row struct {
		base *cell
		byB  map[string]*cell
	}
	rows := make([]row, len(fsNames))
	for i, name := range fsNames {
		rows[i] = row{
			base: o.submit(fsWorkload(name), tmi.Config{System: tmi.Pthreads, Sockets: sockets}),
			byB:  map[string]*cell{},
		}
		for _, b := range backendList {
			rows[i].byB[b] = o.submit(fsWorkload(name),
				tmi.Config{System: tmi.TMIProtect, RepairBackend: b, Sockets: sockets})
		}
	}

	fmt.Fprintf(o.Out, "%-14s", "workload")
	for _, b := range backendList {
		fmt.Fprintf(o.Out, " %9s", b)
	}
	fmt.Fprintf(o.Out, "   %-8s %s\n", "best", "best backend activity / residual HITM/s")

	wins := map[string]int{}
	for i, name := range fsNames {
		base, err := rows[i].base.mean()
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-14s", name)
		bestName, bestSpeed := "", 0.0
		var bestRep *tmi.Report
		for _, b := range backendList {
			rep, err := rows[i].byB[b].mean()
			if err != nil {
				return err
			}
			s := tmi.Speedup(base, rep)
			fmt.Fprintf(o.Out, " %8.2fx", s)
			if s > bestSpeed {
				bestName, bestSpeed, bestRep = b, s, rep
			}
			a := rep.BackendActivity
			csvLine(csv, name, b, rep.SimSeconds*1e3, s, residualRate(rep),
				a.PagesProtected, a.LinesIsolated, a.ThreadsMigrated, a.FailedRepairs)
		}
		wins[bestName]++
		fmt.Fprintf(o.Out, "   %-8s %s / %.0f\n", bestName, backendActivity(bestRep), residualRate(bestRep))
	}

	fmt.Fprintf(o.Out, "\npolicy table (workloads each backend repairs best):")
	for _, b := range backendList {
		fmt.Fprintf(o.Out, " %s=%d", b, wins[b])
		o.Stat("repair_backends/wins_"+b, float64(wins[b]))
	}
	fmt.Fprintf(o.Out, "\nno single strategy dominates: padding wins when the flagged lines are few and\n")
	fmt.Fprintf(o.Out, "re-layout is cheap, t2p/tmebox when whole pages need isolating, and mapping\n")
	fmt.Fprintf(o.Out, "trades compute for locality — the detector's advice picks per workload\n")
	return nil
}
