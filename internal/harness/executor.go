package harness

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/tmi"
	"repro/tmi/workload"
)

// This file implements the parallel sweep executor. Every experiment is an
// embarrassingly parallel sweep: a grid of (workload × configuration ×
// seeded repetition) cells where each cell is one self-contained
// deterministic tmi.Run. The executor fans those cells across a pool of
// host worker goroutines and hands results back through per-cell handles,
// so experiments submit their whole grid first and then render it in
// canonical order — stdout tables and CSVs are byte-identical to a
// sequential run regardless of worker count.
//
// Determinism argument: a cell's result is a pure function of (workload
// constructor, Config) — the simulation takes no input from the host clock,
// host scheduler, or other cells — and rendering consumes results strictly
// in submission order, blocking on each cell's done channel. Worker
// interleaving therefore cannot reach the output; it only changes
// wall-clock time.

// runJob is one scheduled simulation run.
type runJob struct {
	w    func() workload.Workload
	cfg  tmi.Config
	done chan struct{}
	rep  *tmi.Report
	err  error
	wall time.Duration
}

// executor is a fixed-size worker pool over an unbounded FIFO job queue.
type executor struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*runJob
	closed  bool
	cancErr error // context cancellation, sticky once set
	workers int
	meter   *benchMeter
	stopc   chan struct{}
}

func newExecutor(workers int, meter *benchMeter, ctx context.Context) *executor {
	if workers < 1 {
		workers = 1
	}
	x := &executor{workers: workers, meter: meter, stopc: make(chan struct{})}
	x.cond = sync.NewCond(&x.mu)
	for i := 0; i < workers; i++ {
		go x.work()
	}
	if ctx != nil && ctx.Done() != nil {
		// Watcher: context cancellation fails every queued job and stops the
		// pool. In-flight simulations finish (tmi.Run has no preemption
		// points), so a canceled sweep still hands back coherent cells —
		// each either a complete report or ctx.Err().
		go func() {
			select {
			case <-ctx.Done():
				x.cancel(ctx.Err())
			case <-x.stopc:
			}
		}()
	}
	return x
}

// cancel fails all queued jobs with err and stops the workers. Idempotent.
func (x *executor) cancel(err error) {
	x.mu.Lock()
	if x.cancErr == nil {
		x.cancErr = err
	}
	queued := x.queue
	x.queue = nil
	x.mu.Unlock()
	x.cond.Broadcast()
	for _, j := range queued {
		j.err = err
		close(j.done)
	}
}

func (x *executor) work() {
	for {
		x.mu.Lock()
		for len(x.queue) == 0 && !x.closed && x.cancErr == nil {
			x.cond.Wait()
		}
		if len(x.queue) == 0 || x.cancErr != nil {
			x.mu.Unlock()
			return
		}
		j := x.queue[0]
		x.queue = x.queue[1:]
		x.mu.Unlock()

		start := time.Now()
		j.rep, j.err = tmi.Run(j.w(), j.cfg)
		j.wall = time.Since(start)
		if x.meter != nil {
			x.meter.record(j)
		}
		close(j.done)
	}
}

func (x *executor) submit(w func() workload.Workload, cfg tmi.Config) *runJob {
	j := &runJob{w: w, cfg: cfg, done: make(chan struct{})}
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		panic("harness: submit on closed executor")
	}
	if err := x.cancErr; err != nil {
		x.mu.Unlock()
		j.err = err
		close(j.done)
		return j
	}
	x.queue = append(x.queue, j)
	x.mu.Unlock()
	x.cond.Signal()
	return j
}

// close drains the queue and releases the workers once it is empty.
func (x *executor) close() {
	x.mu.Lock()
	first := !x.closed
	x.closed = true
	x.mu.Unlock()
	x.cond.Broadcast()
	if first {
		close(x.stopc)
	}
}

// executor lazily builds the pool on first use, sized by Options.Parallel
// and bound to Options.Ctx.
func (o *Options) executor() *executor {
	if o.exec == nil {
		workers := o.Parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if o.meter == nil {
			o.meter = &benchMeter{}
		}
		o.exec = newExecutor(workers, o.meter, o.Ctx)
	}
	return o.exec
}

// Workers reports the worker count the sweep executor runs (or would run)
// with under the current Options.
func (o *Options) Workers() int {
	if o.exec != nil {
		return o.exec.workers
	}
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Close releases the executor's worker goroutines. It is safe to call
// multiple times, and on an Options that never ran anything. Jobs already
// queued still complete.
func (o *Options) Close() {
	if o.exec != nil {
		o.exec.close()
		o.exec = nil
	}
}

// cell is the handle to one sweep cell: n seeded repetitions of a workload
// under one configuration, scheduled on the executor at submission time.
// Consume a cell at most once (stats/mean/one replace SimSeconds with the
// mean, like the sequential harness always did).
type cell struct {
	jobs []*runJob
}

// submit schedules the standard cell shape: Options.Runs repetitions with
// consecutive seeds Seed, Seed+1, ...
func (o *Options) submit(w func() workload.Workload, cfg tmi.Config) *cell {
	return o.submitRuns(w, cfg, o.Runs)
}

// submitOne schedules a single run at the base seed (the consistency
// kernels are single-shot: they report verdicts, not averaged times).
func (o *Options) submitOne(w func() workload.Workload, cfg tmi.Config) *cell {
	return o.submitRuns(w, cfg, 1)
}

func (o *Options) submitRuns(w func() workload.Workload, cfg tmi.Config, n int) *cell {
	x := o.executor()
	c := &cell{}
	for i := 0; i < n; i++ {
		cfg.Seed = o.Seed + int64(i)
		c.jobs = append(c.jobs, x.submit(w, cfg))
	}
	return c
}

// stats waits for every repetition and returns the first run's report with
// SimSeconds replaced by the mean, plus the relative standard deviation of
// the runtimes.
func (c *cell) stats() (*tmi.Report, float64, error) {
	if len(c.jobs) == 0 {
		return nil, 0, fmt.Errorf("harness: empty cell (Options.Runs must be positive)")
	}
	var first *tmi.Report
	var times []float64
	for _, j := range c.jobs {
		<-j.done
		if j.err != nil {
			return nil, 0, j.err
		}
		if first == nil {
			first = j.rep
		}
		times = append(times, j.rep.SimSeconds)
	}
	var sum float64
	for _, v := range times {
		sum += v
	}
	mean := sum / float64(len(times))
	var sq float64
	for _, v := range times {
		sq += (v - mean) * (v - mean)
	}
	sd := 0.0
	if len(times) > 1 && mean > 0 {
		sd = math.Sqrt(sq/float64(len(times)-1)) / mean
	}
	first.SimSeconds = mean
	return first, sd, nil
}

// mean is stats without the spread.
func (c *cell) mean() (*tmi.Report, error) {
	rep, _, err := c.stats()
	return rep, err
}

// one waits for a single-shot cell and returns its raw report.
func (c *cell) one() (*tmi.Report, error) {
	return c.mean()
}
