package core

import (
	"sort"

	"repro/internal/sim/cache"
	"repro/internal/sim/machine"
)

// This file fixes the runtime's hook-chain composition. Hooks used to be
// composed by nested closure wrapping, so the invocation order depended on
// the textual order the wrapping happened in — adding a new subsystem (the
// sanitizer, then the model-checker observer) silently reshuffled who saw
// an event first, and region exit did not unwind in reverse of region
// enter. Chains are now built from declared layers sorted by a fixed
// priority, so composition is deterministic regardless of the order layers
// are registered in:
//
//	region enter:  tracer → sanitizer → observer → controller (CCC)
//	region exit:   controller → observer → sanitizer → tracer (reverse)
//	post-access:   tracer → sanitizer → observer → controller (costs sum)
//	value/sync/wake: tracer → sanitizer → observer → controller
//
// The tracer is outermost so the trace brackets everything the other
// layers do; the CCC controller is innermost because it owns the semantics
// (its Enter performs the PTSB flush the others only observe). The order is
// pinned by TestHookChainOrderIsDeterministic.

// layerPriority orders hook layers outermost-first.
type layerPriority int

const (
	layerTracer layerPriority = iota
	layerSanitizer
	layerObserver
	layerController
)

// hookLayer is one subsystem's contribution to the machine hook chain. Any
// field may be nil.
type hookLayer struct {
	prio        layerPriority
	regionEnter func(t *machine.Thread, k machine.RegionKind)
	regionExit  func(t *machine.Thread, k machine.RegionKind)
	postAccess  func(t *machine.Thread, acc *machine.Access, res cache.Result) int64
	onValue     func(t *machine.Thread, acc *machine.Access, val uint64)
	onSync      func(t *machine.Thread)
	onWake      func(t, other *machine.Thread)
}

// composedHooks is the deterministic composition of a layer set.
type composedHooks struct {
	regionEnter func(t *machine.Thread, k machine.RegionKind)
	regionExit  func(t *machine.Thread, k machine.RegionKind)
	postAccess  func(t *machine.Thread, acc *machine.Access, res cache.Result) int64
	onValue     func(t *machine.Thread, acc *machine.Access, val uint64)
	onSync      func(t *machine.Thread)
	onWake      func(t, other *machine.Thread)
}

// composeLayers sorts layers by priority (stably, so equal priorities keep
// registration order) and fuses them: enter-like hooks run outermost-first,
// regionExit runs innermost-first, and postAccess costs are summed.
func composeLayers(layers []hookLayer) composedHooks {
	sorted := append([]hookLayer(nil), layers...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].prio < sorted[j].prio })

	var c composedHooks
	var enters, exits []func(t *machine.Thread, k machine.RegionKind)
	var posts []func(t *machine.Thread, acc *machine.Access, res cache.Result) int64
	var values []func(t *machine.Thread, acc *machine.Access, val uint64)
	var syncs []func(t *machine.Thread)
	var wakes []func(t, other *machine.Thread)
	for _, l := range sorted {
		if l.regionEnter != nil {
			enters = append(enters, l.regionEnter)
		}
		if l.regionExit != nil {
			exits = append(exits, l.regionExit)
		}
		if l.postAccess != nil {
			posts = append(posts, l.postAccess)
		}
		if l.onValue != nil {
			values = append(values, l.onValue)
		}
		if l.onSync != nil {
			syncs = append(syncs, l.onSync)
		}
		if l.onWake != nil {
			wakes = append(wakes, l.onWake)
		}
	}
	if len(enters) > 0 {
		c.regionEnter = func(t *machine.Thread, k machine.RegionKind) {
			for _, f := range enters {
				f(t, k)
			}
		}
	}
	if len(exits) > 0 {
		c.regionExit = func(t *machine.Thread, k machine.RegionKind) {
			for i := len(exits) - 1; i >= 0; i-- {
				exits[i](t, k)
			}
		}
	}
	if len(posts) > 0 {
		c.postAccess = func(t *machine.Thread, acc *machine.Access, res cache.Result) int64 {
			var total int64
			for _, f := range posts {
				total += f(t, acc, res)
			}
			return total
		}
	}
	if len(values) > 0 {
		c.onValue = func(t *machine.Thread, acc *machine.Access, val uint64) {
			for _, f := range values {
				f(t, acc, val)
			}
		}
	}
	if len(syncs) > 0 {
		c.onSync = func(t *machine.Thread) {
			for _, f := range syncs {
				f(t)
			}
		}
	}
	if len(wakes) > 0 {
		c.onWake = func(t, other *machine.Thread) {
			for _, f := range wakes {
				f(t, other)
			}
		}
	}
	return c
}

// AccessInfo is one completed memory access as reported to an Observer:
// plain data, no machine internals, so observers (the model checker) stay
// decoupled from the simulator.
type AccessInfo struct {
	TID     int
	PC      uint64
	Addr    uint64
	Size    int
	Write   bool
	Atomic  bool
	Value   uint64 // datum: loaded value (old value for RMW/CAS) or stored value
	Runtime bool   // access issued by a runtime-library site (psync internals)
	Site    string // site name when the PC disassembles, else ""
}

// Observer receives the run's visible-event stream: every memory access
// with its datum, CCC region boundaries, psync synchronization points, and
// scheduler wake edges. This is the model checker's tap: together with
// Config.Scheduler it gives full observe-and-control over interleavings.
// All callbacks run on the simulated thread with the machine quiescent.
type Observer interface {
	OnAccess(AccessInfo)
	OnRegion(tid int, k machine.RegionKind, enter bool)
	OnSync(tid int)
	OnWake(waker, wakee int)
}

// buildLayers assembles the runtime's hook layers from its configuration.
func (rt *runtime) buildLayers() []hookLayer {
	var layers []hookLayer
	// Controller layer (always): CCC region semantics, PTSB commit at sync,
	// and the base cost model.
	layers = append(layers, hookLayer{
		prio:        layerController,
		regionEnter: rt.cccCtl.Enter,
		regionExit:  rt.cccCtl.Exit,
		postAccess:  rt.postAccess,
		onSync:      rt.commitSync,
	})
	if rt.san != nil {
		layers = append(layers, hookLayer{
			prio:        layerSanitizer,
			regionEnter: rt.san.enter,
			regionExit:  rt.san.exit,
			postAccess: func(t *machine.Thread, acc *machine.Access, res cache.Result) int64 {
				rt.san.onAccess(t, acc)
				return 0
			},
		})
	}
	if rt.cfg.Observer != nil {
		obs := rt.cfg.Observer
		layers = append(layers, hookLayer{
			prio: layerObserver,
			regionEnter: func(t *machine.Thread, k machine.RegionKind) {
				obs.OnRegion(t.ID, k, true)
			},
			regionExit: func(t *machine.Thread, k machine.RegionKind) {
				obs.OnRegion(t.ID, k, false)
			},
			onValue: func(t *machine.Thread, acc *machine.Access, val uint64) {
				info := AccessInfo{
					TID: t.ID, PC: acc.PC, Addr: acc.Addr, Size: acc.Size,
					Write: acc.Write, Atomic: acc.Atomic, Value: val,
				}
				if si, ok := rt.prog.Disassemble(acc.PC); ok {
					info.Runtime = si.Runtime
					info.Site = si.Name
				}
				obs.OnAccess(info)
			},
			onSync: func(t *machine.Thread) { obs.OnSync(t.ID) },
			onWake: func(t, other *machine.Thread) { obs.OnWake(t.ID, other.ID) },
		})
	}
	if rt.tracer != nil {
		layers = append(layers, rt.tracerLayer())
	}
	return layers
}
