package core

import (
	"sort"

	"repro/internal/sim/cache"
	"repro/internal/sim/machine"
)

// This file fixes the runtime's hook-chain composition. Hooks used to be
// composed by nested closure wrapping, so the invocation order depended on
// the textual order the wrapping happened in — adding a new subsystem (the
// sanitizer, then the model-checker observer) silently reshuffled who saw
// an event first, and region exit did not unwind in reverse of region
// enter. Chains are now built from declared layers sorted by a fixed
// priority, so composition is deterministic regardless of the order layers
// are registered in:
//
//	region enter:  tracer → sanitizer → observer → controller (CCC)
//	region exit:   controller → observer → sanitizer → tracer (reverse)
//	post-access:   tracer → sanitizer → observer → controller (costs sum)
//	value/sync/wake: tracer → sanitizer → observer → controller
//
// The tracer is outermost so the trace brackets everything the other
// layers do; the CCC controller is innermost because it owns the semantics
// (its Enter performs the PTSB flush the others only observe). The order is
// pinned by TestHookChainOrderIsDeterministic.

// layerPriority orders hook layers outermost-first.
type layerPriority int

const (
	layerTracer layerPriority = iota
	layerSanitizer
	layerObserver
	layerController
)

// hookLayer is one subsystem's contribution to the machine hook chain. Any
// field may be nil.
type hookLayer struct {
	prio        layerPriority
	regionEnter func(t *machine.Thread, k machine.RegionKind)
	regionExit  func(t *machine.Thread, k machine.RegionKind)
	postAccess  func(t *machine.Thread, acc *machine.Access, res cache.Result) int64
	onValue     func(t *machine.Thread, acc *machine.Access, val uint64)
	onSync      func(t *machine.Thread)
	onWake      func(t, other *machine.Thread)
}

// composedHooks is the deterministic composition of a layer set: the chains
// are preresolved call slices built once at configuration time, so event
// dispatch at run time is a bounds-checked loop over a flat slice — no
// nested closure hops, no per-event composition work.
type composedHooks struct {
	enters []func(t *machine.Thread, k machine.RegionKind)
	exits  []func(t *machine.Thread, k machine.RegionKind)
	posts  []func(t *machine.Thread, acc *machine.Access, res cache.Result) int64
	values []func(t *machine.Thread, acc *machine.Access, val uint64)
	syncs  []func(t *machine.Thread)
	wakes  []func(t, other *machine.Thread)
}

func (c *composedHooks) regionEnter(t *machine.Thread, k machine.RegionKind) {
	for _, f := range c.enters {
		f(t, k)
	}
}

func (c *composedHooks) regionExit(t *machine.Thread, k machine.RegionKind) {
	for i := len(c.exits) - 1; i >= 0; i-- {
		c.exits[i](t, k)
	}
}

func (c *composedHooks) postAccess(t *machine.Thread, acc *machine.Access, res cache.Result) int64 {
	var total int64
	for _, f := range c.posts {
		total += f(t, acc, res)
	}
	return total
}

func (c *composedHooks) onValue(t *machine.Thread, acc *machine.Access, val uint64) {
	for _, f := range c.values {
		f(t, acc, val)
	}
}

func (c *composedHooks) onSync(t *machine.Thread) {
	for _, f := range c.syncs {
		f(t)
	}
}

func (c *composedHooks) onWake(t, other *machine.Thread) {
	for _, f := range c.wakes {
		f(t, other)
	}
}

// hook returns fn as a machine hook, or nil when no layer contributed — the
// machine fast-paths nil hooks, so empty chains cost nothing per event.
func hook[F any](n int, fn F) F {
	if n == 0 {
		var zero F
		return zero
	}
	return fn
}

// composeLayers sorts layers by priority (stably, so equal priorities keep
// registration order) and flattens each hook kind into its call slice:
// enter-like hooks run outermost-first, regionExit runs innermost-first,
// and postAccess costs are summed.
func composeLayers(layers []hookLayer) composedHooks {
	sorted := append([]hookLayer(nil), layers...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].prio < sorted[j].prio })

	var c composedHooks
	for _, l := range sorted {
		if l.regionEnter != nil {
			c.enters = append(c.enters, l.regionEnter)
		}
		if l.regionExit != nil {
			c.exits = append(c.exits, l.regionExit)
		}
		if l.postAccess != nil {
			c.posts = append(c.posts, l.postAccess)
		}
		if l.onValue != nil {
			c.values = append(c.values, l.onValue)
		}
		if l.onSync != nil {
			c.syncs = append(c.syncs, l.onSync)
		}
		if l.onWake != nil {
			c.wakes = append(c.wakes, l.onWake)
		}
	}
	return c
}

// AccessInfo is one completed memory access as reported to an Observer:
// plain data, no machine internals, so observers (the model checker) stay
// decoupled from the simulator.
type AccessInfo struct {
	TID     int
	PC      uint64
	Addr    uint64
	Size    int
	Write   bool
	Atomic  bool
	Value   uint64 // datum: loaded value (old value for RMW/CAS) or stored value
	Runtime bool   // access issued by a runtime-library site (psync internals)
	Site    string // site name when the PC disassembles, else ""
}

// Observer receives the run's visible-event stream: every memory access
// with its datum, CCC region boundaries, psync synchronization points, and
// scheduler wake edges. This is the model checker's tap: together with
// Config.Scheduler it gives full observe-and-control over interleavings.
// All callbacks run on the simulated thread with the machine quiescent.
//
// OnAccess's argument points into a per-thread scratch buffer that is
// overwritten by the thread's next access: read it during the call, copy
// the fields you keep, never retain the pointer.
type Observer interface {
	OnAccess(*AccessInfo)
	OnRegion(tid int, k machine.RegionKind, enter bool)
	OnSync(tid int)
	OnWake(waker, wakee int)
}

// buildLayers assembles the runtime's hook layers from its configuration.
func (rt *runtime) buildLayers() []hookLayer {
	var layers []hookLayer
	// Controller layer (always): CCC region semantics, PTSB commit at sync,
	// and the base cost model.
	layers = append(layers, hookLayer{
		prio:        layerController,
		regionEnter: rt.cccCtl.Enter,
		regionExit:  rt.cccCtl.Exit,
		postAccess:  rt.postAccess,
		onSync:      rt.commitSync,
	})
	if rt.san != nil {
		layers = append(layers, hookLayer{
			prio:        layerSanitizer,
			regionEnter: rt.san.enter,
			regionExit:  rt.san.exit,
			postAccess: func(t *machine.Thread, acc *machine.Access, res cache.Result) int64 {
				rt.san.onAccess(t, acc)
				return 0
			},
		})
	}
	if rt.cfg.Observer != nil {
		obs := rt.cfg.Observer
		layers = append(layers, hookLayer{
			prio: layerObserver,
			regionEnter: func(t *machine.Thread, k machine.RegionKind) {
				obs.OnRegion(t.ID, k, true)
			},
			regionExit: func(t *machine.Thread, k machine.RegionKind) {
				obs.OnRegion(t.ID, k, false)
			},
			onValue: func(t *machine.Thread, acc *machine.Access, val uint64) {
				info := &rt.accScratch[t.ID]
				*info = AccessInfo{
					TID: t.ID, PC: acc.PC, Addr: acc.Addr, Size: acc.Size,
					Write: acc.Write, Atomic: acc.Atomic, Value: val,
				}
				if si, ok := rt.prog.Disassemble(acc.PC); ok {
					info.Runtime = si.Runtime
					info.Site = si.Name
				}
				obs.OnAccess(info)
			},
			onSync: func(t *machine.Thread) { obs.OnSync(t.ID) },
			onWake: func(t, other *machine.Thread) { obs.OnWake(t.ID, other.ID) },
		})
	}
	if rt.tracer != nil {
		layers = append(layers, rt.tracerLayer())
	}
	return layers
}
