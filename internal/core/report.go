package core

import (
	"repro/internal/detect"
	"repro/internal/repair"
	"repro/internal/sim/cache"
	"repro/internal/sim/trace"
)

// Report is the result of one run.
type Report struct {
	Workload string
	System   string

	// SimSeconds is the simulated wall-clock runtime.
	SimSeconds float64

	// Coherence and sampling activity.
	HITMEvents  uint64 // raw HITM events at the cache
	RecordsSeen uint64 // PEBS records consumed by the detector
	Dropped     uint64 // records lost to full buffers

	// Detection results.
	TrueLines    int
	FalseLines   int
	TrueRecords  uint64
	FalseRecords uint64
	// SpanDrops counts records whose byte span overflowed the detector's
	// per-thread span tracker and could not be merged; non-zero means some
	// line classifications ran on incomplete span data.
	SpanDrops uint64

	// PredictedManualSpeedup is the Cheetah-style estimate of the speedup a
	// manual padding fix would deliver, computed from the sampled false-
	// sharing rate (extension; 1.0 when no false sharing was seen).
	PredictedManualSpeedup float64
	// LineSizePredictions is the Predator-style sweep: expected false/true
	// sharing line counts at alternate coherence granularities (extension).
	LineSizePredictions []detect.Prediction

	// Repair characterization (Table 3).
	Repaired       bool
	RepairAtSec    float64
	T2PMicros      []float64
	PagesProtected int
	Commits        uint64
	CommitsPerSec  float64
	TwinFaults     uint64
	BytesMerged    uint64
	CCCFlushes     uint64
	// RepairBackend names the strategy that serviced detector requests
	// ("t2p" unless Config.RepairBackend chose otherwise); BackendActivity
	// is its cross-backend activity summary.
	RepairBackend   string
	BackendActivity repair.BackendStats

	// MemBytes is the simulated memory footprint including runtime
	// overheads (Figure 8).
	MemBytes uint64

	// Correctness.
	Validated     bool
	ValidationErr string
	Hung          bool
	HangReason    string

	// Notes carries workload-reported metrics.
	Notes map[string]float64

	// Lines holds the detector's per-line classifications (hottest window
	// per line), for the tmidetect tool.
	Lines []detect.LineReport

	// Layout describes the shared-memory organization at the end of the
	// run, in the style of Figure 6.
	Layout []string

	// Events is the runtime lifecycle trace (detection ticks that found
	// something, stop-the-world, per-thread conversions, page arming) in
	// the style of Figure 5.
	Events []string

	// Timeline samples coherence activity once per detection interval
	// (monitored runs only): repair shows up as a cliff in the HITM rate.
	Timeline []IntervalSample

	// Tracer holds the structured event trace when Config.Trace was set.
	Tracer *trace.Recorder

	// SampleLog holds the replayable detector sample trace when
	// Config.CaptureSamples was set.
	SampleLog *trace.SampleLog

	// SanitizerViolations/SanitizerDetails report annotation-contract
	// violations caught at runtime when Config.Sanitize was set (details
	// capped; the count is complete).
	SanitizerViolations uint64
	SanitizerDetails    []string

	Cache cache.Stats
}

// IntervalSample is one detection-interval snapshot of machine activity.
type IntervalSample struct {
	AtSec          float64
	HITMPerSec     float64
	RecordsInTick  uint64
	PagesProtected int
}

// MemMB is the footprint in MiB.
func (r *Report) MemMB() float64 { return float64(r.MemBytes) / (1 << 20) }

// MeanT2PMicros averages the per-thread conversion times.
func (r *Report) MeanT2PMicros() float64 {
	if len(r.T2PMicros) == 0 {
		return 0
	}
	var s float64
	for _, v := range r.T2PMicros {
		s += v
	}
	return s / float64(len(r.T2PMicros))
}
