package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/ccc"
	"repro/internal/detect"
	"repro/internal/disasm"
	"repro/internal/perfev"
	"repro/internal/psync"
	"repro/internal/ptsb"
	"repro/internal/repair"
	"repro/internal/sim/cache"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
	"repro/internal/sim/osim"
	"repro/internal/sim/trace"
	"repro/tmi/workload"
)

// Layout constants for the simulated address space.
const (
	// InternalBase is where TMI's always-shared state region (padded
	// synchronization objects, runtime metadata) lives (Figure 6).
	InternalBase uint64 = 0x7000_0000
	// InternalSize bounds the state region.
	InternalSize uint64 = 32 << 20
	// LibBase/StackBase are synthetic regions for address-map filtering.
	LibBase   uint64 = 0x7f00_0000_0000
	StackBase uint64 = 0x7ff0_0000_0000
)

// LASER's software store buffer changes the cost of accesses to repaired
// lines: a buffered store costs a fixed instrumentation overhead plus a
// fraction of the native coherence latency (the buffer absorbs most but not
// all of the line's round trips — flushes at TSO boundaries keep some); a
// load pays an instrumentation check. Better than a HITM miss, far worse
// than a private L1 hit — which is why LASER captures only a fraction of
// the manual speedup and can even slow lightly-contended code down.
const (
	LaserStoreFixed   = 55
	LaserStoreLatFrac = 0.3
	LaserLoadOverhead = 15
)

// Plastic's cost model: dynamic binary instrumentation taxes every memory
// access a few cycles program-wide (the paper reports ~6% overhead without
// contention), and its byte-granularity remapping makes repaired-line
// accesses hit a translation layer — cheaper than a HITM round trip, far
// costlier than a private hit, capturing roughly a third of the manual
// benefit where its repair activates.
const (
	PlasticDBIOverhead = 3  // cycles per memory access, program-wide
	PlasticRemapCost   = 90 // net cost of an access to a remapped line
)

// BulkFaultCompression corrects one-time costs for the reproduction's
// compressed timescale: workload runs are ~500x shorter than the paper's
// minute-long executions, so one-time page-fault costs over multi-GB inputs
// (paid once per page regardless of run length) are divided by this factor
// to keep their share of the runtime proportionate. Per-access costs need
// no correction.
const BulkFaultCompression = 64

// runtime holds one run's wiring.
type runtime struct {
	cfg     Config
	info    workload.Info
	threads int

	memory     *mem.Memory
	osys       *osim.OS
	app        *osim.Process
	sharedView *mem.AddrSpace
	al         *alloc.Allocator
	prog       *disasm.Program
	psyncMgr   *psync.Manager
	mc         *machine.Machine
	ptsbE      *ptsb.Engine
	cccCtl     *ccc.Controller
	repairE    *repair.Engine
	// backend is the repair strategy servicing detector requests; the
	// default is repairE itself (the t2p backend). backendCost is non-nil
	// only when the backend imposes a per-access cost after engaging.
	backend     repair.Backend
	backendCost repair.AccessCoster
	mon         *perfev.Monitor
	det         *detect.Detector
	maps        *osim.AddressMap
	san         *sanitizer

	laserEnabled   bool
	laserRepaired  bool
	laserLines     map[uint64]bool
	plasticLines   map[uint64]bool
	plasticEngaged bool

	// teardown extension state: per protected page, the merged-byte count
	// at the last tick and how many ticks it has been unchanged.
	pageIdle map[uint64]*idleState

	notes     map[string]float64
	hangs     map[int]string
	events    []string
	tracer    *trace.Recorder
	sampleLog *trace.SampleLog
	hooksC    composedHooks
	// accScratch holds one AccessInfo per thread, reused for every observer
	// OnAccess dispatch (the observer must not retain the pointer).
	accScratch []AccessInfo

	timeline    []IntervalSample
	lastHITM    uint64
	lastRecords uint64
}

// logEvent appends a timestamped lifecycle event (Figure 5 trace).
func (rt *runtime) logEvent(now int64, format string, args ...any) {
	if len(rt.events) >= 512 {
		return
	}
	msg := fmt.Sprintf(format, args...)
	rt.events = append(rt.events, fmt.Sprintf("t=%8.3fms  %s", float64(now)/cache.ClockHz*1e3, msg))
}

// Run executes w under cfg and reports the results.
func Run(w workload.Workload, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	info := w.Info()
	threads := info.Threads
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	if threads < 1 {
		return nil, fmt.Errorf("core: workload %s declares no threads", w.Name())
	}

	if cfg.Setup.IsSheriff() {
		if reason := sheriffIncompatibility(info); reason != "" {
			return nil, &ErrIncompatible{System: cfg.Setup.String(), Workload: w.Name(), Reason: reason}
		}
	}

	rt, err := build(w, cfg, info, threads)
	if err != nil {
		return nil, err
	}
	return rt.execute(w)
}

// sheriffIncompatibility reproduces Sheriff's documented compatibility
// envelope: its protect-everything, processes-always design fails on large
// footprints and on custom flag-based synchronization.
func sheriffIncompatibility(info workload.Info) string {
	if info.FootprintMB > SheriffMaxFootprintMB {
		return fmt.Sprintf("footprint %d MB exceeds protect-all-of-memory capacity", info.FootprintMB)
	}
	if info.UsesCustomSync {
		return "custom flag-based synchronization never commits under the PTSB"
	}
	return ""
}

func build(w workload.Workload, cfg Config, info workload.Info, threads int) (*runtime, error) {
	pageSize := mem.PageSize4K
	backing := alloc.BackingAnon
	policy := alloc.LocklessPolicy()
	if cfg.Setup != Pthreads {
		backing = alloc.BackingSharedFile
		policy = alloc.TMIPolicy()
		if cfg.HugePages {
			pageSize = mem.PageSize2M
			backing = alloc.BackingSharedHuge
		}
	}

	rt := &runtime{
		cfg: cfg, info: info, threads: threads,
		notes: make(map[string]float64), hangs: make(map[int]string),
		laserLines:   make(map[uint64]bool),
		plasticLines: make(map[uint64]bool),
	}
	rt.memory = mem.NewMemory(pageSize)
	rt.osys = osim.New(rt.memory)
	rt.app = rt.osys.NewProcess()
	rt.sharedView = mem.NewAddrSpace(rt.memory)

	heapFile := rt.osys.ShmOpen("appheap")
	rt.al = alloc.New(policy, backing, heapFile, pageSize)
	rt.al.AddSpace(rt.app.Space)
	rt.al.AddSpace(rt.sharedView)

	// TMI state region: always process-shared, mapped in every view.
	stateFile := rt.osys.ShmOpen("tmistate")
	statePages := int(InternalSize) / pageSize
	if statePages < 1 {
		statePages = 1
	}
	rt.app.Space.Map(InternalBase, statePages, stateFile, 0, false, mem.ProtRW)
	rt.sharedView.Map(InternalBase, statePages, stateFile, 0, false, mem.ProtRW)

	rt.prog = disasm.NewProgram()
	// Lock indirection (pshared objects) is part of TMI's and Sheriff's
	// runtime environments; LASER and Plastic leave pthread words in place.
	indirect := cfg.Setup.IsTMI() || cfg.Setup.IsSheriff()
	rt.psyncMgr = psync.NewManager(rt.prog, rt.sharedView, InternalBase, InternalSize, indirect, psync.Hooks{
		OnSync: rt.onSync,
	})

	cacheS := cache.New(threads)
	if cfg.Sockets > 1 {
		if err := cacheS.SetTopology(cache.Topology{Sockets: cfg.Sockets}); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	rt.mc = machine.New(machine.Config{Cores: threads, Seed: cfg.Seed, Mem: rt.memory, Cache: cacheS})
	if cfg.CacheLines > 0 {
		rt.mc.Cache().SetCapacity(cfg.CacheLines)
	}
	for _, th := range rt.mc.Threads() {
		th.SetSpace(rt.app.Space)
		rt.app.Threads = append(rt.app.Threads, th)
	}

	rt.ptsbE = ptsb.NewEngine(rt.memory, rt.sharedView)
	cccEnabled := cfg.Setup.IsTMI() && !cfg.DisableCCC
	rt.cccCtl = ccc.NewController(cccEnabled, rt.sharedView, rt.ptsbE)
	rt.repairE = repair.New(rt.osys, rt.app, rt.mc, rt.ptsbE)
	rt.repairE.Everywhere = cfg.PTSBEverywhere
	rt.repairE.HeapPages = rt.heapPages
	// Strategy selection: repairE (t2p) stays the engine behind Sheriff
	// and ForceProtect regardless; rt.backend is what detector requests
	// are dispatched to.
	switch cfg.RepairBackend {
	case "", repair.BackendT2P:
		rt.backend = rt.repairE
	case repair.BackendPad:
		rt.backend = repair.NewPad(rt.mc, rt.sharedView, rt.al)
	case repair.BackendMap:
		rt.backend = repair.NewMapping(rt.mc, rt.sharedView)
	case repair.BackendTMEBox:
		rt.backend = repair.NewTMEBox(rt.app, rt.mc, rt.ptsbE)
	default:
		return nil, repair.ErrUnknownBackend(cfg.RepairBackend)
	}
	if c, ok := rt.backend.(repair.AccessCoster); ok {
		rt.backendCost = c
	}

	if cfg.Setup.Monitors() {
		rt.mon = perfev.NewMonitor(threads, cfg.Period, cfg.Seed)
	}

	if cfg.Trace {
		rt.tracer = trace.NewRecorder(1 << 16)
	}
	if cfg.Sanitize {
		rt.san = newSanitizer(rt.prog, threads)
	}
	// Hook chains compose from declared layers in a fixed priority order
	// (see hooks.go), so sanitizer, tracer and observer interleave
	// deterministically no matter which configuration flags are set.
	rt.accScratch = make([]AccessInfo, threads)
	rt.hooksC = composeLayers(rt.buildLayers())
	rt.mc.SetHooks(machine.Hooks{
		SpaceFor:    rt.cccCtl.SpaceFor,
		OnFault:     rt.onFault,
		PostAccess:  hook(len(rt.hooksC.posts), rt.hooksC.postAccess),
		RegionEnter: hook(len(rt.hooksC.enters), rt.hooksC.regionEnter),
		RegionExit:  hook(len(rt.hooksC.exits), rt.hooksC.regionExit),
		OnValue:     hook(len(rt.hooksC.values), rt.hooksC.onValue),
		OnWake:      hook(len(rt.hooksC.wakes), rt.hooksC.onWake),
		OnFirstTouch: func(t *machine.Thread, tr mem.Translation) int64 {
			if tr.Page == nil { // bulk-region fault: one-time cost, compressed
				return backing.FaultCost() / BulkFaultCompression
			}
			return backing.FaultCost()
		},
	})
	if cfg.Scheduler != nil {
		rt.mc.SetScheduler(cfg.Scheduler)
	}

	// Workload setup runs before any simulated time passes.
	env := &runEnv{rt: rt}
	if err := w.Setup(env); err != nil {
		return nil, fmt.Errorf("core: setup of %s: %w", w.Name(), err)
	}

	rt.buildAddressMap()

	if cfg.Setup.Monitors() {
		rt.det = detect.New(detect.Config{
			ThresholdPerSec: cfg.ThresholdPerSec,
			MinRecords:      detect.DefaultConfig().MinRecords,
		}, rt.mon, rt.prog, rt.maps, rt.memory.PageTable(), pageSize)
		if cfg.CaptureSamples {
			rt.sampleLog = &trace.SampleLog{PageSize: pageSize}
			rt.det.SetTap(rt.sampleLog)
		}
		interval := int64(cfg.DetectIntervalSec * cache.ClockHz)
		rt.mc.AddTimer(interval, interval, rt.detectTick)
	}
	rt.laserEnabled = cfg.Setup == LASER && !info.SyncHeavy

	// Sheriff: processes from startup, PTSB over all of memory.
	if cfg.Setup.IsSheriff() {
		if err := rt.repairE.ConvertAllNow(0); err != nil {
			return nil, fmt.Errorf("core: sheriff convert: %w", err)
		}
		for _, p := range rt.heapPages() {
			if err := rt.ptsbE.Protect(p, rt.repairE.Spaces()); err != nil {
				return nil, fmt.Errorf("core: sheriff protect: %w", err)
			}
		}
	}
	// ForceProtect arms the PTSB over the whole heap from startup while
	// keeping the TMI environment (CCC on, no monitors under TMIAlloc) —
	// how the model checker exercises page twinning deterministically.
	if cfg.ForceProtect && cfg.Setup.IsTMI() {
		if err := rt.repairE.ConvertAllNow(0); err != nil {
			return nil, fmt.Errorf("core: force convert: %w", err)
		}
		for _, p := range rt.heapPages() {
			if err := rt.ptsbE.Protect(p, rt.repairE.Spaces()); err != nil {
				return nil, fmt.Errorf("core: force protect: %w", err)
			}
		}
	}
	return rt, nil
}

// heapPages enumerates the mapped application heap and globals pages (the
// regions Sheriff protects wholesale and the teardown scanner walks).
func (rt *runtime) heapPages() []uint64 {
	var out []uint64
	ps := uint64(rt.memory.PageSize())
	for p := alloc.HeapBase; p < rt.al.HeapEnd(); p += ps {
		out = append(out, p)
	}
	for p := alloc.GlobalsBase; p < rt.al.GlobalsEnd(); p += ps {
		out = append(out, p)
	}
	return out
}

func (rt *runtime) buildAddressMap() {
	var am osim.AddressMap
	am.AddRegion(disasm.CodeBase, rt.prog.TextEnd()+4096, osim.RegionCode, "text")
	am.AddRegion(alloc.HeapBase, rt.al.HeapEnd(), osim.RegionHeap, "heap")
	if rt.al.GlobalsEnd() > alloc.GlobalsBase {
		am.AddRegion(alloc.GlobalsBase, rt.al.GlobalsEnd(), osim.RegionGlobals, "globals")
	}
	if rt.al.BulkBytes > 0 {
		am.AddRegion(alloc.BulkBase, alloc.BulkBase+rt.al.BulkBytes, osim.RegionHeap, "heap-bulk")
	}
	am.AddRegion(InternalBase, InternalBase+InternalSize, osim.RegionLib, "tmi-state")
	am.AddRegion(LibBase, LibBase+(64<<20), osim.RegionLib, "libc")
	am.AddRegion(StackBase, StackBase+uint64(rt.threads)*(8<<20), osim.RegionStack, "stacks")
	rt.maps = &am
}

// layout renders the Figure 6-style shared-memory organization.
func (rt *runtime) layout() []string {
	ps := rt.memory.PageSize()
	out := []string{
		fmt.Sprintf("code     0x%08x-0x%08x           synthetic text, %d sites",
			disasm.CodeBase, rt.prog.TextEnd(), rt.prog.NumSites()),
		fmt.Sprintf("heap     0x%08x-0x%08x  %4d pages shared memory file (always-shared view: RW)",
			alloc.HeapBase, rt.al.HeapEnd(), rt.al.HeapPages()),
	}
	if n := rt.ptsbE.ProtectedPages(); n > 0 {
		out = append(out, fmt.Sprintf("         %d page(s) remapped per process: PRIVATE R (copy-on-write, PTSB-armed)", n))
	}
	if rt.al.BulkBytes > 0 {
		out = append(out, fmt.Sprintf("bulk     0x%09x +%d MB               streamed input data (never byte-addressed)",
			alloc.BulkBase, rt.al.BulkBytes>>20))
	}
	out = append(out, fmt.Sprintf("tmistate 0x%08x-0x%08x  always SHARED RW: %d padded sync objects (pshared mutexes etc.)",
		InternalBase, InternalBase+InternalSize, rt.psyncMgr.Objects()))
	out = append(out, fmt.Sprintf("pagesize %d bytes; processes: %d converted", ps, len(rt.repairE.Spaces())))
	return out
}

// onSync is psync's synchronization-boundary hook; it dispatches through
// the composed chain (tracer → sanitizer → observer → controller).
func (rt *runtime) onSync(t *machine.Thread) {
	rt.hooksC.onSync(t)
}

// commitSync is the controller layer's sync handler: the PTSB commit.
func (rt *runtime) commitSync(t *machine.Thread) {
	if cost := rt.ptsbE.Commit(t); cost > 0 {
		t.AddCost(cost)
		if rt.tracer != nil {
			rt.tracer.Record(t.Clock(), t.ID, trace.KindCommit, uint64(cost))
		}
	}
}

// tracerLayer is the outermost hook layer: structured event recording.
func (rt *runtime) tracerLayer() hookLayer {
	return hookLayer{
		prio: layerTracer,
		regionEnter: func(t *machine.Thread, k machine.RegionKind) {
			rt.tracer.Record(t.Clock(), t.ID, trace.KindRegionEnter, uint64(k))
		},
		regionExit: func(t *machine.Thread, k machine.RegionKind) {
			rt.tracer.Record(t.Clock(), t.ID, trace.KindRegionExit, uint64(k))
		},
		onSync: func(t *machine.Thread) {
			rt.tracer.Record(t.Clock(), t.ID, trace.KindSync, 0)
		},
	}
}

func (rt *runtime) onFault(t *machine.Thread, acc *machine.Access, f *mem.Fault) (bool, int64) {
	if f.Kind == mem.FaultProtWrite {
		handled, cost := rt.ptsbE.HandleWriteFault(t, acc.Addr)
		if handled && rt.tracer != nil {
			rt.tracer.Record(t.Clock(), t.ID, trace.KindTwinFault, acc.Addr&^uint64(rt.memory.PageSize()-1))
		}
		return handled, cost
	}
	return false, 0
}

func (rt *runtime) postAccess(t *machine.Thread, acc *machine.Access, res cache.Result) int64 {
	var extra int64
	if res.HITM && rt.mon != nil {
		extra += rt.mon.Sampler().OnHITM(t.ID, t.Core, acc.PC, acc.Addr, acc.Size, acc.Write, t.Clock())
	}
	if rt.backendCost != nil {
		extra += rt.backendCost.AccessCost(t)
	}
	if rt.laserRepaired {
		line := acc.Addr &^ uint64(cache.LineSize-1)
		if rt.laserLines[line] {
			if acc.Write {
				extra += LaserStoreFixed + int64(LaserStoreLatFrac*float64(res.Latency)) - res.Latency
			} else {
				extra += LaserLoadOverhead
			}
		}
	}
	if rt.cfg.Setup == Plastic {
		extra += PlasticDBIOverhead
		if rt.plasticEngaged && rt.plasticLines[acc.Addr&^uint64(cache.LineSize-1)] && res.Latency > PlasticRemapCost {
			extra += PlasticRemapCost - res.Latency
		}
	}
	return extra
}

type idleState struct {
	lastMerged uint64
	idleTicks  int
}

// maybeTeardown un-repairs pages whose commits have stopped merging bytes
// for the configured number of consecutive intervals.
func (rt *runtime) maybeTeardown(now int64) {
	if rt.pageIdle == nil {
		rt.pageIdle = make(map[uint64]*idleState)
	}
	for _, page := range rt.heapPages() {
		if !rt.ptsbE.Protected(page) {
			delete(rt.pageIdle, page)
			continue
		}
		act := rt.ptsbE.Activity(page)
		st := rt.pageIdle[page]
		if st == nil {
			st = &idleState{lastMerged: act.BytesMerged}
			rt.pageIdle[page] = st
			continue
		}
		if act.BytesMerged == st.lastMerged {
			st.idleTicks++
		} else {
			st.idleTicks = 0
			st.lastMerged = act.BytesMerged
		}
		if st.idleTicks >= rt.cfg.TeardownIdleIntervals {
			if err := rt.ptsbE.Unprotect(page, rt.backend.Spaces()); err == nil {
				if rt.tracer != nil {
					rt.tracer.Record(now, -1, trace.KindTeardown, page)
				}
				rt.logEvent(now, "teardown: page 0x%x idle for %d intervals, repair removed", page, st.idleTicks)
				rt.notes["teardown.pages"]++
				delete(rt.pageIdle, page)
			}
		}
	}
}

func (rt *runtime) adaptPeriod(windowRecords uint64) {
	p := rt.mon.Period()
	next := detect.DefaultPeriodController().Next(p, windowRecords)
	if next == p {
		return
	}
	rt.mon.SetPeriod(next)
	rt.notes["adaptive.period"] = float64(next)
}

func (rt *runtime) detectTick(now int64) {
	recordsBefore := rt.det.TotalRecords
	req := rt.det.Tick(rt.cfg.DetectIntervalSec)
	if rt.cfg.AdaptivePeriod {
		rt.adaptPeriod(rt.det.TotalRecords - recordsBefore)
	}
	if rt.cfg.TeardownIdleIntervals > 0 && rt.backend.Converted() {
		rt.maybeTeardown(now)
	}
	defer rt.sampleInterval(now)
	if rt.tracer != nil {
		rt.tracer.Record(now, -1, trace.KindDetectTick, rt.det.TotalRecords-recordsBefore)
	}
	if req == nil {
		return
	}
	rt.logEvent(now, "detector: false sharing on %d line(s), repair requested for %d page(s)",
		len(req.Lines), len(req.Pages))
	if rt.tracer != nil {
		for _, p := range req.Pages {
			rt.tracer.Record(now, -1, trace.KindRepair, p)
		}
	}
	switch rt.cfg.Setup {
	case TMIProtect:
		wasConverted := rt.backend.Converted()
		before := rt.ptsbE.ProtectedPages()
		bstBefore := rt.backend.BackendStats()
		if err := rt.backend.Arm(req, now); err != nil {
			// Satellite: a failed repair is a stat and an event, not a
			// crashed simulation — the workload keeps running unrepaired.
			rt.notes["repair.failed"]++
			rt.logEvent(now, "repair(%s): failed: %v", rt.backend.Name(), err)
		}
		if !wasConverted && rt.backend.Converted() {
			switch rt.backend.Name() {
			case repair.BackendT2P:
				rt.logEvent(now, "PM: stop-the-world; %d thread(s) converted to processes (T2P %v us)",
					len(rt.repairE.Spaces()), formatMicros(rt.repairE.T2PMicros()))
			case repair.BackendTMEBox:
				rt.logEvent(now, "tmebox: %d isolation domain(s) keyed in-process (no fork)",
					len(rt.backend.Spaces()))
			case repair.BackendPad:
				rt.logEvent(now, "pad: allocator switched to line-segregated placement")
			}
		}
		bst := rt.backend.BackendStats()
		if d := bst.LinesIsolated - bstBefore.LinesIsolated; d > 0 {
			rt.logEvent(now, "pad: %d line(s) re-segregated onto private lines", d)
		}
		if d := bst.ThreadsMigrated - bstBefore.ThreadsMigrated; d > 0 {
			rt.logEvent(now, "map: %d thread(s) migrated toward the hot page's home node", d)
		}
		if n := rt.ptsbE.ProtectedPages() - before; n > 0 {
			rt.logEvent(now, "PTSB armed on %d page(s): %s", n, pageList(req.Pages))
		}
	case LASER:
		if rt.laserEnabled {
			for _, l := range req.Lines {
				rt.laserLines[l.Line] = true
			}
			rt.laserRepaired = true
			rt.logEvent(now, "LASER: software store buffer engaged for %d line(s)", len(req.Lines))
		}
	case Plastic:
		for _, l := range req.Lines {
			rt.plasticLines[l.Line] = true
		}
		rt.plasticEngaged = true
		rt.logEvent(now, "Plastic: byte-granularity remapping engaged for %d line(s)", len(req.Lines))
	}
}

func formatMicros(us []float64) []int {
	out := make([]int, len(us))
	for i, v := range us {
		out[i] = int(v)
	}
	return out
}

func pageList(pages []uint64) string {
	var parts []string
	for i, p := range pages {
		if i == 4 {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, fmt.Sprintf("0x%x", p))
	}
	return strings.Join(parts, " ")
}

// sampleInterval appends one timeline point (called from every detection
// tick, before any early return on an empty request).
func (rt *runtime) sampleInterval(now int64) {
	if len(rt.timeline) >= 4096 {
		return
	}
	hitm := rt.mc.Cache().Stats().HITM
	recs := uint64(0)
	if rt.det != nil {
		recs = rt.det.TotalRecords
	}
	rt.timeline = append(rt.timeline, IntervalSample{
		AtSec:          float64(now) / cache.ClockHz,
		HITMPerSec:     float64(hitm-rt.lastHITM) / rt.cfg.DetectIntervalSec,
		RecordsInTick:  recs - rt.lastRecords,
		PagesProtected: rt.ptsbE.ProtectedPages(),
	})
	rt.lastHITM = hitm
	rt.lastRecords = recs
}

func (rt *runtime) execute(w workload.Workload) (*Report, error) {
	bodies := make([]func(*machine.Thread), rt.threads)
	for i := 0; i < rt.threads; i++ {
		bodies[i] = func(mt *machine.Thread) {
			th := &runThread{rt: rt, mt: mt}
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(hangSentinel); ok {
						return
					}
					panic(r)
				}
			}()
			w.Body(th)
		}
	}
	runErr := rt.mc.Run(bodies)
	if runErr != nil {
		// A hang in one thread commonly deadlocks the rest at a barrier;
		// report it as a hang rather than failing the experiment.
		if len(rt.hangs) > 0 || strings.Contains(runErr.Error(), "deadlock") {
			if len(rt.hangs) == 0 {
				rt.hangs[-1] = runErr.Error()
			}
			runErr = nil
		} else {
			return nil, runErr
		}
	}

	rep := &Report{
		Workload:   w.Name(),
		System:     rt.cfg.Setup.String(),
		SimSeconds: rt.mc.ElapsedSeconds(),
		Notes:      rt.notes,
		Cache:      rt.mc.Cache().Stats(),
	}
	rep.HITMEvents = rep.Cache.HITM
	if rt.mon != nil {
		rep.Dropped = rt.mon.Dropped()
	}
	if rt.det != nil {
		rep.RecordsSeen = rt.det.TotalRecords
		rep.TrueLines = len(rt.det.TrueLines)
		rep.FalseLines = len(rt.det.FalseLines)
		rep.TrueRecords = rt.det.TrueRecords
		rep.FalseRecords = rt.det.FalseRecords
		rep.SpanDrops = rt.det.DroppedSpans
		for _, lr := range rt.det.Lines {
			rep.Lines = append(rep.Lines, lr)
		}
		sort.Slice(rep.Lines, func(i, j int) bool { return rep.Lines[i].Line < rep.Lines[j].Line })
		rep.PredictedManualSpeedup = rt.det.PredictManualSpeedup(rt.mon.Period(), rt.mc.Elapsed(), rt.threads)
		rep.LineSizePredictions = rt.det.PredictLineSizes()
	}
	if rt.san != nil {
		rt.san.finish()
		rep.SanitizerViolations = rt.san.violations
		rep.SanitizerDetails = rt.san.details
	}
	rep.Layout = rt.layout()
	rep.Events = rt.events
	rep.Timeline = rt.timeline
	rep.Tracer = rt.tracer
	rep.SampleLog = rt.sampleLog
	bst := rt.backend.BackendStats()
	rep.RepairBackend = bst.Backend
	rep.BackendActivity = bst
	rep.Repaired = bst.RepairEvents > 0 || rt.laserRepaired || rt.plasticEngaged || rt.cfg.Setup.IsSheriff()
	rep.RepairAtSec = float64(bst.ConvertedAtCycle) / cache.ClockHz
	rep.T2PMicros = rt.repairE.T2PMicros()
	rep.PagesProtected = bst.PagesProtected
	rep.Commits = rt.ptsbE.Stats.Commits
	rep.TwinFaults = rt.ptsbE.Stats.TwinFaults
	rep.BytesMerged = rt.ptsbE.Stats.BytesMerged
	rep.CCCFlushes = rt.cccCtl.Stats.Flushes
	if rep.Commits > 0 {
		window := rep.SimSeconds - rep.RepairAtSec
		if window > 0 {
			rep.CommitsPerSec = float64(rep.Commits) / window
		}
	}

	rep.MemBytes = rt.memory.AccountedBytes()
	if rt.mon != nil {
		rep.MemBytes += rt.mon.FootprintBytes()
	}
	if rt.det != nil {
		rep.MemBytes += rt.det.FootprintBytes()
	}

	if rt.cfg.PostRun != nil {
		rt.cfg.PostRun(&runEnv{rt: rt})
	}
	if len(rt.hangs) > 0 {
		rep.Hung = true
		for _, reason := range rt.hangs {
			rep.HangReason = reason
			break
		}
		rep.Validated = false
		rep.ValidationErr = "hung: " + rep.HangReason
		return rep, nil
	}
	env := &runEnv{rt: rt}
	if err := w.Validate(env); err != nil {
		rep.Validated = false
		rep.ValidationErr = err.Error()
	} else {
		rep.Validated = true
	}
	return rep, nil
}
