package core

import (
	"strings"
	"testing"

	"repro/internal/sim/cache"
	"repro/internal/sim/machine"
)

// TestHookChainOrderIsDeterministic pins the canonical hook-chain order:
// enter-like events flow tracer → sanitizer → observer → controller, region
// exit unwinds in exact reverse, and the order must not depend on the order
// layers were registered in. This is the contract that lets the sanitizer
// and the model-checker observer coexist: each sees a consistent view no
// matter which Config flags are set.
func TestHookChainOrderIsDeterministic(t *testing.T) {
	var log []string
	mk := func(name string, prio layerPriority) hookLayer {
		return hookLayer{
			prio: prio,
			regionEnter: func(_ *machine.Thread, _ machine.RegionKind) {
				log = append(log, name+".enter")
			},
			regionExit: func(_ *machine.Thread, _ machine.RegionKind) {
				log = append(log, name+".exit")
			},
			postAccess: func(_ *machine.Thread, _ *machine.Access, _ cache.Result) int64 {
				log = append(log, name+".post")
				return 1
			},
			onSync: func(_ *machine.Thread) {
				log = append(log, name+".sync")
			},
		}
	}
	layers := map[string]hookLayer{
		"tracer":     mk("tracer", layerTracer),
		"sanitizer":  mk("sanitizer", layerSanitizer),
		"observer":   mk("observer", layerObserver),
		"controller": mk("controller", layerController),
	}

	// Every registration order must produce the same invocation sequence.
	registrationOrders := [][]string{
		{"tracer", "sanitizer", "observer", "controller"},
		{"controller", "observer", "sanitizer", "tracer"},
		{"observer", "tracer", "controller", "sanitizer"},
		{"sanitizer", "controller", "tracer", "observer"},
	}
	const (
		wantEnter = "tracer.enter sanitizer.enter observer.enter controller.enter"
		wantExit  = "controller.exit observer.exit sanitizer.exit tracer.exit"
		wantPost  = "tracer.post sanitizer.post observer.post controller.post"
		wantSync  = "tracer.sync sanitizer.sync observer.sync controller.sync"
	)
	for _, order := range registrationOrders {
		var in []hookLayer
		for _, name := range order {
			in = append(in, layers[name])
		}
		c := composeLayers(in)

		log = nil
		c.regionEnter(nil, machine.RegionAtomicStrong)
		if got := strings.Join(log, " "); got != wantEnter {
			t.Errorf("registration %v: enter order %q, want %q", order, got, wantEnter)
		}
		log = nil
		c.regionExit(nil, machine.RegionAtomicStrong)
		if got := strings.Join(log, " "); got != wantExit {
			t.Errorf("registration %v: exit order %q, want %q", order, got, wantExit)
		}
		log = nil
		if cost := c.postAccess(nil, nil, cache.Result{}); cost != 4 {
			t.Errorf("registration %v: postAccess cost %d, want sum 4", order, cost)
		}
		if got := strings.Join(log, " "); got != wantPost {
			t.Errorf("registration %v: post order %q, want %q", order, got, wantPost)
		}
		log = nil
		c.onSync(nil)
		if got := strings.Join(log, " "); got != wantSync {
			t.Errorf("registration %v: sync order %q, want %q", order, got, wantSync)
		}
	}
}
