package core

// The annotation sanitizer (Config.Sanitize): the dynamic half of tmilint's
// CCC verifier. The static verifier (internal/analysis) proves that every
// atomic instruction site is region-bracketed in the model; the sanitizer
// asserts the same contract while the machine actually runs, through the
// PostAccess and Region hooks: no atomic access may execute outside a
// consistency region, no plain access may issue from an atomic instruction
// site, every access's direction must match its site's disassembled kind,
// and region enter/exit must balance per thread. Runtime-library sites
// (psync) execute below the annotation layer and are exempt, exactly as in
// the static verifier.

import (
	"fmt"

	"repro/internal/ccc"
	"repro/internal/disasm"
	"repro/internal/sim/machine"
)

// maxSanitizerDetails caps the retained violation messages; the count keeps
// accumulating past the cap.
const maxSanitizerDetails = 64

type sanitizer struct {
	prog  *disasm.Program
	depth []int // consistency-region nesting per thread

	violations uint64
	details    []string
}

func newSanitizer(prog *disasm.Program, threads int) *sanitizer {
	return &sanitizer{prog: prog, depth: make([]int, threads)}
}

func (s *sanitizer) violate(format string, args ...interface{}) {
	s.violations++
	if len(s.details) < maxSanitizerDetails {
		s.details = append(s.details, fmt.Sprintf(format, args...))
	}
}

func (s *sanitizer) enter(t *machine.Thread, k machine.RegionKind) {
	s.depth[t.ID]++
}

func (s *sanitizer) exit(t *machine.Thread, k machine.RegionKind) {
	if s.depth[t.ID] == 0 {
		s.violate("thread %d: %v region exit without a matching enter", t.ID, k)
		return
	}
	s.depth[t.ID]--
}

func (s *sanitizer) onAccess(t *machine.Thread, acc *machine.Access) {
	info, ok := s.prog.Disassemble(acc.PC)
	if !ok {
		s.violate("thread %d: access at pc 0x%x does not disassemble to any site", t.ID, acc.PC)
		return
	}
	if info.Runtime {
		return
	}
	if acc.Write && !info.Kind.Writes() {
		s.violate("thread %d: write through %s site %q (pc 0x%x)", t.ID, info.Kind, info.Name, acc.PC)
	}
	if !acc.Write && !info.Kind.Reads() {
		s.violate("thread %d: read through %s site %q (pc 0x%x)", t.ID, info.Kind, info.Name, acc.PC)
	}
	if acc.Atomic {
		if info.Kind != disasm.KindAtomic {
			s.violate("thread %d: atomic operation through %s site %q (pc 0x%x): the detector would miss half of the RMW",
				t.ID, info.Kind, info.Name, acc.PC)
		}
		if s.depth[t.ID] == 0 {
			s.violate("thread %d: atomic access at site %q (pc 0x%x) executed outside any consistency region",
				t.ID, info.Name, acc.PC)
		}
	} else if info.Kind == disasm.KindAtomic {
		inter := ccc.Table2(ccc.ClassRegular, ccc.ClassAtomic)
		s.violate("thread %d: plain access through atomic instruction site %q (pc 0x%x) with no region callbacks: the annotation pass missed it, demoting its races to Table 2 case %d (%q)",
			t.ID, info.Name, acc.PC, inter.Case, inter.Semantics)
	}
}

// finish flags regions still open after all threads completed.
func (s *sanitizer) finish() {
	for tid, d := range s.depth {
		if d > 0 {
			s.violate("thread %d: %d consistency region(s) still open at exit", tid, d)
		}
	}
}
