// Package core wires the substrates into runnable systems: the pthreads
// baseline, TMI's three modes (alloc / detect / protect), Sheriff's
// threads-as-processes design and LASER's software-store-buffer repair, all
// running the same workloads on the same simulated machine. It is the
// engine behind the public tmi package and every experiment in the paper's
// evaluation.
package core

import (
	"fmt"

	"repro/internal/sim/machine"
	"repro/tmi/workload"
)

// Setup selects which system runs the workload.
type Setup int

// Systems under evaluation.
const (
	// Pthreads is the baseline: Lockless-style allocator, native threads,
	// no monitoring.
	Pthreads Setup = iota
	// TMIAlloc redirects allocations to TMI's process-shared memory and
	// replaces synchronization with process-shared objects, nothing else.
	TMIAlloc
	// TMIDetect adds HITM monitoring and the detection thread.
	TMIDetect
	// TMIProtect is full TMI: detection plus online repair.
	TMIProtect
	// SheriffDetect models Sheriff's detection tool: threads run as
	// processes from startup with all of memory page-protected.
	SheriffDetect
	// SheriffProtect is Sheriff's repair tool (same execution model).
	SheriffProtect
	// LASER detects like TMI but repairs with an instrumented software
	// store buffer, preserving TSO.
	LASER
	// Plastic models the EuroSys'13 system: dynamic binary instrumentation
	// over the whole program plus byte-granularity remapping of contended
	// lines (custom OS/hypervisor support assumed present).
	Plastic
)

// String names the setup as it appears in the paper's figures.
func (s Setup) String() string {
	switch s {
	case Pthreads:
		return "pthreads"
	case TMIAlloc:
		return "tmi-alloc"
	case TMIDetect:
		return "tmi-detect"
	case TMIProtect:
		return "tmi-protect"
	case SheriffDetect:
		return "sheriff-detect"
	case SheriffProtect:
		return "sheriff-protect"
	case LASER:
		return "laser"
	case Plastic:
		return "plastic"
	}
	return fmt.Sprintf("setup(%d)", int(s))
}

// IsTMI reports whether the setup uses TMI's shared-memory environment.
func (s Setup) IsTMI() bool { return s == TMIAlloc || s == TMIDetect || s == TMIProtect }

// IsSheriff reports whether the setup uses Sheriff's execution model.
func (s Setup) IsSheriff() bool { return s == SheriffDetect || s == SheriffProtect }

// Monitors reports whether the setup samples HITM events.
func (s Setup) Monitors() bool {
	return s == TMIDetect || s == TMIProtect || s == LASER || s == Plastic
}

// Config configures a run.
type Config struct {
	Setup Setup
	// Threads overrides the workload's default thread count when > 0.
	Threads int
	// Period is the perf sampling period (default 100, the paper's
	// operating point).
	Period int
	// HugePages backs TMI's shared memory with 2 MiB pages.
	HugePages bool
	// DisableCCC turns code-centric consistency off (Sheriff semantics;
	// used by the consistency experiments). TMI setups default to CCC on.
	DisableCCC bool
	// PTSBEverywhere arms the whole heap at first repair (§4.3 ablation).
	PTSBEverywhere bool
	// RepairBackend selects the repair strategy for TMIProtect runs: ""
	// or "t2p" (the paper's T2P+PTSB mechanism), "pad" (allocator
	// re-segregation), "map" (thread-and-data mapping), or "tmebox"
	// (fork-free keyed isolation). See internal/repair.
	RepairBackend string
	// Sockets splits the cores across that many sockets with a home-node
	// directory and remote-socket latency penalties (cache.Topology). 0 or
	// 1 keeps the flat single-socket machine, byte-identical to the
	// pre-topology model.
	Sockets int
	// ThresholdPerSec overrides the detector repair threshold (default
	// 100k estimated HITM events/s per line).
	ThresholdPerSec float64
	// DetectIntervalSec is the detection thread's analysis period
	// (default 1 simulated second).
	DetectIntervalSec float64
	// Seed fixes the run's determinism.
	Seed int64
	// CacheLines bounds each core's private cache (FIFO eviction); 0 keeps
	// the default unlimited model, which contention behavior does not
	// depend on.
	CacheLines int
	// AdaptivePeriod lets the detection thread retune the sampling period
	// each interval to hold the record rate inside a target band — an
	// extension automating Figure 4's accuracy/overhead tradeoff. Period
	// stays within [1, 1000]; estimates remain unbiased because counts
	// always scale by the period in force.
	AdaptivePeriod bool
	// TeardownIdleIntervals, when > 0, un-repairs a protected page after
	// that many consecutive detection intervals in which its commits merged
	// no bytes — the reverse direction of compatible-by-default (extension;
	// 0 disables, the paper's behavior).
	TeardownIdleIntervals int
	// Trace records structured runtime events (sync, regions, faults,
	// commits, repair) into Report.Tracer.
	Trace bool
	// CaptureSamples records the detector's accepted sample stream and
	// window boundaries into Report.SampleLog — a replayable HITM trace for
	// tmid load testing and offline/online advice-parity checks. Only
	// meaningful for monitoring setups.
	CaptureSamples bool
	// ForceProtect arms the PTSB over every heap and globals page at
	// startup (threads converted to processes immediately), without
	// enabling detection. Only meaningful for TMI setups; the model
	// checker uses it with TMIAlloc to exercise page twinning under CCC
	// with no timers in the schedule space.
	ForceProtect bool
	// Scheduler, when non-nil, replaces the machine's min-clock policy
	// with an external strategy consulted at every instruction boundary
	// (machine.Scheduler). The model checker's control half.
	Scheduler machine.Scheduler
	// Observer, when non-nil, taps the run's visible-event stream (see
	// hooks.go). The model checker's observation half.
	Observer Observer
	// PostRun, when non-nil, runs after the workload finishes (whether or
	// not it validated) with setup-style memory access — how the model
	// checker fingerprints final states.
	PostRun func(env workload.Env)
	// Sanitize cross-checks the CCC annotation contract at simulation time
	// (tmilint's dynamic half): every access's direction must match its
	// site's disassembled kind, no plain access may issue from an atomic
	// instruction site, no atomic access may execute outside a consistency
	// region, and regions must balance. Violations land in
	// Report.SanitizerViolations/SanitizerDetails.
	Sanitize bool
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = 100
	}
	if c.ThresholdPerSec <= 0 {
		c.ThresholdPerSec = 100_000
	}
	if c.DetectIntervalSec <= 0 {
		c.DetectIntervalSec = 1.0
	}
	return c
}

// SheriffMaxFootprintMB is the largest workload footprint Sheriff's
// protect-all-of-memory design handles; beyond it (and with custom
// synchronization) Sheriff is incompatible, as the paper observes for most
// of the suite.
const SheriffMaxFootprintMB = 100

// ErrIncompatible reports that a system cannot run a workload at all.
type ErrIncompatible struct {
	System   string
	Workload string
	Reason   string
}

func (e *ErrIncompatible) Error() string {
	return fmt.Sprintf("%s is incompatible with %s: %s", e.System, e.Workload, e.Reason)
}
