package core

import (
	"strings"
	"testing"

	"repro/tmi/workload"
)

func TestSetupStrings(t *testing.T) {
	want := map[Setup]string{
		Pthreads:       "pthreads",
		TMIAlloc:       "tmi-alloc",
		TMIDetect:      "tmi-detect",
		TMIProtect:     "tmi-protect",
		SheriffDetect:  "sheriff-detect",
		SheriffProtect: "sheriff-protect",
		LASER:          "laser",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
}

func TestSetupPredicates(t *testing.T) {
	if !TMIAlloc.IsTMI() || !TMIDetect.IsTMI() || !TMIProtect.IsTMI() {
		t.Error("TMI modes misclassified")
	}
	if Pthreads.IsTMI() || SheriffProtect.IsTMI() || LASER.IsTMI() {
		t.Error("non-TMI setups misclassified")
	}
	if !SheriffDetect.IsSheriff() || !SheriffProtect.IsSheriff() {
		t.Error("sheriff predicates wrong")
	}
	for _, s := range []Setup{TMIDetect, TMIProtect, LASER} {
		if !s.Monitors() {
			t.Errorf("%v should monitor", s)
		}
	}
	for _, s := range []Setup{Pthreads, TMIAlloc, SheriffDetect, SheriffProtect} {
		if s.Monitors() {
			t.Errorf("%v should not monitor", s)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Period != 100 {
		t.Errorf("default period %d, want 100 (the paper's operating point)", c.Period)
	}
	if c.ThresholdPerSec != 100_000 {
		t.Errorf("default threshold %f, want 100000", c.ThresholdPerSec)
	}
	if c.DetectIntervalSec != 1.0 {
		t.Errorf("default interval %f, want 1.0", c.DetectIntervalSec)
	}
	// Explicit values survive.
	c = Config{Period: 7, ThresholdPerSec: 5, DetectIntervalSec: 0.5}.withDefaults()
	if c.Period != 7 || c.ThresholdPerSec != 5 || c.DetectIntervalSec != 0.5 {
		t.Error("explicit config values overwritten")
	}
}

func TestSheriffIncompatibilityGate(t *testing.T) {
	if r := sheriffIncompatibility(workload.Info{FootprintMB: 50}); r != "" {
		t.Errorf("small clean workload should be compatible: %q", r)
	}
	if r := sheriffIncompatibility(workload.Info{FootprintMB: 5000}); !strings.Contains(r, "footprint") {
		t.Errorf("large footprint should be incompatible: %q", r)
	}
	if r := sheriffIncompatibility(workload.Info{FootprintMB: 10, UsesCustomSync: true}); !strings.Contains(r, "synchronization") {
		t.Errorf("custom sync should be incompatible: %q", r)
	}
}

func TestErrIncompatibleMessage(t *testing.T) {
	e := &ErrIncompatible{System: "sheriff-protect", Workload: "ocean-ncp", Reason: "too big"}
	msg := e.Error()
	for _, part := range []string{"sheriff-protect", "ocean-ncp", "too big"} {
		if !strings.Contains(msg, part) {
			t.Errorf("error message %q missing %q", msg, part)
		}
	}
}

type nilThreadsWorkload struct{ workload.Workload }

func (nilThreadsWorkload) Name() string                { return "broken" }
func (nilThreadsWorkload) Info() workload.Info         { return workload.Info{} }
func (nilThreadsWorkload) Setup(workload.Env) error    { return nil }
func (nilThreadsWorkload) Body(workload.Thread)        {}
func (nilThreadsWorkload) Validate(workload.Env) error { return nil }

func TestRunRejectsZeroThreads(t *testing.T) {
	if _, err := Run(nilThreadsWorkload{}, Config{}); err == nil {
		t.Error("a workload declaring no threads must be rejected")
	}
}
