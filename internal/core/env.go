package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/disasm"
	"repro/internal/psync"
	"repro/internal/sim/machine"
	"repro/tmi/workload"
)

// runEnv implements workload.Env over the runtime.
type runEnv struct{ rt *runtime }

var _ workload.Env = (*runEnv)(nil)

func (e *runEnv) Threads() int  { return e.rt.threads }
func (e *runEnv) PageSize() int { return e.rt.memory.PageSize() }

func (e *runEnv) Alloc(n, align int) uint64 { return e.rt.al.Alloc(n, align) }
func (e *runEnv) AllocDefault(n int) uint64 { return e.rt.al.AllocDefault(n) }
func (e *runEnv) AllocBulk(n int64) uint64  { return e.rt.al.AllocBulk(n) }

func (e *runEnv) AllocGlobal(n, align int) uint64 { return e.rt.al.AllocGlobal(n, align) }

func (e *runEnv) Free(addr uint64, n int) { e.rt.al.Free(addr, n) }

func (e *runEnv) Write(addr uint64, b []byte) {
	if err := e.rt.sharedView.WriteBytes(addr, b); err != nil {
		panic(fmt.Sprintf("core: env write: %v", err))
	}
}

func (e *runEnv) Read(addr uint64, n int) []byte {
	b, err := e.rt.sharedView.ReadBytes(addr, n)
	if err != nil {
		panic(fmt.Sprintf("core: env read: %v", err))
	}
	return b
}

func (e *runEnv) Store(addr uint64, size int, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	e.Write(addr, buf[:size])
}

func (e *runEnv) Load(addr uint64, size int) uint64 {
	b := e.Read(addr, size)
	var buf [8]byte
	copy(buf[:], b)
	return binary.LittleEndian.Uint64(buf[:])
}

func (e *runEnv) Site(name string, kind workload.SiteKind, width int) workload.Site {
	var dk disasm.Kind
	switch kind {
	case workload.SiteLoad:
		dk = disasm.KindLoad
	case workload.SiteStore:
		dk = disasm.KindStore
	case workload.SiteAtomic:
		dk = disasm.KindAtomic
	default:
		panic(fmt.Sprintf("core: unknown site kind %d", kind))
	}
	s := e.rt.prog.Site(name, dk, width)
	return workload.Site{PC: s.PC(), Kind: kind, Width: width}
}

// Synchronization handles.

type coreMutex struct {
	workload.MutexBase
	m *psync.Mutex
}

type coreBarrier struct {
	workload.BarrierBase
	b *psync.Barrier
}

type coreCond struct {
	workload.CondBase
	c *psync.Cond
}

type coreRW struct {
	workload.RWMutexBase
	rw *psync.RWMutex
}

func (e *runEnv) NewMutex(name string) workload.Mutex {
	// A pthread_mutex_t occupies 40 bytes on the application heap; with
	// TMI indirection the first word becomes the pointer to the shared
	// object.
	appAddr := e.rt.al.Alloc(40, 8)
	return coreMutex{m: e.rt.psyncMgr.NewMutex(name, appAddr)}
}

func (e *runEnv) NewMutexAt(name string, appAddr uint64) workload.Mutex {
	return coreMutex{m: e.rt.psyncMgr.NewMutex(name, appAddr)}
}

func (e *runEnv) NewBarrier(name string, parties int) workload.Barrier {
	return coreBarrier{b: e.rt.psyncMgr.NewBarrier(name, parties)}
}

func (e *runEnv) NewCond(name string) workload.Cond {
	return coreCond{c: e.rt.psyncMgr.NewCond(name)}
}

func (e *runEnv) NewRWMutex(name string) workload.RWMutex {
	// A pthread_rwlock_t occupies 56 bytes on the application heap.
	appAddr := e.rt.al.Alloc(56, 8)
	return coreRW{rw: e.rt.psyncMgr.NewRWMutex(name, appAddr)}
}

func (e *runEnv) Note(key string, v float64) { e.rt.notes[key] = v }

// hangSentinel unwinds a livelocked workload thread.
type hangSentinel struct{}

// runThread implements workload.Thread over a machine thread.
type runThread struct {
	rt *runtime
	mt *machine.Thread
}

var _ workload.Thread = (*runThread)(nil)

func (t *runThread) ID() int         { return t.mt.ID }
func (t *runThread) NumThreads() int { return t.rt.threads }

func (t *runThread) Load(s workload.Site, addr uint64) uint64 {
	return t.mt.Load(s.PC, addr, s.Width)
}

func (t *runThread) Store(s workload.Site, addr uint64, v uint64) {
	t.mt.Store(s.PC, addr, s.Width, v)
}

func regionKind(order workload.MemOrder) machine.RegionKind {
	switch order {
	case workload.Relaxed:
		return machine.RegionAtomicRelaxed
	case workload.Acquire:
		return machine.RegionAtomicAcquire
	case workload.Release:
		return machine.RegionAtomicRelease
	case workload.AcqRel:
		return machine.RegionAtomicAcqRel
	}
	return machine.RegionAtomicStrong
}

func fenceKind(order workload.MemOrder) (machine.RegionKind, bool) {
	switch order {
	case workload.Acquire:
		return machine.RegionFenceAcquire, true
	case workload.Release:
		return machine.RegionFenceRelease, true
	case workload.AcqRel:
		return machine.RegionFenceAcqRel, true
	case workload.SeqCst:
		return machine.RegionFenceSeqCst, true
	}
	return 0, false // relaxed fence is a no-op
}

func (t *runThread) AtomicAdd(s workload.Site, addr uint64, delta uint64, order workload.MemOrder) uint64 {
	k := regionKind(order)
	t.mt.EnterRegion(k)
	old := t.mt.AtomicRMW(s.PC, addr, s.Width, func(o uint64) uint64 { return o + delta })
	t.mt.ExitRegion(k)
	return old
}

func (t *runThread) AtomicCAS(s workload.Site, addr uint64, old, new uint64, order workload.MemOrder) bool {
	k := regionKind(order)
	t.mt.EnterRegion(k)
	ok := t.mt.AtomicCAS(s.PC, addr, s.Width, old, new)
	t.mt.ExitRegion(k)
	return ok
}

func (t *runThread) AtomicLoad(s workload.Site, addr uint64, order workload.MemOrder) uint64 {
	k := regionKind(order)
	t.mt.EnterRegion(k)
	v := t.mt.AtomicLoad(s.PC, addr, s.Width)
	t.mt.ExitRegion(k)
	return v
}

func (t *runThread) AtomicStore(s workload.Site, addr uint64, v uint64, order workload.MemOrder) {
	k := regionKind(order)
	t.mt.EnterRegion(k)
	t.mt.AtomicStore(s.PC, addr, s.Width, v)
	t.mt.ExitRegion(k)
}

func (t *runThread) Fence(order workload.MemOrder) {
	k, ok := fenceKind(order)
	if !ok {
		return
	}
	t.mt.EnterRegion(k)
	t.mt.ExitRegion(k)
}

func (t *runThread) EnterAsm() { t.mt.EnterRegion(machine.RegionAsm) }
func (t *runThread) ExitAsm()  { t.mt.ExitRegion(machine.RegionAsm) }

func (t *runThread) AsmAtomicSwap(sa, sb workload.Site, addrA, addrB uint64) {
	t.mt.EnterRegion(machine.RegionAsm)
	t.mt.AtomicPairSwap(sa.PC, sb.PC, addrA, addrB, sa.Width)
	t.mt.ExitRegion(machine.RegionAsm)
}

func (t *runThread) Lock(m workload.Mutex)   { m.(coreMutex).m.Lock(t.mt) }
func (t *runThread) Unlock(m workload.Mutex) { m.(coreMutex).m.Unlock(t.mt) }
func (t *runThread) Wait(b workload.Barrier) { b.(coreBarrier).b.Wait(t.mt) }

func (t *runThread) RLock(m workload.RWMutex)   { m.(coreRW).rw.RLock(t.mt) }
func (t *runThread) RUnlock(m workload.RWMutex) { m.(coreRW).rw.RUnlock(t.mt) }
func (t *runThread) WLock(m workload.RWMutex)   { m.(coreRW).rw.Lock(t.mt) }
func (t *runThread) WUnlock(m workload.RWMutex) { m.(coreRW).rw.Unlock(t.mt) }

func (t *runThread) CondWait(c workload.Cond, m workload.Mutex) {
	c.(coreCond).c.Wait(t.mt, m.(coreMutex).m)
}
func (t *runThread) CondSignal(c workload.Cond)    { c.(coreCond).c.Signal(t.mt) }
func (t *runThread) CondBroadcast(c workload.Cond) { c.(coreCond).c.Broadcast(t.mt) }

func (t *runThread) Work(cycles int64) { t.mt.Work(cycles) }

func (t *runThread) Stream(s workload.Site, base uint64, n int64, write bool) {
	t.mt.Stream(s.PC, base, n, write)
}

func (t *runThread) Rand() *rand.Rand { return t.mt.Rand() }

func (t *runThread) Hang(reason string) {
	t.rt.hangs[t.mt.ID] = reason
	panic(hangSentinel{})
}
