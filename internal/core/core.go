package core
