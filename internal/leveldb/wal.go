package leveldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL is the write-ahead log: every mutation is appended (with a CRC) before
// it reaches the memtable, so the memtable can be reconstructed after a
// crash. The "file" is an in-memory byte log with leveldb-style record
// framing.
type WAL struct {
	buf []byte
}

// Record kinds in the log.
const (
	walPut    = 1
	walDelete = 2
)

// AppendPut logs a put.
func (w *WAL) AppendPut(key, value []byte, seq uint64) {
	w.append(walPut, key, value, seq)
}

// AppendDelete logs a delete.
func (w *WAL) AppendDelete(key []byte, seq uint64) {
	w.append(walDelete, key, nil, seq)
}

func (w *WAL) append(kind byte, key, value []byte, seq uint64) {
	var hdr [21]byte
	hdr[4] = kind
	binary.LittleEndian.PutUint64(hdr[5:], seq)
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[17:], uint32(len(value)))
	payload := append(append(append([]byte(nil), hdr[4:]...), key...), value...)
	binary.LittleEndian.PutUint32(hdr[:4], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, hdr[:4]...)
	w.buf = append(w.buf, payload...)
}

// Size reports the log size in bytes.
func (w *WAL) Size() int { return len(w.buf) }

// Reset truncates the log (after a successful memtable flush).
func (w *WAL) Reset() { w.buf = w.buf[:0] }

// Replay reconstructs a memtable from the log, returning the highest
// sequence number seen. A corrupt record stops replay with an error.
func (w *WAL) Replay(seed int64) (*Memtable, uint64, error) {
	m := NewMemtable(seed)
	var maxSeq uint64
	buf := w.buf
	off := 0
	for off < len(buf) {
		if off+21 > len(buf) {
			return nil, 0, fmt.Errorf("leveldb: truncated WAL header at %d", off)
		}
		crc := binary.LittleEndian.Uint32(buf[off:])
		kind := buf[off+4]
		seq := binary.LittleEndian.Uint64(buf[off+5:])
		klen := int(binary.LittleEndian.Uint32(buf[off+13:]))
		vlen := int(binary.LittleEndian.Uint32(buf[off+17:]))
		end := off + 21 + klen + vlen
		if end > len(buf) {
			return nil, 0, fmt.Errorf("leveldb: truncated WAL record at %d", off)
		}
		if crc32.ChecksumIEEE(buf[off+4:end]) != crc {
			return nil, 0, fmt.Errorf("leveldb: WAL checksum mismatch at %d", off)
		}
		key := buf[off+21 : off+21+klen]
		val := buf[off+21+klen : end]
		switch kind {
		case walPut:
			m.Set(key, val, seq)
		case walDelete:
			m.Delete(key, seq)
		default:
			return nil, 0, fmt.Errorf("leveldb: unknown WAL record kind %d", kind)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		off = end
	}
	return m, maxSeq, nil
}
