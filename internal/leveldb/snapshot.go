package leveldb

// Snapshot is a consistent read-only view of the database as of the moment
// it was taken: reads resolve against the pinned sequence number in the
// (versioned) memtable and against the table stack captured at snapshot
// time. Tables are immutable, so compactions after the snapshot cannot
// disturb it — exactly leveldb's snapshot mechanism.
type Snapshot struct {
	seq    uint64
	mem    *Memtable
	tables []*SSTable
}

// GetSnapshot pins the current state.
func (db *DB) GetSnapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	return &Snapshot{
		seq:    db.seq,
		mem:    db.mem,
		tables: append([]*SSTable(nil), db.tables...),
	}
}

// Seq reports the pinned sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Get resolves key as of the snapshot.
func (s *Snapshot) Get(key []byte) (value []byte, ok bool) {
	// The memtable pinned at snapshot time may have grown since; the
	// version filter hides everything past the pinned sequence.
	if v, deleted, found := s.mem.GetAtSeq(key, s.seq); found {
		if deleted {
			return nil, false
		}
		return v, true
	}
	for _, t := range s.tables {
		if v, deleted, found := t.Get(key); found {
			if deleted {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}
