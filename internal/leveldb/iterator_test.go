package leveldb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIteratorMergesNewestWins(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 10, MaxTables: 8, Seed: 1})
	db.Put([]byte("a"), []byte("old-a"))
	db.Put([]byte("b"), []byte("old-b"))
	db.Flush()
	db.Put([]byte("b"), []byte("new-b"))
	db.Put([]byte("c"), []byte("new-c"))

	it := db.NewIterator()
	var got []string
	for it.Next() {
		got = append(got, fmt.Sprintf("%s=%s", it.Key(), it.Value()))
	}
	want := []string{"a=old-a", "b=new-b", "c=new-c"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIteratorSkipsTombstones(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 10, MaxTables: 8, Seed: 2})
	db.Put([]byte("keep"), []byte("1"))
	db.Put([]byte("kill"), []byte("2"))
	db.Flush()
	db.Delete([]byte("kill"))
	it := db.NewIterator()
	count := 0
	for it.Next() {
		count++
		if string(it.Key()) == "kill" {
			t.Error("tombstoned key visible in iteration")
		}
	}
	if count != 1 {
		t.Errorf("iterated %d keys, want 1", count)
	}
}

func TestIteratorSeekAndRange(t *testing.T) {
	db := Open(Options{MemtableBytes: 512, MaxTables: 3, Seed: 3})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	it := db.NewIterator()
	it.Seek([]byte("k050"))
	if !it.Next() || string(it.Key()) != "k050" {
		t.Fatalf("seek landed on %q", it.Key())
	}
	// Seek to a nonexistent key lands on the next one.
	it.Seek([]byte("k0505"))
	if !it.Next() || string(it.Key()) != "k051" {
		t.Fatalf("seek past landed on %q", it.Key())
	}
	got := db.Range([]byte("k010"), []byte("k015"))
	if len(got) != 5 || string(got[0].Key) != "k010" || string(got[4].Key) != "k014" {
		t.Fatalf("range returned %d entries, first %q", len(got), got[0].Key)
	}
	if all := db.Range(nil, nil); len(all) != 100 {
		t.Fatalf("full range %d, want 100", len(all))
	}
}

// Property: iteration equals the sorted live contents of a model map, under
// random puts/deletes across flush and compaction boundaries.
func TestQuickIteratorMatchesModel(t *testing.T) {
	check := func(seed int64) bool {
		db := Open(Options{MemtableBytes: 768, MaxTables: 3, Seed: seed})
		model := map[string]string{}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 800; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(120))
			if rng.Intn(8) == 0 {
				db.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", i)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		it := db.NewIterator()
		for _, k := range keys {
			if !it.Next() {
				return false
			}
			if string(it.Key()) != k || string(it.Value()) != model[k] {
				return false
			}
		}
		return !it.Next()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
