package leveldb

// WriteBatch collects puts and deletes and applies them atomically under one
// lock acquisition and one sequence-number range — leveldb's WriteBatch,
// which is also how its write queue amortizes synchronization (the behavior
// the paper's leveldb workload stresses).
type WriteBatch struct {
	ops []batchOp
}

type batchOp struct {
	key, value []byte
	delete     bool
}

// Put queues key = value.
func (b *WriteBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
}

// Delete queues a tombstone for key.
func (b *WriteBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
}

// Len reports the number of queued operations.
func (b *WriteBatch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *WriteBatch) Reset() { b.ops = b.ops[:0] }

// Write applies the batch atomically: one lock hold, consecutive sequence
// numbers, WAL records for every operation before any memtable mutation.
func (db *DB) Write(b *WriteBatch) {
	if len(b.ops) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// Log first (write-ahead), then apply.
	seq := db.seq
	for _, op := range b.ops {
		seq++
		if op.delete {
			db.wal.AppendDelete(op.key, seq)
		} else {
			db.wal.AppendPut(op.key, op.value, seq)
		}
	}
	for _, op := range b.ops {
		db.seq++
		if op.delete {
			db.mem.Delete(op.key, db.seq)
			db.Deletes++
		} else {
			db.mem.Set(op.key, op.value, db.seq)
			db.Puts++
		}
	}
	db.maybeFlush()
}
