package leveldb

import (
	"fmt"
	"testing"
)

func TestSnapshotIsolatesFromLaterWrites(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 20, MaxTables: 4, Seed: 21})
	db.Put([]byte("k"), []byte("v1"))
	snap := db.GetSnapshot()
	db.Put([]byte("k"), []byte("v2"))
	db.Put([]byte("new"), []byte("x"))

	if v, ok := snap.Get([]byte("k")); !ok || string(v) != "v1" {
		t.Errorf("snapshot sees %q,%v, want v1", v, ok)
	}
	if _, ok := snap.Get([]byte("new")); ok {
		t.Error("snapshot must not see later inserts")
	}
	if v, _ := db.Get([]byte("k")); string(v) != "v2" {
		t.Error("live reads see the newest value")
	}
}

func TestSnapshotSeesDeletesOnlyAfterIt(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 20, MaxTables: 4, Seed: 22})
	db.Put([]byte("a"), []byte("1"))
	db.Delete([]byte("a"))
	snapAfterDelete := db.GetSnapshot()
	db.Put([]byte("a"), []byte("2"))

	if _, ok := snapAfterDelete.Get([]byte("a")); ok {
		t.Error("snapshot taken after the delete must miss")
	}
	if v, ok := db.Get([]byte("a")); !ok || string(v) != "2" {
		t.Error("live read should see the reinsert")
	}
}

func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 10, MaxTables: 2, Seed: 23})
	db.Put([]byte("pinned"), []byte("old"))
	snap := db.GetSnapshot()
	// Churn enough to flush and compact several times.
	for i := 0; i < 1500; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i%300)), []byte(fmt.Sprintf("val-%06d", i)))
	}
	db.Put([]byte("pinned"), []byte("new"))
	if db.Compactions == 0 {
		t.Fatal("test needs compactions to churn the table stack")
	}
	if v, ok := snap.Get([]byte("pinned")); !ok || string(v) != "old" {
		t.Errorf("snapshot lost its view across compaction: %q,%v", v, ok)
	}
	if v, _ := db.Get([]byte("pinned")); string(v) != "new" {
		t.Error("live view wrong")
	}
}

func TestSnapshotReadsThroughPinnedTables(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 20, MaxTables: 8, Seed: 24})
	db.Put([]byte("flushed"), []byte("f1"))
	db.Flush()
	snap := db.GetSnapshot()
	db.Put([]byte("flushed"), []byte("f2"))
	if v, ok := snap.Get([]byte("flushed")); !ok || string(v) != "f1" {
		t.Errorf("snapshot should read the pinned table: %q,%v", v, ok)
	}
}

func TestMemtableVersionHistory(t *testing.T) {
	m := NewMemtable(25)
	m.Set([]byte("k"), []byte("a"), 1)
	m.Set([]byte("k"), []byte("b"), 5)
	m.Delete([]byte("k"), 9)
	cases := []struct {
		seq     uint64
		found   bool
		deleted bool
		val     string
	}{
		{0, false, false, ""},
		{1, true, false, "a"},
		{4, true, false, "a"},
		{5, true, false, "b"},
		{8, true, false, "b"},
		{9, true, true, ""},
		{100, true, true, ""},
	}
	for _, c := range cases {
		v, deleted, found := m.GetAtSeq([]byte("k"), c.seq)
		if found != c.found || deleted != c.deleted || (found && !deleted && string(v) != c.val) {
			t.Errorf("GetAtSeq(%d) = %q,%v,%v want %q,%v,%v", c.seq, v, deleted, found, c.val, c.deleted, c.found)
		}
	}
}
