package leveldb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemtableSetGetDelete(t *testing.T) {
	m := NewMemtable(1)
	if _, ok := m.Get([]byte("a")); ok {
		t.Fatal("empty table should miss")
	}
	m.Set([]byte("a"), []byte("1"), 1)
	m.Set([]byte("b"), []byte("2"), 2)
	if v, ok := m.Get([]byte("a")); !ok || string(v) != "1" {
		t.Errorf("get a = %q,%v", v, ok)
	}
	m.Set([]byte("a"), []byte("3"), 3)
	if v, _ := m.Get([]byte("a")); string(v) != "3" {
		t.Error("overwrite should win")
	}
	m.Delete([]byte("a"), 4)
	if _, ok := m.Get([]byte("a")); ok {
		t.Error("deleted key should miss")
	}
	es := m.Entries()
	if len(es) != 2 || string(es[0].Key) != "a" || string(es[1].Key) != "b" {
		t.Errorf("entries order: %v", es)
	}
	if !es[0].Deleted {
		t.Error("tombstone should survive in entries")
	}
}

func TestMemtableOrdering(t *testing.T) {
	m := NewMemtable(2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", rng.Intn(300)))
		m.Set(k, []byte{byte(i)}, uint64(i))
	}
	es := m.Entries()
	for i := 1; i < len(es); i++ {
		if bytes.Compare(es[i-1].Key, es[i].Key) >= 0 {
			t.Fatalf("entries out of order at %d: %q >= %q", i, es[i-1].Key, es[i].Key)
		}
	}
}

func TestWALReplayReproducesMemtable(t *testing.T) {
	var w WAL
	m := NewMemtable(3)
	rng := rand.New(rand.NewSource(11))
	for seq := uint64(1); seq <= 300; seq++ {
		k := []byte(fmt.Sprintf("k%03d", rng.Intn(100)))
		if rng.Intn(5) == 0 {
			w.AppendDelete(k, seq)
			m.Delete(k, seq)
		} else {
			v := []byte(fmt.Sprintf("v%d", seq))
			w.AppendPut(k, v, seq)
			m.Set(k, v, seq)
		}
	}
	got, maxSeq, err := w.Replay(3)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 300 {
		t.Errorf("maxSeq %d, want 300", maxSeq)
	}
	ge, we := got.Entries(), m.Entries()
	if len(ge) != len(we) {
		t.Fatalf("replayed %d entries, want %d", len(ge), len(we))
	}
	for i := range ge {
		if !bytes.Equal(ge[i].Key, we[i].Key) || !bytes.Equal(ge[i].Value, we[i].Value) ||
			ge[i].Deleted != we[i].Deleted || ge[i].Seq != we[i].Seq {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, ge[i], we[i])
		}
	}
}

func TestWALDetectsCorruption(t *testing.T) {
	var w WAL
	w.AppendPut([]byte("k"), []byte("v"), 1)
	w.buf[6] ^= 0xff // flip a payload byte
	if _, _, err := w.Replay(1); err == nil {
		t.Fatal("corrupt WAL must fail replay")
	}
}

func TestSSTableGet(t *testing.T) {
	m := NewMemtable(4)
	for i := 0; i < 200; i++ {
		m.Set([]byte(fmt.Sprintf("key-%04d", i*2)), []byte(fmt.Sprintf("val-%d", i)), uint64(i+1))
	}
	tbl := BuildSSTable(m.Entries())
	if tbl.Len() != 200 {
		t.Fatalf("len %d", tbl.Len())
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i*2))
		v, deleted, found := tbl.Get(k)
		if !found || deleted || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %q: %q %v %v", k, v, deleted, found)
		}
	}
	// Misses: between keys, before first, after last.
	for _, k := range []string{"key-0001", "a", "zzz"} {
		if _, _, found := tbl.Get([]byte(k)); found {
			t.Errorf("unexpected hit for %q", k)
		}
	}
}

func TestMergeTablesNewerWinsAndDropsTombstones(t *testing.T) {
	old := BuildSSTable([]Entry{
		{Key: []byte("a"), Value: []byte("old-a"), Seq: 1},
		{Key: []byte("b"), Value: []byte("old-b"), Seq: 2},
		{Key: []byte("c"), Value: []byte("old-c"), Seq: 3},
	})
	new_ := BuildSSTable([]Entry{
		{Key: []byte("b"), Value: []byte("new-b"), Seq: 5},
		{Key: []byte("c"), Deleted: true, Seq: 6},
		{Key: []byte("d"), Value: []byte("new-d"), Seq: 7},
	})
	merged := MergeTables(new_, old, true)
	want := map[string]string{"a": "old-a", "b": "new-b", "d": "new-d"}
	if merged.Len() != len(want) {
		t.Fatalf("merged %d entries, want %d", merged.Len(), len(want))
	}
	for k, v := range want {
		got, deleted, found := merged.Get([]byte(k))
		if !found || deleted || string(got) != v {
			t.Errorf("merged[%s] = %q,%v,%v want %q", k, got, deleted, found, v)
		}
	}
	if _, _, found := merged.Get([]byte("c")); found {
		t.Error("tombstoned key must be gone after full compaction")
	}
}

func TestDBFlushAndCompaction(t *testing.T) {
	db := Open(Options{MemtableBytes: 2 << 10, MaxTables: 2, Seed: 5})
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i%500)), []byte(fmt.Sprintf("value-%06d", i)))
	}
	if db.Flushes == 0 {
		t.Error("expected flushes")
	}
	if db.Compactions == 0 {
		t.Error("expected compactions")
	}
	if db.Tables() > 2 {
		t.Errorf("table stack %d exceeds max", db.Tables())
	}
	// Every key's newest value must win across memtable + tables.
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%05d", i)
		want := fmt.Sprintf("value-%06d", 1500+i)
		if v, ok := db.Get([]byte(k)); !ok || string(v) != want {
			t.Fatalf("get %s = %q,%v want %q", k, v, ok, want)
		}
	}
}

func TestDBDeleteAcrossFlush(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 10, MaxTables: 8, Seed: 6})
	db.Put([]byte("stay"), []byte("1"))
	db.Put([]byte("gone"), []byte("2"))
	db.Flush()
	db.Delete([]byte("gone"))
	db.Flush()
	if _, ok := db.Get([]byte("gone")); ok {
		t.Error("tombstone in newer table must shadow older value")
	}
	if v, ok := db.Get([]byte("stay")); !ok || string(v) != "1" {
		t.Error("unrelated key lost")
	}
}

func TestDBRecoverFromWAL(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 20, MaxTables: 4, Seed: 7})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i%20)), []byte(fmt.Sprintf("v%d", i)))
	}
	rec, err := db.RecoverFromWAL()
	if err != nil {
		t.Fatal(err)
	}
	re, me := rec.Entries(), db.mem.Entries()
	if len(re) != len(me) {
		t.Fatalf("recovered %d entries, want %d", len(re), len(me))
	}
	for i := range re {
		if !bytes.Equal(re[i].Key, me[i].Key) || !bytes.Equal(re[i].Value, me[i].Value) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

// Property: the DB agrees with a model map under random puts, deletes and
// gets, across flushes and compactions.
func TestQuickDBMatchesModel(t *testing.T) {
	check := func(seed int64) bool {
		db := Open(Options{MemtableBytes: 1 << 10, MaxTables: 3, Seed: seed})
		model := map[string]string{}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1500; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(150))
			switch rng.Intn(10) {
			case 0:
				db.Delete([]byte(k))
				delete(model, k)
			default:
				v := fmt.Sprintf("val-%d", i)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			}
			if rng.Intn(8) == 0 {
				got, ok := db.Get([]byte(k))
				want, wok := model[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		for k, want := range model {
			got, ok := db.Get([]byte(k))
			if !ok || string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
