package leveldb

import (
	"fmt"
	"sync"
)

// Options tunes a DB.
type Options struct {
	// MemtableBytes triggers a flush to an SSTable when exceeded.
	MemtableBytes int
	// MaxTables triggers compaction (newest two tables merge) when the
	// table stack grows past it.
	MaxTables int
	// Seed drives the skiplist's deterministic level choice.
	Seed int64
}

// DefaultOptions mirror a scaled-down leveldb 1.20.
func DefaultOptions() Options {
	return Options{MemtableBytes: 64 << 10, MaxTables: 4, Seed: 1}
}

// DB is the key-value store: a mutable memtable over a stack of immutable
// SSTables (newest first), with a write-ahead log for the memtable.
type DB struct {
	opt Options

	mu     sync.Mutex
	mem    *Memtable
	wal    WAL
	tables []*SSTable // newest first
	seq    uint64

	// Stats.
	Flushes     int
	Compactions int
	Puts        uint64
	Gets        uint64
	Deletes     uint64
}

// Open creates an empty DB.
func Open(opt Options) *DB {
	if opt.MemtableBytes <= 0 {
		opt.MemtableBytes = DefaultOptions().MemtableBytes
	}
	if opt.MaxTables <= 0 {
		opt.MaxTables = DefaultOptions().MaxTables
	}
	return &DB{opt: opt, mem: NewMemtable(opt.Seed)}
}

// Put stores key = value.
func (db *DB) Put(key, value []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.seq++
	db.wal.AppendPut(key, value, db.seq)
	db.mem.Set(key, value, db.seq)
	db.Puts++
	db.maybeFlush()
}

// Delete removes key.
func (db *DB) Delete(key []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.seq++
	db.wal.AppendDelete(key, db.seq)
	db.mem.Delete(key, db.seq)
	db.Deletes++
	db.maybeFlush()
}

// Get returns the newest value for key.
func (db *DB) Get(key []byte) (value []byte, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.Gets++
	x := db.mem.findGreaterOrEqual(key, nil)
	if x != nil && string(x.key) == string(key) {
		v := x.latest()
		if v.deleted {
			return nil, false
		}
		return v.value, true
	}
	for _, t := range db.tables {
		if v, deleted, found := t.Get(key); found {
			if deleted {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}

// Seq returns the current sequence number.
func (db *DB) Seq() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.seq
}

// Tables reports the SSTable stack depth.
func (db *DB) Tables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables)
}

func (db *DB) maybeFlush() {
	if db.mem.Bytes() < db.opt.MemtableBytes {
		return
	}
	db.flushLocked()
	for len(db.tables) > db.opt.MaxTables {
		// Merge the two oldest tables; tombstones drop only at the bottom
		// of the stack.
		n := len(db.tables)
		merged := MergeTables(db.tables[n-2], db.tables[n-1], true)
		db.tables = append(db.tables[:n-2], merged)
		db.Compactions++
	}
}

func (db *DB) flushLocked() {
	entries := db.mem.Entries()
	if len(entries) == 0 {
		return
	}
	db.tables = append([]*SSTable{BuildSSTable(entries)}, db.tables...)
	db.mem = NewMemtable(db.opt.Seed + int64(db.Flushes) + 1)
	db.wal.Reset()
	db.Flushes++
}

// Flush forces the memtable to an SSTable (test/shutdown use).
func (db *DB) Flush() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.flushLocked()
}

// RecoverFromWAL rebuilds the memtable from the write-ahead log, as crash
// recovery would, and verifies it matches the live memtable (test use).
func (db *DB) RecoverFromWAL() (*Memtable, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, maxSeq, err := db.wal.Replay(db.opt.Seed)
	if err != nil {
		return nil, err
	}
	if maxSeq > db.seq {
		return nil, fmt.Errorf("leveldb: WAL seq %d ahead of DB seq %d", maxSeq, db.seq)
	}
	return m, nil
}
