package leveldb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// SSTable is an immutable sorted table: a flat block of length-prefixed
// entries plus a sparse index for binary search, built from a memtable
// flush or a compaction merge.
type SSTable struct {
	data  []byte
	index []indexEntry // one per indexStride entries
	count int
	first []byte
	last  []byte
}

type indexEntry struct {
	key []byte
	off int
}

const indexStride = 16

// BuildSSTable serializes entries (which must be in key order) into a table.
func BuildSSTable(entries []Entry) *SSTable {
	t := &SSTable{}
	for i, e := range entries {
		if i > 0 && bytes.Compare(entries[i-1].Key, e.Key) >= 0 {
			panic("leveldb: entries out of order in BuildSSTable")
		}
		if i%indexStride == 0 {
			t.index = append(t.index, indexEntry{key: append([]byte(nil), e.Key...), off: len(t.data)})
		}
		t.data = appendEntry(t.data, e)
		t.count++
	}
	if len(entries) > 0 {
		t.first = append([]byte(nil), entries[0].Key...)
		t.last = append([]byte(nil), entries[len(entries)-1].Key...)
	}
	return t
}

func appendEntry(b []byte, e Entry) []byte {
	var hdr [17]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(e.Key)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(e.Value)))
	binary.LittleEndian.PutUint64(hdr[8:], e.Seq)
	if e.Deleted {
		hdr[16] = 1
	}
	b = append(b, hdr[:]...)
	b = append(b, e.Key...)
	b = append(b, e.Value...)
	return b
}

func readEntry(b []byte, off int) (Entry, int, error) {
	if off+17 > len(b) {
		return Entry{}, 0, fmt.Errorf("leveldb: truncated sstable entry at %d", off)
	}
	klen := int(binary.LittleEndian.Uint32(b[off:]))
	vlen := int(binary.LittleEndian.Uint32(b[off+4:]))
	seq := binary.LittleEndian.Uint64(b[off+8:])
	deleted := b[off+16] == 1
	end := off + 17 + klen + vlen
	if end > len(b) {
		return Entry{}, 0, fmt.Errorf("leveldb: truncated sstable payload at %d", off)
	}
	return Entry{
		Key:     b[off+17 : off+17+klen],
		Value:   b[off+17+klen : end],
		Seq:     seq,
		Deleted: deleted,
	}, end, nil
}

// Len reports the number of entries (including tombstones).
func (t *SSTable) Len() int { return t.count }

// SizeBytes reports the serialized size.
func (t *SSTable) SizeBytes() int { return len(t.data) }

// Get finds key in the table. found reports presence (possibly a tombstone,
// signalled by deleted).
func (t *SSTable) Get(key []byte) (value []byte, deleted, found bool) {
	if t.count == 0 || bytes.Compare(key, t.first) < 0 || bytes.Compare(key, t.last) > 0 {
		return nil, false, false
	}
	// Binary search the sparse index for the last block start <= key.
	i := sort.Search(len(t.index), func(i int) bool { return bytes.Compare(t.index[i].key, key) > 0 })
	if i == 0 {
		return nil, false, false
	}
	off := t.index[i-1].off
	for n := 0; n < indexStride && off < len(t.data); n++ {
		e, next, err := readEntry(t.data, off)
		if err != nil {
			panic(err)
		}
		switch bytes.Compare(e.Key, key) {
		case 0:
			return e.Value, e.Deleted, true
		case 1:
			return nil, false, false
		}
		off = next
	}
	return nil, false, false
}

// Entries decodes the full table in key order.
func (t *SSTable) Entries() []Entry {
	var out []Entry
	off := 0
	for off < len(t.data) {
		e, next, err := readEntry(t.data, off)
		if err != nil {
			panic(err)
		}
		out = append(out, e)
		off = next
	}
	return out
}

// MergeTables compacts newer over older: for duplicate keys the newer entry
// wins. dropTombstones must be true only when older is the oldest table in
// the stack — dropping a tombstone while a deeper table still holds the key
// would resurrect it.
func MergeTables(newer, older *SSTable, dropTombstones bool) *SSTable {
	a, b := newer.Entries(), older.Entries()
	var out []Entry
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var e Entry
		switch {
		case i >= len(a):
			e = b[j]
			j++
		case j >= len(b):
			e = a[i]
			i++
		default:
			switch bytes.Compare(a[i].Key, b[j].Key) {
			case -1:
				e = a[i]
				i++
			case 1:
				e = b[j]
				j++
			default:
				e = a[i] // newer wins
				i++
				j++
			}
		}
		if e.Deleted && dropTombstones {
			continue
		}
		out = append(out, e)
	}
	return BuildSSTable(out)
}
