package leveldb

import (
	"fmt"
	"testing"
)

func TestWriteBatchAppliesAtomically(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 20, MaxTables: 4, Seed: 9})
	db.Put([]byte("gone"), []byte("x"))

	var b WriteBatch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("gone"))
	if b.Len() != 3 {
		t.Fatalf("batch len %d", b.Len())
	}
	seqBefore := db.Seq()
	db.Write(&b)
	if db.Seq() != seqBefore+3 {
		t.Errorf("batch should consume 3 sequence numbers: %d -> %d", seqBefore, db.Seq())
	}
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		if v, ok := db.Get([]byte(k)); !ok || string(v) != want {
			t.Errorf("get %s = %q,%v", k, v, ok)
		}
	}
	if _, ok := db.Get([]byte("gone")); ok {
		t.Error("batched delete did not apply")
	}
}

func TestWriteBatchWALRecovery(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 20, MaxTables: 4, Seed: 10})
	var b WriteBatch
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Write(&b)
	rec, err := db.RecoverFromWAL()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 50 {
		t.Errorf("recovered %d entries, want 50", rec.Len())
	}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if v, ok := rec.Get(k); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered %s = %q,%v", k, v, ok)
		}
	}
}

func TestWriteBatchResetAndEmpty(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 20, MaxTables: 4, Seed: 11})
	var b WriteBatch
	db.Write(&b) // empty: no-op
	if db.Seq() != 0 {
		t.Error("empty batch must not consume sequence numbers")
	}
	b.Put([]byte("x"), []byte("1"))
	b.Reset()
	if b.Len() != 0 {
		t.Error("reset should clear the batch")
	}
	db.Write(&b)
	if _, ok := db.Get([]byte("x")); ok {
		t.Error("reset batch must not apply")
	}
}

func TestWriteBatchTriggersFlush(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 10, MaxTables: 4, Seed: 12})
	var b WriteBatch
	for i := 0; i < 200; i++ {
		b.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("0123456789abcdef"))
	}
	db.Write(&b)
	if db.Flushes == 0 {
		t.Error("a large batch should flush the memtable")
	}
	if v, ok := db.Get([]byte("key-0199")); !ok || string(v) != "0123456789abcdef" {
		t.Error("data lost across batch-triggered flush")
	}
}
