package leveldb

import (
	"bytes"
	"sort"
)

// Iterator walks the merged view of the memtable and every SSTable in key
// order, newest value winning per key, tombstones suppressed — leveldb's
// DBIter over a merging iterator.
type Iterator struct {
	entries []Entry
	pos     int
}

// NewIterator snapshots the database and returns an iterator positioned
// before the first key.
func (db *DB) NewIterator() *Iterator {
	db.mu.Lock()
	defer db.mu.Unlock()
	// Sources, newest first: memtable, then tables.
	sources := make([][]Entry, 0, len(db.tables)+1)
	sources = append(sources, db.mem.Entries())
	for _, t := range db.tables {
		sources = append(sources, t.Entries())
	}
	merged := mergeSources(sources)
	return &Iterator{entries: merged, pos: -1}
}

// mergeSources merges key-ordered entry lists; earlier sources are newer
// and win on key collisions. Tombstones are dropped from the merged view.
func mergeSources(sources [][]Entry) []Entry {
	type cursor struct {
		src int
		idx int
	}
	var out []Entry
	cursors := make([]cursor, len(sources))
	for i := range cursors {
		cursors[i] = cursor{src: i}
	}
	for {
		// Find the smallest key across cursors; ties resolve to the newest
		// (lowest source index).
		best := -1
		var bestKey []byte
		for i, c := range cursors {
			if c.idx >= len(sources[i]) {
				continue
			}
			k := sources[i][c.idx].Key
			if best == -1 || bytes.Compare(k, bestKey) < 0 {
				best = i
				bestKey = k
			}
		}
		if best == -1 {
			return out
		}
		e := sources[best][cursors[best].idx]
		// Advance every cursor sitting on this key (the older ones lose).
		for i := range cursors {
			for cursors[i].idx < len(sources[i]) && bytes.Equal(sources[i][cursors[i].idx].Key, bestKey) {
				cursors[i].idx++
			}
		}
		if !e.Deleted {
			out = append(out, e)
		}
	}
}

// Next advances to the next key; it returns false when exhausted.
func (it *Iterator) Next() bool {
	it.pos++
	return it.pos < len(it.entries)
}

// Seek positions the iterator at the first key >= target; the next call to
// Next() lands on it.
func (it *Iterator) Seek(target []byte) {
	it.pos = sort.Search(len(it.entries), func(i int) bool {
		return bytes.Compare(it.entries[i].Key, target) >= 0
	}) - 1
}

// Key returns the current key (valid after Next returned true).
func (it *Iterator) Key() []byte { return it.entries[it.pos].Key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.entries[it.pos].Value }

// Range returns all live key-value pairs in [lo, hi) in key order.
func (db *DB) Range(lo, hi []byte) []Entry {
	it := db.NewIterator()
	it.Seek(lo)
	var out []Entry
	for it.Next() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			break
		}
		out = append(out, Entry{Key: it.Key(), Value: it.Value()})
	}
	return out
}
