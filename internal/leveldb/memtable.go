// Package leveldb is a miniature log-structured-merge key-value store in
// the style of Google's leveldb 1.20, the real-world workload of the paper's
// evaluation: an in-memory memtable (skiplist) in front of a write-ahead log,
// flushed to sorted string tables (SSTables) and compacted by merging.
//
// The store is the substrate for the `leveldb` workload: its data plane runs
// natively while its hot shared state (per-thread operation counters — the
// paper's injected false-sharing bug — and the sequence number) lives in
// simulated memory under TMI.
package leveldb

import (
	"bytes"
	"math/rand"
)

const maxHeight = 12

type node struct {
	key []byte
	// versions holds the key's history in sequence order (newest last),
	// so snapshot reads can resolve any pinned sequence number.
	versions []version
	next     [maxHeight]*node
}

type version struct {
	value   []byte
	seq     uint64
	deleted bool
}

func (n *node) latest() version { return n.versions[len(n.versions)-1] }

// Memtable is a skiplist-ordered in-memory table, single-writer (callers
// serialize writes, as leveldb's write queue does).
type Memtable struct {
	head   *node
	height int
	rng    *rand.Rand
	bytes  int
	count  int
}

// NewMemtable returns an empty memtable with deterministic level choice.
func NewMemtable(seed int64) *Memtable {
	return &Memtable{head: &node{}, height: 1, rng: rand.New(rand.NewSource(seed))}
}

// Bytes reports the approximate payload size.
func (m *Memtable) Bytes() int { return m.bytes }

// Len reports the number of entries (including tombstones).
func (m *Memtable) Len() int { return m.count }

func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, filling prev
// with the predecessors at each level.
func (m *Memtable) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Set inserts or overwrites key with value at sequence seq.
func (m *Memtable) Set(key, value []byte, seq uint64) {
	m.set(key, value, seq, false)
}

// Delete writes a tombstone for key.
func (m *Memtable) Delete(key []byte, seq uint64) {
	m.set(key, nil, seq, true)
}

func (m *Memtable) set(key, value []byte, seq uint64, deleted bool) {
	v := version{value: append([]byte(nil), value...), seq: seq, deleted: deleted}
	var prev [maxHeight]*node
	x := m.findGreaterOrEqual(key, &prev)
	if x != nil && bytes.Equal(x.key, key) {
		x.versions = append(x.versions, v)
		m.bytes += len(value) + 16
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := &node{key: append([]byte(nil), key...), versions: []version{v}}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	m.bytes += len(key) + len(value) + 16
	m.count++
}

// Get returns the newest value for key. ok is false if the key is absent
// or deleted.
func (m *Memtable) Get(key []byte) (value []byte, ok bool) {
	x := m.findGreaterOrEqual(key, nil)
	if x == nil || !bytes.Equal(x.key, key) {
		return nil, false
	}
	v := x.latest()
	if v.deleted {
		return nil, false
	}
	return v.value, true
}

// GetAtSeq resolves key as of sequence number seq: the newest version with
// version.seq <= seq. found reports whether any such version exists (its
// deleted flag still applies).
func (m *Memtable) GetAtSeq(key []byte, seq uint64) (value []byte, deleted, found bool) {
	x := m.findGreaterOrEqual(key, nil)
	if x == nil || !bytes.Equal(x.key, key) {
		return nil, false, false
	}
	for i := len(x.versions) - 1; i >= 0; i-- {
		if x.versions[i].seq <= seq {
			v := x.versions[i]
			return v.value, v.deleted, true
		}
	}
	return nil, false, false
}

// Entry is one key-value record with its sequence number.
type Entry struct {
	Key, Value []byte
	Seq        uint64
	Deleted    bool
}

// Entries returns the table's contents in key order, newest version per
// key (what a flush serializes).
func (m *Memtable) Entries() []Entry {
	var out []Entry
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		v := x.latest()
		out = append(out, Entry{Key: x.key, Value: v.value, Seq: v.seq, Deleted: v.deleted})
	}
	return out
}
