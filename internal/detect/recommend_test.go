package detect

import "testing"

func line(addr uint64, rate float64) LineReport {
	return LineReport{Line: addr, Class: SharingFalse, EstEventsPerSec: rate}
}

func TestRecommendBackendPolicies(t *testing.T) {
	flagged := []LineReport{line(0x1000, 1e6), line(0x1040, 1e6), line(0x1080, 1e6)}
	tests := []struct {
		name   string
		policy string
		lines  []LineReport
		want   string
	}{
		{"off-empty", "", flagged, ""},
		{"off-none", "none", flagged, ""},
		{"fixed-t2p", "t2p", flagged, "t2p"},
		{"fixed-pad", "pad", nil, "pad"}, // fixed policies ignore the lines
		{"fixed-tmebox", "tmebox", flagged, "tmebox"},
		{"unknown", "voodoo", flagged, ""},
		{"auto-nothing-flagged", "auto", nil, ""},
		// One or two lines: realloc-and-pad fixes the layout outright.
		{"auto-few-lines", "auto", []LineReport{line(0x1000, 1e6), line(0x1040, 1e6)}, "pad"},
		// Many distinct pages: cheap per-thread domains win.
		{"auto-many-pages", "auto",
			[]LineReport{line(0x1000, 1e5), line(0x2000, 1e5), line(0x3000, 1e5)}, "tmebox"},
		// Very hot line: the full T2P conversion pays for itself.
		{"auto-hot", "auto",
			[]LineReport{line(0x1000, 6e6), line(0x1040, 1e5), line(0x1080, 1e5)}, "t2p"},
		// Moderate multi-line contention on few pages: migrate the threads.
		{"auto-moderate", "auto", flagged, "map"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := RecommendBackend(tc.policy, 4096, tc.lines); got != tc.want {
				t.Errorf("RecommendBackend(%q) = %q, want %q", tc.policy, got, tc.want)
			}
		})
	}
}

func TestRecommendBackendIsDeterministic(t *testing.T) {
	flagged := []LineReport{line(0x3000, 1e5), line(0x1000, 1e5), line(0x2000, 1e5)}
	first := RecommendBackend("auto", 4096, flagged)
	for i := 0; i < 10; i++ {
		if got := RecommendBackend("auto", 4096, flagged); got != first {
			t.Fatalf("recommendation flapped: %q then %q", first, got)
		}
	}
}

func TestValidRecommendPolicy(t *testing.T) {
	for _, ok := range []string{"", "none", "auto", "t2p", "pad", "map", "tmebox"} {
		if !ValidRecommendPolicy(ok) {
			t.Errorf("policy %q rejected", ok)
		}
	}
	if ValidRecommendPolicy("voodoo") {
		t.Error("unknown policy accepted")
	}
}
