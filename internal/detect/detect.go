// Package detect implements TMI's false sharing detector (paper §3.1): a
// per-application detection thread that drains the perf HITM sample buffers
// once per second, filters samples through the process address map (heap and
// globals only), recovers each sample's access kind and width by
// disassembling its PC, aggregates samples per cache line, scales counts by
// the sampling period (a period of n with r records is estimated as n*r
// events), classifies each hot line as true or false sharing, and requests
// repair for pages whose false-sharing rate crosses the threshold.
//
// Per-line window state lives in PageID-indexed stat pages: sample ingest is
// a radix lookup plus slice indexes, with no hashing and no steady-state
// allocation. Windows are reset by bumping an epoch counter instead of
// reallocating; a page's stats are generation-stamped so a remap elsewhere
// implicitly discards them rather than mixing spans from two different
// mappings of the same virtual page. Sampled addresses that fall outside
// every interned page (PEBS skid past a mapping's edge) go through a small
// fallback map so no record is ever lost to the fast path.
package detect

import (
	"sort"

	"repro/internal/disasm"
	"repro/internal/sim/cache"
	"repro/internal/sim/intern"
	"repro/internal/sim/osim"
	"repro/internal/sim/pebs"
)

// Ingestor supplies the detector's record stream: what perfev.Monitor
// provides in an embedded run, and what a replayed or network-fed source
// provides when no live machine exists. DrainInto appends all pending
// records to dst and returns the extended slice, so a caller-owned scratch
// buffer keeps the per-tick drain allocation-free.
type Ingestor interface {
	DrainInto(dst []pebs.Record) []pebs.Record
	Period() int
}

// Sample is one resolved record: the data address plus the access geometry
// recovered from disassembly, or carried pre-resolved on the wire in the
// tmid service path (where the server has no disassembler or address map).
type Sample struct {
	TID   int
	Addr  uint64
	Width int
	Write bool
}

// Tap observes the detector's accepted sample stream and window boundaries.
// It is the capture hook behind replayable HITM traces (trace.SampleLog):
// everything a Tap sees is exactly what a fresh detector needs to reproduce
// this detector's advice, window by window.
type Tap interface {
	TapSample(s Sample)
	TapWindow(intervalSec float64, period int)
}

// Config tunes the detector.
type Config struct {
	// ThresholdPerSec is the estimated HITM events/second on one line above
	// which false sharing is repaired (the paper repairs structures
	// producing >100k events/s).
	ThresholdPerSec float64
	// MinRecords is the minimum raw records on a line before judging it.
	MinRecords int
}

// DefaultConfig matches the paper's operating point.
func DefaultConfig() Config {
	return Config{ThresholdPerSec: 100_000, MinRecords: 8}
}

// span is an exact byte interval [Lo, Hi) a thread touched within a line,
// with the number of samples that produced it. Spans are kept exact (not
// widened) and classification is count-weighted, because PEBS data
// addresses occasionally skid: a single skidded record must not be able to
// flip a heavily false-shared line to "true sharing".
type span struct {
	Lo, Hi int
	Wrote  bool
	Count  int
}

// maxSpansPerThread caps the distinct spans tracked per (line, thread).
// Past the cap, new spans are merged into the nearest same-kind span
// (widening it) rather than discarded: a line with many distinct offsets
// must keep contributing to classification. Only when no same-kind span
// exists is the record's span dropped, and that is counted.
const maxSpansPerThread = 24

type lineStat struct {
	records      int
	writeRecords int
	// dropped counts records whose span could not be tracked or merged;
	// surfaced per line (LineReport.DroppedSpans) and cumulatively
	// (Detector.DroppedSpans) so overflow can never silently skew a
	// classification.
	dropped int
	// epoch marks the analysis window these counters belong to; a stat
	// touched in an older window resets lazily instead of being reallocated.
	epoch uint32
	// threads holds each thread's spans, indexed by tid; tids lists the
	// threads present, in first-touch order, so reset and iteration never
	// scan the full slice.
	threads [][]span
	tids    []int
}

// reset clears the window counters, keeping the span slices' capacity.
func (ls *lineStat) reset() {
	ls.records, ls.writeRecords, ls.dropped = 0, 0, 0
	for _, tid := range ls.tids {
		ls.threads[tid] = ls.threads[tid][:0]
	}
	ls.tids = ls.tids[:0]
}

// spansOf returns tid's spans (nil if the thread never touched the line).
func (ls *lineStat) spansOf(tid int) []span {
	if tid < len(ls.threads) {
		return ls.threads[tid]
	}
	return nil
}

func (ls *lineStat) add(tid, lo, hi int, wrote bool) {
	for len(ls.threads) <= tid {
		ls.threads = append(ls.threads, nil)
	}
	spans := ls.threads[tid]
	for i, s := range spans {
		if s.Lo == lo && s.Hi == hi && s.Wrote == wrote {
			spans[i].Count++
			return
		}
	}
	if len(spans) == 0 {
		ls.tids = append(ls.tids, tid)
	}
	if len(spans) < maxSpansPerThread {
		ls.threads[tid] = append(spans, span{lo, hi, wrote, 1})
		return
	}
	// Overflow: merge into the closest span of the same access kind,
	// widening its byte interval. Widening can only add overlap weight the
	// exact spans would also have contributed had there been room.
	best, bestGap := -1, int(^uint(0)>>1)
	for i, s := range spans {
		if s.Wrote != wrote {
			continue
		}
		gap := 0
		switch {
		case lo > s.Hi:
			gap = lo - s.Hi
		case s.Lo > hi:
			gap = s.Lo - hi
		}
		if gap < bestGap {
			best, bestGap = i, gap
		}
	}
	if best < 0 {
		ls.dropped++
		return
	}
	if lo < spans[best].Lo {
		spans[best].Lo = lo
	}
	if hi > spans[best].Hi {
		spans[best].Hi = hi
	}
	spans[best].Count++
}

// Sharing classifies a hot line.
type Sharing int

// Sharing classes.
const (
	SharingNone Sharing = iota
	SharingTrue
	SharingFalse
)

func (s Sharing) String() string {
	switch s {
	case SharingTrue:
		return "true"
	case SharingFalse:
		return "false"
	}
	return "none"
}

// LineReport describes one analyzed cache line.
type LineReport struct {
	Line    uint64 // line-aligned virtual address
	Class   Sharing
	Records int
	// EstEventsPerSec is records * period / interval.
	EstEventsPerSec float64
	// DroppedSpans counts records whose byte span the aggregator could
	// neither track nor merge in this line's hottest window; non-zero means
	// the classification ran on incomplete span data.
	DroppedSpans int
}

// Request asks the repair engine to protect a set of pages.
type Request struct {
	Pages []uint64 // page-aligned virtual addresses
	Lines []LineReport
}

// linesPerChunk sizes the lazily allocated blocks of a stat page: 64 lines
// = one 4 KiB page's worth, so small pages allocate exactly one chunk and
// huge pages allocate only the chunks their hot lines live in.
const linesPerChunk = 64

type statChunk [linesPerChunk]lineStat

// statPage holds one interned page's per-line window stats, stamped with
// the page generation they were built against.
type statPage struct {
	gen    uint32
	chunks []*statChunk
}

// touchedLine records one line with samples in the current window, in
// first-sample order — the deterministic iteration order for analysis.
type touchedLine struct {
	line uint64
	ls   *lineStat
}

// Detector is the per-application detection thread's state.
type Detector struct {
	cfg  Config
	src  Ingestor
	prog *disasm.Program
	maps *osim.AddressMap
	tab  *intern.Table
	tap  Tap

	// drain is the scratch buffer Tick reuses for the per-window record
	// drain (no per-tick allocation once it reaches steady-state capacity).
	drain []pebs.Record

	// Window state: PageID-indexed stat pages, the touched-line list, and
	// the epoch that lazily invalidates stats from previous windows.
	pages    []*statPage
	fallback map[uint64]*lineStat // samples outside every interned page
	touched  []touchedLine
	epoch    uint32

	pageSize uint64

	// Cumulative results for reporting.
	TotalRecords    uint64
	FilteredRecords uint64
	TrueLines       map[uint64]bool
	FalseLines      map[uint64]bool
	TrueRecords     uint64
	FalseRecords    uint64
	// FalseWriteRecords is the store-triggered subset of FalseRecords;
	// stores under-report (pebs.StoreCaptureRate), which the speedup
	// prediction corrects for.
	FalseWriteRecords uint64
	// DroppedSpans counts, across all windows and lines, records whose byte
	// span overflowed the per-thread tracker and could not be merged.
	DroppedSpans uint64
	// Lines holds, per classified line, the report from its hottest window
	// (capped; for the tmidetect tool and tests).
	Lines map[uint64]LineReport

	// archive folds every window's span data for the prediction analyses
	// (predict.go); capped like Lines.
	archive map[uint64]*lineStat
}

// New creates a detector. src is the record source (a *perfev.Monitor in
// embedded runs); nil is allowed when the caller only uses the direct
// Ingest/Analyze path. tab is the run's page interning table; nil is
// allowed (all samples then aggregate through the fallback map, e.g. in
// unit tests without a simulated memory).
func New(cfg Config, src Ingestor, prog *disasm.Program, maps *osim.AddressMap, tab *intern.Table, pageSize int) *Detector {
	return &Detector{
		cfg: cfg, src: src, prog: prog, maps: maps, tab: tab,
		epoch:      1, // zero-valued lineStats must read as "stale window"
		pageSize:   uint64(pageSize),
		TrueLines:  make(map[uint64]bool),
		FalseLines: make(map[uint64]bool),
		Lines:      make(map[uint64]LineReport),
	}
}

// lineFor returns the window stat for the line-aligned address, resolving
// through the intern table when possible (two array indexes) and through
// the fallback map otherwise. The caller is responsible for the epoch
// check/reset.
func (d *Detector) lineFor(line uint64) *lineStat {
	if d.tab != nil {
		if id := d.tab.Lookup(line); id != intern.None {
			d.pages = intern.Grow(d.pages, id)
			sp := d.pages[id]
			gen := d.tab.Gen(id)
			if sp == nil {
				sp = &statPage{gen: gen, chunks: make([]*statChunk, int(d.pageSize)/cache.LineSize/linesPerChunk)}
				d.pages[id] = sp
			} else if sp.gen != gen {
				// The page was remapped since these stats were built: they
				// describe bytes of a dead mapping. Drop every chunk so the
				// new mapping's samples start clean.
				for i := range sp.chunks {
					sp.chunks[i] = nil
				}
				sp.gen = gen
			}
			li := int(line&(d.pageSize-1)) / cache.LineSize
			ck := sp.chunks[li/linesPerChunk]
			if ck == nil {
				ck = new(statChunk)
				sp.chunks[li/linesPerChunk] = ck
			}
			return &ck[li%linesPerChunk]
		}
	}
	ls := d.fallback[line]
	if ls == nil {
		if d.fallback == nil {
			d.fallback = make(map[uint64]*lineStat)
		}
		ls = &lineStat{}
		d.fallback[line] = ls
	}
	return ls
}

// SetTap installs (or, with nil, removes) the capture tap.
func (d *Detector) SetTap(t Tap) { d.tap = t }

// Tick drains the record source, analyzes the window of intervalSec
// seconds, and returns a repair request for pages whose false sharing
// crosses the threshold (nil if none). The window state is reset between
// ticks (an epoch bump; nothing is reallocated).
func (d *Detector) Tick(intervalSec float64) *Request {
	d.drain = d.src.DrainInto(d.drain[:0])
	d.Feed(d.drain)
	return d.Analyze(intervalSec, d.src.Period())
}

// Feed filters raw PEBS records through the address map, resolves each
// survivor's access kind and width by disassembling its PC, and ingests the
// resolved samples into the current window. It is the resolution half of
// Tick, split out so record sources other than a live monitor can drive the
// detector.
func (d *Detector) Feed(recs []pebs.Record) {
	for _, r := range recs {
		if !d.maps.Monitorable(r.Addr) {
			d.TotalRecords++
			d.FilteredRecords++
			continue
		}
		info, ok := d.prog.Disassemble(r.PC)
		if !ok {
			d.TotalRecords++
			d.FilteredRecords++
			continue
		}
		d.Ingest(Sample{TID: r.TID, Addr: r.Addr, Width: info.Width, Write: info.Kind.Writes()})
	}
}

// Ingest aggregates one already-resolved sample into the current window.
// This is the seam the tmid service feeds wire records through: no monitor,
// no disassembler, no address map — just per-line aggregation.
func (d *Detector) Ingest(s Sample) {
	d.TotalRecords++
	if d.tap != nil {
		d.tap.TapSample(s)
	}
	line := s.Addr &^ (cache.LineSize - 1)
	lo := int(s.Addr - line)
	hi := lo + s.Width
	if hi > cache.LineSize {
		hi = cache.LineSize
	}
	ls := d.lineFor(line)
	if ls.epoch != d.epoch {
		ls.reset()
		ls.epoch = d.epoch
		d.touched = append(d.touched, touchedLine{line, ls})
	}
	ls.records++
	if s.Write {
		ls.writeRecords++
	}
	ls.add(s.TID, lo, hi, s.Write)
}

// Analyze closes the window of intervalSec seconds sampled at period and
// returns the repair request (nil if no page crossed the threshold). It is
// the classification half of Tick; period is explicit because a replayed or
// network-fed stream carries the period that was in force when its records
// were sampled, not whatever the local source is programmed to now.
func (d *Detector) Analyze(intervalSec float64, period int) *Request {
	if d.tap != nil {
		d.tap.TapWindow(intervalSec, period)
	}
	var req Request
	var pages []uint64
	for _, tl := range d.touched {
		line, ls := tl.line, tl.ls
		d.DroppedSpans += uint64(ls.dropped)
		if ls.records < d.cfg.MinRecords {
			continue
		}
		class := classify(ls)
		est := float64(ls.records) * float64(period) / intervalSec
		rep := LineReport{Line: line, Class: class, Records: ls.records, EstEventsPerSec: est, DroppedSpans: ls.dropped}
		// Archive every sufficiently-sampled line — including single-thread
		// ones: the Predator-style prediction needs them to see false
		// sharing that only appears at larger line sizes.
		d.archiveLine(line, ls)
		if class != SharingNone && len(d.Lines) < 4096 {
			if prev, ok := d.Lines[line]; !ok || est > prev.EstEventsPerSec {
				d.Lines[line] = rep
			}
		}
		switch class {
		case SharingTrue:
			d.TrueLines[line] = true
			d.TrueRecords += uint64(ls.records)
		case SharingFalse:
			d.FalseLines[line] = true
			d.FalseRecords += uint64(ls.records)
			d.FalseWriteRecords += uint64(ls.writeRecords)
			if est >= d.cfg.ThresholdPerSec {
				page := line &^ (d.pageSize - 1)
				dup := false
				for _, p := range pages {
					if p == page {
						dup = true
						break
					}
				}
				if !dup {
					pages = append(pages, page)
				}
				req.Lines = append(req.Lines, rep)
			}
		}
	}
	// Reset the window: everything touched this epoch lazily clears on its
	// next sample.
	d.touched = d.touched[:0]
	d.epoch++
	if len(pages) == 0 {
		return nil
	}
	req.Pages = pages
	sort.Slice(req.Pages, func(i, j int) bool { return req.Pages[i] < req.Pages[j] })
	sort.Slice(req.Lines, func(i, j int) bool { return req.Lines[i].Line < req.Lines[j].Line })
	return &req
}

// classify decides true vs false sharing for one line. Overlap is weighted
// by sample counts so that occasional PEBS address skid cannot flip the
// verdict: the line is true sharing only when a meaningful fraction of its
// samples sit in cross-thread overlapping byte ranges (with a write);
// disjoint cross-thread ranges with at least one writer are false sharing.
func classify(ls *lineStat) Sharing {
	if len(ls.tids) < 2 {
		return SharingNone
	}
	anyWrite := false
	for _, tid := range ls.tids {
		for _, s := range ls.threads[tid] {
			anyWrite = anyWrite || s.Wrote
		}
	}
	if !anyWrite {
		return SharingNone
	}
	// Overlap weight is a sum over unordered thread pairs, so the
	// first-touch order of ls.tids does not affect the verdict.
	overlapWeight := 0
	for i := 0; i < len(ls.tids); i++ {
		for j := i + 1; j < len(ls.tids); j++ {
			for _, a := range ls.threads[ls.tids[i]] {
				for _, b := range ls.threads[ls.tids[j]] {
					if a.Lo < b.Hi && b.Lo < a.Hi && (a.Wrote || b.Wrote) {
						w := a.Count
						if b.Count < w {
							w = b.Count
						}
						overlapWeight += w
					}
				}
			}
		}
	}
	// One-in-ten samples overlapping marks genuine true sharing; anything
	// rarer is within PEBS skid noise.
	if overlapWeight*10 >= ls.records {
		return SharingTrue
	}
	return SharingFalse
}

// FootprintBytes estimates detector data-structure memory (Figure 8): the
// disassembly tables plus per-line aggregation state plus fixed overhead
// for the detection thread.
func (d *Detector) FootprintBytes() uint64 {
	const fixed = 48 << 20 // detection thread arenas, maps cache, indexes
	perLine := uint64(len(d.TrueLines)+len(d.FalseLines)) * 256
	return fixed + d.prog.FootprintBytes()*16 + perLine
}
