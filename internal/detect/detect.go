// Package detect implements TMI's false sharing detector (paper §3.1): a
// per-application detection thread that drains the perf HITM sample buffers
// once per second, filters samples through the process address map (heap and
// globals only), recovers each sample's access kind and width by
// disassembling its PC, aggregates samples per cache line, scales counts by
// the sampling period (a period of n with r records is estimated as n*r
// events), classifies each hot line as true or false sharing, and requests
// repair for pages whose false-sharing rate crosses the threshold.
package detect

import (
	"sort"

	"repro/internal/disasm"
	"repro/internal/perfev"
	"repro/internal/sim/cache"
	"repro/internal/sim/osim"
)

// Config tunes the detector.
type Config struct {
	// ThresholdPerSec is the estimated HITM events/second on one line above
	// which false sharing is repaired (the paper repairs structures
	// producing >100k events/s).
	ThresholdPerSec float64
	// MinRecords is the minimum raw records on a line before judging it.
	MinRecords int
}

// DefaultConfig matches the paper's operating point.
func DefaultConfig() Config {
	return Config{ThresholdPerSec: 100_000, MinRecords: 8}
}

// span is an exact byte interval [Lo, Hi) a thread touched within a line,
// with the number of samples that produced it. Spans are kept exact (not
// widened) and classification is count-weighted, because PEBS data
// addresses occasionally skid: a single skidded record must not be able to
// flip a heavily false-shared line to "true sharing".
type span struct {
	Lo, Hi int
	Wrote  bool
	Count  int
}

// maxSpansPerThread caps the distinct spans tracked per (line, thread).
// Past the cap, new spans are merged into the nearest same-kind span
// (widening it) rather than discarded: a line with many distinct offsets
// must keep contributing to classification. Only when no same-kind span
// exists is the record's span dropped, and that is counted.
const maxSpansPerThread = 24

type lineStat struct {
	records      int
	writeRecords int
	// dropped counts records whose span could not be tracked or merged;
	// surfaced per line (LineReport.DroppedSpans) and cumulatively
	// (Detector.DroppedSpans) so overflow can never silently skew a
	// classification.
	dropped  int
	byThread map[int][]span
}

func (ls *lineStat) add(tid, lo, hi int, wrote bool) {
	spans := ls.byThread[tid]
	for i, s := range spans {
		if s.Lo == lo && s.Hi == hi && s.Wrote == wrote {
			spans[i].Count++
			return
		}
	}
	if len(spans) < maxSpansPerThread {
		ls.byThread[tid] = append(spans, span{lo, hi, wrote, 1})
		return
	}
	// Overflow: merge into the closest span of the same access kind,
	// widening its byte interval. Widening can only add overlap weight the
	// exact spans would also have contributed had there been room.
	best, bestGap := -1, int(^uint(0)>>1)
	for i, s := range spans {
		if s.Wrote != wrote {
			continue
		}
		gap := 0
		switch {
		case lo > s.Hi:
			gap = lo - s.Hi
		case s.Lo > hi:
			gap = s.Lo - hi
		}
		if gap < bestGap {
			best, bestGap = i, gap
		}
	}
	if best < 0 {
		ls.dropped++
		return
	}
	if lo < spans[best].Lo {
		spans[best].Lo = lo
	}
	if hi > spans[best].Hi {
		spans[best].Hi = hi
	}
	spans[best].Count++
}

// Sharing classifies a hot line.
type Sharing int

// Sharing classes.
const (
	SharingNone Sharing = iota
	SharingTrue
	SharingFalse
)

func (s Sharing) String() string {
	switch s {
	case SharingTrue:
		return "true"
	case SharingFalse:
		return "false"
	}
	return "none"
}

// LineReport describes one analyzed cache line.
type LineReport struct {
	Line    uint64 // line-aligned virtual address
	Class   Sharing
	Records int
	// EstEventsPerSec is records * period / interval.
	EstEventsPerSec float64
	// DroppedSpans counts records whose byte span the aggregator could
	// neither track nor merge in this line's hottest window; non-zero means
	// the classification ran on incomplete span data.
	DroppedSpans int
}

// Request asks the repair engine to protect a set of pages.
type Request struct {
	Pages []uint64 // page-aligned virtual addresses
	Lines []LineReport
}

// Detector is the per-application detection thread's state.
type Detector struct {
	cfg   Config
	mon   *perfev.Monitor
	prog  *disasm.Program
	maps  *osim.AddressMap
	lines map[uint64]*lineStat

	pageSize uint64

	// Cumulative results for reporting.
	TotalRecords    uint64
	FilteredRecords uint64
	TrueLines       map[uint64]bool
	FalseLines      map[uint64]bool
	TrueRecords     uint64
	FalseRecords    uint64
	// FalseWriteRecords is the store-triggered subset of FalseRecords;
	// stores under-report (pebs.StoreCaptureRate), which the speedup
	// prediction corrects for.
	FalseWriteRecords uint64
	// DroppedSpans counts, across all windows and lines, records whose byte
	// span overflowed the per-thread tracker and could not be merged.
	DroppedSpans uint64
	// Lines holds, per classified line, the report from its hottest window
	// (capped; for the tmidetect tool and tests).
	Lines map[uint64]LineReport

	// archive folds every window's span data for the prediction analyses
	// (predict.go); capped like Lines.
	archive map[uint64]*lineStat
}

// New creates a detector.
func New(cfg Config, mon *perfev.Monitor, prog *disasm.Program, maps *osim.AddressMap, pageSize int) *Detector {
	return &Detector{
		cfg: cfg, mon: mon, prog: prog, maps: maps,
		lines:      make(map[uint64]*lineStat),
		pageSize:   uint64(pageSize),
		TrueLines:  make(map[uint64]bool),
		FalseLines: make(map[uint64]bool),
		Lines:      make(map[uint64]LineReport),
	}
}

// Tick drains the perf buffers, analyzes the window of intervalSec seconds,
// and returns a repair request for pages whose false sharing crosses the
// threshold (nil if none). The window state is reset between ticks.
func (d *Detector) Tick(intervalSec float64) *Request {
	recs := d.mon.DrainAll()
	for _, r := range recs {
		d.TotalRecords++
		if !d.maps.Monitorable(r.Addr) {
			d.FilteredRecords++
			continue
		}
		info, ok := d.prog.Disassemble(r.PC)
		if !ok {
			d.FilteredRecords++
			continue
		}
		line := r.Addr &^ (cache.LineSize - 1)
		lo := int(r.Addr - line)
		hi := lo + info.Width
		if hi > cache.LineSize {
			hi = cache.LineSize
		}
		wrote := info.Kind.Writes()
		ls := d.lines[line]
		if ls == nil {
			ls = &lineStat{byThread: make(map[int][]span)}
			d.lines[line] = ls
		}
		ls.records++
		if wrote {
			ls.writeRecords++
		}
		ls.add(r.TID, lo, hi, wrote)
	}

	var req Request
	pages := make(map[uint64]bool)
	for line, ls := range d.lines {
		d.DroppedSpans += uint64(ls.dropped)
		if ls.records < d.cfg.MinRecords {
			continue
		}
		class := classify(ls)
		est := float64(ls.records) * float64(d.mon.Period()) / intervalSec
		rep := LineReport{Line: line, Class: class, Records: ls.records, EstEventsPerSec: est, DroppedSpans: ls.dropped}
		// Archive every sufficiently-sampled line — including single-thread
		// ones: the Predator-style prediction needs them to see false
		// sharing that only appears at larger line sizes.
		d.archiveLine(line, ls)
		if class != SharingNone && len(d.Lines) < 4096 {
			if prev, ok := d.Lines[line]; !ok || est > prev.EstEventsPerSec {
				d.Lines[line] = rep
			}
		}
		switch class {
		case SharingTrue:
			d.TrueLines[line] = true
			d.TrueRecords += uint64(ls.records)
		case SharingFalse:
			d.FalseLines[line] = true
			d.FalseRecords += uint64(ls.records)
			d.FalseWriteRecords += uint64(ls.writeRecords)
			if est >= d.cfg.ThresholdPerSec {
				pages[line&^(d.pageSize-1)] = true
				req.Lines = append(req.Lines, rep)
			}
		}
	}
	// Reset the window.
	d.lines = make(map[uint64]*lineStat)
	if len(pages) == 0 {
		return nil
	}
	for p := range pages {
		req.Pages = append(req.Pages, p)
	}
	sort.Slice(req.Pages, func(i, j int) bool { return req.Pages[i] < req.Pages[j] })
	sort.Slice(req.Lines, func(i, j int) bool { return req.Lines[i].Line < req.Lines[j].Line })
	return &req
}

// classify decides true vs false sharing for one line. Overlap is weighted
// by sample counts so that occasional PEBS address skid cannot flip the
// verdict: the line is true sharing only when a meaningful fraction of its
// samples sit in cross-thread overlapping byte ranges (with a write);
// disjoint cross-thread ranges with at least one writer are false sharing.
func classify(ls *lineStat) Sharing {
	tids := make([]int, 0, len(ls.byThread))
	for tid := range ls.byThread {
		tids = append(tids, tid)
	}
	if len(tids) < 2 {
		return SharingNone
	}
	sort.Ints(tids)
	anyWrite := false
	for _, spans := range ls.byThread {
		for _, s := range spans {
			anyWrite = anyWrite || s.Wrote
		}
	}
	if !anyWrite {
		return SharingNone
	}
	overlapWeight := 0
	for i := 0; i < len(tids); i++ {
		for j := i + 1; j < len(tids); j++ {
			for _, a := range ls.byThread[tids[i]] {
				for _, b := range ls.byThread[tids[j]] {
					if a.Lo < b.Hi && b.Lo < a.Hi && (a.Wrote || b.Wrote) {
						w := a.Count
						if b.Count < w {
							w = b.Count
						}
						overlapWeight += w
					}
				}
			}
		}
	}
	// One-in-ten samples overlapping marks genuine true sharing; anything
	// rarer is within PEBS skid noise.
	if overlapWeight*10 >= ls.records {
		return SharingTrue
	}
	return SharingFalse
}

// FootprintBytes estimates detector data-structure memory (Figure 8): the
// disassembly tables plus per-line aggregation state plus fixed overhead
// for the detection thread.
func (d *Detector) FootprintBytes() uint64 {
	const fixed = 48 << 20 // detection thread arenas, maps cache, indexes
	perLine := uint64(len(d.TrueLines)+len(d.FalseLines)) * 256
	return fixed + d.prog.FootprintBytes()*16 + perLine
}
