package detect

import (
	"sort"

	"repro/internal/sim/cache"
	"repro/internal/sim/pebs"
)

// This file implements two analyses from the systems the paper compares
// against (§5 related work), as extensions over TMI's own sample stream:
//
//   - Predator-style prediction: reclassify the observed access spans as if
//     the machine had a different cache-line size, predicting which false
//     sharing would appear or vanish on other hardware;
//   - Cheetah-style prediction: estimate the speedup a manual fix would
//     deliver, from the observed false-sharing HITM rate and the machine's
//     latency model.

// archiveLine folds each analysis window's span data into a cumulative
// per-line archive so predictions can run over the whole execution.
func (d *Detector) archiveLine(line uint64, ls *lineStat) {
	if d.archive == nil {
		d.archive = make(map[uint64]*lineStat)
	}
	if len(d.archive) >= 4096 {
		return
	}
	a := d.archive[line]
	if a == nil {
		a = &lineStat{}
		d.archive[line] = a
	}
	a.records += ls.records
	a.dropped += ls.dropped
	for _, tid := range ls.tids {
		for _, s := range ls.threads[tid] {
			for i := 0; i < s.Count; i++ {
				a.add(tid, s.Lo, s.Hi, s.Wrote)
			}
		}
	}
}

// Prediction summarizes the expected sharing behavior at one line size.
type Prediction struct {
	LineSize   int
	FalseLines int
	TrueLines  int
}

// PredictAtLineSize reclassifies every archived access span as if the
// coherence granularity were lineSize bytes (a power of two between 16 and
// 512). Larger lines can pull neighbouring threads' private data into false
// sharing; smaller lines can separate falsely-shared fields.
func (d *Detector) PredictAtLineSize(lineSize int) Prediction {
	p := Prediction{LineSize: lineSize}
	// Regroup: absolute byte spans -> hypothetical lines.
	groups := make(map[uint64]*lineStat)
	for lineAddr, ls := range d.archive {
		for _, tid := range ls.tids {
			for _, s := range ls.threads[tid] {
				// Drop skid-noise spans (same tolerance as the live
				// classifier): a span carrying under 5% of the line's
				// samples is PEBS address imprecision, not an access site.
				if s.Count*20 < ls.records {
					continue
				}
				lo := lineAddr + uint64(s.Lo)
				hi := lineAddr + uint64(s.Hi)
				for addr := lo &^ uint64(lineSize-1); addr < hi; addr += uint64(lineSize) {
					g := groups[addr]
					if g == nil {
						g = &lineStat{}
						groups[addr] = g
					}
					slo := int(max64(lo, addr) - addr)
					shi := int(min64(hi, addr+uint64(lineSize)) - addr)
					g.records += s.Count
					for i := 0; i < s.Count; i++ {
						g.add(tid, slo, shi, s.Wrote)
					}
				}
			}
		}
	}
	for _, g := range groups {
		switch classify(g) {
		case SharingFalse:
			p.FalseLines++
		case SharingTrue:
			p.TrueLines++
		}
	}
	return p
}

// PredictLineSizes runs the Predator-style sweep over common line sizes.
func (d *Detector) PredictLineSizes() []Prediction {
	sizes := []int{16, 32, 64, 128, 256}
	out := make([]Prediction, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, d.PredictAtLineSize(s))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LineSize < out[j].LineSize })
	return out
}

// PredictManualSpeedup is the Cheetah-style estimate: if every observed
// false-sharing HITM event became a private L1 hit (what a manual padding
// fix achieves), how much faster would the run have been? runtimeCycles is
// the measured total per-core runtime.
//
// The estimate is conservative in the same way Cheetah's is: it counts only
// sampled-and-scaled events, so secondary effects (prefetching, shared-line
// read amplification) are not credited.
func (d *Detector) PredictManualSpeedup(period int, runtimeCycles int64, threads int) float64 {
	if runtimeCycles <= 0 || threads <= 0 {
		return 1
	}
	// Correct for PEBS store under-reporting: store-triggered records
	// represent 1/StoreCaptureRate actual events each.
	loads := float64(d.FalseRecords - d.FalseWriteRecords)
	writes := float64(d.FalseWriteRecords) / pebs.StoreCaptureRate
	estEvents := (loads + writes) * float64(period)
	savedPerCore := estEvents * float64(cache.LatHITM-cache.LatL1Hit) / float64(threads)
	frac := savedPerCore / float64(runtimeCycles)
	if frac >= 0.99 {
		frac = 0.99
	}
	return 1 / (1 - frac)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
