package detect

import "testing"

// Regression tests for the span-tracker overflow bug: lineStat.add used to
// silently discard any span once a thread had 24 on a line, so a line with
// many distinct offsets could be misclassified (true sharing read as false)
// with no trace. Overflowing spans are now merged into the nearest
// same-kind span, and unmergeable records are counted.

func newLineStat() *lineStat {
	return &lineStat{}
}

// fill gives tid the maximum number of distinct single-byte spans.
func fill(ls *lineStat, tid int, wrote bool) {
	for i := 0; i < maxSpansPerThread; i++ {
		ls.add(tid, i, i+1, wrote)
		ls.records++
	}
}

func TestOverflowMergesIntoNearestSpan(t *testing.T) {
	ls := newLineStat()
	fill(ls, 0, true)
	ls.add(0, 40, 48, true)
	ls.records++
	if ls.dropped != 0 {
		t.Fatalf("same-kind overflow was dropped (dropped = %d)", ls.dropped)
	}
	if n := len(ls.spansOf(0)); n != maxSpansPerThread {
		t.Fatalf("span count grew past the cap: %d", n)
	}
	// The nearest span ([23,24), gap 16) must have been widened to cover
	// the new interval.
	var widened bool
	for _, s := range ls.spansOf(0) {
		if s.Lo <= 40 && s.Hi >= 48 {
			widened = true
		}
	}
	if !widened {
		t.Fatalf("no span widened to cover [40,48): %+v", ls.spansOf(0))
	}
}

func TestOverflowWithoutSameKindSpanCountsDrop(t *testing.T) {
	ls := newLineStat()
	fill(ls, 0, false) // 24 read spans
	ls.add(0, 60, 61, true)
	ls.records++
	if ls.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", ls.dropped)
	}
}

// TestTrueSharingBeyondSpanCapIsNotMisclassified reconstructs the original
// defect: thread 0 touches many distinct offsets (overflowing its span
// budget), then both threads hammer one overlapping word. Before the merge
// fix, thread 0's overlapping accesses were discarded, the cross-thread
// overlap weight stayed 0, and the heavily true-shared line was classified
// as false sharing — i.e. eligible for a repair that cannot help.
func TestTrueSharingBeyondSpanCapIsNotMisclassified(t *testing.T) {
	ls := newLineStat()
	fill(ls, 0, true)
	const hot = 400
	for i := 0; i < hot; i++ {
		ls.add(0, 56, 64, true)
		ls.records++
		ls.add(1, 56, 64, true)
		ls.records++
	}
	if got := classify(ls); got != SharingTrue {
		t.Fatalf("classify = %v, want true sharing (overlap lost past the span cap?)", got)
	}
	if ls.dropped != 0 {
		t.Fatalf("mergeable spans were counted as dropped: %d", ls.dropped)
	}
}

// TestDetectorSurfacesDrops drives drops through the public Tick path and
// checks they reach both the per-line report and the cumulative counter.
func TestDetectorSurfacesDrops(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1e12, MinRecords: 8})
	line := uint64(heapLo + 0x40)
	// Thread 0: loads at every even offset — 24 tracked spans, then merges
	// keep classification running. Thread 1 writes, making the line hot.
	for off := 0; off < 48; off += 2 {
		f.feed(0, f.ld.PC(), line+uint64(off), false, 4)
	}
	// A store from thread 0 past the cap has no same-kind span to merge
	// into (all 24 are loads): it must be counted, not silently lost.
	f.feed(0, f.st.PC(), line+50, true, 3)
	f.feed(1, f.st.PC(), line+56, true, 40)
	f.det.Tick(1.0)
	if f.det.DroppedSpans == 0 {
		t.Fatal("Detector.DroppedSpans = 0, want > 0")
	}
	rep, ok := f.det.Lines[line]
	if !ok {
		t.Fatalf("line %#x not classified; lines: %+v", line, f.det.Lines)
	}
	if rep.DroppedSpans == 0 {
		t.Error("LineReport.DroppedSpans = 0, want > 0")
	}
}
