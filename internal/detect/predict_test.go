package detect

import (
	"testing"

	"repro/internal/sim/cache"
)

// feedPattern populates the detector's archive with two threads' stores at
// the given absolute addresses.
func feedPattern(f *fixture, addrs map[int][]uint64, perAddr int) {
	for tid, as := range addrs {
		for _, a := range as {
			f.feed(tid, f.st.PC(), a, true, perAddr)
		}
	}
	f.det.Tick(1.0)
}

func TestPredictSmallerLinesSeparateFalseSharing(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1, MinRecords: 1})
	// Threads 32 bytes apart in one 64B line: false sharing at 64B, none at
	// 32B or 16B.
	feedPattern(f, map[int][]uint64{
		0: {heapLo + 0x40},
		1: {heapLo + 0x60},
	}, 2000)
	at64 := f.det.PredictAtLineSize(64)
	if at64.FalseLines != 1 {
		t.Fatalf("at 64B: %+v, want 1 false line", at64)
	}
	at32 := f.det.PredictAtLineSize(32)
	if at32.FalseLines != 0 {
		t.Errorf("at 32B the fields separate: %+v", at32)
	}
	at16 := f.det.PredictAtLineSize(16)
	if at16.FalseLines != 0 {
		t.Errorf("at 16B the fields separate: %+v", at16)
	}
}

func TestPredictLargerLinesCreateFalseSharing(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1, MinRecords: 1})
	// Threads on adjacent 64B lines within one 128-aligned pair: clean at
	// 64B (single-thread lines are not archived), false sharing at 128B.
	feedPattern(f, map[int][]uint64{
		0: {heapLo + 0x100, heapLo + 0x108},
		1: {heapLo + 0x140, heapLo + 0x148},
	}, 1000)
	at64 := f.det.PredictAtLineSize(64)
	if at64.FalseLines != 0 {
		t.Errorf("at 64B the lines are private: %+v", at64)
	}
	at128 := f.det.PredictAtLineSize(128)
	if at128.FalseLines == 0 {
		t.Errorf("at 128B adjacent-thread lines should falsely share: %+v", at128)
	}
}

func TestPredictTrueSharingStaysTrue(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1, MinRecords: 1})
	feedPattern(f, map[int][]uint64{
		0: {heapLo + 0x80},
		1: {heapLo + 0x80},
	}, 1000)
	for _, size := range []int{16, 64, 256} {
		p := f.det.PredictAtLineSize(size)
		if p.TrueLines == 0 || p.FalseLines != 0 {
			t.Errorf("overlapping writes stay true sharing at %dB: %+v", size, p)
		}
	}
}

func TestPredictLineSizesSweep(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1, MinRecords: 1})
	feedPattern(f, map[int][]uint64{
		0: {heapLo + 0x40},
		1: {heapLo + 0x48},
	}, 500)
	sweep := f.det.PredictLineSizes()
	if len(sweep) != 5 {
		t.Fatalf("sweep has %d entries", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].LineSize <= sweep[i-1].LineSize {
			t.Error("sweep must be ordered by line size")
		}
	}
	// 8 bytes apart: shared at >=16B, separate at... never (8B apart means
	// same 16B block only if aligned together). At 16B: offsets 0x40,0x48
	// share the 16B block at 0x40 -> still false sharing.
	if sweep[0].LineSize != 16 || sweep[0].FalseLines != 1 {
		t.Errorf("8B-apart fields share a 16B block: %+v", sweep[0])
	}
}

func TestPredictManualSpeedup(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1, MinRecords: 1})
	feedPattern(f, map[int][]uint64{
		0: {heapLo + 0x40},
		1: {heapLo + 0x48},
	}, 5000)
	// All records are stores, so the estimator scales them back up by the
	// capture rate; size the runtime so the saved cycles are half of it,
	// giving a ~2x prediction.
	estEvents := float64(f.det.FalseRecords) / 0.4
	saved := estEvents * float64(cache.LatHITM-cache.LatL1Hit) / 2
	runtime := int64(saved * 2)
	got := f.det.PredictManualSpeedup(1, runtime, 2)
	if got < 1.8 || got > 2.2 {
		t.Errorf("predicted %.2fx, want ~2x", got)
	}
	// No false sharing -> no predicted benefit.
	clean := newFixture(t, 1, DefaultConfig())
	if v := clean.det.PredictManualSpeedup(1, 1_000_000, 2); v != 1 {
		t.Errorf("clean prediction %.2f, want 1.0", v)
	}
	// Saturation guard.
	if v := f.det.PredictManualSpeedup(1000, 1000, 2); v > 101 {
		t.Errorf("prediction should saturate, got %f", v)
	}
}
