package detect

// PeriodController is the adaptive sampling-period policy (the paper's
// PEBS period controller, automating Figure 4's accuracy/overhead
// tradeoff): hold the records-seen-per-window inside a target band by
// geometrically retuning the period. Above the band the period is
// multiplied by Factor (fewer records, less assist overhead); below it the
// period is divided by Factor (more records, better estimates). Estimates
// stay unbiased either way because counts always scale by the period in
// force.
//
// It is shared by the embedded runtime (core's AdaptivePeriod extension)
// and the tmid service, whose per-tick advice carries Next's value back to
// the client as the sampling-period feedback loop.
type PeriodController struct {
	// LowRecords/HighRecords bound the target records-per-window band.
	LowRecords  int
	HighRecords int
	// Factor is the geometric step (default 4).
	Factor int
	// MaxPeriod caps the period; the floor is always 1 (record everything).
	MaxPeriod int
}

// DefaultPeriodController is the band the runtime has always used.
func DefaultPeriodController() PeriodController {
	return PeriodController{LowRecords: 32, HighRecords: 512, Factor: 4, MaxPeriod: 1000}
}

// Next returns the period to program for the next window, given the period
// in force and the records the closing window produced. A window inside the
// band keeps its period.
func (c PeriodController) Next(period int, windowRecords uint64) int {
	if period < 1 {
		period = 1
	}
	switch {
	case windowRecords > uint64(c.HighRecords) && period < c.MaxPeriod:
		period *= c.Factor
		if period > c.MaxPeriod {
			period = c.MaxPeriod
		}
	case windowRecords < uint64(c.LowRecords) && period > 1:
		period /= c.Factor
		if period < 1 {
			period = 1
		}
	}
	return period
}
