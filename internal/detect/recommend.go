package detect

// Backend recommendation policies accepted by RecommendBackend. The fixed
// names mirror the repair package's backend registry; they are spelled out
// here (rather than imported) because detect must not depend on repair —
// the recommendation rides the advice wire to clients that may not even
// run this repair engine.
const (
	// RecommendNone disables recommendations ("" behaves identically).
	RecommendNone = "none"
	// RecommendAuto picks a backend per advice from the flagged lines.
	RecommendAuto = "auto"
)

// fixedRecommendations is the set of policies that pin one backend
// unconditionally.
var fixedRecommendations = map[string]bool{
	"t2p": true, "pad": true, "map": true, "tmebox": true,
}

// ValidRecommendPolicy reports whether policy names a recommendation
// policy: "", "none", "auto", or a fixed backend name.
func ValidRecommendPolicy(policy string) bool {
	switch policy {
	case "", RecommendNone, RecommendAuto:
		return true
	}
	return fixedRecommendations[policy]
}

// RecommendBackend maps an advice's flagged lines to a repair-backend
// recommendation under the given policy. It returns "" when the policy is
// off, unknown, or the advice flags nothing — the caller omits the field
// and the advice bytes stay schema-v1 identical.
//
// The auto heuristic is deterministic and intentionally coarse (it sees
// only one window's classified lines):
//
//   - Contention spread over many pages (>= autoManyPages distinct pages)
//     wants whole-heap-ish isolation with cheap domains: tmebox.
//   - One or two flagged lines is the classic adjacent-counters layout a
//     realloc-and-pad fixes outright: pad.
//   - A very hot line (>= autoHotPerSec estimated events/s) justifies the
//     full stop-the-world T2P conversion: t2p.
//   - Otherwise, moderate multi-line contention on few pages: migrate the
//     threads to the data: map.
func RecommendBackend(policy string, pageSize int, lines []LineReport) string {
	switch policy {
	case "", RecommendNone:
		return ""
	case RecommendAuto:
	default:
		if fixedRecommendations[policy] {
			return policy
		}
		return ""
	}
	if len(lines) == 0 {
		return ""
	}
	if pageSize <= 0 {
		pageSize = 4096
	}
	pages := map[uint64]bool{}
	maxRate := 0.0
	for _, l := range lines {
		pages[l.Line&^uint64(pageSize-1)] = true
		if l.EstEventsPerSec > maxRate {
			maxRate = l.EstEventsPerSec
		}
	}
	switch {
	case len(pages) >= autoManyPages:
		return "tmebox"
	case len(lines) <= autoFewLines:
		return "pad"
	case maxRate >= autoHotPerSec:
		return "t2p"
	default:
		return "map"
	}
}

// Auto-policy thresholds (see RecommendBackend).
const (
	autoManyPages = 3
	autoFewLines  = 2
	autoHotPerSec = 5e6
)
