package detect

import (
	"testing"
	"testing/quick"

	"repro/internal/disasm"
	"repro/internal/perfev"
	"repro/internal/sim/osim"
)

const (
	heapLo = 0x1000_0000
	heapHi = 0x2000_0000
	libLo  = 0x7f00_0000
	libHi  = 0x7f10_0000
)

type fixture struct {
	mon  *perfev.Monitor
	prog *disasm.Program
	det  *Detector

	ld, st disasm.Site
}

func newFixture(t *testing.T, period int, cfg Config) *fixture {
	t.Helper()
	f := &fixture{
		mon:  perfev.NewMonitor(4, period, 99),
		prog: disasm.NewProgram(),
	}
	f.ld = f.prog.Site("w.load", disasm.KindLoad, 8)
	f.st = f.prog.Site("w.store", disasm.KindStore, 8)
	var maps osim.AddressMap
	maps.AddRegion(heapLo, heapHi, osim.RegionHeap, "heap")
	maps.AddRegion(libLo, libHi, osim.RegionLib, "libc")
	f.det = New(cfg, f.mon, f.prog, &maps, nil, 4096)
	return f
}

// feed pushes n HITM events for (tid, pc, addr); with period p, roughly n/p
// records reach the buffers (exactly, for load events).
func (f *fixture) feed(tid int, pc, addr uint64, write bool, n int) {
	s := f.mon.Sampler()
	for i := 0; i < n; i++ {
		s.OnHITM(tid, tid, pc, addr, 8, write, int64(i))
	}
}

func TestDetectsDisjointStoresAsFalseSharing(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	line := uint64(heapLo + 0x40)
	f.feed(0, f.st.PC(), line+0, true, 2000)
	f.feed(1, f.st.PC(), line+8, true, 2000)
	req := f.det.Tick(1.0)
	if req == nil {
		t.Fatal("expected a repair request")
	}
	if len(req.Pages) != 1 || req.Pages[0] != heapLo {
		t.Errorf("pages %v, want [0x%x]", req.Pages, uint64(heapLo))
	}
	if len(f.det.FalseLines) != 1 || len(f.det.TrueLines) != 0 {
		t.Errorf("false=%d true=%d", len(f.det.FalseLines), len(f.det.TrueLines))
	}
}

func TestClassifiesOverlapAsTrueSharing(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	addr := uint64(heapLo + 0x80)
	f.feed(0, f.st.PC(), addr, true, 200)
	f.feed(1, f.ld.PC(), addr, false, 200)
	if req := f.det.Tick(1.0); req != nil {
		t.Errorf("true sharing must not request repair: %+v", req)
	}
	if len(f.det.TrueLines) != 1 {
		t.Errorf("true lines %d, want 1", len(f.det.TrueLines))
	}
}

func TestReadOnlySharingIgnored(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	addr := uint64(heapLo + 0xC0)
	f.feed(0, f.ld.PC(), addr, false, 200)
	f.feed(1, f.ld.PC(), addr+8, false, 200)
	if req := f.det.Tick(1.0); req != nil {
		t.Error("read-only lines must not be classified")
	}
	if len(f.det.TrueLines)+len(f.det.FalseLines) != 0 {
		t.Error("no sharing class for read-only lines")
	}
}

func TestSingleThreadLinesIgnored(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	f.feed(0, f.st.PC(), heapLo+0x100, true, 500)
	if req := f.det.Tick(1.0); req != nil {
		t.Error("one thread cannot falsely share with itself")
	}
}

func TestLibraryAndUnknownAddressesFiltered(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	f.feed(0, f.st.PC(), libLo+0x40, true, 200)
	f.feed(1, f.st.PC(), libLo+0x48, true, 200)
	f.feed(0, f.st.PC(), 0x5000_0000, true, 200) // unmapped
	if req := f.det.Tick(1.0); req != nil {
		t.Error("library/unmapped addresses must be filtered")
	}
	if f.det.FilteredRecords == 0 {
		t.Error("filter counter should move")
	}
}

func TestThresholdGatesRepair(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1_000_000, MinRecords: 8})
	line := uint64(heapLo + 0x40)
	f.feed(0, f.st.PC(), line, true, 100)
	f.feed(1, f.st.PC(), line+8, true, 100)
	if req := f.det.Tick(1.0); req != nil {
		t.Error("below-threshold false sharing must not trigger repair")
	}
	// Still recorded as false sharing for reporting.
	if len(f.det.FalseLines) != 1 {
		t.Error("false sharing should still be classified")
	}
}

func TestMinRecordsGate(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1, MinRecords: 50})
	line := uint64(heapLo + 0x40)
	f.feed(0, f.st.PC(), line, true, 10)
	f.feed(1, f.st.PC(), line+8, true, 10)
	if req := f.det.Tick(1.0); req != nil {
		t.Error("too few records to judge")
	}
}

func TestWindowResetsBetweenTicks(t *testing.T) {
	f := newFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	line := uint64(heapLo + 0x40)
	f.feed(0, f.st.PC(), line, true, 6)
	f.feed(1, f.st.PC(), line+8, true, 6)
	f.det.Tick(1.0) // 12 records < MinRecords? (some may be stores dropped) — either way, window resets
	f.feed(0, f.st.PC(), line, true, 4)
	f.feed(1, f.st.PC(), line+8, true, 3)
	if req := f.det.Tick(1.0); req != nil {
		t.Error("window state must not accumulate across ticks")
	}
}

func TestSkidDoesNotFlipClassification(t *testing.T) {
	// With period 1 and thousands of samples, ~2% skid lands on neighbour
	// offsets; the count-weighted classifier must still say false sharing.
	f := newFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	line := uint64(heapLo + 0x40)
	f.feed(0, f.st.PC(), line+0, true, 3000)
	f.feed(1, f.st.PC(), line+8, true, 3000)
	req := f.det.Tick(1.0)
	if req == nil {
		t.Fatal("false sharing expected despite skid")
	}
	if len(f.det.TrueLines) != 0 {
		t.Error("skid flipped the line to true sharing")
	}
}

// Property: the period-scaling rule — estimated events = records x period —
// tracks the true event count within sampling noise.
func TestQuickPeriodScaling(t *testing.T) {
	check := func(seed int64) bool {
		period := int((seed%97+97)%97) + 3
		f := newFixture(t, period, Config{ThresholdPerSec: 1, MinRecords: 1})
		// Sized to stay under the per-thread buffer capacity so no records
		// drop (overflow accounting is tested separately).
		events := 500 * period
		f.feed(1, f.st.PC(), heapLo+0x48, true, events/10)
		f.feed(0, f.ld.PC(), heapLo+0x40, false, events)
		f.feed(1, f.ld.PC(), heapLo+0x48, false, events)
		req := f.det.Tick(1.0)
		if req == nil {
			return false
		}
		var est float64
		for _, l := range req.Lines {
			est += l.EstEventsPerSec
		}
		// Loads are captured exactly; stores at the documented rate.
		want := float64(2*events) + float64(events/10)*0.4
		ratio := est / want
		return ratio > 0.9 && ratio < 1.1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFootprintGrows(t *testing.T) {
	f := newFixture(t, 1, DefaultConfig())
	base := f.det.FootprintBytes()
	f.feed(0, f.st.PC(), heapLo+0x40, true, 100)
	f.feed(1, f.st.PC(), heapLo+0x48, true, 100)
	f.det.Tick(1.0)
	if f.det.FootprintBytes() <= base {
		t.Error("per-line state should grow the footprint")
	}
}
