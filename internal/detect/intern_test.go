package detect

import (
	"testing"

	"repro/internal/disasm"
	"repro/internal/perfev"
	"repro/internal/raceflag"
	"repro/internal/sim/mem"
	"repro/internal/sim/osim"
)

// internedFixture is the detector wired the way core wires it: against a
// simulated memory's page-interning table, with the heap range actually
// mapped so samples resolve through the PageID fast path.
type internedFixture struct {
	*fixture
	memory *mem.Memory
	space  *mem.AddrSpace
	file   *mem.File
	npages int
}

func newInternedFixture(t *testing.T, period int, cfg Config) *internedFixture {
	t.Helper()
	memory := mem.NewMemory(4096)
	space := mem.NewAddrSpace(memory)
	file := memory.NewFile("heap")
	const npages = 16
	space.Map(heapLo, npages, file, 0, false, mem.ProtRW)

	f := &fixture{
		mon:  perfev.NewMonitor(4, period, 99),
		prog: disasm.NewProgram(),
	}
	f.ld = f.prog.Site("w.load", disasm.KindLoad, 8)
	f.st = f.prog.Site("w.store", disasm.KindStore, 8)
	var maps osim.AddressMap
	maps.AddRegion(heapLo, heapHi, osim.RegionHeap, "heap")
	maps.AddRegion(libLo, libHi, osim.RegionLib, "libc")
	f.det = New(cfg, f.mon, f.prog, &maps, memory.PageTable(), 4096)
	return &internedFixture{fixture: f, memory: memory, space: space, file: file, npages: npages}
}

// The interned fast path and the fallback map must agree: the same sample
// stream produces the same classification either way.
func TestInternedIngestMatchesFallback(t *testing.T) {
	cfg := Config{ThresholdPerSec: 1000, MinRecords: 8}
	in := newInternedFixture(t, 1, cfg)
	fb := newFixture(t, 1, cfg)
	line := uint64(heapLo + 0x40)
	for _, f := range []*fixture{in.fixture, fb} {
		f.feed(0, f.st.PC(), line+0, true, 2000)
		f.feed(1, f.st.PC(), line+8, true, 2000)
		f.feed(0, f.st.PC(), heapLo+4096+0x80, true, 200)
		f.feed(1, f.ld.PC(), heapLo+4096+0x80, false, 200)
	}
	reqIn, reqFb := in.det.Tick(1.0), fb.det.Tick(1.0)
	if reqIn == nil || reqFb == nil {
		t.Fatalf("requests: interned=%v fallback=%v, want both non-nil", reqIn, reqFb)
	}
	if len(reqIn.Pages) != len(reqFb.Pages) || reqIn.Pages[0] != reqFb.Pages[0] {
		t.Errorf("pages differ: interned=%v fallback=%v", reqIn.Pages, reqFb.Pages)
	}
	if len(in.det.FalseLines) != len(fb.det.FalseLines) || len(in.det.TrueLines) != len(fb.det.TrueLines) {
		t.Errorf("classes differ: interned false=%d true=%d, fallback false=%d true=%d",
			len(in.det.FalseLines), len(in.det.TrueLines), len(fb.det.FalseLines), len(fb.det.TrueLines))
	}
	// The interned fixture must actually have used the fast path.
	if len(in.det.fallback) != 0 {
		t.Errorf("interned fixture leaked %d lines into the fallback map", len(in.det.fallback))
	}
}

// Steady-state sample aggregation — page already interned, chunk and spans
// already allocated — must not allocate: lookup is two array indexes and
// span bookkeeping reuses capacity across window epochs.
func TestIngestSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race")
	}
	f := newInternedFixture(t, 1, DefaultConfig())
	lines := [4]uint64{heapLo + 0x40, heapLo + 0x80, heapLo + 4096, heapLo + 2*4096 + 0xc0}
	ingest := func() {
		for _, line := range lines {
			ls := f.det.lineFor(line)
			if ls.epoch != f.det.epoch {
				ls.reset()
				ls.epoch = f.det.epoch
				f.det.touched = append(f.det.touched, touchedLine{line, ls})
			}
			ls.records++
			ls.add(0, 0, 8, true)
			ls.add(1, 8, 16, true)
		}
	}
	ingest() // warm: intern growth, chunk allocation, span slices, touched list
	allocs := testing.AllocsPerRun(1000, ingest)
	if allocs != 0 {
		t.Errorf("steady-state ingest allocates %.1f/op, want 0", allocs)
	}
	// And across an epoch reset: reusing the same stats next window must not
	// allocate either (reset truncates, it does not reallocate).
	f.det.touched = f.det.touched[:0]
	f.det.epoch++
	ingest() // re-touch under the new epoch (touched append has capacity)
	allocs = testing.AllocsPerRun(1000, ingest)
	if allocs != 0 {
		t.Errorf("post-reset ingest allocates %.1f/op, want 0", allocs)
	}
}

// Per-line stats built against a mapping that is then remapped must not mix
// with the new mapping's samples: the generation stamp on the stat page
// makes the next lookup drop the dead mapping's spans, independent of the
// window epoch. Without the reset, the stale thread-0 span below would
// combine with thread 1's fresh writes into a bogus false-sharing verdict
// for data that never coexisted.
func TestRemapDropsStaleLineStats(t *testing.T) {
	f := newInternedFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	line := uint64(heapLo + 0x40)
	// Ingest a thread-0 write span in the current window, against gen 0.
	ls := f.det.lineFor(line)
	ls.epoch = f.det.epoch
	ls.records = 100
	ls.writeRecords = 100
	ls.add(0, 0, 8, true)

	file2 := f.memory.NewFile("other")
	f.space.Unmap(heapLo, f.npages)
	f.space.Map(heapLo, f.npages, file2, 0, false, mem.ProtRW)

	// Same window epoch, new page generation: the lookup must hand back a
	// clean stat, not the dead mapping's.
	fresh := f.det.lineFor(line)
	if fresh.records != 0 || len(fresh.tids) != 0 {
		t.Fatalf("stale stats survived the remap: records=%d tids=%v", fresh.records, fresh.tids)
	}

	// And through the public path: the remapped page's new generation
	// classifies a fresh cross-thread window as usual.
	f.feed(0, f.st.PC(), line+0, true, 2000)
	f.feed(1, f.st.PC(), line+8, true, 2000)
	if req := f.det.Tick(1.0); req == nil {
		t.Error("post-remap generation failed to classify fresh false sharing")
	}
	// The stale thread-0 span must not have inflated the verdict's records.
	if rep, ok := f.det.Lines[line]; ok && rep.Records > 4000 {
		t.Errorf("stale records leaked into the report: %+v", rep)
	}
}

// Window isolation on the interned path: epochs reset lazily, so records
// from a previous tick must never leak into the next window's verdict.
func TestInternedWindowResetsBetweenTicks(t *testing.T) {
	f := newInternedFixture(t, 1, Config{ThresholdPerSec: 1000, MinRecords: 8})
	line := uint64(heapLo + 0x40)
	f.feed(0, f.st.PC(), line, true, 6)
	f.feed(1, f.st.PC(), line+8, true, 6)
	f.det.Tick(1.0)
	f.feed(0, f.st.PC(), line, true, 4)
	f.feed(1, f.st.PC(), line+8, true, 3)
	if req := f.det.Tick(1.0); req != nil {
		t.Error("window state must not accumulate across ticks")
	}
}
