package detect

import "testing"

func TestPeriodControllerBand(t *testing.T) {
	c := DefaultPeriodController()
	cases := []struct {
		period  int
		records uint64
		want    int
	}{
		{100, 200, 100},  // inside the band: hold
		{100, 600, 400},  // above: multiply by Factor
		{400, 600, 1000}, // above near the cap: clamp to MaxPeriod
		{1000, 9999, 1000},
		{100, 10, 25}, // below: divide by Factor
		{2, 0, 1},     // below near the floor: clamp to 1
		{1, 0, 1},
		{0, 200, 1}, // degenerate input period normalizes to 1
	}
	for _, tc := range cases {
		if got := c.Next(tc.period, tc.records); got != tc.want {
			t.Errorf("Next(%d, %d) = %d, want %d", tc.period, tc.records, got, tc.want)
		}
	}
}

func TestPeriodControllerConvergesFromExtremes(t *testing.T) {
	c := DefaultPeriodController()
	p := 1
	for i := 0; i < 10; i++ {
		p = c.Next(p, 100_000)
	}
	if p != c.MaxPeriod {
		t.Errorf("overloaded stream settled at period %d, want %d", p, c.MaxPeriod)
	}
	for i := 0; i < 10; i++ {
		p = c.Next(p, 0)
	}
	if p != 1 {
		t.Errorf("silent stream settled at period %d, want 1", p)
	}
}
