// Package alloc implements the memory allocator the simulated applications
// use: a size-classed arena allocator in the style of the Lockless allocator
// the paper uses for both its baseline and TMI.
//
// Allocator placement policy is a first-class experimental variable here:
// false sharing bugs like lu-ncb's exist or vanish purely as a function of
// the alignment the allocator hands out, and TMI's redirection of
// allocations into process-shared file-backed memory is what changes fault
// costs (Figure 10) and enables per-page remapping at all.
package alloc

import (
	"fmt"

	"repro/internal/sim/mem"
)

// HeapBase is where the simulated application heap starts.
const HeapBase uint64 = 0x1000_0000

// BulkBase is where bulk (streamed, never byte-addressed) regions start.
const BulkBase uint64 = 0x10_0000_0000

// GlobalsBase is where the program's globals (the .data/.bss analog) start.
// TMI's detector monitors globals as well as the heap (§3.1), and its
// shared-memory region hosts them so globals pages can be repaired too.
const GlobalsBase uint64 = 0x0800_0000

// Backing identifies what kind of memory backs the heap, which drives the
// first-touch fault cost (Figure 10's 4 KiB-vs-huge-page comparison).
type Backing int

// Backing kinds.
const (
	// BackingAnon models private anonymous mmap/sbrk memory (the pthreads
	// baseline).
	BackingAnon Backing = iota
	// BackingSharedFile models TMI's process-shared file-backed memory.
	BackingSharedFile
	// BackingSharedHuge is shared file-backed memory with 2 MiB pages.
	BackingSharedHuge
)

// First-touch fault costs by backing (cycles). Shared file-backed mappings
// must push changes through to the file and fault more expensively; huge
// pages fault rarely but each fault populates more.
const (
	FaultAnon       = 1200
	FaultSharedFile = 6500
	FaultSharedHuge = 9500
)

// FaultCost returns the per-fault cost for a backing.
func (b Backing) FaultCost() int64 {
	switch b {
	case BackingSharedFile:
		return FaultSharedFile
	case BackingSharedHuge:
		return FaultSharedHuge
	default:
		return FaultAnon
	}
}

// Policy is an allocator placement policy.
type Policy struct {
	// Name for reports.
	Name string
	// DefaultAlign is the alignment AllocDefault uses for small objects
	// (Lockless uses 16).
	DefaultAlign int
	// LargeAlign is the alignment for allocations of LargeThreshold bytes
	// or more; TMI's allocator rounds these to cache lines, which is what
	// incidentally repairs lu-ncb.
	LargeAlign     int
	LargeThreshold int
	// PerOpCycles models the allocator's own cost per allocation.
	PerOpCycles int64
}

// LocklessPolicy is the baseline allocator policy.
func LocklessPolicy() Policy {
	return Policy{Name: "lockless", DefaultAlign: 16, LargeAlign: 16, LargeThreshold: 1 << 10, PerOpCycles: 60}
}

// TMIPolicy is TMI's allocator: identical except large allocations are
// cache-line aligned in the process-shared region.
func TMIPolicy() Policy {
	return Policy{Name: "tmi", DefaultAlign: 16, LargeAlign: 64, LargeThreshold: 1 << 10, PerOpCycles: 60}
}

// PaddedPolicy is the pad repair backend's placement policy: every
// allocation gets its own cache line, so no two objects can ever share
// one. The per-op cost is higher (size-class rounding to lines) and small
// objects waste up to a line of slack — the memory-for-contention trade
// the policy table quantifies.
func PaddedPolicy() Policy {
	return Policy{Name: "padded", DefaultAlign: 64, LargeAlign: 64, LargeThreshold: 1 << 10, PerOpCycles: 70}
}

// Allocator hands out simulated heap addresses and keeps the backing file
// mapped in every registered address space.
type Allocator struct {
	policy   Policy
	backing  Backing
	file     *mem.File
	spaces   []*mem.AddrSpace
	pageSize uint64

	next        uint64
	bulkNext    uint64
	globalsNext uint64
	mapped      uint64 // first unmapped heap page index
	globalsFile *mem.File
	globalsPgs  uint64

	// freeLists recycles small blocks by size class (powers of two from
	// MinClass to MaxClass), as Lockless does; larger blocks are not
	// recycled.
	freeLists map[int][]uint64

	// Stats.
	Allocations uint64
	Frees       uint64
	Reuses      uint64
	HeapBytes   uint64
	BulkBytes   uint64
	// PolicySwitches counts mid-run SetPolicy calls (pad repair backend).
	PolicySwitches uint64
}

// Size-class bounds for the free lists.
const (
	MinClass = 16
	MaxClass = 4096
)

// classFor rounds n up to its size class, or 0 if unclassed.
func classFor(n int) int {
	if n <= 0 || n > MaxClass {
		return 0
	}
	c := MinClass
	for c < n {
		c <<= 1
	}
	return c
}

// New creates an allocator over file with the given policy and backing.
// Spaces registered with AddSpace get the heap mapped as it grows.
func New(policy Policy, backing Backing, file *mem.File, pageSize int) *Allocator {
	return &Allocator{
		policy:      policy,
		backing:     backing,
		file:        file,
		pageSize:    uint64(pageSize),
		next:        HeapBase,
		bulkNext:    BulkBase,
		globalsNext: GlobalsBase,
	}
}

// Policy returns the active placement policy.
func (a *Allocator) Policy() Policy { return a.policy }

// SetPolicy swaps the placement policy for subsequent allocations (the pad
// repair backend re-segregates future objects this way; existing objects
// are handled at the cache model by IsolateLine). Free lists are dropped:
// blocks carved under the old alignment must not be recycled into the new
// regime.
func (a *Allocator) SetPolicy(p Policy) {
	a.policy = p
	a.freeLists = map[int][]uint64{}
	a.PolicySwitches++
}

// Backing returns the heap's backing kind.
func (a *Allocator) Backing() Backing { return a.backing }

// AddSpace registers an address space; already-mapped heap pages are mapped
// into it immediately.
func (a *Allocator) AddSpace(s *mem.AddrSpace) {
	if a.mapped > 0 {
		s.Map(HeapBase, int(a.mapped), a.file, 0, false, mem.ProtRW)
	}
	if a.globalsPgs > 0 {
		s.Map(GlobalsBase, int(a.globalsPgs), a.globalsFile, 0, false, mem.ProtRW)
	}
	if a.bulkNext > BulkBase {
		s.MapBulk(BulkBase, a.bulkNext-BulkBase)
	}
	a.spaces = append(a.spaces, s)
}

// Alloc returns n fresh bytes aligned to align, reusing a freed block of
// the same size class when one satisfies the alignment.
func (a *Allocator) Alloc(n, align int) uint64 {
	if n <= 0 {
		panic("alloc: non-positive size")
	}
	if align < 1 {
		align = 1
	}
	if c := classFor(n); c != 0 && c >= align {
		if list := a.freeLists[c]; len(list) > 0 {
			for i, addr := range list {
				if addr%uint64(align) == 0 {
					a.freeLists[c] = append(list[:i], list[i+1:]...)
					a.Allocations++
					a.Reuses++
					return addr
				}
			}
		}
	}
	addr := (a.next + uint64(align) - 1) &^ (uint64(align) - 1)
	a.next = addr + uint64(n)
	a.Allocations++
	a.HeapBytes = a.next - HeapBase
	a.ensureMapped(a.next)
	return addr
}

// Free recycles a block of n bytes at addr into its size-class free list.
// Blocks above MaxClass are abandoned (arena reclamation is out of scope,
// as in the real Lockless fast path).
func (a *Allocator) Free(addr uint64, n int) {
	c := classFor(n)
	if c == 0 {
		return
	}
	if a.freeLists == nil {
		a.freeLists = make(map[int][]uint64)
	}
	a.freeLists[c] = append(a.freeLists[c], addr)
	a.Frees++
}

// AllocDefault allocates with the policy's placement rules.
func (a *Allocator) AllocDefault(n int) uint64 {
	align := a.policy.DefaultAlign
	if n >= a.policy.LargeThreshold {
		align = a.policy.LargeAlign
	}
	return a.Alloc(n, align)
}

// AllocGlobal places n bytes in the globals region (a static/global
// variable). Globals live in their own pages of the shared file, mapped in
// every registered space.
func (a *Allocator) AllocGlobal(n, align int) uint64 {
	if n <= 0 {
		panic("alloc: non-positive global size")
	}
	if align < 1 {
		align = 1
	}
	if a.globalsFile == nil {
		a.globalsFile = a.file.Memory().NewFile("globals")
	}
	addr := (a.globalsNext + uint64(align) - 1) &^ (uint64(align) - 1)
	a.globalsNext = addr + uint64(n)
	a.Allocations++
	need := (a.globalsNext - GlobalsBase + a.pageSize - 1) / a.pageSize
	if need > a.globalsPgs {
		for _, s := range a.spaces {
			s.Map(GlobalsBase+a.globalsPgs*a.pageSize, int(need-a.globalsPgs), a.globalsFile, int(a.globalsPgs), false, mem.ProtRW)
		}
		a.globalsPgs = need
	}
	return addr
}

// GlobalsEnd returns the first address past the mapped globals.
func (a *Allocator) GlobalsEnd() uint64 { return GlobalsBase + a.globalsPgs*a.pageSize }

// AllocBulk reserves n bytes of bulk data in every registered space.
func (a *Allocator) AllocBulk(n int64) uint64 {
	if n <= 0 {
		panic("alloc: non-positive bulk size")
	}
	addr := a.bulkNext
	size := (uint64(n) + a.pageSize - 1) &^ (a.pageSize - 1)
	a.bulkNext += size
	a.BulkBytes += size
	a.file.Memory().Reserve(size)
	for _, s := range a.spaces {
		s.MapBulk(addr, size)
	}
	return addr
}

// PerOpCycles reports the allocator's modeled per-allocation cost.
func (a *Allocator) PerOpCycles() int64 { return a.policy.PerOpCycles }

func (a *Allocator) ensureMapped(limit uint64) {
	needPages := (limit - HeapBase + a.pageSize - 1) / a.pageSize
	if needPages <= a.mapped {
		return
	}
	for _, s := range a.spaces {
		s.Map(HeapBase+a.mapped*a.pageSize, int(needPages-a.mapped), a.file, int(a.mapped), false, mem.ProtRW)
	}
	a.mapped = needPages
}

// HeapPages reports the mapped heap size in pages.
func (a *Allocator) HeapPages() int { return int(a.mapped) }

// HeapEnd returns the first address past the allocated heap.
func (a *Allocator) HeapEnd() uint64 { return HeapBase + a.mapped*a.pageSize }

// String describes the allocator configuration.
func (a *Allocator) String() string {
	return fmt.Sprintf("%s allocator (backing=%d, page=%d)", a.policy.Name, a.backing, a.pageSize)
}
