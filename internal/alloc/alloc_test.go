package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim/mem"
)

func newAlloc(policy Policy, pageSize int) (*Allocator, *mem.AddrSpace) {
	m := mem.NewMemory(pageSize)
	f := m.NewFile("heap")
	a := New(policy, BackingSharedFile, f, pageSize)
	as := mem.NewAddrSpace(m)
	a.AddSpace(as)
	return a, as
}

func TestAllocAlignmentAndNonOverlap(t *testing.T) {
	a, _ := newAlloc(LocklessPolicy(), mem.PageSize4K)
	type blk struct{ addr, size uint64 }
	var blks []blk
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		n := rng.Intn(200) + 1
		aligns := []int{1, 8, 16, 64, 128}
		al := aligns[rng.Intn(len(aligns))]
		addr := a.Alloc(n, al)
		if addr%uint64(al) != 0 {
			t.Fatalf("alloc %d align %d returned 0x%x", n, al, addr)
		}
		for _, b := range blks {
			if addr < b.addr+b.size && b.addr < addr+uint64(n) {
				t.Fatalf("overlap: [0x%x,+%d) with [0x%x,+%d)", addr, n, b.addr, b.size)
			}
		}
		blks = append(blks, blk{addr, uint64(n)})
	}
	if a.Allocations != 500 {
		t.Errorf("allocations %d", a.Allocations)
	}
}

func TestAllocatedMemoryIsMapped(t *testing.T) {
	a, as := newAlloc(LocklessPolicy(), mem.PageSize4K)
	addr := a.Alloc(100_000, 8) // spans many pages
	for off := uint64(0); off < 100_000; off += 4096 {
		if _, fault := as.Translate(addr+off, true); fault != nil {
			t.Fatalf("allocated page unmapped at +%d: %v", off, fault)
		}
	}
}

func TestLateSpaceSeesExistingHeap(t *testing.T) {
	a, _ := newAlloc(LocklessPolicy(), mem.PageSize4K)
	addr := a.Alloc(64, 8)
	late := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	_ = late // wrong memory: build from same memory instead
	a.AllocBulk(1 << 20)
	s2 := mem.NewAddrSpace(a.file.Memory())
	a.AddSpace(s2)
	if _, fault := s2.Translate(addr, true); fault != nil {
		t.Fatalf("late space missing heap mapping: %v", fault)
	}
	if s2.BulkAt(BulkBase) == nil {
		t.Fatal("late space missing bulk region")
	}
}

func TestPolicyLargeAlignmentDiffers(t *testing.T) {
	// The lu-ncb mechanism: a large allocation after an odd-sized one is
	// line-aligned under TMI's policy but not under Lockless.
	lockless, _ := newAlloc(LocklessPolicy(), mem.PageSize4K)
	lockless.Alloc(24, 8)
	if addr := lockless.AllocDefault(8192); addr%64 == 0 {
		t.Errorf("lockless large alloc unexpectedly line-aligned: 0x%x", addr)
	}
	tmip, _ := newAlloc(TMIPolicy(), mem.PageSize4K)
	tmip.Alloc(24, 8)
	if addr := tmip.AllocDefault(8192); addr%64 != 0 {
		t.Errorf("tmi large alloc not line-aligned: 0x%x", addr)
	}
	// Small allocations keep the same placement under both policies.
	if l, tm := LocklessPolicy(), TMIPolicy(); l.DefaultAlign != tm.DefaultAlign {
		t.Error("small-object policy should match")
	}
}

func TestBulkAccounting(t *testing.T) {
	a, as := newAlloc(TMIPolicy(), mem.PageSize4K)
	addr := a.AllocBulk(10 << 20)
	if a.BulkBytes != 10<<20 {
		t.Errorf("bulk bytes %d", a.BulkBytes)
	}
	if as.BulkAt(addr) == nil {
		t.Error("bulk region not mapped")
	}
	if got := a.file.Memory().AccountedBytes(); got < 10<<20 {
		t.Errorf("accounted %d, want >= 10MB", got)
	}
	// Second region follows the first.
	addr2 := a.AllocBulk(1 << 20)
	if addr2 < addr+10<<20 {
		t.Error("bulk regions overlap")
	}
}

func TestFaultCostsOrdered(t *testing.T) {
	if !(BackingAnon.FaultCost() < BackingSharedFile.FaultCost() &&
		BackingSharedFile.FaultCost() < BackingSharedHuge.FaultCost()) {
		t.Error("fault costs should order anon < shared file < huge")
	}
}

// Property: writes through one space to allocator memory are visible in
// every registered space (shared heap mapping).
func TestQuickSharedHeapVisibility(t *testing.T) {
	check := func(seed int64) bool {
		a, s1 := newAlloc(TMIPolicy(), mem.PageSize4K)
		s2 := mem.NewAddrSpace(a.file.Memory())
		a.AddSpace(s2)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			addr := a.Alloc(8, 8)
			v := rng.Uint64()
			tr, fault := s1.Translate(addr, true)
			if fault != nil {
				return false
			}
			mem.StoreUint(tr, 8, v)
			tr2, fault := s2.Translate(addr, false)
			if fault != nil || mem.LoadUint(tr2, 8) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFreeListReuse(t *testing.T) {
	a, _ := newAlloc(LocklessPolicy(), mem.PageSize4K)
	p1 := a.Alloc(100, 16) // class 128
	a.Free(p1, 100)
	p2 := a.Alloc(120, 16) // same class: reused
	if p2 != p1 {
		t.Errorf("expected reuse of 0x%x, got 0x%x", p1, p2)
	}
	if a.Reuses != 1 || a.Frees != 1 {
		t.Errorf("stats reuses=%d frees=%d", a.Reuses, a.Frees)
	}
	// A different class does not reuse.
	p3 := a.Alloc(300, 16)
	if p3 == p1 {
		t.Error("cross-class reuse")
	}
}

func TestFreeRespectsAlignment(t *testing.T) {
	a, _ := newAlloc(LocklessPolicy(), mem.PageSize4K)
	p1 := a.Alloc(64, 16)
	if p1%128 == 0 {
		p1 = a.Alloc(64, 16) // ensure a block that is not 128-aligned
	}
	a.Free(p1, 64)
	p2 := a.Alloc(64, 128)
	if p2 == p1 && p1%128 != 0 {
		t.Error("reused a block violating the requested alignment")
	}
}

func TestFreeLargeBlocksAbandoned(t *testing.T) {
	a, _ := newAlloc(LocklessPolicy(), mem.PageSize4K)
	big := a.Alloc(1<<20, 64)
	a.Free(big, 1<<20)
	if a.Frees != 0 {
		t.Error("blocks above MaxClass are not recycled")
	}
	if got := a.Alloc(1<<20, 64); got == big {
		t.Error("large block unexpectedly reused")
	}
}

func TestClassFor(t *testing.T) {
	cases := map[int]int{1: 16, 16: 16, 17: 32, 100: 128, 4096: 4096, 4097: 0, 0: 0, -5: 0}
	for n, want := range cases {
		if got := classFor(n); got != want {
			t.Errorf("classFor(%d) = %d, want %d", n, got, want)
		}
	}
}
