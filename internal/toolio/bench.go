package toolio

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// This file defines the persisted benchmark-trajectory schema: tmibench
// -bench-json writes one BENCH_<date>.json per invocation so every PR
// appends a comparable perf point. It follows the same conventions as
// Report (a tool name plus a flat Stats bag CI can diff without knowing the
// producing tool).

// BenchExperiment is one experiment's row in a benchmark trajectory.
type BenchExperiment struct {
	ID string `json:"id"`
	// WallSeconds is host wall-clock for the whole experiment, submission
	// through rendering.
	WallSeconds float64 `json:"wall_seconds"`
	// Cells is the number of individual simulation runs executed
	// (workload × configuration × seeded repetition).
	Cells int `json:"cells"`
	// BusySeconds sums every cell's individual wall-clock: what the same
	// grid would cost run strictly sequentially.
	BusySeconds float64 `json:"busy_seconds"`
	// Speedup is BusySeconds / WallSeconds — the sweep executor's measured
	// parallel speedup over a sequential run of the same cells.
	Speedup float64 `json:"speedup"`
	// Key simulated metrics, summed over cells, so a trajectory diff can
	// tell "the harness got faster" from "the simulation did less work".
	SimSeconds  float64 `json:"sim_seconds"`
	RecordsSeen uint64  `json:"records_seen"`
	Repairs     int     `json:"repairs"`
}

// BenchReport is the top-level BENCH_<date>.json document.
type BenchReport struct {
	// Version is the schema version (SchemaVersion at write time; older
	// trajectory files without the field read back as version 1).
	Version    int    `json:"version"`
	Tool       string `json:"tool"`
	Date       string `json:"date"` // YYYY-MM-DD
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Workers is the sweep executor's worker count (tmibench -parallel).
	Workers int   `json:"workers"`
	Runs    int   `json:"runs"`
	Seed    int64 `json:"seed"`
	// WallSeconds is the whole invocation, summed over experiments.
	WallSeconds float64           `json:"wall_seconds"`
	Experiments []BenchExperiment `json:"experiments"`
	// Stats carries invocation-wide aggregates under the Report.Stats
	// naming convention ("<metric>" globals).
	Stats map[string]float64 `json:"stats,omitempty"`
}

// NewBenchReport builds an empty trajectory document for one invocation.
func NewBenchReport(date string, workers, runs int, seed int64) *BenchReport {
	return &BenchReport{
		Version:    SchemaVersion,
		Tool:       "tmibench",
		Date:       date,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Runs:       runs,
		Seed:       seed,
		Stats:      map[string]float64{},
	}
}

// Add appends one experiment's row and folds it into the aggregates.
func (r *BenchReport) Add(e BenchExperiment) {
	r.Experiments = append(r.Experiments, e)
	r.WallSeconds += e.WallSeconds
	r.Stats["total_cells"] += float64(e.Cells)
	r.Stats["total_busy_seconds"] += e.BusySeconds
	if r.WallSeconds > 0 {
		r.Stats["speedup"] = r.Stats["total_busy_seconds"] / r.WallSeconds
	}
}

// Write emits the report as indented JSON.
func (r *BenchReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// BenchFileName names the trajectory file for a YYYY-MM-DD date.
func BenchFileName(date string) string {
	return fmt.Sprintf("BENCH_%s.json", date)
}

// benchFileNameN names the n-th same-day trajectory file: the first point
// of a day is BENCH_<date>.json, reruns get BENCH_<date>.2.json, .3.json…
func benchFileNameN(date string, n int) string {
	if n <= 1 {
		return BenchFileName(date)
	}
	return fmt.Sprintf("BENCH_%s.%d.json", date, n)
}

// AutoBenchFileName returns the first unused trajectory file name for date
// (exists reports whether a candidate is taken), so a same-day rerun
// records a new point instead of clobbering a committed one.
func AutoBenchFileName(date string, exists func(string) bool) string {
	n := 1
	for exists(benchFileNameN(date, n)) {
		n++
	}
	return benchFileNameN(date, n)
}

// LatestBenchFileName returns the newest existing trajectory file for date,
// or the day's first file name if none exists yet — the file a same-day
// append (tmimicro) should fold into.
func LatestBenchFileName(date string, exists func(string) bool) string {
	last := benchFileNameN(date, 1)
	for n := 2; exists(benchFileNameN(date, n)); n++ {
		last = benchFileNameN(date, n)
	}
	return last
}

// ReadBenchReport parses a trajectory document (for tests and trajectory
// diff tooling).
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if r.Tool != "tmibench" {
		return nil, fmt.Errorf("toolio: not a tmibench trajectory (tool %q)", r.Tool)
	}
	v, err := checkVersion("trajectory", r.Version)
	if err != nil {
		return nil, err
	}
	r.Version = v
	return &r, nil
}
