package toolio

import (
	"encoding/json"
	"fmt"
)

// This file defines tmid's NDJSON wire schema: the streaming ingest format
// a client (cmd/tmiload, or an embedded runtime's exporter) speaks to the
// detection service, and the per-tick advice format the service streams
// back. One JSON object per line, discriminated by the one-byte "k" field.
// The schema is versioned by SchemaVersion, carried in the hello, so the
// wire format and the tool-output documents share a single version axis.
//
// A stream is:
//
//	→ {"k":"h","v":1,"tenant":"run-42","page_size":4096}
//	→ {"k":"s","s":[[tid,addr,width,write01],...]}   (any number)
//	→ {"k":"t","seq":0,"interval":0.0001,"period":100}
//	← {"k":"a","seq":0,"records":37,"next_period":100,...}
//	→ ... more sample/tick rounds ...
//
// Samples are packed as [tid, addr, width, write] integer quads rather than
// keyed objects: a load replay pushes 10^5..10^7 of them per client, and the
// quad form keeps the encode/decode cost per record small without leaving
// JSON (the paper's detector consumes resolved address/width/kind tuples —
// exactly this payload — once disassembly has run client-side).
const (
	WireHelloKind   = "h"
	WireSamplesKind = "s"
	WireTickKind    = "t"
	WireAdviceKind  = "a"
	WireErrorKind   = "e"
)

// WireHello opens a stream: schema version, tenant identity (the sharding
// key — one detector session exists per tenant), and the tenant's page size
// (advice pages are page-aligned in it). Wire negotiates the encoding of
// the rest of the request body: "" or "ndjson" keeps NDJSON lines, "binary"
// switches to the columnar batch frames defined in wirebin.go (the hello
// itself and the advice stream back are always NDJSON).
type WireHello struct {
	K        string `json:"k"`
	Version  int    `json:"v"`
	Tenant   string `json:"tenant"`
	PageSize int    `json:"page_size"`
	Wire     string `json:"wire,omitempty"`
}

// WireSamples carries a batch of resolved samples, each packed as
// [tid, addr, width, write(0/1)].
type WireSamples struct {
	K string      `json:"k"`
	S [][4]uint64 `json:"s"`
}

// WireTick closes the current analysis window: all samples since the
// previous tick were collected over IntervalSec simulated seconds at the
// given sampling period. Seq numbers ticks from 0 within the stream.
type WireTick struct {
	K           string  `json:"k"`
	Seq         int     `json:"seq"`
	IntervalSec float64 `json:"interval"`
	Period      int     `json:"period"`
}

// WireLine is one classified cache line in an advice message.
type WireLine struct {
	Line         uint64  `json:"line"`
	Class        string  `json:"class"`
	Records      int     `json:"records"`
	EstPerSec    float64 `json:"est_per_sec"`
	DroppedSpans int     `json:"dropped_spans,omitempty"`
}

// WireAdvice is the service's per-tick reply: the pages to isolate (the
// offline detector's repair request, page-aligned) with the lines that
// crossed the threshold, plus NextPeriod — the adaptive sampling-period
// feedback the client should program before the next window. Backend is
// the service's repair-strategy recommendation for the flagged pages
// (schema v2; present only when a recommendation policy is configured and
// the advice carries pages — it is additive and never perturbs the other
// fields).
type WireAdvice struct {
	K          string     `json:"k"`
	Seq        int        `json:"seq"`
	Records    uint64     `json:"records"`
	NextPeriod int        `json:"next_period"`
	Backend    string     `json:"backend,omitempty"`
	Pages      []uint64   `json:"pages,omitempty"`
	Lines      []WireLine `json:"lines,omitempty"`
}

// WireError aborts a stream (overload mid-stream, malformed input). RetryMs
// > 0 invites the client to retry after that backoff.
type WireError struct {
	K       string `json:"k"`
	Error   string `json:"error"`
	RetryMs int    `json:"retry_ms,omitempty"`
}

// WireMsg is the decode-side union of every message kind: NDJSON lines are
// decoded into it and dispatched on K.
type WireMsg struct {
	K           string      `json:"k"`
	Version     int         `json:"v,omitempty"`
	Tenant      string      `json:"tenant,omitempty"`
	PageSize    int         `json:"page_size,omitempty"`
	Wire        string      `json:"wire,omitempty"`
	S           [][4]uint64 `json:"s,omitempty"`
	Seq         int         `json:"seq,omitempty"`
	IntervalSec float64     `json:"interval,omitempty"`
	Period      int         `json:"period,omitempty"`
	Records     uint64      `json:"records,omitempty"`
	NextPeriod  int         `json:"next_period,omitempty"`
	Backend     string      `json:"backend,omitempty"`
	Pages       []uint64    `json:"pages,omitempty"`
	Lines       []WireLine  `json:"lines,omitempty"`
	Error       string      `json:"error,omitempty"`
	RetryMs     int         `json:"retry_ms,omitempty"`
}

// DecodeWireMsg parses one NDJSON line. Sample quads and tick sequence
// numbers are range-checked here — samples cross the trust boundary as raw
// integers, and the same limits the binary decoder enforces per column
// (MaxWireTID, MaxWireWidth, MaxWireBatch) apply to the quad form, so a
// hostile quad like tid=2^63 is a decode error in both codecs rather than
// a negative thread ID inside the detector.
func DecodeWireMsg(line []byte) (*WireMsg, error) {
	var m WireMsg
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("toolio: bad wire line: %w", err)
	}
	switch m.K {
	case "":
		return nil, fmt.Errorf("toolio: wire line without kind")
	case WireSamplesKind:
		if len(m.S) > MaxWireBatch {
			return nil, fmt.Errorf("toolio: samples batch of %d records exceeds batch cap %d", len(m.S), MaxWireBatch)
		}
		for i, q := range m.S {
			if err := ValidateQuad(q); err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
		}
	case WireTickKind:
		if m.Seq < 0 {
			return nil, fmt.Errorf("toolio: tick seq %d is negative", m.Seq)
		}
	}
	return &m, nil
}

// EncodeWire marshals any wire message struct as one NDJSON line,
// newline-terminated. Marshaling is deterministic (struct field order), so
// two producers rendering the same advice produce identical bytes — the
// property the tmid/offline parity check rests on.
func EncodeWire(msg any) []byte {
	b, err := json.Marshal(msg)
	if err != nil {
		// All wire structs are plain data; a marshal failure is a programming
		// error, not an input error.
		panic(fmt.Sprintf("toolio: wire marshal: %v", err))
	}
	return append(b, '\n')
}
