package toolio

// The tmivet report schema: source-level false-sharing findings over real
// Go packages, graded by the simulator confirmation bridge. tmivet shares
// this package with tmilint and tmimc so CI consumes one version axis —
// VetReport carries the same SchemaVersion stamp, legacy-0 normalization
// and future-version rejection as the checker Report.

import (
	"encoding/json"
	"fmt"
	"io"
)

// Confirmation grades for a VetFinding, mirroring tmilint's recall
// comparison vocabulary: a finding is "confirmed" when the synthesized
// workload reproduced false sharing under the dynamic PEBS/HITM detector,
// "static-only" when only the layout model flags it, and "skipped" when
// the bridge was disabled or the finding was waived.
const (
	ConfirmConfirmed  = "confirmed"
	ConfirmStaticOnly = "static-only"
	ConfirmSkipped    = "skipped"
)

// VetRepair is one proposed source edit: a padding insertion ("pad",
// `_ [Bytes]byte` after field After) or an advisory field reordering
// ("reorder", Detail lists the new order). Struct names the type or
// variable the edit applies to.
type VetRepair struct {
	Kind   string `json:"kind"`
	Struct string `json:"struct"`
	After  string `json:"after,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// VetFinding is one flagged cache line of one region (a struct type or a
// package-level/escaping variable) in real Go source.
type VetFinding struct {
	// ID is the stable waiver key: "<pkg>:<region>:line<N>".
	ID string `json:"id"`
	// Pkg is the package directory relative to the scan root.
	Pkg string `json:"pkg"`
	// Region names the flagged struct type or variable.
	Region string `json:"region"`
	// File/Line locate the region's declaration.
	File string `json:"file"`
	Line int    `json:"line"`
	// CacheLine is the 64-byte line index within the region's layout.
	CacheLine int `json:"cache_line"`
	// Writers describes the inferred per-goroutine writers on the line.
	Writers []string `json:"writers"`
	// Spans renders the disjoint byte ranges, e.g. "0-7 vs 8-15".
	Spans string `json:"spans,omitempty"`
	// Confirmation is one of the Confirm* grades.
	Confirmation string `json:"confirmation"`
	// Waived marks a finding suppressed by the waiver file; waived
	// findings do not fail the run.
	Waived bool `json:"waived,omitempty"`
	// Repairs are the computed source edits that would isolate the
	// writers onto private lines.
	Repairs []VetRepair `json:"repairs,omitempty"`
}

// VetReport is the top-level document `tmivet -json` emits.
type VetReport struct {
	// Version is the schema version (SchemaVersion at write time).
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// OK is true iff every finding is waived — the bit CI gates on.
	OK       bool         `json:"ok"`
	Findings []VetFinding `json:"findings"`
	// Stats carries scan counters (packages, regions, wall_seconds, ...).
	Stats map[string]float64 `json:"stats,omitempty"`
}

// NewVetReport builds an empty, passing tmivet report.
func NewVetReport(tool string) *VetReport {
	return &VetReport{Version: SchemaVersion, Tool: tool, OK: true, Findings: []VetFinding{}, Stats: map[string]float64{}}
}

// Add appends a finding and recomputes the verdict: any unwaived finding
// flips OK off.
func (r *VetReport) Add(f VetFinding) {
	r.Findings = append(r.Findings, f)
	if !f.Waived {
		r.OK = false
	}
}

// AddStat records one numeric stat.
func (r *VetReport) AddStat(key string, v float64) { r.Stats[key] = v }

// Write emits the report as indented JSON.
func (r *VetReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadVetReport parses a tmivet report, normalizing pre-versioning
// documents and rejecting ones newer than this tool understands.
func ReadVetReport(rd io.Reader) (*VetReport, error) {
	var r VetReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	v, err := checkVersion("vet report", r.Version)
	if err != nil {
		return nil, err
	}
	r.Version = v
	return &r, nil
}

// Grade validates a confirmation grade string.
func Grade(s string) (string, error) {
	switch s {
	case ConfirmConfirmed, ConfirmStaticOnly, ConfirmSkipped:
		return s, nil
	}
	return "", fmt.Errorf("toolio: unknown confirmation grade %q", s)
}
