package toolio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file defines the binary half of tmid's wire protocol: a versioned,
// length-prefixed, little-endian columnar batch frame that replaces the
// NDJSON sample quads on the ingest hot path. The hello line stays NDJSON —
// it is the negotiation point (WireHello.Wire chooses the encoding for the
// rest of the request body) — and the advice stream coming back stays
// NDJSON too, so the offline/online parity check keeps comparing the exact
// same bytes regardless of how samples travelled.
//
// Frame layout (all integers little-endian):
//
//	offset 0: 'T'                      magic
//	offset 1: 'M'                      magic
//	offset 2: version (WireBinVersion)
//	offset 3: kind ('s' samples | 't' tick)
//	offset 4: payload length, uint32
//	offset 8: payload
//
// Samples payload — four contiguous columns, so the decoder runs one tight
// loop per column instead of one branchy object decode per record:
//
//	count  uint32
//	tid    count x uint32
//	addr   count x uint64
//	width  count x uint16
//	write  count x uint8   (0 or 1)
//
// Tick payload — fixed 24 bytes:
//
//	seq      int64   (>= 0)
//	interval float64 (IEEE-754 bits)
//	period   int64
//
// Unknown magic, frame versions newer than WireBinVersion, unknown kinds,
// truncated frames and payloads exceeding the frame cap are all rejected at
// decode, exactly like SchemaVersion mismatches on the NDJSON side: a
// malformed producer gets an error, never a misread batch.
const (
	// WireBinVersion is the binary frame format version. It rides the same
	// compatibility policy as SchemaVersion: frames newer than this reader
	// are rejected, never misread.
	WireBinVersion = 1

	wireBinMagic0 = 'T'
	wireBinMagic1 = 'M'

	binHeaderSize  = 8
	binTickPayload = 24

	// bytesPerSample is one record's footprint across the four columns.
	bytesPerSample = 4 + 8 + 2 + 1
)

// Wire format names carried in WireHello.Wire. Empty means NDJSON (the
// pre-negotiation default, so old clients keep working unchanged).
const (
	WireFormatNDJSON = "ndjson"
	WireFormatBinary = "binary"
)

// Wire-boundary validation limits, shared by both codecs. Samples cross the
// trust boundary as raw integers; without these caps a hostile quad like
// tid=2^63 would truncate to a negative int inside the detector.
const (
	// MaxWireTID bounds a sample's thread ID (a power-of-two mask so the
	// columnar decoder can validate a whole column branch-free with one OR
	// accumulator).
	MaxWireTID = 1<<20 - 1
	// MaxWireWidth bounds a sample's access width: nothing wider than one
	// cache line is a meaningful HITM footprint.
	MaxWireWidth = 64
	// MaxWireBatch bounds the records in one samples message/frame.
	MaxWireBatch = 1 << 16
	// MaxWireLine bounds one NDJSON wire line and one binary frame payload.
	// A batch of MaxWireBatch samples fits comfortably; anything larger is
	// a protocol violation, not load.
	MaxWireLine = 8 << 20
	// MinWirePageSize is the smallest hello page size accepted. The
	// detector's per-page stat chunks assume at least linesPerChunk (64)
	// cache lines per page; a smaller page would index an empty chunk
	// table and panic the owning shard.
	MinWirePageSize = 4096
	// MaxWirePageSize is the largest hello page size accepted (1 GiB huge
	// pages).
	MaxWirePageSize = 1 << 30
)

// ValidateQuad range-checks one NDJSON sample quad [tid, addr, width,
// write]. Both codecs enforce the same ranges; this is the quad-side
// entry point (the columnar decoder validates per column).
func ValidateQuad(q [4]uint64) error {
	if q[0] > MaxWireTID {
		return fmt.Errorf("toolio: sample tid %d out of range [0,%d]", q[0], uint64(MaxWireTID))
	}
	if q[2]-1 >= MaxWireWidth { // rejects 0 (wraps) and > MaxWireWidth
		return fmt.Errorf("toolio: sample width %d out of range [1,%d]", q[2], MaxWireWidth)
	}
	if q[3] > 1 {
		return fmt.Errorf("toolio: sample write flag %d is not 0 or 1", q[3])
	}
	return nil
}

// CheckHello validates a decoded hello message: schema version, tenant,
// page size and the negotiated wire format. PageSize 0 is allowed (the
// service substitutes its default); otherwise it must be a power of two in
// [MinWirePageSize, MaxWirePageSize].
func CheckHello(m *WireMsg) error {
	if m.K != WireHelloKind {
		return fmt.Errorf("toolio: first line must be a hello")
	}
	if _, err := checkVersion("wire hello", m.Version); err != nil {
		return err
	}
	if m.Tenant == "" {
		return fmt.Errorf("toolio: hello without tenant")
	}
	if ps := m.PageSize; ps != 0 {
		if ps < MinWirePageSize || ps > MaxWirePageSize || ps&(ps-1) != 0 {
			return fmt.Errorf("toolio: hello page size %d is not a power of two in [%d,%d]", ps, MinWirePageSize, MaxWirePageSize)
		}
	}
	switch m.Wire {
	case "", WireFormatNDJSON, WireFormatBinary:
	default:
		return fmt.Errorf("toolio: unknown wire format %q (want %q or %q)", m.Wire, WireFormatNDJSON, WireFormatBinary)
	}
	return nil
}

// SampleColumns is a columnar sample batch: the decoded form of one binary
// samples frame, and the encoder's input. All four slices share one length.
type SampleColumns struct {
	TID   []uint32
	Addr  []uint64
	Width []uint16
	Write []uint8
}

// Len reports the number of samples in the batch.
func (c *SampleColumns) Len() int { return len(c.TID) }

// Reset empties the batch, keeping capacity.
func (c *SampleColumns) Reset() {
	c.TID, c.Addr, c.Width, c.Write = c.TID[:0], c.Addr[:0], c.Width[:0], c.Write[:0]
}

// Append adds one sample to the batch. Values are the caller's
// responsibility to keep in range (the encoder re-checks nothing; the
// decoder on the far side does).
func (c *SampleColumns) Append(tid uint32, addr uint64, width uint16, write bool) {
	var w uint8
	if write {
		w = 1
	}
	c.TID = append(c.TID, tid)
	c.Addr = append(c.Addr, addr)
	c.Width = append(c.Width, width)
	c.Write = append(c.Write, w)
}

// Grow resizes the batch to n samples, reusing capacity; the column
// contents are unspecified. Bulk producers (the replay client's
// batch-conversion loop) size once and write the columns by index, which
// is measurably cheaper than per-record Append on the ingest hot path.
func (c *SampleColumns) Grow(n int) { c.grow(n) }

// grow resizes the columns to n samples, reusing capacity.
func (c *SampleColumns) grow(n int) {
	if cap(c.TID) < n {
		c.TID = make([]uint32, n)
		c.Addr = make([]uint64, n)
		c.Width = make([]uint16, n)
		c.Write = make([]uint8, n)
		return
	}
	c.TID, c.Addr, c.Width, c.Write = c.TID[:n], c.Addr[:n], c.Width[:n], c.Write[:n]
}

// BinWriter encodes binary wire frames onto w, reusing one scratch buffer
// across frames so a long-lived stream writer allocates nothing per batch.
type BinWriter struct {
	w   io.Writer
	buf []byte
}

// NewBinWriter returns a frame encoder writing to w.
func NewBinWriter(w io.Writer) *BinWriter { return &BinWriter{w: w} }

func (bw *BinWriter) frame(kind byte, payloadLen int) []byte {
	need := binHeaderSize + payloadLen
	if cap(bw.buf) < need {
		bw.buf = make([]byte, need)
	}
	b := bw.buf[:need]
	b[0], b[1], b[2], b[3] = wireBinMagic0, wireBinMagic1, WireBinVersion, kind
	binary.LittleEndian.PutUint32(b[4:], uint32(payloadLen))
	return b
}

// WriteSamples encodes one columnar samples frame.
func (bw *BinWriter) WriteSamples(c *SampleColumns) error {
	n := c.Len()
	if n > MaxWireBatch {
		return fmt.Errorf("toolio: samples frame of %d records exceeds batch cap %d", n, MaxWireBatch)
	}
	b := bw.frame(WireSamplesKind[0], 4+n*bytesPerSample)
	p := b[binHeaderSize:]
	binary.LittleEndian.PutUint32(p, uint32(n))
	off := 4
	for _, v := range c.TID {
		binary.LittleEndian.PutUint32(p[off:], v)
		off += 4
	}
	for _, v := range c.Addr {
		binary.LittleEndian.PutUint64(p[off:], v)
		off += 8
	}
	for _, v := range c.Width {
		binary.LittleEndian.PutUint16(p[off:], v)
		off += 2
	}
	copy(p[off:], c.Write)
	_, err := bw.w.Write(b)
	return err
}

// WriteTick encodes one tick frame.
func (bw *BinWriter) WriteTick(t WireTick) error {
	b := bw.frame(WireTickKind[0], binTickPayload)
	p := b[binHeaderSize:]
	binary.LittleEndian.PutUint64(p[0:], uint64(t.Seq))
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(t.IntervalSec))
	binary.LittleEndian.PutUint64(p[16:], uint64(t.Period))
	_, err := bw.w.Write(b)
	return err
}

// BinFrame is one decoded binary frame. Samples points at the reader's
// reused columns and is valid only until the next ReadFrame call; callers
// that hand the batch elsewhere must copy it out first (the tmid ingest
// path copies straight into its recycled per-stream sample buffers).
type BinFrame struct {
	// Kind is WireSamplesKind[0] or WireTickKind[0].
	Kind byte
	// Samples is the decoded batch for a samples frame.
	Samples *SampleColumns
	// Tick is the decoded tick for a tick frame.
	Tick WireTick
}

// BinReader decodes binary wire frames from r. The frame payload buffer and
// the sample columns are owned by the reader and reused across frames, so
// steady-state decode allocates nothing (guarded by testing.AllocsPerRun).
type BinReader struct {
	r io.Reader
	// MaxPayload caps one frame's payload (0 means MaxWireLine).
	MaxPayload int
	// MaxBatch caps one samples frame's record count (0 means
	// MaxWireBatch).
	MaxBatch int

	hdr     [binHeaderSize]byte
	payload []byte
	cols    SampleColumns
	frame   BinFrame
}

// NewBinReader returns a frame decoder reading from r.
func NewBinReader(r io.Reader) *BinReader { return &BinReader{r: r} }

// Reset repoints the reader at a new stream, keeping its buffers.
func (br *BinReader) Reset(r io.Reader) { br.r = r }

// ReadFrame decodes the next frame. It returns io.EOF at a clean stream
// end (between frames) and a descriptive error for truncated, oversized,
// unversioned or out-of-range input. The returned frame's sample columns
// are reused by the next call.
func (br *BinReader) ReadFrame() (*BinFrame, error) {
	if _, err := io.ReadFull(br.r, br.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("toolio: truncated frame header: %w", err)
	}
	if br.hdr[0] != wireBinMagic0 || br.hdr[1] != wireBinMagic1 {
		return nil, fmt.Errorf("toolio: bad frame magic 0x%02x%02x", br.hdr[0], br.hdr[1])
	}
	if v := int(br.hdr[2]); v != WireBinVersion {
		return nil, fmt.Errorf("toolio: frame version %d, this reader speaks %d", v, WireBinVersion)
	}
	kind := br.hdr[3]
	n := int(binary.LittleEndian.Uint32(br.hdr[4:]))
	maxPayload := br.MaxPayload
	if maxPayload <= 0 {
		maxPayload = MaxWireLine
	}
	if n > maxPayload {
		return nil, fmt.Errorf("toolio: frame payload %d exceeds cap %d", n, maxPayload)
	}
	if cap(br.payload) < n {
		br.payload = make([]byte, n)
	}
	p := br.payload[:n]
	if _, err := io.ReadFull(br.r, p); err != nil {
		return nil, fmt.Errorf("toolio: truncated frame payload (%d of %d bytes): %w", 0, n, err)
	}
	switch kind {
	case WireSamplesKind[0]:
		if err := br.decodeSamples(p); err != nil {
			return nil, err
		}
		br.frame = BinFrame{Kind: kind, Samples: &br.cols}
	case WireTickKind[0]:
		tick, err := decodeTick(p)
		if err != nil {
			return nil, err
		}
		br.frame = BinFrame{Kind: kind, Tick: tick}
	default:
		return nil, fmt.Errorf("toolio: unknown frame kind 0x%02x", kind)
	}
	return &br.frame, nil
}

// decodeSamples unpacks the four columns, validating each column with an
// OR accumulator instead of a per-record branch: MaxWireTID is a bit mask,
// width-1 must fit in 6 bits and the write byte in 1, so a single OR of
// the out-of-range bits over the whole column catches any violation.
func (br *BinReader) decodeSamples(p []byte) error {
	if len(p) < 4 {
		return fmt.Errorf("toolio: samples frame payload %d bytes, want at least 4", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	maxBatch := br.MaxBatch
	if maxBatch <= 0 {
		maxBatch = MaxWireBatch
	}
	if n > maxBatch {
		return fmt.Errorf("toolio: samples frame of %d records exceeds batch cap %d", n, maxBatch)
	}
	if want := 4 + n*bytesPerSample; len(p) != want {
		return fmt.Errorf("toolio: samples frame of %d records has %d payload bytes, want %d", n, len(p), want)
	}
	br.cols.grow(n)
	c := &br.cols

	var badTID uint32
	tids := p[4 : 4+4*n]
	for i := range c.TID {
		v := binary.LittleEndian.Uint32(tids[4*i:])
		c.TID[i] = v
		badTID |= v &^ MaxWireTID
	}
	addrs := p[4+4*n : 4+12*n]
	for i := range c.Addr {
		c.Addr[i] = binary.LittleEndian.Uint64(addrs[8*i:])
	}
	var badWidth uint16
	widths := p[4+12*n : 4+14*n]
	for i := range c.Width {
		v := binary.LittleEndian.Uint16(widths[2*i:])
		c.Width[i] = v
		badWidth |= (v - 1) &^ (MaxWireWidth - 1)
	}
	var badWrite uint8
	writes := p[4+14*n : 4+15*n]
	for i := range c.Write {
		v := writes[i]
		c.Write[i] = v
		badWrite |= v &^ 1
	}
	if badTID != 0 {
		return fmt.Errorf("toolio: samples frame carries a tid out of range [0,%d]", uint64(MaxWireTID))
	}
	if badWidth != 0 {
		return fmt.Errorf("toolio: samples frame carries a width out of range [1,%d]", MaxWireWidth)
	}
	if badWrite != 0 {
		return fmt.Errorf("toolio: samples frame carries a write flag that is not 0 or 1")
	}
	return nil
}

func decodeTick(p []byte) (WireTick, error) {
	if len(p) != binTickPayload {
		return WireTick{}, fmt.Errorf("toolio: tick frame payload %d bytes, want %d", len(p), binTickPayload)
	}
	t := WireTick{
		K:           WireTickKind,
		Seq:         int(int64(binary.LittleEndian.Uint64(p[0:]))),
		IntervalSec: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		Period:      int(int64(binary.LittleEndian.Uint64(p[16:]))),
	}
	if t.Seq < 0 {
		return WireTick{}, fmt.Errorf("toolio: tick seq %d is negative", t.Seq)
	}
	return t, nil
}
