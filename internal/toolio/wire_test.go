package toolio

import (
	"bytes"
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	msgs := []any{
		WireHello{K: WireHelloKind, Version: SchemaVersion, Tenant: "run-42", PageSize: 4096},
		WireSamples{K: WireSamplesKind, S: [][4]uint64{{3, 0x7f001040, 8, 1}, {0, 0x7f001048, 4, 0}}},
		WireTick{K: WireTickKind, Seq: 7, IntervalSec: 0.0001, Period: 100},
		WireAdvice{
			K: WireAdviceKind, Seq: 7, Records: 37, NextPeriod: 400,
			Pages: []uint64{0x7f000000},
			Lines: []WireLine{{Line: 0x7f001040, Class: "false", Records: 37, EstPerSec: 3.7e5, DroppedSpans: 1}},
		},
		WireError{K: WireErrorKind, Error: "shard overloaded, batch dropped", RetryMs: 1000},
	}
	for _, msg := range msgs {
		line := EncodeWire(msg)
		if !bytes.HasSuffix(line, []byte("\n")) {
			t.Fatalf("%T: encoded line not newline-terminated: %q", msg, line)
		}
		m, err := DecodeWireMsg(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		switch want := msg.(type) {
		case WireHello:
			if m.K != want.K || m.Version != want.Version || m.Tenant != want.Tenant || m.PageSize != want.PageSize {
				t.Errorf("hello did not round-trip: %+v", m)
			}
		case WireSamples:
			if m.K != want.K || len(m.S) != len(want.S) || m.S[0] != want.S[0] || m.S[1] != want.S[1] {
				t.Errorf("samples did not round-trip: %+v", m)
			}
		case WireTick:
			if m.K != want.K || m.Seq != want.Seq || m.IntervalSec != want.IntervalSec || m.Period != want.Period {
				t.Errorf("tick did not round-trip: %+v", m)
			}
		case WireAdvice:
			if m.K != want.K || m.Seq != want.Seq || m.Records != want.Records || m.NextPeriod != want.NextPeriod ||
				len(m.Pages) != 1 || m.Pages[0] != want.Pages[0] || len(m.Lines) != 1 || m.Lines[0] != want.Lines[0] {
				t.Errorf("advice did not round-trip: %+v", m)
			}
		case WireError:
			if m.K != want.K || m.Error != want.Error || m.RetryMs != want.RetryMs {
				t.Errorf("error did not round-trip: %+v", m)
			}
		}
	}
}

func TestWireEncodingIsDeterministic(t *testing.T) {
	adv := WireAdvice{K: WireAdviceKind, Seq: 1, Records: 5, NextPeriod: 100, Pages: []uint64{4096}}
	a, b := EncodeWire(adv), EncodeWire(adv)
	if !bytes.Equal(a, b) {
		t.Errorf("two encodings of the same advice differ: %q vs %q", a, b)
	}
}

func TestDecodeWireMsgRejectsKindless(t *testing.T) {
	if _, err := DecodeWireMsg([]byte(`{"seq":1}`)); err == nil {
		t.Error("accepted a wire line without a kind")
	}
	if _, err := DecodeWireMsg([]byte(`{`)); err == nil {
		t.Error("accepted malformed JSON")
	}
}

func TestReportVersionRoundTrip(t *testing.T) {
	r := NewReport("tmilint")
	if r.Version != SchemaVersion {
		t.Fatalf("NewReport version = %d, want %d", r.Version, SchemaVersion)
	}
	r.Add(Finding{Workload: "histogramfs", Rule: "region-balance", Detail: "unbalanced"})
	r.AddStat("runs", 3)

	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != SchemaVersion || back.Tool != "tmilint" || back.OK || len(back.Findings) != 1 {
		t.Errorf("report did not round-trip: %+v", back)
	}
	if back.Findings[0].Rule != "region-balance" || back.Stats["runs"] != 3 {
		t.Errorf("payload did not round-trip: %+v", back)
	}
}

func TestReadReportVersionHandling(t *testing.T) {
	// Pre-versioning documents (no version field) read as version 1.
	back, err := ReadReport(strings.NewReader(`{"tool":"tmimc","ok":true,"findings":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 {
		t.Errorf("legacy document version = %d, want 1", back.Version)
	}
	// Documents newer than this tool are rejected, not misread.
	if _, err := ReadReport(strings.NewReader(`{"version":99,"tool":"tmimc","ok":true}`)); err == nil {
		t.Error("accepted a document with a future schema version")
	}
}

func TestBenchReportVersionRoundTrip(t *testing.T) {
	r := NewBenchReport("2026-08-05", 8, 3, 1)
	if r.Version != SchemaVersion {
		t.Fatalf("NewBenchReport version = %d, want %d", r.Version, SchemaVersion)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != SchemaVersion {
		t.Errorf("bench report version = %d, want %d", back.Version, SchemaVersion)
	}
	if _, err := ReadBenchReport(strings.NewReader(`{"version":99,"tool":"tmibench"}`)); err == nil {
		t.Error("accepted a bench report with a future schema version")
	}
}
