package toolio

import (
	"bytes"
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	msgs := []any{
		WireHello{K: WireHelloKind, Version: SchemaVersion, Tenant: "run-42", PageSize: 4096},
		WireSamples{K: WireSamplesKind, S: [][4]uint64{{3, 0x7f001040, 8, 1}, {0, 0x7f001048, 4, 0}}},
		WireTick{K: WireTickKind, Seq: 7, IntervalSec: 0.0001, Period: 100},
		WireAdvice{
			K: WireAdviceKind, Seq: 7, Records: 37, NextPeriod: 400,
			Backend: "tmebox",
			Pages:   []uint64{0x7f000000},
			Lines:   []WireLine{{Line: 0x7f001040, Class: "false", Records: 37, EstPerSec: 3.7e5, DroppedSpans: 1}},
		},
		WireError{K: WireErrorKind, Error: "shard overloaded, batch dropped", RetryMs: 1000},
	}
	for _, msg := range msgs {
		line := EncodeWire(msg)
		if !bytes.HasSuffix(line, []byte("\n")) {
			t.Fatalf("%T: encoded line not newline-terminated: %q", msg, line)
		}
		m, err := DecodeWireMsg(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		switch want := msg.(type) {
		case WireHello:
			if m.K != want.K || m.Version != want.Version || m.Tenant != want.Tenant || m.PageSize != want.PageSize {
				t.Errorf("hello did not round-trip: %+v", m)
			}
		case WireSamples:
			if m.K != want.K || len(m.S) != len(want.S) || m.S[0] != want.S[0] || m.S[1] != want.S[1] {
				t.Errorf("samples did not round-trip: %+v", m)
			}
		case WireTick:
			if m.K != want.K || m.Seq != want.Seq || m.IntervalSec != want.IntervalSec || m.Period != want.Period {
				t.Errorf("tick did not round-trip: %+v", m)
			}
		case WireAdvice:
			if m.K != want.K || m.Seq != want.Seq || m.Records != want.Records || m.NextPeriod != want.NextPeriod ||
				m.Backend != want.Backend ||
				len(m.Pages) != 1 || m.Pages[0] != want.Pages[0] || len(m.Lines) != 1 || m.Lines[0] != want.Lines[0] {
				t.Errorf("advice did not round-trip: %+v", m)
			}
		case WireError:
			if m.K != want.K || m.Error != want.Error || m.RetryMs != want.RetryMs {
				t.Errorf("error did not round-trip: %+v", m)
			}
		}
	}
}

// TestAdviceBackendFieldIsAdditive pins the v2 compatibility contract: an
// advice without a backend recommendation encodes with no "backend" key at
// all (byte-identical to schema v1 advice), a v1 decoder's union reads a
// v2 advice-with-backend line without error, and hellos follow the same
// version policy as documents — legacy 0 reads as 1, anything up to
// SchemaVersion is accepted, newer is rejected.
func TestAdviceBackendFieldIsAdditive(t *testing.T) {
	plain := WireAdvice{K: WireAdviceKind, Seq: 3, Records: 12, NextPeriod: 100, Pages: []uint64{4096}}
	if line := EncodeWire(plain); bytes.Contains(line, []byte("backend")) {
		t.Errorf("advice without recommendation must omit the backend key: %q", line)
	}
	rec := plain
	rec.Backend = "pad"
	line := EncodeWire(rec)
	m, err := DecodeWireMsg(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.Backend != "pad" || m.Seq != 3 || len(m.Pages) != 1 {
		t.Errorf("backend advice did not round-trip: %+v", m)
	}
	// A v1 reader ignores unknown keys: the same line minus our knowledge
	// of the field still decodes (encoding/json drops unknown fields).
	if _, err := DecodeWireMsg([]byte(`{"k":"a","seq":3,"backend":"pad","future_field":true}`)); err != nil {
		t.Errorf("decoder must tolerate unknown advice fields: %v", err)
	}
}

func TestHelloVersionHandling(t *testing.T) {
	check := func(line string) error {
		m, err := DecodeWireMsg([]byte(line))
		if err != nil {
			return err
		}
		return CheckHello(m)
	}
	// Legacy version-0 (pre-versioning) and every version up to the
	// current schema are accepted.
	if err := check(`{"k":"h","tenant":"legacy","page_size":4096}`); err != nil {
		t.Errorf("legacy version-0 hello rejected: %v", err)
	}
	if err := check(`{"k":"h","v":1,"tenant":"v1-client","page_size":4096}`); err != nil {
		t.Errorf("version-1 hello rejected: %v", err)
	}
	if err := check(`{"k":"h","v":2,"tenant":"v2-client","page_size":4096}`); err != nil {
		t.Errorf("current-version hello rejected: %v", err)
	}
	// Futures are rejected, not misread.
	if err := check(`{"k":"h","v":99,"tenant":"time-traveler"}`); err == nil {
		t.Error("accepted a hello with a future schema version")
	}
}

func TestWireEncodingIsDeterministic(t *testing.T) {
	adv := WireAdvice{K: WireAdviceKind, Seq: 1, Records: 5, NextPeriod: 100, Pages: []uint64{4096}}
	a, b := EncodeWire(adv), EncodeWire(adv)
	if !bytes.Equal(a, b) {
		t.Errorf("two encodings of the same advice differ: %q vs %q", a, b)
	}
}

func TestDecodeWireMsgRejectsKindless(t *testing.T) {
	if _, err := DecodeWireMsg([]byte(`{"seq":1}`)); err == nil {
		t.Error("accepted a wire line without a kind")
	}
	if _, err := DecodeWireMsg([]byte(`{`)); err == nil {
		t.Error("accepted malformed JSON")
	}
}

func TestReportVersionRoundTrip(t *testing.T) {
	r := NewReport("tmilint")
	if r.Version != SchemaVersion {
		t.Fatalf("NewReport version = %d, want %d", r.Version, SchemaVersion)
	}
	r.Add(Finding{Workload: "histogramfs", Rule: "region-balance", Detail: "unbalanced"})
	r.AddStat("runs", 3)

	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != SchemaVersion || back.Tool != "tmilint" || back.OK || len(back.Findings) != 1 {
		t.Errorf("report did not round-trip: %+v", back)
	}
	if back.Findings[0].Rule != "region-balance" || back.Stats["runs"] != 3 {
		t.Errorf("payload did not round-trip: %+v", back)
	}
}

func TestReadReportVersionHandling(t *testing.T) {
	// Pre-versioning documents (no version field) read as version 1.
	back, err := ReadReport(strings.NewReader(`{"tool":"tmimc","ok":true,"findings":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 {
		t.Errorf("legacy document version = %d, want 1", back.Version)
	}
	// Documents newer than this tool are rejected, not misread.
	if _, err := ReadReport(strings.NewReader(`{"version":99,"tool":"tmimc","ok":true}`)); err == nil {
		t.Error("accepted a document with a future schema version")
	}
}

func TestBenchReportVersionRoundTrip(t *testing.T) {
	r := NewBenchReport("2026-08-05", 8, 3, 1)
	if r.Version != SchemaVersion {
		t.Fatalf("NewBenchReport version = %d, want %d", r.Version, SchemaVersion)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != SchemaVersion {
		t.Errorf("bench report version = %d, want %d", back.Version, SchemaVersion)
	}
	if _, err := ReadBenchReport(strings.NewReader(`{"version":99,"tool":"tmibench"}`)); err == nil {
		t.Error("accepted a bench report with a future schema version")
	}
}
