package toolio

import (
	"bytes"
	"strings"
	"testing"
)

func TestSuggestReportRoundTrip(t *testing.T) {
	rep := NewSuggestReport("tmilint", "litmus-brokenfence")
	rep.Clean = true
	rep.Repairs = append(rep.Repairs,
		SuggestRepair{Site: "brokenfence.load_flag", Kind: "atomic", Order: "acquire", Reason: "delay"},
		SuggestRepair{Site: "brokenfence.store_flag", Kind: "atomic", Order: "release"},
	)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSuggestReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != SchemaVersion {
		t.Errorf("version %d, want %d", got.Version, SchemaVersion)
	}
	if got.Tool != "tmilint" || got.Workload != "litmus-brokenfence" || !got.Clean {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Repairs) != 2 || got.Repairs[0] != rep.Repairs[0] || got.Repairs[1] != rep.Repairs[1] {
		t.Errorf("repairs did not round-trip: %+v", got.Repairs)
	}
}

func TestSuggestReportRejectsFutureVersion(t *testing.T) {
	doc := `{"version": 99, "tool": "tmilint", "workload": "w", "clean": true, "repairs": []}`
	_, err := ReadSuggestReport(strings.NewReader(doc))
	if err == nil {
		t.Fatal("future-version suggest report accepted")
	}
	if !strings.Contains(err.Error(), "newer") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSuggestReportPreVersioningReadAsV1(t *testing.T) {
	doc := `{"tool": "tmilint", "workload": "w", "clean": true, "repairs": []}`
	rep, err := ReadSuggestReport(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 {
		t.Errorf("pre-versioning document read as version %d, want 1", rep.Version)
	}
}
