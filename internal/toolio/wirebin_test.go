package toolio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/raceflag"
)

func sampleBatch(n int) *SampleColumns {
	c := &SampleColumns{}
	for i := 0; i < n; i++ {
		c.Append(uint32(i%7), 0x7f0010_0000+uint64(i)*8, uint16(1<<(i%4)), i%3 == 0)
	}
	return c
}

func TestBinRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinWriter(&buf)
	want := sampleBatch(1000)
	if err := bw.WriteSamples(want); err != nil {
		t.Fatal(err)
	}
	tick := WireTick{K: WireTickKind, Seq: 41, IntervalSec: 0.0001, Period: 400}
	if err := bw.WriteTick(tick); err != nil {
		t.Fatal(err)
	}

	br := NewBinReader(&buf)
	fr, err := br.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Kind != WireSamplesKind[0] || fr.Samples.Len() != want.Len() {
		t.Fatalf("first frame kind %q len %d, want samples len %d", fr.Kind, fr.Samples.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if fr.Samples.TID[i] != want.TID[i] || fr.Samples.Addr[i] != want.Addr[i] ||
			fr.Samples.Width[i] != want.Width[i] || fr.Samples.Write[i] != want.Write[i] {
			t.Fatalf("sample %d did not round-trip: got (%d,%#x,%d,%d) want (%d,%#x,%d,%d)",
				i, fr.Samples.TID[i], fr.Samples.Addr[i], fr.Samples.Width[i], fr.Samples.Write[i],
				want.TID[i], want.Addr[i], want.Width[i], want.Write[i])
		}
	}
	fr, err = br.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Kind != WireTickKind[0] || fr.Tick.Seq != tick.Seq || fr.Tick.IntervalSec != tick.IntervalSec || fr.Tick.Period != tick.Period {
		t.Fatalf("tick did not round-trip: %+v", fr.Tick)
	}
	if _, err := br.ReadFrame(); err != io.EOF {
		t.Fatalf("clean stream end: err = %v, want io.EOF", err)
	}
}

// encodeFrames renders a sequence of frames to raw bytes for corruption
// tests.
func encodeFrames(t *testing.T, build func(bw *BinWriter) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := build(NewBinWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinDecodeEdgeCases is the table of hostile and malformed binary
// input shared with the NDJSON edge cases below: every row must produce a
// decode error (never a panic, never a misread batch).
func TestBinDecodeEdgeCases(t *testing.T) {
	good := encodeFrames(t, func(bw *BinWriter) error { return bw.WriteSamples(sampleBatch(4)) })
	goodTick := encodeFrames(t, func(bw *BinWriter) error {
		return bw.WriteTick(WireTick{Seq: 1, IntervalSec: 0.1, Period: 100})
	})
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	hostileColumn := func(col string, v uint64) []byte {
		c := sampleBatch(4)
		switch col {
		case "tid":
			c.TID[2] = uint32(v)
		case "width":
			c.Width[2] = uint16(v)
		case "write":
			c.Write[2] = uint8(v)
		}
		return encodeFrames(t, func(bw *BinWriter) error { return bw.WriteSamples(c) })
	}
	negSeqTick := append([]byte(nil), goodTick...)
	binary.LittleEndian.PutUint64(negSeqTick[binHeaderSize:], ^uint64(0)) // seq = -1

	for _, tc := range []struct {
		name string
		in   []byte
		want string
	}{
		{"truncated-header", good[:5], "truncated frame header"},
		{"truncated-payload", good[:len(good)-3], "truncated frame payload"},
		{"bad-magic", corrupt(func(b []byte) { b[0] = 'X' }), "bad frame magic"},
		{"future-version", corrupt(func(b []byte) { b[2] = WireBinVersion + 1 }), "frame version"},
		{"unknown-kind", corrupt(func(b []byte) { b[3] = 'z' }), "unknown frame kind"},
		{"oversized-payload", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], uint32(MaxWireLine+1))
		}), "exceeds cap"},
		{"count-overruns-payload", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[binHeaderSize:], 5)
		}), "want"},
		{"oversized-batch", func() []byte {
			// A structurally complete frame of MaxWireBatch+1 zero records:
			// the batch cap must reject it before any column is decoded.
			n := MaxWireBatch + 1
			b := make([]byte, binHeaderSize+4+n*bytesPerSample)
			b[0], b[1], b[2], b[3] = wireBinMagic0, wireBinMagic1, WireBinVersion, WireSamplesKind[0]
			binary.LittleEndian.PutUint32(b[4:], uint32(4+n*bytesPerSample))
			binary.LittleEndian.PutUint32(b[binHeaderSize:], uint32(n))
			return b
		}(), "batch cap"},
		{"hostile-tid", hostileColumn("tid", 1<<31), "tid out of range"},
		{"zero-width", hostileColumn("width", 0), "width out of range"},
		{"huge-width", hostileColumn("width", 4096), "width out of range"},
		{"bad-write-flag", hostileColumn("write", 7), "not 0 or 1"},
		{"tick-negative-seq", negSeqTick, "negative"},
		{"tick-short-payload", goodTick[:binHeaderSize+8], "truncated frame payload"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			br := NewBinReader(bytes.NewReader(tc.in))
			var err error
			for err == nil {
				_, err = br.ReadFrame()
			}
			if err == io.EOF || err == nil {
				t.Fatalf("decode accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBinReaderRespectsConfiguredCaps pins the per-reader overrides the
// service wires from Config.MaxFrameBytes.
func TestBinReaderRespectsConfiguredCaps(t *testing.T) {
	frames := encodeFrames(t, func(bw *BinWriter) error { return bw.WriteSamples(sampleBatch(100)) })

	br := NewBinReader(bytes.NewReader(frames))
	br.MaxPayload = 64
	if _, err := br.ReadFrame(); err == nil || !strings.Contains(err.Error(), "exceeds cap 64") {
		t.Errorf("payload cap not enforced: %v", err)
	}
	br = NewBinReader(bytes.NewReader(frames))
	br.MaxBatch = 10
	if _, err := br.ReadFrame(); err == nil || !strings.Contains(err.Error(), "batch cap 10") {
		t.Errorf("batch cap not enforced: %v", err)
	}
}

// TestNDJSONDecodeEdgeCases mirrors the binary table on the quad codec:
// the same tid/width/write/seq/batch limits, enforced at DecodeWireMsg.
func TestNDJSONDecodeEdgeCases(t *testing.T) {
	hugeBatch := `{"k":"s","s":[` + strings.Repeat(`[0,0,8,1],`, MaxWireBatch) + `[0,0,8,1]]}`
	for _, tc := range []struct {
		name, line, want string
	}{
		{"hostile-tid", `{"k":"s","s":[[9223372036854775808,4096,8,1]]}`, "tid"},
		{"tid-just-past-cap", fmt.Sprintf(`{"k":"s","s":[[%d,4096,8,1]]}`, MaxWireTID+1), "tid"},
		{"zero-width", `{"k":"s","s":[[0,4096,0,1]]}`, "width"},
		{"huge-width", `{"k":"s","s":[[0,4096,65,1]]}`, "width"},
		{"hostile-write", `{"k":"s","s":[[0,4096,8,2]]}`, "write"},
		{"oversized-batch", hugeBatch, "batch cap"},
		{"tick-negative-seq", `{"k":"t","seq":-1,"interval":0.1,"period":100}`, "negative"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeWireMsg([]byte(tc.line))
			if err == nil {
				t.Fatal("decode accepted hostile input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The boundary values stay valid.
	ok := fmt.Sprintf(`{"k":"s","s":[[%d,4096,64,1],[0,4096,1,0]]}`, MaxWireTID)
	if _, err := DecodeWireMsg([]byte(ok)); err != nil {
		t.Errorf("decode rejected in-range samples: %v", err)
	}
}

func TestCheckHello(t *testing.T) {
	hello := func(mut func(m *WireMsg)) *WireMsg {
		m := &WireMsg{K: WireHelloKind, Version: SchemaVersion, Tenant: "t1", PageSize: 4096}
		mut(m)
		return m
	}
	for _, tc := range []struct {
		name string
		m    *WireMsg
		want string // "" means valid
	}{
		{"ok", hello(func(m *WireMsg) {}), ""},
		{"ok-default-page", hello(func(m *WireMsg) { m.PageSize = 0 }), ""},
		{"ok-binary", hello(func(m *WireMsg) { m.Wire = WireFormatBinary }), ""},
		{"ok-ndjson", hello(func(m *WireMsg) { m.Wire = WireFormatNDJSON }), ""},
		{"not-hello", hello(func(m *WireMsg) { m.K = WireTickKind }), "hello"},
		{"future-version", hello(func(m *WireMsg) { m.Version = 99 }), "version"},
		{"no-tenant", hello(func(m *WireMsg) { m.Tenant = "" }), "tenant"},
		{"page-size-one", hello(func(m *WireMsg) { m.PageSize = 1 }), "page size"},
		{"page-size-64", hello(func(m *WireMsg) { m.PageSize = 64 }), "page size"},
		{"page-size-not-pow2", hello(func(m *WireMsg) { m.PageSize = 1000 }), "page size"},
		{"page-size-huge", hello(func(m *WireMsg) { m.PageSize = MaxWirePageSize * 2 }), "page size"},
		{"unknown-wire", hello(func(m *WireMsg) { m.Wire = "protobuf" }), "wire format"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckHello(tc.m)
			if tc.want == "" {
				if err != nil {
					t.Errorf("valid hello rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBinReaderSteadyStateDoesNotAllocate is the decode-path AllocsPerRun
// gate: replaying the same frame stream through one reader must stay off
// the heap entirely once its buffers are warm.
func TestBinReaderSteadyStateDoesNotAllocate(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race")
	}
	frames := encodeFrames(t, func(bw *BinWriter) error {
		for i := 0; i < 4; i++ {
			if err := bw.WriteSamples(sampleBatch(1024)); err != nil {
				return err
			}
		}
		return bw.WriteTick(WireTick{Seq: 0, IntervalSec: 0.1, Period: 100})
	})
	r := bytes.NewReader(frames)
	br := NewBinReader(r)
	decodeAll := func() {
		r.Reset(frames)
		br.Reset(r)
		for {
			if _, err := br.ReadFrame(); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				return
			}
		}
	}
	decodeAll() // warm the payload and column buffers
	if allocs := testing.AllocsPerRun(100, decodeAll); allocs > 0 {
		t.Errorf("steady-state frame decode allocates %.1f times per stream, want 0", allocs)
	}
}

// TestBinWriterSteadyStateDoesNotAllocate pins the encode side the same
// way: one writer re-encoding warm batches must not touch the heap.
func TestBinWriterSteadyStateDoesNotAllocate(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race")
	}
	c := sampleBatch(1024)
	var buf bytes.Buffer
	bw := NewBinWriter(&buf)
	encode := func() {
		buf.Reset()
		if err := bw.WriteSamples(c); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteTick(WireTick{Seq: 1, IntervalSec: 0.1, Period: 100}); err != nil {
			t.Fatal(err)
		}
	}
	encode()
	if allocs := testing.AllocsPerRun(100, encode); allocs > 0 {
		t.Errorf("steady-state frame encode allocates %.1f times per batch, want 0", allocs)
	}
}
