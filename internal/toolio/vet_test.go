package toolio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestVetReportRoundTrip(t *testing.T) {
	r := NewVetReport("tmivet")
	r.Add(VetFinding{
		ID: "testdata/srcvet/packed:Packed:line0", Pkg: "testdata/srcvet/packed",
		Region: "Packed", File: "packed.go", Line: 9, CacheLine: 0,
		Writers:      []string{"go packed.go:17", "go packed.go:22"},
		Spans:        "0-7 vs 8-15",
		Confirmation: ConfirmConfirmed,
		Repairs: []VetRepair{
			{Kind: "pad", Struct: "Packed", After: "A", Bytes: 56},
		},
	})
	r.Add(VetFinding{
		ID: "internal/x:buf:line1", Pkg: "internal/x", Region: "buf",
		File: "x.go", Line: 3, CacheLine: 1, Writers: []string{"go x.go:10", "go x.go:11"},
		Confirmation: ConfirmSkipped, Waived: true,
	})
	r.AddStat("packages", 2)

	if r.OK {
		t.Fatalf("report with an unwaived finding must not be OK")
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadVetReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", r, got)
	}
	if got.Version != SchemaVersion {
		t.Fatalf("version = %d, want %d", got.Version, SchemaVersion)
	}
}

func TestVetReportWaivedOnlyIsOK(t *testing.T) {
	r := NewVetReport("tmivet")
	if !r.OK {
		t.Fatalf("empty report must be OK")
	}
	r.Add(VetFinding{ID: "a:b:line0", Waived: true, Confirmation: ConfirmSkipped})
	if !r.OK {
		t.Fatalf("all-waived report must stay OK")
	}
	r.Add(VetFinding{ID: "a:c:line0", Confirmation: ConfirmStaticOnly})
	if r.OK {
		t.Fatalf("unwaived finding must flip OK")
	}
}

func TestVetReportVersioning(t *testing.T) {
	// Pre-versioning documents normalize to version 1.
	got, err := ReadVetReport(strings.NewReader(`{"tool":"tmivet","ok":true,"findings":[]}`))
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if got.Version != 1 {
		t.Fatalf("legacy version = %d, want 1", got.Version)
	}
	// Future documents are rejected.
	if _, err := ReadVetReport(strings.NewReader(`{"version":99,"tool":"tmivet","ok":true}`)); err == nil {
		t.Fatalf("future version must be rejected")
	}
}

func TestGrade(t *testing.T) {
	for _, g := range []string{ConfirmConfirmed, ConfirmStaticOnly, ConfirmSkipped} {
		if got, err := Grade(g); err != nil || got != g {
			t.Fatalf("Grade(%q) = %q, %v", g, got, err)
		}
	}
	if _, err := Grade("maybe"); err == nil {
		t.Fatalf("Grade must reject unknown strings")
	}
}
