package toolio

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchReportRoundTrip(t *testing.T) {
	r := NewBenchReport("2026-08-05", 8, 3, 1)
	r.Add(BenchExperiment{ID: "fig9", WallSeconds: 2, Cells: 90, BusySeconds: 8, Speedup: 4, SimSeconds: 0.5, RecordsSeen: 1000, Repairs: 9})
	r.Add(BenchExperiment{ID: "fig7", WallSeconds: 4, Cells: 420, BusySeconds: 12, Speedup: 3, SimSeconds: 1.5, RecordsSeen: 4000})

	if r.WallSeconds != 6 {
		t.Errorf("WallSeconds = %v, want 6", r.WallSeconds)
	}
	if r.Stats["total_cells"] != 510 {
		t.Errorf("total_cells = %v, want 510", r.Stats["total_cells"])
	}
	if got := r.Stats["speedup"]; got != 20.0/6.0 {
		t.Errorf("speedup = %v, want %v", got, 20.0/6.0)
	}

	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "tmibench" || back.Date != "2026-08-05" || back.Workers != 8 {
		t.Errorf("header did not round-trip: %+v", back)
	}
	if len(back.Experiments) != 2 || back.Experiments[0] != r.Experiments[0] {
		t.Errorf("experiments did not round-trip: %+v", back.Experiments)
	}
}

func TestReadBenchReportRejectsOtherTools(t *testing.T) {
	if _, err := ReadBenchReport(strings.NewReader(`{"tool":"tmilint"}`)); err == nil {
		t.Error("accepted a non-tmibench document")
	}
}

func TestBenchFileName(t *testing.T) {
	if got := BenchFileName("2026-08-05"); got != "BENCH_2026-08-05.json" {
		t.Errorf("BenchFileName = %q", got)
	}
}

func TestAutoBenchFileName(t *testing.T) {
	taken := map[string]bool{}
	exists := func(p string) bool { return taken[p] }

	if got := AutoBenchFileName("2026-08-05", exists); got != "BENCH_2026-08-05.json" {
		t.Errorf("empty day: AutoBenchFileName = %q", got)
	}
	taken["BENCH_2026-08-05.json"] = true
	if got := AutoBenchFileName("2026-08-05", exists); got != "BENCH_2026-08-05.2.json" {
		t.Errorf("one point: AutoBenchFileName = %q", got)
	}
	taken["BENCH_2026-08-05.2.json"] = true
	if got := AutoBenchFileName("2026-08-05", exists); got != "BENCH_2026-08-05.3.json" {
		t.Errorf("two points: AutoBenchFileName = %q", got)
	}
}

func TestLatestBenchFileName(t *testing.T) {
	taken := map[string]bool{}
	exists := func(p string) bool { return taken[p] }

	// No point yet: appending tooling should target the day's first file.
	if got := LatestBenchFileName("2026-08-05", exists); got != "BENCH_2026-08-05.json" {
		t.Errorf("empty day: LatestBenchFileName = %q", got)
	}
	taken["BENCH_2026-08-05.json"] = true
	if got := LatestBenchFileName("2026-08-05", exists); got != "BENCH_2026-08-05.json" {
		t.Errorf("one point: LatestBenchFileName = %q", got)
	}
	taken["BENCH_2026-08-05.2.json"] = true
	taken["BENCH_2026-08-05.3.json"] = true
	if got := LatestBenchFileName("2026-08-05", exists); got != "BENCH_2026-08-05.3.json" {
		t.Errorf("three points: LatestBenchFileName = %q", got)
	}
}
