// Package toolio defines the machine-readable report schema shared by the
// repository's checker CLIs (tmilint, tmimc) under their -json flags. CI
// consumes one format regardless of which tool produced it: a report is a
// tool name, a verdict, a flat list of findings and a bag of numeric stats.
package toolio

import (
	"encoding/json"
	"io"
)

// Finding is one diagnostic from any checker. Rule is the stable,
// tool-scoped identifier CI filters on (tmilint: the verifier rule names;
// tmimc: "sc-divergence", "data-race", "validation", "incomplete").
type Finding struct {
	Tool     string `json:"tool"`
	Workload string `json:"workload"`
	Rule     string `json:"rule"`
	Site     string `json:"site,omitempty"`
	PC       uint64 `json:"pc,omitempty"`
	Detail   string `json:"detail"`
}

// Report is the top-level JSON document a tool emits.
type Report struct {
	Tool string `json:"tool"`
	// OK is true iff Findings is empty — the single bit CI gates on.
	OK       bool      `json:"ok"`
	Findings []Finding `json:"findings"`
	// Stats carries tool-specific counters (runs, outcomes, sites, ...),
	// keyed "<workload>.<metric>" or plain "<metric>" for globals.
	Stats map[string]float64 `json:"stats,omitempty"`
}

// NewReport builds an empty, passing report for one tool.
func NewReport(tool string) *Report {
	return &Report{Tool: tool, OK: true, Findings: []Finding{}, Stats: map[string]float64{}}
}

// Add appends a finding (stamping the tool name) and flips the verdict.
func (r *Report) Add(f Finding) {
	f.Tool = r.Tool
	r.Findings = append(r.Findings, f)
	r.OK = false
}

// AddStat records one numeric stat.
func (r *Report) AddStat(key string, v float64) { r.Stats[key] = v }

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
