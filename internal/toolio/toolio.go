// Package toolio defines the machine-readable report schema shared by the
// repository's checker CLIs (tmilint, tmimc) under their -json flags. CI
// consumes one format regardless of which tool produced it: a report is a
// tool name, a verdict, a flat list of findings and a bag of numeric stats.
package toolio

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is stamped into every document this package defines — the
// checker Report, the benchmark-trajectory BenchReport, and the tmid wire
// protocol's hello — so producers and consumers across PRs agree on one
// version axis. Documents written before versioning existed carry 0 and are
// read as version 1.
//
// Version history:
//
//	1  initial versioned schema
//	2  advice messages gain an optional "backend" repair-strategy
//	   recommendation (omitted when the service has no recommendation
//	   policy, so version-1 advice bytes are unchanged)
const SchemaVersion = 2

// checkVersion validates a decoded document's version field.
func checkVersion(kind string, v int) (int, error) {
	if v == 0 {
		return 1, nil // pre-versioning document
	}
	if v > SchemaVersion {
		return 0, fmt.Errorf("toolio: %s schema version %d is newer than this tool's %d", kind, v, SchemaVersion)
	}
	return v, nil
}

// Finding is one diagnostic from any checker. Rule is the stable,
// tool-scoped identifier CI filters on (tmilint: the verifier rule names;
// tmimc: "sc-divergence", "data-race", "validation", "incomplete").
type Finding struct {
	Tool     string `json:"tool"`
	Workload string `json:"workload"`
	Rule     string `json:"rule"`
	Site     string `json:"site,omitempty"`
	PC       uint64 `json:"pc,omitempty"`
	Detail   string `json:"detail"`
}

// Report is the top-level JSON document a tool emits.
type Report struct {
	// Version is the schema version (SchemaVersion at write time).
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// OK is true iff Findings is empty — the single bit CI gates on.
	OK       bool      `json:"ok"`
	Findings []Finding `json:"findings"`
	// Stats carries tool-specific counters (runs, outcomes, sites, ...),
	// keyed "<workload>.<metric>" or plain "<metric>" for globals.
	Stats map[string]float64 `json:"stats,omitempty"`
}

// NewReport builds an empty, passing report for one tool.
func NewReport(tool string) *Report {
	return &Report{Version: SchemaVersion, Tool: tool, OK: true, Findings: []Finding{}, Stats: map[string]float64{}}
}

// ReadReport parses a checker report, normalizing pre-versioning documents
// and rejecting ones newer than this tool understands.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	v, err := checkVersion("report", r.Version)
	if err != nil {
		return nil, err
	}
	r.Version = v
	return &r, nil
}

// SuggestRepair is one proposed source-level repair in the suggest schema:
// a site name, a repair kind ("atomic", "order", "fence-before",
// "fence-after") and a C11 memory order ("relaxed", "acquire", "release",
// "acq_rel", "seq_cst"), plus the evidence that produced it. Kinds and
// orders travel as strings so the schema is self-describing and does not
// leak internal enums.
type SuggestRepair struct {
	Site   string `json:"site"`
	Kind   string `json:"kind"`
	Order  string `json:"order"`
	Reason string `json:"reason,omitempty"`
}

// SuggestReport is the document `tmilint -suggest -json` emits and
// `tmimc -apply` consumes: a minimized repair set for one workload.
type SuggestReport struct {
	// Version is the schema version (SchemaVersion at write time).
	Version  int    `json:"version"`
	Tool     string `json:"tool"`
	Workload string `json:"workload"`
	// Clean reports whether the analysis is defect-free after applying
	// every repair; false means the round budget ran out with Residual
	// defects left.
	Clean    bool            `json:"clean"`
	Repairs  []SuggestRepair `json:"repairs"`
	Residual []string        `json:"residual,omitempty"`
}

// NewSuggestReport builds an empty suggest report for one tool/workload.
func NewSuggestReport(tool, workload string) *SuggestReport {
	return &SuggestReport{
		Version: SchemaVersion, Tool: tool, Workload: workload,
		Repairs: []SuggestRepair{},
	}
}

// ReadSuggestReport parses a suggest report, normalizing pre-versioning
// documents and rejecting ones newer than this tool understands.
func ReadSuggestReport(rd io.Reader) (*SuggestReport, error) {
	var r SuggestReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	v, err := checkVersion("suggest report", r.Version)
	if err != nil {
		return nil, err
	}
	r.Version = v
	return &r, nil
}

// Write emits the suggest report as indented JSON.
func (r *SuggestReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Add appends a finding (stamping the tool name) and flips the verdict.
func (r *Report) Add(f Finding) {
	f.Tool = r.Tool
	r.Findings = append(r.Findings, f)
	r.OK = false
}

// AddStat records one numeric stat.
func (r *Report) AddStat(key string, v float64) { r.Stats[key] = v }

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
