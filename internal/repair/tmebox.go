package repair

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/ptsb"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
	"repro/internal/sim/osim"
)

// CostKeyProgram is the per-thread cost of programming a keyed isolation
// domain (TME-Box style, PAPERS.md): write the key registers and flush the
// affected TLB entries. No ptrace stop, no fork, no page-table copy —
// that absence is the whole point of the backend, and why this is orders
// of magnitude below osim.CostT2PBase.
const CostKeyProgram = 1800

// TMEBox is the fork-free keyed isolation backend: every thread gets its
// own view of the address space under a per-thread protection key, while
// staying a thread of the original process. Protected pages fault per
// thread, twin privately, and merge back at synchronization points —
// the existing PTSB twin/diff/merge core, driven through per-thread
// cloned views instead of forked child processes.
type TMEBox struct {
	app    *osim.Process
	mc     *machine.Machine
	engine *ptsb.Engine

	converted bool
	spaces    []*mem.AddrSpace
	st        BackendStats
}

// NewTMEBox creates the keyed-isolation backend for app, arming pages
// through e.
func NewTMEBox(app *osim.Process, mc *machine.Machine, e *ptsb.Engine) *TMEBox {
	return &TMEBox{app: app, mc: mc, engine: e}
}

// Name implements Backend.
func (b *TMEBox) Name() string { return BackendTMEBox }

// Converted implements Backend.
func (b *TMEBox) Converted() bool { return b.converted }

// Spaces implements Backend: the per-thread keyed views.
func (b *TMEBox) Spaces() []*mem.AddrSpace { return b.spaces }

// BackendStats implements Backend.
func (b *TMEBox) BackendStats() BackendStats {
	st := b.st
	st.Backend = BackendTMEBox
	return st
}

// Convert keys an isolation domain onto every live thread: each gets a
// cloned view of the process space (shared mappings stay shared, so
// unprotected memory behaves exactly as before) and pays the key-program
// cost. The threads stay threads — no fork, no process table change.
func (b *TMEBox) Convert(now int64) error {
	if b.converted {
		return nil
	}
	for _, th := range b.app.Threads {
		if th.State() == machine.Done {
			continue
		}
		view := b.app.Space.Clone()
		th.SetSpace(view)
		th.AddCost(CostKeyProgram)
		b.spaces = append(b.spaces, view)
	}
	b.st.ConvertedAtCycle = now
	b.converted = true
	return nil
}

// Arm services one detector request: key the domains on first use, then
// arm the PTSB on the requested pages in every per-thread view.
func (b *TMEBox) Arm(req *detect.Request, now int64) error {
	if req == nil || len(req.Pages) == 0 {
		return nil
	}
	if err := b.Convert(now); err != nil {
		return err
	}
	b.st.RepairEvents++
	for _, p := range req.Pages {
		if b.engine.Protected(p) {
			continue
		}
		if err := b.engine.Protect(p, b.spaces); err != nil {
			b.st.FailedRepairs++
			return fmt.Errorf("repair: tmebox: arming page 0x%x: %w", p, err)
		}
		b.st.PagesProtected++
	}
	return nil
}

var _ Backend = (*TMEBox)(nil)
