package repair

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/detect"
	"repro/internal/sim/machine"
)

func TestValidBackendNames(t *testing.T) {
	if !ValidBackend("") {
		t.Error("empty backend (default) must be valid")
	}
	for _, n := range BackendNames {
		if !ValidBackend(n) {
			t.Errorf("registered backend %q rejected", n)
		}
	}
	if ValidBackend("voodoo") {
		t.Error("unknown backend accepted")
	}
	err := ErrUnknownBackend("voodoo")
	if err == nil || !strings.Contains(err.Error(), "voodoo") {
		t.Errorf("error should name the offender: %v", err)
	}
	for _, n := range BackendNames {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error should list valid backend %q: %v", n, err)
		}
	}
}

// pingPong runs two threads hammering adjacent words of the heap line,
// invoking arm from thread 0 at iteration armAt, and returns the HITM
// counts before and after the arm call.
func pingPong(t *testing.T, f *fixture, iters, armAt int, arm func(th *machine.Thread)) (before, after uint64) {
	t.Helper()
	body := func(th *machine.Thread) {
		for i := 0; i < iters; i++ {
			th.Store(1, heapBase+uint64(th.ID)*8, 8, uint64(i))
			th.Work(60)
			if th.ID == 0 && i == armAt {
				before = f.mc.Cache().Stats().HITM
				arm(th)
			}
		}
	}
	if err := f.mc.Run([]func(*machine.Thread){body, body}); err != nil {
		t.Fatal(err)
	}
	after = f.mc.Cache().Stats().HITM - before
	return before, after
}

func TestPadIsolatesFlaggedPage(t *testing.T) {
	f := newFixture(t, 2)
	al := alloc.New(alloc.TMIPolicy(), alloc.BackingSharedFile, nil, 4096)
	pad := NewPad(f.mc, f.shared, al)
	req := &detect.Request{Pages: []uint64{heapBase}}
	before, after := pingPong(t, f, 600, 100, func(th *machine.Thread) {
		if err := pad.Arm(req, th.Clock()); err != nil {
			t.Errorf("arm: %v", err)
		}
		// Same page again: counted, not re-charged.
		if err := pad.Arm(req, th.Clock()); err != nil {
			t.Errorf("re-arm: %v", err)
		}
	})
	if before == 0 {
		t.Fatal("expected contention before re-segregation")
	}
	if after*20 > before {
		t.Errorf("pad ineffective: %d HITM before, %d after", before, after)
	}
	if !pad.Converted() {
		t.Error("pad should report converted after arming")
	}
	st := pad.BackendStats()
	if st.Backend != BackendPad {
		t.Errorf("stats name %q", st.Backend)
	}
	wantLines := 4096 / 64
	if st.LinesIsolated != wantLines {
		t.Errorf("lines isolated %d, want %d (one page, deduped)", st.LinesIsolated, wantLines)
	}
	if st.RepairEvents != 2 {
		t.Errorf("repair events %d, want 2", st.RepairEvents)
	}
	if al.PolicySwitches != 1 {
		t.Errorf("policy switches %d, want exactly 1", al.PolicySwitches)
	}
}

func TestPadUnmappedPageFails(t *testing.T) {
	f := newFixture(t, 1)
	al := alloc.New(alloc.TMIPolicy(), alloc.BackingSharedFile, nil, 4096)
	pad := NewPad(f.mc, f.shared, al)
	err := pad.Arm(&detect.Request{Pages: []uint64{0xdead_0000}}, 0)
	if err == nil {
		t.Fatal("arming an unmapped page should fail")
	}
	if got := pad.BackendStats().FailedRepairs; got != 1 {
		t.Errorf("failed repairs %d, want 1", got)
	}
}

func TestMappingMigratesToHomeCore(t *testing.T) {
	f := newFixture(t, 2)
	mp := NewMapping(f.mc, f.shared)
	req := &detect.Request{
		Pages: []uint64{heapBase},
		Lines: []detect.LineReport{{Line: heapBase, EstEventsPerSec: 1e6}},
	}
	before, after := pingPong(t, f, 600, 100, func(th *machine.Thread) {
		if err := mp.Arm(req, th.Clock()); err != nil {
			t.Errorf("arm: %v", err)
		}
	})
	if before == 0 {
		t.Fatal("expected contention before migration")
	}
	// Both threads share one core and one private cache: no more HITMs.
	if after*20 > before {
		t.Errorf("map ineffective: %d HITM before, %d after", before, after)
	}
	if f.mc.Thread(0).Core != f.mc.Thread(1).Core {
		t.Error("contending threads should be co-resident after migration")
	}
	st := mp.BackendStats()
	if st.Backend != BackendMap || st.ThreadsMigrated != 1 {
		t.Errorf("stats %+v, want backend=map threadsMigrated=1", st)
	}
	// Co-residency is billed: each of the two threads pays for one peer.
	if got := mp.AccessCost(f.mc.Thread(0)); got != LatCoShare {
		t.Errorf("access cost %d, want %d", got, LatCoShare)
	}
}

func TestMappingUnmappedPageFails(t *testing.T) {
	f := newFixture(t, 1)
	mp := NewMapping(f.mc, f.shared)
	err := mp.Arm(&detect.Request{Pages: []uint64{0xdead_0000}}, 0)
	if err == nil {
		t.Fatal("migrating toward an unmapped page should fail")
	}
	if got := mp.BackendStats().FailedRepairs; got != 1 {
		t.Errorf("failed repairs %d, want 1", got)
	}
}

func TestTMEBoxKeysDomainsWithoutFork(t *testing.T) {
	f := newFixture(t, 2)
	box := NewTMEBox(f.app, f.mc, f.eng)
	req := &detect.Request{Pages: []uint64{heapBase}}
	before, after := pingPong(t, f, 600, 100, func(th *machine.Thread) {
		if err := box.Arm(req, th.Clock()); err != nil {
			t.Errorf("arm: %v", err)
		}
	})
	if before == 0 {
		t.Fatal("expected contention before isolation")
	}
	if after*20 > before {
		t.Errorf("tmebox ineffective: %d HITM before, %d after", before, after)
	}
	if !box.Converted() {
		t.Fatal("domains should be keyed")
	}
	if got := len(box.Spaces()); got != 2 {
		t.Fatalf("spaces %d, want one per thread", got)
	}
	// Keyed views, not forked processes: the threads stay in the app's
	// thread list, each behind its own cloned view of the app space.
	if got := len(f.app.Threads); got != 2 {
		t.Errorf("app threads %d, want 2 (no fork)", got)
	}
	s0, s1 := f.mc.Thread(0).Space(), f.mc.Thread(1).Space()
	if s0 == s1 || s0 == f.app.Space || s1 == f.app.Space {
		t.Error("each thread needs its own keyed view distinct from the app space")
	}
	if f.eng.Stats.TwinFaults == 0 {
		t.Error("writes to the armed page should twin-fault per domain")
	}
	st := box.BackendStats()
	if st.Backend != BackendTMEBox || st.PagesProtected != 1 {
		t.Errorf("stats %+v, want backend=tmebox pagesProtected=1", st)
	}
}

func TestEngineHandleSurfacesProtectError(t *testing.T) {
	f := newFixture(t, 1)
	var handleErr error
	err := f.mc.Run([]func(*machine.Thread){func(th *machine.Thread) {
		th.Work(10)
		handleErr = f.rep.Handle(&detect.Request{Pages: []uint64{0xdead_0000}}, th.Clock())
	}})
	if err != nil {
		t.Fatal(err)
	}
	if handleErr == nil {
		t.Fatal("protecting an unmapped page must return an error, not panic")
	}
	if f.rep.Stats.FailedRepairs != 1 {
		t.Errorf("failed repairs %d, want 1", f.rep.Stats.FailedRepairs)
	}
}
