package repair

import (
	"testing"

	"repro/internal/detect"
	"repro/internal/ptsb"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
	"repro/internal/sim/osim"
)

const heapBase = 0x1000_0000

type fixture struct {
	os     *osim.OS
	app    *osim.Process
	mc     *machine.Machine
	shared *mem.AddrSpace
	eng    *ptsb.Engine
	rep    *Engine
}

func newFixture(t *testing.T, threads int) *fixture {
	t.Helper()
	m := mem.NewMemory(mem.PageSize4K)
	o := osim.New(m)
	app := o.NewProcess()
	heap := o.ShmOpen("heap")
	app.Space.Map(heapBase, 8, heap, 0, false, mem.ProtRW)
	shared := mem.NewAddrSpace(m)
	shared.Map(heapBase, 8, heap, 0, false, mem.ProtRW)
	mc := machine.New(machine.Config{Cores: threads, Seed: 7, Mem: m})
	for _, th := range mc.Threads() {
		th.SetSpace(app.Space)
		app.Threads = append(app.Threads, th)
	}
	eng := ptsb.NewEngine(m, shared)
	rep := New(o, app, mc, eng)
	mc.SetHooks(machine.Hooks{
		OnFault: func(th *machine.Thread, acc *machine.Access, f *mem.Fault) (bool, int64) {
			if f.Kind == mem.FaultProtWrite {
				return eng.HandleWriteFault(th, acc.Addr)
			}
			return false, 0
		},
	})
	return &fixture{os: o, app: app, mc: mc, shared: shared, eng: eng, rep: rep}
}

func TestConvertOnceAndProtect(t *testing.T) {
	f := newFixture(t, 2)
	req := &detect.Request{Pages: []uint64{heapBase}}
	converted := false
	body := func(th *machine.Thread) {
		for i := 0; i < 100; i++ {
			th.Store(1, heapBase+uint64(th.ID)*8, 8, uint64(i))
			th.Work(50)
			if th.ID == 0 && i == 20 && !converted {
				converted = true
				f.rep.Handle(req, th.Clock())
				// Idempotent: a second request for the same page is a no-op.
				f.rep.Handle(req, th.Clock())
			}
		}
	}
	if err := f.mc.Run([]func(*machine.Thread){body, body}); err != nil {
		t.Fatal(err)
	}
	if !f.rep.Converted() {
		t.Fatal("threads should have been converted")
	}
	if len(f.rep.Spaces()) != 2 {
		t.Errorf("spaces %d, want 2", len(f.rep.Spaces()))
	}
	if f.rep.Stats.RepairEvents != 2 {
		t.Errorf("repair events %d, want 2", f.rep.Stats.RepairEvents)
	}
	if f.rep.Stats.PagesProtected != 1 {
		t.Errorf("pages protected %d, want 1 (second request deduped)", f.rep.Stats.PagesProtected)
	}
	if len(f.rep.T2PMicros()) != 2 {
		t.Fatalf("T2P records %d, want 2", len(f.rep.T2PMicros()))
	}
	for _, us := range f.rep.T2PMicros() {
		if us < 70 || us > 190 {
			t.Errorf("T2P %f us outside the paper's 73-179us envelope", us)
		}
	}
	// Each thread runs in its own space now.
	if f.mc.Thread(0).Space() == f.mc.Thread(1).Space() {
		t.Error("converted threads must have distinct address spaces")
	}
	if f.mc.Thread(0).Space() == f.app.Space {
		t.Error("converted thread should not keep the app space")
	}
}

func TestRepairEliminatesContention(t *testing.T) {
	run := func(repairAt int) (uint64, uint64) {
		f := newFixture(t, 2)
		var before, after uint64
		body := func(th *machine.Thread) {
			for i := 0; i < 600; i++ {
				th.Store(1, heapBase+uint64(th.ID)*8, 8, uint64(i))
				th.Work(60)
				if th.ID == 0 && i == repairAt {
					before = f.mc.Cache().Stats().HITM
					f.rep.Handle(&detect.Request{Pages: []uint64{heapBase}}, th.Clock())
				}
			}
		}
		if err := f.mc.Run([]func(*machine.Thread){body, body}); err != nil {
			t.Fatal(err)
		}
		after = f.mc.Cache().Stats().HITM - before
		return before, after
	}
	before, after := run(100)
	if before == 0 {
		t.Fatal("expected contention before repair")
	}
	// 500 remaining iterations should produce almost no HITM once each
	// thread writes its own physical page.
	if after*20 > before {
		t.Errorf("repair ineffective: %d HITM before, %d after", before, after)
	}
}

func TestHandleNilRequestIsNoOp(t *testing.T) {
	f := newFixture(t, 1)
	f.rep.Handle(nil, 0)
	f.rep.Handle(&detect.Request{}, 0)
	if f.rep.Converted() || f.rep.Stats.RepairEvents != 0 {
		t.Error("empty requests must not convert or count")
	}
}

func TestEverywhereProtectsWholeHeap(t *testing.T) {
	f := newFixture(t, 1)
	f.rep.Everywhere = true
	f.rep.HeapPages = func() []uint64 {
		return []uint64{heapBase, heapBase + 4096, heapBase + 8192}
	}
	body := func(th *machine.Thread) {
		th.Work(10)
		f.rep.Handle(&detect.Request{Pages: []uint64{heapBase}}, th.Clock())
		th.Store(1, heapBase+4096+8, 8, 1) // a page the detector never named
	}
	if err := f.mc.Run([]func(*machine.Thread){body}); err != nil {
		t.Fatal(err)
	}
	if f.rep.Stats.PagesProtected != 3 {
		t.Errorf("pages protected %d, want all 3", f.rep.Stats.PagesProtected)
	}
	if f.eng.Stats.TwinFaults != 1 {
		t.Error("write to an everywhere-protected page should twin-fault")
	}
}

func TestFinishedThreadsAreSkipped(t *testing.T) {
	f := newFixture(t, 2)
	err := f.mc.Run([]func(*machine.Thread){
		func(th *machine.Thread) { th.Work(10) }, // finishes immediately
		func(th *machine.Thread) {
			th.Work(50_000)
			f.rep.Handle(&detect.Request{Pages: []uint64{heapBase}}, th.Clock())
			th.Store(1, heapBase, 8, 9)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.rep.Spaces()); got != 1 {
		t.Errorf("only the live thread should convert, got %d spaces", got)
	}
}
