package repair

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// LatCoShare is the per-memory-access cost a thread pays for each other
// thread co-resident on its core after a map repair: SMT-style
// time-multiplexing of the load/store ports. Charged through the
// AccessCoster capability, so only the map backend's runs ever see it.
const LatCoShare = 10

// Mapping is the thread-and-data mapping backend (Pasqualin et al.,
// PAPERS.md): instead of isolating the contended data, it migrates the
// contending threads toward the data — onto the core whose socket is the
// flagged page's home node, and onto the *same* core so the ping-ponging
// lines collapse into one private cache. The repair trades interconnect
// HITMs for core co-residency: cheap when the threads are memory-bound on
// the shared lines, expensive when they need the whole machine's compute.
type Mapping struct {
	mc   *machine.Machine
	view *mem.AddrSpace

	migrated bool
	// coShare[c] is the number of threads co-resident on core c after
	// migration; AccessCost bills (n-1)*LatCoShare per access.
	coShare []int
	st      BackendStats
}

// NewMapping creates the mapping backend. view translates the detector's
// virtual page addresses to physical frames for home-node lookup.
func NewMapping(mc *machine.Machine, view *mem.AddrSpace) *Mapping {
	return &Mapping{mc: mc, view: view}
}

// Name implements Backend.
func (m *Mapping) Name() string { return BackendMap }

// Convert implements Backend: migration happens in Arm, keyed to the
// flagged data, so there is no separate execution-model change.
func (m *Mapping) Convert(now int64) error { return nil }

// Converted implements Backend.
func (m *Mapping) Converted() bool { return m.migrated }

// Spaces implements Backend: mapping never remaps memory.
func (m *Mapping) Spaces() []*mem.AddrSpace { return nil }

// BackendStats implements Backend.
func (m *Mapping) BackendStats() BackendStats {
	st := m.st
	st.Backend = BackendMap
	return st
}

// Arm migrates every thread that has taken HITMs onto the home core of the
// hottest flagged page. One migration per run: the first request names the
// contention the detector found; later requests are counted but the
// placement stands (re-shuffling threads per advice tick would thrash).
func (m *Mapping) Arm(req *detect.Request, now int64) error {
	if req == nil || len(req.Pages) == 0 {
		return nil
	}
	m.st.RepairEvents++
	if m.migrated {
		return nil
	}
	cs := m.mc.Cache()
	target, err := m.homeCore(req)
	if err != nil {
		m.st.FailedRepairs++
		return err
	}
	for _, th := range m.mc.Threads() {
		if th.State() == machine.Done || th.Stats.HITM == 0 {
			continue
		}
		if th.Core != target {
			th.SetCore(target)
			m.st.ThreadsMigrated++
		}
	}
	m.coShare = make([]int, cs.NumCores())
	for _, th := range m.mc.Threads() {
		if th.State() != machine.Done {
			m.coShare[th.Core]++
		}
	}
	m.migrated = true
	m.st.ConvertedAtCycle = now
	return nil
}

// homeCore picks the migration target: the first core on the home socket
// of the hottest flagged page (by summed estimated event rate; on the flat
// single-socket machine that is core 0).
func (m *Mapping) homeCore(req *detect.Request) (int, error) {
	pageOf := func(addr uint64) uint64 {
		ps := uint64(m.view.PageSize())
		return addr &^ (ps - 1)
	}
	rate := make(map[uint64]float64, len(req.Pages))
	for _, l := range req.Lines {
		rate[pageOf(l.Line)] += l.EstEventsPerSec
	}
	hottest, best := req.Pages[0], -1.0
	for _, p := range req.Pages {
		if r := rate[p]; r > best || (r == best && p < hottest) {
			hottest, best = p, r
		}
	}
	tr, fault := m.view.Translate(hottest, false)
	if fault != nil {
		return 0, fmt.Errorf("repair: map: translating page 0x%x: %v", hottest, fault)
	}
	cs := m.mc.Cache()
	return cs.FirstCoreOf(cs.HomeSocket(tr.Phys)), nil
}

// AccessCost implements AccessCoster: co-resident threads time-multiplex
// the core's access ports.
func (m *Mapping) AccessCost(t *machine.Thread) int64 {
	if !m.migrated {
		return 0
	}
	if n := m.coShare[t.Core]; n > 1 {
		return int64(n-1) * LatCoShare
	}
	return 0
}

var (
	_ Backend      = (*Mapping)(nil)
	_ AccessCoster = (*Mapping)(nil)
)
