package repair

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// Backend is the repair strategy seam: the runtime feeds every detector
// request to exactly one backend, and each backend removes the flagged
// false sharing through a different mechanism. All four are equivalent for
// correctness (the cache is a timing model; data lives in the address
// spaces) and differ only in repair cost and residual contention — which
// is what the `repair-backends` harness experiment measures.
type Backend interface {
	// Name identifies the backend (one of BackendNames).
	Name() string
	// Convert performs the backend's one-time execution-model change (T2P
	// fork-off, keyed-domain setup, ...) if it has one. Idempotent; Arm
	// calls it lazily, so explicit calls are only needed for
	// convert-at-startup setups like Sheriff.
	Convert(now int64) error
	// Arm repairs the request's flagged pages/lines. Errors are surfaced
	// as failed-repair stats by the caller; the simulation keeps running.
	Arm(req *detect.Request, now int64) error
	// Converted reports whether the one-time change has happened.
	Converted() bool
	// Spaces returns the backend's isolation address spaces (nil for
	// backends that do not remap memory); the runtime tears protection
	// down through them when pages go idle.
	Spaces() []*mem.AddrSpace
	// BackendStats summarizes the backend's activity.
	BackendStats() BackendStats
}

// AccessCoster is an optional Backend capability: a per-memory-access cost
// the repair imposes after engaging (e.g. the map backend's core
// co-residency). The runtime consults it from the post-access hook only
// when the active backend implements it, so the default path stays free.
type AccessCoster interface {
	AccessCost(t *machine.Thread) int64
}

// BackendStats is the cross-backend activity summary. Only the counters a
// mechanism actually uses are non-zero: pages for t2p/tmebox, lines for
// pad, migrations for map.
type BackendStats struct {
	// Backend names the strategy.
	Backend string
	// RepairEvents counts detector requests acted on.
	RepairEvents int
	// PagesProtected counts pages armed with the PTSB (t2p, tmebox).
	PagesProtected int
	// LinesIsolated counts cache lines re-segregated by padding (pad).
	LinesIsolated int
	// ThreadsMigrated counts threads re-pinned to the data's home (map).
	ThreadsMigrated int
	// FailedRepairs counts requests that could not be applied.
	FailedRepairs int
	// ConvertedAtCycle is the simulated time of the one-time conversion
	// (0 if never engaged).
	ConvertedAtCycle int64
}

// Backend names accepted by tmi.Config.RepairBackend.
const (
	BackendT2P    = "t2p"
	BackendPad    = "pad"
	BackendMap    = "map"
	BackendTMEBox = "tmebox"
)

// BackendNames lists the selectable repair backends in policy-table order.
var BackendNames = []string{BackendT2P, BackendPad, BackendMap, BackendTMEBox}

// ValidBackend reports whether name selects a backend ("" means t2p).
func ValidBackend(name string) bool {
	if name == "" {
		return true
	}
	for _, n := range BackendNames {
		if n == name {
			return true
		}
	}
	return false
}

// ErrUnknownBackend builds the rejection for an unrecognized backend name.
func ErrUnknownBackend(name string) error {
	return fmt.Errorf("repair: unknown backend %q (want one of %v)", name, BackendNames)
}
