// Package repair implements TMI's repair lifecycle (paper §3.2-3.3): the
// monitoring process PM reacts to a detector request by stopping every
// application thread with ptrace, converting each running thread into its
// own process via an injected fork trampoline, resuming them, and arming the
// page twinning store buffer on exactly the pages the detector identified.
//
// Conversion happens once, lazily, the first time repair is needed — the
// compatible-by-default property: applications without false sharing never
// leave the conventional threaded execution model.
//
// The paper's mechanism is one policy among several: repair is a Backend
// strategy (backend.go), and the T2P/PTSB engine below is its default
// implementation. The pad, map and tmebox backends (pad.go, mapping.go,
// tmebox.go) repair the same detector requests through allocator
// re-segregation, thread-and-data mapping, and fork-free keyed isolation.
package repair

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/ptsb"
	"repro/internal/sim/cache"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
	"repro/internal/sim/osim"
)

// Stats characterizes repair activity (Table 3).
type Stats struct {
	// RepairEvents counts detector requests acted on.
	RepairEvents int
	// PagesProtected counts distinct pages armed.
	PagesProtected int
	// FailedRepairs counts requests that could not be applied (conversion
	// or arming errors); the simulation keeps running.
	FailedRepairs int
	// ConvertedAtCycle is the simulated time of thread-to-process
	// conversion (0 if never converted).
	ConvertedAtCycle int64
	// T2PCycles is the per-thread conversion cost.
	T2PCycles []int64
}

// Engine is the monitoring process PM: the default `t2p` repair backend.
type Engine struct {
	os     *osim.OS
	app    *osim.Process
	mc     *machine.Machine
	engine *ptsb.Engine
	// Everywhere arms the PTSB on the whole heap at the first repair
	// (the paper's §4.3 PTSB-everywhere ablation) instead of targeting.
	Everywhere bool
	// heapPages enumerates all heap pages for the Everywhere ablation.
	HeapPages func() []uint64

	converted   bool
	childSpaces []*mem.AddrSpace

	Stats Stats
}

// New creates a repair engine for app running on mc, arming pages through e.
func New(o *osim.OS, app *osim.Process, mc *machine.Machine, e *ptsb.Engine) *Engine {
	return &Engine{os: o, app: app, mc: mc, engine: e}
}

// Name identifies the backend ("t2p").
func (r *Engine) Name() string { return BackendT2P }

// Converted reports whether threads have been made processes.
func (r *Engine) Converted() bool { return r.converted }

// Spaces returns the per-process address spaces after conversion.
func (r *Engine) Spaces() []*mem.AddrSpace { return r.childSpaces }

// Convert implements Backend: the stop-the-world T2P conversion.
func (r *Engine) Convert(now int64) error { return r.ConvertAllNow(now) }

// Arm implements Backend.
func (r *Engine) Arm(req *detect.Request, now int64) error { return r.Handle(req, now) }

// BackendStats implements Backend.
func (r *Engine) BackendStats() BackendStats {
	return BackendStats{
		Backend:          BackendT2P,
		RepairEvents:     r.Stats.RepairEvents,
		PagesProtected:   r.Stats.PagesProtected,
		FailedRepairs:    r.Stats.FailedRepairs,
		ConvertedAtCycle: r.Stats.ConvertedAtCycle,
	}
}

// ConvertAllNow performs the stop-the-world thread-to-process conversion
// immediately (Sheriff converts at startup; TMI calls this lazily from
// Handle). A conversion error leaves the remaining threads unconverted and
// the engine unarmed; the caller surfaces it as a failed repair.
func (r *Engine) ConvertAllNow(now int64) error {
	if r.converted {
		return nil
	}
	tracer := osim.Attach(r.os, r.app)
	tracer.StopAll()
	// Convert a stable snapshot: ConvertThreadToProcess mutates app.Threads.
	threads := append([]*machine.Thread(nil), r.app.Threads...)
	for _, th := range threads {
		if th.State() == machine.Done {
			continue
		}
		child, err := tracer.ConvertThreadToProcess(th)
		if err != nil {
			tracer.ResumeAll()
			r.Stats.FailedRepairs++
			return fmt.Errorf("repair: t2p conversion of thread %d: %w", th.ID, err)
		}
		r.childSpaces = append(r.childSpaces, child.Space)
	}
	tracer.ResumeAll()
	r.Stats.T2PCycles = tracer.T2PCycles
	r.Stats.ConvertedAtCycle = now
	r.converted = true
	return nil
}

// Handle services one detector request: convert on first use, then arm the
// PTSB on the requested pages (or the whole heap in the Everywhere
// ablation) in every per-process space.
func (r *Engine) Handle(req *detect.Request, now int64) error {
	if req == nil || len(req.Pages) == 0 {
		return nil
	}
	if err := r.ConvertAllNow(now); err != nil {
		return err
	}
	r.Stats.RepairEvents++
	pages := req.Pages
	if r.Everywhere && r.HeapPages != nil {
		pages = r.HeapPages()
	}
	for _, p := range pages {
		if r.engine.Protected(p) {
			continue
		}
		if err := r.engine.Protect(p, r.childSpaces); err != nil {
			r.Stats.FailedRepairs++
			return fmt.Errorf("repair: arming page 0x%x: %w", p, err)
		}
		r.Stats.PagesProtected++
	}
	return nil
}

// T2PMicros converts the recorded per-thread conversion costs to
// microseconds.
func (r *Engine) T2PMicros() []float64 {
	out := make([]float64, len(r.Stats.T2PCycles))
	for i, c := range r.Stats.T2PCycles {
		out[i] = float64(c) / (cache.ClockHz / 1e6)
	}
	return out
}
