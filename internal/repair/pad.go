package repair

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/detect"
	"repro/internal/sim/cache"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// CostResegregate is the stop-the-world cost, charged to every live
// thread, of re-segregating one page's allocations onto private cache
// lines: walk the page, reallocate each object line-aligned, copy, patch
// the references. Far cheaper than a T2P fork but paid once per flagged
// page.
const CostResegregate = 2500

// Pad is the allocator realignment backend: instead of isolating pages
// behind the PTSB, it re-segregates the offending allocations so no two
// objects share a line. In the model that is two coordinated moves — the
// allocator's placement policy switches to PaddedPolicy for everything
// allocated from now on, and every line of each flagged page is re-homed
// onto per-core private shadow entries in the cache (cache.IsolateLine),
// which is exactly what "every object on its own line" means to the
// coherence fabric. Page granularity matches the detector's repair
// requests (and the other backends): the whole offending allocation
// neighborhood is re-laid-out, not just the single hottest line.
type Pad struct {
	mc   *machine.Machine
	view *mem.AddrSpace
	al   *alloc.Allocator
	// seen tracks pages already re-segregated, so repeated advice for a
	// hot page is not re-charged.
	seen  map[uint64]bool
	armed bool
	st    BackendStats
}

// NewPad creates the padding backend. view translates the detector's
// virtual line addresses to physical ones (the shared pre-repair view —
// pad never remaps anything, so it stays authoritative).
func NewPad(mc *machine.Machine, view *mem.AddrSpace, al *alloc.Allocator) *Pad {
	return &Pad{mc: mc, view: view, al: al, seen: make(map[uint64]bool)}
}

// Name implements Backend.
func (p *Pad) Name() string { return BackendPad }

// Convert implements Backend: padding needs no execution-model change
// beyond the policy switch, which Arm performs lazily.
func (p *Pad) Convert(now int64) error { return nil }

// Converted implements Backend.
func (p *Pad) Converted() bool { return p.armed }

// Spaces implements Backend: pad never remaps memory.
func (p *Pad) Spaces() []*mem.AddrSpace { return nil }

// BackendStats implements Backend.
func (p *Pad) BackendStats() BackendStats {
	st := p.st
	st.Backend = BackendPad
	return st
}

// Arm re-segregates every flagged page the request carries.
func (p *Pad) Arm(req *detect.Request, now int64) error {
	if req == nil || len(req.Pages) == 0 {
		return nil
	}
	p.st.RepairEvents++
	if !p.armed {
		// Future allocations land on private lines from here on.
		p.al.SetPolicy(alloc.PaddedPolicy())
		p.st.ConvertedAtCycle = now
		p.armed = true
	}
	cs := p.mc.Cache()
	lines := uint64(p.view.PageSize()) / cache.LineSize
	for _, page := range req.Pages {
		if p.seen[page] {
			continue
		}
		tr, fault := p.view.Translate(page, false)
		if fault != nil {
			p.st.FailedRepairs++
			return fmt.Errorf("repair: pad: translating page 0x%x: %v", page, fault)
		}
		for i := uint64(0); i < lines; i++ {
			cs.IsolateLine(tr.Phys + i*cache.LineSize)
		}
		p.seen[page] = true
		p.st.LinesIsolated += int(lines)
		// Stop-the-world move: every live thread pays the realloc+copy.
		for _, th := range p.mc.Threads() {
			if th.State() != machine.Done {
				th.AddCost(CostResegregate)
			}
		}
	}
	return nil
}

var _ Backend = (*Pad)(nil)
