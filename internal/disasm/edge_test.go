package disasm

import "testing"

// TestUnknownPCEdges exercises every way a PC can fall outside the
// synthetic text segment: below the base, misaligned within it, exactly at
// the end, far past the end, and the empty-program case.
func TestUnknownPCEdges(t *testing.T) {
	empty := NewProgram()
	if _, ok := empty.Disassemble(CodeBase); ok {
		t.Error("empty program must not disassemble its own base")
	}

	p := NewProgram()
	s := p.Site("edge.only", KindStore, 8)
	cases := []struct {
		name string
		pc   uint64
	}{
		{"zero", 0},
		{"below base", CodeBase - InstrBytes},
		{"just below base", CodeBase - 1},
		{"misaligned +1", s.PC() + 1},
		{"misaligned +3", s.PC() + 3},
		{"text end", p.TextEnd()},
		{"far past end", p.TextEnd() + 64*InstrBytes},
	}
	for _, c := range cases {
		if info, ok := p.Disassemble(c.pc); ok {
			t.Errorf("%s (0x%x): unexpectedly disassembled to %+v", c.name, c.pc, info)
		}
	}
	if info, ok := p.Disassemble(s.PC()); !ok || info.Site != s {
		t.Errorf("valid PC failed to disassemble: %+v ok=%v", info, ok)
	}
}

// TestAtomicKindReadsAndWrites pins the locked-RMW property the sharing
// classifier and the layout predictor both depend on: KindAtomic counts as
// both a load and a store, while the plain kinds are one-directional.
func TestAtomicKindReadsAndWrites(t *testing.T) {
	cases := []struct {
		kind          Kind
		reads, writes bool
	}{
		{KindLoad, true, false},
		{KindStore, false, true},
		{KindAtomic, true, true},
		{KindOther, false, false},
	}
	for _, c := range cases {
		if c.kind.Reads() != c.reads || c.kind.Writes() != c.writes {
			t.Errorf("%s: Reads=%v Writes=%v, want %v/%v",
				c.kind, c.kind.Reads(), c.kind.Writes(), c.reads, c.writes)
		}
	}
}

// TestOverlappingWidthSites registers sites of different widths that touch
// overlapping bytes of the same word: the disassembly must recover each
// site's own width (the detector distinguishes true from false sharing by
// byte overlap, so a wrong width miscounts the overlap).
func TestOverlappingWidthSites(t *testing.T) {
	p := NewProgram()
	wide := p.Site("ovl.store8", KindStore, 8)
	narrow := p.Site("ovl.load4", KindLoad, 4)
	atomic := p.Site("ovl.cas1", KindAtomic, 1)
	for _, c := range []struct {
		s     Site
		kind  Kind
		width int
	}{{wide, KindStore, 8}, {narrow, KindLoad, 4}, {atomic, KindAtomic, 1}} {
		info, ok := p.Disassemble(c.s.PC())
		if !ok || info.Kind != c.kind || info.Width != c.width {
			t.Errorf("site %d: got %+v ok=%v, want kind=%s width=%d", c.s, info, ok, c.kind, c.width)
		}
	}
}

// TestRuntimeSiteRegistration checks that RuntimeSite marks the site as
// runtime-internal, that the flag participates in the signature check, and
// that idempotent re-registration still works.
func TestRuntimeSiteRegistration(t *testing.T) {
	p := NewProgram()
	rt := p.RuntimeSite("psynclike.cas", KindAtomic, 8)
	info, ok := p.Disassemble(rt.PC())
	if !ok || !info.Runtime {
		t.Errorf("runtime site not marked: %+v ok=%v", info, ok)
	}
	if again := p.RuntimeSite("psynclike.cas", KindAtomic, 8); again != rt {
		t.Error("idempotent runtime re-registration should return the same site")
	}
	app := p.Site("app.store", KindStore, 8)
	if info, _ := p.Disassemble(app.PC()); info.Runtime {
		t.Error("application site must not be marked runtime")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a runtime site as an application site should panic")
		}
	}()
	p.Site("psynclike.cas", KindAtomic, 8)
}

// TestSitesReturnsCopy verifies the listing accessor snapshots the table:
// mutating the returned slice must not corrupt later disassembly.
func TestSitesReturnsCopy(t *testing.T) {
	p := NewProgram()
	s := p.Site("copy.load", KindLoad, 4)
	listing := p.Sites()
	if len(listing) != 1 || listing[0].Name != "copy.load" {
		t.Fatalf("listing %+v", listing)
	}
	listing[0].Kind = KindStore
	listing[0].Name = "tampered"
	if info, _ := p.Disassemble(s.PC()); info.Kind != KindLoad || info.Name != "copy.load" {
		t.Errorf("mutating the listing leaked into the program: %+v", info)
	}
}
