// Package disasm models the binary-analysis side of TMI's detector. The
// paper's detection thread disassembles the application binary once at
// startup to learn, for every instruction address, whether it is a load or a
// store and how wide the access is — information PEBS records do not carry
// but that is required to distinguish true sharing (overlapping bytes) from
// false sharing (disjoint bytes) (§3.1).
//
// In this reproduction a workload's "binary" is a Program: a table of
// instruction sites registered by the workload before it runs. Each site
// gets a synthetic instruction address (PC); the detector recovers kind and
// width by "disassembling" the PC through this table, exactly as TMI's
// detector recovers them from the real binary.
package disasm

import (
	"fmt"
	"sync"
)

// Kind classifies an instruction site.
type Kind uint8

// Instruction kinds.
const (
	KindLoad Kind = iota
	KindStore
	KindAtomic // locked RMW: both a load and a store
	KindOther
)

func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindAtomic:
		return "atomic"
	case KindOther:
		return "other"
	}
	return "?"
}

// Reads reports whether the instruction kind reads memory. A locked RMW
// (KindAtomic) both reads and writes its operand.
func (k Kind) Reads() bool { return k == KindLoad || k == KindAtomic }

// Writes reports whether the instruction kind writes memory.
func (k Kind) Writes() bool { return k == KindStore || k == KindAtomic }

// CodeBase is where the synthetic text segment starts; each site occupies
// InstrBytes bytes of it.
const (
	CodeBase   = 0x40_0000
	InstrBytes = 4
)

// Site identifies one registered instruction site.
type Site uint32

// PC returns the synthetic instruction address of the site.
func (s Site) PC() uint64 { return CodeBase + uint64(s)*InstrBytes }

// SiteInfo describes a registered instruction site.
type SiteInfo struct {
	Site  Site
	Name  string
	Kind  Kind
	Width int // access width in bytes
	// Runtime marks a site that belongs to the runtime library (psync's
	// lock words and barriers) rather than to application code. The paper's
	// LLVM pass instruments only the application; runtime-internal atomics
	// execute below the annotation layer, so the static verifier and the
	// dynamic sanitizer exempt them from region-enclosure checks.
	Runtime bool
}

// Program is the instruction-site table for one workload binary.
type Program struct {
	mu     sync.Mutex
	sites  []SiteInfo
	byName map[string]Site
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{byName: make(map[string]Site)}
}

// Site registers (or looks up) an instruction site by name. Re-registering
// the same name must use the same kind and width.
func (p *Program) Site(name string, kind Kind, width int) Site {
	return p.register(name, kind, width, false)
}

// RuntimeSite registers a runtime-internal instruction site (see
// SiteInfo.Runtime). The psync layer registers its lock and barrier
// instructions through this so annotation checkers can tell library code
// from application code.
func (p *Program) RuntimeSite(name string, kind Kind, width int) Site {
	return p.register(name, kind, width, true)
}

func (p *Program) register(name string, kind Kind, width int, runtime bool) Site {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.byName[name]; ok {
		si := p.sites[s]
		if si.Kind != kind || si.Width != width || si.Runtime != runtime {
			panic(fmt.Sprintf("disasm: site %q re-registered with different signature", name))
		}
		return s
	}
	s := Site(len(p.sites))
	p.sites = append(p.sites, SiteInfo{Site: s, Name: name, Kind: kind, Width: width, Runtime: runtime})
	p.byName[name] = s
	return s
}

// Sites returns a copy of the site table in registration (PC) order — the
// "disassembly listing" static analyses walk.
func (p *Program) Sites() []SiteInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SiteInfo, len(p.sites))
	copy(out, p.sites)
	return out
}

// Disassemble recovers the site information behind a PC, as the detector's
// startup disassembly pass would. ok is false for addresses outside the
// registered text segment.
func (p *Program) Disassemble(pc uint64) (SiteInfo, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pc < CodeBase || (pc-CodeBase)%InstrBytes != 0 {
		return SiteInfo{}, false
	}
	idx := (pc - CodeBase) / InstrBytes
	if idx >= uint64(len(p.sites)) {
		return SiteInfo{}, false
	}
	return p.sites[idx], true
}

// NumSites reports how many sites are registered.
func (p *Program) NumSites() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sites)
}

// TextEnd returns the first address past the synthetic text segment.
func (p *Program) TextEnd() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return CodeBase + uint64(len(p.sites))*InstrBytes
}

// FootprintBytes estimates the detector-side memory cost of holding the
// disassembly tables (part of the Figure 8 memory accounting).
func (p *Program) FootprintBytes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	const perSite = 48 // table entry + index overhead
	return uint64(len(p.sites)) * perSite
}
