package disasm

import "testing"

func TestSiteRegistrationAndDisassembly(t *testing.T) {
	p := NewProgram()
	ld := p.Site("hist.load_pixel", KindLoad, 4)
	st := p.Site("hist.inc_counter", KindStore, 8)
	if ld == st {
		t.Fatal("distinct names must get distinct sites")
	}
	if again := p.Site("hist.load_pixel", KindLoad, 4); again != ld {
		t.Error("re-registration should return the same site")
	}
	info, ok := p.Disassemble(st.PC())
	if !ok || info.Kind != KindStore || info.Width != 8 || info.Name != "hist.inc_counter" {
		t.Errorf("disassemble store site: %+v ok=%v", info, ok)
	}
	if _, ok := p.Disassemble(0x1234); ok {
		t.Error("address outside text must not disassemble")
	}
	if _, ok := p.Disassemble(st.PC() + 1); ok {
		t.Error("misaligned PC must not disassemble")
	}
	if _, ok := p.Disassemble(p.TextEnd()); ok {
		t.Error("past-the-end PC must not disassemble")
	}
}

func TestSiteSignatureConflictPanics(t *testing.T) {
	p := NewProgram()
	p.Site("x", KindLoad, 4)
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration should panic")
		}
	}()
	p.Site("x", KindStore, 4)
}

func TestFootprintGrowsWithSites(t *testing.T) {
	p := NewProgram()
	base := p.FootprintBytes()
	for i := 0; i < 100; i++ {
		p.Site(string(rune('a'+i%26))+string(rune('0'+i/26)), KindLoad, 8)
	}
	if p.FootprintBytes() <= base {
		t.Error("footprint should grow with registered sites")
	}
	if p.NumSites() != 100 {
		t.Errorf("sites %d, want 100", p.NumSites())
	}
}
