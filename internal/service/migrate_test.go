package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/sim/trace"
	"repro/internal/toolio"
)

// streamWindows drives windows [lo,hi) of log through one /v1/stream
// exchange with stream-global tick seq numbers (so advice from split
// streams concatenates byte-identically to one continuous stream), plus an
// optional trailing half-window, and returns the advice bytes.
func streamWindows(t *testing.T, baseURL, tenant string, log *trace.SampleLog, lo, hi int, tail []detect.Sample) []byte {
	t.Helper()
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 64<<10)
		werr := func() error {
			hello := toolio.WireHello{K: toolio.WireHelloKind, Version: toolio.SchemaVersion, Tenant: tenant, PageSize: log.PageSize}
			if _, err := bw.Write(toolio.EncodeWire(hello)); err != nil {
				return err
			}
			writeSamples := func(samples []detect.Sample) error {
				msg := toolio.WireSamples{K: toolio.WireSamplesKind, S: make([][4]uint64, len(samples))}
				for i, sm := range samples {
					wr := uint64(0)
					if sm.Write {
						wr = 1
					}
					msg.S[i] = [4]uint64{uint64(sm.TID), sm.Addr, uint64(sm.Width), wr}
				}
				_, err := bw.Write(toolio.EncodeWire(msg))
				return err
			}
			for i := lo; i < hi; i++ {
				if err := writeSamples(log.WindowSamples(i)); err != nil {
					return err
				}
				w := log.Windows[i]
				tick := toolio.WireTick{K: toolio.WireTickKind, Seq: i, IntervalSec: w.IntervalSec, Period: w.Period}
				if _, err := bw.Write(toolio.EncodeWire(tick)); err != nil {
					return err
				}
			}
			if len(tail) > 0 {
				if err := writeSamples(tail); err != nil {
					return err
				}
			}
			return bw.Flush()
		}()
		pw.CloseWithError(werr)
	}()
	resp, err := http.Post(baseURL+"/v1/stream", "application/x-ndjson", pr)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %s", resp.Status)
	}
	advice, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read advice: %v", err)
	}
	return advice
}

// migrate posts a migrate request to src and returns the decoded ack.
func migrate(t *testing.T, srcURL, tenant, targetURL string) (migrateAck, int) {
	t.Helper()
	body, _ := json.Marshal(migrateRequest{Tenant: tenant, Target: targetURL})
	resp, err := http.Post(srcURL+"/v1/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	defer resp.Body.Close()
	var ack migrateAck
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatalf("migrate ack: %v", err)
		}
	}
	return ack, resp.StatusCode
}

// exportLog fetches and parses a tenant's migration snapshot, or returns
// the non-200 status.
func exportLog(t *testing.T, baseURL, tenant string) (*trace.SampleLog, int) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/export?tenant=" + tenant)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	gotTenant, log, err := readMigrationStream(bufio.NewReader(resp.Body), toolio.MaxWireLine, 1<<22)
	if err != nil {
		t.Fatalf("parse export: %v", err)
	}
	if gotTenant != tenant {
		t.Fatalf("export tenant %q, want %q", gotTenant, tenant)
	}
	return log, http.StatusOK
}

// TestMigrateContinuesAdviceByteIdentical is the core live-rebalancing
// contract: stream half a trace to node A, migrate the session to node B,
// stream the rest to B — the concatenated advice must be byte-identical to
// one uninterrupted stream (and to the offline replay).
func TestMigrateContinuesAdviceByteIdentical(t *testing.T) {
	log := syntheticLog()
	_, hsA := newTestServer(t, Config{Shards: 2, Migratable: true, NodeID: "a"})
	_, hsB := newTestServer(t, Config{Shards: 2, Migratable: true, NodeID: "b"})

	want, err := Replay(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 1)
	if err != nil {
		t.Fatal(err)
	}

	const tenant = "mig-1"
	cut := len(log.Windows) / 2
	adv1 := streamWindows(t, hsA.URL, tenant, log, 0, cut, nil)

	ack, status := migrate(t, hsA.URL, tenant, hsB.URL)
	if status != http.StatusOK || !ack.Migrated {
		t.Fatalf("migrate: status %d, ack %+v", status, ack)
	}
	if ack.Windows != cut || ack.Records != log.Windows[cut-1].End {
		t.Fatalf("ack %+v, want %d windows / %d records", ack, cut, log.Windows[cut-1].End)
	}
	// Source cut over: the session exists only on B now.
	if _, status := exportLog(t, hsA.URL, tenant); status != http.StatusNotFound {
		t.Fatalf("source still has the session after ack (status %d)", status)
	}
	moved, status := exportLog(t, hsB.URL, tenant)
	if status != http.StatusOK || moved.Len() != ack.Records || len(moved.Windows) != cut {
		t.Fatalf("destination snapshot: status %d, %d records / %d windows", status, moved.Len(), len(moved.Windows))
	}

	adv2 := streamWindows(t, hsB.URL, tenant, log, cut, len(log.Windows), nil)
	got := append(append([]byte(nil), adv1...), adv2...)
	if !bytes.Equal(got, want) {
		t.Errorf("migrated advice stream diverged from offline replay:\ngot:  %d bytes\nwant: %d bytes", len(got), len(want))
	}
}

// TestExportRoundTripsOpenWindow pins the snapshot codec: closed windows
// and the open (un-ticked) trailing window both survive an export/parse
// round trip exactly.
func TestExportRoundTripsOpenWindow(t *testing.T) {
	log := syntheticLog()
	_, hs := newTestServer(t, Config{Shards: 1, Migratable: true})

	tail := log.WindowSamples(3)[:100]
	const tenant = "export-1"
	streamWindows(t, hs.URL, tenant, log, 0, 3, tail)

	got, status := exportLog(t, hs.URL, tenant)
	if status != http.StatusOK {
		t.Fatalf("export status %d", status)
	}
	wantRecords := log.Windows[2].End + len(tail)
	if got.Len() != wantRecords || len(got.Windows) != 3 {
		t.Fatalf("round trip: %d records / %d windows, want %d / 3", got.Len(), len(got.Windows), wantRecords)
	}
	for i, win := range got.Windows {
		if win != log.Windows[i] {
			t.Errorf("window %d: %+v != %+v", i, win, log.Windows[i])
		}
	}
	for i, sm := range got.Samples[:log.Windows[2].End] {
		if sm != log.Samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, sm, log.Samples[i])
		}
	}
	for i, sm := range got.Samples[log.Windows[2].End:] {
		if sm != tail[i] {
			t.Fatalf("tail sample %d: %+v != %+v", i, sm, tail[i])
		}
	}
}

// TestImportTruncatedInstallsNothing: a migration stream cut off mid-flight
// must leave the destination with no session at all — never a partially
// replayed one.
func TestImportTruncatedInstallsNothing(t *testing.T) {
	log := syntheticLog()
	srv, hs := newTestServer(t, Config{Shards: 1, Migratable: true})

	var buf bytes.Buffer
	if err := writeMigrationStream(&buf, "trunc-1", log); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-10]
	resp, err := http.Post(hs.URL+"/v1/import", "application/octet-stream", bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated import status %d, want 400", resp.StatusCode)
	}
	if info := srv.Inspect("trunc-1"); info.Exists {
		t.Fatalf("truncated import installed a session: %+v", info)
	}
	if got := srv.Metrics().sessionsActive.Load(); got != 0 {
		t.Errorf("sessionsActive = %d, want 0", got)
	}
	if got := srv.Metrics().migrateFailed.Load(); got != 1 {
		t.Errorf("migrateFailed = %d, want 1", got)
	}
}

// TestEvictionRacingMigration races TTL eviction against a concurrent
// migration of the same tenant, repeatedly. The invariant (DESIGN §17):
// whichever wins on the owning shard, the tenant is afterwards either
// whole on the destination or fresh everywhere — never half-replayed — and
// the advice a client subsequently sees is byte-identical to the offline
// truth for whatever state survived.
func TestEvictionRacingMigration(t *testing.T) {
	log := syntheticLog()
	cut := 3
	wantFull, err := Replay(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 1)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 6; round++ {
		tenant := fmt.Sprintf("race-%d", round)
		clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
		srvA, hsA := newTestServer(t, Config{Shards: 1, Migratable: true, SessionTTL: time.Second, now: clk.now})
		_, hsB := newTestServer(t, Config{Shards: 1, Migratable: true})

		streamWindows(t, hsA.URL, tenant, log, 0, cut, nil)
		// The session is now idle past its TTL: the next shard pass evicts
		// it. Race that pass (triggered by Inspect) against the migration's
		// export job — shard-goroutine serialization means one of them wins
		// outright.
		clk.advance(2 * time.Second)
		var wg sync.WaitGroup
		var ack migrateAck
		var status int
		wg.Add(2)
		go func() { defer wg.Done(); ack, status = migrate(t, hsA.URL, tenant, hsB.URL) }()
		go func() { defer wg.Done(); srvA.Inspect(tenant) }()
		wg.Wait()

		if status != http.StatusOK {
			t.Fatalf("round %d: migrate status %d", round, status)
		}
		if _, st := exportLog(t, hsA.URL, tenant); st != http.StatusNotFound {
			t.Fatalf("round %d: source kept the session (status %d)", round, st)
		}
		if ack.Migrated {
			// Migration won: destination must hold the whole prefix.
			moved, st := exportLog(t, hsB.URL, tenant)
			if st != http.StatusOK || len(moved.Windows) != cut || moved.Len() != log.Windows[cut-1].End {
				t.Fatalf("round %d: migrated session not whole: status %d, %d records / %d windows",
					round, st, moved.Len(), len(moved.Windows))
			}
			adv2 := streamWindows(t, hsB.URL, tenant, log, cut, len(log.Windows), nil)
			if !bytes.HasSuffix(wantFull, adv2) {
				t.Errorf("round %d: continuation advice is not the offline suffix", round)
			}
		} else {
			// Eviction won: the tenant must come back completely fresh.
			if _, st := exportLog(t, hsB.URL, tenant); st != http.StatusNotFound {
				t.Fatalf("round %d: no-op migration left state on destination (status %d)", round, st)
			}
			adv := streamWindows(t, hsB.URL, tenant, log, 0, len(log.Windows), nil)
			if !bytes.Equal(adv, wantFull) {
				t.Errorf("round %d: fresh replay after eviction lost parity", round)
			}
		}
		hsA.Close()
		hsB.Close()
	}
}

// TestMigrateWhileDraining pins drain semantics: a draining node refuses
// migration work with 503 (the shard queues are closing; the router treats
// drain as its own ring-level operation instead).
func TestMigrateWhileDraining(t *testing.T) {
	log := syntheticLog()
	srv, hs := newTestServer(t, Config{Shards: 1, Migratable: true})
	streamWindows(t, hs.URL, "drain-1", log, 0, 2, nil)
	srv.BeginDrain()
	if _, status := migrate(t, hs.URL, "drain-1", "http://127.0.0.1:1"); status != http.StatusServiceUnavailable {
		t.Fatalf("migrate while draining: status %d, want 503", status)
	}
}

// TestMigrateNotMigratable: nodes without capture refuse the whole surface
// with 409.
func TestMigrateNotMigratable(t *testing.T) {
	_, hs := newTestServer(t, Config{Shards: 1})
	for _, ep := range []string{"/v1/export?tenant=x", "/v1/migrate", "/v1/import"} {
		var resp *http.Response
		var err error
		if strings.HasPrefix(ep, "/v1/export") {
			resp, err = http.Get(hs.URL + ep)
		} else {
			resp, err = http.Post(hs.URL+ep, "application/json", strings.NewReader("{}"))
		}
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s on non-migratable node: status %d, want 409", ep, resp.StatusCode)
		}
	}
}

// TestHealthzJSON pins the healthz contract twice over: plain probes
// still get the historical bare "ok" 200 body, and JSON-accepting probes
// get node identity, schema version and session counts.
func TestHealthzJSON(t *testing.T) {
	log := syntheticLog()
	srv, hs := newTestServer(t, Config{Shards: 2, NodeID: "node-7", Migratable: true})
	streamWindows(t, hs.URL, "hz-1", log, 0, 2, nil)

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("bare healthz: status %d body %q, want 200 %q", resp.StatusCode, body, "ok\n")
	}

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/healthz", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var h NodeHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	resp.Body.Close()
	want := NodeHealth{Status: "ok", Node: "node-7", Schema: toolio.SchemaVersion, Shards: 2, Sessions: 1, Migratable: true}
	if h != want {
		t.Errorf("healthz JSON = %+v, want %+v", h, want)
	}

	srv.BeginDrain()
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("draining healthz JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Errorf("draining healthz: status %d %q, want 503 draining", resp.StatusCode, h.Status)
	}
}

// TestRetryAfterJitter pins the 429 backoff jitter bounds: every value in
// [1,3] seconds, and enough spread that a thundering herd of rejected
// clients does not re-arrive in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := retryAfterSeconds()
		if v < retryAfterMin || v > retryAfterMax {
			t.Fatalf("retryAfterSeconds() = %d, want within [%d,%d]", v, retryAfterMin, retryAfterMax)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 draws produced %d distinct backoffs — jitter is not jittering", len(seen))
	}
}
