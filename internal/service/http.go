package service

import (
	"bufio"
	"fmt"
	"net/http"
	"time"

	"repro/internal/detect"
	"repro/internal/toolio"
)

// maxWireLine bounds one NDJSON line (a sample batch of a few thousand
// quads fits comfortably; anything larger is a protocol violation, not
// load).
const maxWireLine = 8 << 20

// handleStream serves POST /v1/stream: hello, then sample/tick rounds,
// with one advice line flushed back per tick. Admission is checked against
// the tenant's shard before any work is queued: a saturated shard answers
// 429 with Retry-After, which keeps the service's memory bounded by
// (shards × queue depth × batch size) no matter how many clients push.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "tmid: draining", http.StatusServiceUnavailable)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxWireLine)

	if !sc.Scan() {
		http.Error(w, "tmid: empty stream (expected hello)", http.StatusBadRequest)
		return
	}
	hello, err := toolio.DecodeWireMsg(sc.Bytes())
	if err != nil || hello.K != toolio.WireHelloKind {
		http.Error(w, "tmid: first line must be a hello", http.StatusBadRequest)
		return
	}
	if hello.Version != toolio.SchemaVersion {
		http.Error(w, fmt.Sprintf("tmid: wire schema version %d, want %d", hello.Version, toolio.SchemaVersion), http.StatusBadRequest)
		return
	}
	if hello.Tenant == "" {
		http.Error(w, "tmid: hello without tenant", http.StatusBadRequest)
		return
	}
	pageSize := hello.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}
	if pageSize < 0 || pageSize&(pageSize-1) != 0 {
		http.Error(w, fmt.Sprintf("tmid: page size %d is not a power of two", pageSize), http.StatusBadRequest)
		return
	}

	sh := s.shardFor(hello.Tenant)
	if sh.saturated() {
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "tmid: shard saturated, retry later", http.StatusTooManyRequests)
		return
	}

	s.metrics.streamsTotal.Add(1)
	s.metrics.streamsOpen.Add(1)
	defer s.metrics.streamsOpen.Add(-1)

	// Advice lines interleave with request-body reads on one HTTP/1.1
	// exchange; without full-duplex the server would fail body reads after
	// the first write. (Best effort: HTTP/2 and test recorders don't need
	// it.)
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The client learns it was admitted from the (flushed) 200 header
	// before its first tick round-trips.
	flush()

	fail := func(werr toolio.WireError) {
		werr.K = toolio.WireErrorKind
		w.Write(toolio.EncodeWire(werr))
		flush()
	}

	reply := make(chan toolio.WireAdvice, 1)
	for sc.Scan() {
		msg, err := toolio.DecodeWireMsg(sc.Bytes())
		if err != nil {
			fail(toolio.WireError{Error: err.Error()})
			return
		}
		switch msg.K {
		case toolio.WireSamplesKind:
			if len(msg.S) == 0 {
				continue
			}
			samples := make([]detect.Sample, len(msg.S))
			for i, q := range msg.S {
				samples[i] = detect.Sample{TID: int(q[0]), Addr: q[1], Width: int(q[2]), Write: q[3] != 0}
			}
			j := job{tenant: hello.Tenant, pageSize: pageSize, samples: samples}
			if !s.enqueue(sh, j) {
				s.metrics.droppedBatches.Add(1)
				s.metrics.droppedRecords.Add(uint64(len(samples)))
				fail(toolio.WireError{Error: "shard overloaded, batch dropped", RetryMs: 1000})
				return
			}
		case toolio.WireTickKind:
			tick := toolio.WireTick{K: msg.K, Seq: msg.Seq, IntervalSec: msg.IntervalSec, Period: msg.Period}
			if tick.IntervalSec <= 0 || tick.Period < 1 {
				fail(toolio.WireError{Error: fmt.Sprintf("tick seq %d: interval and period must be positive", tick.Seq)})
				return
			}
			j := job{tenant: hello.Tenant, pageSize: pageSize, tick: &tick, reply: reply, enqueued: s.cfg.now()}
			if !s.enqueue(sh, j) {
				s.metrics.droppedBatches.Add(1)
				fail(toolio.WireError{Error: "shard overloaded, tick dropped", RetryMs: 1000})
				return
			}
			adv := <-reply
			w.Write(toolio.EncodeWire(adv))
			flush()
		default:
			fail(toolio.WireError{Error: fmt.Sprintf("unexpected message kind %q", msg.K)})
			return
		}
	}
	if err := sc.Err(); err != nil {
		fail(toolio.WireError{Error: err.Error()})
	}
	// EOF ends the stream but not the session: the tenant may reconnect and
	// continue until the TTL evicts it.
}

// enqueue puts a job on the shard's bounded queue, blocking up to the
// configured backpressure wait. false means the queue stayed saturated (or
// the server began draining) and the job was not queued.
func (s *Server) enqueue(sh *shard, j job) bool {
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.closed {
		return false
	}
	select {
	case sh.jobs <- j:
		return true
	default:
	}
	t := time.NewTimer(s.cfg.EnqueueWait)
	defer t.Stop()
	select {
	case sh.jobs <- j:
		return true
	case <-t.C:
		return false
	}
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while queued work finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	depths := make([]int, len(s.shards))
	for i, sh := range s.shards {
		depths[i] = sh.depth()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, depths, s.cfg.QueueDepth, s.draining.Load())
}
