package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/detect"
	"repro/internal/toolio"
)

// maxWireLine bounds one NDJSON wire line on the client's response reader;
// the server side uses Config.MaxFrameBytes (same default).
const maxWireLine = toolio.MaxWireLine

// recycleDepth is the capacity of a stream's sample-buffer free list. The
// reader owns one buffer while decoding and the shard queue holds at most
// a few of this stream's batches at once, so a small pool is enough to
// make the steady state allocation-free; overflow buffers just fall to the
// garbage collector.
const recycleDepth = 4

// stream is one admitted /v1/stream exchange: the negotiated session
// parameters plus the per-stream sample-buffer free list that the
// zero-copy ingest path recycles batches through.
type stream struct {
	tenant   string
	pageSize int
	sh       *shard
	free     chan []detect.Sample
	reply    chan toolio.WireAdvice
}

// buffer returns a recycled sample buffer of length n (allocating only
// when the free list is empty or too small — warmup, never steady state).
func (st *stream) buffer(n int) []detect.Sample {
	select {
	case b := <-st.free:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	if n < toolio.MaxWireBatch/16 {
		// Round up so one early small batch doesn't pin an undersized
		// buffer in the pool forever.
		return make([]detect.Sample, n, toolio.MaxWireBatch/16)
	}
	return make([]detect.Sample, n)
}

// convert copies one decoded columnar batch into a recycled sample buffer.
// The ranges were validated at frame decode, so this is four column reads
// and a store per record — no allocation, no per-record range branch.
func (st *stream) convert(cols *toolio.SampleColumns) []detect.Sample {
	samples := st.buffer(cols.Len())
	for i := range samples {
		samples[i] = detect.Sample{
			TID:   int(cols.TID[i]),
			Addr:  cols.Addr[i],
			Width: int(cols.Width[i]),
			Write: cols.Write[i] != 0,
		}
	}
	return samples
}

// convertQuads is convert's NDJSON twin: quads were range-checked by
// DecodeWireMsg, and the buffer comes from the same recycle pool.
func (st *stream) convertQuads(quads [][4]uint64) []detect.Sample {
	samples := st.buffer(len(quads))
	for i, q := range quads {
		samples[i] = detect.Sample{TID: int(q[0]), Addr: q[1], Width: int(q[2]), Write: q[3] != 0}
	}
	return samples
}

// handleStream serves POST /v1/stream: an NDJSON hello negotiating the
// sample encoding, then sample/tick rounds in that encoding, with one
// NDJSON advice line flushed back per tick. Admission is checked against
// the tenant's shard before any work is queued: a saturated shard answers
// 429 with Retry-After, which keeps the service's memory bounded by
// (shards × queue depth × batch size) no matter how many clients push.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 256<<10)
	// Returning with unread request body arms net/http's post-handler
	// discard, whose EOF can start a background read that races the
	// server's next-request peek ("invalid concurrent Body.Read call"
	// panic). Refusals therefore answer first (flushed, so the client
	// isn't left waiting on buffered headers) and then consume the stream
	// to EOF in-handler; the client closes once it reads the verdict.
	bail := func(msg string, code int) {
		http.Error(w, msg, code)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		io.Copy(io.Discard, br)
	}
	if s.draining.Load() {
		bail("tmid: draining", http.StatusServiceUnavailable)
		return
	}

	line, err := readWireLine(br, nil, s.cfg.MaxFrameBytes)
	if err != nil {
		http.Error(w, "tmid: empty stream (expected hello)", http.StatusBadRequest)
		return
	}
	hello, err := toolio.DecodeWireMsg(line)
	if err != nil {
		bail("tmid: first line must be a hello", http.StatusBadRequest)
		return
	}
	if err := toolio.CheckHello(hello); err != nil {
		bail("tmid: "+err.Error(), http.StatusBadRequest)
		return
	}
	pageSize := hello.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}
	binary := hello.Wire == toolio.WireFormatBinary

	sh := s.shardFor(hello.Tenant)
	if sh.saturated() {
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds()))
		bail("tmid: shard saturated, retry later", http.StatusTooManyRequests)
		return
	}

	s.metrics.streamsTotal.Add(1)
	if binary {
		s.metrics.streamsBinary.Add(1)
	} else {
		s.metrics.streamsNDJSON.Add(1)
	}
	s.metrics.streamsOpen.Add(1)
	defer s.metrics.streamsOpen.Add(-1)

	// Advice lines interleave with request-body reads on one HTTP/1.1
	// exchange; without full-duplex the server would fail body reads after
	// the first write. (Best effort: HTTP/2 and test recorders don't need
	// it.)
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The client learns it was admitted from the (flushed) 200 header
	// before its first tick round-trips.
	flush()

	fail := func(werr toolio.WireError) {
		werr.K = toolio.WireErrorKind
		w.Write(toolio.EncodeWire(werr))
		flush()
	}

	st := &stream{
		tenant:   hello.Tenant,
		pageSize: pageSize,
		sh:       sh,
		free:     make(chan []detect.Sample, recycleDepth),
		reply:    make(chan toolio.WireAdvice, 1),
	}
	if binary {
		s.runBinaryStream(w, br, st, fail, flush)
	} else {
		s.runNDJSONStream(w, br, st, fail, flush, line[:0])
	}
	// EOF ends the stream but not the session: the tenant may reconnect and
	// continue until the TTL evicts it. A mid-stream abort (fail already
	// flushed the wire error) still drains to EOF — see bail above.
	io.Copy(io.Discard, br)
}

// runNDJSONStream consumes NDJSON sample/tick lines. lineBuf seeds the
// reusable line buffer (the hello's backing array).
func (s *Server) runNDJSONStream(w http.ResponseWriter, br *bufio.Reader, st *stream, fail func(toolio.WireError), flush func(), lineBuf []byte) {
	for {
		line, err := readWireLine(br, lineBuf, s.cfg.MaxFrameBytes)
		if err != nil {
			if err != errStreamEnd {
				fail(toolio.WireError{Error: err.Error()})
			}
			return
		}
		lineBuf = line[:0]
		msg, err := toolio.DecodeWireMsg(line)
		if err != nil {
			fail(toolio.WireError{Error: err.Error()})
			return
		}
		switch msg.K {
		case toolio.WireSamplesKind:
			if len(msg.S) == 0 {
				continue
			}
			samples := st.convertQuads(msg.S)
			s.metrics.wireRecordsNDJSON.Add(uint64(len(samples)))
			if !s.enqueueSamples(st, samples, fail) {
				return
			}
		case toolio.WireTickKind:
			tick := toolio.WireTick{K: msg.K, Seq: msg.Seq, IntervalSec: msg.IntervalSec, Period: msg.Period}
			if !s.handleTick(w, st, tick, fail, flush) {
				return
			}
		default:
			fail(toolio.WireError{Error: fmt.Sprintf("unexpected message kind %q", msg.K)})
			return
		}
	}
}

// runBinaryStream consumes length-prefixed columnar batch frames. The
// decode path is allocation-free at steady state: frames land in the
// reader's reused payload buffer, columns are unpacked into its reused
// column slices, and the record copy lands in a recycled per-stream sample
// buffer whose ownership passes to the shard (recycled back on consume).
func (s *Server) runBinaryStream(w http.ResponseWriter, br *bufio.Reader, st *stream, fail func(toolio.WireError), flush func()) {
	rd := toolio.NewBinReader(br)
	rd.MaxPayload = s.cfg.MaxFrameBytes
	for {
		fr, err := rd.ReadFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				fail(toolio.WireError{Error: err.Error()})
			}
			return
		}
		s.metrics.wireFrames.Add(1)
		switch fr.Kind {
		case toolio.WireSamplesKind[0]:
			if fr.Samples.Len() == 0 {
				continue
			}
			samples := st.convert(fr.Samples)
			s.metrics.wireRecordsBinary.Add(uint64(len(samples)))
			if !s.enqueueSamples(st, samples, fail) {
				return
			}
		case toolio.WireTickKind[0]:
			if !s.handleTick(w, st, fr.Tick, fail, flush) {
				return
			}
		}
	}
}

// enqueueSamples hands one owned sample buffer to the stream's shard,
// reporting backpressure drops on the wire. The shard recycles the buffer
// into st.free once the batch is ingested.
func (s *Server) enqueueSamples(st *stream, samples []detect.Sample, fail func(toolio.WireError)) bool {
	j := job{tenant: st.tenant, pageSize: st.pageSize, samples: samples, recycle: st.free}
	if !s.enqueue(st.sh, j) {
		s.metrics.droppedBatches.Add(1)
		s.metrics.droppedRecords.Add(uint64(len(samples)))
		fail(toolio.WireError{Error: "shard overloaded, batch dropped", RetryMs: 1000})
		return false
	}
	return true
}

// handleTick validates and enqueues one window-closing tick, then writes
// the advice reply back.
func (s *Server) handleTick(w http.ResponseWriter, st *stream, tick toolio.WireTick, fail func(toolio.WireError), flush func()) bool {
	if tick.IntervalSec <= 0 || tick.Period < 1 {
		fail(toolio.WireError{Error: fmt.Sprintf("tick seq %d: interval and period must be positive", tick.Seq)})
		return false
	}
	j := job{tenant: st.tenant, pageSize: st.pageSize, tick: &tick, reply: st.reply, enqueued: s.cfg.now()}
	if !s.enqueue(st.sh, j) {
		s.metrics.droppedBatches.Add(1)
		fail(toolio.WireError{Error: "shard overloaded, tick dropped", RetryMs: 1000})
		return false
	}
	adv := <-st.reply
	w.Write(toolio.EncodeWire(adv))
	flush()
	return true
}

// errStreamEnd reports a clean end of input to readWireLine callers.
var errStreamEnd = fmt.Errorf("service: stream ended")

// readWireLine reads one newline-terminated wire line into buf (reused
// across calls), enforcing the line cap. A clean EOF before any byte
// returns errStreamEnd.
func readWireLine(br *bufio.Reader, buf []byte, maxLen int) ([]byte, error) {
	if maxLen <= 0 {
		maxLen = toolio.MaxWireLine
	}
	buf = buf[:0]
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if len(buf) > maxLen {
			return nil, fmt.Errorf("service: wire line exceeds %d bytes", maxLen)
		}
		switch {
		case err == nil:
			return buf[:len(buf)-1], nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		case errors.Is(err, io.EOF):
			if len(buf) == 0 {
				return nil, errStreamEnd
			}
			// A final unterminated line is still a line (matches the old
			// Scanner behavior).
			return buf, nil
		default:
			return nil, err
		}
	}
}

// enqueuePoll is how often a backpressured enqueue re-checks the shard
// queue and the drain flag while waiting out EnqueueWait.
const enqueuePoll = time.Millisecond

// enqueue puts a job on the shard's bounded queue, waiting up to the
// configured backpressure wait. false means the queue stayed saturated (or
// the server began draining) and the job was not queued.
//
// The gate read lock is held only across each non-blocking send attempt —
// never across the wait — so a concurrent Drain acquires the write side
// in microseconds instead of queueing behind a full EnqueueWait timer
// (and, RWMutexes being writer-fair, wedging every other reader behind
// it). Saturated enqueues poll; they observe a closed server within one
// poll interval and give up, which is what bounds drain latency.
func (s *Server) enqueue(sh *shard, j job) bool {
	if sent, closed := s.tryEnqueue(sh, j); sent || closed {
		return sent
	}
	deadline := time.NewTimer(s.cfg.EnqueueWait)
	defer deadline.Stop()
	poll := time.NewTicker(enqueuePoll)
	defer poll.Stop()
	for {
		select {
		case <-poll.C:
			if sent, closed := s.tryEnqueue(sh, j); sent || closed {
				return sent
			}
		case <-deadline.C:
			sent, _ := s.tryEnqueue(sh, j)
			return sent
		}
	}
}

// tryEnqueue makes one non-blocking send attempt under a short-held read
// lock. The lock-ordering invariant ("no send on a closed queue") lives
// here: the send happens only after closed is re-checked under the gate.
func (s *Server) tryEnqueue(sh *shard, j job) (sent, closed bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.closed {
		return false, true
	}
	select {
	case sh.jobs <- j:
		return true, false
	default:
		return false, false
	}
}

// retryAfter bounds the jittered 429 Retry-After value in whole seconds.
// Jitter is the thundering-herd fix: when a saturated shard turns a fleet
// of clients away in the same instant, a fixed backoff marches them all
// back in lockstep and the shard saturates again on the echo; spreading
// the retries over [retryAfterMin, retryAfterMax] breaks the resonance.
const (
	retryAfterMin = 1
	retryAfterMax = 3
)

// retryAfterSeconds draws a jittered admission backoff.
func retryAfterSeconds() int {
	return retryAfterMin + rand.IntN(retryAfterMax-retryAfterMin+1)
}

// NodeHealth is /healthz's JSON body: liveness plus the membership
// metadata a cluster router's probe wants (node identity, schema version,
// shard/session geometry), so one probe doubles as discovery.
type NodeHealth struct {
	Status     string `json:"status"`
	Node       string `json:"node"`
	Schema     int    `json:"schema"`
	Shards     int    `json:"shards"`
	Sessions   int64  `json:"sessions"`
	Migratable bool   `json:"migratable,omitempty"`
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while queued work finishes. Probes that
// Accept JSON get the NodeHealth metadata body; everything else keeps the
// historical bare-200 "ok" contract.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	wantJSON := strings.Contains(r.Header.Get("Accept"), "application/json")
	status := http.StatusOK
	statusText := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		statusText = "draining"
	}
	if !wantJSON {
		if status != http.StatusOK {
			http.Error(w, statusText, status)
			return
		}
		w.Write([]byte("ok\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(NodeHealth{
		Status:     statusText,
		Node:       s.cfg.NodeID,
		Schema:     toolio.SchemaVersion,
		Shards:     s.cfg.Shards,
		Sessions:   s.metrics.sessionsActive.Load(),
		Migratable: s.cfg.Migratable,
	})
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	depths := make([]int, len(s.shards))
	for i, sh := range s.shards {
		depths[i] = sh.depth()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, depths, s.cfg.QueueDepth, s.draining.Load())
}
