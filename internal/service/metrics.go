package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/toolio"
)

// Metrics is tmid's metric registry, rendered in the Prometheus text
// exposition format by WriteTo. Counters are atomics updated from shard
// loops and handlers; the histogram and the scrape-to-scrape rate gauge
// take a small mutex (cold paths: one observation per tick, one snapshot
// per scrape).
type Metrics struct {
	now   func() time.Time
	start time.Time

	records        atomic.Uint64 // samples ingested into detectors
	droppedRecords atomic.Uint64 // samples discarded on enqueue timeout
	droppedBatches atomic.Uint64
	invalidBatches atomic.Uint64 // batches refused by the shard (bad session params)
	rejected       atomic.Uint64 // streams turned away with 429
	streamsTotal   atomic.Uint64
	streamsNDJSON  atomic.Uint64 // streams negotiated onto the NDJSON encoding
	streamsBinary  atomic.Uint64 // streams negotiated onto the binary frame encoding
	streamsOpen    atomic.Int64
	wireFrames     atomic.Uint64 // binary frames decoded (samples + ticks)
	// Records decoded at the wire boundary, by encoding. These count what
	// clients sent; the records counter above counts what shards actually
	// ingested (the difference is batches dropped on backpressure).
	wireRecordsNDJSON atomic.Uint64
	wireRecordsBinary atomic.Uint64
	ticks             atomic.Uint64
	classTrue         atomic.Uint64 // advice lines classified true sharing
	classFalse        atomic.Uint64 // advice lines classified false sharing
	advicePages       atomic.Uint64 // pages recommended for isolation

	sessionsActive  atomic.Int64
	sessionsEvicted atomic.Uint64
	migratedIn      atomic.Uint64 // sessions installed by /v1/import
	migratedOut     atomic.Uint64 // sessions cut over after a /v1/migrate ack
	migrateFailed   atomic.Uint64 // imports/pushes that failed (session kept)

	mu      sync.Mutex
	latency histogram
	// adviceBackend counts advice messages that carried each repair-backend
	// recommendation (empty when no recommendation policy is configured).
	adviceBackend map[string]uint64
	// Scrape-to-scrape ingest rate: the records/sec gauge is the delta
	// since the previous /metrics scrape (first scrape: since start).
	lastRateTotal uint64
	lastRateAt    time.Time
}

func newMetrics(now func() time.Time) *Metrics {
	t := now()
	return &Metrics{now: now, start: t, lastRateAt: t, latency: newLatencyHistogram()}
}

// observeAdvice folds one advice reply into the classification counters and
// the latency histogram.
func (m *Metrics) observeAdvice(adv toolio.WireAdvice, latency time.Duration) {
	m.advicePages.Add(uint64(len(adv.Pages)))
	for _, l := range adv.Lines {
		switch l.Class {
		case "true":
			m.classTrue.Add(1)
		case "false":
			m.classFalse.Add(1)
		}
	}
	m.mu.Lock()
	m.latency.observe(latency.Seconds())
	if adv.Backend != "" {
		if m.adviceBackend == nil {
			m.adviceBackend = map[string]uint64{}
		}
		m.adviceBackend[adv.Backend]++
	}
	m.mu.Unlock()
}

// histogram is a fixed-bucket Prometheus-style histogram.
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []uint64  // len(bounds)+1
	sum    float64
	count  uint64
}

func newLatencyHistogram() histogram {
	bounds := []float64{50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1}
	return histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// WriteTo renders the registry in Prometheus text format. queueDepths and
// queueCap describe the shards' ingest queues at scrape time.
func (m *Metrics) WriteTo(w io.Writer, queueDepths []int, queueCap int, draining bool) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("tmid_ingest_records_total", "Resolved samples ingested into detector sessions.", m.records.Load())
	counter("tmid_ingest_dropped_records_total", "Samples dropped because a shard queue stayed saturated past the enqueue wait.", m.droppedRecords.Load())
	counter("tmid_ingest_dropped_batches_total", "Sample batches dropped on enqueue timeout.", m.droppedBatches.Load())
	counter("tmid_ingest_invalid_batches_total", "Batches refused by a shard (invalid session parameters).", m.invalidBatches.Load())
	counter("tmid_streams_total", "Client streams admitted.", m.streamsTotal.Load())
	counter("tmid_streams_rejected_total", "Client streams rejected with 429 because the tenant's shard was saturated.", m.rejected.Load())
	fmt.Fprintf(w, "# HELP tmid_wire_streams_total Admitted streams by negotiated sample encoding.\n# TYPE tmid_wire_streams_total counter\n")
	fmt.Fprintf(w, "tmid_wire_streams_total{encoding=\"ndjson\"} %d\n", m.streamsNDJSON.Load())
	fmt.Fprintf(w, "tmid_wire_streams_total{encoding=\"binary\"} %d\n", m.streamsBinary.Load())
	counter("tmid_wire_frames_total", "Binary wire frames decoded (samples and ticks).", m.wireFrames.Load())
	fmt.Fprintf(w, "# HELP tmid_wire_records_total Sample records decoded at the wire boundary, by encoding.\n# TYPE tmid_wire_records_total counter\n")
	fmt.Fprintf(w, "tmid_wire_records_total{encoding=\"ndjson\"} %d\n", m.wireRecordsNDJSON.Load())
	fmt.Fprintf(w, "tmid_wire_records_total{encoding=\"binary\"} %d\n", m.wireRecordsBinary.Load())
	gauge("tmid_streams_open", "Client streams currently connected.", float64(m.streamsOpen.Load()))
	counter("tmid_ticks_total", "Analysis windows closed (advice messages produced).", m.ticks.Load())
	counter("tmid_classified_lines_true_total", "Advice lines classified as true sharing.", m.classTrue.Load())
	counter("tmid_classified_lines_false_total", "Advice lines classified as false sharing.", m.classFalse.Load())
	counter("tmid_advice_pages_total", "Pages recommended for isolation across all advice.", m.advicePages.Load())
	gauge("tmid_sessions_active", "Tenant sessions currently resident.", float64(m.sessionsActive.Load()))
	counter("tmid_sessions_evicted_total", "Tenant sessions evicted after the idle TTL.", m.sessionsEvicted.Load())
	counter("tmid_sessions_migrated_in_total", "Sessions rebuilt and installed by /v1/import.", m.migratedIn.Load())
	counter("tmid_sessions_migrated_out_total", "Sessions removed after a destination acked their migration.", m.migratedOut.Load())
	counter("tmid_migrate_failed_total", "Migration imports or pushes that failed (source session kept).", m.migrateFailed.Load())

	// Queue depth per shard plus the shared capacity bound.
	fmt.Fprintf(w, "# HELP tmid_queue_depth Pending jobs in each shard's bounded ingest queue.\n# TYPE tmid_queue_depth gauge\n")
	for i, d := range queueDepths {
		fmt.Fprintf(w, "tmid_queue_depth{shard=\"%d\"} %d\n", i, d)
	}
	gauge("tmid_queue_capacity", "Per-shard ingest queue capacity.", float64(queueCap))

	drainingV := 0.0
	if draining {
		drainingV = 1
	}
	gauge("tmid_draining", "1 while the server is draining for shutdown.", drainingV)

	now := m.now()
	total := m.records.Load()
	m.mu.Lock()
	elapsed := now.Sub(m.lastRateAt).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(total-m.lastRateTotal) / elapsed
	}
	m.lastRateTotal = total
	m.lastRateAt = now
	h := m.latency
	hCounts := append([]uint64(nil), h.counts...)
	hSum, hCount := h.sum, h.count
	backends := make([]string, 0, len(m.adviceBackend))
	for b := range m.adviceBackend {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	backendCounts := make([]uint64, len(backends))
	for i, b := range backends {
		backendCounts[i] = m.adviceBackend[b]
	}
	m.mu.Unlock()
	gauge("tmid_ingest_records_per_sec", "Ingest rate over the interval since the previous scrape.", rate)

	fmt.Fprintf(w, "# HELP tmid_advice_latency_seconds Tick-to-advice latency (enqueue to reply).\n# TYPE tmid_advice_latency_seconds histogram\n")
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += hCounts[i]
		fmt.Fprintf(w, "tmid_advice_latency_seconds_bucket{le=\"%g\"} %d\n", b, cum)
	}
	cum += hCounts[len(h.bounds)]
	fmt.Fprintf(w, "tmid_advice_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "tmid_advice_latency_seconds_sum %g\n", hSum)
	fmt.Fprintf(w, "tmid_advice_latency_seconds_count %d\n", hCount)

	if len(backends) > 0 {
		fmt.Fprintf(w, "# HELP tmid_advice_backend_total Advice messages by recommended repair backend.\n# TYPE tmid_advice_backend_total counter\n")
		for i, b := range backends {
			fmt.Fprintf(w, "tmid_advice_backend_total{backend=%q} %d\n", b, backendCounts[i])
		}
	}

	gauge("tmid_uptime_seconds", "Seconds since the server started.", now.Sub(m.start).Seconds())
}
