// Package service implements tmid: a long-running, multi-tenant false
// sharing detection-and-repair-advice service over the reproduction's
// detector (PAPER §3.1).
//
// The offline pipeline — PEBS records in, sliding-window classification
// out, sampling period tuned online — is fundamentally a stream consumer,
// and this package runs it as one. Clients stream NDJSON-framed resolved
// HITM samples (internal/toolio wire schema) over HTTP; each tenant
// (process/run identity) is hash-routed to one of N detector shards — a
// worker goroutine that owns its sessions' detect.Detector state outright,
// so the hot ingest path takes no locks and shards never contend with each
// other. Per tick the service streams back repair advice (page →
// isolate/twin decisions, the offline detect.Request) plus the adaptive
// sampling-period feedback value of the paper's PEBS period controller.
//
// Production shape: per-shard ingest queues are bounded with explicit
// drop/backpressure accounting (saturated shards reject new streams with
// 429 + Retry-After), idle tenant sessions are TTL-evicted to release their
// interned-page state, SIGTERM drains the shards before exit, and /healthz
// plus a Prometheus-text /metrics endpoint expose queue depths, ingest
// rates, classification counts, advice latency and drop totals.
//
// The load-bearing guarantee is offline/online parity: a tenant's advice
// stream is byte-identical to what the offline detector (tmidetect -advice,
// or Replay in this package) computes over the same sample trace. Sessions
// and the offline replay share one code path (session.advise), so the
// service adds transport, sharding and lifecycle — never a different
// verdict.
package service

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/sim/intern"
	"repro/internal/sim/trace"
	"repro/internal/toolio"
)

// Config tunes a Server. The zero value is usable: every field has a
// production default.
type Config struct {
	// Shards is the number of detector worker goroutines (default 4).
	// Tenants are FNV-hashed onto shards; each shard owns its sessions
	// exclusively, so shards scale ingest without any cross-shard locking.
	Shards int
	// QueueDepth bounds each shard's pending-job queue (default 256). A
	// full queue rejects new streams (429 + Retry-After) and backpressures
	// established ones instead of growing memory without bound.
	QueueDepth int
	// EnqueueWait is how long an established stream blocks on a full shard
	// queue before the batch is dropped and the stream aborted with a
	// retryable wire error (default 5s).
	EnqueueWait time.Duration
	// MaxFrameBytes bounds one wire unit from a client — an NDJSON line or
	// a binary frame payload (default toolio.MaxWireLine). It caps the
	// per-connection decode buffer, so it is the operator's memory knob
	// for hostile or misconfigured producers.
	MaxFrameBytes int
	// SessionTTL evicts a tenant idle for this long, releasing its detector
	// and interned-page state (default 60s).
	SessionTTL time.Duration
	// Detect configures every session's detector. Zero fields take
	// detect.DefaultConfig values — the offline tools' operating point,
	// which offline/online parity depends on.
	Detect detect.Config
	// Periods is the adaptive sampling-period policy driving each advice
	// message's NextPeriod feedback. Zero takes detect.DefaultPeriodController.
	Periods detect.PeriodController
	// RecommendBackend is the repair-backend recommendation policy stamped
	// into advice that carries pages: "" or "none" (off — the wire field is
	// omitted and advice bytes are schema-v1 identical), "auto" (per-advice
	// heuristic over the flagged lines), or a fixed backend name. See
	// detect.RecommendBackend. The recommendation is additive: it never
	// changes any other advice field.
	RecommendBackend string
	// Migratable turns on per-session sample capture: every session keeps
	// its accepted sample stream as a trace.SampleLog so it can be exported
	// through /v1/export and moved to another node by /v1/migrate, where the
	// destination rebuilds byte-identical detector state by replaying the
	// log through the same advise path (the cluster tier's live-rebalancing
	// substrate, DESIGN §17). Capture costs memory proportional to the
	// session's record volume; the session TTL bounds its lifetime.
	Migratable bool
	// NodeID names this node in /healthz membership metadata (the cluster
	// router's health probe doubles as discovery). Empty means "tmid".
	NodeID string
	// MaxMigrateRecords caps the records one /v1/import accepts (default
	// 1<<22): an import is a trusted intra-cluster transfer, but the cap
	// keeps a misrouted or runaway stream from ballooning a node.
	MaxMigrateRecords int
	// MigrateTimeout bounds one outbound /v1/migrate push (default 30s).
	MigrateTimeout time.Duration

	// now is the clock seam (tests inject a fake for TTL eviction).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.EnqueueWait <= 0 {
		c.EnqueueWait = 5 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = toolio.MaxWireLine
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 60 * time.Second
	}
	if c.Detect.ThresholdPerSec <= 0 {
		c.Detect.ThresholdPerSec = detect.DefaultConfig().ThresholdPerSec
	}
	if c.Detect.MinRecords <= 0 {
		c.Detect.MinRecords = detect.DefaultConfig().MinRecords
	}
	if c.Periods == (detect.PeriodController{}) {
		c.Periods = detect.DefaultPeriodController()
	}
	if c.NodeID == "" {
		c.NodeID = "tmid"
	}
	if c.MaxMigrateRecords <= 0 {
		c.MaxMigrateRecords = 1 << 22
	}
	if c.MigrateTimeout <= 0 {
		c.MigrateTimeout = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the tmid service: shards, metrics, lifecycle.
type Server struct {
	cfg      Config
	shards   []*shard
	metrics  *Metrics
	draining atomic.Bool
	wg       sync.WaitGroup

	// gate serializes enqueues against shard-queue closure: Drain takes the
	// write side once, so no handler can ever send on a closed queue.
	gate   sync.RWMutex
	closed bool
}

// New builds a server and starts its shard workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, metrics: newMetrics(cfg.now)}
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, s)
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go sh.loop()
	}
	return s
}

// shardFor routes a tenant to its shard (stable FNV-1a hash).
func (s *Server) shardFor(tenant string) *shard {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics exposes the server's metric registry (the /metrics handler and
// tests read it).
func (s *Server) Metrics() *Metrics { return s.metrics }

// BeginDrain flips the server into draining mode: /healthz answers 503 and
// new streams are refused, while established streams and queued work keep
// flowing. Call it before shutting the HTTP layer down so load balancers
// and retry loops move on immediately.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain stops admitting new streams, closes the shard queues and waits for
// every queued job to finish. Streams still connected see their enqueues
// refused (a retryable wire error), never a send on a closed queue. Safe to
// call multiple times.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.gate.Lock()
	if !s.closed {
		s.closed = true
		for _, sh := range s.shards {
			// A closed queue still hands its buffered jobs to the shard
			// loop, so ticks already admitted get their advice replies.
			close(sh.jobs)
		}
	}
	s.gate.Unlock()
	s.wg.Wait()
}

// Handler returns the service's HTTP surface: POST /v1/stream, GET
// /healthz, GET /metrics, plus the migration endpoints (GET /v1/export,
// POST /v1/import, POST /v1/migrate) when the server is Migratable.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/export", s.handleExport)
	mux.HandleFunc("POST /v1/import", s.handleImport)
	mux.HandleFunc("POST /v1/migrate", s.handleMigrate)
	return mux
}

// session is one tenant's detection state: a detector over a private
// interning table, plus the bookkeeping the adaptive-period feedback and
// TTL eviction need. A session is owned by exactly one shard goroutine.
type session struct {
	tenant   string
	pageSize int
	tab      *intern.Table
	det      *detect.Detector
	lastSeen time.Time
	seen     uint64 // detector records at the last tick
	ticks    int
	// log captures the accepted sample stream and its window boundaries
	// when the server is Migratable: replaying it through a fresh session
	// reproduces this session's detector state exactly, which is what
	// /v1/export ships and /v1/import rebuilds. nil when capture is off.
	log *trace.SampleLog
}

// newSession builds the per-tenant detector exactly the way the offline
// replay does — same config, same interning — so the two stay in lockstep.
// The page-size floor is load-bearing: the detector's per-page stat chunks
// assume at least 64 cache lines per page, and a smaller page would index
// an empty chunk table and panic the owning shard (the wire layer rejects
// such hellos up front via toolio.CheckHello; this guards embedded users).
func newSession(tenant string, pageSize int, dcfg detect.Config) (*session, error) {
	if pageSize < toolio.MinWirePageSize || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("service: tenant %q page size %d is not a power of two >= %d", tenant, pageSize, toolio.MinWirePageSize)
	}
	tab := intern.NewTable(pageSize)
	return &session{
		tenant:   tenant,
		pageSize: pageSize,
		tab:      tab,
		det:      detect.New(dcfg, nil, nil, nil, tab, pageSize),
	}, nil
}

// feed ingests one batch of resolved samples. Pages are interned on first
// sight so the per-line window state lives on the detector's PageID fast
// path rather than the fallback map.
func (s *session) feed(samples []detect.Sample) {
	for _, sm := range samples {
		s.tab.Intern(sm.Addr)
		s.det.Ingest(sm)
	}
	if s.log != nil {
		// Capture copies the batch: the caller's buffer is recycled.
		s.log.Samples = append(s.log.Samples, samples...)
	}
}

// advise closes the window a tick message describes and renders the advice
// reply: repair pages and lines from the detector's request, the window's
// record count, and the adaptive-period feedback. This is the single
// advice-producing code path — shards and the offline replay both end here,
// which is what makes offline/online parity a structural property instead
// of a test hope.
// The backend recommendation (policy != "") is rendered strictly on top of
// the finished advice, so a recommending service and a silent one agree on
// every other byte.
func (s *session) advise(tick toolio.WireTick, periods detect.PeriodController, policy string) toolio.WireAdvice {
	if s.log != nil {
		// The window boundary is part of the migratable state: a replaying
		// destination must close its windows at exactly these points for its
		// detector to land in the same state.
		s.log.TapWindow(tick.IntervalSec, tick.Period)
	}
	req := s.det.Analyze(tick.IntervalSec, tick.Period)
	window := s.det.TotalRecords - s.seen
	s.seen = s.det.TotalRecords
	s.ticks++
	adv := toolio.WireAdvice{
		K:          toolio.WireAdviceKind,
		Seq:        tick.Seq,
		Records:    window,
		NextPeriod: periods.Next(tick.Period, window),
	}
	if req != nil {
		adv.Pages = req.Pages
		for _, l := range req.Lines {
			adv.Lines = append(adv.Lines, toolio.WireLine{
				Line:         l.Line,
				Class:        l.Class.String(),
				Records:      l.Records,
				EstPerSec:    l.EstEventsPerSec,
				DroppedSpans: l.DroppedSpans,
			})
		}
		if policy != "" {
			adv.Backend = detect.RecommendBackend(policy, s.pageSize, req.Lines)
		}
	}
	return adv
}
