package service

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/raceflag"
	"repro/internal/toolio"
)

// TestBinaryStreamParity is the tentpole's correctness gate: the same
// captured trace replayed through the binary frame encoding must produce
// an advice stream byte-identical to both the NDJSON replay and the
// offline detector.
func TestBinaryStreamParity(t *testing.T) {
	log := syntheticLog()
	_, hs := newTestServer(t, Config{Shards: 2})

	want, err := Replay(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 2)
	if err != nil {
		t.Fatal(err)
	}

	nd := &Client{BaseURL: hs.URL, Tenant: "wire-nd", PageSize: log.PageSize}
	ndRes, err := nd.Replay(log, 2)
	if err != nil {
		t.Fatal(err)
	}
	bin := &Client{BaseURL: hs.URL, Tenant: "wire-bin", PageSize: log.PageSize, Wire: toolio.WireFormatBinary}
	binRes, err := bin.Replay(log, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(binRes.Advice, want) {
		t.Errorf("binary advice diverged from offline replay:\nbinary:  %s\noffline: %s", binRes.Advice, want)
	}
	if !bytes.Equal(binRes.Advice, ndRes.Advice) {
		t.Errorf("binary and NDJSON advice diverged")
	}
	if binRes.Records != ndRes.Records || binRes.Ticks != ndRes.Ticks {
		t.Errorf("binary sent %d records / %d ticks, ndjson %d / %d",
			binRes.Records, binRes.Ticks, ndRes.Records, ndRes.Ticks)
	}
}

// rawStream POSTs body to /v1/stream and returns every response line.
func rawStream(t *testing.T, url, body string) (int, []*toolio.WireMsg) {
	t.Helper()
	resp, err := http.Post(url+"/v1/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var msgs []*toolio.WireMsg
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxWireLine)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		m, err := toolio.DecodeWireMsg(sc.Bytes())
		if err != nil {
			t.Fatalf("response line %q: %v", sc.Bytes(), err)
		}
		msgs = append(msgs, m)
	}
	return resp.StatusCode, msgs
}

func helloLine(tenant, wire string) string {
	h := toolio.WireHello{K: toolio.WireHelloKind, Version: toolio.SchemaVersion, Tenant: tenant, PageSize: 4096, Wire: wire}
	return string(toolio.EncodeWire(h))
}

// TestHostileQuadsAnswerWireError pins the wire-boundary truncation fix:
// a quad like tid=2^63 used to be cast straight to a negative int and fed
// into the detector; it must now die at decode with a WireError.
func TestHostileQuadsAnswerWireError(t *testing.T) {
	srv, hs := newTestServer(t, Config{Shards: 1})
	for name, quad := range map[string]string{
		"tid-2^63":     `[9223372036854775808,65536,8,1]`,
		"width-2^63":   `[0,65536,9223372036854775808,1]`,
		"negative-tid": `[18446744073709551615,65536,8,1]`,
		"write-flag-2": `[0,65536,8,2]`,
	} {
		t.Run(name, func(t *testing.T) {
			status, msgs := rawStream(t, hs.URL, helloLine("hostile-"+name, "")+`{"k":"s","s":[`+quad+`]}`+"\n")
			if status != http.StatusOK {
				t.Fatalf("admission status %d, want 200", status)
			}
			if len(msgs) != 1 || msgs[0].K != toolio.WireErrorKind {
				t.Fatalf("hostile quad reply %+v, want one wire error", msgs)
			}
			if msgs[0].RetryMs != 0 {
				t.Errorf("malformed input marked retryable: %+v", msgs[0])
			}
		})
	}
	// Nothing hostile may have reached a detector session.
	if got := srv.Metrics().records.Load(); got != 0 {
		t.Errorf("detector ingested %d records from hostile batches, want 0", got)
	}
}

// TestBinaryStreamEdgeCasesOverHTTP round-trips the malformed-frame table
// through the real HTTP surface: every case must come back as a WireError
// line on a 200 stream (the hello was fine), never a hang or a panic.
func TestBinaryStreamEdgeCasesOverHTTP(t *testing.T) {
	_, hs := newTestServer(t, Config{Shards: 1})

	goodFrame := func() []byte {
		var buf bytes.Buffer
		bw := toolio.NewBinWriter(&buf)
		var cols toolio.SampleColumns
		cols.Append(0, 0x10000, 8, true)
		if err := bw.WriteSamples(&cols); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	for _, tc := range []struct {
		name  string
		body  []byte
		want  string
		clean bool // true: expect a normal end, not an error line
	}{
		{"garbage-after-hello", []byte("not a frame"), "magic", false},
		{"truncated-frame", goodFrame[:len(goodFrame)-2], "truncated", false},
		{"future-frame-version", func() []byte {
			b := append([]byte(nil), goodFrame...)
			b[2] = toolio.WireBinVersion + 1
			return b
		}(), "version", false},
		{"hostile-tid-column", func() []byte {
			b := append([]byte(nil), goodFrame...)
			// Overwrite the single tid column entry with 2^31.
			binary.LittleEndian.PutUint32(b[8+4:], 1<<31)
			return b
		}(), "tid", false},
		{"clean-eof", goodFrame, "", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			body := helloLine("edge-"+tc.name, toolio.WireFormatBinary) + string(tc.body)
			status, msgs := rawStream(t, hs.URL, body)
			if status != http.StatusOK {
				t.Fatalf("admission status %d, want 200", status)
			}
			if tc.clean {
				if len(msgs) != 0 {
					t.Fatalf("clean stream answered %+v", msgs)
				}
				return
			}
			if len(msgs) != 1 || msgs[0].K != toolio.WireErrorKind || !strings.Contains(msgs[0].Error, tc.want) {
				t.Fatalf("reply %+v, want wire error mentioning %q", msgs, tc.want)
			}
		})
	}
}

// TestInspectSaturatedShardReturnsZero pins the Inspect deadlock fix: a
// full queue on a stalled shard plus a concurrent Drain used to deadlock
// (Inspect blocked on the queue send while holding the gate's read lock,
// Drain blocked on the write lock). Inspect must now give up after the
// bounded enqueue wait and report the zero SessionInfo.
func TestInspectSaturatedShardReturnsZero(t *testing.T) {
	srv := New(Config{Shards: 1, QueueDepth: 1, EnqueueWait: 30 * time.Millisecond})

	stall := make(chan struct{})
	sh := srv.shards[0]
	sh.jobs <- job{stall: stall}
	sh.jobs <- job{stall: stall}
	for len(sh.jobs) < 1 {
		time.Sleep(time.Millisecond)
	}

	inspected := make(chan SessionInfo, 1)
	go func() { inspected <- srv.Inspect("wedged-tenant") }()

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()

	select {
	case info := <-inspected:
		if info.Exists {
			t.Errorf("saturated shard reported a session: %+v", info)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Inspect deadlocked against the saturated shard + concurrent drain")
	}

	close(stall)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never completed after the stall released")
	}
}

// TestDrainClosesPromptlyUnderSaturatedEnqueues pins the enqueue gate fix:
// backpressured enqueues must not hold the gate's read lock across the
// EnqueueWait timer, so a concurrent drain flips the server closed in
// milliseconds — not after the full wait — and the waiting enqueues fail
// fast instead of wedging every other reader behind the pending writer.
func TestDrainClosesPromptlyUnderSaturatedEnqueues(t *testing.T) {
	const wait = 2 * time.Second
	srv := New(Config{Shards: 1, QueueDepth: 1, EnqueueWait: wait})

	stall := make(chan struct{})
	sh := srv.shards[0]
	sh.jobs <- job{stall: stall}
	sh.jobs <- job{stall: stall}
	for len(sh.jobs) < 1 {
		time.Sleep(time.Millisecond)
	}

	// Saturated enqueues sitting in the backpressure wait.
	results := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		go func() {
			results <- srv.enqueue(sh, job{tenant: "slow", pageSize: 4096, samples: []detect.Sample{{Addr: 0x10000, Width: 8}}})
		}()
	}
	time.Sleep(50 * time.Millisecond)

	drained := make(chan struct{})
	start := time.Now()
	go func() {
		srv.Drain()
		close(drained)
	}()

	// The observable bound: the closed flag must flip well inside the
	// enqueue wait (the old code held read locks across the whole timer,
	// so the drain's write lock — and with it every later reader — queued
	// for up to the full wait).
	for {
		if _, closed := srv.tryEnqueue(sh, job{tenant: "probe"}); closed {
			break
		}
		if time.Since(start) > wait/2 {
			t.Fatalf("server not closed %v after Drain began (EnqueueWait %v)", time.Since(start), wait)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every waiting enqueue must give up promptly once closed.
	for i := 0; i < 4; i++ {
		select {
		case ok := <-results:
			if ok {
				t.Error("enqueue succeeded on a draining server")
			}
		case <-time.After(wait / 2):
			t.Fatal("saturated enqueue still blocked after the server closed")
		}
	}

	close(stall)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never completed after the stall released")
	}
}

// TestSmallPageSizeHelloRejected pins the latent shard panic: a hello
// advertising a power-of-two page size below 4096 used to pass validation
// and crash the owning shard in the detector's chunk table on the first
// sample. It must be a 400 now.
func TestSmallPageSizeHelloRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{Shards: 1})
	for _, ps := range []int{1, 64, 2048} {
		h := toolio.WireHello{K: toolio.WireHelloKind, Version: toolio.SchemaVersion, Tenant: "tiny", PageSize: ps}
		body := string(toolio.EncodeWire(h)) + `{"k":"s","s":[[0,65536,8,1]]}` + "\n"
		resp, err := http.Post(hs.URL+"/v1/stream", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("page_size %d: status %d, want 400", ps, resp.StatusCode)
		}
	}
}

// TestMetricsWireCounters checks the new encoding-labelled wire counters.
func TestMetricsWireCounters(t *testing.T) {
	log := syntheticLog()
	srv, hs := newTestServer(t, Config{Shards: 1})
	if _, err := (&Client{BaseURL: hs.URL, Tenant: "m-nd", PageSize: log.PageSize}).Replay(log, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := (&Client{BaseURL: hs.URL, Tenant: "m-bin", PageSize: log.PageSize, Wire: toolio.WireFormatBinary}).Replay(log, 1); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	n := uint64(log.Len())
	for _, want := range []string{
		"tmid_wire_streams_total{encoding=\"ndjson\"} 1",
		"tmid_wire_streams_total{encoding=\"binary\"} 1",
		"tmid_wire_records_total{encoding=\"ndjson\"} " + itoa(n),
		"tmid_wire_records_total{encoding=\"binary\"} " + itoa(n),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if got := srv.Metrics().wireFrames.Load(); got == 0 {
		t.Error("binary replay decoded 0 frames")
	}
}

func itoa(v uint64) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			return string(b[i:])
		}
	}
}

// TestBinaryIngestSteadyStateDoesNotAllocate is the service-side
// AllocsPerRun gate on the zero-copy ingest path: frame decode (reader
// buffers), column conversion (recycled per-stream buffers) and the
// shard's recycle-on-consume handoff must all stay off the heap at steady
// state.
func TestBinaryIngestSteadyStateDoesNotAllocate(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race")
	}
	var enc bytes.Buffer
	bw := toolio.NewBinWriter(&enc)
	var cols toolio.SampleColumns
	for i := 0; i < 1024; i++ {
		cols.Append(uint32(i%4), 0x10000+uint64(i%128)*8, 8, i%2 == 0)
	}
	for i := 0; i < 8; i++ {
		if err := bw.WriteSamples(&cols); err != nil {
			t.Fatal(err)
		}
	}
	frames := enc.Bytes()

	st := &stream{tenant: "alloc", pageSize: 4096, free: make(chan []detect.Sample, recycleDepth)}
	r := bytes.NewReader(frames)
	rd := toolio.NewBinReader(r)
	ingest := func() {
		r.Reset(frames)
		rd.Reset(r)
		for {
			fr, err := rd.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			samples := st.convert(fr.Samples)
			// The shard's half of the handoff: consume and recycle.
			j := job{samples: samples, recycle: st.free}
			j.release()
		}
	}
	ingest() // warm the reader buffers and the free list
	if allocs := testing.AllocsPerRun(100, ingest); allocs > 0 {
		t.Errorf("steady-state binary ingest allocates %.1f times per stream, want 0", allocs)
	}
}
