package service

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/detect"
	"repro/internal/sim/trace"
	"repro/internal/toolio"
)

// This file is the offline half of the parity story plus the replay client.
// forEachWindow fixes one canonical traversal of a captured sample trace;
// Replay drives a local session through it and the Client drives a remote
// tmid through the very same traversal, so the two advice streams can only
// differ if the service's transport, sharding or session plumbing changed a
// verdict — which is exactly the regression the parity check exists to
// catch.

// forEachWindow walks a captured sample log repeat times, yielding each
// window's samples with a stream-global tick sequence number. Repeats
// continue the sequence (the detector's cumulative state carries across,
// as it would for a long-lived tenant).
func forEachWindow(log *trace.SampleLog, repeat int, fn func(seq int, samples []detect.Sample, w trace.SampleWindow)) {
	seq := 0
	if repeat < 1 {
		repeat = 1
	}
	for r := 0; r < repeat; r++ {
		for i := range log.Windows {
			fn(seq, log.WindowSamples(i), log.Windows[i])
			seq++
		}
	}
}

// Replay runs a captured sample trace through a fresh local session — the
// same code path a tmid shard runs — and returns the canonical advice
// stream bytes. This is what `tmidetect -advice` prints and what tmiload
// compares every client's server-side advice against.
func Replay(log *trace.SampleLog, pageSize int, dcfg detect.Config, periods detect.PeriodController, repeat int) ([]byte, error) {
	return ReplayWithPolicy(log, pageSize, dcfg, periods, repeat, "")
}

// ReplayWithPolicy is Replay under a repair-backend recommendation policy
// (Config.RecommendBackend): the offline truth a recommending tmid must
// match byte-for-byte. An empty policy is plain Replay.
func ReplayWithPolicy(log *trace.SampleLog, pageSize int, dcfg detect.Config, periods detect.PeriodController, repeat int, policy string) ([]byte, error) {
	s, err := newSession("offline", pageSize, dcfg)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	forEachWindow(log, repeat, func(seq int, samples []detect.Sample, w trace.SampleWindow) {
		s.feed(samples)
		adv := s.advise(toolio.WireTick{K: toolio.WireTickKind, Seq: seq, IntervalSec: w.IntervalSec, Period: w.Period}, periods, policy)
		out.Write(toolio.EncodeWire(adv))
	})
	return out.Bytes(), nil
}

// DefaultBatchRecords is the sample-batch size the client packs per wire
// line.
const DefaultBatchRecords = 512

// Client replays captured sample traces against a tmid server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7412".
	BaseURL string
	// Tenant is the session identity (the sharding key).
	Tenant string
	// PageSize is the trace's page size (hello field; advice pages are
	// aligned to it). 0 means 4096.
	PageSize int
	// BatchRecords caps samples per wire line (0 = DefaultBatchRecords).
	BatchRecords int
	// Wire selects the sample encoding: "" or toolio.WireFormatNDJSON for
	// NDJSON quads, toolio.WireFormatBinary for columnar batch frames.
	// The advice stream back is NDJSON either way, so parity comparisons
	// are encoding-independent.
	Wire string
	// HTTP overrides the transport (0-timeout default client otherwise).
	HTTP *http.Client
}

// ErrBusy reports a 429 admission rejection with the server's backoff.
type ErrBusy struct{ RetryAfter time.Duration }

func (e *ErrBusy) Error() string {
	return fmt.Sprintf("service: server busy, retry after %s", e.RetryAfter)
}

// ReplayResult summarizes one replayed stream.
type ReplayResult struct {
	// Advice is the concatenated NDJSON advice stream, byte-comparable to
	// Replay's output for the same log and repeat. The response reader
	// appends to it while the writer goroutine is still bumping
	// Records/Ticks below; the pad keeps the two writers off one cache
	// line (found by tmivet's self-scan).
	Advice []byte
	_      [40]byte
	// Records and Ticks count what was sent.
	Records int
	Ticks   int
}

// Replay streams the log (repeated repeat times) to the server as one
// /v1/stream request and collects the advice stream. A 429 rejection
// returns *ErrBusy; a mid-stream wire error returns an error wrapping the
// server's message.
func (c *Client) Replay(log *trace.SampleLog, repeat int) (*ReplayResult, error) {
	pageSize := c.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}
	batch := c.BatchRecords
	if batch <= 0 {
		batch = DefaultBatchRecords
	}
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{}
	}

	pr, pw := io.Pipe()
	res := &ReplayResult{}
	// The writer side runs concurrently with response reading: the server
	// replies once per tick, and the client's tick cadence keeps at most a
	// few batches in flight — the HTTP analog of the bounded shard queue.
	writeErr := make(chan error, 1)
	binMode := c.Wire == toolio.WireFormatBinary
	go func() {
		bw := bufio.NewWriterSize(pw, 256<<10)
		werr := func() error {
			hello := toolio.WireHello{K: toolio.WireHelloKind, Version: toolio.SchemaVersion, Tenant: c.Tenant, PageSize: pageSize, Wire: c.Wire}
			if _, err := bw.Write(toolio.EncodeWire(hello)); err != nil {
				return err
			}
			var enc *toolio.BinWriter
			var cols toolio.SampleColumns
			if binMode {
				enc = toolio.NewBinWriter(bw)
			}
			var ferr error
			forEachWindow(log, repeat, func(seq int, samples []detect.Sample, w trace.SampleWindow) {
				if ferr != nil {
					return
				}
				for lo := 0; lo < len(samples); lo += batch {
					hi := lo + batch
					if hi > len(samples) {
						hi = len(samples)
					}
					if binMode {
						cols.Grow(hi - lo)
						for i, sm := range samples[lo:hi] {
							cols.TID[i] = uint32(sm.TID)
							cols.Addr[i] = sm.Addr
							cols.Width[i] = uint16(sm.Width)
							w := uint8(0)
							if sm.Write {
								w = 1
							}
							cols.Write[i] = w
						}
						if err := enc.WriteSamples(&cols); err != nil {
							ferr = err
							return
						}
					} else {
						msg := toolio.WireSamples{K: toolio.WireSamplesKind, S: make([][4]uint64, hi-lo)}
						for i, sm := range samples[lo:hi] {
							wr := uint64(0)
							if sm.Write {
								wr = 1
							}
							msg.S[i] = [4]uint64{uint64(sm.TID), sm.Addr, uint64(sm.Width), wr}
						}
						if _, err := bw.Write(toolio.EncodeWire(msg)); err != nil {
							ferr = err
							return
						}
					}
					res.Records += hi - lo
				}
				tick := toolio.WireTick{K: toolio.WireTickKind, Seq: seq, IntervalSec: w.IntervalSec, Period: w.Period}
				if binMode {
					if err := enc.WriteTick(tick); err != nil {
						ferr = err
						return
					}
				} else if _, err := bw.Write(toolio.EncodeWire(tick)); err != nil {
					ferr = err
					return
				}
				// Flush the tick so the server sees the whole window now: the
				// response side is waiting for this tick's advice line.
				if err := bw.Flush(); err != nil {
					ferr = err
				}
				res.Ticks++
			})
			if ferr != nil {
				return ferr
			}
			return bw.Flush()
		}()
		pw.CloseWithError(werr)
		writeErr <- werr
	}()

	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/stream", pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: stream request: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		retry := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		io.Copy(io.Discard, resp.Body)
		return nil, &ErrBusy{RetryAfter: retry}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("service: stream rejected: %s: %s", resp.Status, bytes.TrimSpace(body))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxWireLine)
	for sc.Scan() {
		msg, err := toolio.DecodeWireMsg(sc.Bytes())
		if err != nil {
			return nil, err
		}
		switch msg.K {
		case toolio.WireAdviceKind:
			res.Advice = append(res.Advice, sc.Bytes()...)
			res.Advice = append(res.Advice, '\n')
		case toolio.WireErrorKind:
			if msg.RetryMs > 0 {
				return nil, &ErrBusy{RetryAfter: time.Duration(msg.RetryMs) * time.Millisecond}
			}
			return nil, fmt.Errorf("service: server error: %s", msg.Error)
		default:
			return nil, fmt.Errorf("service: unexpected reply kind %q", msg.K)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := <-writeErr; err != nil && err != io.EOF {
		return nil, fmt.Errorf("service: stream write: %w", err)
	}
	return res, nil
}
