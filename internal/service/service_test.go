package service

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/sim/trace"
	"repro/internal/toolio"
)

// syntheticLog builds a small replayable trace by hand: two threads
// hammering adjacent fields of one cache line (classic false sharing) plus
// a genuinely shared word on another line, across several analysis windows.
func syntheticLog() *trace.SampleLog {
	log := &trace.SampleLog{PageSize: 4096}
	for w := 0; w < 6; w++ {
		// >512 samples per window so the adaptive controller's high-water
		// mark trips and the advice stream exercises period feedback.
		for i := 0; i < 400; i++ {
			tid := i % 2
			// False sharing: disjoint 8-byte fields on line 0x10000.
			log.TapSample(detect.Sample{TID: tid, Addr: 0x10000 + uint64(tid)*8, Width: 8, Write: tid == 0})
			// True sharing: both threads on the same word of line 0x20000.
			if i%3 == 0 {
				log.TapSample(detect.Sample{TID: tid, Addr: 0x20000, Width: 8, Write: true})
			}
		}
		log.TapWindow(0.0001, 100)
	}
	return log
}

// fakeClock is the injectable clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Drain()
	})
	return srv, hs
}

func TestStreamParityWithOfflineReplay(t *testing.T) {
	log := syntheticLog()
	_, hs := newTestServer(t, Config{Shards: 2})

	want, err := Replay(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.Split(bytes.TrimSpace(want), []byte("\n"))) != 2*len(log.Windows) {
		t.Fatalf("offline replay produced wrong advice line count")
	}

	cl := &Client{BaseURL: hs.URL, Tenant: "parity-1", PageSize: log.PageSize}
	res, err := cl.Replay(log, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Advice, want) {
		t.Errorf("server advice diverged from offline replay:\nserver: %s\noffline: %s", res.Advice, want)
	}
	if res.Records != 2*log.Len() || res.Ticks != 2*len(log.Windows) {
		t.Errorf("sent %d records / %d ticks, want %d / %d", res.Records, res.Ticks, 2*log.Len(), 2*len(log.Windows))
	}
}

// TestRecommendationIsAdditive pins the backend-recommendation contract:
// the policy only ever adds the "backend" key to advice that carries pages
// — deleting that key from a recommending stream reproduces the plain
// stream byte-for-byte.
func TestRecommendationIsAdditive(t *testing.T) {
	log := syntheticLog()
	plain, err := Replay(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReplayWithPolicy(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 1, "auto")
	if err != nil {
		t.Fatal(err)
	}
	plainLines := bytes.Split(bytes.TrimSpace(plain), []byte("\n"))
	recLines := bytes.Split(bytes.TrimSpace(rec), []byte("\n"))
	if len(plainLines) != len(recLines) {
		t.Fatalf("line counts diverged: %d plain, %d recommending", len(plainLines), len(recLines))
	}
	sawRec := false
	for i, line := range recLines {
		m, err := toolio.DecodeWireMsg(line)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Pages) > 0 && m.Backend == "" {
			t.Errorf("advice %d carries pages but no recommendation", i)
		}
		if len(m.Pages) == 0 && m.Backend != "" {
			t.Errorf("advice %d recommends %q with nothing to repair", i, m.Backend)
		}
		stripped := line
		if m.Backend != "" {
			sawRec = true
			stripped = bytes.Replace(line, []byte(fmt.Sprintf(",%q:%q", "backend", m.Backend)), nil, 1)
		}
		if !bytes.Equal(stripped, plainLines[i]) {
			t.Errorf("advice %d differs beyond the backend field:\nrec:   %s\nplain: %s", i, line, plainLines[i])
		}
	}
	if !sawRec {
		t.Error("synthetic false sharing never drew a recommendation")
	}
}

// TestServerRecommendationParity runs a recommending tmid against the
// recommending offline replay (bytes must match) and checks the per-backend
// advice counter shows up in /metrics.
func TestServerRecommendationParity(t *testing.T) {
	log := syntheticLog()
	srv, hs := newTestServer(t, Config{Shards: 2, RecommendBackend: "tmebox"})

	want, err := ReplayWithPolicy(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 1, "tmebox")
	if err != nil {
		t.Fatal(err)
	}
	cl := &Client{BaseURL: hs.URL, Tenant: "rec-1", PageSize: log.PageSize}
	res, err := cl.Replay(log, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Advice, want) {
		t.Errorf("recommending server diverged from offline policy replay:\nserver: %s\noffline: %s", res.Advice, want)
	}
	sawFixed := false
	for _, line := range bytes.Split(bytes.TrimSpace(res.Advice), []byte("\n")) {
		m, err := toolio.DecodeWireMsg(line)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Pages) > 0 {
			if m.Backend != "tmebox" {
				t.Errorf("fixed policy produced backend %q", m.Backend)
			}
			sawFixed = true
		}
	}
	if !sawFixed {
		t.Fatal("no advice carried pages")
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `tmid_advice_backend_total{backend="tmebox"}`) {
		t.Error("metrics missing per-backend advice counter")
	}
	_ = srv
}

func TestAdviceCarriesRepairAndPeriodFeedback(t *testing.T) {
	log := syntheticLog()
	out, err := Replay(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sawFalse, sawPages, sawPeriodRaise := false, false, false
	for _, line := range bytes.Split(bytes.TrimSpace(out), []byte("\n")) {
		m, err := toolio.DecodeWireMsg(line)
		if err != nil {
			t.Fatal(err)
		}
		if m.K != toolio.WireAdviceKind {
			t.Fatalf("replay emitted non-advice line %q", line)
		}
		if len(m.Pages) > 0 {
			sawPages = true
		}
		for _, l := range m.Lines {
			if l.Class == "false" {
				sawFalse = true
			}
		}
		// ~300 records per window is above the controller's high-water mark,
		// so the feedback must ask for a longer period.
		if m.NextPeriod > 100 {
			sawPeriodRaise = true
		}
	}
	if !sawFalse || !sawPages {
		t.Errorf("advice stream missing false-sharing verdicts (false=%v pages=%v):\n%s", sawFalse, sawPages, out)
	}
	if !sawPeriodRaise {
		t.Errorf("overloaded windows never raised the sampling period:\n%s", out)
	}
}

func TestSaturatedShardRejectsWith429(t *testing.T) {
	log := syntheticLog()
	srv, hs := newTestServer(t, Config{Shards: 1, QueueDepth: 1, EnqueueWait: 10 * time.Millisecond})

	// Wedge the single shard: one stall job being processed, one more
	// filling the bounded queue to capacity.
	sh := srv.shards[0]
	stall := make(chan struct{})
	sh.jobs <- job{stall: stall}
	sh.jobs <- job{stall: stall}
	for len(sh.jobs) < 1 {
		time.Sleep(time.Millisecond)
	}

	cl := &Client{BaseURL: hs.URL, Tenant: "busy-1", PageSize: log.PageSize}
	_, err := cl.Replay(log, 1)
	busy, ok := err.(*ErrBusy)
	if !ok {
		t.Fatalf("streaming at a saturated shard: err = %v, want *ErrBusy", err)
	}
	if busy.RetryAfter <= 0 {
		t.Errorf("429 carried no Retry-After backoff: %+v", busy)
	}
	if got := srv.Metrics().rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// Releasing the shard restores service.
	close(stall)
	if _, err := cl.Replay(log, 1); err != nil {
		t.Errorf("stream after release: %v", err)
	}
}

func TestMidStreamOverloadDropsBatchWithRetryableError(t *testing.T) {
	srv, hs := newTestServer(t, Config{Shards: 1, QueueDepth: 1, EnqueueWait: 5 * time.Millisecond})

	// Drive the raw protocol so the wedge lands between admission and the
	// first batch: connect and get admitted while the queue is empty, then
	// saturate the shard, then send a batch.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		respc <- resp
	}()
	hello := toolio.WireHello{K: toolio.WireHelloKind, Version: toolio.SchemaVersion, Tenant: "wedge-1", PageSize: 4096}
	if _, err := pw.Write(toolio.EncodeWire(hello)); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("no response headers within 5s")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admission status %d, want 200", resp.StatusCode)
	}

	// Wedge: capacity is 1, so the second send can only complete once the
	// loop dequeued the first and is blocked on it — queue provably full.
	stall := make(chan struct{})
	defer close(stall)
	sh := srv.shards[0]
	sh.jobs <- job{stall: stall}
	sh.jobs <- job{stall: stall}

	batch := toolio.WireSamples{K: toolio.WireSamplesKind, S: [][4]uint64{{0, 0x10000, 8, 1}, {1, 0x10008, 8, 0}}}
	if _, err := pw.Write(toolio.EncodeWire(batch)); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream ended without an error line: %v", sc.Err())
	}
	m, err := toolio.DecodeWireMsg(sc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m.K != toolio.WireErrorKind || m.RetryMs <= 0 {
		t.Fatalf("overloaded batch reply %+v, want retryable wire error", m)
	}
	if got := srv.Metrics().droppedBatches.Load(); got != 1 {
		t.Errorf("droppedBatches = %d, want 1", got)
	}
	if got := srv.Metrics().droppedRecords.Load(); got != 2 {
		t.Errorf("droppedRecords = %d, want 2", got)
	}
	pw.Close()
}

func TestSessionTTLEviction(t *testing.T) {
	log := syntheticLog()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	srv, hs := newTestServer(t, Config{Shards: 1, SessionTTL: time.Second, now: clk.now})

	cl := &Client{BaseURL: hs.URL, Tenant: "ttl-1", PageSize: log.PageSize}
	want, err := Replay(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Replay(log, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Advice, want) {
		t.Fatal("first replay lost parity")
	}

	info := srv.Inspect("ttl-1")
	if !info.Exists || info.InternedPages == 0 || info.Records == 0 {
		t.Fatalf("session missing after replay: %+v", info)
	}
	if got := srv.Metrics().sessionsActive.Load(); got != 1 {
		t.Fatalf("sessionsActive = %d, want 1", got)
	}

	// Idle past the TTL: the next shard pass evicts the session and its
	// interned-page state.
	clk.advance(2 * time.Second)
	if info := srv.Inspect("ttl-1"); info.Exists {
		t.Fatalf("session survived the TTL: %+v", info)
	}
	if got := srv.Metrics().sessionsEvicted.Load(); got != 1 {
		t.Errorf("sessionsEvicted = %d, want 1", got)
	}
	if got := srv.Metrics().sessionsActive.Load(); got != 0 {
		t.Errorf("sessionsActive = %d, want 0", got)
	}

	// A late arrival starts a fresh session — same advice as a fresh
	// offline replay, cumulative state fully released, and no panic from
	// stale interned-page IDs.
	res2, err := cl.Replay(log, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res2.Advice, want) {
		t.Errorf("post-eviction replay diverged from a fresh session:\ngot:  %s\nwant: %s", res2.Advice, want)
	}
	info = srv.Inspect("ttl-1")
	if !info.Exists || info.Ticks != len(log.Windows) {
		t.Errorf("fresh session state after eviction: %+v", info)
	}
}

func TestMetricsExposition(t *testing.T) {
	log := syntheticLog()
	srv, hs := newTestServer(t, Config{Shards: 2})
	cl := &Client{BaseURL: hs.URL, Tenant: "metrics-1", PageSize: log.PageSize}
	if _, err := cl.Replay(log, 1); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()

	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		fmt.Sprintf("tmid_ingest_records_total %d", log.Len()),
		fmt.Sprintf("tmid_ticks_total %d", len(log.Windows)),
		"tmid_streams_total 1",
		"tmid_sessions_active 1",
		"tmid_queue_depth{shard=\"0\"} ",
		"tmid_queue_depth{shard=\"1\"} ",
		"tmid_queue_capacity 256",
		"tmid_ingest_records_per_sec ",
		"tmid_advice_latency_seconds_bucket{le=\"+Inf\"} " + fmt.Sprint(len(log.Windows)),
		"tmid_advice_latency_seconds_count " + fmt.Sprint(len(log.Windows)),
		"tmid_classified_lines_false_total",
		"tmid_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	_ = srv
}

func TestHelloValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{Shards: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", ""},
		{"not-hello", `{"k":"t","seq":0}` + "\n"},
		{"future-version", `{"k":"h","v":99,"tenant":"x"}` + "\n"},
		{"no-tenant", fmt.Sprintf(`{"k":"h","v":%d}`, toolio.SchemaVersion) + "\n"},
		{"bad-page-size", fmt.Sprintf(`{"k":"h","v":%d,"tenant":"x","page_size":1000}`, toolio.SchemaVersion) + "\n"},
	} {
		resp, err := http.Post(hs.URL+"/v1/stream", "application/x-ndjson", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestDrainLifecycle(t *testing.T) {
	log := syntheticLog()
	srv, hs := newTestServer(t, Config{Shards: 2})

	if resp, err := http.Get(hs.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	srv.BeginDrain()
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}

	cl := &Client{BaseURL: hs.URL, Tenant: "late-1", PageSize: log.PageSize}
	if _, err := cl.Replay(log, 1); err == nil {
		t.Error("draining server admitted a new stream")
	}

	srv.Drain()
	// After the queues close, enqueue refuses instead of panicking, and
	// Inspect reports nothing.
	if ok := srv.enqueue(srv.shards[0], job{tenant: "x"}); ok {
		t.Error("enqueue succeeded on a drained server")
	}
	if info := srv.Inspect("late-1"); info.Exists {
		t.Errorf("drained server reported a session: %+v", info)
	}
	srv.Drain() // idempotent
}

func TestShardRoutingIsStable(t *testing.T) {
	srv, _ := newTestServer(t, Config{Shards: 8})
	spread := map[int]bool{}
	for i := 0; i < 64; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		a, b := srv.shardFor(tenant), srv.shardFor(tenant)
		if a != b {
			t.Fatalf("tenant %q routed to two shards", tenant)
		}
		spread[a.id] = true
	}
	if len(spread) < 4 {
		t.Errorf("64 tenants landed on only %d of 8 shards", len(spread))
	}
}
