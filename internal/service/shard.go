package service

import (
	"time"

	"repro/internal/detect"
	"repro/internal/sim/trace"
	"repro/internal/toolio"
)

// job is one unit of shard work. Exactly one of samples / tick / inspect /
// stall is meaningful; the zero fields are ignored.
type job struct {
	tenant   string
	pageSize int
	// samples is a batch of resolved records to ingest. The buffer is
	// owned by the job: once the shard has fed it to the session it sends
	// the emptied buffer back on recycle (when set), which is what keeps
	// the binary ingest path allocation-free at steady state.
	samples []detect.Sample
	recycle chan []detect.Sample
	// tick closes the current window; the advice reply lands on reply
	// (buffered 1, never blocks the shard).
	tick  *toolio.WireTick
	reply chan toolio.WireAdvice
	// inspect asks for a session snapshot (diagnostics and white-box
	// tests); the reply lands on info.
	inspect bool
	info    chan SessionInfo
	// export asks for a migration snapshot of the tenant's captured sample
	// log; the reply (a deep copy, safe to stream after the job returns)
	// lands on export.
	export chan exportState
	// install atomically inserts a fully rebuilt session (an import's
	// output) under the tenant key, replacing any resident one; the ack
	// lands on installed.
	install   *session
	installed chan struct{}
	// remove deletes the tenant's session (migration source cutover); the
	// ack reports whether a session was actually resident.
	remove  bool
	removed chan bool
	// stall blocks the shard loop until the channel closes (tests use it to
	// saturate a queue deterministically).
	stall chan struct{}
	// enqueued timestamps admission for the advice-latency histogram.
	enqueued time.Time
}

// exportState is one session's migratable snapshot: a deep copy of its
// captured sample log, taken on the owning shard goroutine so it can never
// tear against concurrent ingest.
type exportState struct {
	ok      bool
	capture bool // false when the server is not Migratable
	log     *trace.SampleLog
}

// release returns a consumed sample buffer to its stream's free list. The
// send never blocks: a full free list (or a reader that already hung up)
// just lets the buffer fall to the garbage collector.
func (j *job) release() {
	if j.recycle == nil {
		return
	}
	select {
	case j.recycle <- j.samples[:0]:
	default:
	}
}

// SessionInfo is a diagnostic snapshot of one tenant's session.
type SessionInfo struct {
	Exists        bool
	Ticks         int
	Records       uint64
	InternedPages int
}

// shard is one detector worker: a bounded job queue consumed by a single
// goroutine that exclusively owns every session hashed onto it.
type shard struct {
	id  int
	srv *Server
	// jobs is the bounded ingest queue; len(jobs) is the queue depth the
	// admission check and /metrics report.
	jobs     chan job
	sessions map[string]*session
	lastScan time.Time
}

func newShard(id int, srv *Server) *shard {
	return &shard{
		id:       id,
		srv:      srv,
		jobs:     make(chan job, srv.cfg.QueueDepth),
		sessions: make(map[string]*session),
	}
}

// depth reports the pending-job count (queue gauge).
func (sh *shard) depth() int { return len(sh.jobs) }

// saturated reports whether the queue has no admission headroom left: new
// streams are rejected at this point so established ones keep their
// backpressure budget.
func (sh *shard) saturated() bool { return len(sh.jobs) >= cap(sh.jobs) }

// loop is the shard worker: it drains the job queue until the server
// closes it, then exits (graceful drain processes everything queued).
func (sh *shard) loop() {
	defer sh.srv.wg.Done()
	m := sh.srv.metrics
	for j := range sh.jobs {
		now := sh.srv.cfg.now()
		sh.maybeEvict(now)
		switch {
		case j.stall != nil:
			<-j.stall
		case j.inspect:
			j.info <- sh.inspectSession(j.tenant)
		case j.export != nil:
			j.export <- sh.exportSession(j.tenant)
		case j.install != nil:
			sh.installSession(j.install, now)
			close(j.installed)
		case j.remove:
			j.removed <- sh.removeSession(j.tenant)
		case j.samples != nil:
			s, err := sh.session(j.tenant, j.pageSize, now)
			if err != nil {
				m.invalidBatches.Add(1)
				j.release()
				continue
			}
			s.lastSeen = now
			s.feed(j.samples)
			m.records.Add(uint64(len(j.samples)))
			j.release()
		case j.tick != nil:
			s, err := sh.session(j.tenant, j.pageSize, now)
			if err != nil {
				m.invalidBatches.Add(1)
				continue
			}
			s.lastSeen = now
			adv := s.advise(*j.tick, sh.srv.cfg.Periods, sh.srv.cfg.RecommendBackend)
			m.ticks.Add(1)
			m.observeAdvice(adv, now.Sub(j.enqueued))
			j.reply <- adv
		}
	}
}

// session returns the tenant's session, creating it on first sight — which
// is also what a record arriving after TTL eviction gets: a fresh session
// with a fresh interning table, never a stale-generation panic.
func (sh *shard) session(tenant string, pageSize int, now time.Time) (*session, error) {
	if s := sh.sessions[tenant]; s != nil {
		return s, nil
	}
	s, err := newSession(tenant, pageSize, sh.srv.cfg.Detect)
	if err != nil {
		return nil, err
	}
	if sh.srv.cfg.Migratable {
		s.log = &trace.SampleLog{PageSize: pageSize}
	}
	s.lastSeen = now
	sh.sessions[tenant] = s
	sh.srv.metrics.sessionsActive.Add(1)
	return s, nil
}

// exportSession deep-copies the tenant's captured sample log. Running on
// the shard goroutine, it observes a log with every ingested batch applied
// and no batch half-applied; the copy means the HTTP handler can stream it
// out while the session keeps ingesting.
func (sh *shard) exportSession(tenant string) exportState {
	if !sh.srv.cfg.Migratable {
		return exportState{capture: false}
	}
	s := sh.sessions[tenant]
	if s == nil || s.log == nil {
		return exportState{capture: true}
	}
	cp := &trace.SampleLog{
		PageSize: s.log.PageSize,
		Samples:  append([]detect.Sample(nil), s.log.Samples...),
		Windows:  append([]trace.SampleWindow(nil), s.log.Windows...),
	}
	return exportState{ok: true, capture: true, log: cp}
}

// installSession inserts a rebuilt session under its tenant key. Import
// rebuilds the session off-shard and installs it in this single step, so a
// concurrently evicting or ingesting shard can only ever observe no session
// or a fully replayed one — never a half-rebuilt state.
func (sh *shard) installSession(s *session, now time.Time) {
	s.lastSeen = now
	if sh.sessions[s.tenant] == nil {
		sh.srv.metrics.sessionsActive.Add(1)
	}
	sh.sessions[s.tenant] = s
	sh.srv.metrics.migratedIn.Add(1)
}

// removeSession deletes the tenant's session (the migration source's
// cutover step: the destination has acked, this copy is now stale).
func (sh *shard) removeSession(tenant string) bool {
	if sh.sessions[tenant] == nil {
		return false
	}
	delete(sh.sessions, tenant)
	sh.srv.metrics.sessionsActive.Add(-1)
	sh.srv.metrics.migratedOut.Add(1)
	return true
}

// maybeEvict drops sessions idle past the TTL. The scan itself runs at most
// every TTL/4 so a busy shard is not walking its session map per batch.
func (sh *shard) maybeEvict(now time.Time) {
	ttl := sh.srv.cfg.SessionTTL
	if now.Sub(sh.lastScan) < ttl/4 {
		return
	}
	sh.lastScan = now
	for tenant, s := range sh.sessions {
		if now.Sub(s.lastSeen) >= ttl {
			// Deleting the session releases the detector's PageID-indexed
			// stat pages and the tenant's whole intern.Table in one step:
			// nothing else holds a reference, so there is no stale-generation
			// state to trip over if the tenant returns.
			delete(sh.sessions, tenant)
			sh.srv.metrics.sessionsActive.Add(-1)
			sh.srv.metrics.sessionsEvicted.Add(1)
		}
	}
}

func (sh *shard) inspectSession(tenant string) SessionInfo {
	s := sh.sessions[tenant]
	if s == nil {
		return SessionInfo{}
	}
	return SessionInfo{
		Exists:        true,
		Ticks:         s.ticks,
		Records:       s.det.TotalRecords,
		InternedPages: s.tab.Len(),
	}
}

// Inspect returns a coherent snapshot of a tenant's session by routing the
// query through the owning shard's queue (so it can never race ingest). It
// takes the same bounded-wait enqueue path as ingest: against a saturated
// or stalled shard the query gives up after EnqueueWait and reports the
// zero SessionInfo instead of blocking forever on the full queue (which,
// performed under the gate's read lock as it once was, deadlocked against
// a concurrent drain's write lock). A drained server likewise reports the
// zero SessionInfo.
func (s *Server) Inspect(tenant string) SessionInfo {
	info := make(chan SessionInfo, 1)
	if !s.enqueue(s.shardFor(tenant), job{tenant: tenant, inspect: true, info: info}) {
		return SessionInfo{}
	}
	return <-info
}
