package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/detect"
	"repro/internal/sim/trace"
	"repro/internal/toolio"
)

// This file is the session-migration surface of a Migratable tmid node —
// the mechanism the cluster routing tier (internal/cluster) rebalances
// shards with. A session's migratable state is exactly its captured
// trace.SampleLog: the destination rebuilds the detector by replaying the
// log through the same session code path every shard and the offline
// Replay use, so a migrated tenant's subsequent advice is byte-identical
// to an uninterrupted run. The wire format reuses the PR 8 binary columnar
// codec: an NDJSON hello line (tenant, page size) followed by samples and
// tick frames — a tick frame per closed window, trailing samples forming
// the open window.
//
// Endpoints:
//
//	GET  /v1/export?tenant=T   stream the tenant's log (hello + frames)
//	POST /v1/import            rebuild and install a session from a stream
//	POST /v1/migrate           {"tenant","target"}: export here, push to
//	                           target's /v1/import, cut this copy over
//
// Migration safety is the caller's cutover discipline plus this file's
// atomicity: export snapshots on the owning shard goroutine (never tears
// against ingest), import installs the fully rebuilt session in one shard
// job (a racing eviction or ingest sees no session or a whole one, never a
// half-replayed one), and the source deletes its copy only after the
// destination acks.

// migrateAck is the import/migrate response body.
type migrateAck struct {
	Migrated bool   `json:"migrated"`
	Tenant   string `json:"tenant,omitempty"`
	Records  int    `json:"records"`
	Windows  int    `json:"windows"`
}

// migrateRequest is /v1/migrate's request body.
type migrateRequest struct {
	Tenant string `json:"tenant"`
	Target string `json:"target"`
}

// writeMigrationStream serializes one captured sample log: the NDJSON
// hello, then binary columnar frames. Windows become (samples*, tick)
// runs; samples past the last window boundary trail as the open window.
func writeMigrationStream(w io.Writer, tenant string, log *trace.SampleLog) error {
	hello := toolio.WireHello{
		K: toolio.WireHelloKind, Version: toolio.SchemaVersion,
		Tenant: tenant, PageSize: log.PageSize, Wire: toolio.WireFormatBinary,
	}
	if _, err := w.Write(toolio.EncodeWire(hello)); err != nil {
		return err
	}
	bw := toolio.NewBinWriter(w)
	var cols toolio.SampleColumns
	writeSamples := func(samples []detect.Sample) error {
		for lo := 0; lo < len(samples); lo += toolio.MaxWireBatch {
			hi := min(lo+toolio.MaxWireBatch, len(samples))
			cols.Grow(hi - lo)
			for i, sm := range samples[lo:hi] {
				cols.TID[i] = uint32(sm.TID)
				cols.Addr[i] = sm.Addr
				cols.Width[i] = uint16(sm.Width)
				wr := uint8(0)
				if sm.Write {
					wr = 1
				}
				cols.Write[i] = wr
			}
			if err := bw.WriteSamples(&cols); err != nil {
				return err
			}
		}
		return nil
	}
	lo := 0
	for i, win := range log.Windows {
		if err := writeSamples(log.Samples[lo:win.End]); err != nil {
			return err
		}
		if err := bw.WriteTick(toolio.WireTick{K: toolio.WireTickKind, Seq: i, IntervalSec: win.IntervalSec, Period: win.Period}); err != nil {
			return err
		}
		lo = win.End
	}
	return writeSamples(log.Samples[lo:])
}

// readMigrationStream parses a migration stream back into a sample log.
// maxRecords caps the total (a runaway stream gets an error, not a node
// OOM); frame-level validation (column ranges, batch caps) is the binary
// codec's.
func readMigrationStream(br *bufio.Reader, maxFrame, maxRecords int) (tenant string, log *trace.SampleLog, err error) {
	line, err := readWireLine(br, nil, maxFrame)
	if err != nil {
		return "", nil, fmt.Errorf("migration stream: missing hello")
	}
	hello, err := toolio.DecodeWireMsg(line)
	if err != nil {
		return "", nil, err
	}
	if err := toolio.CheckHello(hello); err != nil {
		return "", nil, err
	}
	pageSize := hello.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}
	log = &trace.SampleLog{PageSize: pageSize}
	rd := toolio.NewBinReader(br)
	rd.MaxPayload = maxFrame
	for {
		fr, err := rd.ReadFrame()
		if err == io.EOF {
			return hello.Tenant, log, nil
		}
		if err != nil {
			return "", nil, err
		}
		switch fr.Kind {
		case toolio.WireSamplesKind[0]:
			if len(log.Samples)+fr.Samples.Len() > maxRecords {
				return "", nil, fmt.Errorf("migration stream exceeds %d records", maxRecords)
			}
			for i := 0; i < fr.Samples.Len(); i++ {
				log.TapSample(detect.Sample{
					TID:   int(fr.Samples.TID[i]),
					Addr:  fr.Samples.Addr[i],
					Width: int(fr.Samples.Width[i]),
					Write: fr.Samples.Write[i] != 0,
				})
			}
		case toolio.WireTickKind[0]:
			if fr.Tick.IntervalSec <= 0 || fr.Tick.Period < 1 {
				return "", nil, fmt.Errorf("migration stream window %d: interval and period must be positive", len(log.Windows))
			}
			log.TapWindow(fr.Tick.IntervalSec, fr.Tick.Period)
		}
	}
}

// rebuildSession replays a migrated log through a fresh session — the same
// feed/advise path a shard runs — leaving the detector, the seen/ticks
// bookkeeping and the open window in exactly the source's state. The log
// is attached for capture only after the replay, so replaying does not
// double-append into it.
func rebuildSession(tenant string, log *trace.SampleLog, dcfg detect.Config, periods detect.PeriodController) (*session, error) {
	s, err := newSession(tenant, log.PageSize, dcfg)
	if err != nil {
		return nil, err
	}
	lo := 0
	for i, win := range log.Windows {
		s.feed(log.Samples[lo:win.End])
		// The rebuilt advice is discarded: the source already delivered it.
		s.advise(toolio.WireTick{K: toolio.WireTickKind, Seq: i, IntervalSec: win.IntervalSec, Period: win.Period}, periods, "")
		lo = win.End
	}
	s.feed(log.Samples[lo:])
	s.log = log
	return s, nil
}

// exportState fetches the tenant's snapshot through the owning shard.
func (s *Server) exportSnapshot(tenant string) (exportState, bool) {
	ch := make(chan exportState, 1)
	if !s.enqueue(s.shardFor(tenant), job{tenant: tenant, export: ch}) {
		return exportState{}, false
	}
	return <-ch, true
}

// handleExport streams one tenant's migratable snapshot.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Migratable {
		http.Error(w, "tmid: node is not migratable (capture off)", http.StatusConflict)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		http.Error(w, "tmid: export needs ?tenant=", http.StatusBadRequest)
		return
	}
	st, ok := s.exportSnapshot(tenant)
	if !ok {
		http.Error(w, "tmid: draining", http.StatusServiceUnavailable)
		return
	}
	if !st.ok {
		http.Error(w, "tmid: no session for tenant "+tenant, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	writeMigrationStream(w, tenant, st.log)
}

// handleImport rebuilds a session from a migration stream and installs it,
// acking with the record/window counts the destination actually replayed.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Migratable {
		http.Error(w, "tmid: node is not migratable (capture off)", http.StatusConflict)
		return
	}
	if s.draining.Load() {
		http.Error(w, "tmid: draining", http.StatusServiceUnavailable)
		return
	}
	br := bufio.NewReaderSize(r.Body, 256<<10)
	tenant, log, err := readMigrationStream(br, s.cfg.MaxFrameBytes, s.cfg.MaxMigrateRecords)
	if err != nil {
		s.metrics.migrateFailed.Add(1)
		http.Error(w, "tmid: "+err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := rebuildSession(tenant, log, s.cfg.Detect, s.cfg.Periods)
	if err != nil {
		s.metrics.migrateFailed.Add(1)
		http.Error(w, "tmid: "+err.Error(), http.StatusBadRequest)
		return
	}
	installed := make(chan struct{})
	if !s.enqueue(s.shardFor(tenant), job{tenant: tenant, install: sess, installed: installed}) {
		s.metrics.migrateFailed.Add(1)
		http.Error(w, "tmid: draining", http.StatusServiceUnavailable)
		return
	}
	<-installed
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(migrateAck{Migrated: true, Tenant: tenant, Records: log.Len(), Windows: len(log.Windows)})
}

// handleMigrate pushes one tenant's session to a peer node: export here,
// import there, and delete the local copy only once the destination acks.
// A push that fails leaves the local session untouched, so a migration can
// be retried without loss; the caller (the cluster router) owns the other
// half of the safety argument — it stops forwarding the tenant's ingest
// before calling this and resumes against the destination after.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Migratable {
		http.Error(w, "tmid: node is not migratable (capture off)", http.StatusConflict)
		return
	}
	if s.draining.Load() {
		// Draining is terminal here: shard queues are closing and a push
		// begun now may not finish. The router's DrainNode is the supported
		// way to move sessions off a node that is going away.
		http.Error(w, "tmid: draining", http.StatusServiceUnavailable)
		return
	}
	var req migrateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "tmid: bad migrate request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Tenant == "" || req.Target == "" {
		http.Error(w, "tmid: migrate needs tenant and target", http.StatusBadRequest)
		return
	}
	if _, err := url.Parse(req.Target); err != nil {
		http.Error(w, "tmid: bad target: "+err.Error(), http.StatusBadRequest)
		return
	}
	st, ok := s.exportSnapshot(req.Tenant)
	if !ok {
		http.Error(w, "tmid: draining", http.StatusServiceUnavailable)
		return
	}
	if !st.ok {
		// Nothing to move is a clean no-op, not an error: the router calls
		// this for tenants that may never have sent a sample.
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(migrateAck{Migrated: false, Tenant: req.Tenant})
		return
	}

	ack, err := s.pushImport(req.Target, req.Tenant, st.log)
	if err != nil {
		s.metrics.migrateFailed.Add(1)
		http.Error(w, "tmid: migrate push: "+err.Error(), http.StatusBadGateway)
		return
	}
	// Destination acked: cut this copy over. The removal runs on the owning
	// shard, serialized against any straggling ingest for the tenant.
	removed := make(chan bool, 1)
	if s.enqueue(s.shardFor(req.Tenant), job{tenant: req.Tenant, remove: true, removed: removed}) {
		<-removed
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ack)
}

// pushImport streams a snapshot to target's /v1/import and returns its ack.
func (s *Server) pushImport(target, tenant string, log *trace.SampleLog) (migrateAck, error) {
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 256<<10)
		err := writeMigrationStream(bw, tenant, log)
		if err == nil {
			err = bw.Flush()
		}
		pw.CloseWithError(err)
	}()
	req, err := http.NewRequest(http.MethodPost, target+"/v1/import", pr)
	if err != nil {
		return migrateAck{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	hc := &http.Client{Timeout: s.cfg.MigrateTimeout}
	resp, err := hc.Do(req)
	if err != nil {
		return migrateAck{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return migrateAck{}, fmt.Errorf("target answered %s: %s", resp.Status, body)
	}
	var ack migrateAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return migrateAck{}, fmt.Errorf("bad import ack: %w", err)
	}
	if ack.Records != log.Len() || ack.Windows != len(log.Windows) {
		return migrateAck{}, fmt.Errorf("import ack counts diverged: target replayed %d records / %d windows, source shipped %d / %d",
			ack.Records, ack.Windows, log.Len(), len(log.Windows))
	}
	return ack, nil
}
