package analysis

// Internal tests for the suggest pass: exact repair sets for the broken
// fixtures, zero-suggestion guarantees for the clean kernels, and local
// minimality of the solved sets. These live inside the package so the
// minimality assertions can re-run findDefects on partial repair sets
// directly, without going through a full Suggest solve.

import (
	"testing"

	"repro/tmi/workload"
	"repro/tmi/workloads"
)

func catalogFactory(name string) Factory {
	return func() (workload.Workload, error) { return workloads.ByName(name) }
}

// cleanKernels is every correctly-annotated litmus kernel in the catalog,
// pre-C11 and C11 alike.
var cleanKernels = []string{
	"litmus-sb", "litmus-mp", "litmus-lb", "litmus-iriw", "litmus-corr",
	"litmus-mp-relacq", "litmus-fencesb", "litmus-fencemp",
}

// TestSuggestCleanKernelsNoRepairs: the suggest pass must not invent work on
// any correctly-annotated kernel — no races, no critical-cycle delays, one
// analysis round, zero suggestions.
func TestSuggestCleanKernelsNoRepairs(t *testing.T) {
	for _, name := range cleanKernels {
		res, err := Suggest(catalogFactory(name), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Clean || len(res.Suggestions) != 0 || res.Rounds != 1 {
			t.Errorf("%s: clean=%v suggestions=%v rounds=%d, want clean, none, 1",
				name, res.Clean, res.Suggestions, res.Rounds)
		}
	}
}

// TestSuggestBrokenFence pins the exact solved repair set for the
// under-annotated MP kernel: annotate the plain flag accesses atomic, with
// the canonical MP orderings (acquire load, release store) — nothing more.
func TestSuggestBrokenFence(t *testing.T) {
	res, err := Suggest(catalogFactory("litmus-brokenfence"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("not clean after %d rounds, residual %v", res.Rounds, res.Residual)
	}
	want := []workload.Repair{
		{Site: "brokenfence.load_flag", Kind: workload.RepairAtomic, Order: workload.Acquire},
		{Site: "brokenfence.store_flag", Kind: workload.RepairAtomic, Order: workload.Release},
	}
	assertRepairs(t, res.Repairs(), want)
}

// TestSuggestIRIWRelaxed pins the solved set for the relaxed IRIW fixture:
// the two plain mirror loads become relaxed atomics (they race with the
// stores), and the two leading atomic loads are upgraded to acquire (their
// program-order edges to the mirror loads lie on the IRIW critical cycle).
func TestSuggestIRIWRelaxed(t *testing.T) {
	res, err := Suggest(catalogFactory("litmus-iriw-relaxed"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("not clean after %d rounds, residual %v", res.Rounds, res.Residual)
	}
	want := []workload.Repair{
		{Site: "iriwrelaxed.load_x", Kind: workload.RepairOrder, Order: workload.Acquire},
		{Site: "iriwrelaxed.load_x_plain", Kind: workload.RepairAtomic, Order: workload.Relaxed},
		{Site: "iriwrelaxed.load_y", Kind: workload.RepairOrder, Order: workload.Acquire},
		{Site: "iriwrelaxed.load_y_plain", Kind: workload.RepairAtomic, Order: workload.Relaxed},
	}
	assertRepairs(t, res.Repairs(), want)
}

func assertRepairs(t *testing.T, got, want []workload.Repair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("repair set %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("repair[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSuggestStaticMinimality: the solved sets are locally minimal — drop
// any single repair and the static analysis reports a defect again. (For the
// ordering upgrades this minimality is *static*: this machine's relaxed
// atomics run directly against shared memory, so an all-atomic program is SC
// regardless of orderings and the C11-mandated acquire upgrades cannot be
// re-broken dynamically. See DESIGN.md §13.)
func TestSuggestStaticMinimality(t *testing.T) {
	for _, name := range []string{"litmus-brokenfence", "litmus-iriw-relaxed"} {
		f := catalogFactory(name)
		res, err := Suggest(f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		repairs := res.Repairs()
		if !res.Clean || len(repairs) == 0 {
			t.Fatalf("%s: want a clean non-empty repair set, got clean=%v %v", name, res.Clean, repairs)
		}
		if defs := defectsFor(t, f, repairs); len(defs.races)+len(defs.delays) != 0 {
			t.Fatalf("%s: full repair set is not clean: %d races, %d delays",
				name, len(defs.races), len(defs.delays))
		}
		for i := range repairs {
			partial := append(append([]workload.Repair{}, repairs[:i]...), repairs[i+1:]...)
			defs := defectsFor(t, f, partial)
			if len(defs.races)+len(defs.delays) == 0 {
				t.Errorf("%s: dropping %v leaves the analysis clean — set not minimal", name, repairs[i])
			}
		}
	}
}

func defectsFor(t *testing.T, f Factory, repairs []workload.Repair) defects {
	t.Helper()
	m, err := buildRepaired(f, Options{}, repairs)
	if err != nil {
		t.Fatal(err)
	}
	return findDefects(m)
}

// TestFenceRepairsClean: the fence vocabulary is a complete alternative to
// ordering upgrades — annotating brokenfence's flag accesses as *relaxed*
// atomics and interposing standalone fences (release before the store,
// acquire after the load) must also satisfy the analysis: the fence clocks
// order the plain data accesses, and the interposed separators discharge the
// critical-cycle edges.
func TestFenceRepairsClean(t *testing.T) {
	f := catalogFactory("litmus-brokenfence")
	repairs := []workload.Repair{
		{Site: "brokenfence.load_flag", Kind: workload.RepairAtomic, Order: workload.Relaxed},
		{Site: "brokenfence.load_flag", Kind: workload.RepairFenceAfter, Order: workload.Acquire},
		{Site: "brokenfence.store_flag", Kind: workload.RepairAtomic, Order: workload.Relaxed},
		{Site: "brokenfence.store_flag", Kind: workload.RepairFenceBefore, Order: workload.Release},
	}
	if defs := defectsFor(t, f, repairs); len(defs.races)+len(defs.delays) != 0 {
		t.Fatalf("fence-based repair not clean: %d races, %d delays", len(defs.races), len(defs.delays))
	}
	// Dropping either fence re-exposes a defect: without the release fence
	// the data store is unpublished; without the acquire fence the reader
	// never joins it.
	for _, drop := range []int{1, 3} {
		partial := append(append([]workload.Repair{}, repairs[:drop]...), repairs[drop+1:]...)
		if defs := defectsFor(t, f, partial); len(defs.races)+len(defs.delays) == 0 {
			t.Errorf("dropping %v leaves the analysis clean", repairs[drop])
		}
	}
}
