package analysis_test

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/tmi"
	"repro/tmi/workloads"
)

// TestPredictionGolden pins the layout predictor's accuracy on tmilint's
// default comparison set (seed 1, default threads). Both sides of the
// comparison are deterministic, so these are exact expectations, not
// tolerances: any drift in the static predictor, the dynamic detector or
// the workloads' layouts shows up here as a hard failure and must be
// re-justified, not absorbed.
func TestPredictionGolden(t *testing.T) {
	want := []analysis.Accuracy{
		{Workload: "histogramfs", StaticFalse: 2, DynamicFalse: 1, Common: 1, Precision: 0.5, Recall: 1},
		{Workload: "lreg", StaticFalse: 2, DynamicFalse: 2, Common: 2, Precision: 1, Recall: 1},
		{Workload: "stringmatch", StaticFalse: 3, DynamicFalse: 1, Common: 1, Precision: 1.0 / 3, Recall: 1},
	}
	for _, exp := range want {
		exp := exp
		t.Run(exp.Workload, func(t *testing.T) {
			w, err := workloads.ByName(exp.Workload)
			if err != nil {
				t.Fatal(err)
			}
			m, err := analysis.BuildModel(w, analysis.Options{Seed: 1})
			if err != nil {
				t.Fatalf("BuildModel: %v", err)
			}
			dyn, err := workloads.ByName(exp.Workload)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := tmi.Run(dyn, tmi.Config{System: tmi.TMIDetect, Seed: 1})
			if err != nil {
				t.Fatalf("dynamic run: %v", err)
			}
			got := analysis.CompareFalseSharing(m, rep.Lines, analysis.DefaultMinAccesses)
			if got.StaticFalse != exp.StaticFalse || got.DynamicFalse != exp.DynamicFalse ||
				got.Common != exp.Common ||
				math.Abs(got.Precision-exp.Precision) > 1e-9 ||
				math.Abs(got.Recall-exp.Recall) > 1e-9 {
				t.Errorf("accuracy drifted:\n got  %s\n want %s", got, exp)
			}
		})
	}
}
