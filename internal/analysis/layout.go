package analysis

// The static false-sharing layout predictor: classifies each modeled cache
// line with the same decision procedure the dynamic detector applies to
// PEBS samples (internal/detect.classify) — two or more threads, at least
// one write, and the verdict decided by whether cross-thread byte ranges
// overlap — but over exact footprints instead of sampled spans. The
// comparison against a dynamic run quantifies where sampling and exactness
// disagree (cold lines the sampler never saw; skid-noise lines the static
// model never touches).

import (
	"fmt"
	"sort"

	"repro/internal/detect"
)

// DefaultMinAccesses is the default heat floor for CompareFalseSharing.
// The dynamic detector needs MinRecords (8) samples at its period (default
// 100) before it classifies a line — roughly 800 accesses — so statically
// lukewarm lines below this floor are not fair false-alarm candidates.
const DefaultMinAccesses = 64

// LinePrediction is the static verdict for one cache line.
type LinePrediction struct {
	Line    uint64
	Class   detect.Sharing
	Threads int // threads that touched the line
	Writers int // threads that wrote the line
	// Accesses is the total static access count on the line; the heat
	// proxy used to align with the dynamic detector's sampling floor.
	Accesses uint64
}

// ClassifyLine classifies one per-thread footprint line with the shared
// decision procedure. Exported so the source-level analyzer (internal/
// srcvet) reuses exactly this classifier over statically inferred
// footprints: two or more writers with disjoint byte masks is false
// sharing, any cross-writer byte overlap is true sharing. A footprint
// whose WriteMask is empty (a zero-size field, or a read-only thread)
// never counts as a writer.
func ClassifyLine(lm *LineModel) LinePrediction { return classifyLine(lm) }

// PredictLines classifies every modeled line and returns those with any
// sharing (true or false), sorted by address.
func (m *Model) PredictLines() []LinePrediction {
	var out []LinePrediction
	for _, lm := range m.Lines {
		p := classifyLine(lm)
		if p.Class == detect.SharingNone {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// classifyLine mirrors detect.classify over exact footprints: no sharing
// without two threads and a write; true sharing when any cross-thread byte
// overlap involves a writer; false sharing otherwise.
func classifyLine(lm *LineModel) LinePrediction {
	p := LinePrediction{Line: lm.Line}
	tids := make([]int, 0, len(lm.PerThread))
	for tid, f := range lm.PerThread {
		p.Accesses += f.Reads + f.Writes
		// A thread with an empty byte footprint (only zero-size accesses)
		// never reaches coherence: it cannot participate in sharing. The
		// dynamic detector cannot observe such a thread either — every
		// sampled span covers at least one byte — so counting it here
		// would fabricate single-writer "false sharing" no run confirms.
		if f.ReadMask == 0 && f.WriteMask == 0 {
			continue
		}
		tids = append(tids, tid)
		if f.WriteMask != 0 {
			p.Writers++
		}
	}
	p.Threads = len(tids)
	if p.Threads < 2 || p.Writers == 0 {
		return p
	}
	sort.Ints(tids)
	for i := 0; i < len(tids); i++ {
		for j := i + 1; j < len(tids); j++ {
			a, b := lm.PerThread[tids[i]], lm.PerThread[tids[j]]
			if a.WriteMask&(b.ReadMask|b.WriteMask) != 0 || b.WriteMask&a.ReadMask != 0 {
				p.Class = detect.SharingTrue
				return p
			}
		}
	}
	p.Class = detect.SharingFalse
	return p
}

// Accuracy compares the static predictor's false-sharing line set against a
// dynamic detector run.
type Accuracy struct {
	Workload string
	// StaticFalse/DynamicFalse count falsely-shared lines each side found;
	// Common is their intersection.
	StaticFalse  int
	DynamicFalse int
	Common       int
	// Precision = Common/StaticFalse, Recall = Common/DynamicFalse (both 1
	// when the respective denominator is empty).
	Precision float64
	Recall    float64
	// StaticTrue/DynamicTrue count truly-shared lines, for context.
	StaticTrue  int
	DynamicTrue int
}

func (a Accuracy) String() string {
	return fmt.Sprintf("%s: static %d false / %d true, dynamic %d false / %d true, common %d, precision %.2f, recall %.2f",
		a.Workload, a.StaticFalse, a.StaticTrue, a.DynamicFalse, a.DynamicTrue, a.Common, a.Precision, a.Recall)
}

// CompareFalseSharing scores the static predictions against the dynamic
// detector's classified lines. minAccesses filters statically cold lines:
// the dynamic detector cannot classify a line its sampler never collects
// MinRecords samples on, so lines below the heat floor are excluded from
// the static set rather than counted as false alarms.
func CompareFalseSharing(m *Model, dynamic []detect.LineReport, minAccesses uint64) Accuracy {
	acc := Accuracy{Workload: m.Workload}
	static := make(map[uint64]bool)
	for _, p := range m.PredictLines() {
		switch p.Class {
		case detect.SharingTrue:
			acc.StaticTrue++
		case detect.SharingFalse:
			if p.Accesses >= minAccesses {
				acc.StaticFalse++
				static[p.Line] = true
			}
		}
	}
	for _, lr := range dynamic {
		switch lr.Class {
		case detect.SharingTrue:
			acc.DynamicTrue++
		case detect.SharingFalse:
			acc.DynamicFalse++
			if static[lr.Line] {
				acc.Common++
			}
		}
	}
	acc.Precision = ratio(acc.Common, acc.StaticFalse)
	acc.Recall = ratio(acc.Common, acc.DynamicFalse)
	return acc
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}
