package analysis_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/detect"
	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

// TestCatalogClean is the annotation gate: every named catalog workload,
// including the manual variants, must model and verify with zero findings.
func TestCatalogClean(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			m, err := analysis.BuildModel(w, analysis.Options{})
			if err != nil {
				t.Fatalf("BuildModel: %v", err)
			}
			for _, f := range analysis.Verify(m) {
				t.Errorf("finding: %s", f)
			}
		})
	}
}

// TestFixtureFlaggedStatically checks that the seeded misannotated fixture
// is caught by the static verifier with the expected rule.
func TestFixtureFlaggedStatically(t *testing.T) {
	w, err := workloads.ByName("misannotated")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	m, err := analysis.BuildModel(w, analysis.Options{})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	findings := analysis.Verify(m)
	var unannotated int
	for _, f := range findings {
		if f.Rule == "unannotated-atomic" {
			unannotated++
			if !strings.Contains(f.Detail, "Table 2 case 1") {
				t.Errorf("finding does not cite the Table 2 demotion: %s", f)
			}
		}
	}
	// Both the read and the bump site are reached by plain accesses.
	if unannotated != 2 {
		t.Fatalf("got %d unannotated-atomic findings, want 2; all: %v", unannotated, findings)
	}
}

// TestFixtureCaughtDynamically runs the fixture under the sanitizer and
// expects runtime violations, and runs a clean workload expecting none —
// the static and dynamic checkers must agree on both sides.
func TestFixtureCaughtDynamically(t *testing.T) {
	w, err := workloads.ByName("misannotated")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	rep, err := tmi.Run(w, tmi.Config{System: tmi.TMIDetect, Sanitize: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.SanitizerViolations == 0 {
		t.Fatal("sanitizer reported no violations on the misannotated fixture")
	}
	if len(rep.SanitizerDetails) == 0 || !strings.Contains(rep.SanitizerDetails[0], "plain access through atomic instruction site") {
		t.Fatalf("unexpected sanitizer details: %v", rep.SanitizerDetails)
	}

	clean, err := workloads.ByName("histogramfs")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	crep, err := tmi.Run(clean, tmi.Config{System: tmi.TMIDetect, Sanitize: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if crep.SanitizerViolations != 0 {
		t.Fatalf("sanitizer flagged a clean workload: %v", crep.SanitizerDetails)
	}
}

// TestDeterministic checks that two builds of the same model agree.
func TestDeterministic(t *testing.T) {
	build := func() *analysis.Model {
		w, err := workloads.ByName("spinlockpool")
		if err != nil {
			t.Fatalf("ByName: %v", err)
		}
		m, err := analysis.BuildModel(w, analysis.Options{})
		if err != nil {
			t.Fatalf("BuildModel: %v", err)
		}
		return m
	}
	a, b := build(), build()
	if len(a.Lines) != len(b.Lines) || a.Ops != b.Ops {
		t.Fatalf("models differ: %d/%d lines, %d/%d ops", len(a.Lines), len(b.Lines), a.Ops, b.Ops)
	}
	pa, pb := a.PredictLines(), b.PredictLines()
	if fmt.Sprint(pa) != fmt.Sprint(pb) {
		t.Fatalf("predictions differ:\n%v\n%v", pa, pb)
	}
}

// tiny is a configurable inline workload for edge-case tests.
type tiny struct {
	threads int
	setup   func(*tiny, workload.Env) error
	body    func(*tiny, workload.Thread)
	info    workload.Info

	base  uint64
	bar   workload.Barrier
	sites map[string]workload.Site
}

func (w *tiny) Name() string { return "tiny" }
func (w *tiny) Info() workload.Info {
	info := w.info
	if info.Threads == 0 {
		info.Threads = w.threads
	}
	return info
}
func (w *tiny) Setup(env workload.Env) error { return w.setup(w, env) }
func (w *tiny) Body(t workload.Thread)       { w.body(w, t) }
func (w *tiny) Validate(workload.Env) error  { return nil }

// TestAtomicIsLoadAndStore: an atomic RMW must contribute both read and
// write footprints, so two threads doing disjoint-byte atomics on one line
// classify as false sharing.
func TestAtomicIsLoadAndStore(t *testing.T) {
	w := &tiny{
		threads: 2,
		info:    workload.Info{UsesAtomics: true},
		setup: func(w *tiny, env workload.Env) error {
			w.base = env.Alloc(64, 64)
			w.sites = map[string]workload.Site{
				"a": env.Site("tiny.a", workload.SiteAtomic, 8),
			}
			return nil
		},
		body: func(w *tiny, t workload.Thread) {
			addr := w.base + uint64(t.ID())*8
			for i := 0; i < 100; i++ {
				t.AtomicAdd(w.sites["a"], addr, 1, workload.Relaxed)
			}
		},
	}
	m, err := analysis.BuildModel(w, analysis.Options{})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	if fs := analysis.Verify(m); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
	lm := m.Lines[w.base]
	if lm == nil {
		t.Fatal("no line model for the shared line")
	}
	for tid := 0; tid < 2; tid++ {
		f := lm.PerThread[tid]
		if f == nil || f.ReadMask == 0 || f.WriteMask == 0 {
			t.Fatalf("thread %d foot %+v: atomic must set both masks", tid, f)
		}
	}
	preds := m.PredictLines()
	if len(preds) != 1 || preds[0].Class != detect.SharingFalse {
		t.Fatalf("predictions %v, want one false-sharing line", preds)
	}
}

// TestOverlapIsTrueSharing: overlapping cross-thread byte ranges with a
// writer must classify as true sharing, exactly like the dynamic detector.
func TestOverlapIsTrueSharing(t *testing.T) {
	w := &tiny{
		threads: 2,
		setup: func(w *tiny, env workload.Env) error {
			w.base = env.Alloc(64, 64)
			w.sites = map[string]workload.Site{
				"w8": env.Site("tiny.w8", workload.SiteStore, 8),
				"r4": env.Site("tiny.r4", workload.SiteLoad, 4),
			}
			return nil
		},
		body: func(w *tiny, t workload.Thread) {
			for i := 0; i < 100; i++ {
				if t.ID() == 0 {
					t.Store(w.sites["w8"], w.base, 7) // bytes [0,8)
				} else {
					t.Load(w.sites["r4"], w.base+4) // bytes [4,8): overlaps
				}
			}
		},
	}
	m, err := analysis.BuildModel(w, analysis.Options{})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	preds := m.PredictLines()
	if len(preds) != 1 || preds[0].Class != detect.SharingTrue {
		t.Fatalf("predictions %v, want one true-sharing line", preds)
	}
}

// TestDeadlockAborts: a barrier that can never fill must abort with a
// deadlock finding instead of hanging the analysis.
func TestDeadlockAborts(t *testing.T) {
	w := &tiny{
		threads: 2,
		setup: func(w *tiny, env workload.Env) error {
			w.bar = env.NewBarrier("tiny.bar", env.Threads()+1)
			return nil
		},
		body: func(w *tiny, t workload.Thread) {
			t.Wait(w.bar)
		},
	}
	m, err := analysis.BuildModel(w, analysis.Options{})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	if !m.Aborted {
		t.Fatal("model not marked aborted")
	}
	var deadlock bool
	for _, f := range analysis.Verify(m) {
		deadlock = deadlock || f.Rule == "deadlock"
	}
	if !deadlock {
		t.Fatalf("no deadlock finding: %v", analysis.Verify(m))
	}
}

// TestUnbalancedAsmFlagged: a body that enters an asm region and never
// exits must produce an unbalanced-region finding.
func TestUnbalancedAsmFlagged(t *testing.T) {
	w := &tiny{
		threads: 1,
		info:    workload.Info{UsesAsm: true},
		setup:   func(w *tiny, env workload.Env) error { return nil },
		body: func(w *tiny, t workload.Thread) {
			t.EnterAsm()
		},
	}
	m, err := analysis.BuildModel(w, analysis.Options{})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	var unbalanced bool
	for _, f := range analysis.Verify(m) {
		unbalanced = unbalanced || f.Rule == "unbalanced-region"
	}
	if !unbalanced {
		t.Fatalf("no unbalanced-region finding: %v", analysis.Verify(m))
	}
}

// TestPrecisionRecall compares static predictions against dynamic detector
// runs for three catalog false-sharing workloads. The static model sees
// exact footprints while the detector samples, so demand recall of the
// dynamic false-sharing lines and sane precision bounds.
func TestPrecisionRecall(t *testing.T) {
	for _, name := range []string{"histogramfs", "lreg", "stringmatch"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			m, err := analysis.BuildModel(w, analysis.Options{})
			if err != nil {
				t.Fatalf("BuildModel: %v", err)
			}
			dyn, err := workloads.ByName(name)
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			rep, err := tmi.Run(dyn, tmi.Config{System: tmi.TMIDetect})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			acc := analysis.CompareFalseSharing(m, rep.Lines, analysis.DefaultMinAccesses)
			t.Logf("%s", acc)
			if acc.DynamicFalse == 0 {
				t.Fatalf("dynamic run found no false sharing to compare against")
			}
			if acc.Recall < 0.5 {
				t.Errorf("recall %.2f too low: static model missed most dynamic lines", acc.Recall)
			}
			if acc.Precision < 0 || acc.Precision > 1 || acc.Recall > 1 {
				t.Errorf("accuracy out of bounds: %+v", acc)
			}
		})
	}
}
