package analysis

// The suggest pass: static fence/annotation repair over C11-style orderings.
//
// Given a workload, Suggest abstractly interprets it (Options.Trace), finds
// the two classes of consistency defects the model exposes, and solves for a
// small repair set in the programmer's vocabulary:
//
//   - data races: a pair of overlapping accesses, at least one plain and at
//     least one write, unordered by the C11 happens-before the trace's
//     orderings induce. Repair: annotate the plain endpoint(s) as atomic
//     (memory_order_relaxed — atomicity first, ordering later).
//   - delays: program-order edges that the orderings do not enforce and that
//     lie on a Shasha–Snir critical cycle through conflicting accesses of
//     other threads. Under TMI these are exactly the edges whose reordering
//     the PTSB can expose (a buffered store overtaking a later operation, a
//     stale private page serving a later read). Repair: strengthen the
//     ordering of an atomic endpoint (acquire for the leading read, release
//     for the trailing write) or, when no ordering can enforce the edge
//     (plain endpoints, or a store→load edge), insert a standalone fence —
//     seq_cst for store→load, per Alglave et al.'s fence-insertion rules.
//
// Repair → re-interpret → repeat, until the model is clean or the round
// budget is spent; then minimize: greedily drop suggestions whose removal
// keeps the model clean, and weaken orderings to the weakest level that
// stays clean. The result is locally minimal: removing or weakening any
// single surviving suggestion re-introduces a race or a critical cycle.

import (
	"fmt"
	"sort"

	"repro/tmi/workload"
)

// Factory builds a fresh workload instance; Suggest re-interprets the
// program several times and workloads carry state.
type Factory func() (workload.Workload, error)

// Suggestion is one proposed repair, with the evidence that produced it.
type Suggestion struct {
	Repair workload.Repair
	Reason string
}

// SuggestResult is the outcome of a Suggest run.
type SuggestResult struct {
	Workload string
	// Suggestions is the minimized repair set, sorted by site.
	Suggestions []Suggestion
	// Rounds is how many repair→re-interpret iterations ran.
	Rounds int
	// Clean reports whether the fully repaired model has no races and no
	// unenforced critical-cycle delays.
	Clean bool
	// Residual lists defects left when the round budget was exhausted.
	Residual []string
}

const maxSuggestRounds = 8

// Suggest analyzes the factory's workload and returns a minimized repair
// set. opt.Trace is forced on.
func Suggest(f Factory, opt Options) (*SuggestResult, error) {
	name := ""
	reasons := map[string]string{} // repair key → first evidence
	var repairs []workload.Repair

	res := &SuggestResult{}
	for round := 1; round <= maxSuggestRounds; round++ {
		res.Rounds = round
		m, err := buildRepaired(f, opt, repairs)
		if err != nil {
			return nil, err
		}
		name = m.Workload
		defects := findDefects(m)
		if len(defects.races) == 0 && len(defects.delays) == 0 {
			res.Clean = true
			break
		}
		grew := false
		if len(defects.races) > 0 {
			for _, r := range defects.races {
				grew = addRaceRepairs(&repairs, reasons, r) || grew
			}
		} else {
			for _, d := range defects.delays {
				grew = addDelayRepair(&repairs, reasons, d) || grew
			}
		}
		if !grew {
			// No expressible repair for the remaining defects (runtime or
			// asm endpoints): report them and stop.
			for _, r := range defects.races {
				res.Residual = append(res.Residual, "unrepairable "+r.reason())
			}
			for _, d := range defects.delays {
				res.Residual = append(res.Residual, "unrepairable "+d.reason())
			}
			break
		}
	}
	res.Workload = name

	if res.Clean {
		repairs = minimizeRepairs(f, opt, repairs)
	}
	sort.Slice(repairs, func(i, j int) bool {
		if repairs[i].Site != repairs[j].Site {
			return repairs[i].Site < repairs[j].Site
		}
		return repairs[i].Kind < repairs[j].Kind
	})
	for _, r := range repairs {
		res.Suggestions = append(res.Suggestions, Suggestion{
			Repair: r,
			Reason: reasons[repairKey(r)],
		})
	}
	return res, nil
}

// Repairs extracts the bare repair set from a result.
func (r *SuggestResult) Repairs() []workload.Repair {
	out := make([]workload.Repair, len(r.Suggestions))
	for i, s := range r.Suggestions {
		out[i] = s.Repair
	}
	return out
}

func buildRepaired(f Factory, opt Options, repairs []workload.Repair) (*Model, error) {
	w, err := f()
	if err != nil {
		return nil, err
	}
	opt.Trace = true
	return BuildModel(workload.Repaired(w, repairs), opt)
}

// repairKey identifies a repair slot: one ordering slot per site plus one
// slot per fence position.
func repairKey(r workload.Repair) string {
	switch r.Kind {
	case workload.RepairFenceBefore, workload.RepairFenceAfter:
		return r.Site + "/" + r.Kind.String()
	default:
		return r.Site + "/ord"
	}
}

// mergeRepair joins r into the set, returning false when the set already
// subsumes it (same slot, order not strengthened).
func mergeRepair(set *[]workload.Repair, r workload.Repair) bool {
	for i := range *set {
		e := &(*set)[i]
		if repairKey(*e) != repairKey(r) {
			continue
		}
		joined := workload.JoinOrders(e.Order, r.Order)
		changed := joined != e.Order
		e.Order = joined
		if r.Kind == workload.RepairAtomic && e.Kind == workload.RepairOrder {
			e.Kind = workload.RepairAtomic
			changed = true
		}
		return changed
	}
	*set = append(*set, r)
	return true
}

func addRaceRepairs(set *[]workload.Repair, reasons map[string]string, rc racePair) bool {
	grew := false
	for _, ev := range []*TraceEvent{&rc.a, &rc.b} {
		if ev.Op != OpPlain || ev.Asm || ev.Site == "" {
			continue
		}
		r := workload.Repair{Site: ev.Site, Kind: workload.RepairAtomic, Order: workload.Relaxed}
		if mergeRepair(set, r) {
			reasons[repairKey(r)] = rc.reason()
			grew = true
		}
	}
	return grew
}

func addDelayRepair(set *[]workload.Repair, reasons map[string]string, d delayEdge) bool {
	u, v := d.u, d.v
	var r workload.Repair
	switch {
	case u.read && u.atomicAll():
		r = workload.Repair{Site: u.site, Kind: workload.RepairOrder, Order: workload.Acquire}
	case v.write && v.atomicAll():
		r = workload.Repair{Site: v.site, Kind: workload.RepairOrder, Order: workload.Release}
	case u.read:
		r = workload.Repair{Site: u.site, Kind: workload.RepairFenceAfter, Order: workload.Acquire}
	case v.write:
		r = workload.Repair{Site: v.site, Kind: workload.RepairFenceBefore, Order: workload.Release}
	default:
		// store→load: no ordering enforces it; a seq_cst fence does.
		r = workload.Repair{Site: u.site, Kind: workload.RepairFenceAfter, Order: workload.SeqCst}
	}
	if u.read && !u.atomicAll() && u.write {
		// Mixed plain RMW-ish node: fall back to a fence.
		r = workload.Repair{Site: u.site, Kind: workload.RepairFenceAfter, Order: workload.SeqCst}
	}
	if !mergeRepair(set, r) {
		return false
	}
	reasons[repairKey(r)] = d.reason()
	return true
}

// minimizeRepairs greedily drops repairs whose removal keeps the model
// clean, then weakens surviving orderings to the weakest clean level.
func minimizeRepairs(f Factory, opt Options, repairs []workload.Repair) []workload.Repair {
	sort.Slice(repairs, func(i, j int) bool {
		if repairs[i].Site != repairs[j].Site {
			return repairs[i].Site < repairs[j].Site
		}
		return repairs[i].Kind < repairs[j].Kind
	})
	clean := func(set []workload.Repair) bool {
		m, err := buildRepaired(f, opt, set)
		if err != nil {
			return false
		}
		d := findDefects(m)
		return len(d.races) == 0 && len(d.delays) == 0
	}
	// Drop pass.
	for i := 0; i < len(repairs); {
		trial := append(append([]workload.Repair{}, repairs[:i]...), repairs[i+1:]...)
		if clean(trial) {
			repairs = trial
			continue
		}
		i++
	}
	// Weaken pass: try strictly weaker orders, weakest first.
	ladder := []workload.MemOrder{workload.Relaxed, workload.Acquire, workload.Release, workload.AcqRel}
	for i := range repairs {
		for _, o := range ladder {
			if o == repairs[i].Order || workload.JoinOrders(o, repairs[i].Order) != repairs[i].Order {
				continue // not strictly weaker
			}
			trial := append([]workload.Repair{}, repairs...)
			trial[i].Order = o
			if clean(trial) {
				repairs = trial
				break
			}
		}
	}
	return repairs
}

// ---- defect detection over the abstract trace ----

type defects struct {
	races  []racePair
	delays []delayEdge
}

func findDefects(m *Model) defects {
	var d defects
	d.races = traceRaces(m.Trace, m.Threads)
	if len(d.races) == 0 {
		d.delays = criticalDelays(m.Trace, m.Threads)
	}
	return d
}

type racePair struct{ a, b TraceEvent }

func (r racePair) reason() string {
	return fmt.Sprintf("data race: %s (thread %d) and %s (thread %d) on address 0x%x are unordered by happens-before",
		siteOrPC(r.a), r.a.TID, siteOrPC(r.b), r.b.TID, r.b.Addr)
}

func siteOrPC(e TraceEvent) string {
	if e.Site != "" {
		return e.Site
	}
	return fmt.Sprintf("pc:0x%x", e.PC)
}

type aclock []uint32

func (v aclock) join(o aclock) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

type traceEpoch struct {
	ev  TraceEvent
	clk uint32
}

// traceRaces runs the same per-ordering vector-clock happens-before the
// model checker's detector uses (internal/mc) over the abstract trace. The
// round-robin interleaving is just one schedule, but detection is
// value-independent: two accesses race iff they are unordered by the hb the
// orderings induce, which the single deterministic trace exposes.
func traceRaces(trace []TraceEvent, threads int) []racePair {
	vc := make([]aclock, threads)
	for i := range vc {
		vc[i] = make(aclock, threads)
		vc[i][i] = 1
	}
	addrVC := map[uint64]aclock{}
	relFence := make([]aclock, threads)
	pendAcq := make([]aclock, threads)
	type byteSt struct {
		w     *traceEpoch
		reads map[int]*traceEpoch
	}
	bytes := map[uint64]*byteSt{}
	seen := map[[2]uint64]bool{}
	var races []racePair

	ordered := func(e *traceEpoch, t int) bool { return e.clk <= vc[t][e.ev.TID] }

	for _, ev := range trace {
		t := ev.TID
		switch ev.Op {
		case OpWake:
			vc[ev.Other].join(vc[t])
			vc[t][t]++
			continue
		case OpFence:
			if ev.Order.Acquires() && pendAcq[t] != nil {
				vc[t].join(pendAcq[t])
				pendAcq[t] = nil
			}
			if ev.Order.Releases() {
				cp := make(aclock, threads)
				cp.join(vc[t])
				relFence[t] = cp
			}
			vc[t][t]++
			continue
		}
		syncish := ev.Op == OpRuntime || ev.Op == OpAtomic || ev.Asm
		acq, rel := ev.Acquires(), ev.Releases()
		if syncish {
			if l := addrVC[ev.Addr]; l != nil {
				if acq {
					vc[t].join(l)
				}
				if pendAcq[t] == nil {
					pendAcq[t] = make(aclock, threads)
				}
				pendAcq[t].join(l)
			}
		}
		ep := &traceEpoch{ev: ev, clk: vc[t][t]}
		for b := ev.Addr; b < ev.Addr+uint64(ev.Width); b++ {
			st := bytes[b]
			if st == nil {
				st = &byteSt{reads: map[int]*traceEpoch{}}
				bytes[b] = st
			}
			check := func(prev *traceEpoch) {
				prevSync := prev.ev.Op != OpPlain || prev.ev.Asm
				if prev.ev.TID == t || (prevSync && syncish) || ordered(prev, t) {
					return
				}
				key := [2]uint64{prev.ev.PC, ev.PC}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if !seen[key] {
					seen[key] = true
					races = append(races, racePair{a: prev.ev, b: ev})
				}
			}
			if st.w != nil {
				check(st.w)
			}
			if ev.Write {
				for _, r := range st.reads {
					check(r)
				}
				st.w = ep
			} else {
				st.reads[t] = ep
			}
		}
		if syncish {
			if ev.Write {
				switch {
				case rel:
					cp := make(aclock, threads)
					cp.join(vc[t])
					addrVC[ev.Addr] = cp
				case relFence[t] != nil:
					cp := make(aclock, threads)
					cp.join(relFence[t])
					addrVC[ev.Addr] = cp
				default:
					delete(addrVC, ev.Addr)
				}
			}
			vc[t][t]++
		}
	}
	return races
}

// ---- critical-cycle (delay set) computation ----

// dnode aggregates every trace event of one (thread, site) pair: one static
// access in one thread's program order.
type dnode struct {
	tid    int
	site   string
	minIdx int
	maxIdx int

	events  int
	atomics int
	acqs    int
	rels    int
	seqs    int
	runtime bool
	asm     bool
	read    bool
	write   bool

	// bytes maps each touched byte to its access mode (bit0 read, bit1
	// write).
	bytes map[uint64]uint8
}

func (n *dnode) atomicAll() bool { return n.events > 0 && n.atomics == n.events }
func (n *dnode) acqAll() bool    { return n.events > 0 && n.acqs == n.events }
func (n *dnode) relAll() bool    { return n.events > 0 && n.rels == n.events }
func (n *dnode) seqAll() bool    { return n.events > 0 && n.seqs == n.events }

// separator is a fence or runtime sync point in one thread's program order.
type separator struct {
	idx     int
	runtime bool
	order   workload.MemOrder
}

// delayEdge is an unenforced program-order edge on a critical cycle.
type delayEdge struct{ u, v *dnode }

func (d delayEdge) reason() string {
	return fmt.Sprintf("delay: program-order edge %s -> %s (thread %d) is unenforced and lies on a critical cycle (Shasha-Snir)",
		d.u.site, d.v.site, d.u.tid)
}

// cycleBudget bounds the critical-cycle search; exhausting it errs toward
// fewer suggestions, never wrong ones.
const cycleBudget = 500_000

// criticalDelays builds the per-(thread,site) abstract event graph and
// returns the unenforced program-order edges that lie on a critical cycle:
// a cycle through conflicting accesses of at least two threads, with at most
// one program-order edge per thread (Shasha–Snir). These are the delay-set
// edges whose reordering the store buffer can make visible.
func criticalDelays(trace []TraceEvent, threads int) []delayEdge {
	nodes := map[[2]interface{}]*dnode{}
	perThread := make([][]*dnode, threads)
	seps := make([][]separator, threads)

	for idx, ev := range trace {
		t := ev.TID
		switch ev.Op {
		case OpWake:
			continue
		case OpFence:
			seps[t] = append(seps[t], separator{idx: idx, order: ev.Order})
			continue
		case OpRuntime:
			seps[t] = append(seps[t], separator{idx: idx, runtime: true})
		}
		key := [2]interface{}{t, ev.Site}
		n := nodes[key]
		if n == nil {
			n = &dnode{tid: t, site: ev.Site, minIdx: idx, bytes: map[uint64]uint8{}}
			nodes[key] = n
			perThread[t] = append(perThread[t], n)
		}
		n.maxIdx = idx
		n.events++
		if ev.Op == OpAtomic {
			n.atomics++
		}
		if ev.Acquires() {
			n.acqs++
		}
		if ev.Op == OpAtomic && ev.Order == workload.SeqCst {
			n.seqs++
		}
		if ev.Releases() {
			n.rels++
		}
		n.runtime = n.runtime || ev.Op == OpRuntime
		n.asm = n.asm || ev.Asm
		n.read = n.read || ev.Read
		n.write = n.write || ev.Write
		for b := ev.Addr; b < ev.Addr+uint64(ev.Width); b++ {
			var mode uint8
			if ev.Read {
				mode |= 1
			}
			if ev.Write {
				mode |= 2
			}
			n.bytes[b] |= mode
		}
	}

	// Conflict adjacency: nodes of different threads sharing a byte at
	// least one side writes.
	all := make([]*dnode, 0, len(nodes))
	for _, ns := range perThread {
		all = append(all, ns...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].minIdx < all[j].minIdx })
	conflictsWith := map[*dnode][]*dnode{}
	for i, a := range all {
		for _, b := range all[i+1:] {
			if a.tid == b.tid || !nodesConflict(a, b) {
				continue
			}
			conflictsWith[a] = append(conflictsWith[a], b)
			conflictsWith[b] = append(conflictsWith[b], a)
		}
	}

	budget := cycleBudget
	var out []delayEdge
	for t := 0; t < threads; t++ {
		ns := perThread[t]
		for i, u := range ns {
			for _, v := range ns[i+1:] {
				if u.runtime || v.runtime || u.asm || v.asm {
					continue
				}
				if bytesOverlap(u, v) {
					continue // same-location po is enforced by coherence
				}
				if safeEdge(u, v, seps[t]) {
					continue
				}
				if onCriticalCycle(u, v, conflictsWith, perThread, &budget) {
					out = append(out, delayEdge{u: u, v: v})
				}
			}
		}
	}
	return out
}

func nodesConflict(a, b *dnode) bool {
	small, big := a, b
	if len(big.bytes) < len(small.bytes) {
		small, big = big, small
	}
	for byteAddr, am := range small.bytes {
		bm, ok := big.bytes[byteAddr]
		if !ok {
			continue
		}
		if am&2 != 0 || bm&2 != 0 {
			return true
		}
	}
	return false
}

func bytesOverlap(a, b *dnode) bool {
	small, big := a, b
	if len(big.bytes) < len(small.bytes) {
		small, big = big, small
	}
	for byteAddr := range small.bytes {
		if _, ok := big.bytes[byteAddr]; ok {
			return true
		}
	}
	return false
}

// safeEdge reports whether the orderings already enforce u before v: an
// acquire leading read, a release trailing write, or an interposed fence or
// runtime sync of the right strength. A store→load edge needs a seq_cst
// fence (the only C11 mechanism that orders it).
func safeEdge(u, v *dnode, seps []separator) bool {
	if u.read && u.acqAll() {
		return true
	}
	if v.write && v.relAll() {
		return true
	}
	if u.atomicAll() && u.seqAll() && v.atomicAll() && v.seqAll() {
		// po between two seq_cst operations is respected by the seq_cst
		// total order — the only C11 mechanism that covers store→load.
		return true
	}
	storeToLoad := u.write && !u.read && v.read && !v.write
	for _, s := range seps {
		if s.idx <= u.maxIdx || s.idx >= v.minIdx {
			continue
		}
		if s.runtime || s.order == workload.SeqCst {
			return true
		}
		if storeToLoad {
			continue
		}
		if u.read && s.order.Acquires() {
			return true
		}
		if v.write && s.order.Releases() {
			return true
		}
	}
	return false
}

// onCriticalCycle searches for a return path v ⇝ u: conflict into another
// thread, at most one forward program-order hop inside it, conflict onward,
// each thread visited once, closing with a conflict back to u itself.
func onCriticalCycle(u, v *dnode, conflictsWith map[*dnode][]*dnode, perThread [][]*dnode, budget *int) bool {
	used := map[int]bool{u.tid: true}
	var dfs func(cur *dnode) bool
	dfs = func(cur *dnode) bool {
		if *budget <= 0 {
			return false
		}
		*budget--
		// Forward po hops inside cur's thread (including cur itself).
		for _, b := range perThread[cur.tid] {
			if b.minIdx < cur.minIdx {
				continue
			}
			for _, next := range conflictsWith[b] {
				if next == u {
					return true
				}
				if used[next.tid] {
					continue
				}
				used[next.tid] = true
				if dfs(next) {
					return true
				}
				delete(used, next.tid)
			}
		}
		return false
	}
	for _, first := range conflictsWith[v] {
		if first == u {
			// A direct v↔u conflict is a two-node cycle on the same
			// addresses; same-location po was already excluded, and a
			// cycle needs a second thread's contribution.
			continue
		}
		if used[first.tid] {
			continue
		}
		used[first.tid] = true
		if dfs(first) {
			return true
		}
		delete(used, first.tid)
	}
	return false
}
