package analysis

// The abstract interpreter: runs a workload's Setup/Body/Validate against
// real simulated memory (internal/sim/mem) and the real allocator
// (internal/alloc), with a deterministic cooperative scheduler in place of
// the timed machine. Threads hand a single execution token round-robin —
// exactly one thread runs at a time, yielding every yieldEvery operations
// and at every blocking synchronization point — so shared Go state inside
// workload bodies (leveldb's tree) stays data-race free and footprints are
// reproducible. Allocation order, lock/rwlock word sizes, lock indirection
// and the per-thread random-seed derivation all mirror internal/core, so
// the byte footprints the model records line up with a dynamic run of the
// same seed.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/disasm"
	"repro/internal/sim/mem"
	"repro/tmi/workload"
)

const (
	lineSize = 64
	// yieldEvery bounds how many operations a thread runs between token
	// handoffs; small enough to interleave footprints, large enough to
	// keep channel traffic cheap.
	yieldEvery = 64
	// maxFindings caps interpretation-time findings per model.
	maxFindings = 256
	// maxStreamFootprint bounds how large a heap/globals stream still gets
	// per-line footprints; larger sweeps only update site statistics.
	maxStreamFootprint = 1 << 20
)

// hangSentinel unwinds one thread's body (fault, Hang); abortSentinel
// unwinds after a whole-interpretation abort (deadlock, op budget).
type (
	hangSentinel  struct{}
	abortSentinel struct{}
)

type threadState int

const (
	stReady threadState = iota
	stBlocked
	stDone
)

type interp struct {
	w     workload.Workload
	opt   Options
	model *Model

	memory *mem.Memory
	space  *mem.AddrSpace
	al     *alloc.Allocator
	prog   *disasm.Program

	// indirect mirrors psync.Manager.Indirect: lock words hold a pointer
	// into the always-shared state region.
	indirect  bool
	stateNext uint64

	// Monitorable bounds, snapshotted after Setup (the detector monitors
	// heap and globals only).
	heapEnd, globalsEnd uint64

	threads []*ithread
	doneCh  chan struct{}
	aborted bool

	// Runtime-library sites, registered in the same order psync.NewManager
	// registers them so PC assignments match a dynamic run.
	sitePtr, siteCAS, siteSpin, siteRel, siteBar disasm.Site
	siteRd, siteWr                               disasm.Site
	rwRegistered                                 bool
}

type ithread struct {
	in         *interp
	id         int
	rng        *rand.Rand
	runCh      chan struct{}
	state      threadState
	sinceYield int
	asmDepth   int
}

func newInterp(w workload.Workload, info workload.Info, opt Options) *interp {
	policy := alloc.TMIPolicy()
	backing := alloc.BackingSharedFile
	indirect := true
	if opt.Env == EnvPthreads {
		policy = alloc.LocklessPolicy()
		backing = alloc.BackingAnon
		indirect = false
	}
	in := &interp{
		w:   w,
		opt: opt,
		model: &Model{
			Workload: w.Name(),
			Info:     info,
			Threads:  opt.Threads,
			Seed:     opt.Seed,
			Env:      opt.Env,
			Sites:    make(map[uint64]*SiteModel),
			Lines:    make(map[uint64]*LineModel),
			Notes:    make(map[string]float64),
		},
		indirect:  indirect,
		stateNext: core.InternalBase,
		doneCh:    make(chan struct{}),
	}
	in.memory = mem.NewMemory(mem.PageSize4K)
	in.space = mem.NewAddrSpace(in.memory)
	heapFile := in.memory.NewFile("appheap")
	in.al = alloc.New(policy, backing, heapFile, mem.PageSize4K)
	in.al.AddSpace(in.space)

	stateFile := in.memory.NewFile("tmistate")
	in.space.Map(core.InternalBase, int(core.InternalSize)/mem.PageSize4K, stateFile, 0, false, mem.ProtRW)

	in.prog = disasm.NewProgram()
	in.sitePtr = in.prog.RuntimeSite("psync.lockword.deref", disasm.KindLoad, 8)
	in.siteCAS = in.prog.RuntimeSite("psync.mutex.cas", disasm.KindAtomic, 8)
	in.siteSpin = in.prog.RuntimeSite("psync.mutex.spinload", disasm.KindLoad, 8)
	in.siteRel = in.prog.RuntimeSite("psync.mutex.release", disasm.KindAtomic, 8)
	in.siteBar = in.prog.RuntimeSite("psync.barrier.arrive", disasm.KindAtomic, 8)

	for i := 0; i < opt.Threads; i++ {
		in.threads = append(in.threads, &ithread{
			in:    in,
			id:    i,
			rng:   rand.New(rand.NewSource(opt.Seed*7919 + int64(i) + 1)),
			runCh: make(chan struct{}),
		})
	}
	return in
}

func (in *interp) snapshotBounds() {
	in.heapEnd = in.al.HeapEnd()
	in.globalsEnd = in.al.GlobalsEnd()
}

func (in *interp) finding(rule, site string, pc uint64, detail string) {
	if len(in.model.Findings) >= maxFindings {
		return
	}
	in.model.Findings = append(in.model.Findings, Finding{
		Workload: in.model.Workload, Rule: rule, Site: site, PC: pc, Detail: detail,
	})
}

// ---- scheduler ----

// run executes Body on every thread under the token-passing scheduler and
// returns when all threads are done (or the interpretation aborted).
func (in *interp) run() {
	if len(in.threads) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, t := range in.threads {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-t.runCh
			in.runBody(t)
			in.finishThread(t)
		}()
	}
	in.threads[0].runCh <- struct{}{}
	<-in.doneCh
	wg.Wait()
	in.model.Aborted = in.aborted
}

func (in *interp) runBody(t *ithread) {
	defer func() {
		switch r := recover(); r.(type) {
		case nil, hangSentinel, abortSentinel:
		default:
			panic(r)
		}
	}()
	in.w.Body(t)
}

func (in *interp) finishThread(t *ithread) {
	if t.asmDepth > 0 && !in.aborted {
		in.finding("unbalanced-region", "", 0, fmt.Sprintf(
			"thread %d ended inside %d unclosed asm region(s): EnterAsm without matching ExitAsm",
			t.id, t.asmDepth))
	}
	t.state = stDone
	in.yield(t)
}

// yield hands the token to the next runnable thread. If no thread is ready
// but some are blocked, every live thread is deadlocked: record a finding,
// force the blocked threads runnable and unwind them with abortSentinel so
// the interpretation drains instead of hanging the process.
func (in *interp) yield(t *ithread) {
	next := in.nextReady(t.id)
	if next == nil && in.anyBlocked() {
		if !in.aborted {
			in.aborted = true
			in.finding("deadlock", "", 0,
				"every live thread is blocked (lost wakeup, lock cycle or barrier party mismatch)")
		}
		for _, th := range in.threads {
			if th.state == stBlocked {
				th.state = stReady
			}
		}
		if t.state != stDone {
			panic(abortSentinel{})
		}
		next = in.nextReady(t.id)
	}
	if next == nil {
		in.closeDone()
		return
	}
	if next == t {
		return
	}
	wasDone := t.state == stDone
	next.runCh <- struct{}{}
	if wasDone {
		return
	}
	<-t.runCh
	if in.aborted && t.state != stDone {
		panic(abortSentinel{})
	}
}

func (in *interp) nextReady(after int) *ithread {
	n := len(in.threads)
	for i := 1; i <= n; i++ {
		th := in.threads[(after+i)%n]
		if th.state == stReady {
			return th
		}
	}
	return nil
}

func (in *interp) anyBlocked() bool {
	for _, th := range in.threads {
		if th.state == stBlocked {
			return true
		}
	}
	return false
}

func (in *interp) closeDone() {
	select {
	case <-in.doneCh:
	default:
		close(in.doneCh)
	}
}

// op charges one interpreted operation: budget check plus periodic yield.
func (t *ithread) op() {
	in := t.in
	if in.aborted {
		panic(abortSentinel{})
	}
	in.model.Ops++
	if in.model.Ops > in.opt.MaxOps {
		in.aborted = true
		in.finding("interp-budget", "", 0, fmt.Sprintf(
			"interpretation exceeded %d operations; the workload likely livelocks without timing",
			in.opt.MaxOps))
		panic(abortSentinel{})
	}
	t.sinceYield++
	if t.sinceYield >= yieldEvery {
		t.sinceYield = 0
		in.yield(t)
	}
}

// block parks the thread until another thread marks it stReady again.
func (t *ithread) block() {
	t.state = stBlocked
	t.in.yield(t)
}

// ---- memory ----

func (in *interp) monitorable(addr uint64) bool {
	return (addr >= alloc.HeapBase && addr < in.heapEnd) ||
		(addr >= alloc.GlobalsBase && addr < in.globalsEnd)
}

func (in *interp) storeDirect(addr uint64, size int, v uint64) {
	tr, fault := in.space.Translate(addr, true)
	if fault != nil {
		panic(fmt.Sprintf("analysis: setup store fault at 0x%x: %v", addr, fault))
	}
	mem.StoreUint(tr, size, v)
}

func (t *ithread) read(addr uint64, size int) uint64 {
	tr, fault := t.in.space.Translate(addr, false)
	if fault != nil {
		t.fault(addr, fault)
	}
	return mem.LoadUint(tr, size)
}

func (t *ithread) write(addr uint64, size int, v uint64) {
	tr, fault := t.in.space.Translate(addr, true)
	if fault != nil {
		t.fault(addr, fault)
	}
	mem.StoreUint(tr, size, v)
}

func (t *ithread) fault(addr uint64, fault *mem.Fault) {
	t.in.finding("fault", "", 0, fmt.Sprintf(
		"thread %d faulted at 0x%x (%v); abandoning the thread", t.id, addr, fault))
	panic(hangSentinel{})
}

// ---- recording ----

func (in *interp) siteModel(pc uint64) *SiteModel {
	sm := in.model.Sites[pc]
	if sm == nil {
		si, ok := in.prog.Disassemble(pc)
		if !ok {
			si = disasm.SiteInfo{Name: fmt.Sprintf("pc:0x%x", pc), Kind: disasm.KindOther}
		}
		sm = newSiteModel(si)
		sm.Unknown = !ok
		in.model.Sites[pc] = sm
	}
	return sm
}

func (in *interp) recordLine(tid int, addr uint64, size int, read, write bool) {
	if !in.monitorable(addr) {
		return
	}
	for size > 0 {
		line := addr &^ uint64(lineSize-1)
		lo := int(addr - line)
		n := size
		if lo+n > lineSize {
			n = lineSize - lo
		}
		mask := (uint64(1)<<uint(n) - 1) << uint(lo)
		lm := in.model.Lines[line]
		if lm == nil {
			lm = &LineModel{Line: line, PerThread: make(map[int]*Foot)}
			in.model.Lines[line] = lm
		}
		f := lm.PerThread[tid]
		if f == nil {
			f = &Foot{}
			lm.PerThread[tid] = f
		}
		if read {
			f.ReadMask |= mask
			f.Reads++
		}
		if write {
			f.WriteMask |= mask
			f.Writes++
		}
		addr += uint64(n)
		size -= n
	}
}

func (t *ithread) recordPlain(s workload.Site, addr uint64, write bool) {
	sm := t.in.siteModel(s.PC)
	if write {
		sm.PlainStores++
	} else {
		sm.PlainLoads++
	}
	sm.Threads[t.id]++
	t.in.recordLine(t.id, addr, s.Width, !write, write)
}

func (t *ithread) recordAtomic(s workload.Site, addr uint64, order workload.MemOrder) {
	sm := t.in.siteModel(s.PC)
	sm.AtomicOps++
	sm.Orders[order]++
	sm.Threads[t.id]++
	if t.asmDepth > 0 {
		sm.AtomicInAsm++
	}
	// A locked RMW is both a load and a store of its operand.
	t.in.recordLine(t.id, addr, s.Width, true, true)
}

// recordRuntime records an access through a psync-mirror site.
func (t *ithread) recordRuntime(s disasm.Site, addr uint64) {
	si, _ := t.in.prog.Disassemble(s.PC())
	sm := t.in.siteModel(s.PC())
	sm.Threads[t.id]++
	switch si.Kind {
	case disasm.KindAtomic:
		sm.AtomicOps++
		sm.Orders[workload.SeqCst]++
		t.in.recordLine(t.id, addr, si.Width, true, true)
		t.trace(TraceEvent{PC: s.PC(), Addr: addr, Width: si.Width, Read: true, Write: true, Op: OpRuntime, Order: workload.SeqCst})
	case disasm.KindStore:
		sm.PlainStores++
		t.in.recordLine(t.id, addr, si.Width, false, true)
		t.trace(TraceEvent{PC: s.PC(), Addr: addr, Width: si.Width, Write: true, Op: OpRuntime, Order: workload.SeqCst})
	default:
		sm.PlainLoads++
		t.in.recordLine(t.id, addr, si.Width, true, false)
		t.trace(TraceEvent{PC: s.PC(), Addr: addr, Width: si.Width, Read: true, Op: OpRuntime, Order: workload.SeqCst})
	}
}

// trace appends one event to the abstract trace (Options.Trace only),
// stamping the thread and the site name.
func (t *ithread) trace(ev TraceEvent) {
	in := t.in
	if !in.opt.Trace {
		return
	}
	ev.TID = t.id
	if t.asmDepth > 0 && ev.Op != OpWake {
		ev.Asm = true
	}
	if ev.Site == "" && ev.PC != 0 {
		if si, ok := in.prog.Disassemble(ev.PC); ok {
			ev.Site = si.Name
		}
	}
	in.model.Trace = append(in.model.Trace, ev)
}

// ---- workload.Thread ----

func (t *ithread) ID() int         { return t.id }
func (t *ithread) NumThreads() int { return len(t.in.threads) }

func (t *ithread) Load(s workload.Site, addr uint64) uint64 {
	t.op()
	v := t.read(addr, s.Width)
	t.recordPlain(s, addr, false)
	t.trace(TraceEvent{PC: s.PC, Addr: addr, Width: s.Width, Read: true, Op: OpPlain})
	return v
}

func (t *ithread) Store(s workload.Site, addr uint64, v uint64) {
	t.op()
	t.write(addr, s.Width, v)
	t.recordPlain(s, addr, true)
	t.trace(TraceEvent{PC: s.PC, Addr: addr, Width: s.Width, Write: true, Op: OpPlain})
}

func (t *ithread) AtomicAdd(s workload.Site, addr uint64, delta uint64, order workload.MemOrder) uint64 {
	t.op()
	old := t.read(addr, s.Width)
	t.write(addr, s.Width, old+delta)
	t.recordAtomic(s, addr, order)
	t.trace(TraceEvent{PC: s.PC, Addr: addr, Width: s.Width, Read: true, Write: true, Op: OpAtomic, Order: order})
	return old
}

func (t *ithread) AtomicCAS(s workload.Site, addr uint64, old, new uint64, order workload.MemOrder) bool {
	t.op()
	cur := t.read(addr, s.Width)
	ok := cur == old
	if ok {
		t.write(addr, s.Width, new)
	}
	t.recordAtomic(s, addr, order)
	t.trace(TraceEvent{PC: s.PC, Addr: addr, Width: s.Width, Read: true, Write: true, Op: OpAtomic, Order: order})
	return ok
}

func (t *ithread) AtomicLoad(s workload.Site, addr uint64, order workload.MemOrder) uint64 {
	t.op()
	v := t.read(addr, s.Width)
	t.recordAtomic(s, addr, order)
	t.trace(TraceEvent{PC: s.PC, Addr: addr, Width: s.Width, Read: true, Op: OpAtomic, Order: order})
	return v
}

func (t *ithread) AtomicStore(s workload.Site, addr uint64, v uint64, order workload.MemOrder) {
	t.op()
	t.write(addr, s.Width, v)
	t.recordAtomic(s, addr, order)
	t.trace(TraceEvent{PC: s.PC, Addr: addr, Width: s.Width, Write: true, Op: OpAtomic, Order: order})
}

func (t *ithread) Fence(order workload.MemOrder) {
	t.op()
	if order == workload.Relaxed {
		return
	}
	t.in.model.FenceOps++
	t.trace(TraceEvent{Op: OpFence, Order: order})
}

func (t *ithread) EnterAsm() {
	t.op()
	t.asmDepth++
	t.in.model.AsmEnters++
}

func (t *ithread) ExitAsm() {
	t.op()
	if t.asmDepth == 0 {
		t.in.finding("unbalanced-region", "", 0, fmt.Sprintf(
			"thread %d called ExitAsm with no matching EnterAsm", t.id))
		return
	}
	t.asmDepth--
}

func (t *ithread) AsmAtomicSwap(sa, sb workload.Site, addrA, addrB uint64) {
	t.op()
	// The swap executes inside an implicit asm region (Table 2 case 4/5
	// context for the two atomic accesses).
	t.asmDepth++
	t.in.model.AsmEnters++
	va := t.read(addrA, sa.Width)
	vb := t.read(addrB, sb.Width)
	t.write(addrA, sa.Width, vb)
	t.write(addrB, sb.Width, va)
	t.recordAtomic(sa, addrA, workload.SeqCst)
	t.recordAtomic(sb, addrB, workload.SeqCst)
	t.trace(TraceEvent{PC: sa.PC, Addr: addrA, Width: sa.Width, Read: true, Write: true, Op: OpAtomic, Order: workload.SeqCst})
	t.trace(TraceEvent{PC: sb.PC, Addr: addrB, Width: sb.Width, Read: true, Write: true, Op: OpAtomic, Order: workload.SeqCst})
	t.asmDepth--
}

func (t *ithread) Work(cycles int64) { t.op() }

func (t *ithread) Stream(s workload.Site, base uint64, n int64, write bool) {
	t.op()
	sm := t.in.siteModel(s.PC)
	sm.StreamOps++
	sm.StreamBytes += n
	sm.Threads[t.id]++
	// Bulk streams are not byte-addressed and not monitorable; a stream
	// over heap or globals leaves a coarse whole-line footprint.
	if n <= 0 || n > maxStreamFootprint || !t.in.monitorable(base) {
		return
	}
	for line := base &^ uint64(lineSize-1); line < base+uint64(n); line += lineSize {
		t.in.recordLine(t.id, line, lineSize, !write, write)
	}
}

func (t *ithread) Rand() *rand.Rand { return t.rng }

func (t *ithread) Hang(reason string) {
	t.in.finding("hang", "", 0, fmt.Sprintf("thread %d hung: %s", t.id, reason))
	t.in.model.Hung = true
	panic(hangSentinel{})
}

// ---- synchronization objects ----

type imutex struct {
	workload.MutexBase
	name    string
	appAddr uint64
	objAddr uint64
	owner   *ithread
}

type ibarrier struct {
	workload.BarrierBase
	name    string
	objAddr uint64
	parties int
	arrived int
	waiting []*ithread
}

type icond struct {
	workload.CondBase
	name    string
	waiting []*ithread
}

type irwmutex struct {
	workload.RWMutexBase
	name    string
	appAddr uint64
	objAddr uint64
	readers int
	writer  *ithread
}

// lockTarget mirrors psync's target(): under indirection the lock word is
// dereferenced (a recorded runtime load) and the RMW lands on the shared
// object; otherwise the RMW lands on the application word itself.
func (t *ithread) lockTarget(appAddr, objAddr uint64) uint64 {
	if t.in.indirect {
		t.recordRuntime(t.in.sitePtr, appAddr)
		return objAddr
	}
	return appAddr
}

func (t *ithread) Lock(m workload.Mutex) {
	t.op()
	mu := m.(*imutex)
	addr := t.lockTarget(mu.appAddr, mu.objAddr)
	for mu.owner != nil {
		t.block()
	}
	mu.owner = t
	t.recordRuntime(t.in.siteCAS, addr)
}

func (t *ithread) Unlock(m workload.Mutex) {
	t.op()
	mu := m.(*imutex)
	if mu.owner != t {
		t.in.finding("lock-misuse", "", 0, fmt.Sprintf(
			"thread %d unlocked mutex %q it does not hold", t.id, mu.name))
		return
	}
	addr := t.lockTarget(mu.appAddr, mu.objAddr)
	mu.owner = nil
	t.recordRuntime(t.in.siteRel, addr)
	t.wakeBlocked()
}

// wakeBlocked marks every blocked thread runnable. Lock/rwlock/barrier
// predicates are re-checked by their wait loops, so over-waking is safe and
// keeps the wakeup bookkeeping simple and lost-wakeup free.
func (t *ithread) wakeBlocked() {
	for _, th := range t.in.threads {
		if th.state == stBlocked {
			th.state = stReady
		}
	}
}

func (t *ithread) RLock(m workload.RWMutex) {
	t.op()
	rw := m.(*irwmutex)
	addr := t.lockTarget(rw.appAddr, rw.objAddr)
	for rw.writer != nil {
		t.block()
	}
	rw.readers++
	t.recordRuntime(t.in.rwSiteRd(), addr)
}

func (t *ithread) RUnlock(m workload.RWMutex) {
	t.op()
	rw := m.(*irwmutex)
	if rw.readers <= 0 {
		t.in.finding("lock-misuse", "", 0, fmt.Sprintf(
			"thread %d released read hold on %q without one", t.id, rw.name))
		return
	}
	addr := t.lockTarget(rw.appAddr, rw.objAddr)
	rw.readers--
	t.recordRuntime(t.in.rwSiteRd(), addr)
	if rw.readers == 0 {
		t.wakeBlocked()
	}
}

func (t *ithread) WLock(m workload.RWMutex) {
	t.op()
	rw := m.(*irwmutex)
	addr := t.lockTarget(rw.appAddr, rw.objAddr)
	for rw.writer != nil || rw.readers > 0 {
		t.block()
	}
	rw.writer = t
	t.recordRuntime(t.in.rwSiteWr(), addr)
}

func (t *ithread) WUnlock(m workload.RWMutex) {
	t.op()
	rw := m.(*irwmutex)
	if rw.writer != t {
		t.in.finding("lock-misuse", "", 0, fmt.Sprintf(
			"thread %d released write hold on %q it does not hold", t.id, rw.name))
		return
	}
	addr := t.lockTarget(rw.appAddr, rw.objAddr)
	rw.writer = nil
	t.recordRuntime(t.in.rwSiteWr(), addr)
	t.wakeBlocked()
}

func (t *ithread) Wait(b workload.Barrier) {
	t.op()
	bb := b.(*ibarrier)
	t.recordRuntime(t.in.siteBar, bb.objAddr)
	bb.arrived++
	if bb.arrived >= bb.parties {
		bb.arrived = 0
		for _, w := range bb.waiting {
			w.state = stReady
			// Barrier release: the last arrival's clock (which has joined
			// every earlier arrival through the objAddr chain) flows into
			// each released waiter.
			t.trace(TraceEvent{Op: OpWake, Other: w.id})
		}
		bb.waiting = bb.waiting[:0]
		return
	}
	bb.waiting = append(bb.waiting, t)
	// Block until the last arrival resets the barrier; the wait loop keys
	// on membership, not a predicate, because generations must not mix.
	for contains(bb.waiting, t) {
		t.block()
	}
}

func contains(q []*ithread, t *ithread) bool {
	for _, th := range q {
		if th == t {
			return true
		}
	}
	return false
}

func (t *ithread) CondWait(c workload.Cond, m workload.Mutex) {
	t.op()
	cc := c.(*icond)
	cc.waiting = append(cc.waiting, t)
	t.Unlock(m)
	for contains(cc.waiting, t) {
		t.block()
	}
	t.Lock(m)
}

func (t *ithread) CondSignal(c workload.Cond) {
	t.op()
	cc := c.(*icond)
	if len(cc.waiting) == 0 {
		return
	}
	w := cc.waiting[0]
	cc.waiting = cc.waiting[1:]
	w.state = stReady
	t.trace(TraceEvent{Op: OpWake, Other: w.id})
}

func (t *ithread) CondBroadcast(c workload.Cond) {
	t.op()
	cc := c.(*icond)
	for _, w := range cc.waiting {
		w.state = stReady
		t.trace(TraceEvent{Op: OpWake, Other: w.id})
	}
	cc.waiting = cc.waiting[:0]
}

// rwSiteRd/rwSiteWr lazily register the rwlock sites, as psync does on the
// first NewRWMutex, to keep PC assignment order identical.
func (in *interp) rwSiteRd() disasm.Site { return in.siteRd }
func (in *interp) rwSiteWr() disasm.Site { return in.siteWr }

func (in *interp) registerRWSites() {
	if !in.rwRegistered {
		in.siteRd = in.prog.RuntimeSite("psync.rwlock.rdlock", disasm.KindAtomic, 8)
		in.siteWr = in.prog.RuntimeSite("psync.rwlock.wrlock", disasm.KindAtomic, 8)
		in.rwRegistered = true
	}
}

// ---- workload.Env ----

type ienv struct{ in *interp }

func (e *ienv) Threads() int  { return len(e.in.threads) }
func (e *ienv) PageSize() int { return mem.PageSize4K }

func (e *ienv) Alloc(n, align int) uint64 { return e.in.al.Alloc(n, align) }
func (e *ienv) AllocDefault(n int) uint64 { return e.in.al.AllocDefault(n) }
func (e *ienv) AllocBulk(n int64) uint64  { return e.in.al.AllocBulk(n) }
func (e *ienv) AllocGlobal(n, align int) uint64 {
	return e.in.al.AllocGlobal(n, align)
}
func (e *ienv) Free(addr uint64, n int) { e.in.al.Free(addr, n) }

func (e *ienv) Write(addr uint64, b []byte) {
	if err := e.in.space.WriteBytes(addr, b); err != nil {
		panic(fmt.Sprintf("analysis: env write at 0x%x: %v", addr, err))
	}
}

func (e *ienv) Read(addr uint64, n int) []byte {
	b, err := e.in.space.ReadBytes(addr, n)
	if err != nil {
		panic(fmt.Sprintf("analysis: env read at 0x%x: %v", addr, err))
	}
	return b
}

func (e *ienv) Store(addr uint64, size int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.Write(addr, b[:size])
}

func (e *ienv) Load(addr uint64, size int) uint64 {
	var b [8]byte
	copy(b[:], e.Read(addr, size))
	return binary.LittleEndian.Uint64(b[:])
}

func (e *ienv) Site(name string, kind workload.SiteKind, width int) workload.Site {
	var k disasm.Kind
	switch kind {
	case workload.SiteLoad:
		k = disasm.KindLoad
	case workload.SiteStore:
		k = disasm.KindStore
	default:
		k = disasm.KindAtomic
	}
	s := e.in.prog.Site(name, k, width)
	return workload.Site{PC: s.PC(), Kind: kind, Width: width}
}

func (in *interp) allocState() uint64 {
	if in.stateNext+lineSize > core.InternalBase+core.InternalSize {
		panic("analysis: tmi state region exhausted")
	}
	addr := in.stateNext
	in.stateNext += lineSize
	return addr
}

func (e *ienv) NewMutex(name string) workload.Mutex {
	return e.NewMutexAt(name, e.in.al.Alloc(40, 8))
}

func (e *ienv) NewMutexAt(name string, appAddr uint64) workload.Mutex {
	in := e.in
	mu := &imutex{name: name, appAddr: appAddr}
	if in.indirect {
		mu.objAddr = in.allocState()
		in.storeDirect(appAddr, 8, mu.objAddr)
	}
	return mu
}

func (e *ienv) NewBarrier(name string, parties int) workload.Barrier {
	return &ibarrier{name: name, objAddr: e.in.allocState(), parties: parties}
}

func (e *ienv) NewCond(name string) workload.Cond {
	return &icond{name: name}
}

func (e *ienv) NewRWMutex(name string) workload.RWMutex {
	in := e.in
	appAddr := in.al.Alloc(56, 8)
	in.registerRWSites()
	rw := &irwmutex{name: name, appAddr: appAddr}
	if in.indirect {
		rw.objAddr = in.allocState()
		in.storeDirect(appAddr, 8, rw.objAddr)
	}
	return rw
}

func (e *ienv) Note(key string, v float64) { e.in.model.Notes[key] = v }
