package analysis

// The CCC annotation verifier: checks the static model against the
// annotation contract the Table 2 policy (internal/ccc) depends on. The
// simulator's Thread API brackets every atomic it executes with the region
// callbacks the paper's LLVM pass would insert — so an atomic instruction
// only escapes its region when the workload routes a plain Load/Store
// through a SiteAtomic site (the modeled "missed annotation"), and a
// region-class confusion only arises when one site mixes access kinds or
// memory orders. Verify flags exactly those hazards.

import (
	"fmt"
	"sort"

	"repro/internal/ccc"
	"repro/internal/disasm"
	"repro/tmi/workload"
)

// Finding is one verifier diagnostic.
type Finding struct {
	Workload string
	// Rule names the violated rule: unannotated-atomic, kind-mismatch,
	// mixed-order, unbalanced-region, info-mismatch, unknown-pc,
	// lock-misuse, deadlock, interp-budget, fault, hang, validate.
	Rule   string
	Site   string
	PC     uint64
	Detail string
}

func (f Finding) String() string {
	if f.Site != "" {
		return fmt.Sprintf("%s: [%s] site %q (pc 0x%x): %s", f.Workload, f.Rule, f.Site, f.PC, f.Detail)
	}
	return fmt.Sprintf("%s: [%s] %s", f.Workload, f.Rule, f.Detail)
}

// Verify checks the model and returns all findings, interpretation-time
// ones included, in deterministic order. An empty slice means the workload
// honors the annotation contract.
func Verify(m *Model) []Finding {
	out := append([]Finding(nil), m.Findings...)

	pcs := make([]uint64, 0, len(m.Sites))
	for pc := range m.Sites {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	var atomicInstrs uint64 // atomic instructions executed in app code
	for _, pc := range pcs {
		sm := m.Sites[pc]
		si := sm.Info
		if si.Runtime {
			// Runtime-library sites execute below the annotation layer by
			// design; the pass never sees them.
			continue
		}
		if sm.Unknown {
			if sm.Accesses()+sm.StreamOps > 0 {
				out = append(out, siteFinding(m, pc, sm, "unknown-pc",
					"access through a PC absent from the site table; the detector cannot disassemble it (register sites via Env.Site)"))
			}
			continue
		}
		switch si.Kind {
		case disasm.KindAtomic:
			atomicInstrs += sm.Accesses()
			if n := sm.PlainLoads + sm.PlainStores; n > 0 {
				inter := ccc.Table2(ccc.ClassRegular, ccc.ClassAtomic)
				out = append(out, siteFinding(m, pc, sm, "unannotated-atomic", fmt.Sprintf(
					"%d plain access(es) through an atomic instruction site: the atomic executes outside any region callback, so its races fall into Table 2 case %d (%q semantics) instead of case 2",
					n, inter.Case, inter.Semantics)))
			}
		case disasm.KindLoad:
			if sm.PlainStores > 0 {
				out = append(out, siteFinding(m, pc, sm, "kind-mismatch", fmt.Sprintf(
					"%d store(s) through a load site: the detector would disassemble the PC as a read and misclassify sharing on its lines", sm.PlainStores)))
			}
			if sm.AtomicOps > 0 {
				out = append(out, siteFinding(m, pc, sm, "kind-mismatch", fmt.Sprintf(
					"%d atomic op(s) through a load site: the region brackets fire but the site table hides the write half of the RMW", sm.AtomicOps)))
			}
		case disasm.KindStore:
			if sm.PlainLoads > 0 {
				out = append(out, siteFinding(m, pc, sm, "kind-mismatch", fmt.Sprintf(
					"%d load(s) through a store site: the detector would count phantom writes and can flip a read-mostly line to false sharing", sm.PlainLoads)))
			}
			if sm.AtomicOps > 0 {
				out = append(out, siteFinding(m, pc, sm, "kind-mismatch", fmt.Sprintf(
					"%d atomic op(s) through a store site: the site table hides the read half of the RMW", sm.AtomicOps)))
			}
		}
		if relaxed := sm.Orders[workload.Relaxed]; relaxed > 0 {
			if strong := sm.AtomicOps - relaxed; strong > 0 {
				out = append(out, siteFinding(m, pc, sm, "mixed-order", fmt.Sprintf(
					"site executes both relaxed (%d) and stronger-order (%d) atomics: a static pass must assign one region class per instruction, so the relaxed executions would be over-serialized or the strong ones under-flushed",
					relaxed, strong)))
			}
		}
	}

	if atomicInstrs > 0 && !m.Info.UsesAtomics {
		out = append(out, Finding{Workload: m.Workload, Rule: "info-mismatch", Detail: fmt.Sprintf(
			"workload executes %d operation(s) at atomic instruction sites but Info.UsesAtomics is false; Sheriff-compatibility screening and Table 2 planning key off the flag", atomicInstrs)})
	}
	if m.AsmEnters > 0 && !m.Info.UsesAsm {
		out = append(out, Finding{Workload: m.Workload, Rule: "info-mismatch", Detail: fmt.Sprintf(
			"workload enters %d assembly region(s) but Info.UsesAsm is false", m.AsmEnters)})
	}
	return out
}

func siteFinding(m *Model, pc uint64, sm *SiteModel, rule, detail string) Finding {
	return Finding{
		Workload: m.Workload,
		Rule:     rule,
		Site:     sm.Info.Name,
		PC:       pc,
		Detail:   detail,
	}
}
